file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_daxpy_excl.dir/bench_fig3b_daxpy_excl.cpp.o"
  "CMakeFiles/bench_fig3b_daxpy_excl.dir/bench_fig3b_daxpy_excl.cpp.o.d"
  "bench_fig3b_daxpy_excl"
  "bench_fig3b_daxpy_excl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_daxpy_excl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
