# Empty compiler generated dependencies file for bench_fig3b_daxpy_excl.
# This may be replaced when dependencies are built.
