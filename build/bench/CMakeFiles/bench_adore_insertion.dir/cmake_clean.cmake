file(REMOVE_RECURSE
  "CMakeFiles/bench_adore_insertion.dir/bench_adore_insertion.cpp.o"
  "CMakeFiles/bench_adore_insertion.dir/bench_adore_insertion.cpp.o.d"
  "bench_adore_insertion"
  "bench_adore_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adore_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
