# Empty dependencies file for bench_adore_insertion.
# This may be replaced when dependencies are built.
