file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_bus_numa.dir/bench_fig7b_bus_numa.cpp.o"
  "CMakeFiles/bench_fig7b_bus_numa.dir/bench_fig7b_bus_numa.cpp.o.d"
  "bench_fig7b_bus_numa"
  "bench_fig7b_bus_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_bus_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
