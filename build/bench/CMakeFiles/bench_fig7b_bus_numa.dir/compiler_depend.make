# Empty compiler generated dependencies file for bench_fig7b_bus_numa.
# This may be replaced when dependencies are built.
