file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_l3_smp.dir/bench_fig6a_l3_smp.cpp.o"
  "CMakeFiles/bench_fig6a_l3_smp.dir/bench_fig6a_l3_smp.cpp.o.d"
  "bench_fig6a_l3_smp"
  "bench_fig6a_l3_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_l3_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
