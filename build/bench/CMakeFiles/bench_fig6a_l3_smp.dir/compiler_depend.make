# Empty compiler generated dependencies file for bench_fig6a_l3_smp.
# This may be replaced when dependencies are built.
