# Empty compiler generated dependencies file for cobra_bench_common.
# This may be replaced when dependencies are built.
