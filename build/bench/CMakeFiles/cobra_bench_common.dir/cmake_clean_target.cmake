file(REMOVE_RECURSE
  "libcobra_bench_common.a"
)
