file(REMOVE_RECURSE
  "CMakeFiles/cobra_bench_common.dir/daxpy_experiment.cpp.o"
  "CMakeFiles/cobra_bench_common.dir/daxpy_experiment.cpp.o.d"
  "CMakeFiles/cobra_bench_common.dir/npb_experiment.cpp.o"
  "CMakeFiles/cobra_bench_common.dir/npb_experiment.cpp.o.d"
  "libcobra_bench_common.a"
  "libcobra_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
