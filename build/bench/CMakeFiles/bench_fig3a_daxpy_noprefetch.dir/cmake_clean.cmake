file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_daxpy_noprefetch.dir/bench_fig3a_daxpy_noprefetch.cpp.o"
  "CMakeFiles/bench_fig3a_daxpy_noprefetch.dir/bench_fig3a_daxpy_noprefetch.cpp.o.d"
  "bench_fig3a_daxpy_noprefetch"
  "bench_fig3a_daxpy_noprefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_daxpy_noprefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
