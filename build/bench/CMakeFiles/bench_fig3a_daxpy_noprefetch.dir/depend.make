# Empty dependencies file for bench_fig3a_daxpy_noprefetch.
# This may be replaced when dependencies are built.
