file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_speedup_smp.dir/bench_fig5a_speedup_smp.cpp.o"
  "CMakeFiles/bench_fig5a_speedup_smp.dir/bench_fig5a_speedup_smp.cpp.o.d"
  "bench_fig5a_speedup_smp"
  "bench_fig5a_speedup_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_speedup_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
