# Empty compiler generated dependencies file for bench_fig5a_speedup_smp.
# This may be replaced when dependencies are built.
