file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_speedup_numa.dir/bench_fig5b_speedup_numa.cpp.o"
  "CMakeFiles/bench_fig5b_speedup_numa.dir/bench_fig5b_speedup_numa.cpp.o.d"
  "bench_fig5b_speedup_numa"
  "bench_fig5b_speedup_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_speedup_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
