# Empty compiler generated dependencies file for bench_fig5b_speedup_numa.
# This may be replaced when dependencies are built.
