file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_codegen.dir/bench_fig2_codegen.cpp.o"
  "CMakeFiles/bench_fig2_codegen.dir/bench_fig2_codegen.cpp.o.d"
  "bench_fig2_codegen"
  "bench_fig2_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
