# Empty dependencies file for bench_fig2_codegen.
# This may be replaced when dependencies are built.
