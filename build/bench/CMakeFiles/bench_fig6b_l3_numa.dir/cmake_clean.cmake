file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_l3_numa.dir/bench_fig6b_l3_numa.cpp.o"
  "CMakeFiles/bench_fig6b_l3_numa.dir/bench_fig6b_l3_numa.cpp.o.d"
  "bench_fig6b_l3_numa"
  "bench_fig6b_l3_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_l3_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
