# Empty compiler generated dependencies file for bench_fig6b_l3_numa.
# This may be replaced when dependencies are built.
