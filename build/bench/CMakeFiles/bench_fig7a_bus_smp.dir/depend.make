# Empty dependencies file for bench_fig7a_bus_smp.
# This may be replaced when dependencies are built.
