# Empty dependencies file for cobra_kgen.
# This may be replaced when dependencies are built.
