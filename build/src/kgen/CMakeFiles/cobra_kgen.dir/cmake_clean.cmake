file(REMOVE_RECURSE
  "CMakeFiles/cobra_kgen.dir/emitters.cpp.o"
  "CMakeFiles/cobra_kgen.dir/emitters.cpp.o.d"
  "CMakeFiles/cobra_kgen.dir/program.cpp.o"
  "CMakeFiles/cobra_kgen.dir/program.cpp.o.d"
  "libcobra_kgen.a"
  "libcobra_kgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_kgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
