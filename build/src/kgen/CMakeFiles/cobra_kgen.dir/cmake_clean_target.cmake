file(REMOVE_RECURSE
  "libcobra_kgen.a"
)
