# Empty compiler generated dependencies file for cobra_machine.
# This may be replaced when dependencies are built.
