file(REMOVE_RECURSE
  "libcobra_machine.a"
)
