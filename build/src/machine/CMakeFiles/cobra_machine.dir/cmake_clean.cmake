file(REMOVE_RECURSE
  "CMakeFiles/cobra_machine.dir/machine.cpp.o"
  "CMakeFiles/cobra_machine.dir/machine.cpp.o.d"
  "libcobra_machine.a"
  "libcobra_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
