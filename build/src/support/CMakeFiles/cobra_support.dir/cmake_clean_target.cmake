file(REMOVE_RECURSE
  "libcobra_support.a"
)
