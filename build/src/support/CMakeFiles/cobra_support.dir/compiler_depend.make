# Empty compiler generated dependencies file for cobra_support.
# This may be replaced when dependencies are built.
