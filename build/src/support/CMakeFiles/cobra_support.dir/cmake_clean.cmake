file(REMOVE_RECURSE
  "CMakeFiles/cobra_support.dir/table.cpp.o"
  "CMakeFiles/cobra_support.dir/table.cpp.o.d"
  "libcobra_support.a"
  "libcobra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
