file(REMOVE_RECURSE
  "CMakeFiles/cobra_isa.dir/assembler.cpp.o"
  "CMakeFiles/cobra_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/cobra_isa.dir/disasm.cpp.o"
  "CMakeFiles/cobra_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/cobra_isa.dir/encoding.cpp.o"
  "CMakeFiles/cobra_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/cobra_isa.dir/image.cpp.o"
  "CMakeFiles/cobra_isa.dir/image.cpp.o.d"
  "CMakeFiles/cobra_isa.dir/instruction.cpp.o"
  "CMakeFiles/cobra_isa.dir/instruction.cpp.o.d"
  "libcobra_isa.a"
  "libcobra_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
