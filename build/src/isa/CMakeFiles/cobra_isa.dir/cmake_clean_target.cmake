file(REMOVE_RECURSE
  "libcobra_isa.a"
)
