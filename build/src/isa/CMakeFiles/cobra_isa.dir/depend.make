# Empty dependencies file for cobra_isa.
# This may be replaced when dependencies are built.
