file(REMOVE_RECURSE
  "CMakeFiles/cobra_perfmon.dir/sampling.cpp.o"
  "CMakeFiles/cobra_perfmon.dir/sampling.cpp.o.d"
  "libcobra_perfmon.a"
  "libcobra_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
