file(REMOVE_RECURSE
  "libcobra_perfmon.a"
)
