# Empty dependencies file for cobra_perfmon.
# This may be replaced when dependencies are built.
