file(REMOVE_RECURSE
  "libcobra_rt.a"
)
