# Empty dependencies file for cobra_rt.
# This may be replaced when dependencies are built.
