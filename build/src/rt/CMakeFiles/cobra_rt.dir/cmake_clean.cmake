file(REMOVE_RECURSE
  "CMakeFiles/cobra_rt.dir/team.cpp.o"
  "CMakeFiles/cobra_rt.dir/team.cpp.o.d"
  "libcobra_rt.a"
  "libcobra_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
