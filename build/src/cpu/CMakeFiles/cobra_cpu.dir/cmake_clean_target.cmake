file(REMOVE_RECURSE
  "libcobra_cpu.a"
)
