file(REMOVE_RECURSE
  "CMakeFiles/cobra_cpu.dir/core.cpp.o"
  "CMakeFiles/cobra_cpu.dir/core.cpp.o.d"
  "CMakeFiles/cobra_cpu.dir/hpm.cpp.o"
  "CMakeFiles/cobra_cpu.dir/hpm.cpp.o.d"
  "CMakeFiles/cobra_cpu.dir/regfile.cpp.o"
  "CMakeFiles/cobra_cpu.dir/regfile.cpp.o.d"
  "libcobra_cpu.a"
  "libcobra_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
