# Empty dependencies file for cobra_cpu.
# This may be replaced when dependencies are built.
