
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/bt.cpp" "src/npb/CMakeFiles/cobra_npb.dir/bt.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/bt.cpp.o.d"
  "/root/repo/src/npb/cg.cpp" "src/npb/CMakeFiles/cobra_npb.dir/cg.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/cg.cpp.o.d"
  "/root/repo/src/npb/common.cpp" "src/npb/CMakeFiles/cobra_npb.dir/common.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/common.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/npb/CMakeFiles/cobra_npb.dir/ep.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/ep.cpp.o.d"
  "/root/repo/src/npb/ft.cpp" "src/npb/CMakeFiles/cobra_npb.dir/ft.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/ft.cpp.o.d"
  "/root/repo/src/npb/grid.cpp" "src/npb/CMakeFiles/cobra_npb.dir/grid.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/grid.cpp.o.d"
  "/root/repo/src/npb/is.cpp" "src/npb/CMakeFiles/cobra_npb.dir/is.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/is.cpp.o.d"
  "/root/repo/src/npb/lu.cpp" "src/npb/CMakeFiles/cobra_npb.dir/lu.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/lu.cpp.o.d"
  "/root/repo/src/npb/mg.cpp" "src/npb/CMakeFiles/cobra_npb.dir/mg.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/mg.cpp.o.d"
  "/root/repo/src/npb/sp.cpp" "src/npb/CMakeFiles/cobra_npb.dir/sp.cpp.o" "gcc" "src/npb/CMakeFiles/cobra_npb.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kgen/CMakeFiles/cobra_kgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cobra_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cobra_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobra_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cobra_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cobra_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cobra_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
