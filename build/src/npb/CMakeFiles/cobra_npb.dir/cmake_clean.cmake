file(REMOVE_RECURSE
  "CMakeFiles/cobra_npb.dir/bt.cpp.o"
  "CMakeFiles/cobra_npb.dir/bt.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/cg.cpp.o"
  "CMakeFiles/cobra_npb.dir/cg.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/common.cpp.o"
  "CMakeFiles/cobra_npb.dir/common.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/ep.cpp.o"
  "CMakeFiles/cobra_npb.dir/ep.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/ft.cpp.o"
  "CMakeFiles/cobra_npb.dir/ft.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/grid.cpp.o"
  "CMakeFiles/cobra_npb.dir/grid.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/is.cpp.o"
  "CMakeFiles/cobra_npb.dir/is.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/lu.cpp.o"
  "CMakeFiles/cobra_npb.dir/lu.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/mg.cpp.o"
  "CMakeFiles/cobra_npb.dir/mg.cpp.o.d"
  "CMakeFiles/cobra_npb.dir/sp.cpp.o"
  "CMakeFiles/cobra_npb.dir/sp.cpp.o.d"
  "libcobra_npb.a"
  "libcobra_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
