# Empty dependencies file for cobra_npb.
# This may be replaced when dependencies are built.
