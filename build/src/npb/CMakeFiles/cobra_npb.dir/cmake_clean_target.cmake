file(REMOVE_RECURSE
  "libcobra_npb.a"
)
