file(REMOVE_RECURSE
  "CMakeFiles/cobra_mem.dir/cache_array.cpp.o"
  "CMakeFiles/cobra_mem.dir/cache_array.cpp.o.d"
  "CMakeFiles/cobra_mem.dir/cache_stack.cpp.o"
  "CMakeFiles/cobra_mem.dir/cache_stack.cpp.o.d"
  "CMakeFiles/cobra_mem.dir/config.cpp.o"
  "CMakeFiles/cobra_mem.dir/config.cpp.o.d"
  "CMakeFiles/cobra_mem.dir/directory.cpp.o"
  "CMakeFiles/cobra_mem.dir/directory.cpp.o.d"
  "CMakeFiles/cobra_mem.dir/main_memory.cpp.o"
  "CMakeFiles/cobra_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/cobra_mem.dir/snoop_bus.cpp.o"
  "CMakeFiles/cobra_mem.dir/snoop_bus.cpp.o.d"
  "libcobra_mem.a"
  "libcobra_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
