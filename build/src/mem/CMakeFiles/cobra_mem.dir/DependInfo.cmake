
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_array.cpp" "src/mem/CMakeFiles/cobra_mem.dir/cache_array.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/cache_array.cpp.o.d"
  "/root/repo/src/mem/cache_stack.cpp" "src/mem/CMakeFiles/cobra_mem.dir/cache_stack.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/cache_stack.cpp.o.d"
  "/root/repo/src/mem/config.cpp" "src/mem/CMakeFiles/cobra_mem.dir/config.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/config.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/mem/CMakeFiles/cobra_mem.dir/directory.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/directory.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "src/mem/CMakeFiles/cobra_mem.dir/main_memory.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/main_memory.cpp.o.d"
  "/root/repo/src/mem/snoop_bus.cpp" "src/mem/CMakeFiles/cobra_mem.dir/snoop_bus.cpp.o" "gcc" "src/mem/CMakeFiles/cobra_mem.dir/snoop_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cobra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
