file(REMOVE_RECURSE
  "libcobra_core.a"
)
