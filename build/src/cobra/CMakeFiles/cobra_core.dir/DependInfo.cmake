
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cobra/controller.cpp" "src/cobra/CMakeFiles/cobra_core.dir/controller.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/controller.cpp.o.d"
  "/root/repo/src/cobra/insertion.cpp" "src/cobra/CMakeFiles/cobra_core.dir/insertion.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/insertion.cpp.o.d"
  "/root/repo/src/cobra/monitor.cpp" "src/cobra/CMakeFiles/cobra_core.dir/monitor.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/monitor.cpp.o.d"
  "/root/repo/src/cobra/optimizer.cpp" "src/cobra/CMakeFiles/cobra_core.dir/optimizer.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/cobra/profile.cpp" "src/cobra/CMakeFiles/cobra_core.dir/profile.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/profile.cpp.o.d"
  "/root/repo/src/cobra/trace_cache.cpp" "src/cobra/CMakeFiles/cobra_core.dir/trace_cache.cpp.o" "gcc" "src/cobra/CMakeFiles/cobra_core.dir/trace_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmon/CMakeFiles/cobra_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cobra_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cobra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobra_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cobra_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cobra_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
