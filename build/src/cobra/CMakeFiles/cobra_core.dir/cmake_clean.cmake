file(REMOVE_RECURSE
  "CMakeFiles/cobra_core.dir/controller.cpp.o"
  "CMakeFiles/cobra_core.dir/controller.cpp.o.d"
  "CMakeFiles/cobra_core.dir/insertion.cpp.o"
  "CMakeFiles/cobra_core.dir/insertion.cpp.o.d"
  "CMakeFiles/cobra_core.dir/monitor.cpp.o"
  "CMakeFiles/cobra_core.dir/monitor.cpp.o.d"
  "CMakeFiles/cobra_core.dir/optimizer.cpp.o"
  "CMakeFiles/cobra_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/cobra_core.dir/profile.cpp.o"
  "CMakeFiles/cobra_core.dir/profile.cpp.o.d"
  "CMakeFiles/cobra_core.dir/trace_cache.cpp.o"
  "CMakeFiles/cobra_core.dir/trace_cache.cpp.o.d"
  "libcobra_core.a"
  "libcobra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
