
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/insertion_test.cpp" "tests/CMakeFiles/insertion_test.dir/insertion_test.cpp.o" "gcc" "tests/CMakeFiles/insertion_test.dir/insertion_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cobra/CMakeFiles/cobra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/cobra_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/kgen/CMakeFiles/cobra_kgen.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/cobra_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cobra_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cobra_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cobra_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cobra_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cobra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
