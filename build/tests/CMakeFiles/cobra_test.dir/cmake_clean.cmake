file(REMOVE_RECURSE
  "CMakeFiles/cobra_test.dir/cobra_test.cpp.o"
  "CMakeFiles/cobra_test.dir/cobra_test.cpp.o.d"
  "cobra_test"
  "cobra_test.pdb"
  "cobra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
