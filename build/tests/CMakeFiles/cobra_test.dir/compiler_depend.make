# Empty compiler generated dependencies file for cobra_test.
# This may be replaced when dependencies are built.
