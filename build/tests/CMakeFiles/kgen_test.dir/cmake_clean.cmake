file(REMOVE_RECURSE
  "CMakeFiles/kgen_test.dir/kgen_test.cpp.o"
  "CMakeFiles/kgen_test.dir/kgen_test.cpp.o.d"
  "kgen_test"
  "kgen_test.pdb"
  "kgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
