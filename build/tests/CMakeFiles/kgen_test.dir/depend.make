# Empty dependencies file for kgen_test.
# This may be replaced when dependencies are built.
