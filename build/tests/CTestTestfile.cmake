# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/kgen_test[1]_include.cmake")
include("/root/repo/build/tests/cobra_test[1]_include.cmake")
include("/root/repo/build/tests/npb_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/insertion_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
