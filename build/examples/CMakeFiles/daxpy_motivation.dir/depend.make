# Empty dependencies file for daxpy_motivation.
# This may be replaced when dependencies are built.
