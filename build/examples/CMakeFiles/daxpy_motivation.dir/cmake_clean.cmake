file(REMOVE_RECURSE
  "CMakeFiles/daxpy_motivation.dir/daxpy_motivation.cpp.o"
  "CMakeFiles/daxpy_motivation.dir/daxpy_motivation.cpp.o.d"
  "daxpy_motivation"
  "daxpy_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daxpy_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
