// Simulated threading runtime: OpenMP-style fork/join teams over the
// machine's cores.
//
// A parallel region launches one simulated thread per core (thread i bound
// to CPU i, as the paper binds threads to processors), sets up each
// thread's argument registers, runs all cores to completion under the
// machine's deterministic execution engine, and joins with a barrier.  Loop
// iterations are divided with OpenMP's static schedule (contiguous chunks
// by thread id), which is the partitioning whose boundary lines produce
// the sharing behaviour the paper studies.
//
// The team owns its ExecutionEngine (machine/engine.h): pass an
// EngineConfig to run regions on the parallel host engine. Serial and
// parallel engines are bit-identical; the engine choice only affects host
// wall-clock. The parallel engine requires regions to be free of simulated
// data races (concurrent conflicting accesses to the same bytes), which
// the fork/join + static-chunk workloads here satisfy by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/regfile.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "support/simtypes.h"

namespace cobra::rt {

// [begin, end) iteration range.
struct IndexRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

// OpenMP static schedule: contiguous chunk of [0, n) for thread `tid` of
// `num_threads` (remainder spread over the leading threads).
IndexRange StaticChunk(int tid, int num_threads, std::int64_t n);

class Team {
 public:
  // Uses CPUs [0, num_threads) of the machine. `engine` selects how the
  // host executes regions (default: the serial engine).
  Team(machine::Machine* machine, int num_threads,
       const machine::EngineConfig& engine = {});

  int num_threads() const { return num_threads_; }
  const char* engine_name() const { return engine_->name(); }

  // Runs a parallel region: every thread starts at `entry` after `setup`
  // has initialized its registers. Returns the region's duration in cycles
  // (fork barrier to join barrier).
  Cycle Run(isa::Addr entry,
            const std::function<void(int tid, cpu::RegisterFile&)>& setup);

  machine::Machine& machine() { return *machine_; }

 private:
  machine::Machine* machine_;
  int num_threads_;
  std::unique_ptr<machine::ExecutionEngine> engine_;
};

}  // namespace cobra::rt
