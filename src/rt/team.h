// Simulated threading runtime: OpenMP-style fork/join teams over the
// machine's cores.
//
// A parallel region launches one simulated thread per core (thread i bound
// to CPU i, as the paper binds threads to processors), sets up each
// thread's argument registers, runs all cores to completion under the
// machine's deterministic interleave, and joins with a barrier.  Loop
// iterations are divided with OpenMP's static schedule (contiguous chunks
// by thread id), which is the partitioning whose boundary lines produce
// the sharing behaviour the paper studies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/regfile.h"
#include "machine/machine.h"
#include "support/simtypes.h"

namespace cobra::rt {

// [begin, end) iteration range.
struct IndexRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

// OpenMP static schedule: contiguous chunk of [0, n) for thread `tid` of
// `num_threads` (remainder spread over the leading threads).
IndexRange StaticChunk(int tid, int num_threads, std::int64_t n);

class Team {
 public:
  // Uses CPUs [0, num_threads) of the machine.
  Team(machine::Machine* machine, int num_threads);

  int num_threads() const { return num_threads_; }

  // Runs a parallel region: every thread starts at `entry` after `setup`
  // has initialized its registers. Returns the region's duration in cycles
  // (fork barrier to join barrier).
  Cycle Run(isa::Addr entry,
            const std::function<void(int tid, cpu::RegisterFile&)>& setup);

  machine::Machine& machine() { return *machine_; }

 private:
  machine::Machine* machine_;
  int num_threads_;
};

}  // namespace cobra::rt
