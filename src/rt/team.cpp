#include "rt/team.h"

#include <algorithm>
#include <string>

#include "support/check.h"
#include "verify/coherence_checker.h"

namespace cobra::rt {

IndexRange StaticChunk(int tid, int num_threads, std::int64_t n) {
  COBRA_CHECK(num_threads >= 1 && tid >= 0 && tid < num_threads);
  const std::int64_t base = n / num_threads;
  const std::int64_t rem = n % num_threads;
  const std::int64_t begin =
      static_cast<std::int64_t>(tid) * base + std::min<std::int64_t>(tid, rem);
  const std::int64_t len = base + (tid < rem ? 1 : 0);
  return IndexRange{begin, begin + len};
}

Team::Team(machine::Machine* machine, int num_threads,
           const machine::EngineConfig& engine)
    : machine_(machine),
      num_threads_(num_threads),
      engine_(machine::MakeEngine(engine)) {
  COBRA_CHECK(machine != nullptr);
  COBRA_CHECK_MSG(num_threads >= 1 && num_threads <= machine->num_cpus(),
                  "team larger than the machine");
}

Cycle Team::Run(isa::Addr entry,
                const std::function<void(int, cpu::RegisterFile&)>& setup) {
  // When the coherence checker is live and no harness (e.g. the fuzzer)
  // has already set a replay context, tag aborts with the engine and team
  // shape so a violation in an ordinary test run is still diagnosable.
  const bool tag_context = machine_->checker() != nullptr &&
                           verify::FailureContext().empty();
  if (tag_context) {
    verify::SetFailureContext(std::string("team run: engine=") +
                              engine_->name() +
                              " threads=" + std::to_string(num_threads_));
  }

  // Fork barrier: all participating cores start at the same instant.
  machine_->SyncCores();
  const Cycle start = machine_->GlobalTime();

  std::vector<CpuId> active;
  for (int tid = 0; tid < num_threads_; ++tid) {
    cpu::Core& core = machine_->core(tid);
    core.set_now(start);
    core.regs().Reset();
    if (setup) setup(tid, core.regs());
    core.Start(entry);
    active.push_back(tid);
  }

  engine_->Run(*machine_, active);

  // Join barrier.
  machine_->SyncCores();
  if (tag_context) verify::SetFailureContext("");
  return machine_->GlobalTime() - start;
}

}  // namespace cobra::rt
