// MG mini-benchmark: multigrid V-cycles — per-level smoothing, residual
// restriction to the coarser grid (stride-2 gather) and prolongation back
// (stride-2 scatter with interpolation). Each level's loops are distinct
// generated kernels, which is why MG has the largest loop and prefetch
// inventory of the suite (as in Table 1).
#include "npb/grid.h"

namespace cobra::npb {
namespace {

class MgBenchmark final : public GridBenchmark {
 public:
  // scale multiplies every grid level (mg@N: beyond-class-S working sets
  // for the sampled-simulation experiments).
  explicit MgBenchmark(int scale)
      : GridBenchmark(scale == 1 ? "mg" : "mg@" + std::to_string(scale),
                      /*timesteps=*/16),
        scale_(scale) {}

 protected:
  void Declare() override {
    // Levels 0 (finest) .. 3 (coarsest): interior sizes 4096 .. 512 at
    // scale 1.
    constexpr int kLevels = 4;
    std::array<std::int64_t, kLevels> n{};
    std::array<int, kLevels> u{}, r{};
    std::int64_t size = 4096 * scale_;
    for (int level = 0; level < kLevels; ++level) {
      n[static_cast<std::size_t>(level)] = size;
      u[static_cast<std::size_t>(level)] =
          AddArray("u" + std::to_string(level), size + 2, 0.50, 0.25);
      r[static_cast<std::size_t>(level)] =
          AddArray("r" + std::to_string(level), size + 2, 0.10, 0.05);
      size /= 2;
    }

    using Op = kgen::StreamOp;
    auto L = [&](int level) { return static_cast<std::size_t>(level); };

    // Downward leg: smooth + restrict at each level.
    for (int level = 0; level < kLevels - 1; ++level) {
      AddPhase(Stencil("psinv_" + std::to_string(level), u[L(level)],
                       r[L(level)], n[L(level)], 0.24, 0.50));
      // Restriction: coarse_u[i] = 0.25*(r[2i] + r[2i+2]) + 0.5*r[2i+1].
      Phase restrict_phase;
      restrict_phase.name = "rprj_" + std::to_string(level);
      restrict_phase.op = Op::kStencil3Sym;
      restrict_phase.n = n[L(level + 1)];
      restrict_phase.in = {r[L(level)], r[L(level)], r[L(level)]};
      restrict_phase.in_off = {0, 1, 2};
      restrict_phase.in_stride = {16, 16, 16};
      restrict_phase.out = u[L(level + 1)];
      restrict_phase.out_off = 1;
      restrict_phase.out_stride = 8;
      restrict_phase.a = 0.25;
      restrict_phase.b = 0.50;
      AddPhase(restrict_phase);
    }

    // Coarsest level: smooth twice through the residual array.
    AddPhase(Stencil("psinv_bottom", u[L(kLevels - 1)], r[L(kLevels - 1)],
                     n[L(kLevels - 1)], 0.26, 0.48));
    AddPhase(Elementwise("copy_bottom", Op::kCopy, r[L(kLevels - 1)], -1, -1,
                         u[L(kLevels - 1)], n[L(kLevels - 1)] + 2, 0.0, 0.0));

    // Upward leg: prolongate + post-smooth.
    for (int level = kLevels - 2; level >= 0; --level) {
      // Even points: u[2i+1] += coarse[i+1].
      Phase even;
      even.name = "interp_even_" + std::to_string(level);
      even.op = Op::kAdd;
      even.n = n[L(level + 1)];
      even.in = {u[L(level + 1)], u[L(level)], -1};
      even.in_off = {1, 1, 0};
      even.in_stride = {8, 16, 8};
      even.out = u[L(level)];
      even.out_off = 1;
      even.out_stride = 16;
      AddPhase(even);
      // Odd points: u[2i+2] = 0.5*(coarse[i+1] + coarse[i+2]) + u[2i+2].
      Phase odd;
      odd.name = "interp_odd_" + std::to_string(level);
      odd.op = Op::kStencil3Sym;
      odd.n = n[L(level + 1)] - 1;
      odd.in = {u[L(level + 1)], u[L(level)], u[L(level + 1)]};
      odd.in_off = {1, 2, 2};
      odd.in_stride = {8, 16, 8};
      odd.out = u[L(level)];
      odd.out_off = 2;
      odd.out_stride = 16;
      odd.a = 0.50;
      odd.b = 1.00;
      AddPhase(odd);
      AddPhase(Stencil("post_smooth_" + std::to_string(level), u[L(level)],
                       r[L(level)], n[L(level)], 0.22, 0.54));
    }

    // Residual norm scaling stand-in.
    AddPhase(Elementwise("norm_scale", Op::kScale, r[L(0)], -1, -1, r[L(0)],
                         n[L(0)], 0.45, 0.0));
  }

 private:
  const int scale_;
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeMg(int scale) {
  return std::make_unique<MgBenchmark>(scale);
}

}  // namespace cobra::npb
