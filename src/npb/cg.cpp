// CG mini-benchmark: conjugate-gradient iterations with a banded sparse
// matrix in CSR form, the computational core of NPB CG (class-S-like size).
//
// Sharing behaviour matches the original: the direction vector p is
// written partitioned (p = r + beta*p) and then *gathered* across all
// partitions by the matvec (q[i] = sum vals[k] * p[col[k]]), so every CG
// iteration turns partition-boundary and cross-partition p lines into
// coherent misses on loads — visible to the DEAR filter. The per-thread
// reduction partials share a single cache line (true sharing), as naive
// OpenMP reductions do.
#include <cmath>

#include "npb/common.h"
#include "support/check.h"

namespace cobra::npb {
namespace {

class CgBenchmark final : public NpbBenchmark {
 public:
  // scale=1 is the class-S-like default (1408 rows); larger scales multiply
  // the row count (the beyond-class-S geometry sampled simulation targets)
  // while keeping the band and iteration count fixed.
  explicit CgBenchmark(int scale)
      : NpbBenchmark(scale == 1 ? "cg" : "cg@" + std::to_string(scale)),
        kRows(1408 * scale) {}

  const std::int64_t kRows;
  static constexpr std::int64_t kBand = 6;  // 13-diagonal band
  static constexpr int kIterations = 16;

  void Build(kgen::Program& prog, const kgen::PrefetchPolicy& pf) override {
    matvec_ = EmitCsrMatvec(prog, "cg_matvec", pf);
    dot_ = EmitReduction(prog, "cg_dot_pq", kgen::ReduceOp::kDot, pf);
    sumsq_ = EmitReduction(prog, "cg_rho", kgen::ReduceOp::kSumSq, pf);

    kgen::StreamLoopSpec daxpy;
    daxpy.op = kgen::StreamOp::kDaxpy;
    daxpy.prefetch = pf;
    daxpy.output_aliases_input = 1;
    x_update_ = EmitStreamLoop(prog, "cg_x_update", daxpy);
    r_update_ = EmitStreamLoop(prog, "cg_r_update", daxpy);

    kgen::StreamLoopSpec triad;
    triad.op = kgen::StreamOp::kTriad;
    triad.prefetch = pf;
    triad.output_aliases_input = 1;
    p_update_ = EmitStreamLoop(prog, "cg_p_update", triad);

    // CSR structure: band of half-width kBand.
    rowptr_host_.assign(1, 0);
    col_host_.clear();
    vals_host_.clear();
    for (std::int64_t i = 0; i < kRows; ++i) {
      for (std::int64_t j = i - kBand; j <= i + kBand; ++j) {
        if (j < 0 || j >= kRows) continue;
        col_host_.push_back(j);
        vals_host_.push_back(i == j ? 4.0 : 1.0 / (2.0 + std::abs(i - j)));
      }
      rowptr_host_.push_back(static_cast<std::int64_t>(col_host_.size()));
    }

    rowptr_ = prog.Alloc(rowptr_host_.size() * 8);
    col_ = prog.Alloc(col_host_.size() * 8);
    vals_ = prog.Alloc(vals_host_.size() * 8);
    x_ = prog.Alloc(kRows * 8);
    p_ = prog.Alloc(kRows * 8);
    q_ = prog.Alloc(kRows * 8);
    r_ = prog.Alloc(kRows * 8);
    partials_ = prog.Alloc(32 * 8);  // one line per 16 threads: true sharing
  }

  void Init(machine::Machine& machine, int threads) override {
    threads_ = threads;
    for (std::size_t i = 0; i < rowptr_host_.size(); ++i) {
      machine.memory().WriteAs<std::int64_t>(rowptr_ + 8 * i, rowptr_host_[i]);
    }
    for (std::size_t i = 0; i < col_host_.size(); ++i) {
      machine.memory().WriteAs<std::int64_t>(col_ + 8 * i, col_host_[i]);
      machine.memory().WriteDouble(vals_ + 8 * i, vals_host_[i]);
    }
    for (std::int64_t i = 0; i < kRows; ++i) {
      machine.memory().WriteDouble(x_ + 8 * static_cast<Addr>(i), 0.0);
      machine.memory().WriteDouble(p_ + 8 * static_cast<Addr>(i), 1.0);
      machine.memory().WriteDouble(r_ + 8 * static_cast<Addr>(i), 1.0);
      machine.memory().WriteDouble(q_ + 8 * static_cast<Addr>(i), 0.0);
    }
    for (const Addr base : {x_, p_, q_, r_}) {
      PlacePartitioned(machine, base, kRows, 8, threads);
    }
    PlacePartitioned(machine, vals_,
                     static_cast<std::int64_t>(vals_host_.size()), 8, threads);
    rho_ = static_cast<double>(kRows);  // r = ones
    final_rho_ = 0.0;
  }

  Cycle Run(rt::Team& team) override {
    machine::Machine& machine = team.machine();
    const Cycle start = machine.GlobalTime();
    const int threads = team.num_threads();

    auto ReducePartials = [&](const kgen::LoopInfo& kernel, Addr vec_a,
                              Addr vec_b) {
      team.Run(kernel.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kRows);
        regs.WriteGr(14, vec_a + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, vec_b + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
        regs.WriteGr(17, partials_ + 8 * static_cast<Addr>(tid));
      });
      double total = 0.0;
      for (int tid = 0; tid < threads; ++tid) {
        total += machine.memory().ReadDouble(partials_ +
                                             8 * static_cast<Addr>(tid));
      }
      return total;
    };

    auto VectorUpdate = [&](const kgen::LoopInfo& kernel, Addr in0, Addr out,
                            double scalar) {
      team.Run(kernel.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kRows);
        regs.WriteGr(14, in0 + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, out + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(17, out + 8 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(18, static_cast<std::uint64_t>(chunk.size()));
        regs.WriteFr(6, scalar);
      });
    };

    for (int iter = 0; iter < kIterations; ++iter) {
      // q = A p
      team.Run(matvec_.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kRows);
        regs.WriteGr(14, rowptr_);
        regs.WriteGr(15, col_);
        regs.WriteGr(16, vals_);
        regs.WriteGr(17, p_);
        regs.WriteGr(18, q_);
        regs.WriteGr(19, static_cast<std::uint64_t>(chunk.begin));
        regs.WriteGr(20, static_cast<std::uint64_t>(chunk.end));
      });
      const double d = ReducePartials(dot_, p_, q_);
      const double alpha = rho_ / d;
      VectorUpdate(x_update_, p_, x_, alpha);    // x += alpha p
      VectorUpdate(r_update_, q_, r_, -alpha);   // r -= alpha q
      const double rho_new = ReducePartials(sumsq_, r_, r_);
      const double beta = rho_new / rho_;
      rho_ = rho_new;
      VectorUpdate(p_update_, r_, p_, beta);     // p = r + beta p
    }
    final_rho_ = rho_;
    return machine.GlobalTime() - start;
  }

  bool Verify(machine::Machine& machine) override {
    // Host replay with identical arithmetic (fused fma, same chunk order).
    std::vector<double> x(kRows, 0.0), p(kRows, 1.0), r(kRows, 1.0),
        q(kRows, 0.0);
    double rho = static_cast<double>(kRows);
    for (int iter = 0; iter < kIterations; ++iter) {
      for (std::int64_t i = 0; i < kRows; ++i) {
        double acc = 0.0;
        for (std::int64_t k = rowptr_host_[static_cast<std::size_t>(i)];
             k < rowptr_host_[static_cast<std::size_t>(i) + 1]; ++k) {
          acc = std::fma(vals_host_[static_cast<std::size_t>(k)],
                         p[static_cast<std::size_t>(
                             col_host_[static_cast<std::size_t>(k)])],
                         acc);
        }
        q[static_cast<std::size_t>(i)] = acc;
      }
      double d = 0.0;
      for (int tid = 0; tid < threads_; ++tid) {
        const auto chunk = rt::StaticChunk(tid, threads_, kRows);
        double part = 0.0;
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          part = std::fma(p[static_cast<std::size_t>(i)],
                          q[static_cast<std::size_t>(i)], part);
        }
        d += part;
      }
      const double alpha = rho / d;
      for (std::int64_t i = 0; i < kRows; ++i) {
        x[static_cast<std::size_t>(i)] = std::fma(
            alpha, p[static_cast<std::size_t>(i)],
            x[static_cast<std::size_t>(i)]);
        r[static_cast<std::size_t>(i)] = std::fma(
            -alpha, q[static_cast<std::size_t>(i)],
            r[static_cast<std::size_t>(i)]);
      }
      double rho_new = 0.0;
      for (int tid = 0; tid < threads_; ++tid) {
        const auto chunk = rt::StaticChunk(tid, threads_, kRows);
        double part = 0.0;
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          const double v = r[static_cast<std::size_t>(i)];
          part = std::fma(v, v, part);
        }
        rho_new += part;
      }
      const double beta = rho_new / rho;
      rho = rho_new;
      for (std::int64_t i = 0; i < kRows; ++i) {
        p[static_cast<std::size_t>(i)] = std::fma(
            beta, p[static_cast<std::size_t>(i)],
            r[static_cast<std::size_t>(i)]);
      }
    }
    if (!AlmostEqual(final_rho_, rho, 1e-9)) return false;
    const auto sim_x = ReadDoubles(machine, x_, kRows);
    for (std::int64_t i = 0; i < kRows; ++i) {
      if (!AlmostEqual(sim_x[static_cast<std::size_t>(i)],
                       x[static_cast<std::size_t>(i)], 1e-9)) {
        return false;
      }
    }
    return true;
  }

 private:
  kgen::LoopInfo matvec_, dot_, sumsq_, x_update_, r_update_, p_update_;
  std::vector<std::int64_t> rowptr_host_, col_host_;
  std::vector<double> vals_host_;
  Addr rowptr_ = 0, col_ = 0, vals_ = 0;
  Addr x_ = 0, p_ = 0, q_ = 0, r_ = 0, partials_ = 0;
  int threads_ = 1;
  double rho_ = 0.0;
  double final_rho_ = 0.0;
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeCg(int scale) {
  return std::make_unique<CgBenchmark>(scale);
}

}  // namespace cobra::npb
