// SP mini-benchmark: the Scalar-Pentadiagonal simulated CFD application.
// More (and finer-grained) sweep phases than BT, matching its larger
// static loop/prefetch inventory in Table 1.
#include "npb/grid.h"

namespace cobra::npb {
namespace {

class SpBenchmark final : public GridBenchmark {
 public:
  SpBenchmark() : GridBenchmark("sp", /*timesteps=*/16) {}

 protected:
  void Declare() override {
    constexpr std::int64_t kN = 4096;
    const int u = AddArray("u", kN + 2, 0.50, 0.25);
    const int rhs = AddArray("rhs", kN + 2, 0.20, 0.10);
    const int lhs = AddArray("lhs", kN + 2, 0.10, 0.05);
    const int rho = AddArray("rho", kN + 2, 0.60, 0.20);
    const int speed = AddArray("speed", kN + 2, 0.40, 0.15);
    const int ws = AddArray("ws", kN + 2, 0.30, 0.10);

    using Op = kgen::StreamOp;
    AddPhase(Elementwise("compute_rho", Op::kScale, u, -1, -1, rho, kN, 0.80,
                         0.0));
    AddPhase(Elementwise("compute_speed", Op::kBlend4, rho, u, ws, speed, kN,
                         0.30, 0.40));
    AddPhase(Stencil("rhs_x", u, rhs, kN, 0.18, 0.58));
    AddPhase(Stencil("rhs_y", rhs, lhs, kN, 0.16, 0.62));
    AddPhase(Stencil("rhs_z", lhs, ws, kN, 0.14, 0.66));
    AddPhase(Elementwise("txinvr", Op::kBlend4, rho, rhs, speed, rhs, kN,
                         0.25, 0.50));
    AddPhase(Elementwise("x_solve_f", Op::kTriad, lhs, u, -1, u, kN, 0.35,
                         0.0));
    AddPhase(Elementwise("x_solve_b", Op::kDaxpy, ws, rhs, -1, rhs, kN, 0.20,
                         0.0));
    AddPhase(Elementwise("y_solve_f", Op::kTriad, lhs, rhs, -1, rhs, kN,
                         0.30, 0.0));
    AddPhase(Elementwise("y_solve_b", Op::kDaxpy, speed, u, -1, u, kN, 0.15,
                         0.0));
    AddPhase(Elementwise("z_solve_f", Op::kTriad, ws, u, -1, u, kN, 0.25,
                         0.0));
    AddPhase(Elementwise("z_solve_b", Op::kDaxpy, rho, rhs, -1, rhs, kN,
                         0.18, 0.0));
    AddPhase(Elementwise("tzetar", Op::kBlend4, u, speed, rhs, speed, kN,
                         0.22, 0.44));
    AddPhase(Elementwise("add", Op::kDaxpy, rhs, u, -1, u, kN, 0.12, 0.0));
    AddPhase(Elementwise("damp_u", Op::kScale, u, -1, -1, u, kN, 0.55, 0.0));
    AddPhase(Elementwise("damp_rhs", Op::kScale, rhs, -1, -1, rhs, kN, 0.55, 0.0));
  }
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeSp() {
  return std::make_unique<SpBenchmark>();
}

}  // namespace cobra::npb
