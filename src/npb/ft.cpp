// FT mini-benchmark: the 3-D FFT kernel's phase structure — evolve
// (pointwise scaling of the frequency data), butterfly combination passes
// over complex (re/im) planes at shifted offsets, strided pair-combine
// passes, and bit-reversal-style shuffles (while-loops, giving FT its
// br.wtop-heavy Table 1 signature).
#include "npb/grid.h"

namespace cobra::npb {
namespace {

class FtBenchmark final : public GridBenchmark {
 public:
  FtBenchmark() : GridBenchmark("ft", /*timesteps=*/16) {}

 protected:
  void Declare() override {
    constexpr std::int64_t kN = 4096;
    constexpr std::int64_t kHalf = kN / 2;
    const int re = AddArray("re", kN + 2, 0.45, 0.30);
    const int im = AddArray("im", kN + 2, 0.35, 0.25);
    const int sre = AddArray("scratch_re", kN + 2, 0.0, 0.0);
    const int sim = AddArray("scratch_im", kN + 2, 0.0, 0.0);

    using Op = kgen::StreamOp;
    // evolve: scale the frequency data (twiddle magnitude per step).
    AddPhase(Elementwise("evolve_re", Op::kScale, re, -1, -1, re, kN, 0.80,
                         0.0));
    AddPhase(Elementwise("evolve_im", Op::kScale, im, -1, -1, im, kN, 0.80,
                         0.0));
    // Butterfly pass: s[i] = w*x[i+half] + x[i] over the lower half.
    {
      Phase fly = Elementwise("fftx_re", Op::kDaxpy, re, re, -1, sre, kHalf,
                              0.25, 0.0);
      fly.in_off = {kHalf, 0, 0};
      AddPhase(fly);
      Phase fly_im = Elementwise("fftx_im", Op::kDaxpy, im, im, -1, sim,
                                 kHalf, 0.25, 0.0);
      fly_im.in_off = {kHalf, 0, 0};
      AddPhase(fly_im);
    }
    // Strided pair-combine (radix-2 step): out[i] = s[2i] + s[2i+1].
    {
      Phase pair = Elementwise("ffty_re", Op::kDaxpy, sre, sre, -1, re, kHalf,
                               -0.50, 0.0);
      pair.in_off = {0, 1, 0};
      pair.in_stride = {16, 16, 8};
      AddPhase(pair);
      Phase pair_im = Elementwise("ffty_im", Op::kDaxpy, sim, sim, -1, im,
                                  kHalf, -0.50, 0.0);
      pair_im.in_off = {0, 1, 0};
      pair_im.in_stride = {16, 16, 8};
      AddPhase(pair_im);
    }
    // Cross-mix the planes (complex rotation flavour).
    AddPhase(Elementwise("twiddle", Op::kBlend4, re, im, sre, im, kN, 0.25,
                         0.30));
    // Bit-reversal-style shuffles: while-loops (br.wtop).
    AddPhase(WhileCopy("reverse_re_out", re, sre, kN));
    AddPhase(WhileCopy("reverse_im_out", im, sim, kN));
    AddPhase(WhileCopy("reverse_re_back", sre, re, kN));
    AddPhase(WhileCopy("reverse_im_back", sim, im, kN));
    // Checksum-feeding reduction stand-in.
    AddPhase(Elementwise("checksum_mix", Op::kDaxpy, im, re, -1, re, kN,
                         0.15, 0.0));
    AddPhase(Elementwise("damp_re", Op::kScale, re, -1, -1, re, kN, 0.60, 0.0));
    AddPhase(Elementwise("damp_im", Op::kScale, im, -1, -1, im, kN, 0.60, 0.0));
  }
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeFt() {
  return std::make_unique<FtBenchmark>();
}

}  // namespace cobra::npb
