// NPB mini-suite: OpenMP-style reimplementations of the NAS Parallel
// Benchmarks' computational cores, scaled to class-S-like geometries that a
// cycle-approximate interpreter can run in seconds.
//
// Each benchmark owns its generated program (so the compiler prefetch
// policy can be varied per binary), initializes its data in simulated
// memory (with first-touch page placement by partition, as the paper
// assumes), runs its timed iterations via rt::Team (one Team::Run per
// OpenMP parallel-for), and verifies functionally against a host replay.
//
// The mini-kernels preserve the property the paper exploits in Section 5:
// at small working sets a large fraction of misses are coherence misses
// from true sharing at partition boundaries (halo reads, shared vectors)
// and from aggressive prefetch overshoot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "rt/team.h"
#include "support/simtypes.h"

namespace cobra::npb {

using mem::Addr;

class NpbBenchmark {
 public:
  explicit NpbBenchmark(std::string name) : name_(std::move(name)) {}
  virtual ~NpbBenchmark() = default;

  const std::string& name() const { return name_; }

  // Emits every kernel into `prog` with the given compiler prefetch policy
  // and allocates the benchmark's data segment.
  virtual void Build(kgen::Program& prog, const kgen::PrefetchPolicy& pf) = 0;

  // Writes initial data into simulated memory and places pages per the
  // first-touch-by-partition policy for `threads` threads.
  virtual void Init(machine::Machine& machine, int threads) = 0;

  // Runs all timed iterations on the team; returns elapsed cycles.
  virtual Cycle Run(rt::Team& team) = 0;

  // Functional verification against a host-side reference.
  virtual bool Verify(machine::Machine& machine) = 0;

 protected:
  std::string name_;
};

// Benchmarks in the order of Table 1: bt sp lu ft mg cg ep is.
std::vector<std::string> SuiteNames();
// The six benchmarks of Figures 5-7 (IS and EP are excluded: they show no
// long-latency coherent misses).
std::vector<std::string> ResultBenchmarkNames();

std::unique_ptr<NpbBenchmark> MakeBenchmark(const std::string& name);

// --- Shared helpers ----------------------------------------------------------

// Writes `values` as doubles starting at `base`.
void WriteDoubles(machine::Machine& machine, Addr base,
                  const std::vector<double>& values);
std::vector<double> ReadDoubles(machine::Machine& machine, Addr base,
                                std::size_t n);

// First-touch placement of an n-element array of `elem_bytes` partitioned
// with the static schedule over `threads` threads.
void PlacePartitioned(machine::Machine& machine, Addr base, std::int64_t n,
                      int elem_bytes, int threads);

// Relative comparison with tolerance (FP reductions are order-sensitive
// only across thread counts; within a fixed team the replay is exact, but
// a small tolerance keeps verification robust).
bool AlmostEqual(double a, double b, double rel_tol = 1e-9);

}  // namespace cobra::npb
