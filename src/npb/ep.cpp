// EP mini-benchmark: the Embarrassingly Parallel kernel — per-thread
// pseudo-random pair generation with a unit-disk acceptance test, almost no
// memory traffic. Included for Table 1 and as a negative control: EP shows
// no long-latency coherent misses, so COBRA must leave it alone (the paper
// excludes EP from Figures 5-7 for exactly this reason).
#include <cmath>

#include "npb/common.h"

namespace cobra::npb {
namespace {

class EpBenchmark final : public NpbBenchmark {
 public:
  EpBenchmark() : NpbBenchmark("ep") {}

  static constexpr std::int64_t kTrials = 1 << 17;

  void Build(kgen::Program& prog, const kgen::PrefetchPolicy& pf) override {
    kernel_ = EmitEpKernel(prog, "ep_kernel", pf);
    accepted_ = prog.Alloc(32 * 8);
    rejected_ = prog.Alloc(32 * 8);
    sums_ = prog.Alloc(32 * 8);
  }

  void Init(machine::Machine& machine, int threads) override {
    threads_ = threads;
    for (int tid = 0; tid < 32; ++tid) {
      machine.memory().WriteAs<std::int64_t>(accepted_ + 8 * static_cast<Addr>(tid), 0);
      machine.memory().WriteAs<std::int64_t>(rejected_ + 8 * static_cast<Addr>(tid), 0);
      machine.memory().WriteDouble(sums_ + 8 * static_cast<Addr>(tid), 0.0);
    }
  }

  Cycle Run(rt::Team& team) override {
    machine::Machine& machine = team.machine();
    const Cycle start = machine.GlobalTime();
    const int threads = team.num_threads();
    team.Run(kernel_.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, threads, kTrials);
      regs.WriteGr(14, Seed(tid));
      regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteGr(16, accepted_ + 8 * static_cast<Addr>(tid));
      regs.WriteGr(17, rejected_ + 8 * static_cast<Addr>(tid));
      regs.WriteGr(18, sums_ + 8 * static_cast<Addr>(tid));
      regs.WriteFr(6, 2.0);
      regs.WriteFr(7, 3.0);
    });
    return machine.GlobalTime() - start;
  }

  bool Verify(machine::Machine& machine) override {
    std::int64_t total_accepted = 0;
    for (int tid = 0; tid < threads_; ++tid) {
      const auto chunk = rt::StaticChunk(tid, threads_, kTrials);
      std::uint64_t state = Seed(tid);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      auto deviate = [&next] {
        const std::uint64_t bits =
            (next() & 0xfffffffffffffULL) | 0x3ff0000000000000ULL;
        double v;
        __builtin_memcpy(&v, &bits, 8);
        return std::fma(v, 2.0, -3.0);
      };
      std::int64_t accepted = 0, rejected = 0;
      double sum = 0.0;
      for (std::int64_t i = 0; i < chunk.size(); ++i) {
        const double x = deviate();
        const double y = deviate();
        double r2 = std::fma(x, x, 0.0);
        r2 = std::fma(y, y, r2);
        if (r2 <= 1.0) {
          ++accepted;
          sum = std::fma(std::sqrt(r2), 1.0, sum);
        } else {
          ++rejected;
        }
      }
      total_accepted += accepted;
      if (machine.memory().ReadAs<std::int64_t>(
              accepted_ + 8 * static_cast<Addr>(tid)) != accepted ||
          machine.memory().ReadAs<std::int64_t>(
              rejected_ + 8 * static_cast<Addr>(tid)) != rejected ||
          machine.memory().ReadDouble(sums_ + 8 * static_cast<Addr>(tid)) !=
              sum) {
        return false;
      }
    }
    // Sanity: the acceptance rate approximates pi/4.
    const double rate = static_cast<double>(total_accepted) /
                        static_cast<double>(kTrials);
    return rate > 0.75 && rate < 0.82;
  }

 private:
  static std::uint64_t Seed(int tid) {
    return 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(tid + 1);
  }

  kgen::LoopInfo kernel_;
  Addr accepted_ = 0, rejected_ = 0, sums_ = 0;
  int threads_ = 1;
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeEp() {
  return std::make_unique<EpBenchmark>();
}

}  // namespace cobra::npb
