#include "npb/common.h"

#include <cmath>
#include <cstdlib>

#include "support/check.h"

namespace cobra::npb {

std::unique_ptr<NpbBenchmark> MakeBt();
std::unique_ptr<NpbBenchmark> MakeSp();
std::unique_ptr<NpbBenchmark> MakeLu();
std::unique_ptr<NpbBenchmark> MakeFt();
std::unique_ptr<NpbBenchmark> MakeMg(int scale);
std::unique_ptr<NpbBenchmark> MakeCg(int scale);
std::unique_ptr<NpbBenchmark> MakeEp();
std::unique_ptr<NpbBenchmark> MakeIs();

std::vector<std::string> SuiteNames() {
  return {"bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"};
}

std::vector<std::string> ResultBenchmarkNames() {
  return {"bt", "sp", "lu", "ft", "mg", "cg"};
}

std::unique_ptr<NpbBenchmark> MakeBenchmark(const std::string& name) {
  if (name == "bt") return MakeBt();
  if (name == "sp") return MakeSp();
  if (name == "lu") return MakeLu();
  if (name == "ft") return MakeFt();
  if (name == "mg") return MakeMg(1);
  if (name == "cg") return MakeCg(1);
  if (name == "ep") return MakeEp();
  if (name == "is") return MakeIs();
  // Scaled geometry: "<bench>@N" multiplies the problem size by N
  // (beyond-class-S working sets for the sampled-simulation experiments).
  const std::size_t at = name.find('@');
  if (at != std::string::npos) {
    const std::string base = name.substr(0, at);
    const int scale = std::atoi(name.c_str() + at + 1);
    COBRA_CHECK_MSG(scale >= 1, "bad NPB scale suffix");
    if (base == "cg") return MakeCg(scale);
    if (base == "mg") return MakeMg(scale);
  }
  COBRA_UNREACHABLE("unknown NPB benchmark name");
}

void WriteDoubles(machine::Machine& machine, Addr base,
                  const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    machine.memory().WriteDouble(base + 8 * i, values[i]);
  }
}

std::vector<double> ReadDoubles(machine::Machine& machine, Addr base,
                                std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = machine.memory().ReadDouble(base + 8 * i);
  }
  return out;
}

void PlacePartitioned(machine::Machine& machine, Addr base, std::int64_t n,
                      int elem_bytes, int threads) {
  for (int tid = 0; tid < threads; ++tid) {
    const auto chunk = rt::StaticChunk(tid, threads, n);
    if (chunk.size() <= 0) continue;
    machine.memory().PlaceRange(
        base + static_cast<Addr>(chunk.begin * elem_bytes),
        base + static_cast<Addr>(chunk.end * elem_bytes),
        machine.NodeOf(tid));
  }
}

bool AlmostEqual(double a, double b, double rel_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * std::fmax(scale, 1.0);
}

}  // namespace cobra::npb
