#include "npb/common.h"

#include <cmath>

#include "support/check.h"

namespace cobra::npb {

std::unique_ptr<NpbBenchmark> MakeBt();
std::unique_ptr<NpbBenchmark> MakeSp();
std::unique_ptr<NpbBenchmark> MakeLu();
std::unique_ptr<NpbBenchmark> MakeFt();
std::unique_ptr<NpbBenchmark> MakeMg();
std::unique_ptr<NpbBenchmark> MakeCg();
std::unique_ptr<NpbBenchmark> MakeEp();
std::unique_ptr<NpbBenchmark> MakeIs();

std::vector<std::string> SuiteNames() {
  return {"bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"};
}

std::vector<std::string> ResultBenchmarkNames() {
  return {"bt", "sp", "lu", "ft", "mg", "cg"};
}

std::unique_ptr<NpbBenchmark> MakeBenchmark(const std::string& name) {
  if (name == "bt") return MakeBt();
  if (name == "sp") return MakeSp();
  if (name == "lu") return MakeLu();
  if (name == "ft") return MakeFt();
  if (name == "mg") return MakeMg();
  if (name == "cg") return MakeCg();
  if (name == "ep") return MakeEp();
  if (name == "is") return MakeIs();
  COBRA_UNREACHABLE("unknown NPB benchmark name");
}

void WriteDoubles(machine::Machine& machine, Addr base,
                  const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    machine.memory().WriteDouble(base + 8 * i, values[i]);
  }
}

std::vector<double> ReadDoubles(machine::Machine& machine, Addr base,
                                std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = machine.memory().ReadDouble(base + 8 * i);
  }
  return out;
}

void PlacePartitioned(machine::Machine& machine, Addr base, std::int64_t n,
                      int elem_bytes, int threads) {
  for (int tid = 0; tid < threads; ++tid) {
    const auto chunk = rt::StaticChunk(tid, threads, n);
    if (chunk.size() <= 0) continue;
    machine.memory().PlaceRange(
        base + static_cast<Addr>(chunk.begin * elem_bytes),
        base + static_cast<Addr>(chunk.end * elem_bytes),
        machine.NodeOf(tid));
  }
}

bool AlmostEqual(double a, double b, double rel_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * std::fmax(scale, 1.0);
}

}  // namespace cobra::npb
