#include "npb/grid.h"

#include <cmath>

#include "support/check.h"

namespace cobra::npb {

GridBenchmark::Phase GridBenchmark::Stencil(std::string name, int src,
                                            int dst, std::int64_t interior_n,
                                            double a, double b) {
  Phase phase;
  phase.name = std::move(name);
  phase.op = kgen::StreamOp::kStencil3Sym;
  phase.n = interior_n;
  phase.in = {src, src, src};
  phase.in_off = {0, 1, 2};  // left, centre, right
  phase.out = dst;
  phase.out_off = 1;
  phase.a = a;
  phase.b = b;
  return phase;
}

GridBenchmark::Phase GridBenchmark::Elementwise(std::string name,
                                                kgen::StreamOp op, int in0,
                                                int in1, int in2, int out,
                                                std::int64_t n, double a,
                                                double b) {
  Phase phase;
  phase.name = std::move(name);
  phase.op = op;
  phase.n = n;
  phase.in = {in0, in1, in2};
  phase.out = out;
  phase.a = a;
  phase.b = b;
  return phase;
}

GridBenchmark::Phase GridBenchmark::WhileCopy(std::string name, int src,
                                              int dst, std::int64_t n) {
  Phase phase;
  phase.name = std::move(name);
  phase.kind = PhaseKind::kWhileCopy;
  phase.n = n;
  phase.in = {src, -1, -1};
  phase.out = dst;
  return phase;
}

void GridBenchmark::Build(kgen::Program& prog,
                          const kgen::PrefetchPolicy& pf) {
  if (!declared_) {
    Declare();
    declared_ = true;
  }
  // Determinism rule: an input may alias the output array only as a pure
  // elementwise alias (same offset and stride). Anything else (e.g. an
  // in-place stencil) would race under concurrent chunks and could not be
  // replayed exactly.
  for (const Phase& phase : phases_) {
    const int k = phase.kind == PhaseKind::kWhileCopy
                      ? 1
                      : kgen::StreamOpInputs(phase.op);
    for (int s = 0; s < k; ++s) {
      const auto us = static_cast<std::size_t>(s);
      if (phase.in[us] == phase.out) {
        COBRA_CHECK_MSG(phase.in_off[us] == phase.out_off &&
                            phase.in_stride[us] == phase.out_stride,
                        "in-place phase must be a pure elementwise alias");
      }
    }
  }

  for (Phase& phase : phases_) {
    if (phase.kind == PhaseKind::kWhileCopy) {
      phase.kernel = EmitWhileCopy(prog, name_ + "_" + phase.name, pf);
      continue;
    }
    kgen::StreamLoopSpec spec;
    spec.op = phase.op;
    spec.prefetch = pf;
    spec.input_strides = phase.in_stride;
    spec.output_stride = phase.out_stride;
    // In-place updates: tell the emitter which input the output aliases so
    // the prefetch chains are not doubled up on the same stream.
    const int k = kgen::StreamOpInputs(phase.op);
    for (int s = 0; s < k; ++s) {
      if (phase.in[static_cast<std::size_t>(s)] == phase.out &&
          phase.in_off[static_cast<std::size_t>(s)] == phase.out_off) {
        spec.output_aliases_input = s;
      }
    }
    phase.kernel = EmitStreamLoop(prog, name_ + "_" + phase.name, spec);
  }
  bases_.clear();
  for (const ArrayDecl& decl : arrays_) {
    bases_.push_back(prog.Alloc(static_cast<std::uint64_t>(decl.elems) * 8));
  }
}

void GridBenchmark::Init(machine::Machine& machine, int threads) {
  threads_ = threads;
  for (std::size_t idx = 0; idx < arrays_.size(); ++idx) {
    const ArrayDecl& decl = arrays_[idx];
    for (std::int64_t i = 0; i < decl.elems; ++i) {
      machine.memory().WriteDouble(
          bases_[idx] + 8 * static_cast<Addr>(i),
          decl.init_base + decl.init_step * std::sin(0.05 * static_cast<double>(i)));
    }
    PlacePartitioned(machine, bases_[idx], decl.elems, 8, threads);
  }
}

Cycle GridBenchmark::Run(rt::Team& team) {
  machine::Machine& machine = team.machine();
  const Cycle start = machine.GlobalTime();
  const int threads = team.num_threads();

  for (int step = 0; step < timesteps_; ++step) {
    for (const Phase& phase : phases_) {
      const int k = phase.kind == PhaseKind::kWhileCopy
                        ? 1
                        : kgen::StreamOpInputs(phase.op);
      team.Run(phase.kernel.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, phase.n);
        for (int s = 0; s < k; ++s) {
          const auto us = static_cast<std::size_t>(s);
          const Addr base = bases_[static_cast<std::size_t>(phase.in[us])] +
                            8 * static_cast<Addr>(phase.in_off[us]) +
                            static_cast<Addr>(phase.in_stride[us]) *
                                static_cast<Addr>(chunk.begin);
          regs.WriteGr(kgen::ArgReg(s), base);
        }
        const Addr out =
            bases_[static_cast<std::size_t>(phase.out)] +
            8 * static_cast<Addr>(phase.out_off) +
            static_cast<Addr>(phase.out_stride) *
                static_cast<Addr>(chunk.begin);
        if (phase.kind == PhaseKind::kWhileCopy) {
          regs.WriteGr(15, out);
          regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
        } else {
          regs.WriteGr(17, out);
          regs.WriteGr(18, static_cast<std::uint64_t>(chunk.size()));
          regs.WriteFr(6, phase.a);
          regs.WriteFr(7, phase.b);
        }
      });
    }
  }
  return machine.GlobalTime() - start;
}

bool GridBenchmark::Verify(machine::Machine& machine) {
  // Host replay with identical per-phase arithmetic.
  std::vector<std::vector<double>> host(arrays_.size());
  for (std::size_t idx = 0; idx < arrays_.size(); ++idx) {
    const ArrayDecl& decl = arrays_[idx];
    host[idx].resize(static_cast<std::size_t>(decl.elems));
    for (std::int64_t i = 0; i < decl.elems; ++i) {
      host[idx][static_cast<std::size_t>(i)] =
          decl.init_base + decl.init_step * std::sin(0.05 * static_cast<double>(i));
    }
  }

  for (int step = 0; step < timesteps_; ++step) {
    for (const Phase& phase : phases_) {
      // Snapshot inputs: a simulated phase reads all inputs as-of phase
      // start only when out does not alias inputs *with overlap*; our
      // phases are either pure elementwise in-place (safe: each element
      // read before written) or write a different array, so an in-order
      // element walk reproduces the kernel exactly.
      for (std::int64_t i = 0; i < phase.n; ++i) {
        auto In = [&](int s) -> double {
          const auto us = static_cast<std::size_t>(s);
          const std::int64_t index =
              phase.in_off[us] +
              (phase.in_stride[us] / 8) * i;
          return host[static_cast<std::size_t>(phase.in[us])]
                     [static_cast<std::size_t>(index)];
        };
        double value = 0.0;
        if (phase.kind == PhaseKind::kWhileCopy) {
          value = In(0);
        } else {
          switch (phase.op) {
            case kgen::StreamOp::kCopy:
              value = In(0);
              break;
            case kgen::StreamOp::kScale:
              value = std::fma(phase.a, In(0), 0.0);
              break;
            case kgen::StreamOp::kDaxpy:
              value = std::fma(phase.a, In(0), In(1));
              break;
            case kgen::StreamOp::kAdd:
              value = std::fma(In(0), 1.0, In(1));
              break;
            case kgen::StreamOp::kTriad:
              value = std::fma(phase.a, In(1), In(0));
              break;
            case kgen::StreamOp::kStencil3Sym:
              value = std::fma(phase.a, std::fma(In(0), 1.0, In(2)),
                               std::fma(phase.b, In(1), 0.0));
              break;
            case kgen::StreamOp::kBlend4:
              value = std::fma(std::fma(phase.a, In(0), 0.0), In(1),
                               std::fma(phase.b, In(2), 0.0));
              break;
          }
        }
        const std::int64_t out_index =
            phase.out_off + (phase.out_stride / 8) * i;
        host[static_cast<std::size_t>(phase.out)]
            [static_cast<std::size_t>(out_index)] = value;
      }
    }
  }

  for (std::size_t idx = 0; idx < arrays_.size(); ++idx) {
    const auto sim = ReadDoubles(machine, bases_[idx],
                                 static_cast<std::size_t>(arrays_[idx].elems));
    for (std::size_t i = 0; i < sim.size(); ++i) {
      if (!AlmostEqual(sim[i], host[idx][i], 1e-9)) return false;
    }
  }
  return true;
}

}  // namespace cobra::npb
