// BT mini-benchmark: the Block-Tridiagonal simulated CFD application,
// modelled as its characteristic phase sequence — RHS computation (halo
// stencils), alternating-direction implicit line solves (flux blends and
// line updates), and the solution add. One generated loop per phase.
#include "npb/grid.h"

namespace cobra::npb {
namespace {

class BtBenchmark final : public GridBenchmark {
 public:
  BtBenchmark() : GridBenchmark("bt", /*timesteps=*/16) {}

 protected:
  void Declare() override {
    constexpr std::int64_t kN = 4096;  // 64x64 grid, flattened
    const int u = AddArray("u", kN + 2, 0.50, 0.30);
    const int rhs = AddArray("rhs", kN + 2, 0.20, 0.10);
    const int tmp = AddArray("tmp", kN + 2, 0.00, 0.05);
    const int us = AddArray("us", kN + 2, 0.40, 0.20);
    const int vs = AddArray("vs", kN + 2, 0.30, 0.25);

    using Op = kgen::StreamOp;
    AddPhase(Stencil("rhs_x", u, rhs, kN, 0.20, 0.55));
    AddPhase(Stencil("rhs_y", rhs, tmp, kN, 0.15, 0.60));
    AddPhase(Elementwise("xi_flux", Op::kBlend4, u, us, vs, us, kN, 0.30,
                         0.50));
    AddPhase(Elementwise("x_solve", Op::kTriad, tmp, u, -1, u, kN, 0.40,
                         0.0));
    AddPhase(Elementwise("x_backsub", Op::kDaxpy, us, rhs, -1, rhs, kN, 0.25,
                         0.0));
    AddPhase(Elementwise("eta_flux", Op::kBlend4, u, vs, us, vs, kN, 0.25,
                         0.45));
    AddPhase(Elementwise("y_solve", Op::kTriad, tmp, rhs, -1, rhs, kN, 0.35,
                         0.0));
    AddPhase(Elementwise("y_backsub", Op::kDaxpy, vs, u, -1, u, kN, 0.20,
                         0.0));
    AddPhase(Elementwise("add", Op::kDaxpy, rhs, u, -1, u, kN, 0.10, 0.0));
    AddPhase(Elementwise("qs", Op::kScale, u, -1, -1, tmp, kN, 0.50, 0.0));
    AddPhase(Elementwise("damp_u", Op::kScale, u, -1, -1, u, kN, 0.55, 0.0));
    AddPhase(Elementwise("damp_rhs", Op::kScale, rhs, -1, -1, rhs, kN, 0.55, 0.0));
  }
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeBt() {
  return std::make_unique<BtBenchmark>();
}

}  // namespace cobra::npb
