// IS mini-benchmark: integer bucket sort (counting sort) — per-thread
// private histograms, a parallel merge, a sequential exclusive scan, a
// sequential stable ranking pass, and a parallel permutation scatter.
// Mostly integer loads/stores through L1; like EP it shows no long-latency
// coherent misses and is excluded from the paper's result figures.
#include <algorithm>
#include <functional>

#include "npb/common.h"
#include "support/rng.h"

namespace cobra::npb {
namespace {

class IsBenchmark final : public NpbBenchmark {
 public:
  IsBenchmark() : NpbBenchmark("is") {}

  static constexpr std::int64_t kKeys = 32768;
  static constexpr std::int64_t kBuckets = 512;
  static constexpr int kMaxThreads = 16;
  static constexpr int kIterations = 3;

  void Build(kgen::Program& prog, const kgen::PrefetchPolicy& pf) override {
    fill_ = EmitFill32(prog, "is_fill", pf);
    hist_ = EmitHistogram(prog, "is_hist", pf);
    merge_ = EmitIntAccumulate(prog, "is_merge", pf);
    scan_ = EmitScan(prog, "is_scan", pf);
    rank_ = EmitRank(prog, "is_rank", pf);
    permute_ = EmitPermute(prog, "is_permute", pf);

    keys_ = prog.Alloc(kKeys * 4);
    hists_ = prog.Alloc(static_cast<std::uint64_t>(kMaxThreads) * kBuckets * 4);
    total_hist_ = prog.Alloc(kBuckets * 4);
    offsets_ = prog.Alloc(kBuckets * 4);
    grand_total_ = prog.Alloc(8);
    rank_out_ = prog.Alloc(kKeys * 4);
    sorted_ = prog.Alloc(kKeys * 4);
  }

  void Init(machine::Machine& machine, int threads) override {
    threads_ = threads;
    support::Rng rng(0xC0B7A);
    keys_host_.resize(kKeys);
    for (std::int64_t i = 0; i < kKeys; ++i) {
      keys_host_[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(rng.NextBounded(kBuckets));
      machine.memory().WriteAs<std::int32_t>(
          keys_ + 4 * static_cast<Addr>(i),
          keys_host_[static_cast<std::size_t>(i)]);
    }
    PlacePartitioned(machine, keys_, kKeys, 4, threads);
  }

  Cycle Run(rt::Team& team) override {
    machine::Machine& machine = team.machine();
    const Cycle start = machine.GlobalTime();
    const int threads = team.num_threads();

    auto OnThread0 = [&](const kgen::LoopInfo& kernel,
                         const std::function<void(cpu::RegisterFile&)>& args) {
      team.Run(kernel.entry, [&](int tid, cpu::RegisterFile& regs) {
        if (tid == 0) {
          args(regs);
        } else {
          // Empty chunk: the n<=0 guard exits immediately. The count
          // argument register differs per kernel; zero them all.
          regs.WriteGr(15, 0);
          regs.WriteGr(16, 0);
          regs.WriteGr(17, 0);
        }
      });
    };

    for (int iter = 0; iter < kIterations; ++iter) {
      // Zero the private and total histograms (parallel over buckets).
      team.Run(fill_.entry, [&](int tid, cpu::RegisterFile& regs) {
        regs.WriteGr(14, hists_ + static_cast<Addr>(tid) * kBuckets * 4);
        regs.WriteGr(15, tid < threads ? kBuckets : 0);
        regs.WriteGr(16, 0);
      });
      team.Run(fill_.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kBuckets);
        regs.WriteGr(14, total_hist_ + 4 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, static_cast<std::uint64_t>(chunk.size()));
        regs.WriteGr(16, 0);
      });
      // Private histograms over each thread's key chunk.
      team.Run(hist_.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kKeys);
        regs.WriteGr(14, keys_ + 4 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, hists_ + static_cast<Addr>(tid) * kBuckets * 4);
        regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      });
      // Merge: total += hist_t, each pass parallel over bucket chunks.
      for (int t = 0; t < threads; ++t) {
        team.Run(merge_.entry, [&](int tid, cpu::RegisterFile& regs) {
          const auto chunk = rt::StaticChunk(tid, threads, kBuckets);
          regs.WriteGr(14, hists_ + static_cast<Addr>(t) * kBuckets * 4 +
                               4 * static_cast<Addr>(chunk.begin));
          regs.WriteGr(15, total_hist_ + 4 * static_cast<Addr>(chunk.begin));
          regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
        });
      }
      // Exclusive scan and ranking on thread 0 (sequential, stable).
      OnThread0(scan_, [&](cpu::RegisterFile& regs) {
        regs.WriteGr(14, total_hist_);
        regs.WriteGr(15, offsets_);
        regs.WriteGr(16, kBuckets);
        regs.WriteGr(17, grand_total_);
      });
      OnThread0(rank_, [&](cpu::RegisterFile& regs) {
        regs.WriteGr(14, keys_);
        regs.WriteGr(15, offsets_);
        regs.WriteGr(16, rank_out_);
        regs.WriteGr(17, kKeys);
      });
      // Permutation scatter (parallel over key chunks).
      team.Run(permute_.entry, [&](int tid, cpu::RegisterFile& regs) {
        const auto chunk = rt::StaticChunk(tid, threads, kKeys);
        regs.WriteGr(14, keys_ + 4 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(15, rank_out_ + 4 * static_cast<Addr>(chunk.begin));
        regs.WriteGr(16, sorted_);
        regs.WriteGr(17, static_cast<std::uint64_t>(chunk.size()));
      });
    }
    return machine.GlobalTime() - start;
  }

  bool Verify(machine::Machine& machine) override {
    if (machine.memory().ReadAs<std::int64_t>(grand_total_) != kKeys) {
      return false;
    }
    // The output must be the sorted key multiset.
    std::vector<std::int32_t> reference = keys_host_;
    std::sort(reference.begin(), reference.end());
    for (std::int64_t i = 0; i < kKeys; ++i) {
      if (machine.memory().ReadAs<std::int32_t>(
              sorted_ + 4 * static_cast<Addr>(i)) !=
          reference[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  }

 private:
  kgen::LoopInfo fill_, hist_, merge_, scan_, rank_, permute_;
  Addr keys_ = 0, hists_ = 0, total_hist_ = 0, offsets_ = 0,
       grand_total_ = 0, rank_out_ = 0, sorted_ = 0;
  std::vector<std::int32_t> keys_host_;
  int threads_ = 1;
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeIs() {
  return std::make_unique<IsBenchmark>();
}

}  // namespace cobra::npb
