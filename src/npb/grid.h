// GridBenchmark: declarative engine for the stream/stencil-structured NPB
// minis (BT, SP, LU, FT, MG).
//
// A benchmark subclass declares its arrays and a list of *phases*; each
// phase is one OpenMP-style parallel-for lowered to its own generated
// kernel (so every phase contributes a distinct loop and its prefetches to
// the Table 1 statistics, and is independently discoverable/optimizable by
// COBRA). The same phase table drives both the simulated run and the
// host-replay verification, phase by phase with identical (fused-fma)
// arithmetic — so verification is structural, not hand-duplicated.
//
// Halo offsets let phases read across partition boundaries (in_off of a
// stencil input), producing the true-sharing coherent load misses COBRA's
// DEAR filter keys on; strided phases model multigrid restriction and FFT
// butterflies.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "npb/common.h"

namespace cobra::npb {

class GridBenchmark : public NpbBenchmark {
 public:
  void Build(kgen::Program& prog, const kgen::PrefetchPolicy& pf) override;
  void Init(machine::Machine& machine, int threads) override;
  Cycle Run(rt::Team& team) override;
  bool Verify(machine::Machine& machine) override;

 protected:
  explicit GridBenchmark(std::string name, int timesteps)
      : NpbBenchmark(std::move(name)), timesteps_(timesteps) {}

  struct ArrayDecl {
    std::string name;
    std::int64_t elems = 0;
    // init[i] = base + step * sin(freq * i) — bounded, non-trivial data.
    double init_base = 1.0;
    double init_step = 0.0;
  };

  enum class PhaseKind { kStream, kWhileCopy };

  struct Phase {
    std::string name;
    PhaseKind kind = PhaseKind::kStream;
    kgen::StreamOp op = kgen::StreamOp::kCopy;
    std::int64_t n = 0;                    // iteration count
    std::array<int, 3> in{-1, -1, -1};     // array indices (see arrays_)
    std::array<std::int64_t, 3> in_off{0, 0, 0};  // element offsets (halo)
    std::array<int, 3> in_stride{8, 8, 8};        // bytes per iteration
    int out = -1;
    std::int64_t out_off = 0;
    int out_stride = 8;
    double a = 0.0;
    double b = 0.0;
    kgen::LoopInfo kernel;  // filled by Build
  };

  // Subclass hooks: declare arrays and phases (called once from Build).
  virtual void Declare() = 0;

  int AddArray(std::string name, std::int64_t elems, double init_base,
               double init_step) {
    arrays_.push_back(ArrayDecl{std::move(name), elems, init_base, init_step});
    return static_cast<int>(arrays_.size() - 1);
  }
  void AddPhase(Phase phase) { phases_.push_back(std::move(phase)); }

  // Convenience constructors for common phase shapes.
  Phase Stencil(std::string name, int src, int dst, std::int64_t interior_n,
                double a, double b);
  Phase Elementwise(std::string name, kgen::StreamOp op, int in0, int in1,
                    int in2, int out, std::int64_t n, double a, double b);
  Phase WhileCopy(std::string name, int src, int dst, std::int64_t n);

  const std::vector<Phase>& phases() const { return phases_; }
  Addr array_base(int index) const {
    return bases_.at(static_cast<std::size_t>(index));
  }

  int timesteps_;
  std::vector<ArrayDecl> arrays_;
  std::vector<Phase> phases_;
  std::vector<Addr> bases_;
  int threads_ = 1;
  bool declared_ = false;
};

}  // namespace cobra::npb
