// LU mini-benchmark: the SSOR solver's phase structure — lower-triangular
// sweep, Jacobian blend, upper-triangular sweep, RHS recomputation and
// norm scaling. The wavefront dependence of real SSOR is relaxed to
// independent row chunks (documented in DESIGN.md); the sharing pattern
// (halo reads against neighbour-written lines each sweep) is preserved.
#include "npb/grid.h"

namespace cobra::npb {
namespace {

class LuBenchmark final : public GridBenchmark {
 public:
  LuBenchmark() : GridBenchmark("lu", /*timesteps=*/16) {}

 protected:
  void Declare() override {
    constexpr std::int64_t kN = 4096;
    const int u = AddArray("u", kN + 2, 0.55, 0.25);
    const int rsd = AddArray("rsd", kN + 2, 0.25, 0.10);
    const int frct = AddArray("frct", kN + 2, 0.15, 0.05);
    const int flux = AddArray("flux", kN + 2, 0.35, 0.15);

    using Op = kgen::StreamOp;
    AddPhase(Stencil("blts", u, rsd, kN, 0.22, 0.52));        // lower sweep
    AddPhase(Elementwise("jacld", Op::kBlend4, u, rsd, flux, flux, kN, 0.28,
                         0.42));
    AddPhase(Stencil("buts", rsd, frct, kN, 0.20, 0.56));     // upper sweep
    AddPhase(Elementwise("jacu", Op::kTriad, frct, u, -1, u, kN, 0.30, 0.0));
    AddPhase(Stencil("rhs", u, flux, kN, 0.17, 0.61));
    AddPhase(Elementwise("ssor_update", Op::kDaxpy, flux, rsd, -1, rsd, kN,
                         0.24, 0.0));
    AddPhase(Elementwise("l2norm_scale", Op::kScale, rsd, -1, -1, frct, kN,
                         0.50, 0.0));
    AddPhase(Elementwise("add", Op::kDaxpy, rsd, u, -1, u, kN, 0.10, 0.0));
    AddPhase(Elementwise("damp_u", Op::kScale, u, -1, -1, u, kN, 0.55, 0.0));
    AddPhase(Elementwise("damp_rsd", Op::kScale, rsd, -1, -1, rsd, kN, 0.55, 0.0));
  }
};

}  // namespace

std::unique_ptr<NpbBenchmark> MakeLu() {
  return std::make_unique<LuBenchmark>();
}

}  // namespace cobra::npb
