// cobra_lint invariants: static sanity checks every shipped MIA-64 image
// must satisfy. Two layers:
//
//   Whole-text sweep (every slot of the static segment, reachable or not):
//     - every slot decodes (no reserved bits, valid opcode field)
//     - issue-unit consistency (branches/break/clrrrb on the B unit,
//       nothing else on it except nops)
//     - no writes to the hardwired registers r0 / f0 / f1 / p0
//     - shladd shift count in 1..4
//     - every branch target lands inside the image
//
//   Per-kernel dataflow (CFG from each kernel entry):
//     - no read of a rotating register that no path has defined
//       (static GR/FR/PR are architecturally initialized; rotating names
//       and LC/EC are not)
//     - no modulo-scheduled branch consuming LC/EC without a reaching
//       mov-to-AR
//     - no post-increment lfetch mutating a static base register that
//       still carries a live program value (non-prefetch liveness)
//
//   Per-loop scalar evolution (scev.h over each kernel's natural loops;
//   only provable claims fire, so unsolved loops and unknown chains are
//   silent):
//     - a post-increment access whose solved address chain advances by a
//       different per-iteration step than its own increment immediate
//       (some other instruction also moves the base)
//     - a plain (non-.excl) lfetch whose address lattice provably collides
//       with a store stream of the same loop — the line arrives Shared and
//       the store pays the upgrade anyway
//     - an lfetch with a loop-invariant address: every iteration re-requests
//       the same line
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "isa/image.h"
#include "isa/types.h"
#include "support/json.h"

namespace cobra::analysis {

struct LintFinding {
  std::string invariant;  // stable kebab-case name from lint_invariant
  isa::Addr pc = 0;
  std::string detail;
};

struct LintReport {
  bool clean = true;
  std::vector<LintFinding> findings;
  int slots_checked = 0;
  int kernels_checked = 0;

  std::string ToString() const;
};

namespace lint_invariant {
inline constexpr const char* kIllegalEncoding = "illegal-encoding";
inline constexpr const char* kUnitMismatch = "unit-mismatch";
inline constexpr const char* kIllegalDest = "illegal-dest";
inline constexpr const char* kShladdCount = "shladd-count";
inline constexpr const char* kBranchTarget = "branch-target";
inline constexpr const char* kUndefinedRead = "undefined-read";
inline constexpr const char* kLcEcMisuse = "lcec-misuse";
inline constexpr const char* kLfetchLiveTarget = "lfetch-live-target";
inline constexpr const char* kStrideMismatch = "stride-mismatch";
inline constexpr const char* kPrefetchAliasesStore = "prefetch-aliases-store";
inline constexpr const char* kRedundantPrefetch = "redundant-prefetch";
}  // namespace lint_invariant

// Runs every check against `image`. `kernels` are (name, entry-pc) pairs;
// the per-kernel dataflow checks run once per entry. The whole-text sweep
// covers the static segment only (the code cache is runtime-managed and
// policed by the patch verifier instead).
LintReport LintImage(
    const isa::BinaryImage& image,
    const std::vector<std::pair<std::string, isa::Addr>>& kernels);

// Machine-readable form of one image's report (cobra_lint --json):
//   { "image": label, "clean": bool, "slots_checked": n,
//     "kernels_checked": n,
//     "findings": [{"invariant": name, "pc": "0x...", "detail": text}] }
// Key names and pc formatting are stable — CI tooling parses this.
support::Json ReportJson(const LintReport& report, std::string_view label);

}  // namespace cobra::analysis
