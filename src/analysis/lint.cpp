#include "analysis/lint.h"

#include <sstream>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/memdep.h"
#include "analysis/scev.h"
#include "isa/encoding.h"
#include "isa/instruction.h"

namespace cobra::analysis {

namespace {

std::string Hex(isa::Addr pc) {
  std::ostringstream os;
  os << "0x" << std::hex << pc;
  return os.str();
}

// Register names whose only legal role is reading a hardwired constant.
bool WritesHardwired(const RegSet& def) {
  return def.HasGr(0) || def.HasFr(0) || def.HasFr(1) || def.HasPr(0);
}

bool MustBeBUnit(isa::Opcode op) {
  return isa::IsBranch(op) || op == isa::Opcode::kBreak ||
         op == isa::Opcode::kClrRrb;
}

// Restrict a set to the rotating register names (the ones a kernel entry
// does not provide).
RegSet RotatingOnly(const RegSet& s) {
  RegSet r = s;
  RegSet static_names;
  for (int i = 0; i < isa::kFirstRotGr; ++i) static_names.AddGr(i);
  for (int i = 0; i < isa::kFirstRotFr; ++i) static_names.AddFr(i);
  for (int i = 0; i < isa::kFirstRotPr; ++i) static_names.AddPr(i);
  static_names.AddAr(isa::AppReg::kLC);
  static_names.AddAr(isa::AppReg::kEC);
  r.Remove(static_names);
  return r;
}

std::string NameRegs(const RegSet& s) {
  std::ostringstream os;
  const char* sep = "";
  for (int i = 0; i < isa::kNumGr; ++i) {
    if (s.HasGr(i)) { os << sep << "r" << i; sep = " "; }
  }
  for (int i = 0; i < isa::kNumFr; ++i) {
    if (s.HasFr(i)) { os << sep << "f" << i; sep = " "; }
  }
  for (int i = 0; i < isa::kNumPr; ++i) {
    if (s.HasPr(i)) { os << sep << "p" << i; sep = " "; }
  }
  if (s.HasAr(isa::AppReg::kLC)) { os << sep << "LC"; sep = " "; }
  if (s.HasAr(isa::AppReg::kEC)) { os << sep << "EC"; }
  return os.str();
}

}  // namespace

std::string LintReport::ToString() const {
  std::ostringstream os;
  os << (clean ? "lint clean" : "lint FAILED") << ": " << slots_checked
     << " slots, " << kernels_checked << " kernels, " << findings.size()
     << " findings";
  for (const LintFinding& f : findings) {
    os << "\n  [" << f.invariant << "] at " << Hex(f.pc) << ": " << f.detail;
  }
  return os.str();
}

support::Json ReportJson(const LintReport& report, std::string_view label) {
  support::Json doc = support::Json::Object();
  doc.Set("image", std::string(label));
  doc.Set("clean", report.clean);
  doc.Set("slots_checked", report.slots_checked);
  doc.Set("kernels_checked", report.kernels_checked);
  support::Json findings = support::Json::Array();
  for (const LintFinding& f : report.findings) {
    support::Json entry = support::Json::Object();
    entry.Set("invariant", f.invariant);
    entry.Set("pc", Hex(f.pc));
    entry.Set("detail", f.detail);
    findings.Append(std::move(entry));
  }
  doc.Set("findings", std::move(findings));
  return doc;
}

LintReport LintImage(
    const isa::BinaryImage& image,
    const std::vector<std::pair<std::string, isa::Addr>>& kernels) {
  LintReport report;
  auto finding = [&](const char* inv, isa::Addr pc, std::string detail) {
    report.clean = false;
    report.findings.push_back(LintFinding{inv, pc, std::move(detail)});
  };

  // --- Whole-text sweep ------------------------------------------------------
  const isa::Addr static_end = image.code_cache_start() != 0
                                   ? image.code_cache_start()
                                   : image.code_end();
  for (isa::Addr bundle = image.code_base(); bundle < static_end;
       bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(bundle, slot);
      ++report.slots_checked;

      isa::Instruction inst;
      std::string error;
      if (!isa::TryDecode(image.Raw(pc), &inst, &error)) {
        finding(lint_invariant::kIllegalEncoding, pc, error);
        continue;
      }

      if (MustBeBUnit(inst.op)) {
        if (inst.unit != isa::Unit::kB) {
          finding(lint_invariant::kUnitMismatch, pc,
                  "control-flow instruction off the B unit");
        }
      } else if (inst.op != isa::Opcode::kNop &&
                 inst.unit == isa::Unit::kB) {
        finding(lint_invariant::kUnitMismatch, pc,
                "non-branch instruction on the B unit");
      }

      const SlotEffects effects = EffectsOf(inst);
      if (WritesHardwired(effects.def)) {
        finding(lint_invariant::kIllegalDest, pc,
                "write to a hardwired register (r0/f0/f1/p0)");
      }

      if (inst.op == isa::Opcode::kShlAdd &&
          (inst.imm < 1 || inst.imm > 4)) {
        finding(lint_invariant::kShladdCount, pc,
                "shladd shift count outside 1..4");
      }

      if (inst.op == isa::Opcode::kBrl) {
        if (!image.Contains(isa::BundleAddr(static_cast<isa::Addr>(inst.imm)))) {
          finding(lint_invariant::kBranchTarget, pc,
                  "brl target outside the image");
        }
      } else if (isa::IsBranch(inst.op)) {
        const isa::Addr target =
            bundle + static_cast<isa::Addr>(inst.imm) * isa::kBundleBytes;
        if (!image.Contains(target)) {
          finding(lint_invariant::kBranchTarget, pc,
                  "relative branch target outside the image");
        }
      }
    }
  }

  // --- Per-kernel dataflow ---------------------------------------------------
  for (const auto& [name, entry] : kernels) {
    ++report.kernels_checked;
    const Cfg cfg = Cfg::Build(image, entry);

    const DefinedRegs defined =
        DefinedRegs::Compute(cfg, DefinedRegs::EntryDefined());
    LivenessOptions np;
    np.exclude_lfetch_base_uses = true;
    const Liveness live = Liveness::Compute(cfg, np);

    // Forward fixpoint for LC/EC *establishment*: only mov-to-AR counts.
    // The modulo-scheduled branches read-modify-write the counters, so
    // their defs must not satisfy their own reads through the back edge.
    const std::vector<BasicBlock>& blocks = cfg.blocks();
    std::vector<std::uint64_t> ar_in(blocks.size(), 0);
    auto block_out = [&](const BasicBlock& block) {
      std::uint64_t v = ar_in[static_cast<std::size_t>(block.id)];
      for (const isa::Addr pc : block.pcs) {
        const isa::Instruction& inst = image.Fetch(pc);
        if (inst.op == isa::Opcode::kMovToAr) v |= 1ULL << inst.imm;
      }
      return v;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const BasicBlock& block : blocks) {
        const std::uint64_t out = block_out(block);
        for (const BasicBlock::Edge& e : block.succs) {
          if (e.to == BasicBlock::kExitBlock) continue;
          std::uint64_t& in = ar_in[static_cast<std::size_t>(e.to)];
          if ((in | out) != in) {
            in |= out;
            changed = true;
          }
        }
      }
    }

    for (const BasicBlock& block : blocks) {
      std::uint64_t ar_established = ar_in[static_cast<std::size_t>(block.id)];
      for (const isa::Addr pc : block.pcs) {
        const isa::Instruction& inst = image.Fetch(pc);
        const SlotEffects effects = EffectsOf(inst);
        const RegSet& before = defined.DefinedBefore(pc);

        RegSet undefined = RotatingOnly(effects.use);
        undefined.Remove(before);
        // LC/EC get their own invariant below.
        if (!undefined.Empty()) {
          finding(lint_invariant::kUndefinedRead, pc,
                  "kernel '" + name + "' reads never-defined " +
                      NameRegs(undefined));
        }

        for (const isa::AppReg ar : {isa::AppReg::kLC, isa::AppReg::kEC}) {
          if (effects.use.HasAr(ar) &&
              ((ar_established >> static_cast<int>(ar)) & 1) == 0) {
            finding(lint_invariant::kLcEcMisuse, pc,
                    "kernel '" + name + "' consumes " +
                        (ar == isa::AppReg::kLC ? std::string("LC")
                                                : std::string("EC")) +
                        " without a reaching mov-to-AR");
          }
        }
        if (inst.op == isa::Opcode::kMovToAr) {
          ar_established |= 1ULL << inst.imm;
        }

        if (inst.op == isa::Opcode::kLfetch && inst.post_inc &&
            inst.r2 < isa::kFirstRotGr &&
            live.LiveOut(pc).HasGr(inst.r2)) {
          finding(lint_invariant::kLfetchLiveTarget, pc,
                  "kernel '" + name + "': post-increment lfetch mutates r" +
                      std::to_string(inst.r2) +
                      ", which carries a live program value");
        }
      }
    }

    // Per-loop scalar evolution: provable stride / alias facts only.
    for (const NaturalLoop& loop : cfg.loops()) {
      const LoopScev scev = AnalyzeLoop(cfg, loop);
      if (!scev.solved) continue;
      for (const MemAccess& access : scev.accesses) {
        if (access.post_inc && access.cls != AddrClass::kUnknown &&
            access.stride != access.post_inc_imm) {
          finding(lint_invariant::kStrideMismatch, access.pc,
                  "kernel '" + name + "': access post-increments by " +
                      std::to_string(access.post_inc_imm) +
                      " but its address chain advances by " +
                      std::to_string(access.stride) + " per iteration");
        }
        if (!access.is_lfetch) continue;
        if (access.cls == AddrClass::kInvariant) {
          finding(lint_invariant::kRedundantPrefetch, access.pc,
                  "kernel '" + name +
                      "': lfetch address is loop-invariant — every "
                      "iteration re-requests the same line");
        }
        if (!access.excl) {
          for (const MemAccess* store :
               ProvableStoreCollisions(scev, access, 0)) {
            finding(lint_invariant::kPrefetchAliasesStore, access.pc,
                    "kernel '" + name +
                        "': plain lfetch provably prefetches a line the "
                        "store at " +
                        Hex(store->pc) +
                        " writes — use .excl or drop the prefetch");
          }
        }
      }
    }
  }

  return report;
}

}  // namespace cobra::analysis
