#include "analysis/memdep.h"

#include <cstdlib>
#include <numeric>

#include "support/check.h"

namespace cobra::analysis {

namespace {

std::int64_t Mod(std::int64_t v, std::int64_t m) {
  return ((v % m) + m) % m;
}

}  // namespace

const char* AliasVerdictName(AliasVerdict verdict) {
  switch (verdict) {
    case AliasVerdict::kNoAlias:
      return "no-alias";
    case AliasVerdict::kMayAlias:
      return "may-alias";
    case AliasVerdict::kMustOverlap:
      return "must-overlap";
  }
  COBRA_UNREACHABLE("invalid AliasVerdict");
}

AliasVerdict ClassifyAlias(const MemAccess& a, std::int64_t extra_disp_a,
                           const MemAccess& b) {
  if (a.cls == AddrClass::kUnknown || b.cls == AddrClass::kUnknown) {
    return AliasVerdict::kMayAlias;
  }
  // Comparable only against the same entry symbol (both -1 means both
  // chains resolved to absolute constants).
  if (a.base_entry_gr != b.base_entry_gr) return AliasVerdict::kMayAlias;

  const std::int64_t d = a.base_offset + extra_disp_a - b.base_offset;
  const std::int64_t size_a = a.size;
  const std::int64_t size_b = b.size;

  if (a.stride == b.stride) {
    if (a.stride == 0) {
      // Two fixed footprints: plain interval intersection.
      return (d < size_b && -d < size_a) ? AliasVerdict::kMustOverlap
                                         : AliasVerdict::kNoAlias;
    }
    // Equal nonzero strides: every difference A_k - B_j lies on the
    // lattice d + stride*Z, and every lattice point is realized by some
    // iteration pair — the residue decides both directions.
    const std::int64_t s = std::llabs(a.stride);
    const std::int64_t r = Mod(d, s);
    return (r < size_b || s - r < size_a) ? AliasVerdict::kMustOverlap
                                          : AliasVerdict::kNoAlias;
  }

  // Differing strides: the reachable differences are contained in the
  // gcd lattice, so only the no-alias direction is provable (whether a
  // specific lattice point is realized depends on iteration counts).
  const std::int64_t g =
      std::gcd(std::llabs(a.stride), std::llabs(b.stride));
  const std::int64_t r = Mod(d, g);
  return (r < size_b || g - r < size_a) ? AliasVerdict::kMayAlias
                                        : AliasVerdict::kNoAlias;
}

std::vector<const MemAccess*> ProvableStoreCollisions(const LoopScev& loop,
                                                      const MemAccess& access,
                                                      std::int64_t disp) {
  std::vector<const MemAccess*> hits;
  for (const MemAccess& store : loop.accesses) {
    if (!store.is_store || store.pc == access.pc) continue;
    if (ClassifyAlias(access, disp, store) == AliasVerdict::kMustOverlap) {
      hits.push_back(&store);
    }
  }
  return hits;
}

}  // namespace cobra::analysis
