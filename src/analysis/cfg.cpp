#include "analysis/cfg.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.h"

namespace cobra::analysis {

namespace {

// Successor shape of one instruction, before block formation.
struct SuccShape {
  bool falls_through = false;
  bool has_taken = false;
  isa::Addr taken = 0;       // valid when has_taken && taken_resolves
  bool taken_resolves = false;
  bool rotating = false;
};

isa::Addr NextSlotPc(isa::Addr pc) {
  const unsigned slot = isa::SlotOf(pc);
  if (slot < 2) return isa::MakePc(isa::BundleAddr(pc), slot + 1);
  return isa::BundleAddr(pc) + isa::kBundleBytes;
}

SuccShape SuccessorsOf(const isa::BinaryImage& image, isa::Addr pc) {
  const isa::Instruction& inst = image.Fetch(pc);
  SuccShape s;
  switch (inst.op) {
    case isa::Opcode::kBreak:
      return s;  // thread halts: no successors
    case isa::Opcode::kBrl:
      s.has_taken = true;
      s.taken = isa::BundleAddr(static_cast<isa::Addr>(inst.imm));
      s.taken_resolves = image.Contains(s.taken);
      return s;
    case isa::Opcode::kBrCond:
      s.has_taken = true;
      // qp == 0 is p0 (always true): the branch is unconditional.
      s.falls_through = inst.qp != 0;
      break;
    case isa::Opcode::kBrCloop:
    case isa::Opcode::kBrCtop:
    case isa::Opcode::kBrWtop:
      s.has_taken = true;
      s.falls_through = true;  // loop exhaustion exits through the slot
      s.rotating = isa::IsRotatingBranch(inst.op);
      break;
    default:
      s.falls_through = true;
      return s;
  }
  // Relative branch: displacement is in bundles.
  const isa::Addr target =
      isa::BundleAddr(pc) +
      static_cast<isa::Addr>(inst.imm) * isa::kBundleBytes;
  s.taken = target;
  s.taken_resolves = image.Contains(target);
  return s;
}

bool IsTerminator(const isa::Instruction& inst) {
  return isa::IsBranch(inst.op) || inst.op == isa::Opcode::kBreak;
}

}  // namespace

Cfg Cfg::Build(const isa::BinaryImage& image, isa::Addr entry) {
  return Build(image, std::vector<isa::Addr>{entry});
}

Cfg Cfg::Build(const isa::BinaryImage& image,
               const std::vector<isa::Addr>& entries) {
  Cfg cfg;
  cfg.image_ = &image;

  // Pass 1: reachability + leader discovery over slot pcs.
  std::set<isa::Addr> reachable;
  std::set<isa::Addr> leaders;
  std::vector<isa::Addr> worklist;
  for (const isa::Addr entry : entries) {
    if (!image.Contains(entry)) continue;
    leaders.insert(entry);
    worklist.push_back(entry);
  }
  while (!worklist.empty()) {
    const isa::Addr pc = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(pc).second) continue;
    const SuccShape s = SuccessorsOf(image, pc);
    if (s.falls_through) {
      const isa::Addr next = NextSlotPc(pc);
      if (image.Contains(next)) {
        // The slot after a branch starts a block (join of the not-taken
        // path); plain fall-through inside a bundle does not.
        if (IsTerminator(image.Fetch(pc))) leaders.insert(next);
        worklist.push_back(next);
      }
    }
    if (s.has_taken && s.taken_resolves) {
      leaders.insert(s.taken);
      worklist.push_back(s.taken);
    }
  }

  // Pass 2: form blocks by walking from each reachable leader.
  std::map<isa::Addr, int> block_of_leader;
  for (const isa::Addr leader : leaders) {
    if (!reachable.count(leader)) continue;
    const int id = static_cast<int>(cfg.blocks_.size());
    block_of_leader[leader] = id;
    BasicBlock block;
    block.id = id;
    isa::Addr pc = leader;
    for (;;) {
      block.pcs.push_back(pc);
      if (IsTerminator(image.Fetch(pc))) break;
      const isa::Addr next = NextSlotPc(pc);
      if (!image.Contains(next) || leaders.count(next)) break;
      pc = next;
    }
    cfg.blocks_.push_back(std::move(block));
  }

  // Pass 3: edges.
  for (BasicBlock& block : cfg.blocks_) {
    const isa::Addr last = block.end_pc();
    const SuccShape s = SuccessorsOf(image, last);
    if (s.falls_through) {
      const isa::Addr next = NextSlotPc(last);
      const auto it = image.Contains(next) ? block_of_leader.find(next)
                                           : block_of_leader.end();
      if (it != block_of_leader.end()) {
        block.succs.push_back({it->second, false});
      } else {
        block.succs.push_back({BasicBlock::kExitBlock, false});
        ++cfg.unresolved_edges_;
      }
    }
    if (s.has_taken) {
      const auto it = s.taken_resolves ? block_of_leader.find(s.taken)
                                       : block_of_leader.end();
      if (it != block_of_leader.end()) {
        block.succs.push_back({it->second, s.rotating});
      } else {
        block.succs.push_back({BasicBlock::kExitBlock, s.rotating});
        ++cfg.unresolved_edges_;
      }
    }
  }
  for (const BasicBlock& block : cfg.blocks_) {
    for (const BasicBlock::Edge& e : block.succs) {
      if (e.to != BasicBlock::kExitBlock) {
        cfg.blocks_[static_cast<std::size_t>(e.to)].preds.push_back(block.id);
      }
    }
  }
  for (const isa::Addr entry : entries) {
    const auto it = block_of_leader.find(entry);
    if (it != block_of_leader.end()) cfg.entry_blocks_.push_back(it->second);
  }

  cfg.ComputeDominators();
  cfg.FindLoops();
  return cfg;
}

int Cfg::BlockAt(isa::Addr pc) const {
  for (const BasicBlock& block : blocks_) {
    for (const isa::Addr p : block.pcs) {
      if (p == pc) return block.id;
    }
  }
  return BasicBlock::kExitBlock;
}

void Cfg::ComputeDominators() {
  const std::size_t n = blocks_.size();
  const std::size_t words = (n + 63) / 64;
  std::vector<bool> is_entry(n, false);
  for (const int e : entry_blocks_) is_entry[static_cast<std::size_t>(e)] = true;

  dom_.assign(n, std::vector<std::uint64_t>(words, ~0ULL));
  for (std::size_t b = 0; b < n; ++b) {
    if (is_entry[b]) {
      std::fill(dom_[b].begin(), dom_[b].end(), 0ULL);
      dom_[b][b / 64] = 1ULL << (b % 64);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      if (is_entry[b]) continue;
      // dom(b) = {b} ∪ ∩ dom(preds). The virtual root's set is empty, so
      // entry blocks stay {self}; blocks with no preds keep "all" (they do
      // not occur: every non-entry block has at least one predecessor).
      std::vector<std::uint64_t> next(words, ~0ULL);
      for (const int p : blocks_[b].preds) {
        for (std::size_t w = 0; w < words; ++w) {
          next[w] &= dom_[static_cast<std::size_t>(p)][w];
        }
      }
      next[b / 64] |= 1ULL << (b % 64);
      if (next != dom_[b]) {
        dom_[b] = std::move(next);
        changed = true;
      }
    }
  }
}

bool Cfg::Dominates(int a, int b) const {
  if (a < 0 || b < 0) return false;
  const auto ua = static_cast<std::size_t>(a);
  const auto ub = static_cast<std::size_t>(b);
  return (dom_[ub][ua / 64] >> (ua % 64)) & 1;
}

void Cfg::FindLoops() {
  for (const BasicBlock& block : blocks_) {
    for (const BasicBlock::Edge& e : block.succs) {
      if (e.to == BasicBlock::kExitBlock || !Dominates(e.to, block.id)) {
        continue;
      }
      NaturalLoop loop;
      loop.head_block = e.to;
      loop.latch_block = block.id;
      loop.head = isa::BundleAddr(
          blocks_[static_cast<std::size_t>(e.to)].begin());
      loop.back_branch_pc = block.end_pc();
      // Body: header plus everything that reaches the latch without
      // passing through the header.
      std::vector<bool> in_body(blocks_.size(), false);
      in_body[static_cast<std::size_t>(e.to)] = true;
      std::vector<int> stack;
      if (!in_body[static_cast<std::size_t>(block.id)]) {
        in_body[static_cast<std::size_t>(block.id)] = true;
        stack.push_back(block.id);
      }
      while (!stack.empty()) {
        const int b = stack.back();
        stack.pop_back();
        for (const int p : blocks_[static_cast<std::size_t>(b)].preds) {
          if (!in_body[static_cast<std::size_t>(p)]) {
            in_body[static_cast<std::size_t>(p)] = true;
            stack.push_back(p);
          }
        }
      }
      for (std::size_t b = 0; b < blocks_.size(); ++b) {
        if (in_body[b]) loop.body.push_back(static_cast<int>(b));
      }
      loops_.push_back(std::move(loop));
    }
  }
}

RegionCheck CheckLoopRegion(const isa::BinaryImage& image, isa::Addr head,
                            isa::Addr back_branch_pc) {
  RegionCheck check;
  const isa::Addr begin = isa::BundleAddr(head);
  const isa::Addr end = isa::BundleAddr(back_branch_pc);
  if (!image.Contains(begin) || !image.Contains(back_branch_pc)) {
    check.reason = "region outside the image";
    return check;
  }
  if (begin > end) {
    check.reason = "back branch above the head";
    return check;
  }

  const isa::Instruction& br = image.Fetch(back_branch_pc);
  if (!isa::IsBranch(br.op) || br.op == isa::Opcode::kBrl) {
    check.reason = "loop-closing slot is not a relative branch";
    return check;
  }
  const isa::Addr taken =
      end + static_cast<isa::Addr>(br.imm) * isa::kBundleBytes;
  if (taken != begin) {
    check.reason = "back branch does not target the region head";
    return check;
  }

  const Cfg cfg = Cfg::Build(image, begin);
  const int latch = cfg.BlockAt(back_branch_pc);
  if (latch == BasicBlock::kExitBlock) {
    check.reason = "back branch unreachable from the head";
    return check;
  }
  for (const NaturalLoop& loop : cfg.loops()) {
    if (loop.head != begin || loop.back_branch_pc != back_branch_pc) continue;
    for (const int b : loop.body) {
      for (const isa::Addr pc : cfg.blocks()[static_cast<std::size_t>(b)].pcs) {
        if (isa::BundleAddr(pc) < begin || isa::BundleAddr(pc) > end) {
          check.reason = "natural loop body escapes the region";
          return check;
        }
      }
    }
    check.ok = true;
    return check;
  }
  check.reason = "back edge does not close a natural loop";
  return check;
}

}  // namespace cobra::analysis
