// Control-flow-graph recovery over a BinaryImage (the static half of
// COBRA's patch-safety story).
//
// Blocks are slot-granular: an instruction address is a (bundle, slot)
// pair, a branch may sit in any slot, and its fall-through successor is the
// *next slot*, not the next bundle — exactly the shape the trace cache
// copies and patches. Recovery starts from explicit entry points (kernel
// entries, loop heads, trace heads) and follows:
//   - fall-through            pc -> next slot / next bundle,
//   - relative branches       target = bundle + imm * 16 (taken edge),
//   - brl                     absolute bundle target,
//   - break                   kernel end, no successors.
// Edges taken by br.ctop / br.wtop are tagged `rotating`: crossing them
// renames the rotating GR/FR/PR frames (dataflow.h applies the renaming).
//
// An edge whose target cannot be resolved inside the image is recorded as
// an *exit edge*; dataflow treats those maximally conservatively. On top of
// the graph we compute iterative dominators, back edges (u -> v with v
// dominating u) and their natural loops — the authoritative region oracle
// behind the controller's BTB-guessed loop regions (CheckLoopRegion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image.h"
#include "isa/types.h"

namespace cobra::analysis {

struct BasicBlock {
  // Marks an edge that leaves the analyzed code (break has *no* edge at
  // all; this is for unresolvable or out-of-image targets).
  static constexpr int kExitBlock = -1;

  struct Edge {
    int to = kExitBlock;
    bool rotating = false;  // taken edge of br.ctop / br.wtop
  };

  int id = -1;
  std::vector<isa::Addr> pcs;  // slot pcs in execution order, never empty
  std::vector<Edge> succs;
  std::vector<int> preds;

  isa::Addr begin() const { return pcs.front(); }
  isa::Addr end_pc() const { return pcs.back(); }
};

// A back edge latch -> header and the blocks of its natural loop.
struct NaturalLoop {
  int head_block = -1;
  int latch_block = -1;
  isa::Addr head = 0;            // bundle address of the header block
  isa::Addr back_branch_pc = 0;  // last slot of the latch block
  std::vector<int> body;         // block ids, header included
};

class Cfg {
 public:
  // Builds the graph of everything reachable from `entries` (slot pcs;
  // bundle addresses mean slot 0). Entries outside the image are ignored.
  static Cfg Build(const isa::BinaryImage& image,
                   const std::vector<isa::Addr>& entries);
  static Cfg Build(const isa::BinaryImage& image, isa::Addr entry);

  const isa::BinaryImage& image() const { return *image_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<int>& entry_blocks() const { return entry_blocks_; }
  const std::vector<NaturalLoop>& loops() const { return loops_; }

  // Id of the block containing `pc`, or BasicBlock::kExitBlock if the pc
  // was not reached from any entry.
  int BlockAt(isa::Addr pc) const;

  // Reflexive block dominance (relative to a virtual root fanning out to
  // every entry block).
  bool Dominates(int a, int b) const;

  // Number of edges leaving the analyzed code for unresolvable targets
  // (fall-through off the image end, brl outside the image, ...).
  int unresolved_edges() const { return unresolved_edges_; }

 private:
  void ComputeDominators();
  void FindLoops();

  const isa::BinaryImage* image_ = nullptr;
  std::vector<BasicBlock> blocks_;
  std::vector<int> entry_blocks_;
  std::vector<NaturalLoop> loops_;
  std::vector<std::vector<std::uint64_t>> dom_;  // per-block dominator bitset
  int unresolved_edges_ = 0;
};

// The region oracle: is bundles [head, back_branch_pc] a natural loop whose
// closing branch targets `head`, with the whole loop body inside the
// region? This is what makes a BTB-discovered (head, back-edge) pair safe
// to treat as a relocatable loop region.
struct RegionCheck {
  bool ok = false;
  std::string reason;  // human-readable failure, empty when ok
};
RegionCheck CheckLoopRegion(const isa::BinaryImage& image, isa::Addr head,
                            isa::Addr back_branch_pc);

}  // namespace cobra::analysis
