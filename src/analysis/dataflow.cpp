#include "analysis/dataflow.h"

#include <deque>
#include <vector>

#include "support/check.h"

namespace cobra::analysis {

namespace {

// Applies `f` to every set bit of the rotating subrange and re-adds the
// static part unchanged.
template <typename MapGr, typename MapPr>
RegSet RotateWith(const RegSet& s, MapGr&& map_gr, MapPr&& map_pr) {
  RegSet out;
  for (int r = 0; r < isa::kFirstRotGr; ++r) {
    if (s.HasGr(r)) out.AddGr(r);
    if (s.HasFr(r)) out.AddFr(r);
  }
  for (int r = isa::kFirstRotGr; r < isa::kNumGr; ++r) {
    if (s.HasGr(r)) out.AddGr(map_gr(r));
    if (s.HasFr(r)) out.AddFr(map_gr(r));  // FR geometry matches GR
  }
  for (int r = 0; r < isa::kFirstRotPr; ++r) {
    if (s.HasPr(r)) out.AddPr(r);
  }
  for (int r = isa::kFirstRotPr; r < isa::kNumPr; ++r) {
    if (s.HasPr(r)) out.AddPr(map_pr(r));
  }
  out.ar = s.ar;
  return out;
}

}  // namespace

RegSet RotateFwd(const RegSet& s) {
  return RotateWith(
      s,
      [](int r) {
        return isa::kFirstRotGr +
               (r - isa::kFirstRotGr + 1) % isa::kNumRotGr;
      },
      [](int r) {
        return isa::kFirstRotPr +
               (r - isa::kFirstRotPr + 1) % isa::kNumRotPr;
      });
}

RegSet RotateBwd(const RegSet& s) {
  return RotateWith(
      s,
      [](int r) {
        return isa::kFirstRotGr +
               (r - isa::kFirstRotGr - 1 + isa::kNumRotGr) % isa::kNumRotGr;
      },
      [](int r) {
        return isa::kFirstRotPr +
               (r - isa::kFirstRotPr - 1 + isa::kNumRotPr) % isa::kNumRotPr;
      });
}

SlotEffects EffectsOf(const isa::Instruction& inst) {
  using isa::Opcode;
  SlotEffects e;
  e.predicated = inst.qp != 0;
  if (inst.qp != 0) e.use.AddPr(inst.qp);

  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kBreak:
    case Opcode::kBrl:
      break;

    // Three-operand integer ALU.
    case Opcode::kAddReg:
    case Opcode::kSubReg:
    case Opcode::kShlAdd:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      e.def.AddGr(inst.r1);
      e.use.AddGr(inst.r2);
      e.use.AddGr(inst.r3);
      break;

    // Two-operand integer ALU (immediate or move forms).
    case Opcode::kAddImm:
    case Opcode::kAndImm:
    case Opcode::kOrImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
    case Opcode::kSarImm:
    case Opcode::kMovReg:
    case Opcode::kSxt4:
    case Opcode::kZxt4:
      e.def.AddGr(inst.r1);
      e.use.AddGr(inst.r2);
      break;

    case Opcode::kMovImm:
      e.def.AddGr(inst.r1);
      break;

    case Opcode::kCmp:
      e.use.AddGr(inst.r2);
      e.use.AddGr(inst.r3);
      e.def.AddPr(inst.p1);
      if (inst.p2 != 0) e.def.AddPr(inst.p2);
      break;
    case Opcode::kCmpImm:
      e.use.AddGr(inst.r2);
      e.def.AddPr(inst.p1);
      if (inst.p2 != 0) e.def.AddPr(inst.p2);
      break;
    case Opcode::kFcmp:
      e.use.AddFr(inst.r2);
      e.use.AddFr(inst.r3);
      e.def.AddPr(inst.p1);
      if (inst.p2 != 0) e.def.AddPr(inst.p2);
      break;

    case Opcode::kMovToAr:
      e.use.AddGr(inst.r2);
      e.def.AddAr(static_cast<isa::AppReg>(inst.imm));
      break;
    case Opcode::kMovFromAr:
      e.def.AddGr(inst.r1);
      e.use.AddAr(static_cast<isa::AppReg>(inst.imm));
      break;
    case Opcode::kMovToPrRot:
      for (int r = isa::kFirstRotPr; r < isa::kNumPr; ++r) e.def.AddPr(r);
      break;
    case Opcode::kClrRrb:
      // Identity renaming (see the header): no register effects.
      break;

    // Memory.
    case Opcode::kLd:
      e.def.AddGr(inst.r1);
      e.use.AddGr(inst.r2);
      if (inst.post_inc) e.def.AddGr(inst.r2);
      break;
    case Opcode::kSt:
      e.use.AddGr(inst.r2);
      e.use.AddGr(inst.r3);
      if (inst.post_inc) e.def.AddGr(inst.r2);
      break;
    case Opcode::kLdf:
      e.def.AddFr(inst.r1);
      e.use.AddGr(inst.r2);
      if (inst.post_inc) e.def.AddGr(inst.r2);
      break;
    case Opcode::kStf:
      e.use.AddGr(inst.r2);
      e.use.AddFr(inst.r3);
      if (inst.post_inc) e.def.AddGr(inst.r2);
      break;
    case Opcode::kLfetch:
      e.use.AddGr(inst.r2);  // the base use Liveness can exclude
      if (inst.post_inc) e.def.AddGr(inst.r2);
      break;

    // Floating point.
    case Opcode::kFma:
    case Opcode::kFms:
    case Opcode::kFnma:
      e.def.AddFr(inst.r1);
      e.use.AddFr(inst.r2);
      e.use.AddFr(inst.r3);
      e.use.AddFr(inst.extra);
      break;
    case Opcode::kFmin:
    case Opcode::kFmax:
      e.def.AddFr(inst.r1);
      e.use.AddFr(inst.r2);
      e.use.AddFr(inst.r3);
      break;
    case Opcode::kFmov:
    case Opcode::kFneg:
    case Opcode::kFabs:
    case Opcode::kFrcpa:
    case Opcode::kFsqrt:
    case Opcode::kFcvtFx:
    case Opcode::kFcvtXf:
      e.def.AddFr(inst.r1);
      e.use.AddFr(inst.r2);
      break;
    case Opcode::kSetf:
      e.def.AddFr(inst.r1);
      e.use.AddGr(inst.r2);
      break;
    case Opcode::kGetf:
      e.def.AddGr(inst.r1);
      e.use.AddFr(inst.r2);
      break;

    // Branches. The qp condition use is covered above; the SWP branches
    // touch LC/EC and write the stage predicate p63 (renamed to p16 by the
    // rotation on taken edges).
    case Opcode::kBrCond:
      break;
    case Opcode::kBrCloop:
      e.use.AddAr(isa::AppReg::kLC);
      e.def.AddAr(isa::AppReg::kLC);
      break;
    case Opcode::kBrCtop:
      e.use.AddAr(isa::AppReg::kLC);
      e.use.AddAr(isa::AppReg::kEC);
      e.def.AddAr(isa::AppReg::kLC);
      e.def.AddAr(isa::AppReg::kEC);
      e.def.AddPr(isa::kNumPr - 1);
      break;
    case Opcode::kBrWtop:
      e.use.AddAr(isa::AppReg::kEC);
      e.def.AddAr(isa::AppReg::kEC);
      e.def.AddPr(isa::kNumPr - 1);
      break;

    case Opcode::kOpcodeCount:
      COBRA_UNREACHABLE("invalid opcode");
  }
  return e;
}

RegSet ReferencedRegs(const isa::Instruction& inst) {
  const SlotEffects e = EffectsOf(inst);
  RegSet all = e.use;
  all |= e.def;
  return all;
}

Liveness Liveness::Compute(const Cfg& cfg, LivenessOptions opts) {
  Liveness result;
  const auto& blocks = cfg.blocks();
  const isa::BinaryImage& image = cfg.image();

  // Boundary set for edges that leave the analyzed code.
  RegSet boundary;
  if (opts.boundary == LivenessOptions::Boundary::kReferencedRegs) {
    for (const BasicBlock& block : blocks) {
      for (const isa::Addr pc : block.pcs) {
        boundary |= ReferencedRegs(image.Fetch(pc));
      }
    }
  }

  auto slot_effects = [&](isa::Addr pc) {
    SlotEffects e = EffectsOf(image.Fetch(pc));
    if (opts.exclude_lfetch_base_uses &&
        image.Fetch(pc).op == isa::Opcode::kLfetch) {
      RegSet base;
      base.AddGr(image.Fetch(pc).r2);
      e.use.Remove(base);
    }
    return e;
  };

  // Block-level fixpoint on live-in sets.
  std::vector<RegSet> live_in(blocks.size());
  auto block_out = [&](const BasicBlock& block) {
    RegSet out;
    for (const BasicBlock::Edge& e : block.succs) {
      if (e.to == BasicBlock::kExitBlock) {
        out |= boundary;
      } else if (e.rotating) {
        out |= RotateBwd(live_in[static_cast<std::size_t>(e.to)]);
      } else {
        out |= live_in[static_cast<std::size_t>(e.to)];
      }
    }
    return out;
  };
  auto transfer = [&](const BasicBlock& block, RegSet live) {
    for (auto it = block.pcs.rbegin(); it != block.pcs.rend(); ++it) {
      const SlotEffects e = slot_effects(*it);
      if (!e.predicated) live.Remove(e.def);  // may-defs never kill
      live |= e.use;
    }
    return live;
  };

  std::deque<int> worklist;
  std::vector<bool> queued(blocks.size(), true);
  for (const BasicBlock& block : blocks) worklist.push_back(block.id);
  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(b)] = false;
    const BasicBlock& block = blocks[static_cast<std::size_t>(b)];
    RegSet in = transfer(block, block_out(block));
    if (in == live_in[static_cast<std::size_t>(b)]) continue;
    live_in[static_cast<std::size_t>(b)] = std::move(in);
    for (const int p : block.preds) {
      if (!queued[static_cast<std::size_t>(p)]) {
        queued[static_cast<std::size_t>(p)] = true;
        worklist.push_back(p);
      }
    }
  }

  // Final pass: per-slot sets.
  for (const BasicBlock& block : blocks) {
    RegSet live = block_out(block);
    for (auto it = block.pcs.rbegin(); it != block.pcs.rend(); ++it) {
      result.live_out_[*it] = live;
      const SlotEffects e = slot_effects(*it);
      if (!e.predicated) live.Remove(e.def);
      live |= e.use;
      result.live_in_[*it] = live;
    }
  }
  return result;
}

const RegSet& Liveness::LiveIn(isa::Addr pc) const {
  const auto it = live_in_.find(pc);
  return it != live_in_.end() ? it->second : empty_;
}

const RegSet& Liveness::LiveOut(isa::Addr pc) const {
  const auto it = live_out_.find(pc);
  return it != live_out_.end() ? it->second : empty_;
}

RegSet DefinedRegs::EntryDefined() {
  RegSet s;
  for (int r = 0; r < isa::kFirstRotGr; ++r) s.AddGr(r);
  for (int r = 0; r < isa::kFirstRotFr; ++r) s.AddFr(r);
  for (int r = 0; r < isa::kFirstRotPr; ++r) s.AddPr(r);
  return s;
}

DefinedRegs DefinedRegs::Compute(const Cfg& cfg, const RegSet& entry_defined) {
  DefinedRegs result;
  const auto& blocks = cfg.blocks();
  const isa::BinaryImage& image = cfg.image();

  std::vector<bool> is_entry(blocks.size(), false);
  for (const int e : cfg.entry_blocks()) {
    is_entry[static_cast<std::size_t>(e)] = true;
  }

  // Block-level fixpoint on defined-at-entry sets (may-union meet).
  std::vector<RegSet> defined_in(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (is_entry[b]) defined_in[b] = entry_defined;
  }
  auto block_exit = [&](const BasicBlock& block) {
    RegSet d = defined_in[static_cast<std::size_t>(block.id)];
    for (const isa::Addr pc : block.pcs) {
      d |= EffectsOf(image.Fetch(pc)).def;  // may-defs count: union
    }
    return d;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock& block : blocks) {
      const RegSet out = block_exit(block);
      for (const BasicBlock::Edge& e : block.succs) {
        if (e.to == BasicBlock::kExitBlock) continue;
        const RegSet incoming = e.rotating ? RotateFwd(out) : out;
        RegSet merged = defined_in[static_cast<std::size_t>(e.to)];
        merged |= incoming;
        if (!(merged == defined_in[static_cast<std::size_t>(e.to)])) {
          defined_in[static_cast<std::size_t>(e.to)] = std::move(merged);
          changed = true;
        }
      }
    }
  }

  for (const BasicBlock& block : blocks) {
    RegSet d = defined_in[static_cast<std::size_t>(block.id)];
    for (const isa::Addr pc : block.pcs) {
      result.before_[pc] = d;
      d |= EffectsOf(image.Fetch(pc)).def;
    }
  }
  return result;
}

const RegSet& DefinedRegs::DefinedBefore(isa::Addr pc) const {
  const auto it = before_.find(pc);
  return it != before_.end() ? it->second : empty_;
}

}  // namespace cobra::analysis
