// Symbolic scalar evolution over single-block natural loops: the static
// half of COBRA's stride story.
//
// The dynamic pipeline infers strides from sparse DEAR samples and must
// burn confirmation rounds before trusting them. This pass derives the
// same facts *statically*, once, from the binary: for every memory slot in
// a qualifying loop it solves the chain of recurrences of the address
// register — base + k*step per iteration — through post-increment memory
// ops, add/shladd chains, rotating-register renaming across br.ctop /
// br.wtop back edges, and SWP stage predication, and classifies the slot:
//
//   kAffine     consecutive *executed* instances of the slot (per CPU)
//               touch addresses exactly `stride` bytes apart;
//   kInvariant  every executed instance touches the same address;
//   kUnknown    no claim (pointer chasing, data-dependent predicates,
//               multi-rotation chains, anything unproven).
//
// The claims are deliberately strong — the differential harness in
// src/verify/fuzz.h replays generated and shipped loops and asserts no
// affine/invariant claim is ever contradicted by the simulated address
// stream — so the solver only claims what it can prove:
//
//   *Qualifying loops* are single-basic-block natural loops (header ==
//   latch) whose region passes CheckLoopRegion. Multi-block bodies are
//   reported unsolved; no claims are made.
//
//   *Symbolic domain.* A register value is bottom, a constant, or
//   entry(r) + offset — the loop-header entry value of register name `r`
//   plus a known byte offset. One symbolic pass over the body, followed by
//   the back edge's rotation renaming, yields the end-of-iteration state;
//   a register whose post-state is entry(r) + step under its *own* entry
//   name r is an induction variable with that step. Multi-rotation chains
//   (a value consumed two renamings after it was produced, as in the
//   alternating prefetch chains of the Figure 2 DAXPY) do not close under
//   one pass and correctly fall to kUnknown.
//
//   *Predication.* A may-def under qp != p0 taints the value with that
//   predicate. A claim survives only if every contributing may-def and the
//   access itself share one qp, and that qp is *stable*: either a static
//   predicate no loop instruction writes (constant over the loop, so the
//   access executes on all iterations or none), or the first rotating
//   stage predicate (p16) when the SWP back branch is the loop's only
//   rotating-predicate writer — its per-iteration pattern is one
//   contiguous window (init bit, then the monotone LC/EC stage history),
//   so executed instances are consecutive iterations and their deltas
//   equal the step. Later stage predicates depend on preheader rotating-
//   predicate bits this loop-local analysis cannot see; they fall to
//   kUnknown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "isa/image.h"
#include "isa/instruction.h"
#include "isa/types.h"

namespace cobra::analysis {

enum class AddrClass : std::uint8_t { kUnknown, kInvariant, kAffine };
const char* AddrClassName(AddrClass cls);

// One memory slot of a solved loop body and its address classification.
struct MemAccess {
  isa::Addr pc = 0;
  isa::Opcode op = isa::Opcode::kNop;
  std::uint8_t qp = 0;
  int size = 0;            // access footprint in bytes
  bool is_store = false;
  bool is_lfetch = false;
  bool excl = false;       // lfetch.excl (prefetch-for-write)
  bool post_inc = false;
  std::int64_t post_inc_imm = 0;

  AddrClass cls = AddrClass::kUnknown;
  // For kAffine / kInvariant: address = entry(base_entry_gr) + base_offset
  // (+ k*stride). base_entry_gr == -1 encodes a constant address, with
  // base_offset holding the absolute value.
  int base_entry_gr = -1;
  std::int64_t base_offset = 0;
  std::int64_t stride = 0;  // bytes per iteration; 0 for kInvariant

  // Static prefetch-distance estimate: the planted-add displacement the
  // insertion pass would choose for this stream — `target_bytes` rounded
  // to a multiple of the stride, at least one stride (mirrors
  // core::InsertPrefetches). 0 for non-affine accesses.
  std::int64_t PrefetchDistance(std::int64_t target_bytes = 1024) const;
};

// Scalar-evolution result for one natural loop.
struct LoopScev {
  isa::Addr head = 0;            // bundle address of the loop header
  isa::Addr back_branch_pc = 0;  // slot pc of the loop-closing branch
  bool solved = false;           // symbolic pass ran over a qualifying body
  std::string reason;            // why not solved (empty when solved)
  std::vector<MemAccess> accesses;  // program order; empty when unsolved

  const MemAccess* AccessAt(isa::Addr pc) const;
  // Solved accesses classified kAffine — how much of the loop's memory
  // behaviour the static pass pinned down. The cost-model planner uses it
  // as a benefit input: insertion estimates on a loop with proven streams
  // deserve more credit than ones resting on sampled strides alone.
  int AffineAccessCount() const;
};

// Solves the loop closed by (head, back_branch_pc) — the same pair the
// BTB hands the controller. Returns an unsolved LoopScev (with a reason)
// when the pair does not close a qualifying region.
LoopScev AnalyzeLoop(const isa::BinaryImage& image, isa::Addr head,
                     isa::Addr back_branch_pc);

// Same solve over a loop already recovered in a Cfg (saves the rebuild
// when the caller is iterating a kernel's loops).
LoopScev AnalyzeLoop(const Cfg& cfg, const NaturalLoop& loop);

// Analyzes every natural loop reachable from `entries`, in discovery
// order (the convenience entry point for lint and the fuzz harness).
std::vector<LoopScev> AnalyzeLoops(const isa::BinaryImage& image,
                                   const std::vector<isa::Addr>& entries);

}  // namespace cobra::analysis
