#include "analysis/scev.h"

#include <algorithm>
#include <array>

#include "analysis/dataflow.h"
#include "support/check.h"

namespace cobra::analysis {

namespace {

using isa::Opcode;

// Predicate-taint lattice element: 0 = unconditional, a pr name when every
// contributing may-def shares that one predicate, kQpConflict when two
// different predicates (or an untrackable one) mixed.
constexpr int kQpConflict = -1;

int MergeQp(int a, int b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a == b ? a : kQpConflict;
}

// Symbolic register value: bottom, a compile-time constant, or the
// loop-header entry value of register name `reg` plus a byte offset.
struct SymVal {
  enum class Kind : std::uint8_t { kBottom, kConst, kEntry };
  Kind kind = Kind::kBottom;
  int reg = -1;
  std::int64_t off = 0;  // constant value (kConst) / byte offset (kEntry)
  int qp = 0;            // taint, see MergeQp

  static SymVal Bottom() { return {}; }
  static SymVal Const(std::int64_t v) {
    SymVal s;
    s.kind = Kind::kConst;
    s.off = v;
    return s;
  }
  static SymVal Entry(int reg) {
    SymVal s;
    s.kind = Kind::kEntry;
    s.reg = reg;
    return s;
  }

  // Value equality ignoring the predicate taint.
  bool SameValue(const SymVal& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::kBottom) return true;
    if (kind == Kind::kEntry && reg != o.reg) return false;
    return off == o.off;
  }
};

SymVal PlusConst(SymVal v, std::int64_t c) {
  if (v.kind == SymVal::Kind::kBottom) return SymVal::Bottom();
  v.off += c;
  return v;
}

// Symbolic GR state plus the predicate-writer facts QpStable needs.
struct SymState {
  std::array<SymVal, isa::kNumGr> gr;
  std::uint64_t static_pr_writers = 0;  // non-branch defs of p1..p15
  bool rotating_pr_writer = false;      // non-branch def of any p16+

  SymState() {
    gr[0] = SymVal::Const(0);  // r0 hardwired
    for (int r = 1; r < isa::kNumGr; ++r) gr[r] = SymVal::Entry(r);
  }
};

// Installs a def of `dest`. A predicated def is a may-def: when the new
// value differs from the old the register is only `v` on iterations where
// the predicate held, so the value carries the predicate as taint; when the
// values agree the def is a no-op and only the taints merge.
void ApplyGrDef(SymState& st, int dest, SymVal v, int inst_qp) {
  if (dest == 0) return;  // writes to r0 have no architectural effect
  v.qp = MergeQp(v.qp, inst_qp);
  if (inst_qp != 0 && st.gr[dest].SameValue(v)) {
    v.qp = MergeQp(v.qp, st.gr[dest].qp);
  }
  if (v.qp == kQpConflict) v = SymVal::Bottom();
  st.gr[dest] = v;
}

// Folds the integer ALU forms the address chains are built from; anything
// else is bottom. Source taints merge into the result.
SymVal EvalAlu(const isa::Instruction& inst, const SymState& st) {
  const SymVal a = st.gr[inst.r2];
  const SymVal b = st.gr[inst.r3];
  const int qp2 = MergeQp(a.qp, b.qp);
  auto tag = [](SymVal v, int qp) {
    v.qp = MergeQp(v.qp, qp);
    if (v.qp == kQpConflict) return SymVal::Bottom();
    return v;
  };
  switch (inst.op) {
    case Opcode::kMovImm:
      return SymVal::Const(inst.imm);
    case Opcode::kMovReg:
      return a;
    case Opcode::kAddImm:
      return PlusConst(a, inst.imm);
    case Opcode::kAddReg:
      if (a.kind == SymVal::Kind::kConst) return tag(PlusConst(b, a.off), qp2);
      if (b.kind == SymVal::Kind::kConst) return tag(PlusConst(a, b.off), qp2);
      return SymVal::Bottom();
    case Opcode::kSubReg:
      if (b.kind != SymVal::Kind::kConst) return SymVal::Bottom();
      return tag(PlusConst(a, -b.off), qp2);
    case Opcode::kShlAdd:
      // r1 = (r2 << imm) + r3: only a constant can pass through the shift.
      if (a.kind != SymVal::Kind::kConst) return SymVal::Bottom();
      return tag(PlusConst(b, a.off << inst.imm), qp2);
    case Opcode::kShlImm:
      if (a.kind != SymVal::Kind::kConst) return SymVal::Bottom();
      return SymVal::Const(a.off << inst.imm);
    default:
      return SymVal::Bottom();
  }
}

void NotePrDef(SymState& st, int pr) {
  if (pr == 0) return;
  if (pr < isa::kFirstRotPr) {
    st.static_pr_writers |= 1ULL << pr;
  } else {
    st.rotating_pr_writer = true;
  }
}

// Is predicate `q` iteration-stable enough for a stride claim? Either a
// static predicate nothing in the loop writes (constant over the run), or
// the first rotating stage predicate p16 when the rotating back branch is
// the only rotating-predicate writer: br.ctop feeds p16 the monotone
// 1...1 0...0 kernel/epilogue history and br.wtop feeds it all-0, so with
// any preheader init bit the executed-iteration set is one contiguous
// window and consecutive executed instances are consecutive iterations.
bool QpStable(int q, const SymState& st, bool rotating_back_edge) {
  if (q == 0) return true;
  if (q == kQpConflict) return false;
  if (q < isa::kFirstRotPr) {
    return (st.static_pr_writers & (1ULL << q)) == 0;
  }
  if (st.rotating_pr_writer) return false;
  // Rotating-range predicate with no non-branch writer: constant when the
  // back edge does not rotate; under a rotating branch only p16 — fed the
  // contiguous window by the branch itself — is provable.
  return !rotating_back_edge || q == isa::kFirstRotPr;
}

// Classifies one access against the end-of-iteration state `post` (already
// rotated across the back edge). `pre`-taint facts travel in the access's
// recorded addr value.
void Classify(MemAccess& access, const SymVal& addr,
              const std::array<SymVal, isa::kNumGr>& post,
              const SymState& st, bool rotating_back_edge) {
  access.cls = AddrClass::kUnknown;
  if (addr.kind == SymVal::Kind::kBottom) return;

  int chain_qp = addr.qp;
  AddrClass cls = AddrClass::kUnknown;
  int base_reg = -1;
  std::int64_t base_off = 0;
  std::int64_t stride = 0;

  if (addr.kind == SymVal::Kind::kConst) {
    cls = AddrClass::kInvariant;
    base_off = addr.off;
  } else {
    // addr = entry(e) + c. The claim chains across iterations only if the
    // entry symbol recurs onto itself: post-state(e) == entry(e) + step.
    const SymVal& next = post[addr.reg];
    if (next.kind != SymVal::Kind::kEntry || next.reg != addr.reg) return;
    chain_qp = MergeQp(chain_qp, next.qp);
    if (chain_qp == kQpConflict) return;
    base_reg = addr.reg;
    base_off = addr.off;
    stride = next.off;
    cls = stride == 0 ? AddrClass::kInvariant : AddrClass::kAffine;
  }

  // Predicate arbitration. A tainted chain is only valid on iterations
  // where the taint predicate held, so the access must be gated by that
  // same predicate (an unconditional access would observe the stale value
  // on squashed iterations). The surviving predicate must be stable.
  if (chain_qp != 0 && chain_qp != access.qp) return;
  const int effective = MergeQp(chain_qp, access.qp);
  if (!QpStable(effective, st, rotating_back_edge)) return;

  access.cls = cls;
  access.base_entry_gr = base_reg;
  access.base_offset = base_off;
  access.stride = stride;
}

LoopScev Unsolved(isa::Addr head, isa::Addr back_branch_pc,
                  std::string reason) {
  LoopScev scev;
  scev.head = head;
  scev.back_branch_pc = back_branch_pc;
  scev.solved = false;
  scev.reason = std::move(reason);
  return scev;
}

}  // namespace

const char* AddrClassName(AddrClass cls) {
  switch (cls) {
    case AddrClass::kUnknown:
      return "unknown";
    case AddrClass::kInvariant:
      return "invariant";
    case AddrClass::kAffine:
      return "affine";
  }
  COBRA_UNREACHABLE("invalid AddrClass");
}

std::int64_t MemAccess::PrefetchDistance(std::int64_t target_bytes) const {
  if (cls != AddrClass::kAffine || stride == 0) return 0;
  const std::int64_t mag = stride < 0 ? -stride : stride;
  const std::int64_t ahead = std::max<std::int64_t>(1, target_bytes / mag);
  return stride * ahead;
}

const MemAccess* LoopScev::AccessAt(isa::Addr pc) const {
  for (const MemAccess& a : accesses) {
    if (a.pc == pc) return &a;
  }
  return nullptr;
}

int LoopScev::AffineAccessCount() const {
  int count = 0;
  for (const MemAccess& a : accesses) {
    if (a.cls == AddrClass::kAffine) ++count;
  }
  return count;
}

LoopScev AnalyzeLoop(const Cfg& cfg, const NaturalLoop& loop) {
  if (loop.body.size() != 1 || loop.head_block != loop.latch_block) {
    return Unsolved(loop.head, loop.back_branch_pc, "multi-block loop body");
  }
  const isa::BinaryImage& image = cfg.image();
  const BasicBlock& body =
      cfg.blocks()[static_cast<std::size_t>(loop.head_block)];

  const isa::Instruction& back = image.Fetch(loop.back_branch_pc);
  const bool rotating_back_edge = isa::IsRotatingBranch(back.op);

  LoopScev scev;
  scev.head = loop.head;
  scev.back_branch_pc = loop.back_branch_pc;
  scev.solved = true;

  // One symbolic pass over the body in program order. Every access records
  // its address value at the access point (before any post-increment).
  SymState st;
  std::vector<SymVal> addr_vals;
  for (const isa::Addr pc : body.pcs) {
    const isa::Instruction& inst = image.Fetch(pc);
    if (isa::IsMemoryOp(inst.op)) {
      MemAccess access;
      access.pc = pc;
      access.op = inst.op;
      access.qp = inst.qp;
      access.size = inst.size;
      access.is_store = inst.op == Opcode::kSt || inst.op == Opcode::kStf;
      access.is_lfetch = inst.op == Opcode::kLfetch;
      access.excl = access.is_lfetch && inst.lf_hint.excl;
      access.post_inc = inst.post_inc;
      access.post_inc_imm = inst.post_inc ? inst.imm : 0;
      scev.accesses.push_back(access);
      addr_vals.push_back(st.gr[inst.r2]);

      if (inst.post_inc) {
        ApplyGrDef(st, inst.r2, PlusConst(st.gr[inst.r2], inst.imm), inst.qp);
      }
      if (inst.op == Opcode::kLd) {
        ApplyGrDef(st, inst.r1, SymVal::Bottom(), inst.qp);
      }
      continue;
    }
    switch (inst.op) {
      case Opcode::kMovImm:
      case Opcode::kMovReg:
      case Opcode::kAddImm:
      case Opcode::kAddReg:
      case Opcode::kSubReg:
      case Opcode::kShlAdd:
      case Opcode::kShlImm:
        ApplyGrDef(st, inst.r1, EvalAlu(inst, st), inst.qp);
        break;
      case Opcode::kCmp:
      case Opcode::kCmpImm:
      case Opcode::kFcmp:
        NotePrDef(st, inst.p1);
        NotePrDef(st, inst.p2);
        break;
      case Opcode::kMovToPrRot:
        st.rotating_pr_writer = true;
        break;
      default: {
        // Anything else: bottom out whatever GRs it may define. FR / AR /
        // branch effects cannot feed an address chain we track.
        const SlotEffects effects = EffectsOf(inst);
        for (int r = 1; r < isa::kNumGr; ++r) {
          if (effects.def.HasGr(r)) {
            ApplyGrDef(st, r, SymVal::Bottom(), inst.qp);
          }
        }
        break;
      }
    }
  }

  // Cross the back edge: taking a rotating branch renames the value held
  // under name r to name r+1 (wrapping within the rotating file), so the
  // next iteration's entry state reads the shifted frame. Predicate taints
  // keep their names: QpStable only admits predicates whose truth is
  // either constant (static, unwritten) or a contiguous window (p16), and
  // both arguments are insensitive to which iteration the taint names.
  std::array<SymVal, isa::kNumGr> post = st.gr;
  if (rotating_back_edge) {
    for (int r = isa::kFirstRotGr; r < isa::kNumGr; ++r) {
      const int from = r == isa::kFirstRotGr ? isa::kNumGr - 1 : r - 1;
      post[r] = st.gr[from];
    }
  }

  for (std::size_t i = 0; i < scev.accesses.size(); ++i) {
    Classify(scev.accesses[i], addr_vals[i], post, st, rotating_back_edge);
  }
  return scev;
}

LoopScev AnalyzeLoop(const isa::BinaryImage& image, isa::Addr head,
                     isa::Addr back_branch_pc) {
  const RegionCheck region = CheckLoopRegion(image, head, back_branch_pc);
  if (!region.ok) return Unsolved(head, back_branch_pc, region.reason);

  const Cfg cfg = Cfg::Build(image, head);
  for (const NaturalLoop& loop : cfg.loops()) {
    if (loop.head == isa::BundleAddr(head) &&
        loop.back_branch_pc == back_branch_pc) {
      return AnalyzeLoop(cfg, loop);
    }
  }
  return Unsolved(head, back_branch_pc, "no matching natural loop");
}

std::vector<LoopScev> AnalyzeLoops(const isa::BinaryImage& image,
                                   const std::vector<isa::Addr>& entries) {
  const Cfg cfg = Cfg::Build(image, entries);
  std::vector<LoopScev> result;
  result.reserve(cfg.loops().size());
  for (const NaturalLoop& loop : cfg.loops()) {
    result.push_back(AnalyzeLoop(cfg, loop));
  }
  return result;
}

}  // namespace cobra::analysis
