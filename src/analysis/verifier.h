// Patch-safety verifier: proves a deployed trace is the original region
// plus *only* whitelisted binary deltas.
//
// TraceCache::Deploy copies a loop region [orig_begin, orig_end] bundle by
// bundle into the code cache, applies one optimization, appends an exit
// stub, and redirects the original head bundle through a brl. Everything
// COBRA is allowed to have changed is enumerable:
//
//   1. lfetch -> nop.m            (same qp; noprefetch, no post-increment)
//   2. lfetch.post -> add b=b,inc (same qp, same base, same increment)
//   3. lfetch -> lfetch.excl      (raw delta confined to the EXCL hint bit)
//   4. nop -> add rS = rB + d     ) ADORE insertion pair: the add must
//      nop -> lfetch [rS]         ) precede its lfetch, carry the predicate
//                                   of a load in the region whose base is
//                                   rB, and rS must be a provably dead
//                                   static scratch register (non-prefetch
//                                   liveness over the patched trace).
//                                   When scalar evolution solves the
//                                   relocated loop and classifies that
//                                   load's address chain, the displacement
//                                   d must also stay on the load's chrec
//                                   lattice: a nonzero multiple of the
//                                   static stride with matching sign
//                                   (equivalently, d iterations/stride
//                                   ahead on the same stream). A prefetch
//                                   whose displacement leaves the lattice
//                                   was planted from a bogus dynamic
//                                   stride.
//   5. the head-bundle redirect {nop.m, nop.i, brl trace} while deployed,
//      or the bit-exact saved head bundle after a rollback.
//   6. the appended exit stub {nop.m, nop.i, brl orig_end+16}.
//
// Anything else — a skewed branch displacement, a clobbered live register,
// an illegal encoding, a branch escaping the relocated region — is a
// violation, reported with the invariant name and the offending pc.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/image.h"
#include "isa/types.h"

namespace cobra::analysis {

struct Violation {
  std::string invariant;  // stable kebab-case invariant name
  isa::Addr pc = 0;       // offending slot
  std::string detail;
};

struct PatchReport {
  bool ok = true;
  std::vector<Violation> violations;

  // Census of accepted whitelisted deltas.
  int lfetch_nops = 0;       // whitelist 1
  int lfetch_incs = 0;       // whitelist 2
  int excl_flips = 0;        // whitelist 3
  int planted_prefetches = 0;  // whitelist 4 (pairs)

  std::string ToString() const;
};

// Invariant names the verifier reports (kept here so tests and callers
// never match on ad-hoc strings).
namespace invariant {
inline constexpr const char* kIllegalEncoding = "illegal-encoding";
inline constexpr const char* kHeadRedirect = "head-redirect";
inline constexpr const char* kRollbackRestore = "rollback-restore";
inline constexpr const char* kExitStub = "exit-stub";
inline constexpr const char* kBranchDistance = "branch-distance";
inline constexpr const char* kBranchEscape = "branch-escape";
inline constexpr const char* kNonWhitelistedDelta = "non-whitelisted-delta";
inline constexpr const char* kStrayBitDelta = "stray-bit-delta";
inline constexpr const char* kPlantedLiveScratch = "planted-live-scratch";
inline constexpr const char* kPlantedScratchRange = "planted-scratch-range";
inline constexpr const char* kPlantedUnpaired = "planted-unpaired";
inline constexpr const char* kPlantedBaseMismatch = "planted-base-mismatch";
inline constexpr const char* kPlantedChrecMismatch = "planted-chrec-mismatch";
}  // namespace invariant

// Diffs the trace at `trace_head` against the original region
// [orig_begin, orig_end] (bundle addresses, inclusive). `original_head` is
// the saved pre-redirect head bundle (the in-image head holds the brl
// redirect while deployed). `redirect_active` selects which head-bundle
// invariant applies (5. above).
PatchReport VerifyTracePatch(
    const isa::BinaryImage& image, isa::Addr orig_begin, isa::Addr orig_end,
    const std::array<isa::EncodedSlot, 3>& original_head,
    isa::Addr trace_head, bool redirect_active);

}  // namespace cobra::analysis
