#include "analysis/verifier.h"

#include <sstream>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/scev.h"
#include "support/check.h"

namespace cobra::analysis {

namespace {

std::string Hex(isa::Addr pc) {
  std::ostringstream os;
  os << "0x" << std::hex << pc;
  return os.str();
}

struct PlantedAdd {
  isa::Addr pc = 0;
  int dest = 0;
  int base = 0;
  std::uint8_t qp = 0;
  std::int64_t disp = 0;  // planted prefetch displacement in bytes
  bool paired = false;
};

struct PlantedLfetch {
  isa::Addr pc = 0;
  int base = 0;
  std::uint8_t qp = 0;
};

// A nop head modulo the qp field (NopOutLfetch and the insertion pass both
// write nops carrying a predicate).
bool IsNop(const isa::Instruction& inst) {
  return inst.op == isa::Opcode::kNop;
}

}  // namespace

std::string PatchReport::ToString() const {
  std::ostringstream os;
  if (ok) {
    os << "patch ok:";
  } else {
    os << "patch verification FAILED:";
  }
  os << " lfetch-nops=" << lfetch_nops << " lfetch-incs=" << lfetch_incs
     << " excl-flips=" << excl_flips
     << " planted-prefetches=" << planted_prefetches;
  for (const Violation& v : violations) {
    os << "\n  [" << v.invariant << "] at " << Hex(v.pc) << ": " << v.detail;
  }
  return os.str();
}

PatchReport VerifyTracePatch(
    const isa::BinaryImage& image, isa::Addr orig_begin, isa::Addr orig_end,
    const std::array<isa::EncodedSlot, 3>& original_head,
    isa::Addr trace_head, bool redirect_active) {
  PatchReport report;
  auto violate = [&](const char* inv, isa::Addr pc, std::string detail) {
    report.ok = false;
    report.violations.push_back(Violation{inv, pc, std::move(detail)});
  };

  orig_begin = isa::BundleAddr(orig_begin);
  orig_end = isa::BundleAddr(orig_end);
  trace_head = isa::BundleAddr(trace_head);
  COBRA_CHECK_MSG(orig_begin <= orig_end && image.Contains(orig_begin) &&
                      image.Contains(orig_end) && image.InCodeCache(trace_head),
                  "verifier called with a malformed deployment geometry");
  const auto num_bundles =
      static_cast<std::int64_t>((orig_end - orig_begin) / isa::kBundleBytes) +
      1;
  const isa::Addr stub =
      trace_head + static_cast<isa::Addr>(num_bundles) * isa::kBundleBytes;
  COBRA_CHECK_MSG(image.Contains(stub), "trace exit stub outside the image");

  // --- Head-bundle invariant ------------------------------------------------
  if (redirect_active) {
    const std::array<isa::EncodedSlot, 3> redirect = {
        isa::Encode(isa::Nop(isa::Unit::kM)),
        isa::Encode(isa::Nop(isa::Unit::kI)),
        isa::Encode(isa::Brl(trace_head))};
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(orig_begin, slot);
      if (!(image.Raw(pc) == redirect[slot])) {
        violate(invariant::kHeadRedirect, pc,
                "deployed head bundle is not {nop.m, nop.i, brl trace}");
      }
    }
  } else {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(orig_begin, slot);
      if (!(image.Raw(pc) == original_head[slot])) {
        violate(invariant::kRollbackRestore, pc,
                "reverted head bundle differs from the saved original");
      }
    }
  }

  // --- Exit stub ------------------------------------------------------------
  const std::array<isa::EncodedSlot, 3> expected_stub = {
      isa::Encode(isa::Nop(isa::Unit::kM)),
      isa::Encode(isa::Nop(isa::Unit::kI)),
      isa::Encode(isa::Brl(orig_end + isa::kBundleBytes))};
  for (unsigned slot = 0; slot < 3; ++slot) {
    const isa::Addr pc = isa::MakePc(stub, slot);
    if (!(image.Raw(pc) == expected_stub[slot])) {
      violate(invariant::kExitStub, pc,
              "exit stub is not {nop.m, nop.i, brl back}");
    }
  }

  // --- Slot-by-slot delta whitelist ------------------------------------------
  std::vector<PlantedAdd> adds;
  std::vector<PlantedLfetch> lfetches;
  for (std::int64_t i = 0; i < num_bundles; ++i) {
    const isa::Addr orig_bundle =
        orig_begin + static_cast<isa::Addr>(i) * isa::kBundleBytes;
    const isa::Addr trace_bundle =
        trace_head + static_cast<isa::Addr>(i) * isa::kBundleBytes;
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::EncodedSlot orig_raw =
          i == 0 ? original_head[slot]
                 : image.Raw(isa::MakePc(orig_bundle, slot));
      const isa::Addr trace_pc = isa::MakePc(trace_bundle, slot);
      const isa::EncodedSlot trace_raw = image.Raw(trace_pc);

      isa::Instruction trace_inst;
      std::string decode_error;
      if (!isa::TryDecode(trace_raw, &trace_inst, &decode_error)) {
        violate(invariant::kIllegalEncoding, trace_pc, decode_error);
        continue;
      }
      // Containment of every branch in the relocated body (identical slots
      // included: a pre-existing escape is just as fatal once relocated).
      if (trace_inst.op == isa::Opcode::kBrl) {
        violate(invariant::kBranchEscape, trace_pc,
                "brl inside the relocated loop body");
      } else if (isa::IsBranch(trace_inst.op)) {
        const std::int64_t target = i + trace_inst.imm;
        if (target < 0 || target >= num_bundles) {
          violate(invariant::kBranchEscape, trace_pc,
                  "branch target leaves the relocated region");
        }
      }

      if (trace_raw == orig_raw) continue;

      isa::Instruction orig_inst;
      if (!isa::TryDecode(orig_raw, &orig_inst, &decode_error)) {
        violate(invariant::kIllegalEncoding, trace_pc,
                "original slot undecodable: " + decode_error);
        continue;
      }

      // Whitelist 3: raw delta confined to the EXCL hint bit of an lfetch.
      if ((orig_raw.head ^ trace_raw.head) == isa::enc::kExclBit &&
          orig_raw.imm == trace_raw.imm) {
        if (orig_inst.op == isa::Opcode::kLfetch) {
          ++report.excl_flips;
        } else {
          violate(invariant::kStrayBitDelta, trace_pc,
                  "hint bit flipped on a non-lfetch");
        }
        continue;
      }

      // Whitelist 1: lfetch (no post-increment) -> nop.m, same qp.
      if (orig_inst.op == isa::Opcode::kLfetch && !orig_inst.post_inc &&
          IsNop(trace_inst) && trace_inst.qp == orig_inst.qp) {
        ++report.lfetch_nops;
        continue;
      }
      // Whitelist 2: lfetch with post-increment -> the increment alone.
      if (orig_inst.op == isa::Opcode::kLfetch && orig_inst.post_inc &&
          trace_inst.op == isa::Opcode::kAddImm &&
          trace_inst.r1 == orig_inst.r2 && trace_inst.r2 == orig_inst.r2 &&
          trace_inst.imm == orig_inst.imm &&
          trace_inst.qp == orig_inst.qp) {
        ++report.lfetch_incs;
        continue;
      }
      // Whitelist 4 candidates: former nop slots gaining the insertion pair.
      if (IsNop(orig_inst) && trace_inst.op == isa::Opcode::kAddImm) {
        adds.push_back(PlantedAdd{trace_pc, trace_inst.r1, trace_inst.r2,
                                  trace_inst.qp, trace_inst.imm, false});
        continue;
      }
      if (IsNop(orig_inst) && trace_inst.op == isa::Opcode::kLfetch &&
          !trace_inst.post_inc) {
        lfetches.push_back(
            PlantedLfetch{trace_pc, trace_inst.r2, trace_inst.qp});
        continue;
      }

      // Same-opcode relative branches differing only in displacement get
      // the sharper invariant name.
      if (isa::IsBranch(orig_inst.op) && orig_inst.op == trace_inst.op &&
          orig_inst.op != isa::Opcode::kBrl &&
          orig_inst.imm != trace_inst.imm) {
        violate(invariant::kBranchDistance, trace_pc,
                "relative branch displacement changed");
        continue;
      }
      violate(invariant::kNonWhitelistedDelta, trace_pc,
              "slot delta outside the optimization whitelist");
    }
  }

  // --- Whitelist 4: validate the planted pairs -------------------------------
  if (!adds.empty() || !lfetches.empty()) {
    // The predicates, bases, and pcs of real loads in the trace region.
    struct LoadShape {
      isa::Addr pc = 0;
      int base = 0;
      std::uint8_t qp = 0;
    };
    std::vector<LoadShape> load_shapes;
    for (std::int64_t i = 0; i < num_bundles; ++i) {
      for (unsigned slot = 0; slot < 3; ++slot) {
        const isa::Addr pc = isa::MakePc(
            trace_head + static_cast<isa::Addr>(i) * isa::kBundleBytes, slot);
        isa::Instruction inst;
        if (!isa::TryDecode(image.Raw(pc), &inst, nullptr)) continue;
        if (inst.op == isa::Opcode::kLd || inst.op == isa::Opcode::kLdf) {
          load_shapes.push_back(LoadShape{pc, inst.r2, inst.qp});
        }
      }
    }

    for (const PlantedLfetch& lf : lfetches) {
      PlantedAdd* producer = nullptr;
      for (PlantedAdd& add : adds) {
        if (add.dest == lf.base && add.qp == lf.qp && add.pc < lf.pc) {
          producer = &add;
        }
      }
      if (producer == nullptr) {
        violate(invariant::kPlantedUnpaired, lf.pc,
                "planted lfetch has no preceding planted add for its base");
        continue;
      }
      producer->paired = true;
    }

    // Scalar evolution over the patched trace loop (the relocated back
    // branch targets bundle 0, so the loop head is the trace head). An
    // unsolved loop simply yields no chrec facts to check against.
    const Cfg cfg = Cfg::Build(image, trace_head);
    LoopScev trace_scev;
    for (const NaturalLoop& loop : cfg.loops()) {
      if (loop.head == trace_head) {
        trace_scev = AnalyzeLoop(cfg, loop);
        break;
      }
    }

    for (const PlantedAdd& add : adds) {
      if (!add.paired) {
        violate(invariant::kPlantedUnpaired, add.pc,
                "planted add feeds no planted lfetch");
        continue;
      }
      ++report.planted_prefetches;
      if (add.dest < 8 || add.dest >= isa::kFirstRotGr) {
        violate(invariant::kPlantedScratchRange, add.pc,
                "planted scratch register outside r8..r31");
      }
      std::vector<isa::Addr> matching_loads;
      for (const LoadShape& shape : load_shapes) {
        if (shape.base == add.base && shape.qp == add.qp) {
          matching_loads.push_back(shape.pc);
        }
      }
      if (matching_loads.empty()) {
        violate(invariant::kPlantedBaseMismatch, add.pc,
                "planted add does not track a region load's base/predicate");
        continue;
      }

      // Chrec consistency: when the tracked load's address chain is
      // statically solved, the planted displacement must stay on its
      // lattice — a nonzero stride multiple with matching sign (or a zero
      // displacement for a proven-invariant address). Unknown chains and
      // unsolved loops assert nothing.
      bool consistent = !trace_scev.solved;
      std::int64_t solved_stride = 0;
      for (const isa::Addr load_pc : matching_loads) {
        if (consistent) break;
        const MemAccess* access = trace_scev.AccessAt(load_pc);
        if (access == nullptr || access->cls == AddrClass::kUnknown) {
          consistent = true;
          break;
        }
        if (access->cls == AddrClass::kAffine) {
          solved_stride = access->stride;
          consistent = add.disp != 0 && add.disp % access->stride == 0 &&
                       (add.disp > 0) == (access->stride > 0);
        } else {  // kInvariant
          consistent = add.disp == 0;
        }
      }
      if (!consistent) {
        violate(invariant::kPlantedChrecMismatch, add.pc,
                "planted displacement " + std::to_string(add.disp) +
                    " leaves the load's static chrec lattice (stride " +
                    std::to_string(solved_stride) + ")");
      }
    }

    // Scratch deadness: non-prefetch liveness over the patched trace.
    if (!adds.empty()) {
      LivenessOptions opts;
      opts.exclude_lfetch_base_uses = true;
      const Liveness live = Liveness::Compute(cfg, opts);
      for (const PlantedAdd& add : adds) {
        if (!add.paired) continue;
        if (add.dest >= 0 && add.dest < isa::kNumGr &&
            live.LiveOut(add.pc).HasGr(add.dest)) {
          violate(invariant::kPlantedLiveScratch, add.pc,
                  "planted scratch register carries a live program value");
        }
      }
    }
  }

  return report;
}

}  // namespace cobra::analysis
