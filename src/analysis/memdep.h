// Conservative pairwise memory dependence over scalar-evolution facts.
//
// Two accesses of the same loop whose address chains the scev pass solved
// against the SAME entry register form comparable lattices
//   A_k = entry + ca + k*s_a      B_k = entry + cb + k*s_b
// and their collision question becomes pure modular arithmetic. Anything
// less — different entry symbols, an unknown classification, different
// strides — is unprovable with loop-local facts and reports kMayAlias.
//
// Verdicts are directional by design:
//   kNoAlias      proven: no executed instance of `a` ever overlaps any
//                 executed instance of `b` (given the scev claims, which
//                 the fuzz differential harness validates);
//   kMustOverlap  proven: the two address lattices intersect — some
//                 iteration pair collides if the loop runs far enough
//                 (this is what the prefetch-aliases-store lint fires on);
//   kMayAlias     no proof either way (always safe to assume).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/scev.h"

namespace cobra::analysis {

enum class AliasVerdict : std::uint8_t { kNoAlias, kMayAlias, kMustOverlap };
const char* AliasVerdictName(AliasVerdict verdict);

// Verdict between `a`'s footprint displaced by `extra_disp_a` bytes (the
// planted-prefetch lookahead; 0 compares the raw streams) and `b`'s
// footprint, across all iteration pairs of the same loop.
AliasVerdict ClassifyAlias(const MemAccess& a, std::int64_t extra_disp_a,
                           const MemAccess& b);

// The loop's stores whose streams provably collide with a prefetch planted
// `disp` bytes ahead of `access`'s address chain. Pointers into
// `loop.accesses`; empty when nothing is provable (NOT a no-alias proof).
std::vector<const MemAccess*> ProvableStoreCollisions(const LoopScev& loop,
                                                      const MemAccess& access,
                                                      std::int64_t disp);

}  // namespace cobra::analysis
