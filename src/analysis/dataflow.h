// Dataflow over the slot-granular CFG: per-slot def/use effects, backward
// liveness, and a forward "ever defined" analysis — all aware of the three
// MIA-64 features that break naive register analyses:
//
//   *Predication.*  A def under a qp != p0 predicate is a MAY-def: it never
//   kills liveness (the old value survives squashed iterations), and the
//   qp predicate register itself is a use.
//
//   *Register rotation.*  br.ctop / br.wtop decrement the rotating register
//   bases when taken, so the value written to r32 before the branch is
//   *named* r33 after it. Crossing a rotating edge renames the rotating
//   subrange of a set by one position (RotateFwd along execution,
//   RotateBwd against it). clrrrb re-bases the frames; the emitters only
//   use it in kernel preheaders where all RRBs are already zero, so it is
//   modeled as the identity renaming.
//
//   *SWP loop counters.*  LC / EC live in application registers; the
//   modulo-scheduled branches read and write them, which is what the lint's
//   LC/EC-misuse check keys on.
//
// Liveness supports two refinements the patch machinery needs:
//   - `exclude_lfetch_base_uses`: "non-prefetch liveness". An lfetch's base
//     address read keeps no *program value* alive — a register referenced
//     only by prefetch address arithmetic is fair game for scavenging.
//   - boundary modes for edges leaving the analyzed code: kReferencedRegs
//     assumes every register mentioned anywhere in the region may be read
//     after it (the safe default for regions that fall off the analyzed
//     text); code that ends in `break` needs no boundary at all.
#pragma once

#include <cstdint>
#include <map>

#include "analysis/cfg.h"
#include "isa/instruction.h"
#include "isa/types.h"

namespace cobra::analysis {

// Bitset over the full architectural register space: 128 GR, 128 FR,
// 64 PR, and the LC/EC application registers.
struct RegSet {
  std::uint64_t gr[2] = {0, 0};
  std::uint64_t fr[2] = {0, 0};
  std::uint64_t pr = 0;
  std::uint64_t ar = 0;  // bit 0 = LC, bit 1 = EC

  void AddGr(int r) { gr[r >> 6] |= 1ULL << (r & 63); }
  void AddFr(int r) { fr[r >> 6] |= 1ULL << (r & 63); }
  void AddPr(int r) { pr |= 1ULL << r; }
  void AddAr(isa::AppReg a) { ar |= 1ULL << static_cast<int>(a); }
  bool HasGr(int r) const { return (gr[r >> 6] >> (r & 63)) & 1; }
  bool HasFr(int r) const { return (fr[r >> 6] >> (r & 63)) & 1; }
  bool HasPr(int r) const { return (pr >> r) & 1; }
  bool HasAr(isa::AppReg a) const {
    return (ar >> static_cast<int>(a)) & 1;
  }

  RegSet& operator|=(const RegSet& o) {
    gr[0] |= o.gr[0]; gr[1] |= o.gr[1];
    fr[0] |= o.fr[0]; fr[1] |= o.fr[1];
    pr |= o.pr; ar |= o.ar;
    return *this;
  }
  // Set difference: removes every register in `o`.
  void Remove(const RegSet& o) {
    gr[0] &= ~o.gr[0]; gr[1] &= ~o.gr[1];
    fr[0] &= ~o.fr[0]; fr[1] &= ~o.fr[1];
    pr &= ~o.pr; ar &= ~o.ar;
  }
  bool Empty() const {
    return (gr[0] | gr[1] | fr[0] | fr[1] | pr | ar) == 0;
  }
  friend bool operator==(const RegSet&, const RegSet&) = default;
};

// Renames the rotating subranges by one rotation. Along execution
// (RotateFwd) a value named r falls into name r+1 (wrapping within the
// rotating range); RotateBwd is the inverse, for backward analyses
// crossing a rotating edge against execution order.
RegSet RotateFwd(const RegSet& s);
RegSet RotateBwd(const RegSet& s);

// Per-slot def/use effects. `predicated` means the defs are may-defs (the
// instruction can be squashed): they must not kill liveness and do not
// make a "must defined" fact.
struct SlotEffects {
  RegSet use;
  RegSet def;
  bool predicated = false;
};
SlotEffects EffectsOf(const isa::Instruction& inst);

// Every register name the instruction mentions (use or def, any class) —
// the conservative region-boundary set.
RegSet ReferencedRegs(const isa::Instruction& inst);

struct LivenessOptions {
  // Non-prefetch liveness: drop lfetch base-address uses.
  bool exclude_lfetch_base_uses = false;
  enum class Boundary {
    kReferencedRegs,  // exit edges read anything the region references
    kNone,            // exit edges read nothing
  };
  Boundary boundary = Boundary::kReferencedRegs;
};

// Backward liveness to fixpoint over the CFG, with per-slot results.
class Liveness {
 public:
  static Liveness Compute(const Cfg& cfg, LivenessOptions opts = {});

  // Live registers before / after the slot at `pc`. Unreached pcs report
  // the empty set.
  const RegSet& LiveIn(isa::Addr pc) const;
  const RegSet& LiveOut(isa::Addr pc) const;

 private:
  std::map<isa::Addr, RegSet> live_in_;
  std::map<isa::Addr, RegSet> live_out_;
  RegSet empty_;
};

// Forward may-analysis: which register names have a def on *some* path
// from an entry (under all applicable rotation renamings). The complement
// at a use site is a read of a never-defined register.
class DefinedRegs {
 public:
  static DefinedRegs Compute(const Cfg& cfg, const RegSet& entry_defined);

  // What a kernel entry provides: the static GR/FR/PR files (zeroed by
  // RegisterFile::Reset, and the argument/scratch conventions live there).
  // Rotating registers and LC/EC must be established by the code itself.
  static RegSet EntryDefined();

  const RegSet& DefinedBefore(isa::Addr pc) const;

 private:
  std::map<isa::Addr, RegSet> before_;
  RegSet empty_;
};

}  // namespace cobra::analysis
