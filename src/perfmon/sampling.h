// perfmon-style sampling driver over the simulated HPM.
//
// Mirrors the structure in Section 3.1 of the paper: a kernel driver
// programs the performance counters and the DEAR latency filter, collects a
// sample every N retired instructions into a per-CPU Kernel Sampling
// Buffer, and "signals" the monitoring thread when a batch is ready; the
// monitoring thread copies the batch into its User Sampling Buffer.
//
// Each sample carries: sample index, PC, process/thread/processor ids, the
// four performance counters, the eight BTB address registers (four
// source/target pairs), and the latest DEAR record (miss instruction
// address, miss data address, latency).
//
// Delivery discipline: while an ExecutionEngine is driving the cores,
// full batches are queued per CPU and handed to the handlers at the next
// engine commit barrier (a registered round task), in cpu-id order. The
// handlers feed COBRA's monitoring threads, whose optimizer may rewrite
// the binary image — deferring to barriers means rewrites only happen
// while every core is quiescent, identically under the serial and
// parallel engines. Without an engine (unit tests driving cores by hand),
// batches deliver inline as the samples are collected.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cpu/core.h"
#include "cpu/hpm.h"
#include "machine/machine.h"
#include "obs/registry.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::perfmon {

struct Sample {
  std::uint64_t index = 0;  // per-CPU monotone sample number
  isa::Addr pc = 0;
  int pid = 0;
  int tid = 0;
  int cpu = 0;
  Cycle timestamp = 0;
  std::array<std::uint64_t, cpu::kNumHpmCounters> counters{};
  std::array<cpu::Btb::Entry, cpu::Btb::kEntries> btb{};
  cpu::Dear::Record dear{};
};

// Sample serialization for checkpoints (perfmon buffers and COBRA's User
// Sampling Buffers carry whole samples).
void SaveSample(support::StateWriter& w, const Sample& sample);
bool RestoreSample(support::StateReader& r, Sample* sample);

struct SamplingConfig {
  // Sampling period in retired instructions. The paper keeps this long
  // enough that monitoring overhead stays negligible.
  std::uint64_t period_insts = 2000;
  // Counter programming (the coherent-miss detector's default set).
  std::array<cpu::HpmEvent, cpu::kNumHpmCounters> events{
      cpu::HpmEvent::kCpuCycles, cpu::HpmEvent::kL3Misses,
      cpu::HpmEvent::kBusMemory, cpu::HpmEvent::kBusRdHitm};
  // DEAR filter: record loads with latency strictly greater than this.
  // 12 cycles = Itanium 2 L3 hit latency, the paper's first-level filter.
  Cycle dear_latency_threshold = 12;
  // Samples per delivery batch (kernel buffer "overflow" size).
  std::size_t batch_size = 16;
};

class SamplingDriver {
 public:
  // A delivery handler plays the role of the monitoring thread's signal
  // handler: it receives the batch just collected for one CPU.
  using DeliveryHandler = std::function<void(int cpu, std::span<const Sample>)>;

  SamplingDriver(machine::Machine* machine, SamplingConfig config);
  ~SamplingDriver();

  SamplingDriver(const SamplingDriver&) = delete;
  SamplingDriver& operator=(const SamplingDriver&) = delete;

  // Begins sampling `cpu` on behalf of simulated thread `tid`.
  void StartMonitoring(CpuId cpu, int tid, DeliveryHandler handler);

  // Stops sampling a CPU, flushing any partial batch to the handler.
  void StopMonitoring(CpuId cpu);
  void StopAll();

  std::uint64_t TotalSamples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }
  // Batches handed to delivery handlers (the monitoring-thread "signals").
  std::uint64_t TotalBatches() const { return total_batches_; }
  const SamplingConfig& config() const { return config_; }

  // Checkpointing. Delivery handlers are live closures, not state: restore
  // into a driver whose StartMonitoring calls already re-installed them
  // (CobraRuntime::AttachAll before Machine::RestoreCheckpoint).
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

 private:
  struct PerCpu {
    bool active = false;
    int tid = 0;
    std::uint64_t next_index = 0;
    std::vector<Sample> kernel_buffer;
    // Full batches awaiting barrier delivery (engine runs only). Touched
    // exclusively by the core's segment (worker-local) or at barriers.
    std::vector<std::vector<Sample>> deferred;
    DeliveryHandler handler;
  };

  void CollectSample(cpu::Core& core);
  void Flush(CpuId cpu);
  void DeliverDeferred(CpuId cpu);
  void DrainDeferred();  // the registered round task

  machine::Machine* machine_;
  SamplingConfig config_;
  std::vector<PerCpu> per_cpu_;
  int round_task_id_ = -1;
  // Cores sample concurrently during parallel segment phases.
  std::atomic<std::uint64_t> total_samples_{0};
  // Batches only deliver at barriers or inline (coordinator thread).
  std::uint64_t total_batches_ = 0;
  obs::Registry::Registration metrics_;
};

}  // namespace cobra::perfmon
