#include "perfmon/sample.h"

#include <cstdlib>
#include <limits>
#include <utility>

#include "support/check.h"

namespace cobra::perfmon {

bool ParseSampleSpec(const char* text, SampleConfig* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long interval = std::strtoull(text, &end, 10);
  if (end == text || interval == 0) return false;
  SampleConfig config;
  config.interval_insts = interval;
  if (*end == ':') {
    const char* phases_text = end + 1;
    const long phases = std::strtol(phases_text, &end, 10);
    if (end == phases_text || phases <= 0) return false;
    config.max_phases = static_cast<int>(phases);
    if (*end == ':') {
      const char* warm_text = end + 1;
      if (*warm_text == '-') return false;
      const unsigned long long warmup = std::strtoull(warm_text, &end, 10);
      if (end == warm_text || *end != '\0') return false;
      config.warmup_insts = warmup;  // 0 = no warm-up
    } else if (*end != '\0') {
      return false;
    }
  } else if (*end != '\0') {
    return false;
  }
  *out = config;
  return true;
}

SampleConfig SampleConfigFromEnv() {
  SampleConfig config;
  ParseSampleSpec(std::getenv("COBRA_SAMPLE"), &config);
  return config;
}

bool PhaseProfile::IsRepresentative(int index) const {
  if (index < 0 || index >= static_cast<int>(plan.assignment.size())) {
    return false;
  }
  const int cluster = plan.assignment[static_cast<std::size_t>(index)];
  if (cluster < 0) return false;
  return plan.clusters[static_cast<std::size_t>(cluster)].representative ==
         index;
}

PhaseProfiler::PhaseProfiler(machine::Machine* machine,
                             const SampleConfig& config)
    : machine_(machine),
      config_(config),
      bbv_(machine, config.interval_insts),
      prior_fast_forward_(machine->fast_forward()) {
  COBRA_CHECK(config.enabled());
  machine_->SetFastForward(true);
}

PhaseProfiler::~PhaseProfiler() {
  if (!finished_) machine_->SetFastForward(prior_fast_forward_);
}

PhaseProfile PhaseProfiler::Finish() {
  COBRA_CHECK(!finished_);
  finished_ = true;
  machine_->SetFastForward(prior_fast_forward_);
  bbv_.Finalize();

  PhaseProfile profile;
  profile.interval_insts = config_.interval_insts;
  profile.warmup_insts = config_.EffectiveWarmup();
  profile.intervals = bbv_.intervals();
  std::uint64_t cumulative = 0;
  for (const BasicBlockVector& interval : profile.intervals) {
    cumulative += interval.retired;
    profile.boundaries.push_back(cumulative);
  }
  profile.plan = ClusterPhases(profile.intervals, config_.max_phases);
  return profile;
}

SampledRun::SampledRun(machine::Machine* machine, PhaseProfile profile,
                       CounterProbe probe)
    : machine_(machine),
      profile_(std::move(profile)),
      probe_(std::move(probe)),
      metrics_(&machine->registry()) {
  outcome_.intervals = profile_.intervals.size();
  outcome_.phases = profile_.plan.clusters.size();
  measurements_.resize(profile_.plan.clusters.size());

  metrics_.Add("sample.intervals", [this] { return outcome_.intervals; });
  metrics_.Add("sample.phases", [this] { return outcome_.phases; });
  metrics_.Add("sample.detailed_intervals",
               [this] { return outcome_.detailed_intervals; });
  metrics_.Add("sample.detailed_retired",
               [this] { return outcome_.detailed_retired; });
  metrics_.Add("sample.checkpoints", [this] { return outcome_.checkpoints; });
  metrics_.Add("sample.checkpoint_bytes",
               [this] { return outcome_.checkpoint_bytes; });
  metrics_.Add("sample.projected_cycles",
               [this] { return outcome_.projected_cycles; });

  // warm_at_[i]: the threshold is the start of the first representative
  // after interval i, minus the warm-up distance (boundaries are interval
  // *ends*, so boundaries[j-1] is where interval j begins).
  const std::size_t n = profile_.intervals.size();
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  warm_at_.assign(n, kNever);
  std::uint64_t pending = kNever;
  for (std::size_t i = n; i-- > 0;) {
    if (i + 1 < n && profile_.IsRepresentative(static_cast<int>(i) + 1)) {
      const std::uint64_t start = profile_.boundaries[i];
      pending = start > profile_.warmup_insts
                    ? start - profile_.warmup_insts
                    : 0;
    }
    warm_at_[i] = pending;
  }

  // The run starts at the schedule's first interval: measuring if interval
  // 0 is a representative (it usually is — seeding starts there),
  // otherwise fast-forward until the first warm-up window opens.
  const std::uint64_t retired = TotalRetired();
  detailed_ = !machine_->fast_forward();
  detailed_enter_retired_ = retired;
  if (profile_.IsRepresentative(0)) {
    BeginMeasurement(0, retired);
  } else if (!warm_at_.empty() && retired >= warm_at_[0]) {
    EnsureDetailed(retired);
  } else {
    EnsureFastForward(retired);
  }
  round_task_id_ = machine_->AddRoundTask([this] { OnBarrier(); });
}

SampledRun::~SampledRun() {
  machine_->RemoveRoundTask(round_task_id_);
  if (!finished_) machine_->SetFastForward(false);
}

std::uint64_t SampledRun::TotalRetired() const {
  std::uint64_t total = 0;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    total += machine_->core(cpu).instructions_retired();
  }
  return total;
}

std::vector<std::uint64_t> SampledRun::ReadProbe() const {
  return probe_ ? probe_() : std::vector<std::uint64_t>{};
}

void SampledRun::EnsureDetailed(std::uint64_t retired) {
  if (detailed_) return;
  detailed_ = true;
  detailed_enter_retired_ = retired;
  machine_->SetFastForward(false);
}

void SampledRun::EnsureFastForward(std::uint64_t retired) {
  if (detailed_) {
    outcome_.detailed_retired += retired - detailed_enter_retired_;
    detailed_ = false;
  }
  machine_->SetFastForward(true);
}

void SampledRun::BeginMeasurement(int interval, std::uint64_t retired) {
  EnsureDetailed(retired);
  // Final warm-up step through the snapshot layer: seal the whole machine
  // into a blob and restore it in place. On simulated state this is an
  // identity (the round-trip determinism the `sample` test label fuzzes);
  // it drops only host-side acceleration state, exactly what a
  // from-checkpoint warm start would see.
  const std::vector<std::uint8_t> blob = machine_->SaveCheckpoint();
  std::string error;
  COBRA_CHECK_MSG(machine_->RestoreCheckpoint(blob, &error), error.c_str());
  outcome_.checkpoints += 1;
  outcome_.checkpoint_bytes = blob.size();

  measuring_ = interval;
  start_retired_ = TotalRetired();
  start_cycles_ = machine_->GlobalTime();
  start_counters_ = ReadProbe();
}

void SampledRun::EndMeasurement() {
  Measurement m;
  m.retired = TotalRetired() - start_retired_;
  m.cycles = machine_->GlobalTime() - start_cycles_;
  const std::vector<std::uint64_t> now = ReadProbe();
  m.counters.resize(now.size());
  for (std::size_t i = 0; i < now.size(); ++i) {
    m.counters[i] = now[i] - start_counters_[i];
  }
  m.valid = m.retired > 0;
  outcome_.detailed_intervals += 1;

  const int cluster =
      profile_.plan.assignment[static_cast<std::size_t>(measuring_)];
  measurements_[static_cast<std::size_t>(cluster)] = std::move(m);
  measuring_ = -1;
}

void SampledRun::OnBarrier() {
  if (finished_) return;
  const std::uint64_t retired = TotalRetired();
  const int n = static_cast<int>(profile_.boundaries.size());
  // Advance through every schedule boundary this barrier crossed (interval
  // ends quantize to barriers, exactly like pass 1's interval closing).
  while (interval_ < n &&
         retired >= profile_.boundaries[static_cast<std::size_t>(interval_)]) {
    if (measuring_ == interval_) EndMeasurement();
    interval_ += 1;
    if (profile_.IsRepresentative(interval_)) {
      BeginMeasurement(interval_, retired);
    }
  }
  if (measuring_ >= 0) return;  // stay detailed while measuring
  // Mode decision for the running interval: detailed once the next
  // representative's warm-up window opens, fast-forward otherwise.
  if (interval_ < n &&
      retired >= warm_at_[static_cast<std::size_t>(interval_)]) {
    EnsureDetailed(retired);
  } else {
    EnsureFastForward(retired);
  }
}

SampleOutcome SampledRun::Finish() {
  if (finished_) return outcome_;
  finished_ = true;
  if (measuring_ >= 0) EndMeasurement();
  if (detailed_) {
    outcome_.detailed_retired += TotalRetired() - detailed_enter_retired_;
    detailed_ = false;
  }
  machine_->SetFastForward(false);
  outcome_.total_retired = TotalRetired();
  outcome_.detailed_fraction =
      outcome_.total_retired > 0
          ? static_cast<double>(outcome_.detailed_retired) /
                static_cast<double>(outcome_.total_retired)
          : 0.0;

  // Per-phase per-instruction rates from the measured representatives; a
  // phase whose representative was never reached (the pass-2 run ended
  // early) falls back to the retired-weighted mean of the measured phases.
  const std::size_t num_counters = probe_ ? ReadProbe().size() : 0;
  std::uint64_t measured_retired = 0;
  std::uint64_t measured_cycles = 0;
  std::vector<std::uint64_t> measured_counters(num_counters, 0);
  for (const Measurement& m : measurements_) {
    if (!m.valid) continue;
    measured_retired += m.retired;
    measured_cycles += m.cycles;
    for (std::size_t k = 0; k < num_counters && k < m.counters.size(); ++k) {
      measured_counters[k] += m.counters[k];
    }
  }

  auto Rate = [](std::uint64_t delta, std::uint64_t retired) {
    return retired > 0
               ? static_cast<double>(delta) / static_cast<double>(retired)
               : 0.0;
  };

  double projected_cycles = 0.0;
  std::vector<double> projected(num_counters, 0.0);
  std::uint64_t scheduled_retired = 0;
  for (std::size_t i = 0; i < profile_.intervals.size(); ++i) {
    const std::uint64_t weight = profile_.intervals[i].retired;
    scheduled_retired += weight;
    const int cluster = profile_.plan.assignment[i];
    const Measurement* m =
        cluster >= 0 ? &measurements_[static_cast<std::size_t>(cluster)]
                     : nullptr;
    const bool have = m != nullptr && m->valid;
    const double w = static_cast<double>(weight);
    projected_cycles +=
        w * (have ? Rate(m->cycles, m->retired)
                  : Rate(measured_cycles, measured_retired));
    for (std::size_t k = 0; k < num_counters; ++k) {
      const std::uint64_t delta =
          have && k < m->counters.size() ? m->counters[k] : 0;
      projected[k] += w * (have ? Rate(delta, m->retired)
                                : Rate(measured_counters[k], measured_retired));
    }
  }
  // Instructions pass 2 executed beyond pass 1's schedule (patched binaries
  // can retire slightly different counts) extrapolate at the mean rate.
  if (outcome_.total_retired > scheduled_retired) {
    const double extra =
        static_cast<double>(outcome_.total_retired - scheduled_retired);
    projected_cycles += extra * Rate(measured_cycles, measured_retired);
    for (std::size_t k = 0; k < num_counters; ++k) {
      projected[k] += extra * Rate(measured_counters[k], measured_retired);
    }
  }

  outcome_.projected_cycles = static_cast<std::uint64_t>(projected_cycles);
  outcome_.projected.resize(num_counters);
  for (std::size_t k = 0; k < num_counters; ++k) {
    outcome_.projected[k] = static_cast<std::uint64_t>(projected[k]);
  }
  return outcome_;
}

}  // namespace cobra::perfmon
