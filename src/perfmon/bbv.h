// Basic-block-vector phase profiling (the SimPoint idea, adapted to the
// running machine): while the program executes — typically in fast-forward
// mode — every taken branch reports its target to a BbvProfiler, which
// attributes the instructions retired since the previous taken branch to
// the block that just ended. Fixed-length intervals of machine-wide retired
// instructions each yield one basic-block vector (block address → retired
// weight); clustering the interval vectors groups the program's execution
// into phases, and one *representative* interval per phase is all the
// detailed simulation a sampled run needs (sample.h drives that pipeline).
//
// Determinism: per-CPU accumulation only during segments (cores may run on
// parallel host threads), merged and interval-closed exclusively at engine
// commit barriers via a round task — the same points at which simulated
// state is engine-independent. Clustering is deterministic k-means:
// farthest-first seeding from interval 0, lowest-index tie-breaks, no RNG
// and no wall-clock anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cpu/core.h"
#include "isa/types.h"
#include "machine/machine.h"
#include "support/simtypes.h"

namespace cobra::perfmon {

// One profiling interval: block address → instructions attributed to it.
struct BasicBlockVector {
  std::map<isa::Addr, std::uint64_t> weights;
  std::uint64_t retired = 0;  // machine-wide retired count in this interval
};

class BbvProfiler final : public cpu::BlockProfiler {
 public:
  // Attaches to every core of `machine` and registers the interval-closing
  // round task. `interval_insts` is the interval length in machine-wide
  // retired instructions (an interval closes at the first commit barrier at
  // or past the quota, so actual interval sizes quantize to barriers).
  BbvProfiler(machine::Machine* machine, std::uint64_t interval_insts);
  ~BbvProfiler() override;

  BbvProfiler(const BbvProfiler&) = delete;
  BbvProfiler& operator=(const BbvProfiler&) = delete;

  // cpu::BlockProfiler: called by a core on every taken branch, possibly
  // from a parallel segment — touches this CPU's accumulator only.
  void OnTakenBranch(CpuId cpu, isa::Addr target,
                     std::uint64_t retired) override;

  // Closes the in-progress interval if it has any weight (end of run).
  void Finalize();

  const std::vector<BasicBlockVector>& intervals() const { return intervals_; }
  std::uint64_t interval_insts() const { return interval_insts_; }

 private:
  void OnBarrier();
  void CloseInterval(std::uint64_t total_retired);

  machine::Machine* machine_;
  std::uint64_t interval_insts_;

  // Padded: cores append concurrently during parallel segment phases.
  struct alignas(64) PerCpu {
    isa::Addr current_block = 0;   // target of the last taken branch
    std::uint64_t last_retired = 0;
    std::map<isa::Addr, std::uint64_t> weights;
  };
  std::vector<PerCpu> per_cpu_;

  std::uint64_t interval_start_retired_ = 0;
  std::vector<BasicBlockVector> intervals_;
  int round_task_id_ = -1;
};

// One phase found by clustering: which intervals belong to it, which member
// stands for all of them, and how many intervals it speaks for.
struct PhaseCluster {
  int representative = 0;        // interval index (medoid of the cluster)
  std::uint64_t weight = 0;      // member count
  std::vector<int> members;      // interval indices, ascending
};

struct PhasePlan {
  std::vector<int> assignment;       // interval index → cluster index
  std::vector<PhaseCluster> clusters;
};

// Deterministic k-means over L1-normalized interval vectors (dimensions =
// union of block addresses, sorted): farthest-first seeding starting from
// interval 0, Lloyd iterations with lowest-index tie-breaks, medoid
// representatives. `max_phases` caps k at the interval count.
PhasePlan ClusterPhases(const std::vector<BasicBlockVector>& intervals,
                        int max_phases);

}  // namespace cobra::perfmon
