// Sampled simulation: the SimPoint-style two-pass pipeline built on the
// snapshot layer, BBV phase profiling and the cores' fast-forward mode.
//
//   Pass 1 (PhaseProfiler): run the workload fast-forward (functional-only,
//   no cache/fabric timing) with a BbvProfiler attached; cluster the
//   per-interval basic-block vectors into phases (perfmon/bbv.h).
//
//   Pass 2 (SampledRun): run the same workload again on a fresh machine.
//   A round task tracks the interval schedule recorded by pass 1. The
//   machine drops out of fast-forward `warmup_insts` before each
//   representative so caches and predictors re-converge (fast-forward
//   skips the memory hierarchy, so a cold representative would overstate
//   miss rates); at the representative's boundary it warms up through a
//   full checkpoint round-trip (Machine::SaveCheckpoint →
//   RestoreCheckpoint — exercising the snapshot layer mid-pipeline) and
//   begins measuring; everything else fast-forwards. Finish()
//   extrapolates: each counter's per-instruction rate measured over a
//   phase's representative projects onto every interval of that phase,
//   weighted by the interval's retired instructions.
//
// Both passes are deterministic: interval boundaries close at engine commit
// barriers (functions of simulated state), the checkpoint round-trip is an
// identity on simulated state, and clustering contains no randomness. The
// COBRA_SAMPLE environment variable
// ("<interval_insts>[:<max_phases>[:<warmup_insts>]]") configures the
// pipeline for cobra_bench --sample.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "machine/machine.h"
#include "obs/registry.h"
#include "perfmon/bbv.h"

namespace cobra::perfmon {

struct SampleConfig {
  // Detailed warm-up distance sentinel: half an interval (see below).
  static constexpr std::uint64_t kAutoWarmup = ~0ULL;

  std::uint64_t interval_insts = 0;  // 0 = sampling disabled
  int max_phases = 8;
  // Instructions of detailed-but-discarded simulation before each measured
  // representative: pass 2 leaves fast-forward early so caches and
  // predictors re-converge before measurement begins (fast-forward skips
  // the memory hierarchy entirely, so a representative entered cold would
  // overstate miss rates). 0 disables warm-up.
  std::uint64_t warmup_insts = kAutoWarmup;

  bool enabled() const { return interval_insts > 0; }
  std::uint64_t EffectiveWarmup() const {
    return warmup_insts == kAutoWarmup ? interval_insts / 2 : warmup_insts;
  }
};

// Parses "<interval>[:<phases>[:<warmup>]]" (e.g. "200000", "200000:6" or
// "200000:6:100000"); returns false (leaving *out alone) on malformed
// text, a zero interval, or a non-positive phase cap.
bool ParseSampleSpec(const char* text, SampleConfig* out);

// COBRA_SAMPLE environment knob: the parsed spec when set and valid, a
// disabled config otherwise.
SampleConfig SampleConfigFromEnv();

// Pass-1 artifact: the interval vectors, the cumulative machine-wide
// retired count at each interval's end (pass 2's switching schedule), and
// the phase clustering.
struct PhaseProfile {
  std::uint64_t interval_insts = 0;
  std::uint64_t warmup_insts = 0;  // resolved (never kAutoWarmup)
  std::vector<BasicBlockVector> intervals;
  std::vector<std::uint64_t> boundaries;
  PhasePlan plan;

  // True when interval `index` is the representative of its phase (pass 2
  // simulates exactly these in detail). Out-of-schedule intervals (beyond
  // the profiled run) are never representative.
  bool IsRepresentative(int index) const;
};

// Pass 1: switches the machine to fast-forward and attaches a BbvProfiler
// for the caller's workload run. Finish() closes the last interval,
// clusters, and restores the machine's previous fast-forward setting.
class PhaseProfiler {
 public:
  PhaseProfiler(machine::Machine* machine, const SampleConfig& config);
  ~PhaseProfiler();

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  PhaseProfile Finish();

 private:
  machine::Machine* machine_;
  SampleConfig config_;
  BbvProfiler bbv_;
  bool prior_fast_forward_;
  bool finished_ = false;
};

// What a sampled run measured and projected. `projected` holds one
// extrapolated total per counter of the caller's probe, in probe order.
struct SampleOutcome {
  std::uint64_t intervals = 0;           // schedule length (pass 1)
  std::uint64_t phases = 0;
  std::uint64_t detailed_intervals = 0;  // representatives run in detail
  std::uint64_t detailed_retired = 0;    // insts in detail (incl. warm-up)
  std::uint64_t total_retired = 0;       // insts executed by pass 2
  std::uint64_t checkpoints = 0;         // save→restore warm-up round-trips
  std::uint64_t checkpoint_bytes = 0;    // size of the last snapshot blob
  std::uint64_t projected_cycles = 0;    // extrapolated detailed cycles
  std::vector<std::uint64_t> projected;
  // detailed_retired / total_retired: the wall-clock proxy (detailed
  // simulation dominates host cost; a fraction <= 1/3 is the >= 3x claim).
  double detailed_fraction = 0.0;
};

// Pass 2: attaches the phase-switching round task and the sample.* metric
// family (sample.intervals, sample.phases, sample.detailed_intervals,
// sample.detailed_retired, sample.checkpoints, sample.checkpoint_bytes,
// sample.projected_cycles) to the machine's registry for the lifetime of
// this object. The optional probe reads any cumulative counters to
// extrapolate alongside cycles (e.g. L3 misses, bus transactions).
class SampledRun {
 public:
  using CounterProbe = std::function<std::vector<std::uint64_t>()>;

  SampledRun(machine::Machine* machine, PhaseProfile profile,
             CounterProbe probe = {});
  ~SampledRun();

  SampledRun(const SampledRun&) = delete;
  SampledRun& operator=(const SampledRun&) = delete;

  // Closes any in-progress measurement and computes the projections.
  // Leaves the machine in detailed mode. Idempotent.
  SampleOutcome Finish();

 private:
  struct Measurement {
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    std::vector<std::uint64_t> counters;
    bool valid = false;
  };

  void OnBarrier();
  void EnsureDetailed(std::uint64_t retired);
  void EnsureFastForward(std::uint64_t retired);
  void BeginMeasurement(int interval, std::uint64_t retired);
  void EndMeasurement();
  std::uint64_t TotalRetired() const;
  std::vector<std::uint64_t> ReadProbe() const;

  machine::Machine* machine_;
  PhaseProfile profile_;
  CounterProbe probe_;
  obs::Registry::Registration metrics_;
  int round_task_id_ = -1;

  // warm_at_[i]: machine-wide retired count at which the machine must run
  // detailed while interval i executes (the start of the first
  // representative after i, minus the warm-up distance).
  std::vector<std::uint64_t> warm_at_;

  int interval_ = 0;            // schedule position
  bool detailed_ = false;       // machine in detailed mode (warm or measured)
  int measuring_ = -1;          // representative being measured, or -1
  std::uint64_t detailed_enter_retired_ = 0;
  std::uint64_t start_retired_ = 0;
  std::uint64_t start_cycles_ = 0;
  std::vector<std::uint64_t> start_counters_;

  std::vector<Measurement> measurements_;  // per cluster
  SampleOutcome outcome_;
  bool finished_ = false;
};

}  // namespace cobra::perfmon
