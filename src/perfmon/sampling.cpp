#include "perfmon/sampling.h"

#include "support/check.h"

namespace cobra::perfmon {

SamplingDriver::SamplingDriver(machine::Machine* machine,
                               SamplingConfig config)
    : machine_(machine), config_(config) {
  COBRA_CHECK(machine != nullptr);
  COBRA_CHECK(config.period_insts > 0);
  COBRA_CHECK(config.batch_size > 0);
  per_cpu_.resize(static_cast<std::size_t>(machine->num_cpus()));
  round_task_id_ = machine->AddRoundTask([this] { DrainDeferred(); });
  metrics_ = obs::Registry::Registration(&machine->registry());
  metrics_.Add("perfmon.samples", [this] { return TotalSamples(); });
  metrics_.Add("perfmon.batches", [this] { return total_batches_; });
}

SamplingDriver::~SamplingDriver() {
  StopAll();
  machine_->RemoveRoundTask(round_task_id_);
}

void SamplingDriver::StartMonitoring(CpuId cpu, int tid,
                                     DeliveryHandler handler) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  COBRA_CHECK_MSG(!state.active, "CPU is already being monitored");
  state.active = true;
  state.tid = tid;
  state.handler = std::move(handler);
  state.kernel_buffer.reserve(config_.batch_size);

  cpu::Core& core = machine_->core(cpu);
  for (int i = 0; i < cpu::kNumHpmCounters; ++i) {
    core.hpm().Select(i, config_.events[static_cast<std::size_t>(i)]);
  }
  core.dear().SetLatencyThreshold(config_.dear_latency_threshold);
  core.SetRetireHook(config_.period_insts,
                     [this](cpu::Core& c) { CollectSample(c); });
}

void SamplingDriver::CollectSample(cpu::Core& core) {
  // Fast-forwarded stretches are invisible to the HPM: no cache stack, no
  // DEAR observations, no meaningful CPI. Sampled simulation
  // (perfmon/sample.h) relies on this pause — COBRA's window/epoch
  // machinery must only ever see detailed-mode windows. Deterministic:
  // fast-forward only toggles at engine commit barriers.
  if (core.fast_forward()) return;
  auto& state = per_cpu_.at(static_cast<std::size_t>(core.id()));
  COBRA_CHECK(state.active);

  Sample sample;
  sample.index = state.next_index++;
  sample.pc = core.pc();
  sample.pid = 1;  // single simulated process
  sample.tid = state.tid;
  sample.cpu = core.id();
  sample.timestamp = core.now();
  for (int i = 0; i < cpu::kNumHpmCounters; ++i) {
    sample.counters[static_cast<std::size_t>(i)] = core.hpm().Read(i);
  }
  sample.btb = core.btb().Snapshot();
  sample.dear = core.dear().last();
  total_samples_.fetch_add(1, std::memory_order_relaxed);

  state.kernel_buffer.push_back(sample);
  if (state.kernel_buffer.size() >= config_.batch_size) {
    if (machine_->engine_active()) {
      // Segment phase (possibly on a worker thread): queue the batch for
      // the commit barrier instead of calling into shared COBRA state.
      state.deferred.push_back(std::move(state.kernel_buffer));
      state.kernel_buffer.clear();
      state.kernel_buffer.reserve(config_.batch_size);
    } else {
      Flush(core.id());
    }
  }
}

void SamplingDriver::DeliverDeferred(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  if (state.deferred.empty()) return;
  // Swap out first: a handler may (transitively) run more simulation.
  std::vector<std::vector<Sample>> batches;
  batches.swap(state.deferred);
  for (const std::vector<Sample>& batch : batches) {
    if (state.handler) {
      ++total_batches_;
      state.handler(cpu, std::span<const Sample>(batch));
    }
  }
}

void SamplingDriver::DrainDeferred() {
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    DeliverDeferred(cpu);
  }
}

void SamplingDriver::Flush(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  DeliverDeferred(cpu);
  if (state.kernel_buffer.empty()) return;
  if (state.handler) {
    ++total_batches_;
    state.handler(cpu, std::span<const Sample>(state.kernel_buffer));
  }
  state.kernel_buffer.clear();
}

void SamplingDriver::StopMonitoring(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  if (!state.active) return;
  Flush(cpu);
  state.active = false;
  state.handler = nullptr;
  machine_->core(cpu).SetRetireHook(0, nullptr);
}

void SamplingDriver::StopAll() {
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    StopMonitoring(cpu);
  }
}

void SaveSample(support::StateWriter& w, const Sample& sample) {
  w.U64(sample.index);
  w.U64(sample.pc);
  w.I64(sample.pid);
  w.I64(sample.tid);
  w.I64(sample.cpu);
  w.U64(sample.timestamp);
  for (const std::uint64_t counter : sample.counters) w.U64(counter);
  for (const cpu::Btb::Entry& e : sample.btb) {
    w.U64(e.source);
    w.U64(e.target);
  }
  w.U64(sample.dear.inst_addr);
  w.U64(sample.dear.data_addr);
  w.U64(sample.dear.latency);
  w.Bool(sample.dear.valid);
}

bool RestoreSample(support::StateReader& r, Sample* sample) {
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::int64_t cpu = 0;
  r.U64(&sample->index);
  r.U64(&sample->pc);
  r.I64(&pid);
  r.I64(&tid);
  r.I64(&cpu);
  r.U64(&sample->timestamp);
  for (std::uint64_t& counter : sample->counters) r.U64(&counter);
  for (cpu::Btb::Entry& e : sample->btb) {
    r.U64(&e.source);
    r.U64(&e.target);
  }
  r.U64(&sample->dear.inst_addr);
  r.U64(&sample->dear.data_addr);
  r.U64(&sample->dear.latency);
  r.Bool(&sample->dear.valid);
  if (!r.Ok()) return false;
  sample->pid = static_cast<int>(pid);
  sample->tid = static_cast<int>(tid);
  sample->cpu = static_cast<int>(cpu);
  return true;
}

void SamplingDriver::SaveState(support::StateWriter& w) const {
  w.U32(static_cast<std::uint32_t>(per_cpu_.size()));
  for (const PerCpu& state : per_cpu_) {
    w.Bool(state.active);
    w.I64(state.tid);
    w.U64(state.next_index);
    w.U64(static_cast<std::uint64_t>(state.kernel_buffer.size()));
    for (const Sample& sample : state.kernel_buffer) SaveSample(w, sample);
    w.U64(static_cast<std::uint64_t>(state.deferred.size()));
    for (const std::vector<Sample>& batch : state.deferred) {
      w.U64(static_cast<std::uint64_t>(batch.size()));
      for (const Sample& sample : batch) SaveSample(w, sample);
    }
  }
  w.U64(total_samples_.load(std::memory_order_relaxed));
  w.U64(total_batches_);
}

bool SamplingDriver::RestoreState(support::StateReader& r) {
  std::uint32_t cpus = 0;
  r.U32(&cpus);
  if (!r.Ok() || cpus != static_cast<std::uint32_t>(per_cpu_.size())) {
    return false;
  }
  for (PerCpu& state : per_cpu_) {
    bool active = false;
    std::int64_t tid = 0;
    r.Bool(&active);
    r.I64(&tid);
    r.U64(&state.next_index);
    // A restored-active CPU must already have a handler from a live
    // StartMonitoring call (attach-before-restore contract).
    if (active && !state.handler) return false;
    state.active = active;
    state.tid = static_cast<int>(tid);
    std::uint64_t buffered = 0;
    r.U64(&buffered);
    if (!r.Ok() || buffered > config_.batch_size) return false;
    state.kernel_buffer.clear();
    state.kernel_buffer.reserve(config_.batch_size);
    for (std::uint64_t i = 0; i < buffered; ++i) {
      Sample sample;
      if (!RestoreSample(r, &sample)) return false;
      state.kernel_buffer.push_back(sample);
    }
    std::uint64_t deferred = 0;
    r.U64(&deferred);
    if (!r.Ok()) return false;
    state.deferred.clear();
    for (std::uint64_t i = 0; i < deferred; ++i) {
      std::uint64_t batch_size = 0;
      r.U64(&batch_size);
      if (!r.Ok() || batch_size > config_.batch_size) return false;
      std::vector<Sample> batch;
      batch.reserve(batch_size);
      for (std::uint64_t j = 0; j < batch_size; ++j) {
        Sample sample;
        if (!RestoreSample(r, &sample)) return false;
        batch.push_back(sample);
      }
      state.deferred.push_back(std::move(batch));
    }
  }
  std::uint64_t total_samples = 0;
  r.U64(&total_samples);
  r.U64(&total_batches_);
  if (!r.Ok()) return false;
  total_samples_.store(total_samples, std::memory_order_relaxed);
  return true;
}

}  // namespace cobra::perfmon
