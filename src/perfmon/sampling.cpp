#include "perfmon/sampling.h"

#include "support/check.h"

namespace cobra::perfmon {

SamplingDriver::SamplingDriver(machine::Machine* machine,
                               SamplingConfig config)
    : machine_(machine), config_(config) {
  COBRA_CHECK(machine != nullptr);
  COBRA_CHECK(config.period_insts > 0);
  COBRA_CHECK(config.batch_size > 0);
  per_cpu_.resize(static_cast<std::size_t>(machine->num_cpus()));
  round_task_id_ = machine->AddRoundTask([this] { DrainDeferred(); });
  metrics_ = obs::Registry::Registration(&machine->registry());
  metrics_.Add("perfmon.samples", [this] { return TotalSamples(); });
  metrics_.Add("perfmon.batches", [this] { return total_batches_; });
}

SamplingDriver::~SamplingDriver() {
  StopAll();
  machine_->RemoveRoundTask(round_task_id_);
}

void SamplingDriver::StartMonitoring(CpuId cpu, int tid,
                                     DeliveryHandler handler) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  COBRA_CHECK_MSG(!state.active, "CPU is already being monitored");
  state.active = true;
  state.tid = tid;
  state.handler = std::move(handler);
  state.kernel_buffer.reserve(config_.batch_size);

  cpu::Core& core = machine_->core(cpu);
  for (int i = 0; i < cpu::kNumHpmCounters; ++i) {
    core.hpm().Select(i, config_.events[static_cast<std::size_t>(i)]);
  }
  core.dear().SetLatencyThreshold(config_.dear_latency_threshold);
  core.SetRetireHook(config_.period_insts,
                     [this](cpu::Core& c) { CollectSample(c); });
}

void SamplingDriver::CollectSample(cpu::Core& core) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(core.id()));
  COBRA_CHECK(state.active);

  Sample sample;
  sample.index = state.next_index++;
  sample.pc = core.pc();
  sample.pid = 1;  // single simulated process
  sample.tid = state.tid;
  sample.cpu = core.id();
  sample.timestamp = core.now();
  for (int i = 0; i < cpu::kNumHpmCounters; ++i) {
    sample.counters[static_cast<std::size_t>(i)] = core.hpm().Read(i);
  }
  sample.btb = core.btb().Snapshot();
  sample.dear = core.dear().last();
  total_samples_.fetch_add(1, std::memory_order_relaxed);

  state.kernel_buffer.push_back(sample);
  if (state.kernel_buffer.size() >= config_.batch_size) {
    if (machine_->engine_active()) {
      // Segment phase (possibly on a worker thread): queue the batch for
      // the commit barrier instead of calling into shared COBRA state.
      state.deferred.push_back(std::move(state.kernel_buffer));
      state.kernel_buffer.clear();
      state.kernel_buffer.reserve(config_.batch_size);
    } else {
      Flush(core.id());
    }
  }
}

void SamplingDriver::DeliverDeferred(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  if (state.deferred.empty()) return;
  // Swap out first: a handler may (transitively) run more simulation.
  std::vector<std::vector<Sample>> batches;
  batches.swap(state.deferred);
  for (const std::vector<Sample>& batch : batches) {
    if (state.handler) {
      ++total_batches_;
      state.handler(cpu, std::span<const Sample>(batch));
    }
  }
}

void SamplingDriver::DrainDeferred() {
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    DeliverDeferred(cpu);
  }
}

void SamplingDriver::Flush(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  DeliverDeferred(cpu);
  if (state.kernel_buffer.empty()) return;
  if (state.handler) {
    ++total_batches_;
    state.handler(cpu, std::span<const Sample>(state.kernel_buffer));
  }
  state.kernel_buffer.clear();
}

void SamplingDriver::StopMonitoring(CpuId cpu) {
  auto& state = per_cpu_.at(static_cast<std::size_t>(cpu));
  if (!state.active) return;
  Flush(cpu);
  state.active = false;
  state.handler = nullptr;
  machine_->core(cpu).SetRetireHook(0, nullptr);
}

void SamplingDriver::StopAll() {
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    StopMonitoring(cpu);
  }
}

}  // namespace cobra::perfmon
