#include "perfmon/bbv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"

namespace cobra::perfmon {

BbvProfiler::BbvProfiler(machine::Machine* machine,
                         std::uint64_t interval_insts)
    : machine_(machine), interval_insts_(interval_insts) {
  COBRA_CHECK(machine != nullptr);
  COBRA_CHECK(interval_insts > 0);
  per_cpu_.resize(static_cast<std::size_t>(machine->num_cpus()));
  for (CpuId cpu = 0; cpu < machine->num_cpus(); ++cpu) {
    cpu::Core& core = machine->core(cpu);
    per_cpu_[static_cast<std::size_t>(cpu)].last_retired =
        core.instructions_retired();
    interval_start_retired_ += core.instructions_retired();
    core.SetBlockProfiler(this);
  }
  round_task_id_ = machine->AddRoundTask([this] { OnBarrier(); });
}

BbvProfiler::~BbvProfiler() {
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    machine_->core(cpu).SetBlockProfiler(nullptr);
  }
  machine_->RemoveRoundTask(round_task_id_);
}

void BbvProfiler::OnTakenBranch(CpuId cpu, isa::Addr target,
                                std::uint64_t retired) {
  PerCpu& state = per_cpu_[static_cast<std::size_t>(cpu)];
  // The instructions retired since the previous taken branch belong to the
  // block that branch jumped to (straight-line code plus the branch).
  const std::uint64_t delta = retired - state.last_retired;
  if (delta != 0 && state.current_block != 0) {
    state.weights[state.current_block] += delta;
  }
  state.last_retired = retired;
  state.current_block = target;
}

void BbvProfiler::OnBarrier() {
  // All cores are quiescent here, and every engine reaches the same
  // barriers with the same retired counts: interval boundaries are a
  // function of simulated state alone.
  std::uint64_t total_retired = 0;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    total_retired += machine_->core(cpu).instructions_retired();
  }
  if (total_retired - interval_start_retired_ >= interval_insts_) {
    CloseInterval(total_retired);
  }
}

void BbvProfiler::CloseInterval(std::uint64_t total_retired) {
  BasicBlockVector interval;
  interval.retired = total_retired - interval_start_retired_;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    PerCpu& state = per_cpu_[static_cast<std::size_t>(cpu)];
    // Attribute the tail (instructions since this CPU's last taken branch)
    // to the block it is still executing, so interval weights sum to the
    // interval's retired count.
    const cpu::Core& core = machine_->core(cpu);
    const std::uint64_t retired = core.instructions_retired();
    if (retired != state.last_retired && state.current_block != 0) {
      state.weights[state.current_block] += retired - state.last_retired;
      state.last_retired = retired;
    }
    for (const auto& [block, weight] : state.weights) {
      interval.weights[block] += weight;
    }
    state.weights.clear();
  }
  intervals_.push_back(std::move(interval));
  interval_start_retired_ = total_retired;
}

void BbvProfiler::Finalize() {
  std::uint64_t total_retired = 0;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    total_retired += machine_->core(cpu).instructions_retired();
  }
  if (total_retired > interval_start_retired_) {
    CloseInterval(total_retired);
  }
}

namespace {

// Dense, L1-normalized view of the intervals over a shared dimension order.
std::vector<std::vector<double>> NormalizeIntervals(
    const std::vector<BasicBlockVector>& intervals,
    std::vector<isa::Addr>* dims) {
  for (const BasicBlockVector& interval : intervals) {
    for (const auto& [block, weight] : interval.weights) {
      dims->push_back(block);
    }
  }
  std::sort(dims->begin(), dims->end());
  dims->erase(std::unique(dims->begin(), dims->end()), dims->end());

  std::vector<std::vector<double>> out;
  out.reserve(intervals.size());
  for (const BasicBlockVector& interval : intervals) {
    std::vector<double> v(dims->size(), 0.0);
    double total = 0.0;
    for (const auto& [block, weight] : interval.weights) {
      total += static_cast<double>(weight);
    }
    if (total > 0.0) {
      for (const auto& [block, weight] : interval.weights) {
        const auto dim = static_cast<std::size_t>(
            std::lower_bound(dims->begin(), dims->end(), block) -
            dims->begin());
        v[dim] = static_cast<double>(weight) / total;
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace

PhasePlan ClusterPhases(const std::vector<BasicBlockVector>& intervals,
                        int max_phases) {
  PhasePlan plan;
  if (intervals.empty() || max_phases <= 0) return plan;
  const std::size_t n = intervals.size();
  const std::size_t k = std::min(static_cast<std::size_t>(max_phases), n);

  std::vector<isa::Addr> dims;
  const std::vector<std::vector<double>> points =
      NormalizeIntervals(intervals, &dims);

  // Farthest-first seeding from interval 0: the next seed is the interval
  // farthest from its nearest existing seed (lowest index on ties).
  std::vector<std::size_t> seeds{0};
  while (seeds.size() < k) {
    std::size_t best = 0;
    double best_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const std::size_t seed : seeds) {
        nearest = std::min(nearest, L1Distance(points[i], points[seed]));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best = i;
      }
    }
    if (best_dist <= 0.0) break;  // fewer distinct points than k
    seeds.push_back(best);
  }

  std::vector<std::vector<double>> centroids;
  centroids.reserve(seeds.size());
  for (const std::size_t seed : seeds) centroids.push_back(points[seed]);

  // Lloyd iterations; every step breaks ties toward the lowest index.
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < 20; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best_cluster = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = L1Distance(points[i], centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best_cluster = static_cast<int>(c);
        }
      }
      if (assignment[i] != best_cluster) {
        assignment[i] = best_cluster;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      std::vector<double> mean(dims.size(), 0.0);
      std::size_t members = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assignment[i] != static_cast<int>(c)) continue;
        ++members;
        for (std::size_t d = 0; d < mean.size(); ++d) mean[d] += points[i][d];
      }
      if (members == 0) continue;  // keep the old centroid (empty cluster)
      for (double& v : mean) v /= static_cast<double>(members);
      centroids[c] = std::move(mean);
    }
  }

  // Medoid representative per non-empty cluster; clusters keep their
  // seeding order. Empty clusters are dropped, renumbering the rest.
  //
  // Steady-state preference: among members within 10% of the medoid's
  // distance to the centroid — equally representative at clustering
  // resolution — take the LATEST. A phase's early occurrences still carry
  // converging microarchitectural and runtime-optimizer state (caches
  // filling, an adaptive optimizer that has not deployed yet); the latest
  // equally-central member is closest to the phase's steady-state
  // behaviour, which is what the sampled projection multiplies out.
  std::vector<int> remap(centroids.size(), -1);
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    PhaseCluster cluster;
    std::vector<double> dists;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (assignment[i] != static_cast<int>(c)) continue;
      cluster.members.push_back(static_cast<int>(i));
      const double d = L1Distance(points[i], centroids[c]);
      dists.push_back(d);
      best_dist = std::min(best_dist, d);
    }
    for (std::size_t m = 0; m < cluster.members.size(); ++m) {
      if (dists[m] <= best_dist * 1.10 + 1e-12) {
        cluster.representative = cluster.members[m];  // latest in-band wins
      }
    }
    if (cluster.members.empty()) continue;
    cluster.weight = cluster.members.size();
    remap[c] = static_cast<int>(plan.clusters.size());
    plan.clusters.push_back(std::move(cluster));
  }
  plan.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    plan.assignment[i] = remap[static_cast<std::size_t>(assignment[i])];
  }
  return plan;
}

}  // namespace cobra::perfmon
