// Snooping front-side bus — the fabric of the 4-way Itanium 2 SMP server.
// The protocol spoken on it (MESI/MOESI/Dragon/MESIF) is the
// CoherencePolicy selected by MemConfig::protocol; MESI (Illinois) is the
// default and reproduces the paper's machine exactly.
//
// Timing: the bus is a single shared resource. Each transaction occupies it
// for `bus_data_occupancy` (data) or `bus_addr_occupancy` (address-only)
// cycles; a transaction issued while the bus is busy queues, and the
// queuing delay is charged to the requester.  This is the mechanism by
// which one thread's useless prefetch traffic slows every other processor
// down — the paper's second motivation for reducing prefetch
// aggressiveness at runtime.
#pragma once

#include <vector>

#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"

namespace cobra::mem {

class SnoopBus : public CoherenceFabric {
 public:
  explicit SnoopBus(const MemConfig& cfg);

  void AttachStacks(std::vector<CacheStack*> stacks) override;

  FabricResult Request(CpuId cpu, BusOp op, Addr line_addr,
                       Cycle now) override;

  const BusEventCounts& TotalCounts() const override { return total_; }
  const BusEventCounts& CpuCounts(CpuId cpu) const override {
    return per_cpu_.at(static_cast<std::size_t>(cpu));
  }
  void ResetCounts() override;

  // Cycle at which the bus becomes free (testing / contention probes).
  Cycle free_at() const { return free_at_; }
  // Total cycles requests spent queued behind a busy bus.
  Cycle queue_cycles() const override { return queue_cycles_; }

  void SaveState(support::StateWriter& w) const override {
    w.U32(static_cast<std::uint32_t>(per_cpu_.size()));
    for (const BusEventCounts& c : per_cpu_) c.SaveState(w);
    total_.SaveState(w);
    w.U64(free_at_);
    w.U64(queue_cycles_);
  }
  bool RestoreState(support::StateReader& r) override {
    std::uint32_t cpus = 0;
    r.U32(&cpus);
    if (!r.Ok() || cpus != static_cast<std::uint32_t>(per_cpu_.size())) {
      return false;
    }
    for (BusEventCounts& c : per_cpu_) c.RestoreState(r);
    total_.RestoreState(r);
    r.U64(&free_at_);
    r.U64(&queue_cycles_);
    return r.Ok();
  }

 private:
  MemConfig cfg_;
  const CoherencePolicy* policy_;
  std::vector<CacheStack*> stacks_;
  std::vector<BusEventCounts> per_cpu_;
  BusEventCounts total_;
  Cycle free_at_ = 0;
  Cycle queue_cycles_ = 0;
};

}  // namespace cobra::mem
