#include "mem/cache_stack.h"

#include <algorithm>
#include <bit>

#include "support/check.h"

namespace cobra::mem {

CacheStack::CacheStack(CpuId cpu, const MemConfig& cfg)
    : cpu_(cpu),
      cfg_(cfg),
      policy_(&CoherencePolicy::For(cfg.protocol)),
      l1_(cfg.l1.size_bytes, cfg.l1.line_bytes, cfg.l1.associativity),
      l2_(cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.l2.associativity),
      l3_(cfg.l3.size_bytes, cfg.l3.line_bytes, cfg.l3.associativity),
      memo_shift_(std::countr_zero(cfg.l2.line_bytes)) {
  COBRA_CHECK_MSG(cfg.l2.line_bytes == cfg.l3.line_bytes,
                  "coherence granularity is the (shared) L2/L3 line size");
  COBRA_CHECK_MSG(cfg.l1.line_bytes <= cfg.l2.line_bytes,
                  "L1 lines must not exceed the coherence line");
}

FabricResult CacheStack::FabricRequest(BusOp op, Addr line_addr, Cycle now) {
  COBRA_CHECK_MSG(!fabric_guard_,
                  "coherence transaction during a core-private segment "
                  "(engine probe out of sync with the access path)");
  FabricResult r = fabric_->Request(cpu_, op, line_addr, now);
  if (pending_stores_ > 0) {
    // Drain-before-commit: buffered store-hit cost is paid here, before the
    // transaction's result is usable, so the fabric-visible event order is
    // exactly what it would be without the buffer.
    r.latency += static_cast<Cycle>(pending_stores_) * cfg_.store_hit_latency;
    pending_stores_ = 0;
  }
  if (trace_ != nullptr) {
    trace_->Complete(trace_pid_, static_cast<int>(cpu_), "coherence",
                     BusOpName(op), now, r.latency);
  }
  return r;
}

void CacheStack::FabricEvictNotify(Addr line_addr) {
  COBRA_CHECK_MSG(!fabric_guard_,
                  "eviction notification during a core-private segment "
                  "(engine probe out of sync with the access path)");
  fabric_->EvictNotify(cpu_, line_addr);
}

CacheStack::Source CacheStack::ClassifySource(const FabricResult& r) {
  if (r.snoop == SnoopOutcome::kHitM) return Source::kCoherent;
  if (r.remote) return Source::kRemote;
  return Source::kMemory;
}

void CacheStack::SetStateAll(Addr addr, Mesi state) {
  if (auto* line = l3_.Probe(addr)) line->state = state;
  if (auto* line = l2_.Probe(addr)) line->state = state;
  // L1 lines are state-free copies; presence alone is tracked there.
}

void CacheStack::InvalidateAll(Addr addr) {
  const Addr line = CohLine(addr);
  for (Addr sub = line; sub < line + cfg_.l2.line_bytes;
       sub += cfg_.l1.line_bytes) {
    l1_.Invalidate(sub);
  }
  l2_.Invalidate(line);
  l3_.Invalidate(line);
}

void CacheStack::EvictVictim(const CacheArray::Line& victim, Cycle now) {
  // Inclusion: a line leaving L3 must leave L2 and L1 as well.  If any
  // inner copy is dirtier than the L3 copy that cannot happen here because
  // states are kept in lockstep by SetStateAll.
  for (Addr sub = victim.line_addr;
       sub < victim.line_addr + cfg_.l2.line_bytes;
       sub += cfg_.l1.line_bytes) {
    l1_.Invalidate(sub);
  }
  l2_.Invalidate(victim.line_addr);
  if (CohDirty(victim.state)) {
    // M, O and Sm victims all carry data newer than memory.
    ++stats_.fabric_writebacks;
    FabricRequest(BusOp::kWriteback, victim.line_addr, now);
  } else {
    FabricEvictNotify(victim.line_addr);
  }
}

CacheArray::Line* CacheStack::Fill(Addr addr, Mesi state, Cycle ready_at,
                                   bool prefetched, Cycle now) {
  const Addr line = CohLine(addr);
  CacheArray::Line victim;
  bool victim_valid = false;

  // L3 first (inclusive outer level).
  auto* l3_line = l3_.Insert(line, state, ready_at, &victim, &victim_valid);
  if (victim_valid) EvictVictim(victim, now);
  l3_line->prefetched = prefetched;
  l3_line->referenced = !prefetched;

  // Then L2. An L2 victim still resides in L3, so a dirty victim is only an
  // internal (L2->L3) writeback, which Itanium 2 counts as an L2 writeback.
  auto* l2_line = l2_.Insert(line, state, ready_at, &victim, &victim_valid);
  if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
  l2_line->prefetched = prefetched;
  l2_line->referenced = !prefetched;
  return l2_line;
}

void CacheStack::FillL1(Addr addr, Cycle ready_at) {
  CacheArray::Line victim;
  bool victim_valid = false;
  // L1 is write-through: victims are always clean, nothing to do with them.
  l1_.Insert(l1_.LineAddrOf(addr), Mesi::kS, ready_at, &victim, &victim_valid);
}

CacheStack::AccessResult CacheStack::Load(Addr addr, int size, bool fp,
                                          bool bias, Cycle now) {
  (void)size;
  ++stats_.loads;
  COBRA_CHECK(fabric_ != nullptr);

  // L1 (integer loads only; FP bypasses).
  if (!fp) {
    if (auto* line = l1_.Touch(addr)) {
      const Cycle wait = line->ready_at > now ? line->ready_at - now : 0;
      return {cfg_.l1_hit_latency + wait, Source::kL1};
    }
  }

  // L2.
  if (auto* line = l2_.Touch(addr)) {
    line->referenced = true;
    if (auto* outer = l3_.Probe(addr)) outer->referenced = true;
    const Cycle wait = line->ready_at > now ? line->ready_at - now : 0;
    if (!fp) FillL1(addr, now + cfg_.l2_hit_latency);
    if (bias && !CohWritable(line->state) && policy_->bias_upgrades()) {
      // ld.bias on a shared line: upgrade in the background. A dirty-shared
      // copy (MOESI O) keeps its data and becomes M; clean copies land in E.
      const Mesi old = line->state;
      const FabricResult r =
          FabricRequest(BusOp::kUpgrade, CohLine(addr), now);
      SetStateAll(addr, CohDirty(old)            ? Mesi::kM
                        : r.grant == Mesi::kI    ? old
                                                 : Mesi::kE);
    }
    return {cfg_.l2_hit_latency + wait, Source::kL2};
  }

  // L3.
  if (auto* line = l3_.Touch(addr)) {
    line->referenced = true;
    const Cycle wait = line->ready_at > now ? line->ready_at - now : 0;
    // Refill L2 from L3 (state follows the L3 copy).
    CacheArray::Line victim;
    bool victim_valid = false;
    auto* l2_line = l2_.Insert(CohLine(addr), line->state, 0, &victim,
                               &victim_valid);
    if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
    l2_line->referenced = true;
    if (!fp) FillL1(addr, now + cfg_.l3_hit_latency);
    return {cfg_.l3_hit_latency + wait, Source::kL3};
  }

  // Miss: go to the fabric. Under an update-based protocol there is no
  // read-for-ownership; biased loads miss like plain ones.
  const BusOp op =
      bias && policy_->bias_upgrades() ? BusOp::kReadExcl : BusOp::kRead;
  const FabricResult r = FabricRequest(op, CohLine(addr), now);
  Fill(addr, r.grant, now + r.latency, /*prefetched=*/false, now);
  if (!fp) FillL1(addr, now + r.latency);
  return {r.latency, ClassifySource(r)};
}

CacheStack::AccessResult CacheStack::StoreToShared(Addr addr, Cycle wait,
                                                   bool in_l2, Cycle now) {
  auto Charge = [&](Cycle bus_latency) {
    return cfg_.store_hit_latency +
           static_cast<Cycle>(static_cast<double>(bus_latency) *
                              cfg_.store_stall_fraction);
  };
  const Addr line = CohLine(addr);

  // Upgrading actions keep the line resident; if it only sits in L3, refill
  // L2 exactly as the writable L3-hit path does.
  auto RefillL2 = [&](Mesi state) {
    if (in_l2) return;
    CacheArray::Line victim;
    bool victim_valid = false;
    auto* l2_line = l2_.Insert(line, state, 0, &victim, &victim_valid);
    if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
    l2_line->referenced = true;
  };

  switch (policy_->store_shared_action()) {
    case StoreSharedAction::kReadInvalidate: {
      // Itanium 2 treats a store to a Shared line as an L2 write miss: the
      // line is re-fetched with a full read-invalidate transaction (this is
      // the "coherent L2 write misses lead to L3 misses" behaviour the
      // paper describes). Drop our copy and take the miss path.
      ++stats_.store_upgrades;
      ++coherent_write_misses_;
      InvalidateAll(addr);
      const FabricResult r = FabricRequest(BusOp::kReadExcl, line, now);
      Fill(addr, Mesi::kM, now + Charge(r.latency), /*prefetched=*/false,
           now);
      return {Charge(r.latency) + wait,
              r.remote ? Source::kRemote : Source::kCoherent};
    }
    case StoreSharedAction::kUpgrade: {
      // MOESI: invalidate the other copies in place — our data (S or O)
      // stays resident, so this is an upgrade round, not a write miss.
      ++stats_.store_upgrades;
      const FabricResult r = FabricRequest(BusOp::kUpgrade, line, now);
      SetStateAll(addr, Mesi::kM);
      RefillL2(Mesi::kM);
      return {Charge(r.latency) + wait,
              r.remote ? Source::kRemote : Source::kCoherent};
    }
    case StoreSharedAction::kUpdate: {
      // Dragon: broadcast the new data; remote copies stay valid and
      // clean-shared. We end up Sm (sharers remain) or M (last copy).
      ++stats_.store_updates;
      const FabricResult r = FabricRequest(BusOp::kUpdate, line, now);
      SetStateAll(addr, r.grant);
      RefillL2(r.grant);
      return {Charge(r.latency) + wait,
              r.remote ? Source::kRemote : Source::kCoherent};
    }
  }
  return {cfg_.store_hit_latency + wait, Source::kL2};  // unreachable
}

CacheStack::AccessResult CacheStack::Store(Addr addr, int size, Cycle now) {
  (void)size;
  ++stats_.stores;
  COBRA_CHECK(fabric_ != nullptr);

  auto Charge = [&](Cycle bus_latency) {
    return cfg_.store_hit_latency +
           static_cast<Cycle>(static_cast<double>(bus_latency) *
                              cfg_.store_stall_fraction);
  };

  // L2 (stores allocate at L2; L1 is write-through no-write-allocate).
  if (auto* line = l2_.Touch(addr)) {
    line->referenced = true;
    if (auto* outer = l3_.Probe(addr)) outer->referenced = true;
    const Cycle wait = line->ready_at > now ? line->ready_at - now : 0;
    if (CohWritable(line->state)) {
      if (line->state == Mesi::kE) SetStateAll(addr, Mesi::kM);
      const Cycle hit_cost = BufferStoreHit() ? 0 : cfg_.store_hit_latency;
      return {hit_cost + wait, Source::kL2};
    }
    return StoreToShared(addr, wait, /*in_l2=*/true, now);
  }

  // L3.
  if (auto* line = l3_.Touch(addr)) {
    line->referenced = true;
    const Cycle wait = line->ready_at > now ? line->ready_at - now : 0;
    if (!CohWritable(line->state)) {
      return StoreToShared(addr, wait, /*in_l2=*/false, now);
    }
    SetStateAll(addr, Mesi::kM);
    CacheArray::Line victim;
    bool victim_valid = false;
    auto* l2_line =
        l2_.Insert(CohLine(addr), Mesi::kM, 0, &victim, &victim_valid);
    if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
    l2_line->referenced = true;
    return {cfg_.l3_hit_latency + wait, Source::kL3};
  }

  // Miss. Invalidation protocols read for ownership; Dragon has no RFO —
  // read the line, then broadcast the update if other copies were found.
  if (policy_->store_shared_action() == StoreSharedAction::kUpdate) {
    const FabricResult r = FabricRequest(BusOp::kRead, CohLine(addr), now);
    Fill(addr, r.grant, now + Charge(r.latency), /*prefetched=*/false, now);
    if (!CohWritable(r.grant)) {
      ++stats_.store_updates;
      const FabricResult u =
          FabricRequest(BusOp::kUpdate, CohLine(addr), now);
      SetStateAll(addr, u.grant);
      return {Charge(r.latency + u.latency), ClassifySource(r)};
    }
    SetStateAll(addr, Mesi::kM);
    return {Charge(r.latency), ClassifySource(r)};
  }
  const FabricResult r =
      FabricRequest(BusOp::kReadExcl, CohLine(addr), now);
  Fill(addr, Mesi::kM, now + Charge(r.latency), /*prefetched=*/false, now);
  return {Charge(r.latency), ClassifySource(r)};
}

void CacheStack::Prefetch(Addr addr, bool excl, Cycle now) {
  ++stats_.prefetches;
  COBRA_CHECK(fabric_ != nullptr);
  const Addr line = CohLine(addr);

  // lfetch.excl installs the line dirty on Itanium 2 (see MemConfig).
  const Mesi excl_state =
      cfg_.excl_prefetch_installs_dirty ? Mesi::kM : Mesi::kE;
  // Under an update-based protocol there is no RFO: `.excl` degrades to a
  // plain prefetch (no upgrades, no exclusive hints on the fabric).
  const bool excl_rfo = excl && policy_->excl_prefetch_rfo();

  // Already in L2?
  if (auto* l2_line = l2_.Touch(line)) {
    // A fill still in flight: the prefetch merges into the outstanding
    // request (MSHR behaviour) — in particular an .excl prefetch must not
    // upgrade a line whose shared fallback data has not even arrived yet.
    if (l2_line->ready_at > now) return;
    if (excl_rfo && !CohWritable(l2_line->state) && l2_line->was_dirty_here) {
      ++stats_.prefetch_upgrades;
      const Mesi old = l2_line->state;
      FabricRequest(BusOp::kUpgrade, line, now);
      SetStateAll(line, CohDirty(old) ? Mesi::kM : excl_state);
    }
    return;
  }

  // In L3 only: stage into L2.
  if (auto* l3_line = l3_.Touch(line)) {
    if (l3_line->ready_at > now) return;  // fill in flight: MSHR merge
    Mesi state = l3_line->state;
    if (excl_rfo && !CohWritable(state) && l3_line->was_dirty_here) {
      ++stats_.prefetch_upgrades;
      FabricRequest(BusOp::kUpgrade, line, now);
      state = CohDirty(state) ? Mesi::kM : excl_state;
      l3_line->state = state;
    }
    CacheArray::Line victim;
    bool victim_valid = false;
    auto* l2_line = l2_.Insert(line, state, now + cfg_.l3_hit_latency, &victim,
                               &victim_valid);
    if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
    l2_line->prefetched = true;
    l2_line->referenced = false;
    return;
  }

  // Full miss: issue the bus transaction but do not stall the core.
  ++stats_.prefetch_bus_requests;
  const BusOp op = excl_rfo ? BusOp::kReadExclHint : BusOp::kRead;
  const FabricResult r = FabricRequest(op, line, now);
  // A best-effort exclusive prefetch may come back shared (hint not
  // honoured against a dirty remote line); install what was granted.
  const Mesi grant =
      excl_rfo && r.grant == Mesi::kE ? excl_state : r.grant;
  Fill(line, grant, now + r.latency, /*prefetched=*/true, now);
}

bool CacheStack::LoadNeedsFabric(Addr addr, bool fp, bool bias) const {
  // Mirrors Load(): L1 hits (integer only) and plain L2/L3 hits stay
  // private; an ld.bias hit on a Shared L2 line upgrades in the background;
  // a full miss always reaches the fabric.  Note that an L1 or Shared-L3
  // hit satisfies the current bias load privately but must not memoize
  // kMemoOwned: the refill can leave a Shared line in L2 that a later bias
  // load would have to upgrade.
  const Addr line_addr = CohLine(addr);
  const bool wants_owned = bias && policy_->bias_upgrades();
  if (MemoHas(line_addr, wants_owned ? kMemoOwned : kMemoPresent)) {
    return false;
  }
  if (!fp && l1_.Probe(addr) != nullptr) {
    MemoSet(line_addr, kMemoPresent);  // inclusion: L1 hit => in L3
    return false;
  }
  if (const auto* line = l2_.Probe(addr)) {
    if (!CohWritable(line->state)) {
      if (bias && policy_->bias_upgrades()) return true;
      MemoSet(line_addr, kMemoPresent);
      return false;
    }
    MemoSet(line_addr, kMemoPresent | kMemoOwned);
    return false;
  }
  if (const auto* line = l3_.Probe(addr)) {  // L2 refill is internal
    MemoSet(line_addr, !CohWritable(line->state)
                           ? kMemoPresent
                           : kMemoPresent | kMemoOwned);
    return false;
  }
  return true;
}

bool CacheStack::StoreNeedsFabric(Addr addr) const {
  // Mirrors Store(): M/E hits drain locally; a store to a Shared line is a
  // coherent write miss (full read-invalidate); a miss reads for ownership.
  const Addr line_addr = CohLine(addr);
  if (MemoHas(line_addr, kMemoOwned)) return false;
  if (const auto* line = l2_.Probe(addr)) {
    if (!CohWritable(line->state)) return true;
    MemoSet(line_addr, kMemoPresent | kMemoOwned);
    return false;
  }
  if (const auto* line = l3_.Probe(addr)) {
    if (!CohWritable(line->state)) return true;
    MemoSet(line_addr, kMemoPresent | kMemoOwned);
    return false;
  }
  return true;
}

bool CacheStack::PrefetchNeedsFabric(Addr addr, bool excl, Cycle now) const {
  // Mirrors Prefetch(): an in-flight fill absorbs the prefetch (MSHR
  // merge); a present line only produces traffic for an .excl upgrade of a
  // previously-dirty Shared line; a full miss always issues a transaction.
  // An in-flight line memoizes only presence (its state is not inspected),
  // and a Shared line never memoizes kMemoOwned, so the was_dirty_here
  // condition is always re-checked where it matters.
  const Addr line_addr = CohLine(addr);
  const bool excl_rfo = excl && policy_->excl_prefetch_rfo();
  if (MemoHas(line_addr, excl_rfo ? kMemoOwned : kMemoPresent)) return false;
  if (const auto* line = l2_.Probe(line_addr)) {
    if (line->ready_at > now) {
      MemoSet(line_addr, kMemoPresent);
      return false;
    }
    if (excl_rfo && !CohWritable(line->state) && line->was_dirty_here) {
      return true;
    }
    MemoSet(line_addr, !CohWritable(line->state)
                           ? kMemoPresent
                           : kMemoPresent | kMemoOwned);
    return false;
  }
  if (const auto* line = l3_.Probe(line_addr)) {
    if (line->ready_at > now) {
      MemoSet(line_addr, kMemoPresent);
      return false;
    }
    if (excl_rfo && !CohWritable(line->state) && line->was_dirty_here) {
      return true;
    }
    MemoSet(line_addr, !CohWritable(line->state)
                           ? kMemoPresent
                           : kMemoPresent | kMemoOwned);
    return false;
  }
  return true;
}

SnoopReply CacheStack::Snoop(Addr line_addr, SnoopType type) {
  auto* line = l3_.Probe(line_addr);
  if (line == nullptr) return SnoopReply::kMiss;

  const bool was_dirty = CohDirty(line->state);
  if (type == SnoopType::kRead) {
    // Remote read: move to the protocol's post-read state (S under MESI;
    // MOESI keeps dirty data as O, Dragon as Sm, MESIF demotes F to S). A
    // dirty line is supplied cache-to-cache; whether memory is also
    // updated is the fabric's call (MESI/MESIF write back, MOESI/Dragon
    // keep the dirty owner responsible).
    const Mesi next = policy_->SnoopReadNext(line->state);
    if (next != line->state) ++stats_.snoop_downgrades;
    if (was_dirty) {
      ++stats_.hitm_supplies;
      line->was_dirty_here = true;  // our written line, now shared
      if (auto* inner = l2_.Probe(line_addr)) inner->was_dirty_here = true;
    }
    SetStateAll(line_addr, next);
    return was_dirty ? SnoopReply::kHitM : SnoopReply::kHit;
  }

  if (type == SnoopType::kUpdate) {
    // Dragon BusUpd: accept the updater's data; any copy here — including
    // a previous Sm handing ownership over — is now clean-shared.
    ++stats_.snoop_updates;
    SetStateAll(line_addr, policy_->SnoopUpdateNext(line->state));
    return SnoopReply::kHit;
  }

  // Invalidate.
  ++stats_.snoop_invalidations;
  if (was_dirty) ++stats_.hitm_supplies;
  InvalidateAll(line_addr);
  return was_dirty ? SnoopReply::kHitM : SnoopReply::kHit;
}

Mesi CacheStack::LineState(Addr addr) const {
  const auto* line = l3_.Probe(addr);
  return line != nullptr ? line->state : Mesi::kI;
}

void CacheStack::Reset() {
  l1_.Clear();
  l2_.Clear();
  l3_.Clear();
  l1_.ResetStats();
  l2_.ResetStats();
  l3_.ResetStats();
  stats_ = Stats{};
  coherent_write_misses_ = 0;
  pending_stores_ = 0;
}

void CacheStack::SaveState(support::StateWriter& w) const {
  l1_.SaveState(w);
  l2_.SaveState(w);
  l3_.SaveState(w);
  w.U64(stats_.loads);
  w.U64(stats_.stores);
  w.U64(stats_.prefetches);
  w.U64(stats_.prefetch_bus_requests);
  w.U64(stats_.prefetch_upgrades);
  w.U64(stats_.l2_writebacks);
  w.U64(stats_.fabric_writebacks);
  w.U64(stats_.store_upgrades);
  w.U64(stats_.store_updates);
  w.U64(stats_.snoop_downgrades);
  w.U64(stats_.snoop_invalidations);
  w.U64(stats_.snoop_updates);
  w.U64(stats_.hitm_supplies);
  w.U64(stats_.buffered_stores);
  w.U64(coherent_write_misses_);
  w.U32(static_cast<std::uint32_t>(pending_stores_));
}

bool CacheStack::RestoreState(support::StateReader& r) {
  if (!l1_.RestoreState(r) || !l2_.RestoreState(r) || !l3_.RestoreState(r)) {
    return false;
  }
  r.U64(&stats_.loads);
  r.U64(&stats_.stores);
  r.U64(&stats_.prefetches);
  r.U64(&stats_.prefetch_bus_requests);
  r.U64(&stats_.prefetch_upgrades);
  r.U64(&stats_.l2_writebacks);
  r.U64(&stats_.fabric_writebacks);
  r.U64(&stats_.store_upgrades);
  r.U64(&stats_.store_updates);
  r.U64(&stats_.snoop_downgrades);
  r.U64(&stats_.snoop_invalidations);
  r.U64(&stats_.snoop_updates);
  r.U64(&stats_.hitm_supplies);
  r.U64(&stats_.buffered_stores);
  r.U64(&coherent_write_misses_);
  std::uint32_t pending = 0;
  r.U32(&pending);
  if (!r.Ok() || pending > static_cast<std::uint32_t>(cfg_.store_buffer_entries)) {
    return false;
  }
  pending_stores_ = static_cast<int>(pending);
  return true;
}

}  // namespace cobra::mem
