#include "mem/directory.h"

#include <algorithm>

#include "support/check.h"

namespace cobra::mem {

DirectoryFabric::DirectoryFabric(const MemConfig& cfg, MainMemory* memory,
                                 int num_cpus)
    : cfg_(cfg),
      policy_(&CoherencePolicy::For(cfg.protocol)),
      memory_(memory),
      num_cpus_(num_cpus) {
  COBRA_CHECK(memory != nullptr);
  COBRA_CHECK(cfg.cpus_per_node >= 1);
  COBRA_CHECK_MSG(num_cpus <= 32, "sharer bitmask is 32 bits wide");
  num_nodes_ = (num_cpus + cfg.cpus_per_node - 1) / cfg.cpus_per_node;
  node_bus_free_.assign(static_cast<std::size_t>(num_nodes_), 0);
}

void DirectoryFabric::AttachStacks(std::vector<CacheStack*> stacks) {
  stacks_ = std::move(stacks);
  COBRA_CHECK(static_cast<int>(stacks_.size()) == num_cpus_);
  per_cpu_.assign(stacks_.size(), BusEventCounts{});
}

void DirectoryFabric::ResetCounts() {
  total_ = BusEventCounts{};
  std::fill(per_cpu_.begin(), per_cpu_.end(), BusEventCounts{});
  std::fill(node_bus_free_.begin(), node_bus_free_.end(), Cycle{0});
  queue_cycles_ = 0;
  dir_.clear();
}

const DirectoryFabric::Entry* DirectoryFabric::Lookup(Addr line_addr) const {
  auto it = dir_.find(line_addr);
  return it == dir_.end() ? nullptr : &it->second;
}

void DirectoryFabric::EvictNotify(CpuId cpu, Addr line_addr) {
  auto it = dir_.find(line_addr);
  if (it == dir_.end()) return;
  it->second.sharers &= ~(1u << cpu);
  if (it->second.owner == cpu) it->second.owner = -1;
  if (it->second.sharers == 0 && it->second.owner < 0) dir_.erase(it);
}

Cycle DirectoryFabric::AcquireNodeBus(int node, Cycle earliest,
                                      Cycle occupancy) {
  auto& free_at = node_bus_free_.at(static_cast<std::size_t>(node));
  const Cycle start = std::max(earliest, free_at);
  queue_cycles_ += start - earliest;
  free_at = start + occupancy;
  return start;
}

FabricResult DirectoryFabric::Request(CpuId cpu, BusOp op, Addr line_addr,
                                      Cycle now) {
  COBRA_CHECK_MSG(!stacks_.empty(), "directory has no attached stacks");
  auto& mine = per_cpu_.at(static_cast<std::size_t>(cpu));
  const int req_node = NodeOf(cpu);
  const int home_node = memory_->TouchPage(line_addr, req_node);
  const bool remote_home = home_node != req_node;
  const std::uint32_t my_bit = 1u << cpu;

  const Cycle occupancy =
      op == BusOp::kUpgrade || op == BusOp::kUpdate ? cfg_.bus_addr_occupancy
                                                    : cfg_.bus_data_occupancy;

  // Leg 1: requester's front-side bus, then the interconnect to home.
  const Cycle local_start = AcquireNodeBus(req_node, now, occupancy);
  const Cycle at_home = local_start + Leg(req_node, home_node);
  // Home node's memory controller.
  const Cycle home_start =
      remote_home ? AcquireNodeBus(home_node, at_home, occupancy) : at_home;

  Entry& entry = dir_[line_addr];

  // Best-effort exclusive prefetch: honour it only when no other cache
  // holds the line dirty, otherwise degrade to a plain read.
  if (op == BusOp::kReadExclHint) {
    const bool dirty_elsewhere =
        entry.owner >= 0 && entry.owner != cpu &&
        stacks_[static_cast<std::size_t>(entry.owner)]->HoldsDirty(line_addr);
    op = dirty_elsewhere ? BusOp::kRead : BusOp::kReadExcl;
  }

  auto Finish = [&](Cycle service, Mesi grant, SnoopOutcome snoop,
                    bool counts_data) -> FabricResult {
    if (counts_data) {
      ++total_.bus_memory;
      ++mine.bus_memory;
    }
    const bool remote = remote_home;
    if (remote) {
      ++total_.remote_transactions;
      ++mine.remote_transactions;
    }
    FabricResult result;
    result.latency = (home_start - now) + service + Leg(home_node, req_node);
    result.grant = grant;
    result.snoop = snoop;
    result.remote = remote;
    return result;
  };

  switch (op) {
    case BusOp::kWriteback: {
      entry.sharers &= ~my_bit;
      if (entry.owner == cpu) entry.owner = -1;
      if (entry.sharers == 0 && entry.owner < 0) dir_.erase(line_addr);
      ++total_.bus_writebacks;
      ++mine.bus_writebacks;
      FabricResult result = Finish(0, Mesi::kI, SnoopOutcome::kMiss,
                                   /*counts_data=*/true);
      // Buffered: the core does not wait for the writeback to land.
      result.latency = local_start - now;
      return result;
    }

    case BusOp::kRead: {
      // Dirty/exclusive elsewhere: forward to the owner.
      if (entry.owner >= 0 && entry.owner != cpu) {
        const int owner = entry.owner;
        const int owner_node = NodeOf(owner);
        const SnoopReply reply =
            stacks_[static_cast<std::size_t>(owner)]->Snoop(
                line_addr, SnoopType::kRead);
        if (reply != SnoopReply::kMiss) {
          const bool dirty = reply == SnoopReply::kHitM;
          entry.sharers |= (1u << owner) | my_bit;
          if (dirty && policy_->dirty_share_on_read()) {
            // MOESI/Dragon: the owner (now O/Sm) keeps supplying and stays
            // responsible for the writeback.
          } else if (policy_->clean_forwarding()) {
            entry.owner = cpu;  // MESIF: the requester is the new forwarder
          } else {
            entry.owner = -1;
          }
          if (dirty) {
            ++total_.bus_rd_hitm;
            ++mine.bus_rd_hitm;
          } else {
            ++total_.bus_rd_hit;
            ++mine.bus_rd_hit;
          }
          // Every owner-forward moves the line cache-to-cache, except the
          // MESI/Dragon clean-owner case where memory supplies instead.
          const bool c2c = dirty || policy_->clean_forwarding();
          if (c2c) {
            ++total_.c2c_transfers;
            ++mine.c2c_transfers;
          }
          // Three-hop transfer: home -> owner -> requester.
          const Cycle src = dirty  ? cfg_.hitm_latency
                            : c2c  ? cfg_.forward_latency
                                   : cfg_.memory_latency;
          const Cycle service = src + Leg(home_node, owner_node) +
                                Leg(owner_node, req_node) -
                                Leg(home_node, req_node);
          FabricResult r = Finish(service, policy_->read_grant_shared(),
                                  dirty ? SnoopOutcome::kHitM
                                        : SnoopOutcome::kHit,
                                  /*counts_data=*/true);
          r.remote = r.remote || owner_node != req_node;
          if (owner_node != req_node && !remote_home) {
            ++total_.remote_transactions;
            ++mine.remote_transactions;
          }
          return r;
        }
        entry.owner = -1;  // stale owner (silent drop): fall back to memory
      }

      const bool shared_elsewhere = (entry.sharers & ~my_bit) != 0;
      entry.sharers |= my_bit;
      if (shared_elsewhere) {
        ++total_.bus_rd_hit;
        ++mine.bus_rd_hit;
        // No responsible copy survives (e.g. the forwarder was evicted):
        // memory supplies. Under MESIF the requester picks the F role up.
        if (policy_->clean_forwarding()) entry.owner = cpu;
        return Finish(cfg_.memory_latency, policy_->read_grant_shared(),
                      SnoopOutcome::kHit,
                      /*counts_data=*/true);
      }
      entry.owner = cpu;
      return Finish(cfg_.memory_latency, Mesi::kE, SnoopOutcome::kMiss,
                    /*counts_data=*/true);
    }

    case BusOp::kReadExclHint:  // rewritten above; kept for -Wswitch
    case BusOp::kReadExcl:
    case BusOp::kUpgrade: {
      bool hitm = false;
      bool invalidated_remote = false;
      Cycle inval_leg = 0;
      // Invalidate the owner and every sharer except the requester.
      auto Zap = [&](CpuId target) {
        if (target == cpu) return;
        const SnoopReply reply =
            stacks_[static_cast<std::size_t>(target)]->Snoop(
                line_addr, SnoopType::kInvalidate);
        if (reply == SnoopReply::kHitM) hitm = true;
        const int target_node = NodeOf(target);
        if (target_node != home_node) {
          inval_leg = std::max(inval_leg, 2 * Leg(home_node, target_node));
        }
        if (target_node != req_node) invalidated_remote = true;
      };
      if (entry.owner >= 0) Zap(entry.owner);
      for (CpuId target = 0; target < num_cpus_; ++target) {
        if (entry.sharers & (1u << target)) Zap(target);
      }
      entry.owner = cpu;
      entry.sharers = my_bit;

      if (op == BusOp::kUpgrade) {
        ++total_.bus_upgrades;
        ++mine.bus_upgrades;
        FabricResult r = Finish(cfg_.upgrade_latency + inval_leg, Mesi::kE,
                                hitm ? SnoopOutcome::kHitM : SnoopOutcome::kHit,
                                /*counts_data=*/false);
        r.remote = r.remote || invalidated_remote;
        return r;
      }
      if (hitm) {
        ++total_.bus_rd_inval_all_hitm;
        ++mine.bus_rd_inval_all_hitm;
        ++total_.c2c_transfers;
        ++mine.c2c_transfers;
      }
      FabricResult r = Finish(
          (hitm ? cfg_.hitm_latency : cfg_.memory_latency) + inval_leg,
          Mesi::kE, hitm ? SnoopOutcome::kHitM : SnoopOutcome::kMiss,
          /*counts_data=*/true);
      r.remote = r.remote || invalidated_remote;
      return r;
    }

    case BusOp::kUpdate: {
      // Dragon BusUpd via the home: deliver the new data to the owner and
      // every sharer. Copies that were silently dropped report misses and
      // are scrubbed from the entry, so the grant (Sm vs M) reflects the
      // true surviving-copy count.
      bool any_copy = false;
      bool updated_remote = false;
      Cycle update_leg = 0;
      auto Deliver = [&](CpuId target) {
        if (target == cpu) return;
        const SnoopReply reply =
            stacks_[static_cast<std::size_t>(target)]->Snoop(
                line_addr, SnoopType::kUpdate);
        if (reply == SnoopReply::kMiss) {
          entry.sharers &= ~(1u << target);
          if (entry.owner == target) entry.owner = -1;
          return;
        }
        any_copy = true;
        const int target_node = NodeOf(target);
        if (target_node != home_node) {
          update_leg = std::max(update_leg, 2 * Leg(home_node, target_node));
        }
        if (target_node != req_node) updated_remote = true;
      };
      if (entry.owner >= 0) Deliver(entry.owner);
      for (CpuId target = 0; target < num_cpus_; ++target) {
        if (entry.sharers & (1u << target)) Deliver(target);
      }
      entry.sharers |= my_bit;
      entry.owner = cpu;  // the updater holds the dirty copy (Sm or M)
      ++total_.bus_updates;
      ++mine.bus_updates;
      FabricResult r =
          Finish(cfg_.forward_latency + update_leg,
                 any_copy ? Mesi::kSm : Mesi::kM,
                 any_copy ? SnoopOutcome::kHit : SnoopOutcome::kMiss,
                 /*counts_data=*/false);
      r.remote = r.remote || updated_remote;
      return r;
    }
  }
  COBRA_UNREACHABLE("bad bus op");
}

}  // namespace cobra::mem
