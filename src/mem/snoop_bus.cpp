#include "mem/snoop_bus.h"

#include <algorithm>

#include "support/check.h"

namespace cobra::mem {

SnoopBus::SnoopBus(const MemConfig& cfg)
    : cfg_(cfg), policy_(&CoherencePolicy::For(cfg.protocol)) {}

void SnoopBus::AttachStacks(std::vector<CacheStack*> stacks) {
  stacks_ = std::move(stacks);
  per_cpu_.assign(stacks_.size(), BusEventCounts{});
}

void SnoopBus::ResetCounts() {
  total_ = BusEventCounts{};
  std::fill(per_cpu_.begin(), per_cpu_.end(), BusEventCounts{});
  free_at_ = 0;
  queue_cycles_ = 0;
}

FabricResult SnoopBus::Request(CpuId cpu, BusOp op, Addr line_addr,
                               Cycle now) {
  COBRA_CHECK_MSG(!stacks_.empty(), "bus has no attached stacks");
  auto& mine = per_cpu_.at(static_cast<std::size_t>(cpu));

  const Cycle start = std::max(now, free_at_);
  const Cycle queue = start - now;
  queue_cycles_ += queue;

  auto Occupy = [&](Cycle occupancy) { free_at_ = start + occupancy; };
  auto CountData = [&] {
    ++total_.bus_memory;
    ++mine.bus_memory;
  };

  FabricResult result;
  switch (op) {
    case BusOp::kWriteback: {
      // Buffered writeback of a dirty victim: occupies the bus but the core
      // does not wait for it.
      Occupy(cfg_.bus_data_occupancy);
      CountData();
      ++total_.bus_writebacks;
      ++mine.bus_writebacks;
      result.latency = queue;
      result.grant = Mesi::kI;
      return result;
    }

    case BusOp::kRead: {
      Occupy(cfg_.bus_data_occupancy);
      CountData();
      // MESIF: find a clean source — the F holder, or a sole E copy —
      // before the snoop demotes it; if one exists it supplies the line
      // cache-to-cache and memory stays silent.
      bool clean_forwarder = false;
      if (policy_->clean_forwarding()) {
        for (CacheStack* other : stacks_) {
          if (other->cpu() == cpu) continue;
          const Mesi s = other->LineState(line_addr);
          if (s == Mesi::kF || s == Mesi::kE) clean_forwarder = true;
        }
      }
      SnoopReply worst = SnoopReply::kMiss;
      for (CacheStack* other : stacks_) {
        if (other->cpu() == cpu) continue;
        const SnoopReply reply = other->Snoop(line_addr, SnoopType::kRead);
        if (reply == SnoopReply::kHitM) {
          worst = SnoopReply::kHitM;
        } else if (reply == SnoopReply::kHit && worst == SnoopReply::kMiss) {
          worst = SnoopReply::kHit;
        }
      }
      switch (worst) {
        case SnoopReply::kHitM:
          ++total_.c2c_transfers;
          ++mine.c2c_transfers;
          if (!policy_->dirty_share_on_read()) {
            // Illinois/MESIF: owner supplies the line cache-to-cache and
            // memory is updated in the same transaction (an implicit
            // writeback), so the bus is held for a second data transfer.
            Occupy(2 * cfg_.bus_data_occupancy);
          }
          // MOESI/Dragon: the owner (now O/Sm) keeps supplying; memory is
          // untouched and the bus carries one transfer.
          ++total_.bus_rd_hitm;
          ++mine.bus_rd_hitm;
          result.latency = queue + cfg_.hitm_latency;
          result.grant = policy_->read_grant_shared();
          result.snoop = SnoopOutcome::kHitM;
          return result;
        case SnoopReply::kHit:
          ++total_.bus_rd_hit;
          ++mine.bus_rd_hit;
          if (clean_forwarder) {
            ++total_.c2c_transfers;
            ++mine.c2c_transfers;
            result.latency = queue + cfg_.forward_latency;
          } else {
            result.latency = queue + cfg_.memory_latency;
          }
          result.grant = policy_->read_grant_shared();
          result.snoop = SnoopOutcome::kHit;
          return result;
        case SnoopReply::kMiss:
          result.latency = queue + cfg_.memory_latency;
          result.grant = Mesi::kE;
          result.snoop = SnoopOutcome::kMiss;
          return result;
      }
      COBRA_UNREACHABLE("bad snoop reply");
    }

    case BusOp::kReadExclHint: {
      // Best-effort exclusive prefetch: honoured only if no other cache
      // holds the line dirty; otherwise degrade to a read.
      bool dirty_elsewhere = false;
      for (CacheStack* other : stacks_) {
        if (other->cpu() != cpu && other->HoldsDirty(line_addr)) {
          dirty_elsewhere = true;
        }
      }
      Occupy(cfg_.bus_data_occupancy);
      CountData();
      if (dirty_elsewhere) {
        for (CacheStack* other : stacks_) {
          if (other->cpu() == cpu) continue;
          other->Snoop(line_addr, SnoopType::kRead);
        }
        ++total_.bus_rd_hitm;
        ++mine.bus_rd_hitm;
        ++total_.c2c_transfers;
        ++mine.c2c_transfers;
        if (!policy_->dirty_share_on_read()) {
          Occupy(cfg_.bus_data_occupancy);  // implicit writeback transfer
        }
        result.latency = queue + cfg_.hitm_latency;
        result.grant = policy_->read_grant_shared();
        result.snoop = SnoopOutcome::kHitM;
        return result;
      }
      bool clean_hit = false;
      for (CacheStack* other : stacks_) {
        if (other->cpu() == cpu) continue;
        if (other->Snoop(line_addr, SnoopType::kInvalidate) ==
            SnoopReply::kHit) {
          clean_hit = true;
        }
      }
      if (clean_hit) {
        ++total_.bus_rd_hit;
        ++mine.bus_rd_hit;
      }
      result.latency = queue + cfg_.memory_latency;
      result.grant = Mesi::kE;
      result.snoop = clean_hit ? SnoopOutcome::kHit : SnoopOutcome::kMiss;
      return result;
    }

    case BusOp::kReadExcl: {
      Occupy(cfg_.bus_data_occupancy);
      CountData();
      bool hitm = false;
      for (CacheStack* other : stacks_) {
        if (other->cpu() == cpu) continue;
        if (other->Snoop(line_addr, SnoopType::kInvalidate) ==
            SnoopReply::kHitM) {
          hitm = true;
        }
      }
      if (hitm) {
        if (!policy_->dirty_share_on_read()) {
          Occupy(2 * cfg_.bus_data_occupancy);  // implicit writeback transfer
        }
        ++total_.bus_rd_inval_all_hitm;
        ++mine.bus_rd_inval_all_hitm;
        ++total_.c2c_transfers;
        ++mine.c2c_transfers;
        result.latency = queue + cfg_.hitm_latency;
        result.snoop = SnoopOutcome::kHitM;
      } else {
        result.latency = queue + cfg_.memory_latency;
        result.snoop = SnoopOutcome::kMiss;
      }
      result.grant = Mesi::kE;
      return result;
    }

    case BusOp::kUpgrade: {
      // Address-only invalidation round. Under MOESI the zapped copy may
      // be the dirty-shared owner (O) — the requester's own copy carries
      // the same data, so no transfer is needed, but the outcome reports
      // HITM so observers (and the checker) see a dirty copy was retired.
      Occupy(cfg_.bus_addr_occupancy);
      ++total_.bus_upgrades;
      ++mine.bus_upgrades;
      bool hitm = false;
      for (CacheStack* other : stacks_) {
        if (other->cpu() == cpu) continue;
        if (other->Snoop(line_addr, SnoopType::kInvalidate) ==
            SnoopReply::kHitM) {
          hitm = true;
        }
      }
      result.latency = queue + cfg_.upgrade_latency;
      result.grant = Mesi::kE;
      result.snoop = hitm ? SnoopOutcome::kHitM : SnoopOutcome::kHit;
      return result;
    }

    case BusOp::kUpdate: {
      // Dragon BusUpd: a word-sized broadcast on the address network. Every
      // other copy accepts the new data in place; the updater learns
      // whether any sharers remain (Sm) or it now owns the only copy (M).
      Occupy(cfg_.bus_addr_occupancy);
      ++total_.bus_updates;
      ++mine.bus_updates;
      bool any_copy = false;
      for (CacheStack* other : stacks_) {
        if (other->cpu() == cpu) continue;
        if (other->Snoop(line_addr, SnoopType::kUpdate) ==
            SnoopReply::kHit) {
          any_copy = true;
        }
      }
      result.latency = queue + cfg_.forward_latency;
      result.grant = any_copy ? Mesi::kSm : Mesi::kM;
      result.snoop = any_copy ? SnoopOutcome::kHit : SnoopOutcome::kMiss;
      return result;
    }
  }
  COBRA_UNREACHABLE("bad bus op");
}

}  // namespace cobra::mem
