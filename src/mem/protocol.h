// Pluggable coherence protocol layer: the line-state alphabet shared by
// every protocol, the protocol selector, and the CoherencePolicy tables the
// cache stacks and fabrics consult instead of hard-coding MESI.
//
// Four protocols are modeled, spanning the classic design space:
//   MESI   (Illinois)       invalidation-based, the Itanium 2 FSB baseline.
//   MOESI                   adds Owned: a dirty line is shared cache-to-cache
//                           without writing memory back on every snoop read.
//   MESIF  (Intel QPI)      adds Forward: exactly one clean copy answers
//                           read misses cache-to-cache instead of memory.
//   Dragon (update-based)   stores to shared lines broadcast the new data
//                           (BusUpd) instead of invalidating; Sm is the one
//                           dirty owner among Sc sharers. No invalidations.
#pragma once

#include <cstdint>

namespace cobra::mem {

// Union of every protocol's line states. Each protocol uses a legal subset
// (see CoherencePolicy::LegalState); kI..kM are the MESI core all four
// share. The `Mesi` alias in coherence.h keeps pre-protocol code reading
// naturally.
enum class CohState : std::uint8_t {
  kI,   // Invalid
  kS,   // Shared, clean (MESI/MOESI/MESIF)
  kE,   // Exclusive, clean
  kM,   // Modified, sole copy
  kO,   // MOESI Owned: dirty, shared; this cache supplies and writes back
  kF,   // MESIF Forward: clean, shared; the one copy that answers reads
  kSm,  // Dragon Shared-modified: dirty, shared; supplies and writes back
  kSc,  // Dragon Shared-clean
};

inline const char* CohStateName(CohState s) {
  switch (s) {
    case CohState::kI: return "I";
    case CohState::kS: return "S";
    case CohState::kE: return "E";
    case CohState::kM: return "M";
    case CohState::kO: return "O";
    case CohState::kF: return "F";
    case CohState::kSm: return "Sm";
    case CohState::kSc: return "Sc";
  }
  return "?";
}

// Line holds usable data.
inline bool CohValid(CohState s) { return s != CohState::kI; }

// A store may hit this line silently (no fabric transaction). True exactly
// for M and E in *all four* protocols — every other valid state has (or may
// have) other copies to invalidate or update first.
inline bool CohWritable(CohState s) {
  return s == CohState::kM || s == CohState::kE;
}

// This cache's copy is newer than memory: it must supply snooped reads and
// write back on eviction.
inline bool CohDirty(CohState s) {
  return s == CohState::kM || s == CohState::kO || s == CohState::kSm;
}

enum class Protocol : std::uint8_t { kMesi, kMoesi, kDragon, kMesif };

const char* ProtocolName(Protocol p);

// Parses "mesi" / "moesi" / "dragon" / "mesif" (case-insensitive). Returns
// false (out untouched) for anything else.
bool ParseProtocol(const char* text, Protocol* out);

// COBRA_PROTOCOL environment knob, falling back to `fallback` when unset or
// unparsable. Applied by the machine presets in config.cpp, *not* by the
// Machine constructor, so explicit `cfg.mem.protocol = ...` assignments made
// after preset construction always win over the ambient environment.
Protocol ProtocolFromEnv(Protocol fallback);

// What a store to a resident-but-not-writable line does on the fabric.
enum class StoreSharedAction : std::uint8_t {
  kReadInvalidate,  // MESI/MESIF: full RFO, refill the line in M
  kUpgrade,         // MOESI: invalidate the other copies, keep our data
  kUpdate,          // Dragon: broadcast the new data to the other copies
};

// Per-protocol behaviour table. Stateless and immutable; one static
// instance per protocol (CoherencePolicy::For). Cache stacks and fabrics
// consult it instead of matching on states directly, so MESI's code paths
// stay byte-for-byte what they were and the other protocols divert only
// where the protocols genuinely differ.
class CoherencePolicy {
 public:
  static const CoherencePolicy& For(Protocol p);

  Protocol protocol() const { return protocol_; }
  const char* name() const { return ProtocolName(protocol_); }

  // Dragon: stores to shared lines update instead of invalidating, and no
  // transaction may invalidate a remote copy.
  bool update_based() const { return update_based_; }

  // ld.bias on a shared line is worth an ownership upgrade (invalidation
  // protocols). Under Dragon there is no upgrade: biased loads stay plain.
  bool bias_upgrades() const { return !update_based_; }

  // lfetch.excl issues RFO-style transactions (kReadExclHint / kUpgrade).
  // Under Dragon exclusive hints degrade to plain prefetches.
  bool excl_prefetch_rfo() const { return !update_based_; }

  StoreSharedAction store_shared_action() const { return store_shared_; }

  // Snoop read finds the line dirty here: does this cache keep supplying
  // (MOESI O / Dragon Sm) or does memory take over (MESI/MESIF downgrade
  // with implicit writeback)?
  bool dirty_share_on_read() const { return dirty_share_on_read_; }

  // MESIF: one clean copy (F) may source read misses cache-to-cache.
  bool clean_forwarding() const { return clean_forwarding_; }

  // State granted to a read that found other copies: S, F (requester
  // becomes the new forwarder), or Sc.
  CohState read_grant_shared() const { return read_grant_shared_; }

  // This cache's next state after a remote read snoops its line.
  CohState SnoopReadNext(CohState s) const;

  // This cache's next state after a remote BusUpd delivers new data
  // (Dragon only; the updater itself becomes Sm or M).
  CohState SnoopUpdateNext(CohState s) const;

  // Is `s` in this protocol's legal state set?
  bool LegalState(CohState s) const;

 private:
  CoherencePolicy(Protocol protocol, bool update_based,
                  StoreSharedAction store_shared, bool dirty_share_on_read,
                  bool clean_forwarding, CohState read_grant_shared)
      : protocol_(protocol),
        update_based_(update_based),
        store_shared_(store_shared),
        dirty_share_on_read_(dirty_share_on_read),
        clean_forwarding_(clean_forwarding),
        read_grant_shared_(read_grant_shared) {}

  Protocol protocol_;
  bool update_based_;
  StoreSharedAction store_shared_;
  bool dirty_share_on_read_;
  bool clean_forwarding_;
  CohState read_grant_shared_;
};

}  // namespace cobra::mem
