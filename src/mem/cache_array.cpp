#include "mem/cache_array.h"

#include <bit>

namespace cobra::mem {

namespace {
bool IsPow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheArray::CacheArray(std::size_t size_bytes, std::size_t line_bytes,
                       int associativity)
    : line_bytes_(line_bytes),
      line_shift_(std::countr_zero(line_bytes)),
      assoc_(associativity) {
  COBRA_CHECK_MSG(IsPow2(line_bytes), "line size must be a power of two");
  COBRA_CHECK(associativity >= 1);
  COBRA_CHECK_MSG(size_bytes % (line_bytes * associativity) == 0,
                  "cache size must be a multiple of line*assoc");
  sets_ = size_bytes / (line_bytes * static_cast<std::size_t>(associativity));
  COBRA_CHECK_MSG(IsPow2(sets_), "number of sets must be a power of two");
  COBRA_CHECK_MSG(associativity <= 255, "way hint is stored in a byte");
  lines_.resize(sets_ * static_cast<std::size_t>(assoc_));
  mru_way_.assign(sets_, 0);
}

CacheArray::Line* CacheArray::Insert(Addr addr, Mesi state, Cycle ready_at,
                                     Line* victim, bool* victim_valid) {
  COBRA_CHECK(state != Mesi::kI);
  *victim_valid = false;
  const Addr line_addr = LineAddrOf(addr);
  Line* base = &lines_[SetOf(addr) * static_cast<std::size_t>(assoc_)];

  Line* slot = nullptr;
  for (int way = 0; way < assoc_; ++way) {
    Line& line = base[way];
    if (line.state != Mesi::kI && line.line_addr == line_addr) {
      // Re-insert over an existing copy (e.g. upgrade): keep bookkeeping.
      slot = &line;
      break;
    }
    if (line.state == Mesi::kI) {
      slot = &line;  // prefer an invalid way, keep scanning for an exact hit
    }
  }
  if (slot == nullptr) {
    // Evict LRU.
    slot = base;
    for (int way = 1; way < assoc_; ++way) {
      if (base[way].lru < slot->lru) slot = &base[way];
    }
    *victim = *slot;
    *victim_valid = true;
    ++stats_.evictions;
    if (slot->state == Mesi::kM) ++stats_.dirty_evictions;
    if (slot->prefetched && !slot->referenced) {
      ++stats_.useless_prefetch_evictions;
    }
  }

  const bool fresh = slot->state == Mesi::kI || slot->line_addr != line_addr ||
                     *victim_valid;
  slot->line_addr = line_addr;
  slot->state = state;
  slot->ready_at = ready_at;
  slot->lru = ++lru_clock_;
  if (fresh) {
    slot->prefetched = false;
    slot->referenced = false;
    slot->was_dirty_here = false;
  }
  mru_way_[SetOf(addr)] = static_cast<std::uint8_t>(slot - base);
  return slot;
}

void CacheArray::Invalidate(Addr addr) {
  if (Line* line = Probe(addr)) {
    line->state = Mesi::kI;
    line->ready_at = 0;
  }
}

void CacheArray::Clear() {
  for (Line& line : lines_) line = Line{};
  mru_way_.assign(sets_, 0);
  lru_clock_ = 0;
}

}  // namespace cobra::mem
