// Flat simulated physical memory with a first-touch page table.
//
// The memory holds the *functional* state of every simulated program: the
// caches in this simulator are timing models (tag/state only), so loads and
// stores always read/write here.  Because the machine interleaves cores one
// instruction at a time, this split is observationally equivalent to a
// data-carrying coherent hierarchy while being far simpler to validate.
//
// The page table implements the SGI Altix first-touch policy described in
// Section 3.2: the first CPU (node) to touch a page becomes its home, which
// the directory fabric uses to locate a line's home node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/config.h"
#include "support/check.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::mem {

using Addr = std::uint64_t;

class MainMemory {
 public:
  explicit MainMemory(std::size_t bytes, std::size_t page_bytes = 16 * 1024);

  std::size_t size() const { return size_; }
  std::size_t page_bytes() const { return page_bytes_; }

  // --- Functional access ---------------------------------------------------
  // Inline: these run once per simulated load/store, making them some of
  // the hottest code in the simulator.
  std::uint64_t Read(Addr addr, int size) const {
    CheckRange(addr, static_cast<std::size_t>(size));
    std::uint64_t out = 0;
    __builtin_memcpy(&out, data_.get() + addr, static_cast<std::size_t>(size));
    return out;
  }
  void Write(Addr addr, int size, std::uint64_t value) {
    CheckRange(addr, static_cast<std::size_t>(size));
    __builtin_memcpy(data_.get() + addr, &value,
                     static_cast<std::size_t>(size));
  }
  double ReadDouble(Addr addr) const { return ReadAs<double>(addr); }
  void WriteDouble(Addr addr, double value) { WriteAs<double>(addr, value); }

  // Typed bulk helpers for workload setup/verification (host-side).
  template <typename T>
  T ReadAs(Addr addr) const {
    CheckRange(addr, sizeof(T));
    T out;
    __builtin_memcpy(&out, data_.get() + addr, sizeof(T));
    return out;
  }
  template <typename T>
  void WriteAs(Addr addr, T value) {
    CheckRange(addr, sizeof(T));
    __builtin_memcpy(data_.get() + addr, &value, sizeof(T));
  }

  // Raw host-side view of the backing store (the verification oracle
  // snapshots and diffs whole regions; simulated code never sees this).
  const std::uint8_t* raw() const { return data_.get(); }

  // --- First-touch page placement ------------------------------------------
  // Returns the page's home node, assigning `node` if untouched.
  int TouchPage(Addr addr, int node);
  // Home node of the page, or -1 if never touched.
  int HomeNode(Addr addr) const;
  // Forgets all page placements (between experiments).
  void ResetPageMap();
  // Pre-places a range of pages on a node (models a thread initializing its
  // partition during the init phase, as Section 3.2 assumes).
  void PlaceRange(Addr begin, Addr end, int node);

  // --- Checkpointing ---------------------------------------------------------
  // Pages that are still all-zero are skipped: memory starts zeroed, so a
  // checkpoint of a sparsely-touched data segment stays compact.
  void SaveState(support::StateWriter& w) const {
    w.U64(static_cast<std::uint64_t>(size_));
    w.U64(static_cast<std::uint64_t>(page_bytes_));
    const std::size_t num_pages = page_home_.size();
    std::vector<std::uint64_t> nonzero;
    for (std::size_t page = 0; page < num_pages; ++page) {
      const std::size_t off = page * page_bytes_;
      const std::size_t len = std::min(page_bytes_, size_ - off);
      const std::uint8_t* p = data_.get() + off;
      bool all_zero = true;
      for (std::size_t i = 0; i < len; ++i) {
        if (p[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (!all_zero) nonzero.push_back(page);
    }
    w.U64(static_cast<std::uint64_t>(nonzero.size()));
    for (std::uint64_t page : nonzero) {
      const std::size_t off = static_cast<std::size_t>(page) * page_bytes_;
      w.U64(page);
      w.Bytes(data_.get() + off, std::min(page_bytes_, size_ - off));
    }
    for (std::int16_t home : page_home_) w.I64(home);
  }
  bool RestoreState(support::StateReader& r) {
    std::uint64_t size = 0;
    std::uint64_t page_bytes = 0;
    r.U64(&size);
    r.U64(&page_bytes);
    if (!r.Ok() || size != size_ || page_bytes != page_bytes_) return false;
    const std::size_t num_pages = page_home_.size();
    std::uint64_t nonzero = 0;
    r.U64(&nonzero);
    if (!r.Ok() || nonzero > num_pages) return false;
    std::memset(data_.get(), 0, size_);
    for (std::uint64_t i = 0; i < nonzero; ++i) {
      std::uint64_t page = 0;
      r.U64(&page);
      if (!r.Ok() || page >= num_pages) return false;
      const std::size_t off = static_cast<std::size_t>(page) * page_bytes_;
      r.Bytes(data_.get() + off, std::min(page_bytes_, size_ - off));
    }
    for (std::int16_t& home : page_home_) {
      std::int64_t v = 0;
      r.I64(&v);
      if (!r.Ok() || v < -1 || v > INT16_MAX) return false;
      home = static_cast<std::int16_t>(v);
    }
    return r.Ok();
  }

 private:
  void CheckRange(Addr addr, std::size_t bytes) const {
    COBRA_CHECK_MSG(addr + bytes <= size_ && addr + bytes >= bytes,
                    "data access out of simulated memory range");
  }

  struct FreeDeleter {
    void operator()(std::uint8_t* p) const { std::free(p); }
  };

  // calloc-backed rather than a value-initialized vector: simulated memory
  // must start zeroed (determinism), but calloc hands out zero pages the
  // kernel materializes on first touch, so constructing a machine with a
  // large, sparsely-used data segment costs no up-front memset. Machines
  // are built per experiment run, so this is on the benchmark driver's
  // critical path.
  std::unique_ptr<std::uint8_t[], FreeDeleter> data_;
  std::size_t size_ = 0;
  std::size_t page_bytes_;
  std::vector<std::int16_t> page_home_;  // -1 = untouched
};

}  // namespace cobra::mem
