// Flat simulated physical memory with a first-touch page table.
//
// The memory holds the *functional* state of every simulated program: the
// caches in this simulator are timing models (tag/state only), so loads and
// stores always read/write here.  Because the machine interleaves cores one
// instruction at a time, this split is observationally equivalent to a
// data-carrying coherent hierarchy while being far simpler to validate.
//
// The page table implements the SGI Altix first-touch policy described in
// Section 3.2: the first CPU (node) to touch a page becomes its home, which
// the directory fabric uses to locate a line's home node.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "mem/config.h"
#include "support/check.h"
#include "support/simtypes.h"

namespace cobra::mem {

using Addr = std::uint64_t;

class MainMemory {
 public:
  explicit MainMemory(std::size_t bytes, std::size_t page_bytes = 16 * 1024);

  std::size_t size() const { return size_; }
  std::size_t page_bytes() const { return page_bytes_; }

  // --- Functional access ---------------------------------------------------
  // Inline: these run once per simulated load/store, making them some of
  // the hottest code in the simulator.
  std::uint64_t Read(Addr addr, int size) const {
    CheckRange(addr, static_cast<std::size_t>(size));
    std::uint64_t out = 0;
    __builtin_memcpy(&out, data_.get() + addr, static_cast<std::size_t>(size));
    return out;
  }
  void Write(Addr addr, int size, std::uint64_t value) {
    CheckRange(addr, static_cast<std::size_t>(size));
    __builtin_memcpy(data_.get() + addr, &value,
                     static_cast<std::size_t>(size));
  }
  double ReadDouble(Addr addr) const { return ReadAs<double>(addr); }
  void WriteDouble(Addr addr, double value) { WriteAs<double>(addr, value); }

  // Typed bulk helpers for workload setup/verification (host-side).
  template <typename T>
  T ReadAs(Addr addr) const {
    CheckRange(addr, sizeof(T));
    T out;
    __builtin_memcpy(&out, data_.get() + addr, sizeof(T));
    return out;
  }
  template <typename T>
  void WriteAs(Addr addr, T value) {
    CheckRange(addr, sizeof(T));
    __builtin_memcpy(data_.get() + addr, &value, sizeof(T));
  }

  // Raw host-side view of the backing store (the verification oracle
  // snapshots and diffs whole regions; simulated code never sees this).
  const std::uint8_t* raw() const { return data_.get(); }

  // --- First-touch page placement ------------------------------------------
  // Returns the page's home node, assigning `node` if untouched.
  int TouchPage(Addr addr, int node);
  // Home node of the page, or -1 if never touched.
  int HomeNode(Addr addr) const;
  // Forgets all page placements (between experiments).
  void ResetPageMap();
  // Pre-places a range of pages on a node (models a thread initializing its
  // partition during the init phase, as Section 3.2 assumes).
  void PlaceRange(Addr begin, Addr end, int node);

 private:
  void CheckRange(Addr addr, std::size_t bytes) const {
    COBRA_CHECK_MSG(addr + bytes <= size_ && addr + bytes >= bytes,
                    "data access out of simulated memory range");
  }

  struct FreeDeleter {
    void operator()(std::uint8_t* p) const { std::free(p); }
  };

  // calloc-backed rather than a value-initialized vector: simulated memory
  // must start zeroed (determinism), but calloc hands out zero pages the
  // kernel materializes on first touch, so constructing a machine with a
  // large, sparsely-used data segment costs no up-front memset. Machines
  // are built per experiment run, so this is on the benchmark driver's
  // critical path.
  std::unique_ptr<std::uint8_t[], FreeDeleter> data_;
  std::size_t size_ = 0;
  std::size_t page_bytes_;
  std::vector<std::int16_t> page_home_;  // -1 = untouched
};

}  // namespace cobra::mem
