// Coherence-protocol types shared by the snooping bus (SMP) and the
// directory fabric (cc-NUMA), plus the statistics structures the HPM model
// exposes as Itanium 2 bus events.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/main_memory.h"
#include "mem/protocol.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::mem {

// Line states live in protocol.h (the union alphabet over all four
// protocols). `Mesi` remains the working name throughout the memory system:
// under the default protocol the legal values are exactly the classic four,
// and every call site reads as it did when MESI was the only protocol.
using Mesi = CohState;

inline const char* MesiName(Mesi s) { return CohStateName(s); }

// Transaction kinds a cache stack can place on the fabric (names below are
// the timeline-trace event names).
enum class BusOp : std::uint8_t {
  kRead,          // BRL: read line (grant S if shared, E if nobody holds it)
  kReadExcl,      // BRIL / RFO: read line with intent to modify (grant E)
  kReadExclHint,  // lfetch.excl miss: *best-effort* RFO. Clean remote copies
                  // are invalidated and E granted, but if the snoop finds a
                  // dirty line the hint is not honoured: the transaction
                  // degrades to a read (owner downgrades, S granted).
  kUpgrade,       // BIL: invalidate other copies of a line already held S
  kWriteback,     // BWL: write a dirty victim back to memory
  kUpdate,        // BusUpd (Dragon): broadcast a store's data to the other
                  // copies instead of invalidating them
};

inline const char* BusOpName(BusOp op) {
  switch (op) {
    case BusOp::kRead: return "read";
    case BusOp::kReadExcl: return "read.excl";
    case BusOp::kReadExclHint: return "read.excl.hint";
    case BusOp::kUpgrade: return "upgrade";
    case BusOp::kWriteback: return "writeback";
    case BusOp::kUpdate: return "update";
  }
  return "?";
}

// How the rest of the system responded — the Itanium 2 snoop-response
// events the paper's detector divides by total bus transactions.
enum class SnoopOutcome : std::uint8_t {
  kMiss,  // no other cache held the line (memory supplied it)
  kHit,   // another cache held it clean (BUS_RD_HIT)
  kHitM,  // another cache held it modified (BUS_RD_HITM / ..._INVAL_ALL_HITM)
};

// Result of a fabric request, consumed by the requesting cache stack.
struct FabricResult {
  Cycle latency = 0;        // total cycles until data usable (incl. queuing)
  Mesi grant = Mesi::kI;    // state the requester may install the line in
  SnoopOutcome snoop = SnoopOutcome::kMiss;
  bool remote = false;      // NUMA: crossed the interconnect
};

// Per-requester bus/coherence event counters. The cpu::Hpm maps these onto
// Itanium 2 event selectors (BUS_MEMORY, BUS_RD_HIT, BUS_RD_HITM, ...).
struct BusEventCounts {
  std::uint64_t bus_memory = 0;          // all data transactions it initiated
  std::uint64_t bus_rd_hit = 0;          // reads snooped clean in another cache
  std::uint64_t bus_rd_hitm = 0;         // reads that hit Modified elsewhere
  std::uint64_t bus_rd_inval_all_hitm = 0;  // RFOs that hit Modified elsewhere
  std::uint64_t bus_upgrades = 0;        // S->M invalidation rounds
  std::uint64_t bus_writebacks = 0;      // dirty-victim writebacks
  std::uint64_t bus_updates = 0;         // Dragon BusUpd broadcasts
  std::uint64_t c2c_transfers = 0;       // lines supplied cache-to-cache
                                         // (dirty HITM and MESIF clean-F)
  std::uint64_t remote_transactions = 0; // NUMA: crossed the interconnect

  std::uint64_t CoherentEvents() const {
    return bus_rd_hit + bus_rd_hitm + bus_rd_inval_all_hitm + bus_upgrades +
           bus_updates;
  }

  BusEventCounts& operator-=(const BusEventCounts& o) {
    bus_memory -= o.bus_memory;
    bus_rd_hit -= o.bus_rd_hit;
    bus_rd_hitm -= o.bus_rd_hitm;
    bus_rd_inval_all_hitm -= o.bus_rd_inval_all_hitm;
    bus_upgrades -= o.bus_upgrades;
    bus_writebacks -= o.bus_writebacks;
    bus_updates -= o.bus_updates;
    c2c_transfers -= o.c2c_transfers;
    remote_transactions -= o.remote_transactions;
    return *this;
  }

  void SaveState(support::StateWriter& w) const {
    w.U64(bus_memory);
    w.U64(bus_rd_hit);
    w.U64(bus_rd_hitm);
    w.U64(bus_rd_inval_all_hitm);
    w.U64(bus_upgrades);
    w.U64(bus_writebacks);
    w.U64(bus_updates);
    w.U64(c2c_transfers);
    w.U64(remote_transactions);
  }
  bool RestoreState(support::StateReader& r) {
    r.U64(&bus_memory);
    r.U64(&bus_rd_hit);
    r.U64(&bus_rd_hitm);
    r.U64(&bus_rd_inval_all_hitm);
    r.U64(&bus_upgrades);
    r.U64(&bus_writebacks);
    r.U64(&bus_updates);
    r.U64(&c2c_transfers);
    return r.U64(&remote_transactions);
  }
};

// Snoop requests delivered *to* a cache stack by the fabric.
enum class SnoopType : std::uint8_t {
  kRead,        // another CPU reads: downgrade per protocol, supply if dirty
  kInvalidate,  // another CPU wants exclusivity: drop the line
  kUpdate,      // Dragon BusUpd: accept the updater's data, stay shared-clean
};

// What the snooped stack reports back.
enum class SnoopReply : std::uint8_t { kMiss, kHit, kHitM };

class CacheStack;  // defined in cache_stack.h

// Interface between a CPU's private cache stack and the system fabric
// (snooping bus or NUMA directory).
class CoherenceFabric {
 public:
  virtual ~CoherenceFabric() = default;

  // Issues a transaction on behalf of `cpu` for the 128-B line at
  // `line_addr`, at simulated time `now`. Updates global and per-CPU event
  // counts and performs any required snoops/invalidations of other stacks.
  virtual FabricResult Request(CpuId cpu, BusOp op, Addr line_addr,
                               Cycle now) = 0;

  // Registers the stacks the fabric coordinates (index = CpuId).
  virtual void AttachStacks(std::vector<CacheStack*> stacks) = 0;

  // Replacement hint: `cpu` silently dropped a clean line (no data
  // transfer). Lets a directory keep its sharer/owner bits exact; the
  // snooping bus ignores it.
  virtual void EvictNotify(CpuId cpu, Addr line_addr) {
    (void)cpu;
    (void)line_addr;
  }

  // Aggregate transaction counters (all CPUs).
  virtual const BusEventCounts& TotalCounts() const = 0;
  // Per-requesting-CPU counters (what that CPU's HPM sees).
  virtual const BusEventCounts& CpuCounts(CpuId cpu) const = 0;

  // Total cycles requests spent queued behind busy shared resources — the
  // observability registry's `bus.occupancy` metric. Fabrics without a
  // contention model report 0.
  virtual Cycle queue_cycles() const { return 0; }

  virtual void ResetCounts() = 0;

  // Checkpointing. Default no-ops cover fabrics with no serializable state
  // of their own (the verify::CoherenceChecker wrapper delegates instead).
  virtual void SaveState(support::StateWriter& w) const { (void)w; }
  virtual bool RestoreState(support::StateReader& r) {
    (void)r;
    return true;
  }
};

}  // namespace cobra::mem
