#include "mem/main_memory.h"

#include <cstring>

namespace cobra::mem {

MainMemory::MainMemory(std::size_t bytes, std::size_t page_bytes)
    : data_(static_cast<std::uint8_t*>(std::calloc(bytes, 1))),
      size_(bytes),
      page_bytes_(page_bytes) {
  COBRA_CHECK_MSG(bytes == 0 || data_ != nullptr,
                  "simulated memory allocation failed");
  COBRA_CHECK_MSG(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0,
                  "page size must be a power of two");
  page_home_.assign((bytes + page_bytes - 1) / page_bytes, -1);
}

int MainMemory::TouchPage(Addr addr, int node) {
  CheckRange(addr, 1);
  auto& home = page_home_[addr / page_bytes_];
  if (home < 0) home = static_cast<std::int16_t>(node);
  return home;
}

int MainMemory::HomeNode(Addr addr) const {
  CheckRange(addr, 1);
  return page_home_[addr / page_bytes_];
}

void MainMemory::ResetPageMap() {
  std::fill(page_home_.begin(), page_home_.end(), -1);
}

void MainMemory::PlaceRange(Addr begin, Addr end, int node) {
  COBRA_CHECK(begin <= end && end <= size_);
  for (Addr page = begin / page_bytes_;
       page <= (end == begin ? begin : end - 1) / page_bytes_; ++page) {
    page_home_[page] = static_cast<std::int16_t>(node);
  }
}

}  // namespace cobra::mem
