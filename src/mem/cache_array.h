// Set-associative tag array with LRU replacement.
//
// Purely a timing/state model: no data is stored (functional state lives in
// MainMemory). Each line carries a MESI state, a `ready_at` cycle (nonzero
// while an in-flight fill — typically a prefetch — has reserved the line but
// the data has not yet arrived), and prefetch-usefulness bookkeeping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mem/coherence.h"
#include "support/check.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::mem {

class CacheArray {
 public:
  struct Line {
    Addr line_addr = 0;     // full line-aligned address (tag + set combined)
    Mesi state = Mesi::kI;
    Cycle ready_at = 0;     // fill completion time (0 = long since ready)
    std::uint64_t lru = 0;
    bool prefetched = false;  // brought in by lfetch...
    bool referenced = false;  // ...and later touched by a demand access
    // Set when a remote read downgrades this cache's Modified copy to
    // Shared. An lfetch.excl that hits such a line may re-acquire
    // exclusivity (the line is part of this thread's *written* working
    // set); read-shared lines never carry the bit, so exclusive prefetch
    // hints cannot steal data this thread only reads.
    bool was_dirty_here = false;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;   // "writebacks" out of this level
    std::uint64_t useless_prefetch_evictions = 0;
  };

  CacheArray(std::size_t size_bytes, std::size_t line_bytes,
             int associativity);

  std::size_t line_bytes() const { return line_bytes_; }
  std::size_t num_sets() const { return sets_; }
  int associativity() const { return assoc_; }

  Addr LineAddrOf(Addr addr) const { return addr & ~(line_bytes_ - 1); }

  // Looks the line up without touching LRU (used by snoops). Returns
  // nullptr on miss. Inline with a per-set way hint: the demand path and
  // the engine's fabric probes call this for every memory access.
  Line* Probe(Addr addr) {
    const Addr line_addr = LineAddrOf(addr);
    const std::size_t set = SetOf(addr);
    Line* base = &lines_[set * static_cast<std::size_t>(assoc_)];
    // Way-hint fast path: a line can live in at most one way, so finding
    // it at the hinted way is exactly the scan's answer.
    Line& hinted = base[mru_way_[set]];
    if (hinted.state != Mesi::kI && hinted.line_addr == line_addr) {
      return &hinted;
    }
    for (int way = 0; way < assoc_; ++way) {
      Line& line = base[way];
      if (line.state != Mesi::kI && line.line_addr == line_addr) {
        mru_way_[set] = static_cast<std::uint8_t>(way);
        return &line;
      }
    }
    return nullptr;
  }
  const Line* Probe(Addr addr) const {
    return const_cast<CacheArray*>(this)->Probe(addr);
  }

  // Looks the line up and refreshes LRU on hit.
  Line* Touch(Addr addr) {
    Line* line = Probe(addr);
    if (line != nullptr) {
      line->lru = ++lru_clock_;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    return line;
  }

  // Touch() split apart for callers that already hold a Probe() result
  // (the cache stack's fused Try* accesses): TouchHit refreshes LRU and
  // counts the hit for a line this array returned from Probe; CountMiss
  // records the lookup miss a failed Touch would have counted.
  void TouchHit(Line* line) {
    line->lru = ++lru_clock_;
    ++stats_.hits;
  }
  void CountMiss() { ++stats_.misses; }

  // Inserts (or re-uses) the line, evicting the LRU victim if the set is
  // full. The victim (if any, and valid) is copied to `*victim` and
  // `victim_valid` set. Returns the inserted line.
  Line* Insert(Addr addr, Mesi state, Cycle ready_at, Line* victim,
               bool* victim_valid);

  // Drops the line if present (no writeback here; the stack handles that).
  void Invalidate(Addr addr);

  // Invalidate every line (between experiments).
  void Clear();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Iterates over all valid lines (testing/debug).
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (const Line& line : lines_) {
      if (line.state != Mesi::kI) fn(line);
    }
  }

  // Geometry is config-derived and must match at restore; the mru_way_
  // lookup hint is host-only and simply reset (any value is correct).
  void SaveState(support::StateWriter& w) const {
    w.U64(static_cast<std::uint64_t>(sets_));
    w.U32(static_cast<std::uint32_t>(assoc_));
    for (const Line& line : lines_) {
      w.U64(line.line_addr);
      w.U8(static_cast<std::uint8_t>(line.state));
      w.U64(line.ready_at);
      w.U64(line.lru);
      w.Bool(line.prefetched);
      w.Bool(line.referenced);
      w.Bool(line.was_dirty_here);
    }
    w.U64(lru_clock_);
    w.U64(stats_.hits);
    w.U64(stats_.misses);
    w.U64(stats_.evictions);
    w.U64(stats_.dirty_evictions);
    w.U64(stats_.useless_prefetch_evictions);
  }
  bool RestoreState(support::StateReader& r) {
    std::uint64_t sets = 0;
    std::uint32_t assoc = 0;
    r.U64(&sets);
    r.U32(&assoc);
    if (!r.Ok() || sets != sets_ || assoc != static_cast<std::uint32_t>(assoc_)) {
      return false;
    }
    for (Line& line : lines_) {
      std::uint8_t state = 0;
      r.U64(&line.line_addr);
      r.U8(&state);
      r.U64(&line.ready_at);
      r.U64(&line.lru);
      r.Bool(&line.prefetched);
      r.Bool(&line.referenced);
      r.Bool(&line.was_dirty_here);
      if (state > static_cast<std::uint8_t>(Mesi::kSc)) return false;
      line.state = static_cast<Mesi>(state);
    }
    r.U64(&lru_clock_);
    r.U64(&stats_.hits);
    r.U64(&stats_.misses);
    r.U64(&stats_.evictions);
    r.U64(&stats_.dirty_evictions);
    r.U64(&stats_.useless_prefetch_evictions);
    if (!r.Ok()) return false;
    std::fill(mru_way_.begin(), mru_way_.end(), 0);
    return true;
  }

 private:
  std::size_t SetOf(Addr addr) const {
    return (addr >> line_shift_) & (sets_ - 1);
  }

  std::size_t line_bytes_;
  int line_shift_;  // log2(line_bytes_): division is too hot for SetOf
  std::size_t sets_;
  int assoc_;
  std::vector<Line> lines_;  // sets_ * assoc_, set-major
  // Per-set most-recently-hit way. A pure host-side lookup hint: Probe
  // checks this way first and only falls back to the full associativity
  // scan on a hint miss, so the ~99%-hit demand path and the engine's
  // *NeedsFabric probes cost one tag compare instead of `assoc_`. Carries
  // no simulated state — hits find the same unique line with the same
  // LRU/stats effects the scan would.
  std::vector<std::uint8_t> mru_way_;  // sets_ entries
  std::uint64_t lru_clock_ = 0;
  Stats stats_;
};

}  // namespace cobra::mem
