// Memory-system configuration and the two machine presets used in the
// paper's evaluation: a 4-way Itanium 2 SMP server (MESI snooping
// front-side bus) and an SGI Altix cc-NUMA system (2-CPU nodes, directory
// coherence over a fat-tree interconnect, first-touch page placement).
//
// Latencies are in CPU cycles and follow the figures the paper itself
// quotes for Itanium 2: 12-cycle L3 hits, 120-150-cycle memory loads, and
// coherent-miss latencies exceeding 180-200 cycles.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/protocol.h"
#include "support/simtypes.h"

namespace cobra::mem {

struct CacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 0;
  int associativity = 1;
};

struct MemConfig {
  // Per-CPU private hierarchy (Itanium 2 Madison geometry).
  CacheGeometry l1{16 * 1024, 64, 4};      // L1D: write-through, int only
  CacheGeometry l2{256 * 1024, 128, 8};    // unified, write-back
  CacheGeometry l3{3 * 1024 * 1024, 128, 12};

  // Hit latencies (cycles).
  Cycle l1_hit_latency = 1;
  Cycle l2_hit_latency = 6;    // also the FP-load hit latency (FP bypasses L1)
  Cycle l3_hit_latency = 12;   // the paper's DEAR filter threshold
  Cycle store_hit_latency = 1; // store-buffer drain cost for an M/E hit

  // Backing memory and coherence latencies (cycles).
  Cycle memory_latency = 130;        // plain memory load (SMP: 120-150)
  Cycle hitm_latency = 190;          // dirty cache-to-cache transfer (SMP)
  Cycle upgrade_latency = 120;       // S->M invalidation round: the BIL
                                     // transaction still needs the full
                                     // address/snoop/response phases
  Cycle forward_latency = 90;        // clean cache-to-cache supply (MESIF F
                                     // sourcing, Dragon update delivery):
                                     // cheaper than memory, cheaper than a
                                     // dirty HITM intervention

  // Coherence protocol the fabric and cache stacks speak. The presets
  // apply the COBRA_PROTOCOL environment knob; assignments made after
  // preset construction override it.
  Protocol protocol = Protocol::kMesi;

  // Core issue width in bundles per cycle (Itanium 2 issues two bundles).
  int issue_width_bundles = 2;

  // Bus occupancy (cycles the shared bus is busy per transaction). A 128-B
  // line at 6.4 GB/s is ~20 ns = ~30 CPU cycles at 1.5 GHz.
  Cycle bus_data_occupancy = 28;
  Cycle bus_addr_occupancy = 8;

  // NUMA parameters (used only by the directory fabric).
  int cpus_per_node = 2;
  Cycle link_hop_latency = 75;       // one interconnect traversal
  std::size_t page_bytes = 16 * 1024;

  // Main memory capacity (flat simulated physical address space for data).
  std::size_t memory_bytes = 256u * 1024 * 1024;

  // Fraction of a store's memory-system latency charged to the core
  // (approximates store buffering; 1.0 = fully exposed).
  double store_stall_fraction = 1.0;

  // Optional store/write buffer (0 = off, the paper configuration). When
  // enabled, up to this many store hits to writable (M/E) lines retire for
  // free; the buffered drain cost is charged in bulk to the next fabric
  // transaction the stack issues (drain-before-commit), so fabric-visible
  // ordering — and therefore the serial ≡ parallel fingerprint — is
  // unchanged. Only the store_hit_latency component is bufferable; stores
  // that need the fabric are never buffered.
  int store_buffer_entries = 0;

  // Cycles of load latency the core hides through software pipelining /
  // compiler scheduling (the whole point of the SWP kernels): only latency
  // beyond this stalls the core. L2 hits are fully hidden, which matches
  // rotating-register DAXPY sustaining ~1 iteration per II on Itanium 2.
  // DEAR still records the *full* miss latency, as the hardware does.
  Cycle load_hide_cycles = 6;

  // If true, lines brought in by lfetch.excl are installed dirty in L2, so
  // a later eviction writes them back even if no store ever hit them — one
  // explanation for the extra L2 writebacks the paper observes with .excl
  // at large working sets (Figure 3b, 2 MB). Installing clean (default)
  // matches MESI E-state semantics; the dirty-install variant is kept as
  // an ablation knob.
  bool excl_prefetch_installs_dirty = false;
};

// The 4-way Itanium 2 SMP server from Section 5.1.
MemConfig ItaniumSmpConfig();

// The SGI Altix cc-NUMA system from Section 5.1 (8 CPUs used in the paper;
// node structure and link latencies set here, CPU count set by the machine).
MemConfig AltixNumaConfig();

}  // namespace cobra::mem
