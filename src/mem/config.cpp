#include "mem/config.h"

namespace cobra::mem {

MemConfig ItaniumSmpConfig() {
  MemConfig cfg;
  // Defaults are the SMP server; stated explicitly where the two systems
  // differ so the presets read as a specification.
  cfg.memory_latency = 130;
  cfg.hitm_latency = 190;
  cfg.forward_latency = 90;
  cfg.link_hop_latency = 0;  // single bus, no interconnect hops
  cfg.protocol = ProtocolFromEnv(Protocol::kMesi);
  return cfg;
}

MemConfig AltixNumaConfig() {
  MemConfig cfg;
  cfg.cpus_per_node = 2;
  cfg.memory_latency = 145;   // local memory on Altix is slightly slower
  cfg.hitm_latency = 210;     // dirty transfer within a node
  cfg.upgrade_latency = 140;
  cfg.forward_latency = 100;
  cfg.link_hop_latency = 75;  // remote traffic pays 2-3 traversals on top
  cfg.protocol = ProtocolFromEnv(Protocol::kMesi);
  return cfg;
}

}  // namespace cobra::mem
