#include "mem/protocol.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

namespace cobra::mem {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kMesi: return "mesi";
    case Protocol::kMoesi: return "moesi";
    case Protocol::kDragon: return "dragon";
    case Protocol::kMesif: return "mesif";
  }
  return "?";
}

bool ParseProtocol(const char* text, Protocol* out) {
  if (text == nullptr) return false;
  char lower[8] = {};
  std::size_t n = std::strlen(text);
  if (n == 0 || n >= sizeof(lower)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
  }
  for (Protocol p : {Protocol::kMesi, Protocol::kMoesi, Protocol::kDragon,
                     Protocol::kMesif}) {
    if (std::strcmp(lower, ProtocolName(p)) == 0) {
      *out = p;
      return true;
    }
  }
  return false;
}

Protocol ProtocolFromEnv(Protocol fallback) {
  Protocol p = fallback;
  ParseProtocol(std::getenv("COBRA_PROTOCOL"), &p);
  return p;
}

const CoherencePolicy& CoherencePolicy::For(Protocol p) {
  static const CoherencePolicy mesi(Protocol::kMesi,
                                    /*update_based=*/false,
                                    StoreSharedAction::kReadInvalidate,
                                    /*dirty_share_on_read=*/false,
                                    /*clean_forwarding=*/false, CohState::kS);
  static const CoherencePolicy moesi(Protocol::kMoesi,
                                     /*update_based=*/false,
                                     StoreSharedAction::kUpgrade,
                                     /*dirty_share_on_read=*/true,
                                     /*clean_forwarding=*/false, CohState::kS);
  static const CoherencePolicy dragon(Protocol::kDragon,
                                      /*update_based=*/true,
                                      StoreSharedAction::kUpdate,
                                      /*dirty_share_on_read=*/true,
                                      /*clean_forwarding=*/false,
                                      CohState::kSc);
  static const CoherencePolicy mesif(Protocol::kMesif,
                                     /*update_based=*/false,
                                     StoreSharedAction::kReadInvalidate,
                                     /*dirty_share_on_read=*/false,
                                     /*clean_forwarding=*/true, CohState::kF);
  switch (p) {
    case Protocol::kMesi: return mesi;
    case Protocol::kMoesi: return moesi;
    case Protocol::kDragon: return dragon;
    case Protocol::kMesif: return mesif;
  }
  return mesi;
}

CohState CoherencePolicy::SnoopReadNext(CohState s) const {
  if (!CohValid(s)) return CohState::kI;
  switch (protocol_) {
    case Protocol::kMesi:
      return CohState::kS;
    case Protocol::kMoesi:
      // Dirty data stays here as Owned; clean holders drop to plain S.
      return CohDirty(s) ? CohState::kO : CohState::kS;
    case Protocol::kMesif:
      // The requester always becomes the new forwarder, so whatever we
      // held (F included) demotes to S — preserving exactly-one-F.
      return CohState::kS;
    case Protocol::kDragon:
      return CohDirty(s) ? CohState::kSm : CohState::kSc;
  }
  return CohState::kS;
}

CohState CoherencePolicy::SnoopUpdateNext(CohState s) const {
  if (!CohValid(s)) return CohState::kI;
  // The remote updater becomes the one Sm owner; every other copy —
  // including a previous Sm handing ownership over — is now clean-shared.
  return CohState::kSc;
}

bool CoherencePolicy::LegalState(CohState s) const {
  switch (s) {
    case CohState::kI:
    case CohState::kE:
    case CohState::kM:
      return true;
    case CohState::kS:
      return protocol_ != Protocol::kDragon;
    case CohState::kO:
      return protocol_ == Protocol::kMoesi;
    case CohState::kF:
      return protocol_ == Protocol::kMesif;
    case CohState::kSm:
    case CohState::kSc:
      return protocol_ == Protocol::kDragon;
  }
  return false;
}

}  // namespace cobra::mem
