// Per-CPU private cache hierarchy: L1D / L2 / L3, coherent at 128-byte
// (L2/L3 line) granularity, inclusive (L1 ⊆ L2 ⊆ L3). The coherence
// protocol (MESI/MOESI/Dragon/MESIF) is a CoherencePolicy picked by
// MemConfig::protocol; under the default MESI every path below behaves
// exactly as the original MESI-only implementation did.
//
// Itanium 2 idiosyncrasies modelled because COBRA depends on them:
//   * FP loads/stores bypass L1D and are served from L2 (so the DAXPY
//     kernel's ldfd latency ladder is 6 / 12 / ~130 / ~190 cycles);
//   * lfetch is non-binding: it never stalls the core, fills L2+L3 (nt1),
//     and with `.excl` requests the line in Exclusive state (RFO);
//   * ld.bias requests exclusivity on an integer load;
//   * lines being filled carry a `ready_at` cycle — a demand access that
//     arrives before an in-flight prefetch completes stalls only for the
//     remainder (partial prefetch coverage).
//
// The stack is a timing model: functional data lives in MainMemory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "mem/cache_array.h"
#include "mem/coherence.h"
#include "mem/config.h"
#include "obs/trace.h"

namespace cobra::mem {

class CacheStack {
 public:
  CacheStack(CpuId cpu, const MemConfig& cfg);

  void AttachFabric(CoherenceFabric* fabric) { fabric_ = fabric; }

  // Timeline sink for coherence transactions (nullptr disables). Safe even
  // under the parallel engine: FabricRequest only runs at commit barriers,
  // where stacks are serviced one at a time in canonical order.
  void AttachTrace(obs::TraceSink* trace, int trace_pid) {
    trace_ = trace;
    trace_pid_ = trace_pid;
  }

  CpuId cpu() const { return cpu_; }
  const MemConfig& config() const { return cfg_; }

  // Where a demand access was ultimately served from.
  enum class Source : std::uint8_t {
    kL1,
    kL2,
    kL3,
    kMemory,    // plain memory transaction (no other cache involved)
    kCoherent,  // another cache held the line Modified (HITM path)
    kRemote,    // NUMA: crossed the interconnect
  };

  struct AccessResult {
    Cycle latency = 0;
    Source source = Source::kL1;
  };

  // Demand accesses. `fp` routes around L1; `bias` is the ld.bias hint.
  AccessResult Load(Addr addr, int size, bool fp, bool bias, Cycle now);
  AccessResult Store(Addr addr, int size, Cycle now);

  // Non-binding prefetch (lfetch). Never stalls the core.
  void Prefetch(Addr addr, bool excl, Cycle now);

  // --- Fused probe + access -------------------------------------------------
  // One-pass combination of a *NeedsFabric probe and the access itself, for
  // the core's hot dispatch path (probe-then-access walks every tag array
  // twice). The decision phase is pure (Probe only updates the host-side
  // way hint); if the access would reach the coherence fabric the call
  // returns false with NO simulated side effects, and the caller stops the
  // segment exactly as it would on a probe hit. Otherwise the commit phase
  // replays the corresponding access's fabric-free path effect-for-effect —
  // same LRU updates, hit/miss counts, fills and writeback counts — so a
  // fused run is bit-identical to probe + Load/Store/Prefetch.
  // Defined inline below the class: the superblock executor calls these for
  // every memory step, so the whole hit path must inline like Probe does.
  bool TryLoad(Addr addr, int size, bool fp, bool bias, Cycle now,
               AccessResult* out);
  bool TryStore(Addr addr, int size, Cycle now, AccessResult* out);
  bool TryPrefetch(Addr addr, bool excl, Cycle now);

  // --- Engine probes --------------------------------------------------------
  // Exact, side-effect-free predicates for whether the corresponding access
  // would issue a coherence-fabric transaction. The execution engines
  // (machine/engine.h) use them to stop a core at the last core-private
  // instruction of a segment, so that every fabric transaction is committed
  // in canonical (cycle, cpu-id) order. Each probe mirrors its access path
  // decision-for-decision; set_fabric_guard() below enforces the contract.
  bool LoadNeedsFabric(Addr addr, bool fp, bool bias) const;
  bool StoreNeedsFabric(Addr addr) const;
  bool PrefetchNeedsFabric(Addr addr, bool excl, Cycle now) const;

  // While set, any fabric transaction from this stack aborts the simulation
  // (the engines set it around core-private segments; a trip means a probe
  // above fell out of sync with its access path). Raising the guard also
  // starts a fresh probe-memo generation (see ProbeMemo below). If the
  // 64-bit generation ever wraps (a soak run raising the guard 2^64 times),
  // every entry is cleared and the counter restarts at 1: entries tagged
  // under the old numbering could otherwise alias the recycled generation
  // and resurface stale facts.
  void set_fabric_guard(bool on) {
    fabric_guard_ = on;
    if (on && ++probe_memo_.gen == 0) {
      probe_memo_.entries.fill({});
      probe_memo_.gen = 1;  // 0 marks never-written entries
    }
  }

  // Fabric-initiated snoop of this stack.
  SnoopReply Snoop(Addr line_addr, SnoopType type);

  // --- Introspection (tests, COBRA detectors) ------------------------------
  Mesi LineState(Addr addr) const;     // state in L3 (kI if absent)
  const CoherencePolicy& policy() const { return *policy_; }
  // Non-destructive dirty probe (the fabric's first snoop phase for
  // best-effort exclusive prefetches, and MESIF's forwarder scan).
  bool HoldsDirty(Addr addr) const { return CohDirty(LineState(addr)); }
  bool PresentInL2(Addr addr) const { return l2_.Probe(addr) != nullptr; }
  bool PresentInL1(Addr addr) const { return l1_.Probe(addr) != nullptr; }

  struct Stats {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t prefetch_bus_requests = 0;   // prefetches that missed
    std::uint64_t prefetch_upgrades = 0;       // excl prefetch of an S line
    std::uint64_t l2_writebacks = 0;           // dirty L2 victims (to L3)
    std::uint64_t fabric_writebacks = 0;       // dirty L3 victims (to memory)
    std::uint64_t store_upgrades = 0;          // stores that needed S->M
    std::uint64_t store_updates = 0;           // Dragon: stores that BusUpd'd
    std::uint64_t snoop_downgrades = 0;        // M/E -> S from remote reads
    std::uint64_t snoop_invalidations = 0;     // lines lost to remote writes
    std::uint64_t snoop_updates = 0;           // Dragon: updates received
    std::uint64_t hitm_supplies = 0;           // dirty lines we supplied
    std::uint64_t buffered_stores = 0;         // store-buffer free retires
  };
  const Stats& stats() const { return stats_; }
  const CacheArray& l1() const { return l1_; }
  const CacheArray& l2() const { return l2_; }
  const CacheArray& l3() const { return l3_; }

  // Test-only fault injection: forces the MESI state of an already-cached
  // line in L3 (and L2, keeping the levels in lockstep) without any fabric
  // traffic, so checker tests can seed protocol violations. kI drops the
  // copy outright.
  void TestOnlyCorruptLine(Addr addr, Mesi state) {
    if (auto* line = l3_.Probe(addr)) line->state = state;
    if (auto* line = l2_.Probe(addr)) line->state = state;
  }

  // Mutable L2 access so checker tests can desynchronize a single level.
  CacheArray& TestOnlyL2() { return l2_; }

  // Test-only: plant / read the probe-memo generation so the wrap-around
  // reset in set_fabric_guard can be unit-tested without 2^64 toggles.
  void TestOnlySetProbeMemoGeneration(std::uint64_t gen) {
    probe_memo_.gen = gen;
  }
  std::uint64_t TestOnlyProbeMemoGeneration() const {
    return probe_memo_.gen;
  }

  // Demand + prefetch miss totals as the Itanium 2 HPM events report them.
  // Coherent write misses (stores to Shared lines that must be re-fetched
  // with ownership) count as L2/L3 misses, as on the hardware.
  std::uint64_t L2Misses() const {
    return l2_.stats().misses + coherent_write_misses_;
  }
  std::uint64_t L3Misses() const {
    return l3_.stats().misses + coherent_write_misses_;
  }

  // Drops all cached state and statistics (between experiments).
  void Reset();

  // Checkpointing: the three tag arrays, demand/coherence statistics and
  // the store-buffer occupancy. The probe memo is host-only — raising the
  // fabric guard starts a fresh generation, so stale facts saved before a
  // restore can never resurface.
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

 private:
  Addr CohLine(Addr addr) const { return l2_.LineAddrOf(addr); }

  // All fabric traffic funnels through these two (guard enforcement).
  // FabricRequest also drains the store buffer: any pending bufferable
  // store-hit cost is charged to this transaction's latency before it
  // commits, so buffering never reorders fabric-visible events.
  FabricResult FabricRequest(BusOp op, Addr line_addr, Cycle now);
  void FabricEvictNotify(Addr line_addr);

  // A store found the line resident but not writable: dispatch on the
  // policy's StoreSharedAction (read-invalidate / upgrade-in-place /
  // update-broadcast). `wait` is any in-flight-fill wait already accrued;
  // `in_l2` says whether the line currently sits in L2 (if not, upgrading
  // actions refill L2 from L3).
  AccessResult StoreToShared(Addr addr, Cycle wait, bool in_l2, Cycle now);

  // Store-buffer fast path: returns true (and counts the store as buffered)
  // if a writable-line store hit may retire without its store_hit_latency.
  bool BufferStoreHit() {
    if (pending_stores_ >= cfg_.store_buffer_entries) return false;
    ++pending_stores_;
    ++stats_.buffered_stores;
    return true;
  }

  // Installs a line into L3 (evicting/writing back as needed) and into L2.
  // Returns the L2 line.
  CacheArray::Line* Fill(Addr addr, Mesi state, Cycle ready_at,
                         bool prefetched, Cycle now);
  void FillL1(Addr addr, Cycle ready_at);
  void SetStateAll(Addr addr, Mesi state);
  void InvalidateAll(Addr addr);
  void EvictVictim(const CacheArray::Line& victim, Cycle now);

  static Source ClassifySource(const FabricResult& r);

  CpuId cpu_;
  const MemConfig cfg_;
  const CoherencePolicy* policy_;
  CoherenceFabric* fabric_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  int trace_pid_ = 0;
  CacheArray l1_;
  CacheArray l2_;
  CacheArray l3_;
  Stats stats_;
  std::uint64_t coherent_write_misses_ = 0;
  int pending_stores_ = 0;  // store-buffer occupancy (drained on fabric use)
  bool fabric_guard_ = false;

  // Probe memo: a generation-tagged, direct-mapped cache of facts already
  // proven about coherence lines during the current guarded segment. Both
  // facts are monotone within a segment — the core's own (local) activity
  // keeps a line present in L2∪L3 (L2 victims stay in L3; L3 evictions only
  // happen on fabric fills) and never downgrades M/E (stores go E→M; remote
  // snoops only run between segments, when the generation is bumped) — so a
  // memo hit can skip the full tag scans the probes would otherwise repeat
  // for every access to a hot line.
  //   kMemoPresent: line in L2∪L3 — plain/fp loads and non-exclusive
  //     prefetches are fabric-free.
  //   kMemoOwned: line in M or E — bias loads, stores and exclusive
  //     prefetches are fabric-free as well (implies kMemoPresent).
  static constexpr std::uint8_t kMemoPresent = 1;
  static constexpr std::uint8_t kMemoOwned = 2;
  struct ProbeMemo {
    static constexpr std::size_t kEntries = 256;
    struct Entry {
      Addr line = 0;
      std::uint64_t gen = 0;
      std::uint8_t safe = 0;
    };
    std::array<Entry, kEntries> entries{};
    std::uint64_t gen = 1;
  };
  std::size_t MemoIndex(Addr line_addr) const {
    return (line_addr >> memo_shift_) & (ProbeMemo::kEntries - 1);
  }
  bool MemoHas(Addr line_addr, std::uint8_t bit) const {
    if (!fabric_guard_) return false;  // memo is only trusted inside a segment
    const ProbeMemo::Entry& e = probe_memo_.entries[MemoIndex(line_addr)];
    return e.gen == probe_memo_.gen && e.line == line_addr &&
           (e.safe & bit) != 0;
  }
  void MemoSet(Addr line_addr, std::uint8_t bits) const {
    if (!fabric_guard_) return;  // memo is only trusted inside a segment
    ProbeMemo::Entry& e = probe_memo_.entries[MemoIndex(line_addr)];
    if (e.gen == probe_memo_.gen && e.line == line_addr) {
      e.safe |= bits;
    } else {
      e = {line_addr, probe_memo_.gen, bits};
    }
  }
  mutable ProbeMemo probe_memo_;
  int memo_shift_ = 0;  // log2(coherence line size)
};

// --- Fused probe + access (inline: per-instruction hot path) ----------------

inline bool CacheStack::TryLoad(Addr addr, int size, bool fp, bool bias,
                                Cycle now, AccessResult* out) {
  (void)size;
  // Decision phase: pure, mirroring LoadNeedsFabric decision-for-decision
  // (the memo is not consulted — it answers yes/no but the commit phase
  // below needs the probed lines themselves).
  CacheArray::Line* l1_line = fp ? nullptr : l1_.Probe(addr);
  CacheArray::Line* l2_line = nullptr;
  CacheArray::Line* l3_line = nullptr;
  if (l1_line == nullptr) {
    l2_line = l2_.Probe(addr);
    if (l2_line != nullptr) {
      if (bias && !CohWritable(l2_line->state) && policy_->bias_upgrades()) {
        return false;  // background ownership upgrade
      }
    } else {
      l3_line = l3_.Probe(addr);
      if (l3_line == nullptr) return false;  // full miss
    }
  }

  // Commit phase: exactly Load()'s fabric-free paths.
  ++stats_.loads;
  if (l1_line != nullptr) {
    l1_.TouchHit(l1_line);
    const Cycle wait = l1_line->ready_at > now ? l1_line->ready_at - now : 0;
    *out = {cfg_.l1_hit_latency + wait, Source::kL1};
    return true;
  }
  if (!fp) l1_.CountMiss();
  if (l2_line != nullptr) {
    l2_.TouchHit(l2_line);
    l2_line->referenced = true;
    if (auto* outer = l3_.Probe(addr)) outer->referenced = true;
    const Cycle wait = l2_line->ready_at > now ? l2_line->ready_at - now : 0;
    if (!fp) FillL1(addr, now + cfg_.l2_hit_latency);
    *out = {cfg_.l2_hit_latency + wait, Source::kL2};
    return true;
  }
  l2_.CountMiss();
  l3_.TouchHit(l3_line);
  l3_line->referenced = true;
  const Cycle wait = l3_line->ready_at > now ? l3_line->ready_at - now : 0;
  CacheArray::Line victim;
  bool victim_valid = false;
  auto* refill =
      l2_.Insert(CohLine(addr), l3_line->state, 0, &victim, &victim_valid);
  if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
  refill->referenced = true;
  if (!fp) FillL1(addr, now + cfg_.l3_hit_latency);
  *out = {cfg_.l3_hit_latency + wait, Source::kL3};
  return true;
}

inline bool CacheStack::TryStore(Addr addr, int size, Cycle now,
                                 AccessResult* out) {
  (void)size;
  // Decision phase: pure, mirroring StoreNeedsFabric (only M/E hits drain
  // locally — every other resident state needs invalidation, upgrade or
  // update traffic first, whichever the protocol prescribes).
  CacheArray::Line* l2_line = l2_.Probe(addr);
  CacheArray::Line* l3_line = nullptr;
  if (l2_line != nullptr) {
    if (!CohWritable(l2_line->state)) return false;
  } else {
    l3_line = l3_.Probe(addr);
    if (l3_line == nullptr || !CohWritable(l3_line->state)) return false;
  }

  // Commit phase: exactly Store()'s fabric-free paths (M/E hits).
  ++stats_.stores;
  if (l2_line != nullptr) {
    l2_.TouchHit(l2_line);
    l2_line->referenced = true;
    if (auto* outer = l3_.Probe(addr)) outer->referenced = true;
    const Cycle wait = l2_line->ready_at > now ? l2_line->ready_at - now : 0;
    if (l2_line->state == Mesi::kE) SetStateAll(addr, Mesi::kM);
    const Cycle hit_cost = BufferStoreHit() ? 0 : cfg_.store_hit_latency;
    *out = {hit_cost + wait, Source::kL2};
    return true;
  }
  l2_.CountMiss();
  l3_.TouchHit(l3_line);
  l3_line->referenced = true;
  const Cycle wait = l3_line->ready_at > now ? l3_line->ready_at - now : 0;
  SetStateAll(addr, Mesi::kM);
  CacheArray::Line victim;
  bool victim_valid = false;
  auto* refill = l2_.Insert(CohLine(addr), Mesi::kM, 0, &victim, &victim_valid);
  if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
  refill->referenced = true;
  *out = {cfg_.l3_hit_latency + wait, Source::kL3};
  return true;
}

inline bool CacheStack::TryPrefetch(Addr addr, bool excl, Cycle now) {
  const Addr line = CohLine(addr);
  // Decision phase: pure, mirroring PrefetchNeedsFabric (an in-flight fill
  // absorbs the prefetch; only an .excl upgrade of a previously-dirty
  // Shared line or a full miss reaches the fabric).
  CacheArray::Line* l2_line = l2_.Probe(line);
  CacheArray::Line* l3_line = nullptr;
  const bool excl_rfo = excl && policy_->excl_prefetch_rfo();
  if (l2_line != nullptr) {
    if (l2_line->ready_at <= now && excl_rfo &&
        !CohWritable(l2_line->state) && l2_line->was_dirty_here) {
      return false;
    }
  } else {
    l3_line = l3_.Probe(line);
    if (l3_line == nullptr) return false;
    if (l3_line->ready_at <= now && excl_rfo &&
        !CohWritable(l3_line->state) && l3_line->was_dirty_here) {
      return false;
    }
  }

  // Commit phase: exactly Prefetch()'s fabric-free paths.
  ++stats_.prefetches;
  if (l2_line != nullptr) {
    l2_.TouchHit(l2_line);
    return true;  // present (or fill in flight): nothing else to do
  }
  l2_.CountMiss();
  l3_.TouchHit(l3_line);
  if (l3_line->ready_at > now) return true;  // fill in flight: MSHR merge
  CacheArray::Line victim;
  bool victim_valid = false;
  auto* staged = l2_.Insert(line, l3_line->state, now + cfg_.l3_hit_latency,
                            &victim, &victim_valid);
  if (victim_valid && CohDirty(victim.state)) ++stats_.l2_writebacks;
  staged->prefetched = true;
  staged->referenced = false;
  return true;
}

}  // namespace cobra::mem
