// Directory-based cc-NUMA coherence fabric — the SGI Altix model.
//
// CPUs are grouped into 2-CPU nodes; every 128-B line has a *home node*
// determined by its page's first-touch placement (MainMemory's page table).
// A full-map directory at the home tracks the owner (E/M holder) and sharer
// set, and forwards/invalidates precisely — no broadcast snooping.
//
// Timing: a request queues on the requester node's bus, traverses the
// fat-tree interconnect to the home (2 link hops via one switch level when
// the nodes differ), queues on the home node's memory controller, possibly
// takes a third leg to a remote owner, and returns.  Remote coherent misses
// therefore cost far more than on the SMP bus, which is exactly why the
// paper measures much larger COBRA gains on the Altix (Fig. 5b vs 5a).
//
// Simplification vs real Altix hardware (documented in DESIGN.md): requests
// always consult the home directory, even when a same-node peer could have
// supplied the line over the shared front-side bus.  Same-node traffic is
// still cheap because the interconnect legs collapse to zero when
// requester, home, and owner share a node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"

namespace cobra::mem {

class DirectoryFabric : public CoherenceFabric {
 public:
  DirectoryFabric(const MemConfig& cfg, MainMemory* memory, int num_cpus);

  void AttachStacks(std::vector<CacheStack*> stacks) override;

  FabricResult Request(CpuId cpu, BusOp op, Addr line_addr,
                       Cycle now) override;

  void EvictNotify(CpuId cpu, Addr line_addr) override;

  const BusEventCounts& TotalCounts() const override { return total_; }
  const BusEventCounts& CpuCounts(CpuId cpu) const override {
    return per_cpu_.at(static_cast<std::size_t>(cpu));
  }
  void ResetCounts() override;

  int NodeOf(CpuId cpu) const { return cpu / cfg_.cpus_per_node; }
  int num_nodes() const { return num_nodes_; }

  // Directory introspection for tests and the coherence checker. `owner`
  // is the CPU holding the *responsible* copy: M/E under every protocol,
  // plus MOESI's O, MESIF's F and Dragon's Sm — the copy that supplies the
  // line (and, when dirty, writes it back).
  struct Entry {
    std::uint32_t sharers = 0;  // bitmask over CpuId (includes the owner)
    int owner = -1;             // CPU holding the responsible copy, or -1
  };
  const Entry* Lookup(Addr line_addr) const;

  // Iterates every directory entry (verification sweeps).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [line_addr, entry] : dir_) fn(line_addr, entry);
  }

  // Test-only fault injection: mutable access to an entry so checker tests
  // can corrupt sharer/owner bits and assert the sweep trips. Returns
  // nullptr if the line has no entry.
  Entry* TestOnlyMutableEntry(Addr line_addr) {
    auto it = dir_.find(line_addr);
    return it == dir_.end() ? nullptr : &it->second;
  }

  // Cycles spent queued on node buses (contention measure).
  Cycle queue_cycles() const override { return queue_cycles_; }

  // Directory entries are emitted sorted by line address so the blob is a
  // deterministic function of simulated state (the hash map's iteration
  // order is not).
  void SaveState(support::StateWriter& w) const override {
    w.U32(static_cast<std::uint32_t>(per_cpu_.size()));
    w.U32(static_cast<std::uint32_t>(node_bus_free_.size()));
    for (const BusEventCounts& c : per_cpu_) c.SaveState(w);
    total_.SaveState(w);
    for (Cycle free : node_bus_free_) w.U64(free);
    w.U64(queue_cycles_);
    std::vector<Addr> addrs;
    addrs.reserve(dir_.size());
    for (const auto& [line_addr, entry] : dir_) addrs.push_back(line_addr);
    std::sort(addrs.begin(), addrs.end());
    w.U64(static_cast<std::uint64_t>(addrs.size()));
    for (Addr line_addr : addrs) {
      const Entry& entry = dir_.at(line_addr);
      w.U64(line_addr);
      w.U32(entry.sharers);
      w.I64(entry.owner);
    }
  }
  bool RestoreState(support::StateReader& r) override {
    std::uint32_t cpus = 0;
    std::uint32_t nodes = 0;
    r.U32(&cpus);
    r.U32(&nodes);
    if (!r.Ok() || cpus != static_cast<std::uint32_t>(per_cpu_.size()) ||
        nodes != static_cast<std::uint32_t>(node_bus_free_.size())) {
      return false;
    }
    for (BusEventCounts& c : per_cpu_) c.RestoreState(r);
    total_.RestoreState(r);
    for (Cycle& free : node_bus_free_) r.U64(&free);
    r.U64(&queue_cycles_);
    std::uint64_t entries = 0;
    r.U64(&entries);
    if (!r.Ok()) return false;
    dir_.clear();
    for (std::uint64_t i = 0; i < entries; ++i) {
      Addr line_addr = 0;
      Entry entry;
      std::int64_t owner = 0;
      r.U64(&line_addr);
      r.U32(&entry.sharers);
      r.I64(&owner);
      if (!r.Ok() || owner < -1 || owner >= num_cpus_) return false;
      entry.owner = static_cast<int>(owner);
      dir_[line_addr] = entry;
    }
    return r.Ok();
  }

 private:
  Cycle Leg(int node_a, int node_b) const {
    return node_a == node_b ? 0 : 2 * cfg_.link_hop_latency;
  }
  // Reserves the node bus starting no earlier than `earliest`; returns the
  // cycle at which service begins (queuing charged to the requester).
  Cycle AcquireNodeBus(int node, Cycle earliest, Cycle occupancy);

  MemConfig cfg_;
  const CoherencePolicy* policy_;
  MainMemory* memory_;
  int num_cpus_;
  int num_nodes_;
  std::vector<CacheStack*> stacks_;
  std::vector<Cycle> node_bus_free_;
  std::unordered_map<Addr, Entry> dir_;
  std::vector<BusEventCounts> per_cpu_;
  BusEventCounts total_;
  Cycle queue_cycles_ = 0;
};

}  // namespace cobra::mem
