// Directory-based cc-NUMA coherence fabric — the SGI Altix model.
//
// CPUs are grouped into 2-CPU nodes; every 128-B line has a *home node*
// determined by its page's first-touch placement (MainMemory's page table).
// A full-map directory at the home tracks the owner (E/M holder) and sharer
// set, and forwards/invalidates precisely — no broadcast snooping.
//
// Timing: a request queues on the requester node's bus, traverses the
// fat-tree interconnect to the home (2 link hops via one switch level when
// the nodes differ), queues on the home node's memory controller, possibly
// takes a third leg to a remote owner, and returns.  Remote coherent misses
// therefore cost far more than on the SMP bus, which is exactly why the
// paper measures much larger COBRA gains on the Altix (Fig. 5b vs 5a).
//
// Simplification vs real Altix hardware (documented in DESIGN.md): requests
// always consult the home directory, even when a same-node peer could have
// supplied the line over the shared front-side bus.  Same-node traffic is
// still cheap because the interconnect legs collapse to zero when
// requester, home, and owner share a node.
#pragma once

#include <unordered_map>
#include <vector>

#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"

namespace cobra::mem {

class DirectoryFabric : public CoherenceFabric {
 public:
  DirectoryFabric(const MemConfig& cfg, MainMemory* memory, int num_cpus);

  void AttachStacks(std::vector<CacheStack*> stacks) override;

  FabricResult Request(CpuId cpu, BusOp op, Addr line_addr,
                       Cycle now) override;

  void EvictNotify(CpuId cpu, Addr line_addr) override;

  const BusEventCounts& TotalCounts() const override { return total_; }
  const BusEventCounts& CpuCounts(CpuId cpu) const override {
    return per_cpu_.at(static_cast<std::size_t>(cpu));
  }
  void ResetCounts() override;

  int NodeOf(CpuId cpu) const { return cpu / cfg_.cpus_per_node; }
  int num_nodes() const { return num_nodes_; }

  // Directory introspection for tests and the coherence checker. `owner`
  // is the CPU holding the *responsible* copy: M/E under every protocol,
  // plus MOESI's O, MESIF's F and Dragon's Sm — the copy that supplies the
  // line (and, when dirty, writes it back).
  struct Entry {
    std::uint32_t sharers = 0;  // bitmask over CpuId (includes the owner)
    int owner = -1;             // CPU holding the responsible copy, or -1
  };
  const Entry* Lookup(Addr line_addr) const;

  // Iterates every directory entry (verification sweeps).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [line_addr, entry] : dir_) fn(line_addr, entry);
  }

  // Test-only fault injection: mutable access to an entry so checker tests
  // can corrupt sharer/owner bits and assert the sweep trips. Returns
  // nullptr if the line has no entry.
  Entry* TestOnlyMutableEntry(Addr line_addr) {
    auto it = dir_.find(line_addr);
    return it == dir_.end() ? nullptr : &it->second;
  }

  // Cycles spent queued on node buses (contention measure).
  Cycle queue_cycles() const override { return queue_cycles_; }

 private:
  Cycle Leg(int node_a, int node_b) const {
    return node_a == node_b ? 0 : 2 * cfg_.link_hop_latency;
  }
  // Reserves the node bus starting no earlier than `earliest`; returns the
  // cycle at which service begins (queuing charged to the requester).
  Cycle AcquireNodeBus(int node, Cycle earliest, Cycle occupancy);

  MemConfig cfg_;
  const CoherencePolicy* policy_;
  MainMemory* memory_;
  int num_cpus_;
  int num_nodes_;
  std::vector<CacheStack*> stacks_;
  std::vector<Cycle> node_bus_free_;
  std::unordered_map<Addr, Entry> dir_;
  std::vector<BusEventCounts> per_cpu_;
  BusEventCounts total_;
  Cycle queue_cycles_ = 0;
};

}  // namespace cobra::mem
