// Disassembler: renders MIA-64 instructions in Itanium assembly syntax,
// e.g. `(p16) ldfd f32=[r33],8` / `lfetch.excl.nt1 [r43]` /
// `br.ctop.sptk .b+(-3)`.  Used by the Figure 2 harness, by COBRA's
// optimizer logging, and by tests that pin the generated code shape.
#pragma once

#include <string>

#include "isa/image.h"
#include "isa/instruction.h"

namespace cobra::isa {

// Renders one instruction. `pc` (if nonzero) lets relative branch targets
// be printed as absolute addresses.
std::string Disassemble(const Instruction& inst, Addr pc = 0);

// Renders a [begin, end) bundle-address range of an image, one bundle per
// line group with IA-64-style braces.
std::string DisassembleRange(const BinaryImage& image, Addr begin, Addr end);

}  // namespace cobra::isa
