// Binary encoding of MIA-64 instructions.
//
// Each instruction slot is encoded as a 128-bit pair: a `head` word holding
// the opcode and register/hint fields, and an `imm` word holding the full
// 64-bit immediate (movl-style).  COBRA's runtime optimizers operate on
// these words in place: `noprefetch` rewrites an lfetch head into a nop (or
// an add, when the lfetch carried a post-increment), and `prefetch.excl`
// flips the EXCL hint bit — exactly the bit-level patching a real binary
// optimizer performs on IA-64 bundles.
//
// Head-word layout (LSB first):
//   [0:6]    opcode          (7 bits)
//   [7:12]   qp              (6 bits)
//   [13:14]  unit            (2 bits)
//   [15:21]  r1              (7 bits)
//   [22:28]  r2              (7 bits)
//   [29:35]  r3              (7 bits)
//   [36:42]  extra / rel     (7 bits; fma addend, or cmp/fcmp relation)
//   [43:48]  p1              (6 bits)
//   [49:54]  p2              (6 bits)
//   [55:56]  size log2       (2 bits)
//   [57]     post_inc
//   [58]     lfetch EXCL hint     <-- the bit COBRA's optimizer toggles
//   [59]     lfetch fault hint
//   [60:61]  temporal / ld_hint   (2 bits; meaning depends on opcode)
//   [62:63]  reserved (must be zero)
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction.h"

namespace cobra::isa {

struct EncodedSlot {
  std::uint64_t head = 0;
  std::int64_t imm = 0;

  friend bool operator==(const EncodedSlot&, const EncodedSlot&) = default;
};

// Bit positions, exported so the runtime patcher and its tests can reason
// about the encoding without duplicating magic numbers.
namespace enc {
inline constexpr int kOpcodeShift = 0, kOpcodeBits = 7;
inline constexpr int kQpShift = 7, kQpBits = 6;
inline constexpr int kUnitShift = 13, kUnitBits = 2;
inline constexpr int kR1Shift = 15, kR1Bits = 7;
inline constexpr int kR2Shift = 22, kR2Bits = 7;
inline constexpr int kR3Shift = 29, kR3Bits = 7;
inline constexpr int kExtraShift = 36, kExtraBits = 7;
inline constexpr int kP1Shift = 43, kP1Bits = 6;
inline constexpr int kP2Shift = 49, kP2Bits = 6;
inline constexpr int kSizeShift = 55, kSizeBits = 2;
inline constexpr int kPostIncShift = 57;
inline constexpr int kExclShift = 58;
inline constexpr int kFaultShift = 59;
inline constexpr int kTemporalShift = 60, kTemporalBits = 2;

inline constexpr std::uint64_t kExclBit = 1ULL << kExclShift;
}  // namespace enc

// Encodes a decoded instruction. Aborts on malformed fields.
EncodedSlot Encode(const Instruction& inst);

// Decodes an encoded slot. Aborts if the opcode field is invalid or a
// reserved bit is set (catches corrupted patches early).
Instruction Decode(const EncodedSlot& slot);

// Non-aborting decode for analysis tools (the lint and the patch-safety
// verifier must *report* a corrupt slot, not die on it). Returns false on a
// malformed slot; `out` and `error` may be null.
bool TryDecode(const EncodedSlot& slot, Instruction* out,
               std::string* error = nullptr);

// Convenience predicates on raw head words, used by the binary patcher.
Opcode OpcodeOf(std::uint64_t head);
bool IsLfetchHead(std::uint64_t head);
bool LfetchExclOf(std::uint64_t head);

}  // namespace cobra::isa
