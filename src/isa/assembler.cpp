#include "isa/assembler.h"

#include "support/check.h"

namespace cobra::isa {

Assembler::Assembler(BinaryImage* image) : image_(image) {
  COBRA_CHECK(image != nullptr);
}

Assembler::Label Assembler::NewLabel() {
  labels_.push_back(kUnset);
  return static_cast<Label>(labels_.size() - 1);
}

void Assembler::Bind(Label label) {
  COBRA_CHECK(label >= 0 && static_cast<std::size_t>(label) < labels_.size());
  COBRA_CHECK_MSG(labels_[label] == kUnset, "label bound twice");
  FlushBundle();
  labels_[label] = image_->code_end();
  if (first_bundle_ == kUnset) first_bundle_ = labels_[label];
}

Addr Assembler::NextBundleAddr() const {
  return image_->code_end() +
         (pending_.empty() ? 0 : kBundleBytes);  // open bundle flushes first
}

void Assembler::Emit(const Instruction& inst) {
  COBRA_CHECK(!finished_);
  if (first_bundle_ == kUnset && pending_.empty()) {
    first_bundle_ = image_->code_end();
  }
  pending_.push_back(inst);
  if (pending_.size() == 3) FlushBundle();
}

Addr Assembler::EmitBranch(Instruction br, Label label) {
  COBRA_CHECK(!finished_);
  COBRA_CHECK(IsBranch(br.op));
  COBRA_CHECK(label >= 0 && static_cast<std::size_t>(label) < labels_.size());
  if (first_bundle_ == kUnset && pending_.empty()) {
    first_bundle_ = image_->code_end();
  }
  // Pad so the branch occupies slot 2.
  while (pending_.size() < 2) pending_.push_back(Nop(Unit::kI));
  pending_.push_back(br);
  const Addr bundle = image_->code_end();
  FlushBundle();
  fixups_.push_back(Fixup{MakePc(bundle, 2), label});
  return MakePc(bundle, 2);
}

void Assembler::FlushBundle() {
  if (pending_.empty()) return;
  while (pending_.size() < 3) pending_.push_back(Nop(Unit::kI));
  image_->AppendBundle(pending_[0], pending_[1], pending_[2]);
  pending_.clear();
}

Addr Assembler::Finish() {
  COBRA_CHECK(!finished_);
  FlushBundle();
  finished_ = true;
  for (const Fixup& fixup : fixups_) {
    COBRA_CHECK_MSG(labels_[fixup.label] != kUnset,
                    "branch to an unbound label");
    Instruction br = image_->Fetch(fixup.branch_pc);
    if (br.op == Opcode::kBrl) {
      br.imm = static_cast<std::int64_t>(labels_[fixup.label]);
    } else {
      const std::int64_t disp =
          (static_cast<std::int64_t>(labels_[fixup.label]) -
           static_cast<std::int64_t>(BundleAddr(fixup.branch_pc))) /
          static_cast<std::int64_t>(kBundleBytes);
      br.imm = disp;
    }
    image_->Patch(fixup.branch_pc, br);
  }
  COBRA_CHECK_MSG(first_bundle_ != kUnset, "assembler emitted nothing");
  return first_bundle_;
}

}  // namespace cobra::isa
