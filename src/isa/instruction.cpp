#include "isa/instruction.h"

#include "support/check.h"

namespace cobra::isa {

namespace {

std::uint8_t Reg(int r, int limit) {
  COBRA_CHECK_MSG(r >= 0 && r < limit, "register index out of range");
  return static_cast<std::uint8_t>(r);
}
std::uint8_t Gr(int r) { return Reg(r, kNumGr); }
std::uint8_t Fr(int r) { return Reg(r, kNumFr); }
std::uint8_t Pr(int r) { return Reg(r, kNumPr); }

std::uint8_t MemSize(int size) {
  COBRA_CHECK_MSG(size == 1 || size == 2 || size == 4 || size == 8,
                  "memory access size must be 1/2/4/8");
  return static_cast<std::uint8_t>(size);
}

Instruction Alu(Opcode op, int rd, int rs1, int rs2) {
  Instruction i;
  i.op = op;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.r2 = Gr(rs1);
  i.r3 = Gr(rs2);
  return i;
}

Instruction AluImm(Opcode op, int rd, int rs, std::int64_t imm) {
  Instruction i;
  i.op = op;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.r2 = Gr(rs);
  i.imm = imm;
  return i;
}

Instruction Fp3(Opcode op, int fd, int fa, int fb, int fc) {
  Instruction i;
  i.op = op;
  i.unit = Unit::kF;
  i.r1 = Fr(fd);
  i.r2 = Fr(fa);
  i.r3 = Fr(fb);
  i.extra = Fr(fc);
  return i;
}

Instruction Fp1(Opcode op, int fd, int fs) {
  Instruction i;
  i.op = op;
  i.unit = Unit::kF;
  i.r1 = Fr(fd);
  i.r2 = Fr(fs);
  return i;
}

}  // namespace

Instruction Nop(Unit unit) {
  Instruction i;
  i.op = Opcode::kNop;
  i.unit = unit;
  return i;
}

Instruction Break() {
  Instruction i;
  i.op = Opcode::kBreak;
  i.unit = Unit::kB;
  return i;
}

Instruction AddReg(int rd, int rs1, int rs2) {
  return Alu(Opcode::kAddReg, rd, rs1, rs2);
}
Instruction SubReg(int rd, int rs1, int rs2) {
  return Alu(Opcode::kSubReg, rd, rs1, rs2);
}
Instruction AddImm(int rd, int rs, std::int64_t imm) {
  return AluImm(Opcode::kAddImm, rd, rs, imm);
}
Instruction ShlAdd(int rd, int rs1, int count, int rs2) {
  COBRA_CHECK_MSG(count >= 1 && count <= 4, "shladd count must be 1..4");
  Instruction i = Alu(Opcode::kShlAdd, rd, rs1, rs2);
  i.imm = count;
  return i;
}
Instruction AndReg(int rd, int rs1, int rs2) {
  return Alu(Opcode::kAnd, rd, rs1, rs2);
}
Instruction OrReg(int rd, int rs1, int rs2) {
  return Alu(Opcode::kOr, rd, rs1, rs2);
}
Instruction XorReg(int rd, int rs1, int rs2) {
  return Alu(Opcode::kXor, rd, rs1, rs2);
}
Instruction AndImm(int rd, int rs, std::int64_t imm) {
  return AluImm(Opcode::kAndImm, rd, rs, imm);
}
Instruction OrImm(int rd, int rs, std::int64_t imm) {
  return AluImm(Opcode::kOrImm, rd, rs, imm);
}
Instruction ShlImm(int rd, int rs, int count) {
  COBRA_CHECK(count >= 0 && count < 64);
  return AluImm(Opcode::kShlImm, rd, rs, count);
}
Instruction ShrImm(int rd, int rs, int count) {
  COBRA_CHECK(count >= 0 && count < 64);
  return AluImm(Opcode::kShrImm, rd, rs, count);
}
Instruction SarImm(int rd, int rs, int count) {
  COBRA_CHECK(count >= 0 && count < 64);
  return AluImm(Opcode::kSarImm, rd, rs, count);
}
Instruction MovImm(int rd, std::int64_t imm) {
  Instruction i;
  i.op = Opcode::kMovImm;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.imm = imm;
  return i;
}
Instruction MovReg(int rd, int rs) {
  Instruction i;
  i.op = Opcode::kMovReg;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.r2 = Gr(rs);
  return i;
}
Instruction Sxt4(int rd, int rs) {
  Instruction i;
  i.op = Opcode::kSxt4;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.r2 = Gr(rs);
  return i;
}
Instruction Zxt4(int rd, int rs) {
  Instruction i;
  i.op = Opcode::kZxt4;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.r2 = Gr(rs);
  return i;
}
Instruction Cmp(CmpRel rel, int p1, int p2, int rs1, int rs2) {
  Instruction i;
  i.op = Opcode::kCmp;
  i.unit = Unit::kI;
  i.rel = rel;
  i.p1 = Pr(p1);
  i.p2 = Pr(p2);
  i.r2 = Gr(rs1);
  i.r3 = Gr(rs2);
  return i;
}
Instruction CmpImm(CmpRel rel, int p1, int p2, int rs, std::int64_t imm) {
  Instruction i;
  i.op = Opcode::kCmpImm;
  i.unit = Unit::kI;
  i.rel = rel;
  i.p1 = Pr(p1);
  i.p2 = Pr(p2);
  i.r2 = Gr(rs);
  i.imm = imm;
  return i;
}

Instruction MovToAr(AppReg ar, int rs) {
  Instruction i;
  i.op = Opcode::kMovToAr;
  i.unit = Unit::kI;
  i.r2 = Gr(rs);
  i.imm = static_cast<std::int64_t>(ar);
  return i;
}
Instruction MovFromAr(int rd, AppReg ar) {
  Instruction i;
  i.op = Opcode::kMovFromAr;
  i.unit = Unit::kI;
  i.r1 = Gr(rd);
  i.imm = static_cast<std::int64_t>(ar);
  return i;
}
Instruction MovToPrRot(std::uint64_t mask) {
  Instruction i;
  i.op = Opcode::kMovToPrRot;
  i.unit = Unit::kI;
  i.imm = static_cast<std::int64_t>(mask);
  return i;
}
Instruction ClrRrb() {
  Instruction i;
  i.op = Opcode::kClrRrb;
  i.unit = Unit::kB;
  return i;
}

Instruction Ld(int size, int rd, int rbase, LoadHint hint) {
  Instruction i;
  i.op = Opcode::kLd;
  i.unit = Unit::kM;
  i.size = MemSize(size);
  i.r1 = Gr(rd);
  i.r2 = Gr(rbase);
  i.ld_hint = hint;
  return i;
}
Instruction LdPostInc(int size, int rd, int rbase, std::int64_t inc,
                      LoadHint hint) {
  Instruction i = Ld(size, rd, rbase, hint);
  i.post_inc = true;
  i.imm = inc;
  return i;
}
Instruction St(int size, int rbase, int rval) {
  Instruction i;
  i.op = Opcode::kSt;
  i.unit = Unit::kM;
  i.size = MemSize(size);
  i.r2 = Gr(rbase);
  i.r3 = Gr(rval);
  return i;
}
Instruction StPostInc(int size, int rbase, int rval, std::int64_t inc) {
  Instruction i = St(size, rbase, rval);
  i.post_inc = true;
  i.imm = inc;
  return i;
}
Instruction Ldf(int fd, int rbase) {
  Instruction i;
  i.op = Opcode::kLdf;
  i.unit = Unit::kM;
  i.size = 8;
  i.r1 = Fr(fd);
  i.r2 = Gr(rbase);
  return i;
}
Instruction LdfPostInc(int fd, int rbase, std::int64_t inc) {
  Instruction i = Ldf(fd, rbase);
  i.post_inc = true;
  i.imm = inc;
  return i;
}
Instruction Stf(int rbase, int fval) {
  Instruction i;
  i.op = Opcode::kStf;
  i.unit = Unit::kM;
  i.size = 8;
  i.r2 = Gr(rbase);
  i.r3 = Fr(fval);
  return i;
}
Instruction StfPostInc(int rbase, int fval, std::int64_t inc) {
  Instruction i = Stf(rbase, fval);
  i.post_inc = true;
  i.imm = inc;
  return i;
}
Instruction Lfetch(int rbase, LfetchHint hint) {
  Instruction i;
  i.op = Opcode::kLfetch;
  i.unit = Unit::kM;
  i.r2 = Gr(rbase);
  i.lf_hint = hint;
  return i;
}
Instruction LfetchPostInc(int rbase, std::int64_t inc, LfetchHint hint) {
  Instruction i = Lfetch(rbase, hint);
  i.post_inc = true;
  i.imm = inc;
  return i;
}

Instruction Fma(int fd, int fa, int fb, int fc) {
  return Fp3(Opcode::kFma, fd, fa, fb, fc);
}
Instruction Fms(int fd, int fa, int fb, int fc) {
  return Fp3(Opcode::kFms, fd, fa, fb, fc);
}
Instruction Fnma(int fd, int fa, int fb, int fc) {
  return Fp3(Opcode::kFnma, fd, fa, fb, fc);
}
Instruction Fmov(int fd, int fs) { return Fp1(Opcode::kFmov, fd, fs); }
Instruction Fneg(int fd, int fs) { return Fp1(Opcode::kFneg, fd, fs); }
Instruction Fabs(int fd, int fs) { return Fp1(Opcode::kFabs, fd, fs); }
Instruction Frcpa(int fd, int fs) { return Fp1(Opcode::kFrcpa, fd, fs); }
Instruction Fsqrt(int fd, int fs) { return Fp1(Opcode::kFsqrt, fd, fs); }
Instruction Fmin(int fd, int fa, int fb) {
  return Fp3(Opcode::kFmin, fd, fa, fb, 0);
}
Instruction Fmax(int fd, int fa, int fb) {
  return Fp3(Opcode::kFmax, fd, fa, fb, 0);
}
Instruction Fcmp(FCmpRel rel, int p1, int p2, int fa, int fb) {
  Instruction i;
  i.op = Opcode::kFcmp;
  i.unit = Unit::kF;
  i.frel = rel;
  i.p1 = Pr(p1);
  i.p2 = Pr(p2);
  i.r2 = Fr(fa);
  i.r3 = Fr(fb);
  return i;
}
Instruction Setf(int fd, int rs) {
  Instruction i;
  i.op = Opcode::kSetf;
  i.unit = Unit::kM;
  i.r1 = Fr(fd);
  i.r2 = Gr(rs);
  return i;
}
Instruction Getf(int rd, int fs) {
  Instruction i;
  i.op = Opcode::kGetf;
  i.unit = Unit::kM;
  i.r1 = Gr(rd);
  i.r2 = Fr(fs);
  return i;
}
Instruction FcvtFx(int fd, int fs) { return Fp1(Opcode::kFcvtFx, fd, fs); }
Instruction FcvtXf(int fd, int fs) { return Fp1(Opcode::kFcvtXf, fd, fs); }

Instruction BrCond(int qp, std::int64_t bundle_disp) {
  Instruction i;
  i.op = Opcode::kBrCond;
  i.unit = Unit::kB;
  i.qp = Pr(qp);
  i.imm = bundle_disp;
  return i;
}
Instruction BrCloop(std::int64_t bundle_disp) {
  Instruction i;
  i.op = Opcode::kBrCloop;
  i.unit = Unit::kB;
  i.imm = bundle_disp;
  return i;
}
Instruction BrCtop(std::int64_t bundle_disp) {
  Instruction i;
  i.op = Opcode::kBrCtop;
  i.unit = Unit::kB;
  i.imm = bundle_disp;
  return i;
}
Instruction BrWtop(int qp, std::int64_t bundle_disp) {
  Instruction i;
  i.op = Opcode::kBrWtop;
  i.unit = Unit::kB;
  i.qp = Pr(qp);
  i.imm = bundle_disp;
  return i;
}
Instruction Brl(Addr absolute_bundle_addr) {
  Instruction i;
  i.op = Opcode::kBrl;
  i.unit = Unit::kB;
  i.imm = static_cast<std::int64_t>(BundleAddr(absolute_bundle_addr));
  return i;
}

Instruction Pred(int qp, Instruction inst) {
  inst.qp = Pr(qp);
  return inst;
}

}  // namespace cobra::isa
