// Per-slot execution plans: the pre-resolved form the core's hot path
// dispatches on.
//
// Decoding an `Instruction` is cheap, but *classifying* it — is it a memory
// op, does it need the coherence fabric, which predicate gates it, which
// registers does it touch — is re-derived on every step by the interpreter's
// nested opcode switches. An ExecPlan flattens all of that into one 24-byte
// struct computed once per slot (and recomputed on patch): a direct handler
// id the core indexes into its handler table, the operand register numbers,
// and a classification bitmask that answers the per-step routing questions
// (memory? branch? store? fp? lfetch? .bias/.excl? post-increment?) with
// single bit tests.
//
// Plans are a pure cache over the decoded twin: BinaryImage rebuilds a
// slot's plan whenever its raw words change (PatchRaw/Patch/SetLfetchExcl/
// NopOutLfetch all funnel through PatchRaw), so executing from the plan is
// bit-identical to re-decoding every step. `plan_generation()` counts those
// rebuilds so external consumers can detect invalidation.
#pragma once

#include <cstdint>

#include "isa/instruction.h"
#include "isa/types.h"

namespace cobra::isa {

// Classification bits (ExecPlan::cls). Routing on the hot path tests these
// instead of switching on the opcode.
inline constexpr std::uint8_t kPlanMem = 1u << 0;      // IsMemoryOp
inline constexpr std::uint8_t kPlanBranch = 1u << 1;   // IsBranch
inline constexpr std::uint8_t kPlanStore = 1u << 2;    // kSt / kStf
inline constexpr std::uint8_t kPlanFp = 1u << 3;       // kLdf / kStf
inline constexpr std::uint8_t kPlanLfetch = 1u << 4;   // kLfetch
inline constexpr std::uint8_t kPlanBias = 1u << 5;     // ld.bias
inline constexpr std::uint8_t kPlanExcl = 1u << 6;     // lfetch.excl
inline constexpr std::uint8_t kPlanPostInc = 1u << 7;  // post-increment form

// Handler ids are the numeric Opcode values; one extra id marks a slot whose
// raw words were overwritten without re-decoding (TestOnlyCorruptSlot) so a
// stale plan can never be dispatched silently.
inline constexpr std::uint16_t kPlanHandlerStale =
    static_cast<std::uint16_t>(Opcode::kOpcodeCount);
inline constexpr std::size_t kNumPlanHandlers =
    static_cast<std::size_t>(Opcode::kOpcodeCount) + 1;

struct ExecPlan {
  std::int64_t imm = 0;       // immediate / displacement / post-increment
  std::uint16_t handler = 0;  // Opcode value, or kPlanHandlerStale
  std::uint8_t cls = 0;       // kPlan* classification bits
  std::uint8_t qp = 0;
  std::uint8_t r1 = 0;
  std::uint8_t r2 = 0;
  std::uint8_t r3 = 0;
  std::uint8_t extra = 0;
  std::uint8_t p1 = 0;
  std::uint8_t p2 = 0;
  std::uint8_t size = 0;  // memory access size in bytes
  std::uint8_t aux = 0;   // CmpRel (kCmp/kCmpImm) or FCmpRel (kFcmp)
};

// Flattens a decoded instruction into its execution plan.
ExecPlan BuildExecPlan(const Instruction& inst);

// The plan installed for a slot corrupted by TestOnlyCorruptSlot: cls = 0
// and handler = kPlanHandlerStale, so dispatch aborts if it is ever reached.
ExecPlan StaleExecPlan();

}  // namespace cobra::isa
