// BinaryImage: the executable text segment of a simulated program.
//
// Code is stored as encoded 128-bit slots grouped into 3-slot bundles.
// Architecturally a bundle occupies 16 bytes, so instruction addresses
// advance by kBundleBytes per bundle with the slot number in the low bits
// (as on IA-64).  The image also manages a *code cache* region appended
// after the static text — the "trace cache in the same address space"
// where COBRA materializes optimized traces — and supports in-place
// patching of any slot, which is how the original binary is redirected to
// those traces and how prefetch hints are rewritten.
//
// A decoded twin of every slot is kept alongside the encoded words purely
// as a decode cache, and a flattened ExecPlan twin (see isa/exec_plan.h) is
// kept alongside that for the core's hot dispatch path; all mutation goes
// through the encoded representation so that patches are honest bit-level
// binary edits, and every raw patch rebuilds both cached twins in the same
// call, so neither can drift from the bits.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/exec_plan.h"
#include "isa/instruction.h"
#include "isa/types.h"
#include "support/check.h"
#include "support/snapshot.h"

namespace cobra::isa {

class BinaryImage {
 public:
  // `code_base` must be bundle-aligned. The default places text well away
  // from the data segment of MainMemory.
  explicit BinaryImage(Addr code_base = kDefaultCodeBase);

  static constexpr Addr kDefaultCodeBase = 0x4000'0000ULL;

  // --- Building -----------------------------------------------------------
  // Appends a bundle; returns its (bundle-aligned) address.
  Addr AppendBundle(const Instruction& s0, const Instruction& s1,
                    const Instruction& s2);

  // --- Geometry -----------------------------------------------------------
  Addr code_base() const { return code_base_; }
  Addr code_end() const {
    return code_base_ + static_cast<Addr>(NumBundles()) * kBundleBytes;
  }
  std::size_t NumBundles() const { return slots_.size() / 3; }
  bool Contains(Addr pc) const {
    return BundleAddr(pc) >= code_base_ && BundleAddr(pc) < code_end();
  }

  // Marks the current end of text as the start of the code cache; bundles
  // appended afterwards belong to the cache. Returns the boundary address.
  Addr BeginCodeCache();
  Addr code_cache_start() const { return code_cache_start_; }
  bool InCodeCache(Addr pc) const {
    return code_cache_start_ != 0 && BundleAddr(pc) >= code_cache_start_;
  }

  // --- Access -------------------------------------------------------------
  // Decoded instruction at `pc` (slot must be 0..2, address in range).
  // Aborts if the slot's raw words were overwritten without re-decoding
  // (TestOnlyCorruptSlot): a stale decode must never execute.
  const Instruction& Fetch(Addr pc) const {
    const std::size_t idx = SlotIndex(pc);
    if (!corrupt_slots_.empty()) CheckNotStale(idx);
    return decoded_[idx];
  }

  // Execution plan at `pc` — the core's hot path dispatches on this instead
  // of re-classifying the decoded instruction every step. Same staleness
  // contract as Fetch. With the plan cache disabled (test-only knob below)
  // the plan is rebuilt from the decoded twin on every call, which is the
  // reference behaviour the cached plans must be bit-identical to.
  const ExecPlan& PlanAt(Addr pc) const {
    const std::size_t idx = SlotIndex(pc);
    if (!corrupt_slots_.empty()) CheckNotStale(idx);
    if (!plan_cache_enabled_.load(std::memory_order_relaxed)) {
      return RebuildPlanUncached(idx);
    }
    return plans_[idx];
  }

  const EncodedSlot& Raw(Addr pc) const { return slots_[SlotIndex(pc)]; }

  // --- Patching (bit-level binary edits) -----------------------------------
  // Replaces the raw encoded slot; the decoded twin is refreshed by
  // re-decoding, so a malformed patch aborts immediately.
  void PatchRaw(Addr pc, const EncodedSlot& slot);

  // Encodes and writes `inst` at `pc`.
  void Patch(Addr pc, const Instruction& inst);

  // Sets or clears the lfetch `.excl` hint bit in place. Aborts if the slot
  // does not hold an lfetch.
  void SetLfetchExcl(Addr pc, bool excl);

  // Rewrites the lfetch at `pc` into a semantic no-op: a plain `nop.m`, or —
  // when the lfetch carried a post-increment — an `add base = inc, base`
  // that preserves the address stream for later instructions.
  void NopOutLfetch(Addr pc);

  // Number of raw patches applied over the image's lifetime.
  std::uint64_t patch_count() const { return patch_count_; }

  // Monotone counter bumped by every mutation of the plan cache (patches,
  // appends, and test-only corruption). External consumers that hold plan
  // references across patch points can compare generations to detect
  // invalidation; tests assert that runtime patching bumps it.
  std::uint64_t plan_generation() const { return plan_generation_; }

  // --- Checkpointing --------------------------------------------------------
  // The blob carries only the raw encoded slots (the honest bit-level
  // state); restore re-decodes every slot to rebuild the decoded and plan
  // twins, exactly as PatchRaw would. The saved image may hold MORE bundles
  // than the restoring one: trace bundles appended to the code cache after
  // the builder ran are recreated by growing the image.
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

  // Test-only fault injection: writes the raw slot WITHOUT re-decoding, so
  // tests can seed corrupt encodings for the lint / patch-safety verifier
  // to catch. The decoded and plan twins are marked stale (and the plan
  // generation bumped): Fetch/PlanAt at this pc abort until a valid patch
  // lands, so a stale decode can never silently execute.
  void TestOnlyCorruptSlot(Addr pc, const EncodedSlot& slot);

  // Test-only, process-global: disables the plan cache so PlanAt rebuilds
  // from the decoded twin on every call. Used by the fuzz harness to prove
  // cached plans are bit-identical to the never-cached reference.
  static void TestOnlySetPlanCacheEnabled(bool enabled);

  // True when the slot at `pc` is in the corrupt list (raw words written
  // without a re-decode). Fetch/PlanAt on such a slot abort; the superblock
  // compiler (tjit/superblock.cpp) checks this first so a stale plan can
  // never be baked into a trace.
  bool SlotKnownStale(Addr pc) const {
    if (corrupt_slots_.empty()) return false;
    const std::size_t idx = SlotIndex(pc);
    for (const std::size_t corrupt : corrupt_slots_) {
      if (corrupt == idx) return true;
    }
    return false;
  }

 private:
  // Inline: runs once per simulated instruction (Fetch/PlanAt).
  std::size_t SlotIndex(Addr pc) const {
    COBRA_CHECK_MSG(Contains(pc), "instruction address outside image");
    const unsigned slot = SlotOf(pc);
    COBRA_CHECK_MSG(slot < 3, "invalid slot number");
    const auto bundle =
        static_cast<std::size_t>((BundleAddr(pc) - code_base_) / kBundleBytes);
    return bundle * 3 + slot;
  }
  // Aborts if slot `idx` is in the corrupt list (raw words no longer match
  // the decoded twin). Out of line: the hot path only pays the empty check.
  void CheckNotStale(std::size_t idx) const;
  const ExecPlan& RebuildPlanUncached(std::size_t idx) const;

  static std::atomic<bool> plan_cache_enabled_;

  Addr code_base_;
  Addr code_cache_start_ = 0;
  std::vector<EncodedSlot> slots_;
  std::vector<Instruction> decoded_;
  std::vector<ExecPlan> plans_;
  std::vector<std::size_t> corrupt_slots_;
  std::uint64_t patch_count_ = 0;
  std::uint64_t plan_generation_ = 0;
};

}  // namespace cobra::isa
