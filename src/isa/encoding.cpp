#include "isa/encoding.h"

#include "support/check.h"

namespace cobra::isa {

namespace {

using namespace enc;

constexpr std::uint64_t Mask(int bits) { return (1ULL << bits) - 1; }

std::uint64_t Field(std::uint64_t value, int shift, int bits) {
  COBRA_CHECK_MSG(value <= Mask(bits), "encoding field overflow");
  return value << shift;
}

std::uint64_t Extract(std::uint64_t word, int shift, int bits) {
  return (word >> shift) & Mask(bits);
}

int SizeLog2(int size) {
  switch (size) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    default: COBRA_UNREACHABLE("bad memory size");
  }
}

}  // namespace

EncodedSlot Encode(const Instruction& inst) {
  COBRA_CHECK(inst.op < Opcode::kOpcodeCount);

  // The extra field is shared: fma-family addend register, or comparison
  // relation for cmp/fcmp.  The temporal field doubles as the load hint.
  std::uint64_t extra = inst.extra;
  std::uint64_t temporal = static_cast<std::uint64_t>(inst.lf_hint.temporal);
  switch (inst.op) {
    case Opcode::kCmp:
    case Opcode::kCmpImm:
      extra = static_cast<std::uint64_t>(inst.rel);
      break;
    case Opcode::kFcmp:
      extra = static_cast<std::uint64_t>(inst.frel);
      break;
    case Opcode::kLd:
      temporal = static_cast<std::uint64_t>(inst.ld_hint);
      break;
    default:
      break;
  }

  EncodedSlot slot;
  slot.head = Field(static_cast<std::uint64_t>(inst.op), kOpcodeShift, kOpcodeBits) |
              Field(inst.qp, kQpShift, kQpBits) |
              Field(static_cast<std::uint64_t>(inst.unit), kUnitShift, kUnitBits) |
              Field(inst.r1, kR1Shift, kR1Bits) |
              Field(inst.r2, kR2Shift, kR2Bits) |
              Field(inst.r3, kR3Shift, kR3Bits) |
              Field(extra, kExtraShift, kExtraBits) |
              Field(inst.p1, kP1Shift, kP1Bits) |
              Field(inst.p2, kP2Shift, kP2Bits) |
              Field(static_cast<std::uint64_t>(SizeLog2(inst.size)), kSizeShift,
                    kSizeBits) |
              (inst.post_inc ? (1ULL << kPostIncShift) : 0) |
              (inst.lf_hint.excl ? (1ULL << kExclShift) : 0) |
              (inst.lf_hint.fault ? (1ULL << kFaultShift) : 0) |
              Field(temporal, kTemporalShift, kTemporalBits);
  slot.imm = inst.imm;
  return slot;
}

namespace {

// Shared decode body: assumes the reserved bits and opcode field have
// already been validated.
Instruction DecodeValidated(const EncodedSlot& slot) {
  using namespace enc;
  Instruction inst;
  inst.op = static_cast<Opcode>(Extract(slot.head, kOpcodeShift, kOpcodeBits));
  inst.qp = static_cast<std::uint8_t>(Extract(slot.head, kQpShift, kQpBits));
  inst.unit = static_cast<Unit>(Extract(slot.head, kUnitShift, kUnitBits));
  inst.r1 = static_cast<std::uint8_t>(Extract(slot.head, kR1Shift, kR1Bits));
  inst.r2 = static_cast<std::uint8_t>(Extract(slot.head, kR2Shift, kR2Bits));
  inst.r3 = static_cast<std::uint8_t>(Extract(slot.head, kR3Shift, kR3Bits));
  inst.p1 = static_cast<std::uint8_t>(Extract(slot.head, kP1Shift, kP1Bits));
  inst.p2 = static_cast<std::uint8_t>(Extract(slot.head, kP2Shift, kP2Bits));
  inst.size = static_cast<std::uint8_t>(
      1u << Extract(slot.head, kSizeShift, kSizeBits));
  inst.post_inc = (slot.head >> kPostIncShift) & 1;
  inst.lf_hint.excl = (slot.head >> kExclShift) & 1;
  inst.lf_hint.fault = (slot.head >> kFaultShift) & 1;
  inst.imm = slot.imm;

  const auto extra = Extract(slot.head, kExtraShift, kExtraBits);
  const auto temporal = Extract(slot.head, kTemporalShift, kTemporalBits);
  switch (inst.op) {
    case Opcode::kCmp:
    case Opcode::kCmpImm:
      inst.rel = static_cast<CmpRel>(extra);
      break;
    case Opcode::kFcmp:
      inst.frel = static_cast<FCmpRel>(extra);
      break;
    case Opcode::kLd:
      inst.ld_hint = static_cast<LoadHint>(temporal);
      break;
    default:
      inst.extra = static_cast<std::uint8_t>(extra);
      inst.lf_hint.temporal = static_cast<Temporal>(temporal);
      break;
  }
  // Normalize fields that are meaningless for this opcode so that
  // Encode(Decode(x)) == x and Decode(Encode(i)) == i hold for helper-built
  // instructions (which leave such fields defaulted).
  if (inst.op != Opcode::kLfetch) {
    inst.lf_hint = LfetchHint{};
    if (inst.op != Opcode::kNop && inst.op != Opcode::kBreak &&
        inst.op != Opcode::kClrRrb) {
      // keep decoded hint bits only where they matter
    }
  }
  if (inst.op == Opcode::kLfetch) {
    inst.lf_hint.temporal = static_cast<Temporal>(temporal);
    inst.lf_hint.excl = (slot.head >> kExclShift) & 1;
    inst.lf_hint.fault = (slot.head >> kFaultShift) & 1;
  }
  return inst;
}

}  // namespace

Instruction Decode(const EncodedSlot& slot) {
  using namespace enc;
  COBRA_CHECK_MSG((slot.head >> 62) == 0, "reserved encoding bits set");
  const auto op_raw = Extract(slot.head, kOpcodeShift, kOpcodeBits);
  COBRA_CHECK_MSG(op_raw < static_cast<std::uint64_t>(Opcode::kOpcodeCount),
                  "invalid opcode field");
  return DecodeValidated(slot);
}

bool TryDecode(const EncodedSlot& slot, Instruction* out, std::string* error) {
  using namespace enc;
  if ((slot.head >> 62) != 0) {
    if (error != nullptr) *error = "reserved encoding bits set";
    return false;
  }
  const auto op_raw = Extract(slot.head, kOpcodeShift, kOpcodeBits);
  if (op_raw >= static_cast<std::uint64_t>(Opcode::kOpcodeCount)) {
    if (error != nullptr) *error = "invalid opcode field";
    return false;
  }
  if (out != nullptr) *out = DecodeValidated(slot);
  return true;
}

Opcode OpcodeOf(std::uint64_t head) {
  using namespace enc;
  return static_cast<Opcode>(Extract(head, kOpcodeShift, kOpcodeBits));
}

bool IsLfetchHead(std::uint64_t head) {
  return OpcodeOf(head) == Opcode::kLfetch;
}

bool LfetchExclOf(std::uint64_t head) {
  return (head & enc::kExclBit) != 0;
}

}  // namespace cobra::isa
