// A small structured assembler over BinaryImage.
//
// Handles bundle formation (3 slots, nop padding), labels, and branch
// displacement fixups.  Branch targets are bundle-aligned; branches are
// forced into slot 2 of their bundle (matching the MIB/MFB/MMB templates
// compilers actually emit for loop back-edges).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/image.h"
#include "isa/instruction.h"

namespace cobra::isa {

class Assembler {
 public:
  explicit Assembler(BinaryImage* image);

  using Label = int;

  // Creates a fresh unbound label.
  Label NewLabel();

  // Binds `label` to the next bundle boundary (flushing any open bundle).
  void Bind(Label label);

  // Appends one instruction to the open bundle, flushing it when full.
  void Emit(const Instruction& inst);

  // Emits a branch targeting `label`; pads the open bundle so the branch
  // lands in slot 2, and records a displacement fixup. The branch `imm`
  // field is overwritten when the label is resolved. Returns the pc of the
  // branch slot.
  Addr EmitBranch(Instruction br, Label label);

  // Address of the next slot Emit() would fill (the open bundle's next
  // slot, or slot 0 of the next bundle).
  Addr CurrentPc() const {
    return MakePc(image_->code_end(), static_cast<unsigned>(pending_.size()));
  }

  // Pads the open bundle with unit-appropriate nops and flushes it.
  void FlushBundle();

  // Flushes and resolves all fixups; aborts if any label is unbound.
  // Returns the address of the first bundle emitted by this assembler.
  Addr Finish();

  // Address the next emitted bundle will occupy (flushes nothing).
  Addr NextBundleAddr() const;

  BinaryImage* image() { return image_; }

 private:
  struct Fixup {
    Addr branch_pc = 0;  // slot holding the branch
    Label label = -1;
  };

  static constexpr Addr kUnset = ~Addr{0};

  BinaryImage* image_;
  Addr first_bundle_ = kUnset;
  std::vector<Instruction> pending_;
  std::vector<Addr> labels_;  // label -> bundle address (kUnset if unbound)
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace cobra::isa
