// Core architectural types for the MIA-64 mini ISA.
//
// MIA-64 is a deliberately faithful subset of the IA-64 (Itanium 2)
// application ISA: 3-instruction bundles, full predication, rotating
// general/floating/predicate register files driven by the modulo-scheduled
// loop branches (br.ctop / br.cloop / br.wtop), post-increment memory
// addressing, and — centrally for COBRA — the `lfetch` prefetch instruction
// with its temporal and exclusive hints, plus the `.bias` load hint.
//
// Instruction addresses follow the IA-64 convention: a bundle occupies 16
// architectural bytes and an instruction address is the bundle address plus
// a slot number (0..2) in the low bits.
#pragma once

#include <cstdint>

namespace cobra::isa {

using Addr = std::uint64_t;

inline constexpr Addr kBundleBytes = 16;

// Splits an instruction address into its bundle-aligned part and slot.
constexpr Addr BundleAddr(Addr pc) { return pc & ~static_cast<Addr>(0xf); }
constexpr unsigned SlotOf(Addr pc) {
  return static_cast<unsigned>(pc & 0x3);
}
constexpr Addr MakePc(Addr bundle, unsigned slot) {
  return BundleAddr(bundle) | (slot & 0x3);
}

// Register file geometry (matches IA-64).
inline constexpr int kNumGr = 128;  // r0 hardwired to 0; r32..r127 rotate
inline constexpr int kNumFr = 128;  // f0 = +0.0, f1 = 1.0; f32..f127 rotate
inline constexpr int kNumPr = 64;   // p0 hardwired to 1; p16..p63 rotate
inline constexpr int kFirstRotGr = 32;
inline constexpr int kFirstRotFr = 32;
inline constexpr int kFirstRotPr = 16;
inline constexpr int kNumRotGr = kNumGr - kFirstRotGr;  // 96
inline constexpr int kNumRotFr = kNumFr - kFirstRotFr;  // 96
inline constexpr int kNumRotPr = kNumPr - kFirstRotPr;  // 48

// Execution-unit class a given instruction occupies within a bundle.
enum class Unit : std::uint8_t { kM, kI, kF, kB };

// Application registers we model.
enum class AppReg : std::uint8_t { kLC, kEC };

// Integer comparison relations (cmp.<rel>).
enum class CmpRel : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kLtu, kGeu };

// Floating comparison relations (fcmp.<rel>).
enum class FCmpRel : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

// Integer load completer hints. `.bias` requests the line in Exclusive
// state (Itanium 2's hint for load-then-store sequences); `.acq` is the
// acquire-semantics load (modelled as a plain load — the simulator's memory
// system is sequentially consistent already).
enum class LoadHint : std::uint8_t { kNone, kBias, kAcq };

// Temporal-locality completers for lfetch (and loads, which we ignore).
enum class Temporal : std::uint8_t { kNone, kNt1, kNt2, kNta };

// lfetch hint bundle: the `.excl` bit is the one COBRA's second optimizer
// toggles at runtime; `.fault` controls faulting behaviour (irrelevant in
// our flat address space but kept for encoding fidelity).
struct LfetchHint {
  Temporal temporal = Temporal::kNt1;
  bool excl = false;
  bool fault = false;

  friend bool operator==(const LfetchHint&, const LfetchHint&) = default;
};

// Every opcode the MIA-64 interpreter implements.
enum class Opcode : std::uint8_t {
  kNop = 0,

  // Integer ALU.
  kAddReg,   // r1 = r2 + r3
  kSubReg,   // r1 = r2 - r3
  kAddImm,   // r1 = r2 + imm
  kShlAdd,   // r1 = (r2 << imm) + r3   (shladd, imm in 1..4)
  kAnd,      // r1 = r2 & r3
  kOr,       // r1 = r2 | r3
  kXor,      // r1 = r2 ^ r3
  kAndImm,   // r1 = r2 & imm
  kOrImm,    // r1 = r2 | imm
  kShlImm,   // r1 = r2 << imm
  kShrImm,   // r1 = (unsigned)r2 >> imm
  kSarImm,   // r1 = (signed)r2 >> imm
  kMovImm,   // r1 = imm (movl: full 64-bit immediate)
  kMovReg,   // r1 = r2
  kSxt4,     // r1 = sign-extend low 32 bits of r2
  kZxt4,     // r1 = zero-extend low 32 bits of r2
  kCmp,      // p1, p2 = (r2 <rel> r3), !(...)
  kCmpImm,   // p1, p2 = (r2 <rel> imm), !(...)

  // Register moves to/from application and predicate state.
  kMovToAr,    // AR[imm selector] = r2
  kMovFromAr,  // r1 = AR[imm selector]
  kMovToPrRot, // rotating predicates p16+i = bit i of imm
  kClrRrb,     // clears all rotating-register bases

  // Memory. Loads/stores carry an access size (1/2/4/8); FP forms move
  // doubles. `imm` is an optional post-increment applied to the base.
  kLd,      // r1 = mem[r2]; if post_inc: r2 += imm
  kSt,      // mem[r2] = r3; if post_inc: r2 += imm
  kLdf,     // f1 = mem[r2] (double)
  kStf,     // mem[r2] = f3 (double)
  kLfetch,  // prefetch line at [r2]; if post_inc: r2 += imm

  // Floating point (double precision).
  kFma,     // f1 = f2 * f3 + f_extra
  kFms,     // f1 = f2 * f3 - f_extra
  kFnma,    // f1 = -(f2 * f3) + f_extra
  kFmov,    // f1 = f2
  kFneg,    // f1 = -f2
  kFabs,    // f1 = |f2|
  kFrcpa,   // f1 = 1.0 / f2 (full-precision stand-in for the frcpa sequence)
  kFsqrt,   // f1 = sqrt(f2) (stand-in for the frsqrta sequence)
  kFmin,    // f1 = min(f2, f3)
  kFmax,    // f1 = max(f2, f3)
  kFcmp,    // p1, p2 = (f2 <rel> f3), !(...)
  kSetf,    // f1 = bit-image of r2 (setf.d)
  kGetf,    // r1 = bit-image of f2 (getf.d)
  kFcvtFx,  // f1 = (double->int64 bits) of f2 (fcvt.fx, round toward zero)
  kFcvtXf,  // f1 = (int64 bits -> double) of f2 (fcvt.xf)

  // Branches. Relative targets are in bundles (imm); brl is absolute.
  kBrCond,   // if PR[qp]: branch
  kBrCloop,  // counted loop: if LC != 0 { LC--; branch }
  kBrCtop,   // modulo-scheduled counted loop (rotates registers)
  kBrWtop,   // modulo-scheduled while loop (rotates registers)
  kBrl,      // unconditional long branch to absolute bundle address (imm)
  kBreak,    // terminates the executing simulated thread's kernel

  kOpcodeCount,
};

// True if the opcode reads or writes data memory (including prefetch).
constexpr bool IsMemoryOp(Opcode op) {
  switch (op) {
    case Opcode::kLd:
    case Opcode::kSt:
    case Opcode::kLdf:
    case Opcode::kStf:
    case Opcode::kLfetch:
      return true;
    default:
      return false;
  }
}

constexpr bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kBrCond:
    case Opcode::kBrCloop:
    case Opcode::kBrCtop:
    case Opcode::kBrWtop:
    case Opcode::kBrl:
      return true;
    default:
      return false;
  }
}

// True for the software-pipelined loop branches that rotate registers.
constexpr bool IsRotatingBranch(Opcode op) {
  return op == Opcode::kBrCtop || op == Opcode::kBrWtop;
}

}  // namespace cobra::isa
