#include "isa/image.h"

#include <algorithm>

#include "support/check.h"

namespace cobra::isa {

std::atomic<bool> BinaryImage::plan_cache_enabled_{true};

void BinaryImage::TestOnlySetPlanCacheEnabled(bool enabled) {
  plan_cache_enabled_.store(enabled, std::memory_order_relaxed);
}

BinaryImage::BinaryImage(Addr code_base) : code_base_(code_base) {
  COBRA_CHECK_MSG(BundleAddr(code_base) == code_base,
                  "code base must be bundle-aligned");
}

Addr BinaryImage::AppendBundle(const Instruction& s0, const Instruction& s1,
                               const Instruction& s2) {
  const Addr addr = code_end();
  for (const Instruction* inst : {&s0, &s1, &s2}) {
    slots_.push_back(Encode(*inst));
    decoded_.push_back(*inst);
    plans_.push_back(BuildExecPlan(*inst));
  }
  ++plan_generation_;
  return addr;
}

Addr BinaryImage::BeginCodeCache() {
  COBRA_CHECK_MSG(code_cache_start_ == 0, "code cache already started");
  code_cache_start_ = code_end();
  return code_cache_start_;
}

void BinaryImage::PatchRaw(Addr pc, const EncodedSlot& slot) {
  const std::size_t idx = SlotIndex(pc);
  slots_[idx] = slot;
  decoded_[idx] = Decode(slot);  // aborts on malformed patches
  plans_[idx] = BuildExecPlan(decoded_[idx]);
  ++plan_generation_;
  ++patch_count_;
  if (!corrupt_slots_.empty()) {
    // A valid patch heals a previously corrupted slot.
    corrupt_slots_.erase(
        std::remove(corrupt_slots_.begin(), corrupt_slots_.end(), idx),
        corrupt_slots_.end());
  }
}

void BinaryImage::Patch(Addr pc, const Instruction& inst) {
  PatchRaw(pc, Encode(inst));
}

void BinaryImage::TestOnlyCorruptSlot(Addr pc, const EncodedSlot& slot) {
  const std::size_t idx = SlotIndex(pc);
  slots_[idx] = slot;  // decoded twin intentionally left stale
  plans_[idx] = StaleExecPlan();
  ++plan_generation_;
  if (std::find(corrupt_slots_.begin(), corrupt_slots_.end(), idx) ==
      corrupt_slots_.end()) {
    corrupt_slots_.push_back(idx);
  }
}

void BinaryImage::CheckNotStale(std::size_t idx) const {
  COBRA_CHECK_MSG(std::find(corrupt_slots_.begin(), corrupt_slots_.end(),
                            idx) == corrupt_slots_.end(),
                  "fetch from a slot whose raw words no longer match its "
                  "decoded twin (TestOnlyCorruptSlot without a re-patch)");
}

const ExecPlan& BinaryImage::RebuildPlanUncached(std::size_t idx) const {
  thread_local ExecPlan scratch;
  scratch = BuildExecPlan(decoded_[idx]);
  return scratch;
}

void BinaryImage::SetLfetchExcl(Addr pc, bool excl) {
  EncodedSlot slot = Raw(pc);
  COBRA_CHECK_MSG(IsLfetchHead(slot.head), "slot does not hold an lfetch");
  if (excl) {
    slot.head |= enc::kExclBit;
  } else {
    slot.head &= ~enc::kExclBit;
  }
  PatchRaw(pc, slot);
}

void BinaryImage::SaveState(support::StateWriter& w) const {
  w.U64(code_base_);
  w.U64(code_cache_start_);
  w.U64(static_cast<std::uint64_t>(slots_.size()));
  for (const EncodedSlot& slot : slots_) {
    w.U64(slot.head);
    w.I64(slot.imm);
  }
  w.U64(patch_count_);
  w.U64(plan_generation_);
}

bool BinaryImage::RestoreState(support::StateReader& r) {
  std::uint64_t code_base = 0;
  std::uint64_t cache_start = 0;
  std::uint64_t num_slots = 0;
  r.U64(&code_base);
  r.U64(&cache_start);
  r.U64(&num_slots);
  if (!r.Ok() || code_base != code_base_ || num_slots % 3 != 0) return false;
  std::vector<EncodedSlot> slots(num_slots);
  for (EncodedSlot& slot : slots) {
    r.U64(&slot.head);
    r.I64(&slot.imm);
  }
  std::uint64_t patches = 0;
  std::uint64_t generation = 0;
  r.U64(&patches);
  r.U64(&generation);
  if (!r.Ok()) return false;
  slots_ = std::move(slots);
  decoded_.resize(slots_.size());
  plans_.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    decoded_[i] = Decode(slots_[i]);  // aborts on malformed bits, same as a
                                      // live PatchRaw of those words would
    plans_[i] = BuildExecPlan(decoded_[i]);
  }
  code_cache_start_ = cache_start;
  corrupt_slots_.clear();
  patch_count_ = patches;
  plan_generation_ = generation;
  return true;
}

void BinaryImage::NopOutLfetch(Addr pc) {
  const Instruction inst = Fetch(pc);
  COBRA_CHECK_MSG(inst.op == Opcode::kLfetch, "slot does not hold an lfetch");
  if (inst.post_inc) {
    // Preserve the address-stream side effect: base += inc.
    Instruction add = AddImm(inst.r2, inst.r2, inst.imm);
    add.unit = Unit::kM;  // occupies the same M slot it replaces
    add.qp = inst.qp;
    Patch(pc, add);
  } else {
    Instruction nop = Nop(Unit::kM);
    nop.qp = inst.qp;
    Patch(pc, nop);
  }
}

}  // namespace cobra::isa
