#include "isa/image.h"

#include "support/check.h"

namespace cobra::isa {

BinaryImage::BinaryImage(Addr code_base) : code_base_(code_base) {
  COBRA_CHECK_MSG(BundleAddr(code_base) == code_base,
                  "code base must be bundle-aligned");
}

Addr BinaryImage::AppendBundle(const Instruction& s0, const Instruction& s1,
                               const Instruction& s2) {
  const Addr addr = code_end();
  for (const Instruction* inst : {&s0, &s1, &s2}) {
    slots_.push_back(Encode(*inst));
    decoded_.push_back(*inst);
  }
  return addr;
}

Addr BinaryImage::BeginCodeCache() {
  COBRA_CHECK_MSG(code_cache_start_ == 0, "code cache already started");
  code_cache_start_ = code_end();
  return code_cache_start_;
}

std::size_t BinaryImage::SlotIndex(Addr pc) const {
  COBRA_CHECK_MSG(Contains(pc), "instruction address outside image");
  const unsigned slot = SlotOf(pc);
  COBRA_CHECK_MSG(slot < 3, "invalid slot number");
  const auto bundle =
      static_cast<std::size_t>((BundleAddr(pc) - code_base_) / kBundleBytes);
  return bundle * 3 + slot;
}

void BinaryImage::PatchRaw(Addr pc, const EncodedSlot& slot) {
  const std::size_t idx = SlotIndex(pc);
  slots_[idx] = slot;
  decoded_[idx] = Decode(slot);  // aborts on malformed patches
  ++patch_count_;
}

void BinaryImage::Patch(Addr pc, const Instruction& inst) {
  PatchRaw(pc, Encode(inst));
}

void BinaryImage::TestOnlyCorruptSlot(Addr pc, const EncodedSlot& slot) {
  slots_[SlotIndex(pc)] = slot;  // decoded twin intentionally left stale
}

void BinaryImage::SetLfetchExcl(Addr pc, bool excl) {
  EncodedSlot slot = Raw(pc);
  COBRA_CHECK_MSG(IsLfetchHead(slot.head), "slot does not hold an lfetch");
  if (excl) {
    slot.head |= enc::kExclBit;
  } else {
    slot.head &= ~enc::kExclBit;
  }
  PatchRaw(pc, slot);
}

void BinaryImage::NopOutLfetch(Addr pc) {
  const Instruction inst = Fetch(pc);
  COBRA_CHECK_MSG(inst.op == Opcode::kLfetch, "slot does not hold an lfetch");
  if (inst.post_inc) {
    // Preserve the address-stream side effect: base += inc.
    Instruction add = AddImm(inst.r2, inst.r2, inst.imm);
    add.unit = Unit::kM;  // occupies the same M slot it replaces
    add.qp = inst.qp;
    Patch(pc, add);
  } else {
    Instruction nop = Nop(Unit::kM);
    nop.qp = inst.qp;
    Patch(pc, nop);
  }
}

}  // namespace cobra::isa
