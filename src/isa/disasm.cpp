#include "isa/disasm.h"

#include <cstdio>

#include "support/check.h"

namespace cobra::isa {

namespace {

std::string Gr(int r) { return "r" + std::to_string(r); }
std::string Fr(int r) { return "f" + std::to_string(r); }
std::string Prn(int r) { return "p" + std::to_string(r); }

std::string Imm(std::int64_t v) { return std::to_string(v); }

const char* RelName(CmpRel rel) {
  switch (rel) {
    case CmpRel::kEq: return "eq";
    case CmpRel::kNe: return "ne";
    case CmpRel::kLt: return "lt";
    case CmpRel::kLe: return "le";
    case CmpRel::kGt: return "gt";
    case CmpRel::kGe: return "ge";
    case CmpRel::kLtu: return "ltu";
    case CmpRel::kGeu: return "geu";
  }
  return "?";
}

const char* FRelName(FCmpRel rel) {
  switch (rel) {
    case FCmpRel::kEq: return "eq";
    case FCmpRel::kNe: return "neq";
    case FCmpRel::kLt: return "lt";
    case FCmpRel::kLe: return "le";
    case FCmpRel::kGt: return "gt";
    case FCmpRel::kGe: return "ge";
  }
  return "?";
}

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kM: return "m";
    case Unit::kI: return "i";
    case Unit::kF: return "f";
    case Unit::kB: return "b";
  }
  return "?";
}

std::string LfetchMnemonic(const LfetchHint& hint) {
  std::string out = "lfetch";
  if (hint.fault) out += ".fault";
  if (hint.excl) out += ".excl";
  switch (hint.temporal) {
    case Temporal::kNone: break;
    case Temporal::kNt1: out += ".nt1"; break;
    case Temporal::kNt2: out += ".nt2"; break;
    case Temporal::kNta: out += ".nta"; break;
  }
  return out;
}

std::string MemRef(const Instruction& inst) {
  std::string out = "[" + Gr(inst.r2) + "]";
  if (inst.post_inc) out += "," + Imm(inst.imm);
  return out;
}

std::string BranchTarget(const Instruction& inst, Addr pc) {
  if (inst.op == Opcode::kBrl) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(inst.imm));
    return buf;
  }
  if (pc != 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(
                      BundleAddr(pc) +
                      static_cast<Addr>(inst.imm * static_cast<std::int64_t>(
                                                       kBundleBytes))));
    return buf;
  }
  return ".b+(" + Imm(inst.imm) + ")";
}

std::string Body(const Instruction& inst, Addr pc) {
  switch (inst.op) {
    case Opcode::kNop:
      return std::string("nop.") + UnitName(inst.unit) + " 0";
    case Opcode::kAddReg:
      return "add " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kSubReg:
      return "sub " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kAddImm:
      return "add " + Gr(inst.r1) + "=" + Imm(inst.imm) + "," + Gr(inst.r2);
    case Opcode::kShlAdd:
      return "shladd " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," +
             Imm(inst.imm) + "," + Gr(inst.r3);
    case Opcode::kAnd:
      return "and " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kOr:
      return "or " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kXor:
      return "xor " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kAndImm:
      return "and " + Gr(inst.r1) + "=" + Imm(inst.imm) + "," + Gr(inst.r2);
    case Opcode::kOrImm:
      return "or " + Gr(inst.r1) + "=" + Imm(inst.imm) + "," + Gr(inst.r2);
    case Opcode::kShlImm:
      return "shl " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Imm(inst.imm);
    case Opcode::kShrImm:
      return "shr.u " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Imm(inst.imm);
    case Opcode::kSarImm:
      return "shr " + Gr(inst.r1) + "=" + Gr(inst.r2) + "," + Imm(inst.imm);
    case Opcode::kMovImm:
      return "movl " + Gr(inst.r1) + "=" + Imm(inst.imm);
    case Opcode::kMovReg:
      return "mov " + Gr(inst.r1) + "=" + Gr(inst.r2);
    case Opcode::kSxt4:
      return "sxt4 " + Gr(inst.r1) + "=" + Gr(inst.r2);
    case Opcode::kZxt4:
      return "zxt4 " + Gr(inst.r1) + "=" + Gr(inst.r2);
    case Opcode::kCmp:
      return std::string("cmp.") + RelName(inst.rel) + " " + Prn(inst.p1) +
             "," + Prn(inst.p2) + "=" + Gr(inst.r2) + "," + Gr(inst.r3);
    case Opcode::kCmpImm:
      return std::string("cmp.") + RelName(inst.rel) + " " + Prn(inst.p1) +
             "," + Prn(inst.p2) + "=" + Imm(inst.imm) + "," + Gr(inst.r2);
    case Opcode::kMovToAr:
      return std::string("mov ar.") +
             (static_cast<AppReg>(inst.imm) == AppReg::kLC ? "lc" : "ec") +
             "=" + Gr(inst.r2);
    case Opcode::kMovFromAr:
      return "mov " + Gr(inst.r1) + "=ar." +
             (static_cast<AppReg>(inst.imm) == AppReg::kLC ? "lc" : "ec");
    case Opcode::kMovToPrRot:
      return "mov pr.rot=" + Imm(inst.imm);
    case Opcode::kClrRrb:
      return "clrrrb";
    case Opcode::kLd: {
      std::string mnem = "ld" + std::to_string(inst.size);
      if (inst.ld_hint == LoadHint::kBias) mnem += ".bias";
      if (inst.ld_hint == LoadHint::kAcq) mnem += ".acq";
      return mnem + " " + Gr(inst.r1) + "=" + MemRef(inst);
    }
    case Opcode::kSt:
      return "st" + std::to_string(inst.size) + " " + MemRef(inst) + "=" +
             Gr(inst.r3);
    case Opcode::kLdf:
      return "ldfd " + Fr(inst.r1) + "=" + MemRef(inst);
    case Opcode::kStf:
      return "stfd " + MemRef(inst) + "=" + Fr(inst.r3);
    case Opcode::kLfetch:
      return LfetchMnemonic(inst.lf_hint) + " " + MemRef(inst);
    case Opcode::kFma:
      return "fma.d " + Fr(inst.r1) + "=" + Fr(inst.r2) + "," + Fr(inst.r3) +
             "," + Fr(inst.extra);
    case Opcode::kFms:
      return "fms.d " + Fr(inst.r1) + "=" + Fr(inst.r2) + "," + Fr(inst.r3) +
             "," + Fr(inst.extra);
    case Opcode::kFnma:
      return "fnma.d " + Fr(inst.r1) + "=" + Fr(inst.r2) + "," + Fr(inst.r3) +
             "," + Fr(inst.extra);
    case Opcode::kFmov:
      return "mov " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFneg:
      return "fneg " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFabs:
      return "fabs " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFrcpa:
      return "frcpa.d " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFsqrt:
      return "fsqrt.d " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFmin:
      return "fmin.d " + Fr(inst.r1) + "=" + Fr(inst.r2) + "," + Fr(inst.r3);
    case Opcode::kFmax:
      return "fmax.d " + Fr(inst.r1) + "=" + Fr(inst.r2) + "," + Fr(inst.r3);
    case Opcode::kFcmp:
      return std::string("fcmp.") + FRelName(inst.frel) + " " + Prn(inst.p1) +
             "," + Prn(inst.p2) + "=" + Fr(inst.r2) + "," + Fr(inst.r3);
    case Opcode::kSetf:
      return "setf.d " + Fr(inst.r1) + "=" + Gr(inst.r2);
    case Opcode::kGetf:
      return "getf.d " + Gr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFcvtFx:
      return "fcvt.fx " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kFcvtXf:
      return "fcvt.xf " + Fr(inst.r1) + "=" + Fr(inst.r2);
    case Opcode::kBrCond:
      return "br.cond.sptk " + BranchTarget(inst, pc);
    case Opcode::kBrCloop:
      return "br.cloop.sptk " + BranchTarget(inst, pc);
    case Opcode::kBrCtop:
      return "br.ctop.sptk " + BranchTarget(inst, pc);
    case Opcode::kBrWtop:
      return "br.wtop.sptk " + BranchTarget(inst, pc);
    case Opcode::kBrl:
      return "brl.sptk " + BranchTarget(inst, pc);
    case Opcode::kBreak:
      return "break.b 0";
    case Opcode::kOpcodeCount:
      break;
  }
  COBRA_UNREACHABLE("bad opcode in disassembler");
}

}  // namespace

std::string Disassemble(const Instruction& inst, Addr pc) {
  std::string out;
  if (inst.qp != 0) {
    out = "(" + Prn(inst.qp) + ") ";
  }
  out += Body(inst, pc);
  return out;
}

std::string DisassembleRange(const BinaryImage& image, Addr begin, Addr end) {
  std::string out;
  char buf[64];
  for (Addr bundle = BundleAddr(begin); bundle < end; bundle += kBundleBytes) {
    std::snprintf(buf, sizeof buf, "0x%08llx:\n",
                  static_cast<unsigned long long>(bundle));
    out += buf;
    for (unsigned slot = 0; slot < 3; ++slot) {
      const Addr pc = MakePc(bundle, slot);
      out += "    ";
      out += Disassemble(image.Fetch(pc), pc);
      out += "\n";
    }
  }
  return out;
}

}  // namespace cobra::isa
