// Decoded-instruction representation and constructor helpers.
//
// The helpers below form a tiny in-code assembler: the kernel generator
// (src/kgen) builds loops out of these, and tests construct instruction
// sequences directly.  Field conventions:
//   r1      destination register (GR or FR depending on opcode)
//   r2      first source / memory base register
//   r3      second source / store value register / fma addend... see notes
//   p1, p2  predicate destinations for cmp/fcmp
//   qp      qualifying predicate (0 => always execute, since p0 == 1)
//   imm     immediate, shift count, post-increment, or branch displacement
//           (branch displacements are in bundles, relative to the branch's
//           own bundle; kBrl holds an absolute bundle address)
// For kFma/kFms/kFnma the addend lives in `extra` (f1 = f2*f3 ± f_extra).
#pragma once

#include <cstdint>

#include "isa/types.h"

namespace cobra::isa {

struct Instruction {
  Opcode op = Opcode::kNop;
  Unit unit = Unit::kI;
  std::uint8_t qp = 0;
  std::uint8_t r1 = 0;
  std::uint8_t r2 = 0;
  std::uint8_t r3 = 0;
  std::uint8_t extra = 0;   // fma addend register
  std::uint8_t p1 = 0;
  std::uint8_t p2 = 0;
  std::uint8_t size = 8;    // memory access size in bytes (1/2/4/8)
  bool post_inc = false;    // memory ops: base register += imm afterwards
  CmpRel rel = CmpRel::kEq;
  FCmpRel frel = FCmpRel::kEq;
  LoadHint ld_hint = LoadHint::kNone;
  LfetchHint lf_hint{};
  std::int64_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// ---- Constructor helpers (a tiny structured assembler) ----------------

Instruction Nop(Unit unit = Unit::kI);
Instruction Break();

Instruction AddReg(int rd, int rs1, int rs2);
Instruction SubReg(int rd, int rs1, int rs2);
Instruction AddImm(int rd, int rs, std::int64_t imm);
Instruction ShlAdd(int rd, int rs1, int count, int rs2);
Instruction AndReg(int rd, int rs1, int rs2);
Instruction OrReg(int rd, int rs1, int rs2);
Instruction XorReg(int rd, int rs1, int rs2);
Instruction AndImm(int rd, int rs, std::int64_t imm);
Instruction OrImm(int rd, int rs, std::int64_t imm);
Instruction ShlImm(int rd, int rs, int count);
Instruction ShrImm(int rd, int rs, int count);
Instruction SarImm(int rd, int rs, int count);
Instruction MovImm(int rd, std::int64_t imm);
Instruction MovReg(int rd, int rs);
Instruction Sxt4(int rd, int rs);
Instruction Zxt4(int rd, int rs);
Instruction Cmp(CmpRel rel, int p1, int p2, int rs1, int rs2);
Instruction CmpImm(CmpRel rel, int p1, int p2, int rs, std::int64_t imm);

Instruction MovToAr(AppReg ar, int rs);
Instruction MovFromAr(int rd, AppReg ar);
Instruction MovToPrRot(std::uint64_t mask);
Instruction ClrRrb();

Instruction Ld(int size, int rd, int rbase, LoadHint hint = LoadHint::kNone);
Instruction LdPostInc(int size, int rd, int rbase, std::int64_t inc,
                      LoadHint hint = LoadHint::kNone);
Instruction St(int size, int rbase, int rval);
Instruction StPostInc(int size, int rbase, int rval, std::int64_t inc);
Instruction Ldf(int fd, int rbase);
Instruction LdfPostInc(int fd, int rbase, std::int64_t inc);
Instruction Stf(int rbase, int fval);
Instruction StfPostInc(int rbase, int fval, std::int64_t inc);
Instruction Lfetch(int rbase, LfetchHint hint = {});
Instruction LfetchPostInc(int rbase, std::int64_t inc, LfetchHint hint = {});

Instruction Fma(int fd, int fa, int fb, int fc);
Instruction Fms(int fd, int fa, int fb, int fc);
Instruction Fnma(int fd, int fa, int fb, int fc);
Instruction Fmov(int fd, int fs);
Instruction Fneg(int fd, int fs);
Instruction Fabs(int fd, int fs);
Instruction Frcpa(int fd, int fs);
Instruction Fsqrt(int fd, int fs);
Instruction Fmin(int fd, int fa, int fb);
Instruction Fmax(int fd, int fa, int fb);
Instruction Fcmp(FCmpRel rel, int p1, int p2, int fa, int fb);
Instruction Setf(int fd, int rs);
Instruction Getf(int rd, int fs);
Instruction FcvtFx(int fd, int fs);
Instruction FcvtXf(int fd, int fs);

Instruction BrCond(int qp, std::int64_t bundle_disp);
Instruction BrCloop(std::int64_t bundle_disp);
Instruction BrCtop(std::int64_t bundle_disp);
Instruction BrWtop(int qp, std::int64_t bundle_disp);
Instruction Brl(Addr absolute_bundle_addr);

// Applies a qualifying predicate to any instruction: `Pred(16, Ldf(...))`
// renders as `(p16) ldfd ...`.
Instruction Pred(int qp, Instruction inst);

}  // namespace cobra::isa
