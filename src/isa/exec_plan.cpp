#include "isa/exec_plan.h"

namespace cobra::isa {

ExecPlan BuildExecPlan(const Instruction& inst) {
  ExecPlan p;
  p.imm = inst.imm;
  p.handler = static_cast<std::uint16_t>(inst.op);
  p.qp = inst.qp;
  p.r1 = inst.r1;
  p.r2 = inst.r2;
  p.r3 = inst.r3;
  p.extra = inst.extra;
  p.p1 = inst.p1;
  p.p2 = inst.p2;
  p.size = inst.size;

  std::uint8_t cls = 0;
  if (IsMemoryOp(inst.op)) cls |= kPlanMem;
  if (IsBranch(inst.op)) cls |= kPlanBranch;
  if (inst.op == Opcode::kSt || inst.op == Opcode::kStf) cls |= kPlanStore;
  if (inst.op == Opcode::kLdf || inst.op == Opcode::kStf) cls |= kPlanFp;
  if (inst.op == Opcode::kLfetch) {
    cls |= kPlanLfetch;
    if (inst.lf_hint.excl) cls |= kPlanExcl;
  }
  if (inst.op == Opcode::kLd && inst.ld_hint == LoadHint::kBias) {
    cls |= kPlanBias;
  }
  if (inst.post_inc) cls |= kPlanPostInc;
  p.cls = cls;

  switch (inst.op) {
    case Opcode::kCmp:
    case Opcode::kCmpImm:
      p.aux = static_cast<std::uint8_t>(inst.rel);
      break;
    case Opcode::kFcmp:
      p.aux = static_cast<std::uint8_t>(inst.frel);
      break;
    default:
      break;
  }
  return p;
}

ExecPlan StaleExecPlan() {
  ExecPlan p;
  p.handler = kPlanHandlerStale;
  return p;
}

}  // namespace cobra::isa
