// TranslationCache: per-core store of compiled superblocks plus the hot-loop
// profile that decides what gets compiled.
//
// Lifecycle (docs/DISPATCH.md has the full picture):
//   harvest — the interpreter reports every taken backward branch
//     (NoteLoopEdge); a direct-mapped profile table counts hits per loop
//     head until the hot threshold trips;
//   compile — CompileTrace flattens the trace into a Superblock, stored in
//     a pc-keyed map (a null entry negative-caches uncompilable heads);
//   chain   — superblock exits look up their successor block (Chain) and
//     memoize the result in the exit step, so hot control flow never
//     re-enters the dispatch loop;
//   invalidate — BeginSegment compares the image's plan_generation against
//     the generation the cache was built under and flushes everything on
//     mismatch. Patches only land between segments (COBRA's optimizer runs
//     as a round task at quantum boundaries, and direct patch calls happen
//     outside engine runs), so one check per segment covers every patch,
//     deploy, and revert. A capacity overflow also flushes wholesale —
//     dropping everything is cheaper and simpler than tracing chain edges.
//
// Determinism: the cache holds no simulated state. Every counter in
// TjitStats is host-class (tjit.* registry probes are RegisterHost'ed), and
// the executor that runs superblocks replays exactly the interpreter's
// per-step effects — so COBRA_TJIT=on|off produce bit-identical simulations
// by construction, which the fuzz harness and cobra_bench --compare verify.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "isa/types.h"
#include "tjit/superblock.h"

namespace cobra::isa {
class BinaryImage;
}

namespace cobra::tjit {

struct TjitConfig {
  bool enabled = true;             // COBRA_TJIT=off|0 disables
  std::uint32_t hot_threshold = 16;    // COBRA_TJIT_THRESHOLD
  std::uint32_t max_trace_steps = 512;
  std::size_t max_cache_steps = 1u << 18;  // COBRA_TJIT_CACHE (total steps)
};

// Reads COBRA_TJIT (on by default; "off"/"0" disables), COBRA_TJIT_CACHE
// (total-step capacity) and COBRA_TJIT_THRESHOLD (loop-edge hot count).
// The test-only process-global kill switch below is folded into `enabled`.
TjitConfig TjitConfigFromEnv();

// Test-only, process-global: force-disables the trace JIT regardless of the
// environment, so the fuzz harness can fingerprint-match a jitted run
// against the pure-interpreter reference in the same process.
void TestOnlySetTjitEnabled(bool enabled);

struct TjitStats {
  std::uint64_t hits = 0;        // dispatch lookups that found a block
  std::uint64_t misses = 0;      // dispatch lookups that did not
  std::uint64_t compiles = 0;    // superblocks compiled
  std::uint64_t compiled_steps = 0;
  std::uint64_t flushes = 0;     // whole-cache invalidations
  std::uint64_t chains = 0;      // direct block→block transfers
  std::uint64_t side_exits = 0;  // returns to the interpreter
};

class TranslationCache {
 public:
  TranslationCache(const isa::BinaryImage* image, const TjitConfig& cfg);

  // Called at every segment start. Flushes if the image's plan generation
  // moved since the cache was last (in)validated. Returns true on flush so
  // the core can drop its resume hint into a destroyed block.
  bool BeginSegment();

  // Dispatch lookup at a segment entry (pc must be bundle-aligned).
  Superblock* Lookup(isa::Addr pc);

  // Harvest: the interpreter just took a backward branch to `head`. Bumps
  // the profile counter, compiles at the hot threshold, and returns the
  // block when one exists (compiled now or earlier).
  Superblock* NoteLoopEdge(isa::Addr head);

  // Exit-to-entry chaining lookup (no profiling, no compilation).
  Superblock* Chain(isa::Addr pc);

  // Drops every block and the profile table.
  void Flush();

  const TjitConfig& config() const { return cfg_; }
  TjitStats& stats() { return stats_; }
  const TjitStats& stats() const { return stats_; }
  std::size_t total_steps() const { return total_steps_; }

 private:
  Superblock* CompileAt(isa::Addr entry);

  struct HotEntry {
    isa::Addr pc = 0;
    std::uint32_t count = 0;
    bool failed = false;       // compile attempted, trace empty
    Superblock* block = nullptr;
  };
  static constexpr std::size_t kHotEntries = 512;  // power of two

  const isa::BinaryImage* image_;
  const TjitConfig cfg_;
  // Sentinel forces the first BeginSegment to adopt the live generation.
  std::uint64_t generation_ = ~std::uint64_t{0};
  std::array<HotEntry, kHotEntries> hot_{};
  // Entry pc → block. A present-but-null mapping negative-caches a head
  // whose trace would not compile (e.g. the entry slot is a break).
  std::unordered_map<isa::Addr, std::unique_ptr<Superblock>> blocks_;
  std::size_t total_steps_ = 0;
  TjitStats stats_;
};

}  // namespace cobra::tjit
