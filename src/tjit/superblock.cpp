#include "tjit/superblock.h"

#include <unordered_map>

#include "isa/image.h"
#include "support/check.h"

namespace cobra::tjit {

namespace {

isa::Addr AdvanceOf(isa::Addr pc) {
  const unsigned slot = isa::SlotOf(pc);
  return slot < 2 ? pc + 1 : isa::BundleAddr(pc) + isa::kBundleBytes;
}

// Taken-path target, exactly as Core::DoBranchPlan computes it: relative
// branches are bundle-counted displacements from the branch's own bundle;
// brl carries an absolute target. TakeBranch bundle-aligns either way.
isa::Addr TakenTargetOf(const isa::ExecPlan& plan, isa::Addr pc) {
  if (static_cast<isa::Opcode>(plan.handler) == isa::Opcode::kBrl) {
    return isa::BundleAddr(static_cast<isa::Addr>(plan.imm));
  }
  return isa::BundleAddr(pc) +
         static_cast<isa::Addr>(
             plan.imm * static_cast<std::int64_t>(isa::kBundleBytes));
}

}  // namespace

bool CompileTrace(const isa::BinaryImage& image, isa::Addr entry,
                  std::uint32_t max_steps, Superblock* out) {
  COBRA_CHECK_MSG(isa::SlotOf(entry) == 0, "trace entry must be bundle-aligned");
  out->entry = entry;
  out->steps.clear();

  // Bundle-aligned pcs already in the trace. Branch targets are always
  // bundle-aligned (TakeBranch aligns), so this is enough for a backward
  // branch to close an internal loop edge.
  std::unordered_map<isa::Addr, std::uint32_t> head_idx;

  // The previous step's dangling continuation: written once the next step
  // exists (indices, not pointers — the vector reallocates as it grows).
  std::uint32_t pending_from = kNoStep;
  bool pending_taken_edge = false;

  isa::Addr pc = entry;
  while (out->steps.size() < max_steps) {
    if (!image.Contains(pc) || image.SlotKnownStale(pc)) break;
    const isa::ExecPlan plan = image.PlanAt(pc);
    if (plan.handler >= isa::kPlanHandlerStale) break;
    const auto op = static_cast<isa::Opcode>(plan.handler);
    if (op == isa::Opcode::kBreak) break;

    const auto my_idx = static_cast<std::uint32_t>(out->steps.size());
    Step s;
    s.plan = plan;
    s.pc = pc;
    s.slot0 = isa::SlotOf(pc) == 0;
    s.next_pc = AdvanceOf(pc);

    if (plan.cls & isa::kPlanBranch) {
      s.kind = StepKind::kBranch;
      s.taken_pc = TakenTargetOf(plan, pc);
    } else if (op == isa::Opcode::kNop) {
      // Fuse the whole run of consecutive nops (predicated or not — a
      // squashed nop and an executed nop have identical effects).
      s.kind = StepKind::kNopRun;
      std::uint16_t count = 0;
      std::uint16_t slot0s = 0;
      isa::Addr run_pc = pc;
      while (count < 0xffff && image.Contains(run_pc) &&
             !image.SlotKnownStale(run_pc) &&
             static_cast<isa::Opcode>(image.PlanAt(run_pc).handler) ==
                 isa::Opcode::kNop) {
        ++count;
        if (isa::SlotOf(run_pc) == 0) ++slot0s;
        run_pc = AdvanceOf(run_pc);
      }
      s.count = count;
      s.slot0_count = slot0s;
      s.next_pc = run_pc;
    } else if (plan.cls & isa::kPlanMem) {
      switch (op) {
        case isa::Opcode::kLd: s.kind = StepKind::kLd; break;
        case isa::Opcode::kLdf: s.kind = StepKind::kLdf; break;
        case isa::Opcode::kSt: s.kind = StepKind::kSt; break;
        case isa::Opcode::kStf: s.kind = StepKind::kStf; break;
        case isa::Opcode::kLfetch: s.kind = StepKind::kLfetch; break;
        default: COBRA_UNREACHABLE("unclassified memory opcode");
      }
    } else {
      s.kind = StepKind::kAlu;
    }

    // Register this step before resolving its own branch target, so a
    // single-bundle loop can link back to itself.
    if (s.slot0) head_idx.emplace(s.pc, my_idx);
    out->steps.push_back(s);
    if (pending_from != kNoStep) {
      Step& prev = out->steps[pending_from];
      (pending_taken_edge ? prev.taken_idx : prev.next_idx) = my_idx;
      pending_from = kNoStep;
    }

    if (s.kind == StepKind::kBranch) {
      const auto it = head_idx.find(out->steps[my_idx].taken_pc);
      if (it != head_idx.end()) {
        // The taken edge closes a loop inside the trace: the canonical
        // superblock shape. End the walk; the fall-through (loop exit)
        // side-exits or chains to another block.
        out->steps[my_idx].taken_idx = it->second;
        break;
      }
      if (op == isa::Opcode::kBrl) {
        // Unconditional: follow the target (the fall-through edge is
        // unreachable). This stitches straight through the head-bundle
        // redirects COBRA deploys into the code cache.
        pending_from = my_idx;
        pending_taken_edge = true;
        pc = out->steps[my_idx].taken_pc;
        continue;
      }
      // Conditional with an unknown taken target: assume fall-through and
      // keep compiling; the taken edge stays a side exit.
    }

    pending_from = my_idx;
    pending_taken_edge = false;
    pc = out->steps[my_idx].next_pc;
  }

  return !out->steps.empty();
}

}  // namespace cobra::tjit
