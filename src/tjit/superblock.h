// Superblocks: hot straight-line traces flattened into arrays of
// pre-resolved execution steps.
//
// The interpreter (cpu/core.cpp) dispatches every simulated instruction by
// looking up its exec plan, testing classification bits, and re-deriving
// branch targets and issue/slot geometry from the pc. A superblock hoists
// all of that to compile time: each Step carries a *copy* of the slot's
// ExecPlan plus everything the dispatch loop would recompute — the step
// kind (pre-routed opcode), the architectural pc, the fall-through and
// taken successor pcs, whether the step sits at slot 0 (and therefore
// charges the bundle-issue cycle), and the successor step indices so
// control transfers inside the trace are a single array index instead of a
// pc→slot-index translation. Runs of consecutive nops are fused into one
// batched step.
//
// Because every Step holds a plan copy, a superblock is immune to the
// image's plan vector reallocating — but NOT to patching: any slot rewrite
// changes what the copied plans should be. The translation cache
// (tjit/tcache.h) owns that invalidation contract via the image's
// plan_generation counter; superblocks themselves are plain data.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/exec_plan.h"
#include "isa/types.h"

namespace cobra::isa {
class BinaryImage;
}

namespace cobra::tjit {

// "No successor step": the executor leaves the trace here (side exit or
// fall-off-the-end) with the architectural pc already correct.
inline constexpr std::uint32_t kNoStep = 0xffff'ffffu;

enum class StepKind : std::uint8_t {
  kAlu,     // predicated handler-table dispatch (everything non-mem/branch)
  kNopRun,  // `count` consecutive nops fused into one batched step
  kLd,      // memory ops with the opcode pre-routed: no switch at run time
  kLdf,
  kSt,
  kStf,
  kLfetch,
  kBranch,
};

struct Superblock;

struct Step {
  isa::ExecPlan plan{};
  isa::Addr pc = 0;        // architectural pc of this step
  isa::Addr next_pc = 0;   // pc after the straight-line (fall-through) path
  isa::Addr taken_pc = 0;  // branches only: pc after the taken path
  std::uint32_t next_idx = kNoStep;   // successor on the straight-line path
  std::uint32_t taken_idx = kNoStep;  // branches only: successor when taken
  // Lazily resolved successor blocks at trace exits, one per edge. A pure
  // host-side memo of a TranslationCache lookup: a cache flush destroys
  // every block — including the steps holding these pointers — so a cached
  // chain can never dangle across an invalidation.
  Superblock* chain_next = nullptr;
  Superblock* chain_taken = nullptr;
  StepKind kind = StepKind::kAlu;
  bool slot0 = false;             // sits at slot 0: charges the issue cycle
  std::uint16_t count = 0;        // kNopRun: fused nop count
  std::uint16_t slot0_count = 0;  // kNopRun: how many of them sit at slot 0
};

struct Superblock {
  isa::Addr entry = 0;  // bundle-aligned
  std::vector<Step> steps;
};

// Compiles the straight-line trace starting at the bundle-aligned `entry`
// into `out`. The walk copies each slot's exec plan and follows the likely
// path: conditional branches assume fall-through (their taken edge becomes
// a side exit), brl is followed unconditionally (stitching across COBRA's
// deployed-trace redirects into the code cache), and a branch whose taken
// target is already in the trace closes an internal loop edge and ends the
// walk. The trace also ends at a break, a slot marked stale, the image
// boundary, or `max_steps`. Returns false (empty trace) when not even one
// step could be compiled.
bool CompileTrace(const isa::BinaryImage& image, isa::Addr entry,
                  std::uint32_t max_steps, Superblock* out);

}  // namespace cobra::tjit
