#include "tjit/tcache.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "isa/image.h"
#include "support/check.h"

namespace cobra::tjit {

namespace {

std::atomic<bool> g_test_enabled{true};

std::uint64_t EnvNumber(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::uint64_t value = 0;
  for (const char* p = env; *p != '\0'; ++p) {
    COBRA_CHECK_MSG(*p >= '0' && *p <= '9', "bad numeric env value");
    value = value * 10 + static_cast<std::uint64_t>(*p - '0');
  }
  return value;
}

}  // namespace

void TestOnlySetTjitEnabled(bool enabled) {
  g_test_enabled.store(enabled, std::memory_order_relaxed);
}

TjitConfig TjitConfigFromEnv() {
  TjitConfig cfg;
  if (const char* env = std::getenv("COBRA_TJIT"); env != nullptr) {
    const std::string_view v(env);
    cfg.enabled = !(v == "off" || v == "0" || v == "OFF");
  }
  if (!g_test_enabled.load(std::memory_order_relaxed)) cfg.enabled = false;
  cfg.hot_threshold = static_cast<std::uint32_t>(
      EnvNumber("COBRA_TJIT_THRESHOLD", cfg.hot_threshold));
  COBRA_CHECK_MSG(cfg.hot_threshold > 0, "COBRA_TJIT_THRESHOLD must be > 0");
  cfg.max_cache_steps = static_cast<std::size_t>(
      EnvNumber("COBRA_TJIT_CACHE", cfg.max_cache_steps));
  COBRA_CHECK_MSG(cfg.max_cache_steps >= cfg.max_trace_steps,
                  "COBRA_TJIT_CACHE must hold at least one full trace");
  return cfg;
}

TranslationCache::TranslationCache(const isa::BinaryImage* image,
                                   const TjitConfig& cfg)
    : image_(image), cfg_(cfg) {
  COBRA_CHECK(image != nullptr);
}

bool TranslationCache::BeginSegment() {
  const std::uint64_t gen = image_->plan_generation();
  if (gen == generation_) return false;
  Flush();
  generation_ = gen;
  return true;
}

void TranslationCache::Flush() {
  if (!blocks_.empty()) ++stats_.flushes;
  blocks_.clear();
  hot_.fill(HotEntry{});
  total_steps_ = 0;
}

Superblock* TranslationCache::Lookup(isa::Addr pc) {
  const auto it = blocks_.find(pc);
  if (it == blocks_.end() || it->second == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second.get();
}

Superblock* TranslationCache::Chain(isa::Addr pc) {
  const auto it = blocks_.find(pc);
  if (it == blocks_.end() || it->second == nullptr) return nullptr;
  ++stats_.chains;
  return it->second.get();
}

Superblock* TranslationCache::NoteLoopEdge(isa::Addr head) {
  HotEntry& e = hot_[(head / isa::kBundleBytes) & (kHotEntries - 1)];
  if (e.pc != head) {
    // Direct-mapped: a colliding head simply evicts the old profile.
    e = HotEntry{head, 1, false, nullptr};
    ++stats_.misses;
    return nullptr;
  }
  if (e.block != nullptr) {
    ++stats_.hits;
    return e.block;
  }
  if (e.failed || ++e.count < cfg_.hot_threshold) {
    ++stats_.misses;
    return nullptr;
  }
  Superblock* block = CompileAt(head);
  // CompileAt may have flushed (capacity) and reset `e`; re-establish the
  // entry either way so the next edge takes the fast path above.
  e.pc = head;
  e.block = block;
  e.failed = block == nullptr;
  if (block == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return block;
}

Superblock* TranslationCache::CompileAt(isa::Addr entry) {
  if (const auto it = blocks_.find(entry); it != blocks_.end()) {
    return it->second.get();
  }
  auto sb = std::make_unique<Superblock>();
  if (!CompileTrace(*image_, entry, cfg_.max_trace_steps, sb.get())) {
    blocks_.emplace(entry, nullptr);
    return nullptr;
  }
  if (total_steps_ + sb->steps.size() > cfg_.max_cache_steps) {
    // Valgrind-style wholesale invalidation: chain edges are never traced,
    // so partial eviction would leave dangling block pointers.
    Flush();
  }
  total_steps_ += sb->steps.size();
  ++stats_.compiles;
  stats_.compiled_steps += sb->steps.size();
  Superblock* raw = sb.get();
  blocks_.emplace(entry, std::move(sb));
  return raw;
}

}  // namespace cobra::tjit
