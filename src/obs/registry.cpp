#include "obs/registry.h"

#include <algorithm>

#include "support/check.h"

namespace cobra::obs {

bool Snapshot::Has(std::string_view name) const {
  return std::any_of(metrics.begin(), metrics.end(),
                     [&](const Metric& m) { return m.name == name; });
}

std::uint64_t Snapshot::Value(std::string_view name) const {
  for (const Metric& m : metrics) {
    if (m.name == name) return m.value;
  }
  COBRA_CHECK_MSG(false, "snapshot has no such metric");
  return 0;
}

std::uint64_t Snapshot::ValueOr(std::string_view name,
                                std::uint64_t fallback) const {
  for (const Metric& m : metrics) {
    if (m.name == name) return m.value;
  }
  return fallback;
}

std::uint64_t Snapshot::SumPrefix(std::string_view prefix) const {
  std::uint64_t sum = 0;
  for (const Metric& m : metrics) {
    if (m.name.size() >= prefix.size() &&
        std::string_view(m.name).substr(0, prefix.size()) == prefix) {
      sum += m.value;
    }
  }
  return sum;
}

std::uint64_t Snapshot::Fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto Mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;  // FNV prime
  };
  for (const Metric& m : metrics) {
    if (m.host) continue;  // host-side readings are nondeterministic
    for (const char c : m.name) Mix(static_cast<std::uint8_t>(c));
    Mix(0);
    std::uint64_t v = m.value;
    for (int i = 0; i < 8; ++i) {
      Mix(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  return h;
}

std::string Snapshot::ToString() const {
  std::string out;
  for (const Metric& m : metrics) {
    if (m.host) continue;  // keep dumps diffable across runs
    out += m.name;
    out += ' ';
    out += std::to_string(m.value);
    out += '\n';
  }
  return out;
}

int Registry::Register(std::string name, Probe probe) {
  return RegisterEntry(std::move(name), std::move(probe), /*host=*/false);
}

int Registry::RegisterHost(std::string name, Probe probe) {
  return RegisterEntry(std::move(name), std::move(probe), /*host=*/true);
}

int Registry::RegisterEntry(std::string name, Probe probe, bool host) {
  COBRA_CHECK_MSG(!name.empty(), "metric name must not be empty");
  COBRA_CHECK_MSG(probe != nullptr, "metric probe must be callable");
  for (const Entry& e : entries_) {
    COBRA_CHECK_MSG(e.name != name, "duplicate metric name");
  }
  const int id = next_id_++;
  entries_.push_back(Entry{id, std::move(name), std::move(probe), host});
  return id;
}

void Registry::Unregister(int id) {
  std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
}

Snapshot Registry::Take() const {
  Snapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const Entry& e : entries_) {
    snap.metrics.push_back(Metric{e.name, e.probe(), e.host});
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return snap;
}

}  // namespace cobra::obs
