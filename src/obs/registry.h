// Central observability registry: one hierarchical namespace of integer
// metrics for the whole simulated machine.
//
// Every subsystem that owns counters — the cache stacks and coherence
// fabric, the execution engine, the perfmon sampling driver, the COBRA
// runtime — registers *probes* (name + pull function) into the machine's
// registry. A probe reads the subsystem's live counter when a snapshot is
// taken; nothing is copied or synchronized on the hot path, so registering
// a metric costs nothing per simulated cycle.
//
// Names are dot-hierarchical (`mem.cpu0.l3.miss`, `bus.occupancy`,
// `cobra.deployments`, `engine.quanta`) and unique within a registry.
// `Take()` returns a Snapshot: a name-sorted list of (name, value) pairs
// with a stable fingerprint — the single artifact the benchmark driver
// serializes, the determinism tests compare across execution engines, and
// ad-hoc debugging dumps with `ToString()`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cobra::obs {

struct Metric {
  std::string name;
  std::uint64_t value = 0;
  // Host-side measurement (wall-clock, host throughput): genuinely
  // nondeterministic, so excluded from Fingerprint() and ToString() — the
  // determinism contract covers simulated state only.
  bool host = false;
};

// A point-in-time reading of every registered probe, sorted by name.
struct Snapshot {
  std::vector<Metric> metrics;

  bool Has(std::string_view name) const;
  // Value of `name`; aborts if the metric is not present.
  std::uint64_t Value(std::string_view name) const;
  // Value of `name`, or `fallback` when the metric is not present (for
  // optional families like cobra.planner.* that only exist while the
  // owning subsystem is attached).
  std::uint64_t ValueOr(std::string_view name, std::uint64_t fallback) const;
  // Sum of every metric whose name starts with `prefix`.
  std::uint64_t SumPrefix(std::string_view prefix) const;

  // FNV-1a over the sorted (name, value) stream: bit-identical snapshots
  // (the determinism contract between execution engines) hash identically,
  // and any divergent counter changes the fingerprint. Host metrics are
  // skipped — they vary run to run by construction.
  std::uint64_t Fingerprint() const;

  // One "name value" line per metric (diff-friendly). Host metrics are
  // skipped so the dump stays comparable across runs, like Fingerprint().
  std::string ToString() const;
};

class Registry {
 public:
  using Probe = std::function<std::uint64_t()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registers a probe under a unique name; aborts on a duplicate. The
  // returned id unregisters the probe (components outliving the registry
  // owner need not bother; shorter-lived ones use a Registration group).
  int Register(std::string name, Probe probe);
  // Registers a *host* probe: sampled into snapshots like any metric but
  // excluded from determinism fingerprints and ToString dumps (see Metric).
  int RegisterHost(std::string name, Probe probe);
  void Unregister(int id);

  Snapshot Take() const;
  std::size_t size() const { return entries_.size(); }

  // RAII group of registrations for components with a shorter lifetime
  // than the machine (the COBRA runtime, the sampling driver).
  class Registration {
   public:
    Registration() = default;
    explicit Registration(Registry* registry) : registry_(registry) {}
    ~Registration() { Release(); }
    Registration(Registration&& o) noexcept
        : registry_(o.registry_), ids_(std::move(o.ids_)) {
      o.registry_ = nullptr;
      o.ids_.clear();
    }
    Registration& operator=(Registration&& o) noexcept {
      if (this != &o) {
        Release();
        registry_ = o.registry_;
        ids_ = std::move(o.ids_);
        o.registry_ = nullptr;
        o.ids_.clear();
      }
      return *this;
    }

    void Add(std::string name, Probe probe) {
      if (registry_ != nullptr) {
        ids_.push_back(registry_->Register(std::move(name), std::move(probe)));
      }
    }
    void Release() {
      if (registry_ != nullptr) {
        for (const int id : ids_) registry_->Unregister(id);
      }
      ids_.clear();
    }

   private:
    Registry* registry_ = nullptr;
    std::vector<int> ids_;
  };

 private:
  struct Entry {
    int id = 0;
    std::string name;
    Probe probe;
    bool host = false;
  };
  int RegisterEntry(std::string name, Probe probe, bool host);

  std::vector<Entry> entries_;
  int next_id_ = 0;
};

}  // namespace cobra::obs
