// Chrome trace-event timeline sink (chrome://tracing / Perfetto JSON).
//
// When the COBRA_TRACE environment variable names a file, every Machine in
// the process appends its timeline to one shared sink, written out as a
// Chrome trace-event JSON document at exit:
//   * engine quanta — one complete event per quantum window, on a
//     dedicated "engine" track per machine;
//   * coherence transactions — one complete event per fabric request
//     (name = bus op, duration = transaction latency incl. queuing), on
//     the requesting CPU's track;
//   * COBRA deploy / revert / reapply and epoch verdicts — instant events
//     on the "cobra" track.
// Each Machine gets its own pid (trace "process"), so successive
// experiments in one driver run land side by side on the same timeline.
//
// Timestamps are simulated cycles written into the trace's microsecond
// field (1 cycle renders as 1 us); traces are therefore deterministic and
// diffable, like everything else in the simulator.
//
// Appends are not internally synchronized: all emitting sites run on the
// engine's coordinating thread (fabric transactions commit at barriers,
// COBRA wakes inside round tasks), which the fabric guard already
// enforces for the transaction path.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/simtypes.h"

namespace cobra::obs {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Starts a new trace process (one per Machine); emits the
  // process_name metadata record and returns the pid to tag events with.
  int BeginProcess(const std::string& name);
  // Names a thread track within a process (e.g. "cpu0", "engine").
  void NameThread(int pid, int tid, const std::string& name);

  // Complete event ("ph":"X"): a span [ts, ts+dur) on (pid, tid).
  void Complete(int pid, int tid, const char* category, std::string name,
                Cycle ts, Cycle dur);
  // Instant event ("ph":"i", thread scope).
  void Instant(int pid, int tid, const char* category, std::string name,
               Cycle ts);

  std::size_t event_count() const { return events_.size(); }

  // Serializes the trace as {"traceEvents":[...]} JSON.
  void WriteJson(std::ostream& out) const;
  // WriteJson to `path`; aborts if the file cannot be written.
  void WriteFile(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';
    const char* category = "";
    std::string name;
    int pid = 0;
    int tid = 0;
    Cycle ts = 0;
    Cycle dur = 0;
  };
  std::vector<Event> events_;
  int next_pid_ = 1;
};

// The process-wide sink gated by COBRA_TRACE: returns nullptr when the
// variable is unset/empty; otherwise a shared sink whose contents are
// written to the named file at process exit (and on every FlushEnvTrace).
TraceSink* EnvTraceSink();
// Writes the env-gated sink to its file now (no-op when tracing is off).
// The benchmark driver calls this after each experiment so a crash keeps
// the timeline collected so far.
void FlushEnvTrace();

}  // namespace cobra::obs
