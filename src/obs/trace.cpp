#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/check.h"

namespace cobra::obs {
namespace {

// JSON string escaping for event/track names (quotes, backslashes,
// control characters; names here are ASCII by construction).
void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

int TraceSink::BeginProcess(const std::string& name) {
  const int pid = next_pid_++;
  Event e;
  e.ph = 'M';
  e.category = "__metadata";
  e.name = std::string("process_name") + '\x01' + name;
  e.pid = pid;
  events_.push_back(std::move(e));
  return pid;
}

void TraceSink::NameThread(int pid, int tid, const std::string& name) {
  Event e;
  e.ph = 'M';
  e.category = "__metadata";
  e.name = std::string("thread_name") + '\x01' + name;
  e.pid = pid;
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceSink::Complete(int pid, int tid, const char* category,
                         std::string name, Cycle ts, Cycle dur) {
  Event e;
  e.ph = 'X';
  e.category = category;
  e.name = std::move(name);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.dur = dur;
  events_.push_back(std::move(e));
}

void TraceSink::Instant(int pid, int tid, const char* category,
                        std::string name, Cycle ts) {
  Event e;
  e.ph = 'i';
  e.category = category;
  e.name = std::move(name);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  events_.push_back(std::move(e));
}

void TraceSink::WriteJson(std::ostream& out) const {
  std::string buf;
  buf.reserve(events_.size() * 96 + 64);
  buf += "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) buf += ",\n";
    first = false;
    buf += "{\"ph\":\"";
    buf += e.ph;
    buf += "\",\"pid\":";
    buf += std::to_string(e.pid);
    buf += ",\"tid\":";
    buf += std::to_string(e.tid);
    if (e.ph == 'M') {
      // Metadata: name carries "kind\x01value" (process_name/thread_name).
      const std::size_t sep = e.name.find('\x01');
      buf += ",\"name\":\"";
      AppendEscaped(buf, e.name.substr(0, sep));
      buf += "\",\"args\":{\"name\":\"";
      AppendEscaped(buf, e.name.substr(sep + 1));
      buf += "\"}}";
      continue;
    }
    buf += ",\"ts\":";
    buf += std::to_string(e.ts);
    if (e.ph == 'X') {
      buf += ",\"dur\":";
      buf += std::to_string(e.dur);
    }
    if (e.ph == 'i') buf += ",\"s\":\"t\"";
    buf += ",\"cat\":\"";
    AppendEscaped(buf, e.category);
    buf += "\",\"name\":\"";
    AppendEscaped(buf, e.name);
    buf += "\"}";
  }
  buf += "\n]}\n";
  out << buf;
}

void TraceSink::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  COBRA_CHECK_MSG(out.good(), "COBRA_TRACE: cannot open trace file");
  WriteJson(out);
  COBRA_CHECK_MSG(out.good(), "COBRA_TRACE: trace file write failed");
}

namespace {

struct EnvTrace {
  std::string path;
  TraceSink sink;

  ~EnvTrace() { sink.WriteFile(path); }

  static EnvTrace* Get() {
    static EnvTrace* instance = [] {
      const char* path = std::getenv("COBRA_TRACE");
      if (path == nullptr || *path == '\0') return static_cast<EnvTrace*>(nullptr);
      auto* t = new EnvTrace;  // freed at exit via the atexit handler below
      t->path = path;
      std::atexit([] { delete Get(); });
      return t;
    }();
    return instance;
  }
};

}  // namespace

TraceSink* EnvTraceSink() {
  EnvTrace* t = EnvTrace::Get();
  return t == nullptr ? nullptr : &t->sink;
}

void FlushEnvTrace() {
  EnvTrace* t = EnvTrace::Get();
  if (t != nullptr) t->sink.WriteFile(t->path);
}

}  // namespace cobra::obs

