#include "kgen/emitters.h"

#include <bit>

#include "isa/assembler.h"
#include "support/check.h"

namespace cobra::kgen {

using namespace cobra::isa;

namespace {

LfetchHint HintOf(const PrefetchPolicy& pf) {
  LfetchHint hint;
  hint.temporal = Temporal::kNt1;
  hint.excl = pf.excl;
  return hint;
}

// Initial prefetch burst on the stored stream (Figure 2's six lfetches of
// y[0]+8 .. y[0]+648), using scratch registers r8..r13.
void EmitPrologueBurst(Assembler& a, int base_arg_reg,
                       const PrefetchPolicy& pf,
                       std::vector<Addr>* lfetch_pcs = nullptr) {
  if (!pf.enabled) return;
  COBRA_CHECK_MSG(pf.prologue_prefetches <= 6,
                  "prologue burst limited by scratch registers r8..r13");
  for (int j = 0; j < pf.prologue_prefetches; ++j) {
    const int reg = 8 + j;
    a.Emit(AddImm(reg, base_arg_reg, 8 + 128 * j));
  }
  for (int j = 0; j < pf.prologue_prefetches; ++j) {
    if (lfetch_pcs != nullptr) lfetch_pcs->push_back(a.CurrentPc());
    a.Emit(Lfetch(8 + j, HintOf(pf)));
  }
}

// Guard for n <= 0 held in `n_reg`: branches to `exit` when empty.
void EmitEmptyGuard(Assembler& a, int n_reg, Assembler::Label exit) {
  a.Emit(CmpImm(CmpRel::kLe, 8, 0, n_reg, 0));  // p8 = (n <= 0)... see note
  a.EmitBranch(BrCond(8, 0), exit);
}

}  // namespace

int StreamOpInputs(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy:
    case StreamOp::kScale:
      return 1;
    case StreamOp::kDaxpy:
    case StreamOp::kAdd:
    case StreamOp::kTriad:
      return 2;
    case StreamOp::kStencil3Sym:
    case StreamOp::kBlend4:
      return 3;
  }
  COBRA_UNREACHABLE("bad stream op");
}

const char* StreamOpName(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy: return "copy";
    case StreamOp::kScale: return "scale";
    case StreamOp::kDaxpy: return "daxpy";
    case StreamOp::kAdd: return "add";
    case StreamOp::kTriad: return "triad";
    case StreamOp::kStencil3Sym: return "stencil3sym";
    case StreamOp::kBlend4: return "blend4";
  }
  COBRA_UNREACHABLE("bad stream op");
}

// ---------------------------------------------------------------------------
// DAXPY (Figure 2). args: r14 = &x, r15 = &y, r16 = n; f6 = a.
//
// Software pipeline: stage 0 loads (p16), stage 5 fma (p21), stage 7 store
// (p23). The x pointer is the static r2 with post-increment; the y load
// address rotates down the chain r32 -> r33 (written ahead each iteration);
// after seven rotations the same chain value reappears as the store address
// r40. The single lfetch per iteration alternates between the x and y
// prefetch chains via the rotating pair written at r41 (+16 every other
// iteration per chain = +8 per iteration per stream).
LoopInfo EmitDaxpy(Program& prog, const std::string& name,
                   const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;

  const Addr entry = prog.image().code_end();
  info.entry = entry;

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  a.Emit(ClrRrb());
  EmitEmptyGuard(a, 16, exit);

  a.Emit(MovReg(2, 14));    // x pointer (static, post-incremented)
  a.Emit(MovReg(33, 15));   // y load-address chain seed (rotating)

  EmitPrologueBurst(a, 15, pf);

  if (pf.enabled && !pf.excl) {
    // Steady-state prefetch chain seeds: the lfetch reads logical r43 every
    // iteration, so the value iteration 0 sees is seeded at r43 and the one
    // iteration 1 sees at r42 (one rotation earlier in the frame). The x and
    // y chains then alternate, each advancing 16 bytes per revisit.
    a.Emit(AddImm(43, 14, pf.distance_bytes));      // x chain (even iters)
    a.Emit(AddImm(42, 15, pf.distance_bytes + 8));  // y chain (odd iters)
  }
  if (pf.enabled && pf.excl) {
    // .excl study variant (Figure 3b): the exclusive hint only makes sense
    // on the *stored* stream, so the compiler splits the alternating chain
    // into two post-increment lfetches — x stays a plain prefetch, y gets
    // `.excl`. (Prologue burst above is on y and carries .excl as well.)
    a.Emit(AddImm(28, 14, pf.distance_bytes));
    a.Emit(AddImm(29, 15, pf.distance_bytes));
  }

  a.Emit(AddImm(8, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.Emit(MovImm(9, 8));  // 8 pipeline stages
  a.Emit(MovToAr(AppReg::kEC, 9));
  a.Emit(MovToPrRot(1));  // p16 = 1
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();

  // { .mii (p16) ldfd f32=[r2],8 }
  a.Emit(Pred(16, LdfPostInc(32, 2, 8)));
  a.Emit(Nop(Unit::kI));
  a.Emit(Nop(Unit::kI));
  // { .mmb (p16) ldfd f38=[r33] ; (p16) lfetch.nt1 [r43] }
  a.Emit(Pred(16, Ldf(38, 33)));
  if (pf.enabled && !pf.excl) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(Pred(16, Lfetch(43, HintOf(pf))));
  } else if (pf.enabled && pf.excl) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    isa::LfetchHint plain;
    a.Emit(Pred(16, LfetchPostInc(28, 8, plain)));  // x stream, plain
  } else {
    a.Emit(Nop(Unit::kM));
  }
  a.Emit(Nop(Unit::kB));
  // { .mfi (p23) stfd [r40]=f46 ; (p21) fma.d f44=f6,f37,f43 ;
  //         (p16) add r41=16,r43 }
  a.Emit(Pred(23, Stf(40, 46)));
  a.Emit(Pred(21, Fma(44, 6, 37, 43)));
  if (pf.enabled && !pf.excl) {
    a.Emit(Pred(16, AddImm(41, 43, 16)));
  } else if (pf.enabled && pf.excl) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(Pred(16, LfetchPostInc(29, 8, HintOf(pf))));  // y stream, .excl
  } else {
    a.Emit(Nop(Unit::kI));
  }
  // { .mib (p16) add r32=8,r33 ; br.ctop .b1_22 }
  a.Emit(Pred(16, AddImm(32, 33, 8)));
  info.back_branch_pc = a.EmitBranch(BrCtop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Generic stream loop. args: r14..r16 = inputs, r17 = output, r18 = n;
// f6 = a, f7 = b. Two-stage pipeline: loads at p16, compute+store at p18.
LoopInfo EmitStreamLoop(Program& prog, const std::string& name,
                        const StreamLoopSpec& spec) {
  const int k = StreamOpInputs(spec.op);
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();
  const PrefetchPolicy& pf = spec.prefetch;

  a.Emit(ClrRrb());
  EmitEmptyGuard(a, 18, exit);

  for (int s = 0; s < k; ++s) a.Emit(MovReg(26 + s, ArgReg(s)));
  a.Emit(MovReg(29, 17));  // output pointer

  EmitPrologueBurst(a, 17, pf);

  // Steady-state prefetch. For equal stream strides, one rotating chain per
  // prefetched stream walked round-robin by a single lfetch (the Figure 2
  // trick); for mixed strides, one post-increment lfetch per stream.
  std::vector<int> chain_args;     // argument register carrying each base
  std::vector<int> chain_strides;  // per-iteration advance of that stream
  bool alternating_chain = true;
  if (pf.enabled) {
    std::vector<int> streams = spec.prefetch_streams;
    if (streams.empty()) {
      for (int s = 0; s < k; ++s) streams.push_back(s);
      if (spec.output_aliases_input < 0) streams.push_back(3);
    }
    for (int s : streams) {
      COBRA_CHECK(s >= 0 && s <= 3);
      chain_args.push_back(s == 3 ? 17 : ArgReg(s));
      chain_strides.push_back(
          s == 3 ? spec.output_stride
                 : spec.input_strides[static_cast<std::size_t>(s)]);
    }
    COBRA_CHECK_MSG(chain_args.size() <= 4, "at most four prefetch chains");
    for (int stride : chain_strides) {
      if (stride != chain_strides.front()) alternating_chain = false;
    }
    if (alternating_chain) {
      // The single lfetch reads logical r40 every iteration; iteration j
      // (j < #chains) therefore sees the value seeded at logical r(40 - j).
      for (std::size_t c = 0; c < chain_args.size(); ++c) {
        a.Emit(AddImm(40 - static_cast<int>(c), chain_args[c],
                      pf.distance_bytes + 8 * static_cast<int>(c)));
      }
    } else {
      // Static post-increment cursors in r21..r24.
      for (std::size_t c = 0; c < chain_args.size(); ++c) {
        a.Emit(AddImm(21 + static_cast<int>(c), chain_args[c],
                      pf.distance_bytes));
      }
    }
  }

  a.Emit(AddImm(8, 18, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.Emit(MovImm(9, 3));  // EC: 2 stages + 1
  a.Emit(MovToAr(AppReg::kEC, 9));
  a.Emit(MovToPrRot(1));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();

  for (int s = 0; s < k; ++s) {
    a.Emit(Pred(16, LdfPostInc(32 + 4 * s, 26 + s,
                               spec.input_strides[static_cast<std::size_t>(s)])));
  }
  if (pf.enabled) {
    if (alternating_chain) {
      const int c = static_cast<int>(chain_args.size());
      info.lfetch_pcs.push_back(a.CurrentPc());
      a.Emit(Pred(16, Lfetch(40, HintOf(pf))));
      a.Emit(Pred(16, AddImm(40 - c, 40, chain_strides.front() * c)));
    } else {
      for (std::size_t c = 0; c < chain_args.size(); ++c) {
        info.lfetch_pcs.push_back(a.CurrentPc());
        a.Emit(Pred(16, LfetchPostInc(21 + static_cast<int>(c),
                                      chain_strides[c], HintOf(pf))));
      }
    }
  }

  // Compute at stage 2: loaded values have rotated twice (f32 -> f34 ...).
  switch (spec.op) {
    case StreamOp::kCopy:
      a.Emit(Pred(18, Fmov(44, 34)));
      break;
    case StreamOp::kScale:
      a.Emit(Pred(18, Fma(44, 6, 34, 0)));
      break;
    case StreamOp::kDaxpy:
      a.Emit(Pred(18, Fma(44, 6, 34, 38)));
      break;
    case StreamOp::kAdd:
      a.Emit(Pred(18, Fma(44, 34, 1, 38)));
      break;
    case StreamOp::kTriad:
      a.Emit(Pred(18, Fma(44, 6, 38, 34)));
      break;
    case StreamOp::kStencil3Sym:
      // out = a*(l + r) + b*c
      a.Emit(Pred(18, Fma(45, 34, 1, 42)));
      a.Emit(Pred(18, Fma(46, 7, 38, 0)));
      a.Emit(Pred(18, Fma(44, 6, 45, 46)));
      break;
    case StreamOp::kBlend4:
      // out = a*x*y + b*w
      a.Emit(Pred(18, Fma(45, 6, 34, 0)));
      a.Emit(Pred(18, Fma(46, 7, 42, 0)));
      a.Emit(Pred(18, Fma(44, 45, 38, 46)));
      break;
  }
  a.Emit(Pred(18, StfPostInc(29, 44, spec.output_stride)));
  info.back_branch_pc = a.EmitBranch(BrCtop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Reductions. args: r14 = &x, r15 = &y (dot), r16 = n, r17 = &result.
LoopInfo EmitReduction(Program& prog, const std::string& name, ReduceOp op,
                       const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto store_out = a.NewLabel();
  const auto loop = a.NewLabel();
  const bool two_streams = op == ReduceOp::kDot;

  if (op == ReduceOp::kMax) {
    // Seed the accumulator with -1e300 via an integer bit image.
    a.Emit(MovImm(8, static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(
                         -1e300))));
    a.Emit(Setf(8, 8));
  } else {
    a.Emit(Fma(8, 0, 0, 0));  // acc = 0
  }

  EmitEmptyGuard(a, 16, store_out);

  a.Emit(MovReg(26, 14));
  if (two_streams) a.Emit(MovReg(27, 15));
  if (pf.enabled) {
    a.Emit(AddImm(28, 14, pf.distance_bytes));
    if (two_streams) a.Emit(AddImm(29, 15, pf.distance_bytes));
  }
  a.Emit(AddImm(9, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 9));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdfPostInc(10, 26, 8));
  if (two_streams) a.Emit(LdfPostInc(11, 27, 8));
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 8, HintOf(pf)));
    if (two_streams) {
      info.lfetch_pcs.push_back(a.CurrentPc());
      a.Emit(LfetchPostInc(29, 8, HintOf(pf)));
    }
  }
  switch (op) {
    case ReduceOp::kSum: a.Emit(Fma(8, 10, 1, 8)); break;
    case ReduceOp::kDot: a.Emit(Fma(8, 10, 11, 8)); break;
    case ReduceOp::kSumSq: a.Emit(Fma(8, 10, 10, 8)); break;
    case ReduceOp::kMax: a.Emit(Fmax(8, 8, 10)); break;
  }
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(store_out);
  a.Emit(Stf(17, 8));
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// CSR sparse matvec. args: r14 = &rowptr, r15 = &col, r16 = &vals,
// r17 = &p, r18 = &q, r19 = row_begin, r20 = row_end.
LoopInfo EmitCsrMatvec(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto outer = a.NewLabel();
  const auto inner = a.NewLabel();
  const auto row_done = a.NewLabel();
  const auto exit = a.NewLabel();

  a.Emit(MovReg(26, 19));  // i = row_begin
  a.FlushBundle();

  a.Bind(outer);
  a.Emit(Cmp(CmpRel::kGe, 8, 0, 26, 20));
  a.EmitBranch(BrCond(8, 0), exit);

  a.Emit(ShlAdd(27, 26, 3, 14));   // &rowptr[i]
  a.Emit(Ld(8, 28, 27));           // k0
  a.Emit(AddImm(30, 27, 8));
  a.Emit(Ld(8, 29, 30));           // k1
  a.Emit(SubReg(31, 29, 28));      // len
  a.Emit(Fma(9, 0, 0, 0));         // acc = 0
  a.Emit(CmpImm(CmpRel::kEq, 9, 0, 31, 0));
  a.EmitBranch(BrCond(9, 0), row_done);

  a.Emit(AddImm(10, 31, -1));
  a.Emit(MovToAr(AppReg::kLC, 10));
  a.Emit(ShlAdd(11, 28, 3, 15));   // col cursor
  a.Emit(ShlAdd(12, 28, 3, 16));   // val cursor
  if (pf.enabled) a.Emit(AddImm(24, 12, pf.distance_bytes));
  a.FlushBundle();

  a.Bind(inner);
  if (info.head == 0) info.head = prog.image().code_end();
  a.Emit(LdPostInc(8, 13, 11, 8));   // col[k]
  a.Emit(LdfPostInc(10, 12, 8));     // vals[k]
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(24, 8, HintOf(pf)));
  }
  a.Emit(ShlAdd(25, 13, 3, 17));     // &p[col[k]] (irregular: not prefetched)
  a.Emit(Ldf(11, 25));
  a.Emit(Fma(9, 10, 11, 9));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), inner);

  a.Bind(row_done);
  a.Emit(ShlAdd(27, 26, 3, 18));
  a.Emit(Stf(27, 9));
  a.Emit(AddImm(26, 26, 1));
  a.EmitBranch(BrCond(0, 0), outer);  // p0: unconditional

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Histogram. args: r14 = &key (int32), r15 = &hist (int32), r16 = n.
LoopInfo EmitHistogram(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  EmitEmptyGuard(a, 16, exit);
  a.Emit(MovReg(26, 14));
  if (pf.enabled) a.Emit(AddImm(28, 14, pf.distance_bytes));
  a.Emit(AddImm(8, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdPostInc(4, 8, 26, 4));
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 4, HintOf(pf)));
  }
  a.Emit(ShlAdd(9, 8, 2, 15));  // &hist[key]
  a.Emit(Ld(4, 10, 9));
  a.Emit(AddImm(10, 10, 1));
  a.Emit(St(4, 9, 10));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Int32 fill. args: r14 = &buf, r15 = n, r16 = value.
LoopInfo EmitFill32(Program& prog, const std::string& name,
                    const PrefetchPolicy& pf) {
  (void)pf;  // pure store stream: compilers do not prefetch it
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  EmitEmptyGuard(a, 15, exit);
  a.Emit(MovReg(26, 14));
  a.Emit(AddImm(8, 15, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(StPostInc(4, 26, 16, 4));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Int32 accumulate. args: r14 = &src, r15 = &dst, r16 = n.
LoopInfo EmitIntAccumulate(Program& prog, const std::string& name,
                           const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  EmitEmptyGuard(a, 16, exit);
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 15));
  if (pf.enabled) a.Emit(AddImm(28, 14, pf.distance_bytes));
  a.Emit(AddImm(8, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdPostInc(4, 8, 26, 4));
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 4, HintOf(pf)));
  }
  a.Emit(Ld(4, 9, 27));
  a.Emit(AddReg(9, 9, 8));
  a.Emit(StPostInc(4, 27, 9, 4));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Counting-sort rank. args: r14 = &key, r15 = &cursor, r16 = &rank, r17 = n.
LoopInfo EmitRank(Program& prog, const std::string& name,
                  const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  EmitEmptyGuard(a, 17, exit);
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 16));
  if (pf.enabled) a.Emit(AddImm(28, 14, pf.distance_bytes));
  a.Emit(AddImm(8, 17, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdPostInc(4, 8, 26, 4));    // key
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 4, HintOf(pf)));
  }
  a.Emit(ShlAdd(9, 8, 2, 15));       // &cursor[key]
  a.Emit(Ld(4, 10, 9));
  a.Emit(StPostInc(4, 27, 10, 4));   // rank[i] = cursor value
  a.Emit(AddImm(10, 10, 1));
  a.Emit(St(4, 9, 10));              // cursor[key]++
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Permutation scatter. args: r14 = &key, r15 = &rank, r16 = &out, r17 = n.
LoopInfo EmitPermute(Program& prog, const std::string& name,
                     const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  EmitEmptyGuard(a, 17, exit);
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 15));
  if (pf.enabled) {
    a.Emit(AddImm(28, 14, pf.distance_bytes));
    a.Emit(AddImm(29, 15, pf.distance_bytes));
  }
  a.Emit(AddImm(8, 17, -1));
  a.Emit(MovToAr(AppReg::kLC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdPostInc(4, 8, 26, 4));   // key[i]
  a.Emit(LdPostInc(4, 9, 27, 4));   // rank[i]
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 4, HintOf(pf)));
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(29, 4, HintOf(pf)));
  }
  a.Emit(ShlAdd(10, 9, 2, 16));     // &out[rank[i]] (scatter: not prefetched)
  a.Emit(St(4, 10, 8));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// Exclusive prefix sum (sequential). args: r14 = &in, r15 = &out, r16 = n,
// r17 = &total.
LoopInfo EmitScan(Program& prog, const std::string& name,
                  const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto store_total = a.NewLabel();
  const auto loop = a.NewLabel();

  a.Emit(MovImm(8, 0));  // acc
  EmitEmptyGuard(a, 16, store_total);
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 15));
  if (pf.enabled) a.Emit(AddImm(28, 14, pf.distance_bytes));
  a.Emit(AddImm(9, 16, -1));
  a.Emit(MovToAr(AppReg::kLC, 9));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(StPostInc(4, 27, 8, 4));   // out[i] = acc
  a.Emit(LdPostInc(4, 9, 26, 4));   // in[i]
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(28, 4, HintOf(pf)));
  }
  a.Emit(AddReg(8, 8, 9));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(store_total);
  a.Emit(St(8, 17, 8));
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// While-style copy (br.wtop). args: r14 = &x, r15 = &out, r16 = n.
LoopInfo EmitWhileCopy(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf) {
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto exit = a.NewLabel();
  const auto loop = a.NewLabel();

  a.Emit(ClrRrb());
  a.Emit(MovReg(26, 14));
  a.Emit(MovReg(27, 15));
  a.Emit(MovImm(28, 0));                      // i
  if (pf.enabled) a.Emit(AddImm(30, 14, pf.distance_bytes));
  a.Emit(Cmp(CmpRel::kLt, 15, 14, 28, 16));   // p15 = (i < n), p14 = !
  a.EmitBranch(BrCond(14, 0), exit);
  a.Emit(MovImm(8, 1));
  a.Emit(MovToAr(AppReg::kEC, 8));
  a.FlushBundle();

  a.Bind(loop);
  info.head = prog.image().code_end();
  a.Emit(LdfPostInc(9, 26, 8));
  if (pf.enabled) {
    info.lfetch_pcs.push_back(a.CurrentPc());
    a.Emit(LfetchPostInc(30, 8, HintOf(pf)));
  }
  a.Emit(StfPostInc(27, 9, 8));
  a.Emit(AddImm(28, 28, 1));
  a.Emit(Cmp(CmpRel::kLt, 15, 14, 28, 16));
  info.back_branch_pc = a.EmitBranch(BrWtop(15, 0), loop);

  a.Bind(exit);
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

// ---------------------------------------------------------------------------
// EP kernel. args: r14 = seed, r15 = n, r16 = &accepted, r17 = &rejected,
// r18 = &sum_slot; f6 = 2.0, f7 = 3.0.
LoopInfo EmitEpKernel(Program& prog, const std::string& name,
                      const PrefetchPolicy& pf) {
  (void)pf;  // EP is compute-bound; icc emits (almost) no prefetches for it
  Assembler a(&prog.image());
  LoopInfo info;
  info.name = name;
  info.entry = prog.image().code_end();

  const auto store_out = a.NewLabel();
  const auto loop = a.NewLabel();

  a.Emit(MovReg(26, 14));  // PRNG state
  a.Emit(MovImm(27, 0));   // accepted
  a.Emit(MovImm(28, 0));   // rejected
  a.Emit(Fma(12, 0, 0, 0));  // sum of accepted radii

  a.Emit(CmpImm(CmpRel::kLe, 8, 0, 15, 0));
  a.EmitBranch(BrCond(8, 0), store_out);
  a.Emit(AddImm(9, 15, -1));
  a.Emit(MovToAr(AppReg::kLC, 9));
  a.FlushBundle();

  constexpr std::int64_t kMantissaMask = 0xfffffffffffffLL;   // 52 bits
  constexpr std::int64_t kOneExponent = 0x3ff0000000000000LL; // 1.0 <= v < 2

  auto EmitXorshift = [&] {
    a.Emit(ShlImm(8, 26, 13));
    a.Emit(XorReg(26, 26, 8));
    a.Emit(ShrImm(8, 26, 7));
    a.Emit(XorReg(26, 26, 8));
    a.Emit(ShlImm(8, 26, 17));
    a.Emit(XorReg(26, 26, 8));
  };
  auto EmitDeviate = [&](int fr) {
    // fr = 2*v - 3 where v in [1,2): a uniform deviate in [-1, 1).
    a.Emit(AndImm(9, 26, kMantissaMask));
    a.Emit(OrImm(9, 9, kOneExponent));
    a.Emit(Setf(fr, 9));
    a.Emit(Fms(fr, fr, 6, 7));
  };

  a.Bind(loop);
  info.head = prog.image().code_end();
  EmitXorshift();
  EmitDeviate(13);  // x
  EmitXorshift();
  EmitDeviate(14);  // y
  a.Emit(Fma(15, 13, 13, 0));
  a.Emit(Fma(15, 14, 14, 15));           // r2 = x^2 + y^2
  a.Emit(Fcmp(FCmpRel::kLe, 8, 9, 15, 1));
  a.Emit(Pred(8, AddImm(27, 27, 1)));
  a.Emit(Pred(9, AddImm(28, 28, 1)));
  a.Emit(Pred(8, Fsqrt(15, 15)));
  a.Emit(Pred(8, Fma(12, 15, 1, 12)));
  info.back_branch_pc = a.EmitBranch(BrCloop(0), loop);

  a.Bind(store_out);
  a.Emit(St(8, 16, 27));
  a.Emit(St(8, 17, 28));
  a.Emit(Stf(18, 12));
  a.Emit(Break());
  a.Finish();

  prog.AddKernel(name, info.entry);
  prog.AddLoop(info);
  return info;
}

}  // namespace cobra::kgen
