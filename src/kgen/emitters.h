// "icc-like" kernel emitters: parameterized generators that produce MIA-64
// loops with the code shape the Intel compiler gives OpenMP-parallelized
// numerical kernels at -O3 — software-pipelined bodies using rotating
// registers, counted-loop branches (br.ctop / br.cloop / br.wtop), and
// aggressive data prefetching: a burst of prologue lfetches on the stored
// stream plus steady-state lfetches targeting ~9 cache lines (1200 bytes)
// ahead of the current references (the paper's Figure 2).
//
// Register conventions (all emitters):
//   r14..r25   kernel arguments (set by the launcher's setup callback)
//   f6, f7     floating-point constant arguments
//   r8..r13, r26..r31, f9..f15   emitter scratch (static)
//   r32+/f32+/p16+               rotating (software pipelining)
// Every kernel ends with `break`, which halts the simulated thread.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "kgen/program.h"

namespace cobra::kgen {

// First kernel-argument general register.
inline constexpr int kArgBase = 14;
constexpr int ArgReg(int i) { return kArgBase + i; }

// Compiler prefetch policy. Defaults reproduce icc's aggressiveness.
struct PrefetchPolicy {
  bool enabled = true;
  int distance_bytes = 1200;   // ~9 lines of 128 B ahead (Figure 2)
  int prologue_prefetches = 6; // initial burst on the stored stream
  bool excl = false;           // statically emit lfetch.excl (study variant)

  static PrefetchPolicy None() { return PrefetchPolicy{false, 0, 0, false}; }
  static PrefetchPolicy Excl() {
    PrefetchPolicy p;
    p.excl = true;
    return p;
  }
};

// ---------------------------------------------------------------------------
// DAXPY — the exact Figure 2 shape: 8-stage software pipeline, rotating
// load/store register chains, one alternating-stream lfetch per iteration.
//   args: r14 = &x, r15 = &y, r16 = n (elements); f6 = a.
LoopInfo EmitDaxpy(Program& prog, const std::string& name,
                   const PrefetchPolicy& pf);

// ---------------------------------------------------------------------------
// Generic unit-stride elementwise stream loop, 2-stage software pipeline
// (br.ctop), one lfetch chain per stream.
//   args: r14..r14+k-1 = input stream bases (k = inputs for the op),
//         r17 = output base, r18 = n; f6 = a, f7 = b.
enum class StreamOp {
  kCopy,        // out[i] = x[i]                       (1 input)
  kScale,       // out[i] = a * x[i]                   (1 input)
  kDaxpy,       // out[i] = y[i] + a * x[i]            (2 inputs: x, y)
  kAdd,         // out[i] = x[i] + y[i]                (2 inputs)
  kTriad,       // out[i] = x[i] + a * y[i]            (2 inputs)
  kStencil3Sym, // out[i] = a*(l[i] + r[i]) + b*c[i]   (3 inputs: l, c, r)
  kBlend4,      // out[i] = a*x[i]*y[i] + b*w[i]       (3 inputs)
};
// Total ops in the StreamOp enum (random workload generators roll in
// [0, kNumStreamOps) — keep in lockstep with the enum above).
constexpr int kNumStreamOps = 7;
int StreamOpInputs(StreamOp op);
const char* StreamOpName(StreamOp op);

struct StreamLoopSpec {
  StreamOp op = StreamOp::kDaxpy;
  PrefetchPolicy prefetch{};
  // Streams to cover with steady-state lfetch chains, as indices into
  // {input0, input1, input2, output}. Empty = all inputs + output, with the
  // output dropped when it aliases input index `output_aliases_input`.
  std::vector<int> prefetch_streams{};
  int output_aliases_input = -1;  // e.g. DAXPY: output y is also input 1
  // Per-iteration byte strides (post-increment amounts). Equal strides get
  // the Figure 2 alternating-chain prefetch; mixed strides fall back to one
  // post-increment lfetch per stream.
  std::array<int, 3> input_strides{8, 8, 8};
  int output_stride = 8;
};

LoopInfo EmitStreamLoop(Program& prog, const std::string& name,
                        const StreamLoopSpec& spec);

// ---------------------------------------------------------------------------
// Reductions over one or two streams (br.cloop, accumulator in f8).
//   args: r14 = &x, r15 = &y (dot only), r16 = n, r17 = &result (the
//   thread's partial slot); writes the partial sum to [r17].
enum class ReduceOp { kSum, kDot, kSumSq, kMax };
LoopInfo EmitReduction(Program& prog, const std::string& name, ReduceOp op,
                       const PrefetchPolicy& pf);

// ---------------------------------------------------------------------------
// CSR sparse matrix-vector product rows [row_begin, row_end):
//   q[i] = sum_k vals[k] * p[col[k]]   (inner br.cloop, value-stream lfetch)
//   args: r14 = &rowptr (int64), r15 = &col (int64), r16 = &vals,
//         r17 = &p, r18 = &q, r19 = row_begin, r20 = row_end.
LoopInfo EmitCsrMatvec(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf);

// ---------------------------------------------------------------------------
// Integer histogram: hist[key[i]] += 1 over keys [0, n) (br.cloop).
//   args: r14 = &key (int32), r15 = &hist (int32), r16 = n.
LoopInfo EmitHistogram(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf);

// Int32 fill: buf[i] = value (br.cloop).
//   args: r14 = &buf (int32), r15 = n, r16 = value.
LoopInfo EmitFill32(Program& prog, const std::string& name,
                    const PrefetchPolicy& pf);

// Int32 accumulate: dst[i] += src[i] (br.cloop).
//   args: r14 = &src (int32), r15 = &dst (int32), r16 = n.
LoopInfo EmitIntAccumulate(Program& prog, const std::string& name,
                           const PrefetchPolicy& pf);

// Stable counting-sort ranking (sequential): for each key, rank[i] =
// cursor[key[i]]++ where cursor starts as the scanned offsets.
//   args: r14 = &key (int32), r15 = &cursor (int32), r16 = &rank (int32),
//         r17 = n.
LoopInfo EmitRank(Program& prog, const std::string& name,
                  const PrefetchPolicy& pf);

// Permutation scatter: out[rank[i]] = key[i] (br.cloop).
//   args: r14 = &key (int32), r15 = &rank (int32), r16 = &out (int32),
//         r17 = n.
LoopInfo EmitPermute(Program& prog, const std::string& name,
                     const PrefetchPolicy& pf);

// Exclusive prefix sum over int32: out[i] = sum_{j<i} in[j]; also writes the
// grand total to [r17]. Sequential (run on one thread).
//   args: r14 = &in, r15 = &out, r16 = n, r17 = &total.
LoopInfo EmitScan(Program& prog, const std::string& name,
                  const PrefetchPolicy& pf);

// ---------------------------------------------------------------------------
// While-style streaming copy (br.wtop shape; some icc loops compile this
// way):  out[i] = x[i] while i < n.
//   args: r14 = &x, r15 = &out, r16 = n.
LoopInfo EmitWhileCopy(Program& prog, const std::string& name,
                       const PrefetchPolicy& pf);

// ---------------------------------------------------------------------------
// EP-style embarrassingly parallel kernel: xorshift64 PRNG in registers,
// uniform deviate synthesis, unit-disk acceptance test, square-root of the
// accepted radii; tallies accepted/rejected counts to memory at the end.
//   args: r14 = seed, r15 = n (trials), r16 = &accept_count (int64),
//         r17 = &reject_count (int64), r18 = &sum_slot (double partial).
LoopInfo EmitEpKernel(Program& prog, const std::string& name,
                      const PrefetchPolicy& pf);

}  // namespace cobra::kgen
