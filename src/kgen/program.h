// Program: a generated binary plus the metadata a build system would keep.
//
// Owns the BinaryImage, a bump allocator over the simulated data segment, a
// registry of kernel entry points, and per-loop records (LoopInfo) kept for
// tests and for ground-truth validation of COBRA's loop discovery — COBRA
// itself never reads LoopInfo; it finds loops from BTB samples like the
// real system.
//
// Also computes the static instruction statistics of Table 1 (lfetch,
// br.ctop, br.cloop, br.wtop counts) by scanning the emitted text segment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image.h"
#include "support/check.h"

namespace cobra::kgen {

// Record of one emitted loop (ground truth for tests / ablations).
struct LoopInfo {
  std::string name;
  isa::Addr entry = 0;            // kernel entry (prologue start)
  isa::Addr head = 0;             // first bundle of the loop body
  isa::Addr back_branch_pc = 0;   // pc of the loop-closing branch
  std::vector<isa::Addr> lfetch_pcs;  // in-loop lfetch slots
};

// Table 1 row: static counts over the text segment.
struct StaticStats {
  std::uint64_t lfetch = 0;
  std::uint64_t br_ctop = 0;
  std::uint64_t br_cloop = 0;
  std::uint64_t br_wtop = 0;
};

class Program {
 public:
  explicit Program(isa::Addr code_base = isa::BinaryImage::kDefaultCodeBase);

  isa::BinaryImage& image() { return image_; }
  const isa::BinaryImage& image() const { return image_; }

  // --- Data segment allocation ---------------------------------------------
  // Bump-allocates `bytes` of simulated memory, aligned to `align`.
  std::uint64_t Alloc(std::uint64_t bytes, std::uint64_t align = 128);
  std::uint64_t data_break() const { return data_break_; }

  // --- Kernel/loop registry ---------------------------------------------------
  void AddKernel(const std::string& name, isa::Addr entry);
  isa::Addr KernelEntry(const std::string& name) const;
  bool HasKernel(const std::string& name) const;
  // All registered kernels, in emission order (lint walks these).
  const std::vector<std::pair<std::string, isa::Addr>>& kernels() const {
    return kernels_;
  }

  void AddLoop(LoopInfo info) { loops_.push_back(std::move(info)); }
  const std::vector<LoopInfo>& loops() const { return loops_; }
  const LoopInfo* FindLoop(const std::string& name) const;

  // --- Static analysis (Table 1) ---------------------------------------------
  // Counts over the static text (the code cache, if started, is excluded).
  StaticStats CountStatic() const;

 private:
  isa::BinaryImage image_;
  std::uint64_t data_break_ = 4096;  // leave page 0 unused (null guard)
  std::vector<std::pair<std::string, isa::Addr>> kernels_;
  std::vector<LoopInfo> loops_;
};

}  // namespace cobra::kgen
