#include "kgen/program.h"

namespace cobra::kgen {

Program::Program(isa::Addr code_base) : image_(code_base) {}

std::uint64_t Program::Alloc(std::uint64_t bytes, std::uint64_t align) {
  COBRA_CHECK(align != 0 && (align & (align - 1)) == 0);
  data_break_ = (data_break_ + align - 1) & ~(align - 1);
  const std::uint64_t base = data_break_;
  data_break_ += bytes;
  return base;
}

void Program::AddKernel(const std::string& name, isa::Addr entry) {
  COBRA_CHECK_MSG(!HasKernel(name), "duplicate kernel name");
  kernels_.emplace_back(name, entry);
}

bool Program::HasKernel(const std::string& name) const {
  for (const auto& [n, e] : kernels_) {
    if (n == name) return true;
  }
  return false;
}

isa::Addr Program::KernelEntry(const std::string& name) const {
  for (const auto& [n, e] : kernels_) {
    if (n == name) return e;
  }
  COBRA_UNREACHABLE("unknown kernel name");
}

const LoopInfo* Program::FindLoop(const std::string& name) const {
  for (const LoopInfo& loop : loops_) {
    if (loop.name == name) return &loop;
  }
  return nullptr;
}

StaticStats Program::CountStatic() const {
  StaticStats stats;
  const isa::Addr end = image_.code_cache_start() != 0
                            ? image_.code_cache_start()
                            : image_.code_end();
  for (isa::Addr bundle = image_.code_base(); bundle < end;
       bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      switch (image_.Fetch(isa::MakePc(bundle, slot)).op) {
        case isa::Opcode::kLfetch: ++stats.lfetch; break;
        case isa::Opcode::kBrCtop: ++stats.br_ctop; break;
        case isa::Opcode::kBrCloop: ++stats.br_cloop; break;
        case isa::Opcode::kBrWtop: ++stats.br_wtop; break;
        default: break;
      }
    }
  }
  return stats;
}

}  // namespace cobra::kgen
