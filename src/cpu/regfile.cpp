#include "cpu/regfile.h"

namespace cobra::cpu {

RegisterFile::RegisterFile() { Reset(); }

void RegisterFile::Reset() {
  gr_.fill(0);
  fr_.fill(0.0);
  pr_.fill(false);
  fr_[1] = 1.0;
  pr_[0] = true;
  lc_ = 0;
  ec_ = 0;
  rrb_gr_ = rrb_fr_ = rrb_pr_ = 0;
}

void RegisterFile::SetRotatingPredicates(std::uint64_t mask) {
  for (int i = 0; i < isa::kNumRotPr; ++i) {
    WritePr(isa::kFirstRotPr + i, (mask >> i) & 1);
  }
}

void RegisterFile::ClearRrb() { rrb_gr_ = rrb_fr_ = rrb_pr_ = 0; }

}  // namespace cobra::cpu
