#include "cpu/regfile.h"

namespace cobra::cpu {

RegisterFile::RegisterFile() { Reset(); }

void RegisterFile::Reset() {
  gr_.fill(0);
  fr_.fill(0.0);
  pr_.fill(false);
  fr_[1] = 1.0;
  pr_[0] = true;
  lc_ = 0;
  ec_ = 0;
  rrb_gr_ = rrb_fr_ = rrb_pr_ = 0;
}

std::uint64_t RegisterFile::ReadGr(int r) const {
  COBRA_CHECK(r >= 0 && r < isa::kNumGr);
  if (r == 0) return 0;
  return gr_[static_cast<std::size_t>(PhysGr(r))];
}

void RegisterFile::WriteGr(int r, std::uint64_t value) {
  COBRA_CHECK(r >= 0 && r < isa::kNumGr);
  COBRA_CHECK_MSG(r != 0, "write to r0 is illegal");
  gr_[static_cast<std::size_t>(PhysGr(r))] = value;
}

double RegisterFile::ReadFr(int r) const {
  COBRA_CHECK(r >= 0 && r < isa::kNumFr);
  if (r == 0) return 0.0;
  if (r == 1) return 1.0;
  return fr_[static_cast<std::size_t>(PhysFr(r))];
}

void RegisterFile::WriteFr(int r, double value) {
  COBRA_CHECK(r >= 0 && r < isa::kNumFr);
  COBRA_CHECK_MSG(r > 1, "write to f0/f1 is illegal");
  fr_[static_cast<std::size_t>(PhysFr(r))] = value;
}

bool RegisterFile::ReadPr(int p) const {
  COBRA_CHECK(p >= 0 && p < isa::kNumPr);
  if (p == 0) return true;
  return pr_[static_cast<std::size_t>(PhysPr(p))];
}

void RegisterFile::WritePr(int p, bool value) {
  COBRA_CHECK(p >= 0 && p < isa::kNumPr);
  COBRA_CHECK_MSG(p != 0, "write to p0 is illegal");
  pr_[static_cast<std::size_t>(PhysPr(p))] = value;
}

void RegisterFile::SetRotatingPredicates(std::uint64_t mask) {
  for (int i = 0; i < isa::kNumRotPr; ++i) {
    WritePr(isa::kFirstRotPr + i, (mask >> i) & 1);
  }
}

void RegisterFile::RotateDown() {
  auto dec = [](int rrb, int modulus) {
    return (rrb + modulus - 1) % modulus;
  };
  rrb_gr_ = dec(rrb_gr_, isa::kNumRotGr);
  rrb_fr_ = dec(rrb_fr_, isa::kNumRotFr);
  rrb_pr_ = dec(rrb_pr_, isa::kNumRotPr);
}

void RegisterFile::ClearRrb() { rrb_gr_ = rrb_fr_ = rrb_pr_ = 0; }

}  // namespace cobra::cpu
