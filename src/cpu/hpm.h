// Hardware Performance Monitor model: four selectable event counters, the
// Branch Trace Buffer (last four taken branch source/target pairs), and the
// Data Event Address Register (DEAR) with programmable latency filtering.
//
// These are the three Itanium 2 facilities COBRA is built on (Section 3.1):
// counters track system-wide bottlenecks (cache misses, coherent bus
// events), the BTB lets the trace selector discover loop boundaries from
// infrequent samples, and the DEAR pinpoints the exact loads whose miss
// latencies indicate coherent misses (the two-level filter of Section 4).
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "isa/types.h"
#include "support/check.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::cpu {

// Events a counter can be programmed to track (Itanium 2 selector names).
enum class HpmEvent : std::uint8_t {
  kCpuCycles,
  kInstRetired,
  kL2Misses,
  kL3Misses,
  kBusMemory,            // BUS_MEMORY: data transactions this CPU initiated
  kBusRdHit,             // BUS_RD_HIT: reads snooped clean in another cache
  kBusRdHitm,            // BUS_RD_HITM
  kBusRdInvalAllHitm,    // BUS_RD_INVAL_ALL_HITM
  kBusUpgrades,          // BIL invalidation rounds (S->M upgrades)
  kL2Writebacks,
  kLoadsRetired,
  kStoresRetired,
  kPrefetchesRetired,
  kEventCount,
};

inline constexpr int kNumHpmCounters = 4;

// The HPM reads raw monotone event totals through this interface (the Core
// implements it by combining its own retire/cycle counts with the cache
// stack and fabric statistics).
class HpmSource {
 public:
  virtual ~HpmSource() = default;
  virtual std::uint64_t RawEventValue(HpmEvent event) const = 0;
};

class Hpm {
 public:
  explicit Hpm(const HpmSource* source) : source_(source) {
    COBRA_CHECK(source != nullptr);
  }

  // Programs counter `idx` to track `event` and zeroes it.
  void Select(int idx, HpmEvent event);
  HpmEvent SelectedEvent(int idx) const;

  // Current counter value (raw total minus the value at Select/Reset time).
  std::uint64_t Read(int idx) const;

  // Zeroes all counters without changing their event selection.
  void ResetCounters();

  // Selections and baselines only — the raw totals live in the source
  // (core/cache/fabric counters), which checkpoint separately.
  void SaveState(support::StateWriter& w) const {
    for (const Counter& c : counters_) {
      w.U8(static_cast<std::uint8_t>(c.event));
      w.U64(c.baseline);
    }
  }
  bool RestoreState(support::StateReader& r) {
    for (Counter& c : counters_) {
      std::uint8_t event = 0;
      r.U8(&event);
      r.U64(&c.baseline);
      if (event >= static_cast<std::uint8_t>(HpmEvent::kEventCount)) {
        return false;
      }
      c.event = static_cast<HpmEvent>(event);
    }
    return r.Ok();
  }

 private:
  struct Counter {
    HpmEvent event = HpmEvent::kCpuCycles;
    std::uint64_t baseline = 0;
  };
  const HpmSource* source_;
  std::array<Counter, kNumHpmCounters> counters_{};
};

// Branch Trace Buffer: a 4-entry ring of (source, target) pairs for the
// last taken branches, exposed as 8 address registers like Itanium 2's.
class Btb {
 public:
  static constexpr int kEntries = 4;

  struct Entry {
    isa::Addr source = 0;
    isa::Addr target = 0;
  };

  void RecordTaken(isa::Addr source, isa::Addr target) {
    ring_[head_] = Entry{source, target};
    head_ = (head_ + 1) % kEntries;
    if (count_ < kEntries) ++count_;
  }

  int count() const { return count_; }

  // Entries ordered oldest -> newest.
  std::array<Entry, kEntries> Snapshot() const;

  void Clear() {
    ring_ = {};
    head_ = 0;
    count_ = 0;
  }

  void SaveState(support::StateWriter& w) const {
    for (const Entry& e : ring_) {
      w.U64(e.source);
      w.U64(e.target);
    }
    w.U32(static_cast<std::uint32_t>(head_));
    w.U32(static_cast<std::uint32_t>(count_));
  }
  bool RestoreState(support::StateReader& r) {
    for (Entry& e : ring_) {
      r.U64(&e.source);
      r.U64(&e.target);
    }
    std::uint32_t head = 0, count = 0;
    r.U32(&head);
    r.U32(&count);
    if (!r.Ok() || head >= kEntries || count > kEntries) return false;
    head_ = static_cast<int>(head);
    count_ = static_cast<int>(count);
    return true;
  }

 private:
  std::array<Entry, kEntries> ring_{};
  int head_ = 0;
  int count_ = 0;
};

// Data Event Address Register: captures (instruction address, data address,
// latency) for load misses whose latency meets the programmed threshold.
// The paper programs the threshold to >12 cycles to skip L2-miss/L3-hit
// loads; COBRA's profiler applies a second, higher threshold to separate
// coherent misses from plain memory accesses.
class Dear {
 public:
  struct Record {
    isa::Addr inst_addr = 0;
    isa::Addr data_addr = 0;
    Cycle latency = 0;
    bool valid = false;
  };

  void SetLatencyThreshold(Cycle threshold) { threshold_ = threshold; }
  Cycle latency_threshold() const { return threshold_; }

  // Called by the core on every load; records if latency > threshold.
  void Observe(isa::Addr inst_addr, isa::Addr data_addr, Cycle latency) {
    if (latency <= threshold_) return;
    last_ = Record{inst_addr, data_addr, latency, true};
    ++qualified_count_;
  }

  const Record& last() const { return last_; }
  std::uint64_t qualified_count() const { return qualified_count_; }

  void Clear() {
    last_ = Record{};
    qualified_count_ = 0;
  }

  void SaveState(support::StateWriter& w) const {
    w.U64(threshold_);
    w.U64(last_.inst_addr);
    w.U64(last_.data_addr);
    w.U64(last_.latency);
    w.Bool(last_.valid);
    w.U64(qualified_count_);
  }
  bool RestoreState(support::StateReader& r) {
    r.U64(&threshold_);
    r.U64(&last_.inst_addr);
    r.U64(&last_.data_addr);
    r.U64(&last_.latency);
    r.Bool(&last_.valid);
    r.U64(&qualified_count_);
    return r.Ok();
  }

 private:
  Cycle threshold_ = 0;
  Record last_{};
  std::uint64_t qualified_count_ = 0;
};

}  // namespace cobra::cpu
