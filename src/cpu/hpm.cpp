#include "cpu/hpm.h"

namespace cobra::cpu {

void Hpm::Select(int idx, HpmEvent event) {
  COBRA_CHECK(idx >= 0 && idx < kNumHpmCounters);
  counters_[static_cast<std::size_t>(idx)].event = event;
  counters_[static_cast<std::size_t>(idx)].baseline =
      source_->RawEventValue(event);
}

HpmEvent Hpm::SelectedEvent(int idx) const {
  COBRA_CHECK(idx >= 0 && idx < kNumHpmCounters);
  return counters_[static_cast<std::size_t>(idx)].event;
}

std::uint64_t Hpm::Read(int idx) const {
  COBRA_CHECK(idx >= 0 && idx < kNumHpmCounters);
  const Counter& c = counters_[static_cast<std::size_t>(idx)];
  return source_->RawEventValue(c.event) - c.baseline;
}

void Hpm::ResetCounters() {
  for (Counter& c : counters_) c.baseline = source_->RawEventValue(c.event);
}

std::array<Btb::Entry, Btb::kEntries> Btb::Snapshot() const {
  std::array<Entry, kEntries> out{};
  for (int i = 0; i < count_; ++i) {
    // Oldest entry first.
    out[static_cast<std::size_t>(i)] =
        ring_[static_cast<std::size_t>((head_ + kEntries - count_ + i) %
                                       kEntries)];
  }
  return out;
}

}  // namespace cobra::cpu
