#include "cpu/core.h"

#include <array>
#include <bit>
#include <cmath>

#include "support/check.h"
#include "tjit/superblock.h"
#include "tjit/tcache.h"
#include "verify/coherence_checker.h"

namespace cobra::cpu {

using isa::Addr;
using isa::ExecPlan;
using isa::Opcode;

namespace {

bool CmpEval(isa::CmpRel rel, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (rel) {
    case isa::CmpRel::kEq: return a == b;
    case isa::CmpRel::kNe: return a != b;
    case isa::CmpRel::kLt: return sa < sb;
    case isa::CmpRel::kLe: return sa <= sb;
    case isa::CmpRel::kGt: return sa > sb;
    case isa::CmpRel::kGe: return sa >= sb;
    case isa::CmpRel::kLtu: return a < b;
    case isa::CmpRel::kGeu: return a >= b;
  }
  COBRA_UNREACHABLE("bad cmp relation");
}

bool FCmpEval(isa::FCmpRel rel, double a, double b) {
  switch (rel) {
    case isa::FCmpRel::kEq: return a == b;
    case isa::FCmpRel::kNe: return a != b;
    case isa::FCmpRel::kLt: return a < b;
    case isa::FCmpRel::kLe: return a <= b;
    case isa::FCmpRel::kGt: return a > b;
    case isa::FCmpRel::kGe: return a >= b;
  }
  COBRA_UNREACHABLE("bad fcmp relation");
}

}  // namespace

// Per-opcode execute handlers. Each handler performs the instruction's
// architectural effect and advances the pc itself (kBreak leaves the pc at
// the break). Branch and memory opcodes never reach this table — ExecutePlan
// routes them on the classification bits first — so their entries (and the
// stale-plan sentinel) abort.
struct ExecOps {
  using Handler = void (*)(Core&, const ExecPlan&);

  static void Bad(Core&, const ExecPlan&) {
    COBRA_UNREACHABLE("plan dispatch reached a non-ALU or stale handler");
  }

  static void Nop(Core& c, const ExecPlan&) { c.AdvancePc(); }
  static void Break(Core& c, const ExecPlan&) {
    c.halted_ = true;  // pc stays at the break
  }

  static void AddReg(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) + c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void SubReg(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) - c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void AddImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) +
                              static_cast<std::uint64_t>(p.imm));
    c.AdvancePc();
  }
  static void ShlAdd(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1,
                    (c.regs_.ReadGr(p.r2) << p.imm) + c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void And(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) & c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void Or(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) | c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void Xor(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) ^ c.regs_.ReadGr(p.r3));
    c.AdvancePc();
  }
  static void AndImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) &
                              static_cast<std::uint64_t>(p.imm));
    c.AdvancePc();
  }
  static void OrImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) |
                              static_cast<std::uint64_t>(p.imm));
    c.AdvancePc();
  }
  static void ShlImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) << p.imm);
    c.AdvancePc();
  }
  static void ShrImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) >> p.imm);
    c.AdvancePc();
  }
  static void SarImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1,
                    static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(c.regs_.ReadGr(p.r2)) >>
                        p.imm));
    c.AdvancePc();
  }
  static void MovImm(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, static_cast<std::uint64_t>(p.imm));
    c.AdvancePc();
  }
  static void MovReg(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2));
    c.AdvancePc();
  }
  static void Sxt4(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1,
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(
                        static_cast<std::int32_t>(c.regs_.ReadGr(p.r2)))));
    c.AdvancePc();
  }
  static void Zxt4(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, c.regs_.ReadGr(p.r2) & 0xffffffffULL);
    c.AdvancePc();
  }
  static void Cmp(Core& c, const ExecPlan& p) {
    const bool t = CmpEval(static_cast<isa::CmpRel>(p.aux),
                           c.regs_.ReadGr(p.r2), c.regs_.ReadGr(p.r3));
    c.regs_.WritePr(p.p1, t);
    if (p.p2 != 0) c.regs_.WritePr(p.p2, !t);
    c.AdvancePc();
  }
  static void CmpImm(Core& c, const ExecPlan& p) {
    const bool t =
        CmpEval(static_cast<isa::CmpRel>(p.aux), c.regs_.ReadGr(p.r2),
                static_cast<std::uint64_t>(p.imm));
    c.regs_.WritePr(p.p1, t);
    if (p.p2 != 0) c.regs_.WritePr(p.p2, !t);
    c.AdvancePc();
  }

  static void MovToAr(Core& c, const ExecPlan& p) {
    if (static_cast<isa::AppReg>(p.imm) == isa::AppReg::kLC) {
      c.regs_.set_lc(c.regs_.ReadGr(p.r2));
    } else {
      c.regs_.set_ec(c.regs_.ReadGr(p.r2));
    }
    c.AdvancePc();
  }
  static void MovFromAr(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, static_cast<isa::AppReg>(p.imm) == isa::AppReg::kLC
                              ? c.regs_.lc()
                              : c.regs_.ec());
    c.AdvancePc();
  }
  static void MovToPrRot(Core& c, const ExecPlan& p) {
    c.regs_.SetRotatingPredicates(static_cast<std::uint64_t>(p.imm));
    c.AdvancePc();
  }
  static void ClrRrb(Core& c, const ExecPlan&) {
    c.regs_.ClearRrb();
    c.AdvancePc();
  }

  // IA-64 fma.d and friends are *fused*: a single rounding.
  static void Fma(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::fma(c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3),
                                   c.regs_.ReadFr(p.extra)));
    c.AdvancePc();
  }
  static void Fms(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::fma(c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3),
                                   -c.regs_.ReadFr(p.extra)));
    c.AdvancePc();
  }
  static void Fnma(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::fma(-c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3),
                                   c.regs_.ReadFr(p.extra)));
    c.AdvancePc();
  }
  static void Fmov(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, c.regs_.ReadFr(p.r2));
    c.AdvancePc();
  }
  static void Fneg(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, -c.regs_.ReadFr(p.r2));
    c.AdvancePc();
  }
  static void Fabs(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::fabs(c.regs_.ReadFr(p.r2)));
    c.AdvancePc();
  }
  static void Frcpa(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, 1.0 / c.regs_.ReadFr(p.r2));
    c.AdvancePc();
  }
  static void Fsqrt(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::sqrt(c.regs_.ReadFr(p.r2)));
    c.AdvancePc();
  }
  static void Fmin(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1,
                    std::fmin(c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3)));
    c.AdvancePc();
  }
  static void Fmax(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1,
                    std::fmax(c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3)));
    c.AdvancePc();
  }
  static void Fcmp(Core& c, const ExecPlan& p) {
    const bool t = FCmpEval(static_cast<isa::FCmpRel>(p.aux),
                            c.regs_.ReadFr(p.r2), c.regs_.ReadFr(p.r3));
    c.regs_.WritePr(p.p1, t);
    if (p.p2 != 0) c.regs_.WritePr(p.p2, !t);
    c.AdvancePc();
  }
  static void Setf(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, std::bit_cast<double>(c.regs_.ReadGr(p.r2)));
    c.AdvancePc();
  }
  static void Getf(Core& c, const ExecPlan& p) {
    c.regs_.WriteGr(p.r1, std::bit_cast<std::uint64_t>(c.regs_.ReadFr(p.r2)));
    c.AdvancePc();
  }
  static void FcvtFx(Core& c, const ExecPlan& p) {
    // Truncate toward zero (value kept in the FR as a double; see DESIGN).
    c.regs_.WriteFr(p.r1, std::trunc(c.regs_.ReadFr(p.r2)));
    c.AdvancePc();
  }
  static void FcvtXf(Core& c, const ExecPlan& p) {
    c.regs_.WriteFr(p.r1, c.regs_.ReadFr(p.r2));
    c.AdvancePc();
  }
};

namespace {

constexpr std::size_t Idx(Opcode op) { return static_cast<std::size_t>(op); }

constexpr std::array<ExecOps::Handler, isa::kNumPlanHandlers> MakePlanTable() {
  std::array<ExecOps::Handler, isa::kNumPlanHandlers> t{};
  for (auto& h : t) h = &ExecOps::Bad;
  t[Idx(Opcode::kNop)] = &ExecOps::Nop;
  t[Idx(Opcode::kBreak)] = &ExecOps::Break;
  t[Idx(Opcode::kAddReg)] = &ExecOps::AddReg;
  t[Idx(Opcode::kSubReg)] = &ExecOps::SubReg;
  t[Idx(Opcode::kAddImm)] = &ExecOps::AddImm;
  t[Idx(Opcode::kShlAdd)] = &ExecOps::ShlAdd;
  t[Idx(Opcode::kAnd)] = &ExecOps::And;
  t[Idx(Opcode::kOr)] = &ExecOps::Or;
  t[Idx(Opcode::kXor)] = &ExecOps::Xor;
  t[Idx(Opcode::kAndImm)] = &ExecOps::AndImm;
  t[Idx(Opcode::kOrImm)] = &ExecOps::OrImm;
  t[Idx(Opcode::kShlImm)] = &ExecOps::ShlImm;
  t[Idx(Opcode::kShrImm)] = &ExecOps::ShrImm;
  t[Idx(Opcode::kSarImm)] = &ExecOps::SarImm;
  t[Idx(Opcode::kMovImm)] = &ExecOps::MovImm;
  t[Idx(Opcode::kMovReg)] = &ExecOps::MovReg;
  t[Idx(Opcode::kSxt4)] = &ExecOps::Sxt4;
  t[Idx(Opcode::kZxt4)] = &ExecOps::Zxt4;
  t[Idx(Opcode::kCmp)] = &ExecOps::Cmp;
  t[Idx(Opcode::kCmpImm)] = &ExecOps::CmpImm;
  t[Idx(Opcode::kMovToAr)] = &ExecOps::MovToAr;
  t[Idx(Opcode::kMovFromAr)] = &ExecOps::MovFromAr;
  t[Idx(Opcode::kMovToPrRot)] = &ExecOps::MovToPrRot;
  t[Idx(Opcode::kClrRrb)] = &ExecOps::ClrRrb;
  t[Idx(Opcode::kFma)] = &ExecOps::Fma;
  t[Idx(Opcode::kFms)] = &ExecOps::Fms;
  t[Idx(Opcode::kFnma)] = &ExecOps::Fnma;
  t[Idx(Opcode::kFmov)] = &ExecOps::Fmov;
  t[Idx(Opcode::kFneg)] = &ExecOps::Fneg;
  t[Idx(Opcode::kFabs)] = &ExecOps::Fabs;
  t[Idx(Opcode::kFrcpa)] = &ExecOps::Frcpa;
  t[Idx(Opcode::kFsqrt)] = &ExecOps::Fsqrt;
  t[Idx(Opcode::kFmin)] = &ExecOps::Fmin;
  t[Idx(Opcode::kFmax)] = &ExecOps::Fmax;
  t[Idx(Opcode::kFcmp)] = &ExecOps::Fcmp;
  t[Idx(Opcode::kSetf)] = &ExecOps::Setf;
  t[Idx(Opcode::kGetf)] = &ExecOps::Getf;
  t[Idx(Opcode::kFcvtFx)] = &ExecOps::FcvtFx;
  t[Idx(Opcode::kFcvtXf)] = &ExecOps::FcvtXf;
  return t;
}

constexpr std::array<ExecOps::Handler, isa::kNumPlanHandlers> kPlanHandlers =
    MakePlanTable();

}  // namespace

Core::Core(CpuId id, isa::BinaryImage* image, mem::MainMemory* memory,
           mem::CacheStack* stack, const mem::CoherenceFabric* fabric)
    : id_(id),
      image_(image),
      memory_(memory),
      stack_(stack),
      fabric_(fabric),
      hpm_(this) {
  COBRA_CHECK(image != nullptr && memory != nullptr && stack != nullptr &&
              fabric != nullptr);
  issue_width_ = stack_->config().issue_width_bundles;
  load_hide_ = stack_->config().load_hide_cycles;
}

void Core::Start(Addr entry) {
  COBRA_CHECK_MSG(isa::SlotOf(entry) == 0, "entry must be bundle-aligned");
  pc_ = entry;
  halted_ = false;
}

void Core::SetRetireHook(std::uint64_t period_insts,
                         std::function<void(Core&)> hook) {
  sample_period_ = period_insts;
  until_sample_ = period_insts;
  sample_hook_ = std::move(hook);
}

std::uint64_t Core::RawEventValue(HpmEvent event) const {
  const mem::CacheStack::Stats& ss = stack_->stats();
  const mem::BusEventCounts& bus = fabric_->CpuCounts(id_);
  switch (event) {
    case HpmEvent::kCpuCycles: return now_;
    case HpmEvent::kInstRetired: return retired_;
    case HpmEvent::kL2Misses: return stack_->L2Misses();
    case HpmEvent::kL3Misses: return stack_->L3Misses();
    case HpmEvent::kBusMemory: return bus.bus_memory;
    case HpmEvent::kBusRdHit: return bus.bus_rd_hit;
    case HpmEvent::kBusRdHitm: return bus.bus_rd_hitm;
    case HpmEvent::kBusRdInvalAllHitm: return bus.bus_rd_inval_all_hitm;
    case HpmEvent::kBusUpgrades: return bus.bus_upgrades;
    case HpmEvent::kL2Writebacks: return ss.l2_writebacks;
    case HpmEvent::kLoadsRetired: return ss.loads;
    case HpmEvent::kStoresRetired: return ss.stores;
    case HpmEvent::kPrefetchesRetired: return ss.prefetches;
    case HpmEvent::kEventCount: break;
  }
  COBRA_UNREACHABLE("bad HPM event selector");
}

void Core::Step() {
  COBRA_CHECK_MSG(!halted_, "stepping a halted core");
  const ExecPlan& plan = image_->PlanAt(pc_);
  ChargeIssue();
  ExecutePlan(plan);
  RetireTail();
}

bool Core::NextStepNeedsFabric() const {
  if (halted_) return false;
  const ExecPlan& plan = image_->PlanAt(pc_);
  // Only memory ops can touch the fabric (branch and memory opcodes are
  // disjoint), and a squashed instruction retires with no architectural
  // effect (ExecutePlan checks the same predicate).
  if (!(plan.cls & isa::kPlanMem)) return false;
  if (!regs_.ReadPr(plan.qp)) return false;
  return PlanMemNeedsFabric(plan, regs_.ReadGr(plan.r2));
}

bool Core::PlanMemNeedsFabric(const ExecPlan& plan, Addr addr) const {
  // Fast-forward mode never touches the cache stack or fabric: every
  // memory op is committed functionally inside a core-private segment.
  if (fast_forward_) return false;
  if (plan.cls & isa::kPlanLfetch) {
    if (addr >= memory_->size()) return false;  // non-faulting: dropped
    // Prefetch routing compares in-flight fill deadlines against the
    // access time, which includes the issue cycle this step would charge.
    Cycle access_now = now_;
    if (isa::SlotOf(pc_) == 0 && bundle_credit_ + 1 >= issue_width_) {
      ++access_now;
    }
    return stack_->PrefetchNeedsFabric(addr, (plan.cls & isa::kPlanExcl) != 0,
                                       access_now);
  }
  if (plan.cls & isa::kPlanStore) return stack_->StoreNeedsFabric(addr);
  return stack_->LoadNeedsFabric(addr, (plan.cls & isa::kPlanFp) != 0,
                                 (plan.cls & isa::kPlanBias) != 0);
}

void Core::RunSegment(Cycle q_end) {
  if (tjit_ != nullptr) {
    RunSegmentTjit(q_end);
    return;
  }
  while (!halted_ && now_ < q_end) {
    const ExecPlan& plan = image_->PlanAt(pc_);
    if ((plan.cls & isa::kPlanMem) && regs_.ReadPr(plan.qp)) {
      const Addr addr = regs_.ReadGr(plan.r2);
      if (PlanMemNeedsFabric(plan, addr)) return;
      // Fused step: the classification, predicate and address above are
      // exactly what ExecutePlan would recompute.
      ChargeIssue();
      DoMemoryOpPlan(plan, addr);
      AdvancePc();
      RetireTail();
      continue;
    }
    ChargeIssue();
    ExecutePlan(plan);
    RetireTail();
  }
}

void Core::RunQuantum(Cycle q_end) {
  if (tjit_ == nullptr) {
    // Pure interpreter: stepping straight through is fastest.
    while (!halted_ && now_ < q_end) Step();
    return;
  }
  // With the trace JIT, run segments (which stop just before any
  // fabric-bound step) and commit those steps inline — with one runnable
  // core there is nothing to order against. The step stream is identical
  // to pure stepping: segments replay the interpreter exactly and probes
  // never change simulated state.
  while (!halted_ && now_ < q_end) {
    RunSegmentTjit(q_end);
    if (!halted_ && now_ < q_end) Step();
  }
}

void Core::RunSegmentTjit(Cycle q_end) {
  tjit::TranslationCache& tc = *tjit_;
  if (tc.BeginSegment()) resume_sb_ = nullptr;  // patches landed: flushed

  // Re-enter the superblock a fabric commit or quantum edge split, or look
  // the entry pc up. The hint is consumed exactly once, here.
  tjit::Superblock* sb = nullptr;
  std::uint32_t start_idx = 0;
  if (!halted_ && now_ < q_end) {
    if (resume_sb_ != nullptr && pc_ == resume_pc_) {
      sb = resume_sb_;
      start_idx = resume_idx_;
    } else if (isa::SlotOf(pc_) == 0) {
      sb = tc.Lookup(pc_);
    }
  }
  resume_sb_ = nullptr;

  for (;;) {
    if (sb != nullptr) {
      if (RunSuperblocks(sb, start_idx, q_end)) return;
      // Side exit: pc_ is architecturally exact; interpret from here.
      sb = nullptr;
      start_idx = 0;
    }
    while (!halted_ && now_ < q_end) {
      const ExecPlan& plan = image_->PlanAt(pc_);
      if ((plan.cls & isa::kPlanMem) && regs_.ReadPr(plan.qp)) {
        const Addr addr = regs_.ReadGr(plan.r2);
        if (checker_ != nullptr || mem_observer_ || fast_forward_) {
          // The checker and the memory observer interpose on every access
          // in a fixed order, and fast-forward skips the cache model that
          // TryMemoryOpPlan is fused with; keep the reference
          // probe-then-access path.
          if (PlanMemNeedsFabric(plan, addr)) return;
          ChargeIssue();
          DoMemoryOpPlan(plan, addr);
        } else if (!TryMemoryOpPlan(plan, addr, isa::SlotOf(pc_) == 0)) {
          return;  // fabric-bound: nothing was committed
        }
        AdvancePc();
        RetireTail();
        continue;
      }
      if (plan.cls & isa::kPlanBranch) {
        const Addr from = pc_;
        ChargeIssue();
        DoBranchPlan(plan);
        RetireTail();
        // Harvest: a taken backward (or self) branch marks a loop head.
        if (pc_ <= from) {
          sb = tc.NoteLoopEdge(pc_);
          if (sb != nullptr) break;
        }
        continue;
      }
      ChargeIssue();
      ExecutePlan(plan);
      RetireTail();
    }
    if (sb == nullptr) return;  // halted or quantum edge
  }
}

bool Core::RunSuperblocks(tjit::Superblock* sb, std::uint32_t idx,
                          Cycle q_end) {
  const std::uint64_t retired_before = retired_;
  const bool stop = ExecSuperblockLoop(sb, idx, q_end);
  tjit_retired_ += retired_ - retired_before;
  return stop;
}

// The superblock executor. Invariant: at the top of every iteration pc_ is
// architecturally correct and equals steps[idx].pc — every path below that
// moves `idx` also moves pc_ the way the interpreter would, so a stop or
// side exit at any point lands the interpreter on the exact slot with
// identical register/memory/timing state.
bool Core::ExecSuperblockLoop(tjit::Superblock* sb, std::uint32_t idx,
                              Cycle q_end) {
  tjit::TranslationCache& tc = *tjit_;
  tjit::Step* steps = sb->steps.data();

  // Leave the trace at an edge with no compiled continuation: chain to the
  // successor block when one exists (memoized per edge), else side-exit.
  // Returns false to side-exit, true to continue at (sb, idx = 0).
  const auto ExitOrChain = [&](tjit::Superblock** chain_slot) -> bool {
    tjit::Superblock* chained = *chain_slot;
    if (chained != nullptr) {
      ++tc.stats().chains;
    } else if (isa::SlotOf(pc_) == 0) {
      chained = tc.Chain(pc_);
      *chain_slot = chained;
    }
    if (chained == nullptr) {
      ++tc.stats().side_exits;
      return false;
    }
    sb = chained;
    steps = sb->steps.data();
    idx = 0;
    return true;
  };

  for (;;) {
    if (now_ >= q_end) {
      // Quantum edge: resume exactly here next segment.
      resume_sb_ = sb;
      resume_idx_ = idx;
      resume_pc_ = pc_;
      return true;
    }
    tjit::Step& s = steps[idx];
    switch (s.kind) {
      case tjit::StepKind::kBranch: {
        ChargeIssueFor(s.slot0);
        DoBranchPlan(s.plan);
        RetireTail();
        const bool taken = pc_ == s.taken_pc;
        const std::uint32_t next = taken ? s.taken_idx : s.next_idx;
        if (next == tjit::kNoStep) {
          if (!ExitOrChain(taken ? &s.chain_taken : &s.chain_next)) {
            return false;
          }
          continue;
        }
        idx = next;
        continue;
      }

      case tjit::StepKind::kNopRun: {
        if (sample_period_ != 0 && until_sample_ <= s.count) {
          // The retire hook would fire mid-run: let the interpreter
          // execute the singles (pc_ is still at the run's first nop).
          ++tc.stats().side_exits;
          return false;
        }
        const int total = bundle_credit_ + static_cast<int>(s.slot0_count);
        const Cycle adv = static_cast<Cycle>(total / issue_width_);
        if (now_ + adv >= q_end) {
          // The batched issue charge could cross the quantum edge mid-run;
          // the interpreter stops at the exact slot.
          ++tc.stats().side_exits;
          return false;
        }
        now_ += adv;
        bundle_credit_ = total % issue_width_;
        retired_ += s.count;
        if (sample_period_ != 0) until_sample_ -= s.count;
        pc_ = s.next_pc;
        if (s.next_idx == tjit::kNoStep) {
          if (!ExitOrChain(&s.chain_next)) return false;
          continue;
        }
        idx = s.next_idx;
        continue;
      }

      case tjit::StepKind::kLd:
      case tjit::StepKind::kLdf:
      case tjit::StepKind::kSt:
      case tjit::StepKind::kStf:
      case tjit::StepKind::kLfetch: {
        if (!regs_.ReadPr(s.plan.qp)) {
          // Squashed: retires with no architectural effect.
          ChargeIssueFor(s.slot0);
          pc_ = s.next_pc;
          RetireTail();
        } else {
          const Addr addr = regs_.ReadGr(s.plan.r2);
          if (checker_ != nullptr || mem_observer_ || fast_forward_) {
            if (PlanMemNeedsFabric(s.plan, addr)) {
              if (s.next_idx != tjit::kNoStep) {
                // The engine commits this step via Step(); resume after it.
                resume_sb_ = sb;
                resume_idx_ = s.next_idx;
                resume_pc_ = s.next_pc;
              }
              return true;
            }
            ChargeIssueFor(s.slot0);
            DoMemoryOpPlan(s.plan, addr);
          } else if (!TryMemoryOpPlan(s.plan, addr, s.slot0)) {
            if (s.next_idx != tjit::kNoStep) {
              resume_sb_ = sb;
              resume_idx_ = s.next_idx;
              resume_pc_ = s.next_pc;
            }
            return true;
          }
          pc_ = s.next_pc;
          RetireTail();
        }
        if (s.next_idx == tjit::kNoStep) {
          if (!ExitOrChain(&s.chain_next)) return false;
          continue;
        }
        idx = s.next_idx;
        continue;
      }

      case tjit::StepKind::kAlu: {
        ChargeIssueFor(s.slot0);
        if (!regs_.ReadPr(s.plan.qp)) {
          pc_ = s.next_pc;  // squash
        } else {
          kPlanHandlers[s.plan.handler](*this, s.plan);  // advances pc_
        }
        RetireTail();
        if (s.next_idx == tjit::kNoStep) {
          if (!ExitOrChain(&s.chain_next)) return false;
          continue;
        }
        idx = s.next_idx;
        continue;
      }
    }
    COBRA_UNREACHABLE("bad step kind");
  }
}

bool Core::TryMemoryOpPlan(const ExecPlan& plan, Addr addr, bool slot0) {
  // The access time is computed as if the issue cycle had been charged
  // (mirrors PlanMemNeedsFabric's prospective computation); the charge is
  // applied only once the access is known to stay fabric-free.
  const Cycle access_now =
      now_ + ((slot0 && bundle_credit_ + 1 >= issue_width_) ? 1 : 0);
  const Cycle hide = load_hide_;
  const auto Stall = [hide](Cycle latency) {
    return latency > hide ? latency - hide : 0;
  };

  switch (static_cast<Opcode>(plan.handler)) {
    case Opcode::kLd: {
      mem::CacheStack::AccessResult result;
      if (!stack_->TryLoad(addr, plan.size, /*fp=*/false,
                           (plan.cls & isa::kPlanBias) != 0, access_now,
                           &result)) {
        return false;
      }
      ChargeIssueFor(slot0);
      regs_.WriteGr(plan.r1, memory_->Read(addr, plan.size));
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kLdf: {
      mem::CacheStack::AccessResult result;
      if (!stack_->TryLoad(addr, 8, /*fp=*/true, /*bias=*/false, access_now,
                           &result)) {
        return false;
      }
      ChargeIssueFor(slot0);
      regs_.WriteFr(plan.r1, memory_->ReadDouble(addr));
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kSt: {
      mem::CacheStack::AccessResult result;
      if (!stack_->TryStore(addr, plan.size, access_now, &result)) {
        return false;
      }
      ChargeIssueFor(slot0);
      std::uint64_t value = regs_.ReadGr(plan.r3);
      if (plan.size < 8) value &= (1ULL << (plan.size * 8)) - 1;
      memory_->Write(addr, plan.size, value);
      now_ += result.latency;
      break;
    }
    case Opcode::kStf: {
      mem::CacheStack::AccessResult result;
      if (!stack_->TryStore(addr, 8, access_now, &result)) return false;
      ChargeIssueFor(slot0);
      memory_->WriteDouble(addr, regs_.ReadFr(plan.r3));
      now_ += result.latency;
      break;
    }
    case Opcode::kLfetch: {
      if (addr >= memory_->size()) {
        // Non-faulting: dropped without touching the cache stack.
        ChargeIssueFor(slot0);
        ++lfetches_dropped_;
        break;
      }
      if (!stack_->TryPrefetch(addr, (plan.cls & isa::kPlanExcl) != 0,
                               access_now)) {
        return false;
      }
      ChargeIssueFor(slot0);
      break;
    }
    default:
      COBRA_UNREACHABLE("not a memory op");
  }

  if (plan.cls & isa::kPlanPostInc) {
    regs_.WriteGr(plan.r2, addr + static_cast<std::uint64_t>(plan.imm));
  }
  return true;
}

void Core::TakeBranch(Addr target, bool loop_branch) {
  btb_.RecordTaken(pc_, target);
  // Every taken branch (any execution path) funnels through here, so the
  // BBV profiler sees the complete block-entry stream without forcing the
  // interpreter path.
  if (bbv_ != nullptr) bbv_->OnTakenBranch(id_, target, retired_);
  // Itanium's counted-loop branches (br.ctop/br.cloop/br.wtop) are
  // perfectly predicted and take no bubble; other taken branches pay one.
  if (!loop_branch) ++now_;
  pc_ = isa::BundleAddr(target);
  bundle_credit_ = 0;  // issue group ends at a taken branch
}

void Core::DoMemoryOpPlan(const ExecPlan& plan, Addr addr) {
  // Every architectural data access funnels through here when an observer
  // is attached (the fused fast path is disabled above): exactly one
  // callback per performed op.
  if (mem_observer_) mem_observer_(pc_, addr);

  if (fast_forward_) {
    // Functional-only commit: exact architectural effects, no cache stack,
    // no DEAR, no stall cycles, no checker (the golden-memory oracle
    // checks settled cache invariants that FF deliberately skips).
    switch (static_cast<Opcode>(plan.handler)) {
      case Opcode::kLd:
        regs_.WriteGr(plan.r1, memory_->Read(addr, plan.size));
        break;
      case Opcode::kLdf:
        regs_.WriteFr(plan.r1, memory_->ReadDouble(addr));
        break;
      case Opcode::kSt: {
        std::uint64_t value = regs_.ReadGr(plan.r3);
        if (plan.size < 8) value &= (1ULL << (plan.size * 8)) - 1;
        memory_->Write(addr, plan.size, value);
        break;
      }
      case Opcode::kStf:
        memory_->WriteDouble(addr, regs_.ReadFr(plan.r3));
        break;
      case Opcode::kLfetch:
        if (addr >= memory_->size()) ++lfetches_dropped_;
        break;  // non-binding: no architectural effect in bounds
      default:
        COBRA_UNREACHABLE("not a memory op");
    }
    if (plan.cls & isa::kPlanPostInc) {
      regs_.WriteGr(plan.r2, addr + static_cast<std::uint64_t>(plan.imm));
    }
    return;
  }

  // Software pipelining / compiler scheduling hides a window of load
  // latency; only the remainder stalls the core. DEAR observes the full
  // latency (the hardware captures it at the memory system, not the
  // pipeline).
  const Cycle hide = load_hide_;
  auto Stall = [hide](Cycle latency) {
    return latency > hide ? latency - hide : 0;
  };

  switch (static_cast<Opcode>(plan.handler)) {
    case Opcode::kLd: {
      const std::uint64_t value = memory_->Read(addr, plan.size);
      regs_.WriteGr(plan.r1, value);
      if (checker_ != nullptr) checker_->OnLoad(id_, addr, plan.size, value);
      const auto result =
          stack_->Load(addr, plan.size, /*fp=*/false,
                       (plan.cls & isa::kPlanBias) != 0, now_);
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kLdf: {
      const double value = memory_->ReadDouble(addr);
      regs_.WriteFr(plan.r1, value);
      if (checker_ != nullptr) {
        checker_->OnLoad(id_, addr, 8, std::bit_cast<std::uint64_t>(value));
      }
      const auto result =
          stack_->Load(addr, 8, /*fp=*/true, /*bias=*/false, now_);
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kSt: {
      std::uint64_t value = regs_.ReadGr(plan.r3);
      if (plan.size < 8) value &= (1ULL << (plan.size * 8)) - 1;
      memory_->Write(addr, plan.size, value);
      if (checker_ != nullptr) checker_->OnStore(id_, addr, plan.size, value);
      now_ += stack_->Store(addr, plan.size, now_).latency;
      break;
    }
    case Opcode::kStf: {
      const double value = regs_.ReadFr(plan.r3);
      memory_->WriteDouble(addr, value);
      if (checker_ != nullptr) {
        checker_->OnStore(id_, addr, 8, std::bit_cast<std::uint64_t>(value));
      }
      now_ += stack_->Store(addr, 8, now_).latency;
      break;
    }
    case Opcode::kLfetch: {
      // Non-binding and non-faulting: a prefetch past the end of the data
      // segment (the Figure 2 pathology would fault otherwise) is dropped.
      if (addr < memory_->size()) {
        stack_->Prefetch(addr, (plan.cls & isa::kPlanExcl) != 0, now_);
      } else {
        ++lfetches_dropped_;
      }
      break;
    }
    default:
      COBRA_UNREACHABLE("not a memory op");
  }

  if (plan.cls & isa::kPlanPostInc) {
    regs_.WriteGr(plan.r2, addr + static_cast<std::uint64_t>(plan.imm));
  }

  // The op is complete (lines installed, victims written back): re-check
  // the settled invariants of every line its fabric traffic touched.
  if (checker_ != nullptr) checker_->OnOpSettled(id_);
}

void Core::DoBranchPlan(const ExecPlan& plan) {
  auto Target = [&]() -> Addr {
    return isa::BundleAddr(pc_) +
           static_cast<Addr>(plan.imm *
                             static_cast<std::int64_t>(isa::kBundleBytes));
  };

  switch (static_cast<Opcode>(plan.handler)) {
    case Opcode::kBrCond:
      if (regs_.ReadPr(plan.qp)) {
        TakeBranch(Target(), /*loop_branch=*/false);
      } else {
        AdvancePc();
      }
      return;

    case Opcode::kBrCloop:
      if (regs_.lc() != 0) {
        regs_.set_lc(regs_.lc() - 1);
        TakeBranch(Target(), /*loop_branch=*/true);
      } else {
        AdvancePc();
      }
      return;

    case Opcode::kBrCtop:
      // IA-64 modulo-scheduled counted-loop branch.
      if (regs_.lc() != 0) {
        regs_.set_lc(regs_.lc() - 1);
        regs_.WritePr(63, true);   // becomes p16 after rotation
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else if (regs_.ec() > 1) {
        regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);  // epilogue stages drain
      } else {
        if (regs_.ec() != 0) regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        AdvancePc();               // final exit: no rotation
      }
      return;

    case Opcode::kBrWtop:
      // IA-64 modulo-scheduled while-loop branch.
      if (regs_.ReadPr(plan.qp)) {
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else if (regs_.ec() > 1) {
        regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else {
        if (regs_.ec() != 0) regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        AdvancePc();
      }
      return;

    case Opcode::kBrl:
      TakeBranch(static_cast<Addr>(plan.imm), /*loop_branch=*/false);
      return;

    default:
      COBRA_UNREACHABLE("not a branch");
  }
}

void Core::SaveState(support::StateWriter& w) const {
  regs_.SaveState(w);
  hpm_.SaveState(w);
  btb_.SaveState(w);
  dear_.SaveState(w);
  w.U64(pc_);
  w.Bool(halted_);
  w.U32(static_cast<std::uint32_t>(bundle_credit_));
  w.U64(now_);
  w.U64(retired_);
  w.U64(lfetches_dropped_);
  w.U64(sample_period_);
  w.U64(until_sample_);
}

bool Core::RestoreState(support::StateReader& r) {
  if (!regs_.RestoreState(r) || !hpm_.RestoreState(r) ||
      !btb_.RestoreState(r) || !dear_.RestoreState(r)) {
    return false;
  }
  std::uint32_t credit = 0;
  r.U64(&pc_);
  r.Bool(&halted_);
  r.U32(&credit);
  r.U64(&now_);
  r.U64(&retired_);
  r.U64(&lfetches_dropped_);
  r.U64(&sample_period_);
  r.U64(&until_sample_);
  if (!r.Ok() || credit > static_cast<std::uint32_t>(issue_width_)) {
    return false;
  }
  bundle_credit_ = static_cast<int>(credit);
  // Host-side superblock resume hints never survive a restore: they point
  // into the saved process's translation cache. The next tjit segment
  // simply looks the pc up again.
  resume_sb_ = nullptr;
  resume_idx_ = 0;
  resume_pc_ = 0;
  return true;
}

void Core::ExecutePlan(const ExecPlan& plan) {
  // Branch opcodes interpret predicates themselves (br.cond's qp *is* its
  // condition; br.ctop/br.wtop execute regardless).
  if (plan.cls & isa::kPlanBranch) {
    DoBranchPlan(plan);
    return;
  }

  // Qualifying predicate: a squashed instruction still retires but has no
  // architectural effect (no post-increment either).
  if (!regs_.ReadPr(plan.qp)) {
    AdvancePc();
    return;
  }

  if (plan.cls & isa::kPlanMem) {
    DoMemoryOpPlan(plan, regs_.ReadGr(plan.r2));
    AdvancePc();
    return;
  }

  kPlanHandlers[plan.handler](*this, plan);
}

}  // namespace cobra::cpu
