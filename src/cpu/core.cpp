#include "cpu/core.h"

#include <bit>
#include <cmath>

#include "support/check.h"
#include "verify/coherence_checker.h"

namespace cobra::cpu {

using isa::Addr;
using isa::Instruction;
using isa::Opcode;

Core::Core(CpuId id, isa::BinaryImage* image, mem::MainMemory* memory,
           mem::CacheStack* stack, const mem::CoherenceFabric* fabric)
    : id_(id),
      image_(image),
      memory_(memory),
      stack_(stack),
      fabric_(fabric),
      hpm_(this) {
  COBRA_CHECK(image != nullptr && memory != nullptr && stack != nullptr &&
              fabric != nullptr);
}

void Core::Start(Addr entry) {
  COBRA_CHECK_MSG(isa::SlotOf(entry) == 0, "entry must be bundle-aligned");
  pc_ = entry;
  halted_ = false;
}

void Core::SetRetireHook(std::uint64_t period_insts,
                         std::function<void(Core&)> hook) {
  sample_period_ = period_insts;
  until_sample_ = period_insts;
  sample_hook_ = std::move(hook);
}

std::uint64_t Core::RawEventValue(HpmEvent event) const {
  const mem::CacheStack::Stats& ss = stack_->stats();
  const mem::BusEventCounts& bus = fabric_->CpuCounts(id_);
  switch (event) {
    case HpmEvent::kCpuCycles: return now_;
    case HpmEvent::kInstRetired: return retired_;
    case HpmEvent::kL2Misses: return stack_->L2Misses();
    case HpmEvent::kL3Misses: return stack_->L3Misses();
    case HpmEvent::kBusMemory: return bus.bus_memory;
    case HpmEvent::kBusRdHit: return bus.bus_rd_hit;
    case HpmEvent::kBusRdHitm: return bus.bus_rd_hitm;
    case HpmEvent::kBusRdInvalAllHitm: return bus.bus_rd_inval_all_hitm;
    case HpmEvent::kBusUpgrades: return bus.bus_upgrades;
    case HpmEvent::kL2Writebacks: return ss.l2_writebacks;
    case HpmEvent::kLoadsRetired: return ss.loads;
    case HpmEvent::kStoresRetired: return ss.stores;
    case HpmEvent::kPrefetchesRetired: return ss.prefetches;
    case HpmEvent::kEventCount: break;
  }
  COBRA_UNREACHABLE("bad HPM event selector");
}

void Core::Step() {
  COBRA_CHECK_MSG(!halted_, "stepping a halted core");
  StepFetched(image_->Fetch(pc_));
}

void Core::StepFetched(const Instruction& inst) {
  ChargeIssue();
  Execute(inst);
  RetireTail();
}

bool Core::NextStepNeedsFabric() const {
  if (halted_) return false;
  const Instruction& inst = image_->Fetch(pc_);
  // Only memory ops can touch the fabric (branch and memory opcodes are
  // disjoint), and a squashed instruction retires with no architectural
  // effect (Execute checks the same predicate).
  if (!isa::IsMemoryOp(inst.op)) return false;
  if (!regs_.ReadPr(inst.qp)) return false;
  return MemOpNeedsFabric(inst, regs_.ReadGr(inst.r2));
}

bool Core::MemOpNeedsFabric(const Instruction& inst, Addr addr) const {
  switch (inst.op) {
    case Opcode::kLd:
      return stack_->LoadNeedsFabric(addr, /*fp=*/false,
                                     inst.ld_hint == isa::LoadHint::kBias);
    case Opcode::kLdf:
      return stack_->LoadNeedsFabric(addr, /*fp=*/true, /*bias=*/false);
    case Opcode::kSt:
    case Opcode::kStf:
      return stack_->StoreNeedsFabric(addr);
    case Opcode::kLfetch: {
      if (addr >= memory_->size()) return false;  // non-faulting: dropped
      // Prefetch routing compares in-flight fill deadlines against the
      // access time, which includes the issue cycle this step would charge.
      Cycle access_now = now_;
      if (isa::SlotOf(pc_) == 0 &&
          bundle_credit_ + 1 >= stack_->config().issue_width_bundles) {
        ++access_now;
      }
      return stack_->PrefetchNeedsFabric(addr, inst.lf_hint.excl, access_now);
    }
    default:
      COBRA_UNREACHABLE("not a memory op");
  }
}

void Core::RunSegment(Cycle q_end) {
  while (!halted_ && now_ < q_end) {
    const Instruction& inst = image_->Fetch(pc_);
    if (isa::IsMemoryOp(inst.op) && regs_.ReadPr(inst.qp)) {
      const Addr addr = regs_.ReadGr(inst.r2);
      if (MemOpNeedsFabric(inst, addr)) return;
      // Fused step: the classification, predicate and address above are
      // exactly what Execute would recompute.
      ChargeIssue();
      DoMemoryOp(inst, addr);
      AdvancePc();
      RetireTail();
      continue;
    }
    StepFetched(inst);
  }
}

void Core::TakeBranch(Addr target, bool loop_branch) {
  btb_.RecordTaken(pc_, target);
  // Itanium's counted-loop branches (br.ctop/br.cloop/br.wtop) are
  // perfectly predicted and take no bubble; other taken branches pay one.
  if (!loop_branch) ++now_;
  pc_ = isa::BundleAddr(target);
  bundle_credit_ = 0;  // issue group ends at a taken branch
}

void Core::DoMemoryOp(const Instruction& inst, Addr addr) {
  // Software pipelining / compiler scheduling hides a window of load
  // latency; only the remainder stalls the core. DEAR observes the full
  // latency (the hardware captures it at the memory system, not the
  // pipeline).
  const Cycle hide = stack_->config().load_hide_cycles;
  auto Stall = [hide](Cycle latency) {
    return latency > hide ? latency - hide : 0;
  };

  switch (inst.op) {
    case Opcode::kLd: {
      const std::uint64_t value = memory_->Read(addr, inst.size);
      regs_.WriteGr(inst.r1, value);
      if (checker_ != nullptr) checker_->OnLoad(id_, addr, inst.size, value);
      const auto result =
          stack_->Load(addr, inst.size, /*fp=*/false,
                       inst.ld_hint == isa::LoadHint::kBias, now_);
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kLdf: {
      const double value = memory_->ReadDouble(addr);
      regs_.WriteFr(inst.r1, value);
      if (checker_ != nullptr) {
        checker_->OnLoad(id_, addr, 8, std::bit_cast<std::uint64_t>(value));
      }
      const auto result =
          stack_->Load(addr, 8, /*fp=*/true, /*bias=*/false, now_);
      now_ += Stall(result.latency);
      dear_.Observe(pc_, addr, result.latency);
      break;
    }
    case Opcode::kSt: {
      std::uint64_t value = regs_.ReadGr(inst.r3);
      if (inst.size < 8) value &= (1ULL << (inst.size * 8)) - 1;
      memory_->Write(addr, inst.size, value);
      if (checker_ != nullptr) checker_->OnStore(id_, addr, inst.size, value);
      now_ += stack_->Store(addr, inst.size, now_).latency;
      break;
    }
    case Opcode::kStf: {
      const double value = regs_.ReadFr(inst.r3);
      memory_->WriteDouble(addr, value);
      if (checker_ != nullptr) {
        checker_->OnStore(id_, addr, 8, std::bit_cast<std::uint64_t>(value));
      }
      now_ += stack_->Store(addr, 8, now_).latency;
      break;
    }
    case Opcode::kLfetch: {
      // Non-binding and non-faulting: a prefetch past the end of the data
      // segment (the Figure 2 pathology would fault otherwise) is dropped.
      if (addr < memory_->size()) {
        stack_->Prefetch(addr, inst.lf_hint.excl, now_);
      } else {
        ++lfetches_dropped_;
      }
      break;
    }
    default:
      COBRA_UNREACHABLE("not a memory op");
  }

  if (inst.post_inc) {
    regs_.WriteGr(inst.r2, addr + static_cast<std::uint64_t>(inst.imm));
  }

  // The op is complete (lines installed, victims written back): re-check
  // the settled invariants of every line its fabric traffic touched.
  if (checker_ != nullptr) checker_->OnOpSettled(id_);
}

void Core::DoBranch(const Instruction& inst) {
  auto Target = [&]() -> Addr {
    return isa::BundleAddr(pc_) +
           static_cast<Addr>(inst.imm *
                             static_cast<std::int64_t>(isa::kBundleBytes));
  };

  switch (inst.op) {
    case Opcode::kBrCond:
      if (regs_.ReadPr(inst.qp)) {
        TakeBranch(Target(), /*loop_branch=*/false);
      } else {
        AdvancePc();
      }
      return;

    case Opcode::kBrCloop:
      if (regs_.lc() != 0) {
        regs_.set_lc(regs_.lc() - 1);
        TakeBranch(Target(), /*loop_branch=*/true);
      } else {
        AdvancePc();
      }
      return;

    case Opcode::kBrCtop:
      // IA-64 modulo-scheduled counted-loop branch.
      if (regs_.lc() != 0) {
        regs_.set_lc(regs_.lc() - 1);
        regs_.WritePr(63, true);   // becomes p16 after rotation
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else if (regs_.ec() > 1) {
        regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);  // epilogue stages drain
      } else {
        if (regs_.ec() != 0) regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        AdvancePc();               // final exit: no rotation
      }
      return;

    case Opcode::kBrWtop:
      // IA-64 modulo-scheduled while-loop branch.
      if (regs_.ReadPr(inst.qp)) {
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else if (regs_.ec() > 1) {
        regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        regs_.RotateDown();
        TakeBranch(Target(), /*loop_branch=*/true);
      } else {
        if (regs_.ec() != 0) regs_.set_ec(regs_.ec() - 1);
        regs_.WritePr(63, false);
        AdvancePc();
      }
      return;

    case Opcode::kBrl:
      TakeBranch(static_cast<Addr>(inst.imm), /*loop_branch=*/false);
      return;

    default:
      COBRA_UNREACHABLE("not a branch");
  }
}

void Core::Execute(const Instruction& inst) {
  // Branch opcodes interpret predicates themselves (br.cond's qp *is* its
  // condition; br.ctop/br.wtop execute regardless).
  if (isa::IsBranch(inst.op)) {
    DoBranch(inst);
    return;
  }

  // Qualifying predicate: a squashed instruction still retires but has no
  // architectural effect (no post-increment either).
  if (!regs_.ReadPr(inst.qp)) {
    AdvancePc();
    return;
  }

  if (isa::IsMemoryOp(inst.op)) {
    DoMemoryOp(inst, regs_.ReadGr(inst.r2));
    AdvancePc();
    return;
  }

  auto CmpEval = [&](isa::CmpRel rel, std::uint64_t a,
                     std::uint64_t b) -> bool {
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (rel) {
      case isa::CmpRel::kEq: return a == b;
      case isa::CmpRel::kNe: return a != b;
      case isa::CmpRel::kLt: return sa < sb;
      case isa::CmpRel::kLe: return sa <= sb;
      case isa::CmpRel::kGt: return sa > sb;
      case isa::CmpRel::kGe: return sa >= sb;
      case isa::CmpRel::kLtu: return a < b;
      case isa::CmpRel::kGeu: return a >= b;
    }
    COBRA_UNREACHABLE("bad cmp relation");
  };

  auto FCmpEval = [&](isa::FCmpRel rel, double a, double b) -> bool {
    switch (rel) {
      case isa::FCmpRel::kEq: return a == b;
      case isa::FCmpRel::kNe: return a != b;
      case isa::FCmpRel::kLt: return a < b;
      case isa::FCmpRel::kLe: return a <= b;
      case isa::FCmpRel::kGt: return a > b;
      case isa::FCmpRel::kGe: return a >= b;
    }
    COBRA_UNREACHABLE("bad fcmp relation");
  };

  switch (inst.op) {
    case Opcode::kNop:
      break;
    case Opcode::kBreak:
      halted_ = true;
      return;  // pc stays at the break

    case Opcode::kAddReg:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) + regs_.ReadGr(inst.r3));
      break;
    case Opcode::kSubReg:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) - regs_.ReadGr(inst.r3));
      break;
    case Opcode::kAddImm:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) +
                                 static_cast<std::uint64_t>(inst.imm));
      break;
    case Opcode::kShlAdd:
      regs_.WriteGr(inst.r1,
                    (regs_.ReadGr(inst.r2) << inst.imm) + regs_.ReadGr(inst.r3));
      break;
    case Opcode::kAnd:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) & regs_.ReadGr(inst.r3));
      break;
    case Opcode::kOr:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) | regs_.ReadGr(inst.r3));
      break;
    case Opcode::kXor:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) ^ regs_.ReadGr(inst.r3));
      break;
    case Opcode::kAndImm:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) &
                                 static_cast<std::uint64_t>(inst.imm));
      break;
    case Opcode::kOrImm:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) |
                                 static_cast<std::uint64_t>(inst.imm));
      break;
    case Opcode::kShlImm:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) << inst.imm);
      break;
    case Opcode::kShrImm:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) >> inst.imm);
      break;
    case Opcode::kSarImm:
      regs_.WriteGr(inst.r1,
                    static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(regs_.ReadGr(inst.r2)) >>
                        inst.imm));
      break;
    case Opcode::kMovImm:
      regs_.WriteGr(inst.r1, static_cast<std::uint64_t>(inst.imm));
      break;
    case Opcode::kMovReg:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2));
      break;
    case Opcode::kSxt4:
      regs_.WriteGr(inst.r1,
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(
                        static_cast<std::int32_t>(regs_.ReadGr(inst.r2)))));
      break;
    case Opcode::kZxt4:
      regs_.WriteGr(inst.r1, regs_.ReadGr(inst.r2) & 0xffffffffULL);
      break;
    case Opcode::kCmp: {
      const bool t =
          CmpEval(inst.rel, regs_.ReadGr(inst.r2), regs_.ReadGr(inst.r3));
      regs_.WritePr(inst.p1, t);
      if (inst.p2 != 0) regs_.WritePr(inst.p2, !t);
      break;
    }
    case Opcode::kCmpImm: {
      const bool t = CmpEval(inst.rel, regs_.ReadGr(inst.r2),
                             static_cast<std::uint64_t>(inst.imm));
      regs_.WritePr(inst.p1, t);
      if (inst.p2 != 0) regs_.WritePr(inst.p2, !t);
      break;
    }

    case Opcode::kMovToAr:
      if (static_cast<isa::AppReg>(inst.imm) == isa::AppReg::kLC) {
        regs_.set_lc(regs_.ReadGr(inst.r2));
      } else {
        regs_.set_ec(regs_.ReadGr(inst.r2));
      }
      break;
    case Opcode::kMovFromAr:
      regs_.WriteGr(inst.r1, static_cast<isa::AppReg>(inst.imm) ==
                                     isa::AppReg::kLC
                                 ? regs_.lc()
                                 : regs_.ec());
      break;
    case Opcode::kMovToPrRot:
      regs_.SetRotatingPredicates(static_cast<std::uint64_t>(inst.imm));
      break;
    case Opcode::kClrRrb:
      regs_.ClearRrb();
      break;

    // IA-64 fma.d and friends are *fused*: a single rounding.
    case Opcode::kFma:
      regs_.WriteFr(inst.r1, std::fma(regs_.ReadFr(inst.r2),
                                      regs_.ReadFr(inst.r3),
                                      regs_.ReadFr(inst.extra)));
      break;
    case Opcode::kFms:
      regs_.WriteFr(inst.r1, std::fma(regs_.ReadFr(inst.r2),
                                      regs_.ReadFr(inst.r3),
                                      -regs_.ReadFr(inst.extra)));
      break;
    case Opcode::kFnma:
      regs_.WriteFr(inst.r1, std::fma(-regs_.ReadFr(inst.r2),
                                      regs_.ReadFr(inst.r3),
                                      regs_.ReadFr(inst.extra)));
      break;
    case Opcode::kFmov:
      regs_.WriteFr(inst.r1, regs_.ReadFr(inst.r2));
      break;
    case Opcode::kFneg:
      regs_.WriteFr(inst.r1, -regs_.ReadFr(inst.r2));
      break;
    case Opcode::kFabs:
      regs_.WriteFr(inst.r1, std::fabs(regs_.ReadFr(inst.r2)));
      break;
    case Opcode::kFrcpa:
      regs_.WriteFr(inst.r1, 1.0 / regs_.ReadFr(inst.r2));
      break;
    case Opcode::kFsqrt:
      regs_.WriteFr(inst.r1, std::sqrt(regs_.ReadFr(inst.r2)));
      break;
    case Opcode::kFmin:
      regs_.WriteFr(inst.r1,
                    std::fmin(regs_.ReadFr(inst.r2), regs_.ReadFr(inst.r3)));
      break;
    case Opcode::kFmax:
      regs_.WriteFr(inst.r1,
                    std::fmax(regs_.ReadFr(inst.r2), regs_.ReadFr(inst.r3)));
      break;
    case Opcode::kFcmp: {
      const bool t =
          FCmpEval(inst.frel, regs_.ReadFr(inst.r2), regs_.ReadFr(inst.r3));
      regs_.WritePr(inst.p1, t);
      if (inst.p2 != 0) regs_.WritePr(inst.p2, !t);
      break;
    }
    case Opcode::kSetf:
      regs_.WriteFr(inst.r1, std::bit_cast<double>(regs_.ReadGr(inst.r2)));
      break;
    case Opcode::kGetf:
      regs_.WriteGr(inst.r1, std::bit_cast<std::uint64_t>(regs_.ReadFr(inst.r2)));
      break;
    case Opcode::kFcvtFx:
      // Truncate toward zero (value kept in the FR as a double; see DESIGN).
      regs_.WriteFr(inst.r1, std::trunc(regs_.ReadFr(inst.r2)));
      break;
    case Opcode::kFcvtXf:
      regs_.WriteFr(inst.r1, regs_.ReadFr(inst.r2));
      break;

    default:
      COBRA_UNREACHABLE("unhandled opcode");
  }

  AdvancePc();
}

}  // namespace cobra::cpu
