// MIA-64 architectural register file, including the rotating register
// machinery that IA-64 software pipelining is built on.
//
// General registers r32..r127, floating registers f32..f127 and predicate
// registers p16..p63 rotate: a logical register name maps to a physical
// slot offset by the rotating register base (RRB), and the modulo-scheduled
// loop branches decrement the RRBs so that a value written to r32 in one
// iteration is read as r33 in the next.  This is exactly the mechanism the
// icc-generated DAXPY kernel in the paper's Figure 2 uses to alternate
// prefetch target addresses between the x[] and y[] streams.
#pragma once

#include <array>
#include <cstdint>

#include "isa/types.h"
#include "support/check.h"

namespace cobra::cpu {

class RegisterFile {
 public:
  RegisterFile();

  // --- General registers ---------------------------------------------------
  std::uint64_t ReadGr(int r) const;
  void WriteGr(int r, std::uint64_t value);

  // --- Floating registers (hold doubles; f0 = +0.0, f1 = 1.0) --------------
  double ReadFr(int r) const;
  void WriteFr(int r, double value);

  // --- Predicate registers (p0 hardwired to 1) -----------------------------
  bool ReadPr(int p) const;
  void WritePr(int p, bool value);

  // Sets the 48 rotating predicates from a bit mask: bit i -> p(16+i)
  // (mov pr.rot = imm).
  void SetRotatingPredicates(std::uint64_t mask);

  // --- Application registers ------------------------------------------------
  std::uint64_t lc() const { return lc_; }
  void set_lc(std::uint64_t v) { lc_ = v; }
  std::uint64_t ec() const { return ec_; }
  void set_ec(std::uint64_t v) { ec_ = v; }

  // --- Rotation --------------------------------------------------------------
  // Decrements all three RRBs (the effect of a taken br.ctop/br.wtop).
  void RotateDown();
  // Resets all RRBs to zero (clrrrb).
  void ClearRrb();
  int rrb_gr() const { return rrb_gr_; }
  int rrb_pr() const { return rrb_pr_; }

  // Resets every register, predicate, AR and RRB to the power-on state.
  void Reset();

 private:
  int PhysGr(int r) const {
    if (r < isa::kFirstRotGr) return r;
    return isa::kFirstRotGr +
           (r - isa::kFirstRotGr + rrb_gr_) % isa::kNumRotGr;
  }
  int PhysFr(int r) const {
    if (r < isa::kFirstRotFr) return r;
    return isa::kFirstRotFr +
           (r - isa::kFirstRotFr + rrb_fr_) % isa::kNumRotFr;
  }
  int PhysPr(int p) const {
    if (p < isa::kFirstRotPr) return p;
    return isa::kFirstRotPr +
           (p - isa::kFirstRotPr + rrb_pr_) % isa::kNumRotPr;
  }

  std::array<std::uint64_t, isa::kNumGr> gr_{};
  std::array<double, isa::kNumFr> fr_{};
  std::array<bool, isa::kNumPr> pr_{};
  std::uint64_t lc_ = 0;
  std::uint64_t ec_ = 0;
  int rrb_gr_ = 0;
  int rrb_fr_ = 0;
  int rrb_pr_ = 0;
};

}  // namespace cobra::cpu
