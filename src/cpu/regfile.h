// MIA-64 architectural register file, including the rotating register
// machinery that IA-64 software pipelining is built on.
//
// General registers r32..r127, floating registers f32..f127 and predicate
// registers p16..p63 rotate: a logical register name maps to a physical
// slot offset by the rotating register base (RRB), and the modulo-scheduled
// loop branches decrement the RRBs so that a value written to r32 in one
// iteration is read as r33 in the next.  This is exactly the mechanism the
// icc-generated DAXPY kernel in the paper's Figure 2 uses to alternate
// prefetch target addresses between the x[] and y[] streams.
#pragma once

#include <array>
#include <cstdint>

#include "isa/types.h"
#include "support/check.h"
#include "support/snapshot.h"

namespace cobra::cpu {

class RegisterFile {
 public:
  RegisterFile();

  // The register accessors are inline: they run several times per simulated
  // instruction and the rotation arithmetic below is branch-free enough to
  // fold into the caller.

  // --- General registers ---------------------------------------------------
  std::uint64_t ReadGr(int r) const {
    COBRA_CHECK(r >= 0 && r < isa::kNumGr);
    if (r == 0) return 0;
    return gr_[static_cast<std::size_t>(PhysGr(r))];
  }
  void WriteGr(int r, std::uint64_t value) {
    COBRA_CHECK(r >= 0 && r < isa::kNumGr);
    COBRA_CHECK_MSG(r != 0, "write to r0 is illegal");
    gr_[static_cast<std::size_t>(PhysGr(r))] = value;
  }

  // --- Floating registers (hold doubles; f0 = +0.0, f1 = 1.0) --------------
  double ReadFr(int r) const {
    COBRA_CHECK(r >= 0 && r < isa::kNumFr);
    if (r == 0) return 0.0;
    if (r == 1) return 1.0;
    return fr_[static_cast<std::size_t>(PhysFr(r))];
  }
  void WriteFr(int r, double value) {
    COBRA_CHECK(r >= 0 && r < isa::kNumFr);
    COBRA_CHECK_MSG(r > 1, "write to f0/f1 is illegal");
    fr_[static_cast<std::size_t>(PhysFr(r))] = value;
  }

  // --- Predicate registers (p0 hardwired to 1) -----------------------------
  bool ReadPr(int p) const {
    COBRA_CHECK(p >= 0 && p < isa::kNumPr);
    if (p == 0) return true;
    return pr_[static_cast<std::size_t>(PhysPr(p))];
  }
  void WritePr(int p, bool value) {
    COBRA_CHECK(p >= 0 && p < isa::kNumPr);
    COBRA_CHECK_MSG(p != 0, "write to p0 is illegal");
    pr_[static_cast<std::size_t>(PhysPr(p))] = value;
  }

  // Sets the 48 rotating predicates from a bit mask: bit i -> p(16+i)
  // (mov pr.rot = imm).
  void SetRotatingPredicates(std::uint64_t mask);

  // --- Application registers ------------------------------------------------
  std::uint64_t lc() const { return lc_; }
  void set_lc(std::uint64_t v) { lc_ = v; }
  std::uint64_t ec() const { return ec_; }
  void set_ec(std::uint64_t v) { ec_ = v; }

  // --- Rotation --------------------------------------------------------------
  // Decrements all three RRBs (the effect of a taken br.ctop/br.wtop).
  // Inline: charged on every taken modulo-scheduled loop branch.
  void RotateDown() {
    rrb_gr_ = rrb_gr_ == 0 ? isa::kNumRotGr - 1 : rrb_gr_ - 1;
    rrb_fr_ = rrb_fr_ == 0 ? isa::kNumRotFr - 1 : rrb_fr_ - 1;
    rrb_pr_ = rrb_pr_ == 0 ? isa::kNumRotPr - 1 : rrb_pr_ - 1;
  }
  // Resets all RRBs to zero (clrrrb).
  void ClearRrb();
  int rrb_gr() const { return rrb_gr_; }
  int rrb_pr() const { return rrb_pr_; }

  // Resets every register, predicate, AR and RRB to the power-on state.
  void Reset();

  // --- Checkpointing ---------------------------------------------------------
  // Physical-slot order (rotation-independent): the RRBs travel alongside,
  // so a restored file maps logical names exactly as the saved one did.
  void SaveState(support::StateWriter& w) const {
    for (const std::uint64_t v : gr_) w.U64(v);
    for (const double v : fr_) w.F64(v);
    for (const bool v : pr_) w.Bool(v);
    w.U64(lc_);
    w.U64(ec_);
    w.U32(static_cast<std::uint32_t>(rrb_gr_));
    w.U32(static_cast<std::uint32_t>(rrb_fr_));
    w.U32(static_cast<std::uint32_t>(rrb_pr_));
  }
  bool RestoreState(support::StateReader& r) {
    for (std::uint64_t& v : gr_) r.U64(&v);
    for (double& v : fr_) r.F64(&v);
    for (bool& v : pr_) r.Bool(&v);
    r.U64(&lc_);
    r.U64(&ec_);
    std::uint32_t rrb[3] = {};
    r.U32(&rrb[0]);
    r.U32(&rrb[1]);
    r.U32(&rrb[2]);
    if (!r.Ok()) return false;
    rrb_gr_ = static_cast<int>(rrb[0]);
    rrb_fr_ = static_cast<int>(rrb[1]);
    rrb_pr_ = static_cast<int>(rrb[2]);
    return rrb_gr_ >= 0 && rrb_gr_ < isa::kNumRotGr && rrb_fr_ >= 0 &&
           rrb_fr_ < isa::kNumRotFr && rrb_pr_ >= 0 && rrb_pr_ < isa::kNumRotPr;
  }

 private:
  // Rotation maps a logical name to `first + (name - first + rrb) % num`.
  // The RRBs stay in [0, num) (RotateDown/ClearRrb maintain this) and the
  // logical offset is < num, so the sum is < 2*num and the modulo reduces
  // to at most one subtraction — this runs for every register access on the
  // interpreter's hot path.
  static int PhysRot(int reg, int first, int num, int rrb) {
    int t = reg - first + rrb;
    if (t >= num) t -= num;
    return first + t;
  }
  int PhysGr(int r) const {
    if (r < isa::kFirstRotGr) return r;
    return PhysRot(r, isa::kFirstRotGr, isa::kNumRotGr, rrb_gr_);
  }
  int PhysFr(int r) const {
    if (r < isa::kFirstRotFr) return r;
    return PhysRot(r, isa::kFirstRotFr, isa::kNumRotFr, rrb_fr_);
  }
  int PhysPr(int p) const {
    if (p < isa::kFirstRotPr) return p;
    return PhysRot(p, isa::kFirstRotPr, isa::kNumRotPr, rrb_pr_);
  }

  std::array<std::uint64_t, isa::kNumGr> gr_{};
  std::array<double, isa::kNumFr> fr_{};
  std::array<bool, isa::kNumPr> pr_{};
  std::uint64_t lc_ = 0;
  std::uint64_t ec_ = 0;
  int rrb_gr_ = 0;
  int rrb_fr_ = 0;
  int rrb_pr_ = 0;
};

}  // namespace cobra::cpu
