// In-order MIA-64 core: functional interpreter + cycle-approximate timing.
//
// Timing model (uniform across all code versions, which is what the
// paper's comparisons require):
//   * one cycle per bundle issued (the interpreter charges it when it
//     executes slot 0);
//   * loads and stores additionally stall the core for the latency the
//     cache stack reports (misses expose full memory/coherence latency;
//     an in-flight prefetched line stalls only for the remainder);
//   * lfetch never stalls (non-binding), but its bus traffic delays
//     everyone through fabric occupancy;
//   * taken branches cost one extra cycle.
//
// The core implements HpmSource by combining its own retire/cycle counts
// with its cache stack's statistics and its per-CPU fabric event counts, so
// the Hpm/Btb/Dear models observe exactly what the hardware would.
#pragma once

#include <functional>

#include "cpu/hpm.h"
#include "cpu/regfile.h"
#include "isa/image.h"
#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/main_memory.h"
#include "support/simtypes.h"

namespace cobra::cpu {

class Core final : public HpmSource {
 public:
  Core(CpuId id, isa::BinaryImage* image, mem::MainMemory* memory,
       mem::CacheStack* stack, const mem::CoherenceFabric* fabric);

  CpuId id() const { return id_; }

  // --- Control --------------------------------------------------------------
  // Unhalts the core and begins execution at `entry` (bundle-aligned).
  void Start(isa::Addr entry);
  bool halted() const { return halted_; }
  isa::Addr pc() const { return pc_; }

  Cycle now() const { return now_; }
  void set_now(Cycle t) { now_ = t; }

  // Executes exactly one instruction (abort if halted).
  void Step();

  // --- State ------------------------------------------------------------------
  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }
  Hpm& hpm() { return hpm_; }
  Btb& btb() { return btb_; }
  const Btb& btb() const { return btb_; }
  Dear& dear() { return dear_; }
  const Dear& dear() const { return dear_; }
  mem::CacheStack& stack() { return *stack_; }

  std::uint64_t instructions_retired() const { return retired_; }
  std::uint64_t lfetches_dropped() const { return lfetches_dropped_; }

  // --- Sampling hook (perfmon driver) ----------------------------------------
  // Invokes `hook` every `period_insts` retired instructions. A period of 0
  // disables sampling.
  void SetRetireHook(std::uint64_t period_insts,
                     std::function<void(Core&)> hook);

  // --- HpmSource ---------------------------------------------------------------
  std::uint64_t RawEventValue(HpmEvent event) const override;

 private:
  void Execute(const isa::Instruction& inst);
  void AdvancePc() {
    const unsigned slot = isa::SlotOf(pc_);
    pc_ = slot < 2 ? pc_ + 1 : isa::BundleAddr(pc_) + isa::kBundleBytes;
  }
  void TakeBranch(isa::Addr target, bool loop_branch);
  void DoMemoryOp(const isa::Instruction& inst);
  void DoBranch(const isa::Instruction& inst);

  CpuId id_;
  isa::BinaryImage* image_;
  mem::MainMemory* memory_;
  mem::CacheStack* stack_;
  const mem::CoherenceFabric* fabric_;

  RegisterFile regs_;
  Hpm hpm_;
  Btb btb_;
  Dear dear_;

  isa::Addr pc_ = 0;
  bool halted_ = true;
  int bundle_credit_ = 0;
  Cycle now_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t lfetches_dropped_ = 0;

  std::uint64_t sample_period_ = 0;
  std::uint64_t until_sample_ = 0;
  std::function<void(Core&)> sample_hook_;
};

}  // namespace cobra::cpu
