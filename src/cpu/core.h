// In-order MIA-64 core: functional interpreter + cycle-approximate timing.
//
// Timing model (uniform across all code versions, which is what the
// paper's comparisons require):
//   * one cycle per bundle issued (the interpreter charges it when it
//     executes slot 0);
//   * loads and stores additionally stall the core for the latency the
//     cache stack reports (misses expose full memory/coherence latency;
//     an in-flight prefetched line stalls only for the remainder);
//   * lfetch never stalls (non-binding), but its bus traffic delays
//     everyone through fabric occupancy;
//   * taken branches cost one extra cycle.
//
// The core implements HpmSource by combining its own retire/cycle counts
// with its cache stack's statistics and its per-CPU fabric event counts, so
// the Hpm/Btb/Dear models observe exactly what the hardware would.
#pragma once

#include <functional>

#include "cpu/hpm.h"
#include "cpu/regfile.h"
#include "isa/exec_plan.h"
#include "isa/image.h"
#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/main_memory.h"
#include "support/simtypes.h"

namespace cobra::verify {
class CoherenceChecker;
}

namespace cobra::tjit {
class TranslationCache;
struct Superblock;
}

namespace cobra::cpu {

// Defined in core.cpp: the per-opcode handler table the execute path
// dispatches through (friend of Core so handlers touch core state directly).
struct ExecOps;

// Observes every taken branch with the core's retire count, the raw feed
// the BBV phase profiler builds per-interval basic-block vectors from
// (block weight = instructions retired since the previous taken branch).
class BlockProfiler {
 public:
  virtual ~BlockProfiler() = default;
  virtual void OnTakenBranch(CpuId cpu, isa::Addr target,
                             std::uint64_t retired) = 0;
};

class Core final : public HpmSource {
 public:
  Core(CpuId id, isa::BinaryImage* image, mem::MainMemory* memory,
       mem::CacheStack* stack, const mem::CoherenceFabric* fabric);

  CpuId id() const { return id_; }

  // Attaches the coherence checker's golden memory oracle: every load's
  // returned value is diffed against it, every store is applied to it, and
  // the per-line settled invariants are re-checked after each memory op.
  void AttachChecker(verify::CoherenceChecker* checker) {
    checker_ = checker;
  }

  // Observes every architecturally performed data-memory access (load,
  // store, lfetch) as (pc, address) — predicated-off slots never fire.
  // The scalar-evolution differential harness replays these streams
  // against the static stride claims. Setting an observer forces the
  // reference probe-then-access path: the fused fast path commits
  // accesses without any per-op interposition point.
  using MemObserver = std::function<void(isa::Addr pc, isa::Addr addr)>;
  void SetMemObserver(MemObserver observer) {
    mem_observer_ = std::move(observer);
  }

  // --- Control --------------------------------------------------------------
  // Unhalts the core and begins execution at `entry` (bundle-aligned).
  void Start(isa::Addr entry);
  bool halted() const { return halted_; }
  isa::Addr pc() const { return pc_; }

  Cycle now() const { return now_; }
  void set_now(Cycle t) { now_ = t; }

  // Executes exactly one instruction (abort if halted).
  void Step();

  // Exact, side-effect-free probe: would the next Step() issue a coherence
  // fabric transaction? The execution engines (machine/engine.h) call this
  // at every step boundary to end a core-private segment just before a
  // fabric access, which is then committed in canonical (cycle, cpu-id)
  // order while all other cores are quiescent. Mirrors DoMemoryOpPlan's
  // routing into the cache stack's *NeedsFabric probes
  // decision-for-decision.
  bool NextStepNeedsFabric() const;

  // Segment hot loop for the execution engines: equivalent to
  //   while (!halted() && now() < q_end && !NextStepNeedsFabric()) Step();
  // but looks up each slot's exec plan once (probe and step share the
  // classification). The caller is expected to hold the cache stack's
  // fabric guard. With a translation cache attached (AttachTjit), hot
  // traces run through compiled superblocks instead of the interpreter —
  // with step-for-step identical simulated effects.
  void RunSegment(Cycle q_end);

  // Full quantum window for a single runnable core (no segmentation
  // needed: program order is canonical commit order). Equivalent to
  //   while (!halted() && now() < q_end) Step();
  // but routes through RunSegment so the superblock executor and fused
  // cache accesses are used; fabric-bound steps execute inline.
  void RunQuantum(Cycle q_end);

  // --- Trace JIT -------------------------------------------------------------
  // Attaches this core's translation cache (owned by the Machine; nullptr
  // detaches). See tjit/tcache.h for the invalidation contract.
  void AttachTjit(tjit::TranslationCache* tc) {
    tjit_ = tc;
    resume_sb_ = nullptr;
  }
  tjit::TranslationCache* tjit() { return tjit_; }
  // Instructions retired inside the superblock executor (host-side
  // accounting; a subset of instructions_retired()).
  std::uint64_t superblock_retired() const { return tjit_retired_; }

  // --- State ------------------------------------------------------------------
  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }
  Hpm& hpm() { return hpm_; }
  Btb& btb() { return btb_; }
  const Btb& btb() const { return btb_; }
  Dear& dear() { return dear_; }
  const Dear& dear() const { return dear_; }
  mem::CacheStack& stack() { return *stack_; }

  std::uint64_t instructions_retired() const { return retired_; }
  std::uint64_t lfetches_dropped() const { return lfetches_dropped_; }

  // --- Sampling hook (perfmon driver) ----------------------------------------
  // Invokes `hook` every `period_insts` retired instructions. A period of 0
  // disables sampling.
  void SetRetireHook(std::uint64_t period_insts,
                     std::function<void(Core&)> hook);

  // --- BBV profiling ---------------------------------------------------------
  // Attaches the basic-block-vector profiler (nullptr detaches). No fast
  // path skips it: branches execute through DoBranchPlan/TakeBranch on the
  // interpreter, fused and superblock paths alike.
  void SetBlockProfiler(BlockProfiler* profiler) { bbv_ = profiler; }

  // --- Fast-forward mode -----------------------------------------------------
  // Functional-only execution: architectural effects (registers, memory,
  // pc, retire counts and hooks) are exact, but loads/stores/lfetches skip
  // the cache stack and coherence fabric entirely — no hit/miss stats, no
  // DEAR observations, no stall cycles, no bus occupancy. Time advances by
  // issue and branch charges only. Switch only at quantum boundaries (via
  // a round task): mid-segment mode flips would tear the timing model.
  void SetFastForward(bool on) { fast_forward_ = on; }
  bool fast_forward() const { return fast_forward_; }

  // --- Checkpointing ---------------------------------------------------------
  // Architectural + timing state (registers, HPM/BTB/DEAR, pc, clock,
  // retire/sample counters). Host-side execution hints (superblock resume
  // state) are dropped: the tjit re-enters traces naturally. The retire
  // hook closure itself is not serialized — restore into a machine whose
  // runtime has already re-attached (AttachAll) and the restored
  // sample_period_/until_sample_ counters resume the saved cadence.
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

  // --- HpmSource ---------------------------------------------------------------
  std::uint64_t RawEventValue(HpmEvent event) const override;

 private:
  friend struct ExecOps;

  // Executes one instruction from its plan: routes branches and memory ops
  // on the classification bits, squashes on a false qualifying predicate,
  // and dispatches everything else through the ExecOps handler table.
  void ExecutePlan(const isa::ExecPlan& plan);
  bool PlanMemNeedsFabric(const isa::ExecPlan& plan, isa::Addr addr) const;
  // Issue cost: Itanium 2 issues `issue_width_bundles` bundles per cycle;
  // charged at slot 0 (branch targets are bundle-aligned, so every executed
  // bundle passes through slot 0).
  void ChargeIssue() { ChargeIssueFor(isa::SlotOf(pc_) == 0); }
  // Same charge with the slot-0 test precomputed (superblock steps carry
  // it; the fused memory path needs it before the pc advances).
  void ChargeIssueFor(bool slot0) {
    if (slot0) {
      if (++bundle_credit_ >= issue_width_) {
        bundle_credit_ = 0;
        ++now_;
      }
    }
  }
  void RetireTail() {
    ++retired_;
    if (sample_period_ != 0 && --until_sample_ == 0) {
      until_sample_ = sample_period_;
      sample_hook_(*this);
    }
  }
  void AdvancePc() {
    const unsigned slot = isa::SlotOf(pc_);
    pc_ = slot < 2 ? pc_ + 1 : isa::BundleAddr(pc_) + isa::kBundleBytes;
  }
  void TakeBranch(isa::Addr target, bool loop_branch);
  void DoMemoryOpPlan(const isa::ExecPlan& plan, isa::Addr addr);
  void DoBranchPlan(const isa::ExecPlan& plan);

  // Fused probe + memory access (checker off only): decides fabric need
  // exactly like PlanMemNeedsFabric and, when fabric-free, performs the
  // access exactly like ChargeIssue + DoMemoryOpPlan. Returns false with
  // no simulated side effects when the step must stop the segment; the
  // issue cycle is charged only on success (the access time is computed
  // as if it had been). Does not advance the pc.
  bool TryMemoryOpPlan(const isa::ExecPlan& plan, isa::Addr addr, bool slot0);

  // Tjit-enabled segment loop: interpreter with loop-edge harvesting, the
  // superblock executor, and exit chaining (see docs/DISPATCH.md).
  void RunSegmentTjit(Cycle q_end);
  // Runs superblocks starting at (sb, idx) until a side exit (returns
  // false; the interpreter continues at pc()) or a fabric/quantum stop
  // (returns true; the segment ends, with a resume hint saved so the next
  // segment re-enters the block mid-trace).
  bool RunSuperblocks(tjit::Superblock* sb, std::uint32_t idx, Cycle q_end);
  bool ExecSuperblockLoop(tjit::Superblock* sb, std::uint32_t idx,
                          Cycle q_end);

  CpuId id_;
  isa::BinaryImage* image_;
  mem::MainMemory* memory_;
  mem::CacheStack* stack_;
  const mem::CoherenceFabric* fabric_;
  verify::CoherenceChecker* checker_ = nullptr;  // null unless verifying
  MemObserver mem_observer_;  // empty unless a harness is watching
  BlockProfiler* bbv_ = nullptr;  // null unless phase-profiling
  bool fast_forward_ = false;
  // Immutable timing parameters hoisted out of MemConfig (const after
  // CacheStack construction) so the per-instruction path avoids the
  // pointer chase.
  int issue_width_;
  Cycle load_hide_;

  RegisterFile regs_;
  Hpm hpm_;
  Btb btb_;
  Dear dear_;

  isa::Addr pc_ = 0;
  bool halted_ = true;
  int bundle_credit_ = 0;
  Cycle now_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t lfetches_dropped_ = 0;

  std::uint64_t sample_period_ = 0;
  std::uint64_t until_sample_ = 0;
  std::function<void(Core&)> sample_hook_;

  // --- Trace JIT -------------------------------------------------------------
  tjit::TranslationCache* tjit_ = nullptr;  // null: pure interpreter
  // Resume hint: where to re-enter the last superblock after a fabric
  // commit or quantum edge split it. Consumed (and cleared) at the next
  // segment start; validated by pc match and dropped whenever the cache
  // flushes, so it can never point into a destroyed block.
  tjit::Superblock* resume_sb_ = nullptr;
  std::uint32_t resume_idx_ = 0;
  isa::Addr resume_pc_ = 0;
  std::uint64_t tjit_retired_ = 0;
};

}  // namespace cobra::cpu
