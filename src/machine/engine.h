// Execution engines: the simulator's main scheduling loop, split behind one
// interface into a serial and a host-parallel implementation.
//
// Both engines implement the *same* quantum/commit execution model, so they
// are bit-identical by construction:
//
//   * Time is divided into quanta of `EngineConfig::quantum` simulated
//     cycles, starting at the minimum core clock of the running set.
//   * Within a quantum, each core runs a *segment*: consecutive steps that
//     touch only core-private state (registers, its own cache hierarchy,
//     race-free functional memory). A core stops at a step boundary when it
//     leaves the quantum window, halts, or its next step would issue a
//     coherence-fabric transaction (`cpu::Core::NextStepNeedsFabric`, an
//     exact side-effect-free probe). Segments of different cores are
//     independent, so the parallel engine fans them out to host threads.
//   * At the barrier that ends the segment phase, the cores stopped on a
//     fabric access are committed one at a time in canonical
//     (stop-cycle, cpu-id) order: the pending step executes whole — bus or
//     directory transaction, snoops of the other (quiescent) stacks, NUMA
//     first-touch page homing, victim writebacks — exactly as it would have
//     under the original single-threaded scheduler.
//   * Deferred round tasks (sample-batch delivery to COBRA's monitoring
//     threads, which may rewrite the binary image) run after every commit
//     batch, while all cores are quiescent, in cpu-id order.
//
// The serial engine executes the segment phase as a plain loop; the
// parallel engine executes it on a persistent pool of host threads. Every
// decision that affects simulated state is a function of simulated state
// alone — never of host scheduling — which is the determinism argument
// (see DESIGN.md, "Parallel engine").
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "support/simtypes.h"

namespace cobra::machine {

class Machine;

enum class EngineKind { kSerial, kParallel };

struct EngineConfig {
  EngineKind kind = EngineKind::kSerial;

  // Quantum length in simulated cycles. This is a *semantic* parameter of
  // the execution model (it bounds how far a core may run ahead between
  // barriers), shared by both engines: serial@Q and parallel@Q are
  // bit-identical, but different Q are distinct (equally valid) timing
  // models. The default is large enough to amortize barrier costs yet small
  // enough that cores cannot starve each other of coherence responses.
  Cycle quantum = 1024;

  // Parallel engine only: number of host threads running segments
  // (including the coordinating thread). 0 = one per hardware thread.
  int host_threads = 0;
};

class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  virtual const char* name() const = 0;

  // Runs the given (already Start()ed) cores until all have halted.
  virtual void Run(Machine& machine, const std::vector<CpuId>& active) = 0;

 protected:
  ExecutionEngine() = default;
};

std::unique_ptr<ExecutionEngine> MakeEngine(const EngineConfig& config = {});

// Parses an engine spec string:
//   "serial"            the serial engine (default quantum)
//   "parallel"          the parallel engine, one thread per hardware thread
//   "parallel:N"        the parallel engine with N host threads
// Either form may carry an "@Q" suffix overriding the quantum, e.g.
// "parallel:4@2048". Aborts on a malformed spec.
EngineConfig ParseEngineSpec(std::string_view spec);

// The bench/examples knob: reads the COBRA_ENGINE environment variable
// (spec as above; unset or empty means "serial").
EngineConfig EngineConfigFromEnv();

}  // namespace cobra::machine
