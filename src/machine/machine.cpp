#include "machine/machine.h"

#include <algorithm>

#include "support/check.h"

namespace cobra::machine {

MachineConfig SmpServerConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kSnoopBus;
  cfg.mem = mem::ItaniumSmpConfig();
  return cfg;
}

MachineConfig AltixConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kDirectory;
  cfg.mem = mem::AltixNumaConfig();
  return cfg;
}

Machine::Machine(const MachineConfig& cfg, isa::BinaryImage* image)
    : cfg_(cfg), image_(image) {
  COBRA_CHECK(image != nullptr);
  COBRA_CHECK(cfg.num_cpus >= 1);

  memory_ = std::make_unique<mem::MainMemory>(cfg.mem.memory_bytes,
                                              cfg.mem.page_bytes);

  if (cfg.fabric == FabricKind::kSnoopBus) {
    fabric_ = std::make_unique<mem::SnoopBus>(cfg.mem);
  } else {
    fabric_ = std::make_unique<mem::DirectoryFabric>(cfg.mem, memory_.get(),
                                                     cfg.num_cpus);
  }

  std::vector<mem::CacheStack*> raw_stacks;
  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    stacks_.push_back(std::make_unique<mem::CacheStack>(cpu, cfg.mem));
    stacks_.back()->AttachFabric(fabric_.get());
    raw_stacks.push_back(stacks_.back().get());
  }
  fabric_->AttachStacks(raw_stacks);

  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    cores_.push_back(std::make_unique<cpu::Core>(
        cpu, image_, memory_.get(), stacks_[static_cast<std::size_t>(cpu)].get(),
        fabric_.get()));
  }
}

int Machine::NodeOf(CpuId cpu) const {
  if (cfg_.fabric == FabricKind::kSnoopBus) return 0;
  return cpu / cfg_.mem.cpus_per_node;
}

Cycle Machine::GlobalTime() const {
  Cycle t = 0;
  for (const auto& core : cores_) t = std::max(t, core->now());
  return t;
}

void Machine::SyncCores() {
  const Cycle t = GlobalTime();
  for (auto& core : cores_) core->set_now(t);
}

void Machine::RunUntilAllHalted(const std::vector<CpuId>& active) {
  // Lowest-cycle-first, CPU-id tie-break: a deterministic interleave that
  // approximates concurrent execution at instruction granularity.
  std::vector<cpu::Core*> running;
  for (CpuId cpu : active) {
    cpu::Core* core = cores_.at(static_cast<std::size_t>(cpu)).get();
    COBRA_CHECK_MSG(!core->halted(), "active core was never started");
    running.push_back(core);
  }
  while (!running.empty()) {
    cpu::Core* next = running.front();
    for (cpu::Core* core : running) {
      if (core->now() < next->now()) next = core;
    }
    next->Step();
    if (next->halted()) {
      std::erase(running, next);
    }
  }
}

void Machine::ResetTiming() {
  for (auto& stack : stacks_) stack->Reset();
  fabric_->ResetCounts();
  for (auto& core : cores_) core->set_now(0);
}

}  // namespace cobra::machine
