#include "machine/machine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "machine/engine.h"
#include "support/check.h"
#include "tjit/tcache.h"
#include "verify/coherence_checker.h"

namespace cobra::machine {

namespace {
// Process-wide HostPerf accumulators. Relaxed atomics: engines write from
// their coordinating threads, the bench driver reads between experiments;
// no ordering is needed beyond the totals being eventually consistent.
struct GlobalHostCounters {
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> sim_cycles{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> sb_retired{0};
};
GlobalHostCounters g_host_perf;
}  // namespace

HostPerf GlobalHostPerfTotals() {
  HostPerf t;
  t.wall_ns = g_host_perf.wall_ns.load(std::memory_order_relaxed);
  t.runs = g_host_perf.runs.load(std::memory_order_relaxed);
  t.sim_cycles = g_host_perf.sim_cycles.load(std::memory_order_relaxed);
  t.retired = g_host_perf.retired.load(std::memory_order_relaxed);
  t.sb_retired = g_host_perf.sb_retired.load(std::memory_order_relaxed);
  return t;
}

void Machine::AccumulateHostPerf(const HostPerf& delta) {
  host_perf_.wall_ns += delta.wall_ns;
  host_perf_.runs += delta.runs;
  host_perf_.sim_cycles += delta.sim_cycles;
  host_perf_.retired += delta.retired;
  host_perf_.sb_retired += delta.sb_retired;
  g_host_perf.wall_ns.fetch_add(delta.wall_ns, std::memory_order_relaxed);
  g_host_perf.runs.fetch_add(delta.runs, std::memory_order_relaxed);
  g_host_perf.sim_cycles.fetch_add(delta.sim_cycles,
                                   std::memory_order_relaxed);
  g_host_perf.retired.fetch_add(delta.retired, std::memory_order_relaxed);
  g_host_perf.sb_retired.fetch_add(delta.sb_retired,
                                   std::memory_order_relaxed);
}

MachineConfig SmpServerConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kSnoopBus;
  cfg.mem = mem::ItaniumSmpConfig();
  return cfg;
}

MachineConfig AltixConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kDirectory;
  cfg.mem = mem::AltixNumaConfig();
  return cfg;
}

Machine::Machine(const MachineConfig& cfg, isa::BinaryImage* image)
    : cfg_(cfg), image_(image) {
  COBRA_CHECK(image != nullptr);
  COBRA_CHECK(cfg.num_cpus >= 1);

  memory_ = std::make_unique<mem::MainMemory>(cfg.mem.memory_bytes,
                                              cfg.mem.page_bytes);

  const mem::DirectoryFabric* directory = nullptr;
  if (cfg.fabric == FabricKind::kSnoopBus) {
    fabric_ = std::make_unique<mem::SnoopBus>(cfg.mem);
  } else {
    auto dir = std::make_unique<mem::DirectoryFabric>(cfg.mem, memory_.get(),
                                                      cfg.num_cpus);
    directory = dir.get();
    fabric_ = std::move(dir);
  }

  bool verify = cfg.verify_coherence;
  if (const char* env = std::getenv("COBRA_VERIFY"); env && *env != '\0') {
    verify = *env != '0';
  }
  if (verify) {
    checker_ = std::make_unique<verify::CoherenceChecker>(
        memory_.get(), fabric_.get(), directory);
  }
  // The stacks talk to the checker (which forwards to the real fabric)
  // when verification is on; the real fabric still snoops them directly.
  mem::CoherenceFabric* front =
      checker_ ? static_cast<mem::CoherenceFabric*>(checker_.get())
               : fabric_.get();

  std::vector<mem::CacheStack*> raw_stacks;
  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    stacks_.push_back(std::make_unique<mem::CacheStack>(cpu, cfg.mem));
    stacks_.back()->AttachFabric(front);
    raw_stacks.push_back(stacks_.back().get());
  }
  front->AttachStacks(raw_stacks);

  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    cores_.push_back(std::make_unique<cpu::Core>(
        cpu, image_, memory_.get(), stacks_[static_cast<std::size_t>(cpu)].get(),
        fabric_.get()));
    if (checker_) cores_.back()->AttachChecker(checker_.get());
  }

  // Trace JIT: one translation cache per core (superblocks embed core-local
  // chain pointers, and segment phases touch the caches in parallel).
  // COBRA_TJIT=off leaves the cores on the pure PR5 interpreter path.
  if (const tjit::TjitConfig tjit_cfg = tjit::TjitConfigFromEnv();
      tjit_cfg.enabled) {
    for (auto& core : cores_) {
      tjit_caches_.push_back(
          std::make_unique<tjit::TranslationCache>(image_, tjit_cfg));
      core->AttachTjit(tjit_caches_.back().get());
    }
  }

  RegisterMetrics();
  SetTraceSink(obs::EnvTraceSink());
}

void Machine::RegisterMetrics() {
  // Probes read the owning subsystem's live counters at snapshot time; all
  // captured pointers are members of this Machine, which outlives the
  // registry's users. Fabric counters are read from the *real* fabric
  // (fabric_), never the checker front, so verification stays invisible.
  const auto add = [this](std::string name, obs::Registry::Probe probe) {
    registry_.Register(std::move(name), std::move(probe));
  };

  // Fabric traffic metrics carry the active coherence protocol in their
  // prefix (fabric.mesi.*, fabric.dragon.*, ...), so two runs under
  // different protocols can never be confused: the metric names — and with
  // them the registry fingerprint and the bench JSON schema — differ.
  const std::string fab =
      std::string("fabric.") + mem::ProtocolName(cfg_.mem.protocol);

  for (CpuId cpu = 0; cpu < cfg_.num_cpus; ++cpu) {
    const std::string n = std::to_string(cpu);
    const cpu::Core* core = cores_[static_cast<std::size_t>(cpu)].get();
    const mem::CacheStack* stack = stacks_[static_cast<std::size_t>(cpu)].get();

    add("cpu" + n + ".cycles", [core] { return core->now(); });
    add("cpu" + n + ".retired",
        [core] { return core->instructions_retired(); });
    add("cpu" + n + ".lfetches_dropped",
        [core] { return core->lfetches_dropped(); });

    add("mem.cpu" + n + ".l2.miss", [stack] { return stack->L2Misses(); });
    add("mem.cpu" + n + ".l3.miss", [stack] { return stack->L3Misses(); });
    add("mem.cpu" + n + ".loads", [stack] { return stack->stats().loads; });
    add("mem.cpu" + n + ".stores", [stack] { return stack->stats().stores; });
    add("mem.cpu" + n + ".prefetches",
        [stack] { return stack->stats().prefetches; });
    add("mem.cpu" + n + ".prefetch_bus_requests",
        [stack] { return stack->stats().prefetch_bus_requests; });
    add("mem.cpu" + n + ".prefetch_upgrades",
        [stack] { return stack->stats().prefetch_upgrades; });
    add("mem.cpu" + n + ".writebacks",
        [stack] { return stack->stats().fabric_writebacks; });
    add("mem.cpu" + n + ".store_upgrades",
        [stack] { return stack->stats().store_upgrades; });
    add("mem.cpu" + n + ".snoop_downgrades",
        [stack] { return stack->stats().snoop_downgrades; });
    add("mem.cpu" + n + ".snoop_invalidations",
        [stack] { return stack->stats().snoop_invalidations; });
    add("mem.cpu" + n + ".hitm_supplies",
        [stack] { return stack->stats().hitm_supplies; });
    add("mem.cpu" + n + ".store_updates",
        [stack] { return stack->stats().store_updates; });
    add("mem.cpu" + n + ".snoop_updates",
        [stack] { return stack->stats().snoop_updates; });
    add("mem.cpu" + n + ".buffered_stores",
        [stack] { return stack->stats().buffered_stores; });

    const mem::CoherenceFabric* fabric = fabric_.get();
    add(fab + ".cpu" + n + ".memory",
        [fabric, cpu] { return fabric->CpuCounts(cpu).bus_memory; });
    add(fab + ".cpu" + n + ".coherent",
        [fabric, cpu] { return fabric->CpuCounts(cpu).CoherentEvents(); });
  }

  const auto agg = [this](auto get) {
    std::uint64_t total = 0;
    for (const auto& stack : stacks_) total += get(*stack);
    return total;
  };
  add("mem.l2.miss", [this, agg] {
    return agg([](const mem::CacheStack& s) { return s.L2Misses(); });
  });
  add("mem.l3.miss", [this, agg] {
    return agg([](const mem::CacheStack& s) { return s.L3Misses(); });
  });
  add("mem.prefetches", [this, agg] {
    return agg([](const mem::CacheStack& s) { return s.stats().prefetches; });
  });

  const mem::CoherenceFabric* fabric = fabric_.get();
  add(fab + ".memory", [fabric] { return fabric->TotalCounts().bus_memory; });
  add(fab + ".rd_hit", [fabric] { return fabric->TotalCounts().bus_rd_hit; });
  add(fab + ".rd_hitm",
      [fabric] { return fabric->TotalCounts().bus_rd_hitm; });
  add(fab + ".rd_inval_all_hitm",
      [fabric] { return fabric->TotalCounts().bus_rd_inval_all_hitm; });
  add(fab + ".upgrades",
      [fabric] { return fabric->TotalCounts().bus_upgrades; });
  add(fab + ".updates",
      [fabric] { return fabric->TotalCounts().bus_updates; });
  add(fab + ".c2c", [fabric] {
    return fabric->TotalCounts().c2c_transfers;
  });
  add(fab + ".writebacks",
      [fabric] { return fabric->TotalCounts().bus_writebacks; });
  add(fab + ".remote",
      [fabric] { return fabric->TotalCounts().remote_transactions; });
  add(fab + ".coherent",
      [fabric] { return fabric->TotalCounts().CoherentEvents(); });
  add(fab + ".occupancy", [fabric] { return fabric->queue_cycles(); });

  add("engine.quanta", [this] { return engine_counters_.quanta; });
  add("engine.segment_phases",
      [this] { return engine_counters_.segment_phases; });
  add("engine.segments", [this] { return engine_counters_.segments; });
  add("engine.commits", [this] { return engine_counters_.commits; });
  add("engine.rounds", [this] { return engine_counters_.rounds; });

  add("machine.global_time", [this] { return GlobalTime(); });

  // Host-side performance readings: sampled into snapshots like any metric
  // but flagged host-class, so fingerprints and ToString dumps skip them
  // (they vary run to run by construction).
  registry_.RegisterHost("host.wall_ns",
                         [this] { return host_perf_.wall_ns; });
  registry_.RegisterHost("host.runs", [this] { return host_perf_.runs; });
  registry_.RegisterHost("host.sim_cycles",
                         [this] { return host_perf_.sim_cycles; });
  registry_.RegisterHost("host.retired",
                         [this] { return host_perf_.retired; });
  registry_.RegisterHost("host.sb_retired",
                         [this] { return host_perf_.sb_retired; });

  // Translation-cache counters are host-class by design: whether a step ran
  // through a superblock or the interpreter is a host implementation detail
  // with zero simulated effect, so COBRA_TJIT=on/off must (and does) leave
  // every fingerprinted metric bit-identical. Registered even when the JIT
  // is disabled so snapshot shape is mode-independent.
  const auto tjit_sum = [this](auto get) {
    return [this, get] {
      std::uint64_t total = 0;
      for (const auto& tc : tjit_caches_) total += get(tc->stats());
      return total;
    };
  };
  registry_.RegisterHost("tjit.hits", tjit_sum([](const tjit::TjitStats& s) {
                           return s.hits;
                         }));
  registry_.RegisterHost("tjit.misses",
                         tjit_sum([](const tjit::TjitStats& s) {
                           return s.misses;
                         }));
  registry_.RegisterHost("tjit.compiles",
                         tjit_sum([](const tjit::TjitStats& s) {
                           return s.compiles;
                         }));
  registry_.RegisterHost("tjit.compiled_steps",
                         tjit_sum([](const tjit::TjitStats& s) {
                           return s.compiled_steps;
                         }));
  registry_.RegisterHost("tjit.flushes",
                         tjit_sum([](const tjit::TjitStats& s) {
                           return s.flushes;
                         }));
  registry_.RegisterHost("tjit.chains", tjit_sum([](const tjit::TjitStats& s) {
                           return s.chains;
                         }));
  registry_.RegisterHost("tjit.side_exits",
                         tjit_sum([](const tjit::TjitStats& s) {
                           return s.side_exits;
                         }));
  registry_.RegisterHost("tjit.sb_retired", [this] {
    std::uint64_t total = 0;
    for (const auto& core : cores_) total += core->superblock_retired();
    return total;
  });
}

void Machine::SetTraceSink(obs::TraceSink* trace) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  const char* fabric_name =
      cfg_.fabric == FabricKind::kSnoopBus ? "smp" : "numa";
  trace_pid_ = trace_->BeginProcess(std::string(fabric_name) + "x" +
                                    std::to_string(num_cpus()));
  for (CpuId cpu = 0; cpu < cfg_.num_cpus; ++cpu) {
    trace_->NameThread(trace_pid_, cpu, "cpu" + std::to_string(cpu));
  }
  trace_->NameThread(trace_pid_, trace_engine_tid(), "engine");
  trace_->NameThread(trace_pid_, trace_cobra_tid(), "cobra");
  for (auto& stack : stacks_) stack->AttachTrace(trace_, trace_pid_);
}

int Machine::NodeOf(CpuId cpu) const {
  if (cfg_.fabric == FabricKind::kSnoopBus) return 0;
  return cpu / cfg_.mem.cpus_per_node;
}

Cycle Machine::GlobalTime() const {
  Cycle t = 0;
  for (const auto& core : cores_) t = std::max(t, core->now());
  return t;
}

void Machine::SyncCores() {
  const Cycle t = GlobalTime();
  for (auto& core : cores_) core->set_now(t);
}

Machine::~Machine() = default;

void Machine::RunUntilAllHalted(const std::vector<CpuId>& active) {
  if (!default_engine_) default_engine_ = MakeEngine(EngineConfig{});
  default_engine_->Run(*this, active);
}

int Machine::AddRoundTask(std::function<void()> task) {
  const int id = next_round_task_id_++;
  round_tasks_.emplace_back(id, std::move(task));
  return id;
}

void Machine::RemoveRoundTask(int id) {
  std::erase_if(round_tasks_,
                [id](const auto& entry) { return entry.first == id; });
}

void Machine::RunRoundTasks() {
  ++engine_counters_.rounds;
  for (const auto& [id, task] : round_tasks_) task();
  if (checker_) checker_->OnRoundTasks();
}

void Machine::EngineEnter() {
  if (engine_depth_++ == 0 && checker_) checker_->OnRunBegin();
}

void Machine::EngineExit() {
  if (--engine_depth_ == 0 && checker_) checker_->OnRunEnd();
}

void Machine::SaveCheckpoint(support::StateWriter& w) const {
  w.BeginSection("machine");
  w.U32(static_cast<std::uint32_t>(cores_.size()));
  w.U8(static_cast<std::uint8_t>(cfg_.fabric));
  w.U8(static_cast<std::uint8_t>(cfg_.mem.protocol));
  w.EndSection();

  w.BeginSection("image");
  image_->SaveState(w);
  w.EndSection();

  w.BeginSection("memory");
  memory_->SaveState(w);
  w.EndSection();

  // The checker front delegates to the real fabric, so the bytes are the
  // same either way; going through it lets restore re-sync the oracle.
  const mem::CoherenceFabric* front =
      checker_ ? static_cast<const mem::CoherenceFabric*>(checker_.get())
               : fabric_.get();
  w.BeginSection("fabric");
  front->SaveState(w);
  w.EndSection();

  for (std::size_t cpu = 0; cpu < stacks_.size(); ++cpu) {
    w.BeginSection("stack" + std::to_string(cpu));
    stacks_[cpu]->SaveState(w);
    w.EndSection();
  }
  for (std::size_t cpu = 0; cpu < cores_.size(); ++cpu) {
    w.BeginSection("cpu" + std::to_string(cpu));
    cores_[cpu]->SaveState(w);
    w.EndSection();
  }

  w.BeginSection("engine");
  w.U64(engine_counters_.quanta);
  w.U64(engine_counters_.segment_phases);
  w.U64(engine_counters_.segments);
  w.U64(engine_counters_.commits);
  w.U64(engine_counters_.rounds);
  w.EndSection();
}

bool Machine::RestoreCheckpoint(support::StateReader& r) {
  // Shape gate first: nothing is mutated until the blob is known to match
  // this machine's geometry and protocol.
  if (!r.EnterSection("machine")) return false;
  std::uint32_t cpus = 0;
  std::uint8_t fabric_kind = 0;
  std::uint8_t protocol = 0;
  r.U32(&cpus);
  r.U8(&fabric_kind);
  r.U8(&protocol);
  if (!r.ExitSection() || !r.Ok()) return false;
  if (cpus != static_cast<std::uint32_t>(cores_.size()) ||
      fabric_kind != static_cast<std::uint8_t>(cfg_.fabric) ||
      protocol != static_cast<std::uint8_t>(cfg_.mem.protocol)) {
    return false;
  }

  if (!r.EnterSection("image") || !image_->RestoreState(r) ||
      !r.ExitSection()) {
    return false;
  }
  // Memory before fabric: the checker front re-snapshots its golden oracle
  // from functional memory when its fabric section restores.
  if (!r.EnterSection("memory") || !memory_->RestoreState(r) ||
      !r.ExitSection()) {
    return false;
  }
  mem::CoherenceFabric* front =
      checker_ ? static_cast<mem::CoherenceFabric*>(checker_.get())
               : fabric_.get();
  if (!r.EnterSection("fabric") || !front->RestoreState(r) ||
      !r.ExitSection()) {
    return false;
  }
  for (std::size_t cpu = 0; cpu < stacks_.size(); ++cpu) {
    if (!r.EnterSection("stack" + std::to_string(cpu)) ||
        !stacks_[cpu]->RestoreState(r) || !r.ExitSection()) {
      return false;
    }
  }
  for (std::size_t cpu = 0; cpu < cores_.size(); ++cpu) {
    if (!r.EnterSection("cpu" + std::to_string(cpu)) ||
        !cores_[cpu]->RestoreState(r) || !r.ExitSection()) {
      return false;
    }
  }
  if (!r.EnterSection("engine")) return false;
  r.U64(&engine_counters_.quanta);
  r.U64(&engine_counters_.segment_phases);
  r.U64(&engine_counters_.segments);
  r.U64(&engine_counters_.commits);
  r.U64(&engine_counters_.rounds);
  if (!r.ExitSection() || !r.Ok()) return false;

  // Host-side acceleration state is dropped, not restored: superblocks may
  // bake in plans from before the image restore. BeginSegment would catch a
  // generation change, but a restore can land on the *same* generation with
  // different bits, so flush unconditionally.
  for (auto& tc : tjit_caches_) tc->Flush();
  return true;
}

std::vector<std::uint8_t> Machine::SaveCheckpoint() const {
  support::StateWriter w;
  SaveCheckpoint(w);
  return w.Finish();
}

bool Machine::RestoreCheckpoint(const std::vector<std::uint8_t>& blob,
                                std::string* error) {
  support::StateReader r;
  if (!r.Open(blob) || !RestoreCheckpoint(r) || !r.AtEnd()) {
    if (error != nullptr) {
      *error = r.Ok() ? (r.AtEnd() ? "machine shape mismatch"
                                   : "trailing bytes after machine sections")
                      : r.error();
    }
    return false;
  }
  return true;
}

void Machine::SetFastForward(bool on) {
  if (fast_forward_ != on) ++fast_forward_generation_;
  fast_forward_ = on;
  for (auto& core : cores_) core->SetFastForward(on);
}

void Machine::ResetTiming() {
  for (auto& stack : stacks_) stack->Reset();
  fabric_->ResetCounts();
  for (auto& core : cores_) core->set_now(0);
  engine_counters_ = EngineCounters{};
  if (checker_) checker_->OnResetTiming();
}

}  // namespace cobra::machine
