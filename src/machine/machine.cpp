#include "machine/machine.h"

#include <algorithm>
#include <cstdlib>

#include "machine/engine.h"
#include "support/check.h"
#include "verify/coherence_checker.h"

namespace cobra::machine {

MachineConfig SmpServerConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kSnoopBus;
  cfg.mem = mem::ItaniumSmpConfig();
  return cfg;
}

MachineConfig AltixConfig(int num_cpus) {
  MachineConfig cfg;
  cfg.num_cpus = num_cpus;
  cfg.fabric = FabricKind::kDirectory;
  cfg.mem = mem::AltixNumaConfig();
  return cfg;
}

Machine::Machine(const MachineConfig& cfg, isa::BinaryImage* image)
    : cfg_(cfg), image_(image) {
  COBRA_CHECK(image != nullptr);
  COBRA_CHECK(cfg.num_cpus >= 1);

  memory_ = std::make_unique<mem::MainMemory>(cfg.mem.memory_bytes,
                                              cfg.mem.page_bytes);

  const mem::DirectoryFabric* directory = nullptr;
  if (cfg.fabric == FabricKind::kSnoopBus) {
    fabric_ = std::make_unique<mem::SnoopBus>(cfg.mem);
  } else {
    auto dir = std::make_unique<mem::DirectoryFabric>(cfg.mem, memory_.get(),
                                                      cfg.num_cpus);
    directory = dir.get();
    fabric_ = std::move(dir);
  }

  bool verify = cfg.verify_coherence;
  if (const char* env = std::getenv("COBRA_VERIFY"); env && *env != '\0') {
    verify = *env != '0';
  }
  if (verify) {
    checker_ = std::make_unique<verify::CoherenceChecker>(
        memory_.get(), fabric_.get(), directory);
  }
  // The stacks talk to the checker (which forwards to the real fabric)
  // when verification is on; the real fabric still snoops them directly.
  mem::CoherenceFabric* front =
      checker_ ? static_cast<mem::CoherenceFabric*>(checker_.get())
               : fabric_.get();

  std::vector<mem::CacheStack*> raw_stacks;
  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    stacks_.push_back(std::make_unique<mem::CacheStack>(cpu, cfg.mem));
    stacks_.back()->AttachFabric(front);
    raw_stacks.push_back(stacks_.back().get());
  }
  front->AttachStacks(raw_stacks);

  for (CpuId cpu = 0; cpu < cfg.num_cpus; ++cpu) {
    cores_.push_back(std::make_unique<cpu::Core>(
        cpu, image_, memory_.get(), stacks_[static_cast<std::size_t>(cpu)].get(),
        fabric_.get()));
    if (checker_) cores_.back()->AttachChecker(checker_.get());
  }
}

int Machine::NodeOf(CpuId cpu) const {
  if (cfg_.fabric == FabricKind::kSnoopBus) return 0;
  return cpu / cfg_.mem.cpus_per_node;
}

Cycle Machine::GlobalTime() const {
  Cycle t = 0;
  for (const auto& core : cores_) t = std::max(t, core->now());
  return t;
}

void Machine::SyncCores() {
  const Cycle t = GlobalTime();
  for (auto& core : cores_) core->set_now(t);
}

Machine::~Machine() = default;

void Machine::RunUntilAllHalted(const std::vector<CpuId>& active) {
  if (!default_engine_) default_engine_ = MakeEngine(EngineConfig{});
  default_engine_->Run(*this, active);
}

int Machine::AddRoundTask(std::function<void()> task) {
  const int id = next_round_task_id_++;
  round_tasks_.emplace_back(id, std::move(task));
  return id;
}

void Machine::RemoveRoundTask(int id) {
  std::erase_if(round_tasks_,
                [id](const auto& entry) { return entry.first == id; });
}

void Machine::RunRoundTasks() {
  for (const auto& [id, task] : round_tasks_) task();
  if (checker_) checker_->OnRoundTasks();
}

void Machine::EngineEnter() {
  if (engine_depth_++ == 0 && checker_) checker_->OnRunBegin();
}

void Machine::EngineExit() {
  if (--engine_depth_ == 0 && checker_) checker_->OnRunEnd();
}

void Machine::ResetTiming() {
  for (auto& stack : stacks_) stack->Reset();
  fabric_->ResetCounts();
  for (auto& core : cores_) core->set_now(0);
  if (checker_) checker_->OnResetTiming();
}

}  // namespace cobra::machine
