// Machine: a complete simulated multiprocessor.
//
// Owns the main memory, one cache stack + core per CPU, and the coherence
// fabric (snooping bus for the 4-way Itanium 2 SMP server, directory over a
// fat-tree for the SGI Altix cc-NUMA system).  Executes cores with a
// deterministic lowest-cycle-first interleave (ties broken by CPU id), so
// every experiment is bit-reproducible.
#pragma once

#include <memory>
#include <vector>

#include "cpu/core.h"
#include "isa/image.h"
#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"
#include "mem/directory.h"
#include "mem/main_memory.h"
#include "mem/snoop_bus.h"
#include "support/simtypes.h"

namespace cobra::machine {

enum class FabricKind { kSnoopBus, kDirectory };

struct MachineConfig {
  int num_cpus = 4;
  FabricKind fabric = FabricKind::kSnoopBus;
  mem::MemConfig mem = mem::ItaniumSmpConfig();
};

// The 4-way Itanium 2 SMP server of Section 5.1.
MachineConfig SmpServerConfig(int num_cpus = 4);

// The SGI Altix cc-NUMA system of Section 5.1 (2-CPU nodes).
MachineConfig AltixConfig(int num_cpus = 8);

class Machine {
 public:
  // The image is owned by the caller (it is the program, not the machine).
  Machine(const MachineConfig& cfg, isa::BinaryImage* image);

  int num_cpus() const { return static_cast<int>(cores_.size()); }
  const MachineConfig& config() const { return cfg_; }

  cpu::Core& core(CpuId cpu) { return *cores_.at(static_cast<std::size_t>(cpu)); }
  mem::CacheStack& stack(CpuId cpu) {
    return *stacks_.at(static_cast<std::size_t>(cpu));
  }
  const mem::CacheStack& stack(CpuId cpu) const {
    return *stacks_.at(static_cast<std::size_t>(cpu));
  }
  mem::MainMemory& memory() { return *memory_; }
  mem::CoherenceFabric& fabric() { return *fabric_; }
  const mem::CoherenceFabric& fabric() const { return *fabric_; }
  isa::BinaryImage& image() { return *image_; }

  // NUMA node of a CPU (0 for all CPUs on the snooping bus).
  int NodeOf(CpuId cpu) const;

  // Simulated wall-clock: the maximum core time.
  Cycle GlobalTime() const;

  // Barrier: advances every core to GlobalTime().
  void SyncCores();

  // Steps the given cores lowest-cycle-first until all have halted.
  void RunUntilAllHalted(const std::vector<CpuId>& active);

  // Drops all cached lines and statistics; clears fabric counters and each
  // core's clock. Memory *contents* and page placement are preserved.
  void ResetTiming();

 private:
  MachineConfig cfg_;
  isa::BinaryImage* image_;
  std::unique_ptr<mem::MainMemory> memory_;
  std::unique_ptr<mem::CoherenceFabric> fabric_;
  std::vector<std::unique_ptr<mem::CacheStack>> stacks_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
};

}  // namespace cobra::machine
