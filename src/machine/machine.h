// Machine: a complete simulated multiprocessor (the paper's two evaluation
// hosts from Section 5.1).
//
// Owns the main memory, one cache stack + core per CPU, and the coherence
// fabric (snooping bus for the 4-way Itanium 2 SMP server, directory over a
// fat-tree for the SGI Altix cc-NUMA system).  Cores execute under a
// pluggable ExecutionEngine (machine/engine.h): simulated time advances in
// fixed cycle quanta, cores run core-private segments between barriers, and
// every coherence transaction commits in canonical (cycle, cpu-id) order —
// so every experiment is bit-reproducible whether the engine runs segments
// on one host thread or many.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/core.h"
#include "isa/image.h"
#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/config.h"
#include "mem/directory.h"
#include "mem/main_memory.h"
#include "mem/snoop_bus.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::verify {
class CoherenceChecker;
}

namespace cobra::tjit {
class TranslationCache;
}

namespace cobra::machine {

class ExecutionEngine;

enum class FabricKind { kSnoopBus, kDirectory };

// Scheduling-loop counters, maintained by the execution engines on the
// coordinating thread only. Every field is a function of simulated state
// alone, so serial and parallel engines (at equal quantum) agree exactly —
// the registry-fingerprint determinism test relies on this.
struct EngineCounters {
  std::uint64_t quanta = 0;          // quantum windows executed
  std::uint64_t segment_phases = 0;  // segment fan-outs (barriers)
  std::uint64_t segments = 0;        // core-private segments run
  std::uint64_t commits = 0;         // fabric steps committed canonically
  std::uint64_t rounds = 0;          // round-task batches run
};

// Host-side performance accounting: how much simulated work the engines did
// and how long it took in host wall-clock. Written by the execution engines
// on the coordinating thread around each Run(); purely observational (never
// read by simulation) and exposed through host-class registry probes that
// are excluded from determinism fingerprints (see obs::Metric::host).
struct HostPerf {
  std::uint64_t wall_ns = 0;     // host wall-clock inside engine runs
  std::uint64_t runs = 0;        // engine Run() invocations
  std::uint64_t sim_cycles = 0;  // simulated cycles advanced, summed over cores
  std::uint64_t retired = 0;     // instructions retired, summed over cores
  std::uint64_t sb_retired = 0;  // subset retired in the superblock executor
};

// Process-wide HostPerf totals across every Machine ever constructed. The
// bench driver samples these around each experiment (experiments build and
// discard machines freely, so per-machine counters alone would be lost).
HostPerf GlobalHostPerfTotals();

struct MachineConfig {
  int num_cpus = 4;
  FabricKind fabric = FabricKind::kSnoopBus;
  mem::MemConfig mem = mem::ItaniumSmpConfig();
  // Wraps the fabric in a verify::CoherenceChecker that validates every
  // transaction against the MESI/directory invariants and diffs every load
  // against a sequentially-consistent golden memory. Off by default so
  // benchmark timings are unaffected; tests that stress the fabric turn it
  // on. The COBRA_VERIFY environment variable (0/1) overrides this.
  bool verify_coherence = false;
};

// The 4-way Itanium 2 SMP server of Section 5.1.
MachineConfig SmpServerConfig(int num_cpus = 4);

// The SGI Altix cc-NUMA system of Section 5.1 (2-CPU nodes).
MachineConfig AltixConfig(int num_cpus = 8);

class Machine {
 public:
  // The image is owned by the caller (it is the program, not the machine).
  Machine(const MachineConfig& cfg, isa::BinaryImage* image);
  ~Machine();

  int num_cpus() const { return static_cast<int>(cores_.size()); }
  const MachineConfig& config() const { return cfg_; }

  cpu::Core& core(CpuId cpu) { return *cores_.at(static_cast<std::size_t>(cpu)); }
  mem::CacheStack& stack(CpuId cpu) {
    return *stacks_.at(static_cast<std::size_t>(cpu));
  }
  const mem::CacheStack& stack(CpuId cpu) const {
    return *stacks_.at(static_cast<std::size_t>(cpu));
  }
  mem::MainMemory& memory() { return *memory_; }
  mem::CoherenceFabric& fabric() { return *fabric_; }
  const mem::CoherenceFabric& fabric() const { return *fabric_; }
  isa::BinaryImage& image() { return *image_; }

  // The coherence checker, or nullptr when verification is off. fabric()
  // keeps returning the real fabric either way (counters, queue cycles and
  // introspection are unaffected by verification).
  verify::CoherenceChecker* checker() { return checker_.get(); }

  // NUMA node of a CPU (0 for all CPUs on the snooping bus).
  int NodeOf(CpuId cpu) const;

  // --- Observability --------------------------------------------------------
  // Central metric registry. The machine registers its own hierarchical
  // counters (cpuN.*, mem.*, fabric.<protocol>.*, engine.*) at
  // construction; subsystems
  // with a shorter lifetime (CobraRuntime, SamplingDriver) add theirs via
  // obs::Registry::Registration. registry().Take() is the one queryable
  // snapshot of everything.
  obs::Registry& registry() { return registry_; }

  EngineCounters& engine_counters() { return engine_counters_; }
  const EngineCounters& engine_counters() const { return engine_counters_; }

  // Adds one engine run's host-side measurements to this machine's totals
  // and to the process-wide totals (GlobalHostPerfTotals).
  void AccumulateHostPerf(const HostPerf& delta);
  const HostPerf& host_perf() const { return host_perf_; }

  // Chrome trace-event timeline (nullptr = disabled). The constructor wires
  // obs::EnvTraceSink(), so setting COBRA_TRACE=<file> traces every machine
  // in the process; tests may override with their own sink. Threads: one
  // lane per CPU (tid = CpuId), plus an `engine` lane for quantum windows
  // and a `cobra` lane for deploy/revert instants.
  void SetTraceSink(obs::TraceSink* trace);
  obs::TraceSink* trace() { return trace_; }
  int trace_pid() const { return trace_pid_; }
  int trace_engine_tid() const { return num_cpus(); }
  int trace_cobra_tid() const { return num_cpus() + 1; }

  // Simulated wall-clock: the maximum core time.
  Cycle GlobalTime() const;

  // Barrier: advances every core to GlobalTime().
  void SyncCores();

  // Runs the given cores until all have halted, under a default serial
  // ExecutionEngine (rt::Team accepts an EngineConfig for the others).
  void RunUntilAllHalted(const std::vector<CpuId>& active);

  // Drops all cached lines and statistics; clears fabric counters and each
  // core's clock. Memory *contents* and page placement are preserved.
  void ResetTiming();

  // --- Checkpointing ---------------------------------------------------------
  // Serializes every component that carries simulated state (image, memory,
  // fabric, per-CPU cache stacks and cores, engine counters) as named
  // sections. Restoring into a freshly built machine of the same
  // configuration is fingerprint-identical to never having paused: the
  // restore happens in place (no reallocation), so pointers the engine and
  // runtime hold into cores/stacks stay valid. Attach subsystems (COBRA
  // runtime, perfmon) BEFORE restoring — restore only rewrites state, it
  // does not recreate hooks. Host-side acceleration state (translation
  // caches, probe memos, way hints) is simply dropped.
  //
  // The StateWriter/StateReader forms compose: external subsystems append
  // their own sections after the machine's (CobraRuntime::SaveState does).
  // The blob forms seal/validate a complete snapshot (magic, version,
  // checksum) and are what cobra_bench and the tests use. RestoreCheckpoint
  // validates the machine-shape section before mutating anything; a blob
  // for a different geometry/protocol is rejected with the machine
  // untouched. (Mid-stream failures after that can leave a partial restore,
  // but the up-front whole-blob checksum in StateReader::Open makes them
  // unreachable for blobs produced by SaveCheckpoint on this build.)
  void SaveCheckpoint(support::StateWriter& w) const;
  bool RestoreCheckpoint(support::StateReader& r);
  std::vector<std::uint8_t> SaveCheckpoint() const;
  bool RestoreCheckpoint(const std::vector<std::uint8_t>& blob,
                         std::string* error = nullptr);

  // --- Fast-forward (sampled simulation) -------------------------------------
  // Switches every core between detailed timing simulation and
  // functional-only fast-forward (see cpu::Core::SetFastForward). Only legal
  // while cores are quiescent — engines call it from round tasks at quantum
  // boundaries, or callers flip it between runs.
  void SetFastForward(bool on);
  bool fast_forward() const { return fast_forward_; }
  // Bumped on every effective mode flip. Observers whose measurements span
  // simulated time (e.g. COBRA's CPI windows) compare generations to detect
  // that a window crossed a fast-forwarded gap and must be discarded.
  std::uint64_t fast_forward_generation() const {
    return fast_forward_generation_;
  }

  // --- Engine integration ----------------------------------------------------
  // True while an ExecutionEngine is driving the cores. Subsystems that
  // deliver callbacks into shared state (e.g. perfmon sample batches, which
  // reach COBRA's optimizer and may rewrite the binary image) must defer
  // delivery to a round task while an engine is active.
  bool engine_active() const { return engine_depth_ > 0; }

  // Round tasks run at every engine commit barrier, while all cores are
  // quiescent, in registration order. Returns an id for RemoveRoundTask.
  int AddRoundTask(std::function<void()> task);
  void RemoveRoundTask(int id);
  void RunRoundTasks();

  // Engine entry/exit bookkeeping. On the outermost entry the coherence
  // checker (if enabled) re-snapshots functional memory into its golden
  // oracle (host-side setup writes between runs are not simulated stores);
  // on the outermost exit it runs a final full sweep and memory diff.
  void EngineEnter();
  void EngineExit();

  // RAII marker used by engines around a run (see engine_active()).
  class EngineScope {
   public:
    explicit EngineScope(Machine& m) : m_(m) { m_.EngineEnter(); }
    ~EngineScope() { m_.EngineExit(); }
    EngineScope(const EngineScope&) = delete;
    EngineScope& operator=(const EngineScope&) = delete;

   private:
    Machine& m_;
  };

 private:
  void RegisterMetrics();

  MachineConfig cfg_;
  isa::BinaryImage* image_;
  std::unique_ptr<mem::MainMemory> memory_;
  std::unique_ptr<mem::CoherenceFabric> fabric_;
  std::unique_ptr<verify::CoherenceChecker> checker_;  // null unless enabled
  std::vector<std::unique_ptr<mem::CacheStack>> stacks_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
  // Per-core trace-JIT translation caches (empty when COBRA_TJIT=off).
  // Per-core because superblocks embed core-local chain pointers and the
  // caches are touched inside parallel segment phases.
  std::vector<std::unique_ptr<tjit::TranslationCache>> tjit_caches_;

  obs::Registry registry_;
  EngineCounters engine_counters_;
  HostPerf host_perf_;
  obs::TraceSink* trace_ = nullptr;
  int trace_pid_ = 0;

  std::unique_ptr<ExecutionEngine> default_engine_;  // lazily created
  bool fast_forward_ = false;
  std::uint64_t fast_forward_generation_ = 0;
  int engine_depth_ = 0;
  std::vector<std::pair<int, std::function<void()>>> round_tasks_;
  int next_round_task_id_ = 0;
};

}  // namespace cobra::machine
