#include "machine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "cpu/core.h"
#include "machine/machine.h"
#include "mem/cache_stack.h"
#include "support/check.h"

namespace cobra::machine {
namespace {

// Advances one core to the end of its current segment: consecutive steps
// that stay inside the quantum window and touch only core-private state.
// The fabric guard turns any probe/execution mismatch into a hard error
// instead of a silent determinism bug.
void RunSegment(cpu::Core& core, mem::CacheStack& stack, Cycle q_end) {
  stack.set_fabric_guard(true);
  core.RunSegment(q_end);
  stack.set_fabric_guard(false);
}

struct PendingCommit {
  cpu::Core* core;
  Cycle stop_now;
};

// One quantum window of the segment/commit machinery: alternate segment
// phases with canonical commits until every core has halted or reached the
// quantum edge.
template <typename SegmentPhase>
void RunCommitRounds(const std::vector<cpu::Core*>& running, Cycle q_end,
                     SegmentPhase& segments, EngineCounters& counters) {
  std::vector<PendingCommit> pending;
  for (;;) {
    segments(running, q_end);
    ++counters.segment_phases;
    counters.segments += running.size();

    // A core still inside the window is stopped on a fabric access (the
    // probe is exact); everyone else halted or reached the quantum edge.
    pending.clear();
    for (cpu::Core* core : running) {
      if (!core->halted() && core->now() < q_end) {
        pending.push_back({core, core->now()});
      }
    }
    if (pending.empty()) return;
    counters.commits += pending.size();

    // Canonical commit order: (stop cycle, cpu id). Each pending step
    // executes whole — fabric transaction, snoops, victim writebacks —
    // while every other core is quiescent.
    std::sort(pending.begin(), pending.end(),
              [](const PendingCommit& a, const PendingCommit& b) {
                if (a.stop_now != b.stop_now) return a.stop_now < b.stop_now;
                return a.core->id() < b.core->id();
              });
    for (const PendingCommit& p : pending) p.core->Step();
  }
}

// The round/commit skeleton shared by both engines. `segments` runs the
// segment phase over `running` (serial: an in-place loop; parallel: fanned
// out to the worker pool) and must not return until every core has reached
// a segment boundary.
template <typename SegmentPhase>
void RunRounds(Machine& m, const std::vector<CpuId>& active, Cycle quantum,
               SegmentPhase&& segments) {
  COBRA_CHECK_MSG(quantum > 0, "engine quantum must be positive");
  std::vector<cpu::Core*> running;
  running.reserve(active.size());
  for (CpuId cpu : active) {
    cpu::Core* core = &m.core(cpu);
    COBRA_CHECK_MSG(!core->halted(), "active core was never started");
    running.push_back(core);
  }
  Machine::EngineScope scope(m);
  EngineCounters& counters = m.engine_counters();

  // Host-perf accounting: wall-clock around the whole run, simulated-work
  // deltas from the cores themselves. Purely observational (host-class
  // metrics, excluded from fingerprints); nothing here feeds simulation.
  const auto host_start = std::chrono::steady_clock::now();
  HostPerf delta;
  delta.runs = 1;
  std::uint64_t cycles_before = 0;
  std::uint64_t retired_before = 0;
  std::uint64_t sb_retired_before = 0;
  for (const cpu::Core* core : running) {
    cycles_before += core->now();
    retired_before += core->instructions_retired();
    sb_retired_before += core->superblock_retired();
  }

  while (!running.empty()) {
    Cycle window = running.front()->now();
    for (cpu::Core* core : running) window = std::min(window, core->now());
    const Cycle q_end = window + quantum;

    if (running.size() == 1) {
      // One runnable core: program order *is* canonical commit order, so
      // the probe/commit machinery adds nothing — run straight to the
      // quantum edge. The step stream is identical to the segmented path
      // (probes never change state), so both engines share this exactly.
      // RunQuantum routes through the superblock executor when a
      // translation cache is attached (fabric-bound steps commit inline).
      running.front()->RunQuantum(q_end);
    } else {
      RunCommitRounds(running, q_end, segments, counters);
    }
    ++counters.quanta;
    if (obs::TraceSink* trace = m.trace()) {
      trace->Complete(m.trace_pid(), m.trace_engine_tid(), "engine",
                      "quantum", window, quantum);
    }

    // Round tasks (deferred sample delivery into COBRA, whose optimizer
    // may patch the binary) run at quantum boundaries, not at commit
    // barriers: a core pending on a fabric access is parked at a
    // phase-locked mid-bundle pc (always the same spot in a one-bundle
    // loop), which would permanently fail the optimizer's patch-quiesce
    // check. At a quantum edge the stop position varies with the window
    // phase, as it did under instruction-interleaved delivery.
    m.RunRoundTasks();

    std::erase_if(running, [](cpu::Core* core) { return core->halted(); });
  }

  for (CpuId cpu : active) {
    const cpu::Core& core = m.core(cpu);
    delta.sim_cycles += core.now();
    delta.retired += core.instructions_retired();
    delta.sb_retired += core.superblock_retired();
  }
  delta.sim_cycles -= cycles_before;
  delta.retired -= retired_before;
  delta.sb_retired -= sb_retired_before;
  delta.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());
  m.AccumulateHostPerf(delta);
}

class SerialEngine final : public ExecutionEngine {
 public:
  explicit SerialEngine(const EngineConfig& config) : config_(config) {}

  const char* name() const override { return "serial"; }

  void Run(Machine& m, const std::vector<CpuId>& active) override {
    RunRounds(m, active, config_.quantum,
              [&m](const std::vector<cpu::Core*>& running, Cycle q_end) {
                for (cpu::Core* core : running) {
                  RunSegment(*core, m.stack(core->id()), q_end);
                }
              });
  }

 private:
  EngineConfig config_;
};

// Persistent host thread pool. Segment jobs are claimed from a shared
// atomic index; the coordinating thread participates, so `host_threads`
// includes it. Coordination is condition-variable based (no spinning), so
// the engine degrades gracefully when the host is oversubscribed.
class ParallelEngine final : public ExecutionEngine {
 public:
  explicit ParallelEngine(const EngineConfig& config) : config_(config) {
    int n = config.host_threads;
    if (n <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      n = hw == 0 ? 1 : static_cast<int>(hw);
    }
    host_threads_ = n;
    const int workers = n - 1;  // the coordinator is thread 0
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ParallelEngine() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  const char* name() const override { return "parallel"; }

  void Run(Machine& m, const std::vector<CpuId>& active) override {
    RunRounds(m, active, config_.quantum,
              [this, &m](const std::vector<cpu::Core*>& running, Cycle q_end) {
                RunSegmentPhase(m, running, q_end);
              });
  }

 private:
  void RunSegmentPhase(Machine& m, const std::vector<cpu::Core*>& running,
                       Cycle q_end) {
    if (workers_.empty() || running.size() == 1) {
      for (cpu::Core* core : running) {
        RunSegment(*core, m.stack(core->id()), q_end);
      }
      return;
    }
    next_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      machine_ = &m;
      cores_ = &running;
      q_end_ = q_end;
      outstanding_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.notify_all();
    DrainQueue();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    cores_ = nullptr;
    machine_ = nullptr;
  }

  void DrainQueue() {
    const std::vector<cpu::Core*>& cores = *cores_;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= cores.size()) return;
      cpu::Core* core = cores[i];
      RunSegment(*core, machine_->stack(core->id()), q_end_);
    }
  }

  void WorkerLoop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      DrainQueue();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) done_cv_.notify_all();
      }
    }
  }

  EngineConfig config_;
  int host_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_{0};
  Machine* machine_ = nullptr;
  const std::vector<cpu::Core*>* cores_ = nullptr;
  Cycle q_end_ = 0;
};

std::uint64_t ParseNumber(std::string_view text, const char* what) {
  COBRA_CHECK_MSG(!text.empty(), "engine spec: missing number");
  std::uint64_t value = 0;
  for (char c : text) {
    COBRA_CHECK_MSG(c >= '0' && c <= '9', what);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::unique_ptr<ExecutionEngine> MakeEngine(const EngineConfig& config) {
  if (config.kind == EngineKind::kParallel) {
    return std::make_unique<ParallelEngine>(config);
  }
  return std::make_unique<SerialEngine>(config);
}

EngineConfig ParseEngineSpec(std::string_view spec) {
  EngineConfig config;
  if (const auto at = spec.find('@'); at != std::string_view::npos) {
    config.quantum = static_cast<Cycle>(
        ParseNumber(spec.substr(at + 1), "engine spec: bad quantum"));
    COBRA_CHECK_MSG(config.quantum > 0, "engine spec: quantum must be > 0");
    spec = spec.substr(0, at);
  }
  if (spec.empty() || spec == "serial") return config;
  COBRA_CHECK_MSG(spec.substr(0, 8) == "parallel",
                  "engine spec must be serial | parallel[:N] [@quantum]");
  config.kind = EngineKind::kParallel;
  spec.remove_prefix(8);
  if (!spec.empty()) {
    COBRA_CHECK_MSG(spec.front() == ':',
                    "engine spec must be serial | parallel[:N] [@quantum]");
    config.host_threads = static_cast<int>(
        ParseNumber(spec.substr(1), "engine spec: bad thread count"));
    COBRA_CHECK_MSG(config.host_threads > 0,
                    "engine spec: thread count must be > 0");
  }
  return config;
}

EngineConfig EngineConfigFromEnv() {
  const char* spec = std::getenv("COBRA_ENGINE");
  if (spec == nullptr || *spec == '\0') return EngineConfig{};
  return ParseEngineSpec(spec);
}

}  // namespace cobra::machine
