// Shared simulation-wide scalar types.
#pragma once

#include <cstdint>

namespace cobra {

// Simulated time, in CPU clock cycles. All components of one Machine share
// a single clock domain (Itanium 2 style: bus and interconnect latencies are
// expressed in CPU cycles).
using Cycle = std::uint64_t;

// CPU index within a machine.
using CpuId = int;

}  // namespace cobra
