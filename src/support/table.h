// Plain-text table printer used by the benchmark harnesses to emit
// paper-style rows (Figure 3/5/6/7 series, Table 1).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cobra::support {

// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }
  static std::string Int(long long v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", v);
    return buf;
  }
  static std::string Pct(double v, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%+.*f%%", precision, v * 100.0);
    return buf;
  }

  std::string Render() const;
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cobra::support
