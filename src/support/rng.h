// Deterministic, seedable pseudo-random number generator.
//
// Every stochastic choice in the simulator and in the workload generators
// flows through this RNG so that experiments are bit-reproducible across
// runs and hosts.  The generator is SplitMix64 followed by xoshiro256**,
// which is fast, has a 2^256-1 period and passes BigCrush — more than
// adequate for workload synthesis (EP's Gaussian pairs, IS's key streams).
#pragma once

#include <cstdint>

namespace cobra::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  // Re-seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound which is
    // irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cobra::support
