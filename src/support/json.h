// Minimal JSON document model, writer and parser.
//
// This is the machine-readable side of the observability layer: the
// benchmark driver (tools/cobra_bench) assembles its BENCH_*.json report
// as a Json tree, the golden-schema test parses the serialized document
// back and compares *shapes* (SchemaSignature), and the trace-sink test
// parses COBRA_TRACE output to prove it loads in chrome://tracing.
//
// Scope: everything JSON requires for those documents — objects (insertion
// ordered), arrays, strings, booleans, null, and numbers (64-bit integers
// kept exact, doubles printed round-trippably). No comments, no NaN/Inf.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cobra::support {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double d) : kind_(Kind::kNumber), dbl_(d) {}  // NOLINT
  Json(std::int64_t i)  // NOLINT
      : kind_(Kind::kNumber), integral_(true), int_(i),
        dbl_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : Json(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}            // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}             // NOLINT

  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  // --- Object access (aborts unless kind is kObject) -----------------------
  // Sets `key` (replacing an existing value, preserving insertion order).
  Json& Set(std::string_view key, Json value);
  // Value of `key`, or nullptr when absent.
  const Json* Find(std::string_view key) const;
  // Value of `key`; aborts when absent.
  const Json& At(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  // --- Array access (aborts unless kind is kArray) -------------------------
  Json& Append(Json value);
  const std::vector<Json>& elements() const;
  std::size_t size() const;

  // --- Scalar access (aborts on kind mismatch) -----------------------------
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;

  // --- Serialization -------------------------------------------------------
  // Pretty-prints with 2-space indentation; doubles use round-trippable
  // formatting, so Parse(Dump(x)).Dump() == Dump(x).
  std::string Dump() const;

  // Parses a complete JSON document; returns nullopt (and sets *error to a
  // position-tagged message) on malformed input or trailing garbage.
  static std::optional<Json> Parse(std::string_view text,
                                   std::string* error = nullptr);

  // Canonical shape signature: key names and value *types*, values erased.
  //   null|bool|num|str  -> that token
  //   object             -> {key:sig,...}   (keys sorted)
  //   array              -> [sig|sig...]    (distinct element sigs, sorted)
  // Two documents with the same signature have interchangeable structure —
  // the golden-schema test pins the benchmark report to one signature.
  std::string SchemaSignature() const;

 private:
  explicit Json(Kind kind) : kind_(kind) {}
  void DumpTo(std::string& out, int indent) const;
  void SignatureTo(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  bool integral_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace cobra::support
