#include "support/table.h"

#include <algorithm>

namespace cobra::support {

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += "| ";
      out += cell;
      out.append(width[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t i = 0; i < width.size(); ++i) {
    out += "|";
    out.append(width[i] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::Print(std::FILE* out) const {
  const std::string text = Render();
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace cobra::support
