// Small statistics accumulators used by the memory system, the HPM model
// and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace cobra::support {

// Streaming mean/min/max/stddev accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t Count() const { return n_; }
  double Sum() const { return sum_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
// Used for miss-latency distributions (the DEAR filter thresholds were
// chosen in the paper from exactly this kind of histogram).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void Add(double x) {
    ++total_;
    if (x < lo_) {
      ++counts_.front();
    } else if (x >= hi_) {
      ++counts_.back();
    } else {
      const auto n = counts_.size() - 2;
      auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(n));
      if (idx >= n) idx = n - 1;
      ++counts_[idx + 1];
    }
  }

  std::uint64_t Total() const { return total_; }
  std::uint64_t Underflow() const { return counts_.front(); }
  std::uint64_t Overflow() const { return counts_.back(); }
  std::uint64_t BucketCount(std::size_t i) const { return counts_.at(i + 1); }
  std::size_t Buckets() const { return counts_.size() - 2; }
  double BucketLo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(Buckets());
  }

  // Count of samples >= threshold (including overflow bucket), computed from
  // bucket boundaries; threshold is clamped to a bucket edge.
  std::uint64_t CountAtLeast(double threshold) const {
    std::uint64_t c = Overflow();
    for (std::size_t i = 0; i < Buckets(); ++i) {
      if (BucketLo(i) >= threshold) c += BucketCount(i);
    }
    return c;
  }

  // p-quantile (p in [0, 1]) estimated from the bucket counts, with linear
  // interpolation inside the bucket the rank falls into (benchmark p50 /
  // p90 / p99 reporting). Underflow resolves to `lo`, overflow to `hi`
  // (the histogram does not keep exact values outside [lo, hi)). Returns 0
  // for an empty histogram.
  double Quantile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the sample we're after, 1-based; p=0 -> first, p=1 -> last.
    const double rank = p * static_cast<double>(total_ - 1) + 1.0;
    double seen = 0.0;
    if (rank <= static_cast<double>(Underflow())) return lo_;
    seen += static_cast<double>(Underflow());
    const double width = (hi_ - lo_) / static_cast<double>(Buckets());
    for (std::size_t i = 0; i < Buckets(); ++i) {
      const double in_bucket = static_cast<double>(BucketCount(i));
      if (in_bucket > 0.0 && rank <= seen + in_bucket) {
        // Interpolate by the rank's position within this bucket's span.
        const double frac = (rank - seen) / in_bucket;
        return BucketLo(i) + frac * width;
      }
      seen += in_bucket;
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cobra::support
