#include "support/json.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/check.h"

namespace cobra::support {

Json& Json::Set(std::string_view key, Json value) {
  COBRA_CHECK_MSG(kind_ == Kind::kObject, "Json::Set on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return object_.back().second;
}

const Json* Json::Find(std::string_view key) const {
  COBRA_CHECK_MSG(kind_ == Kind::kObject, "Json::Find on a non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::At(std::string_view key) const {
  const Json* v = Find(key);
  COBRA_CHECK_MSG(v != nullptr, "Json::At: missing key");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  COBRA_CHECK_MSG(kind_ == Kind::kObject, "Json::items on a non-object");
  return object_;
}

Json& Json::Append(Json value) {
  COBRA_CHECK_MSG(kind_ == Kind::kArray, "Json::Append on a non-array");
  array_.push_back(std::move(value));
  return array_.back();
}

const std::vector<Json>& Json::elements() const {
  COBRA_CHECK_MSG(kind_ == Kind::kArray, "Json::elements on a non-array");
  return array_;
}

std::size_t Json::size() const {
  COBRA_CHECK_MSG(kind_ == Kind::kArray, "Json::size on a non-array");
  return array_.size();
}

bool Json::AsBool() const {
  COBRA_CHECK_MSG(kind_ == Kind::kBool, "Json::AsBool on a non-bool");
  return bool_;
}

double Json::AsDouble() const {
  COBRA_CHECK_MSG(kind_ == Kind::kNumber, "Json::AsDouble on a non-number");
  return integral_ ? static_cast<double>(int_) : dbl_;
}

std::int64_t Json::AsInt() const {
  COBRA_CHECK_MSG(kind_ == Kind::kNumber && integral_,
                  "Json::AsInt on a non-integer");
  return int_;
}

const std::string& Json::AsString() const {
  COBRA_CHECK_MSG(kind_ == Kind::kString, "Json::AsString on a non-string");
  return str_;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, bool integral, std::int64_t i, double d) {
  if (integral) {
    out += std::to_string(i);
    return;
  }
  COBRA_CHECK_MSG(std::isfinite(d), "JSON numbers must be finite");
  char buf[40];
  // Shortest round-trippable form: try increasing precision.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
  // Keep the number recognizably floating-point (stable schema round-trip).
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

void Indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(out, integral_, int_, dbl_);
      return;
    case Kind::kString:
      AppendEscaped(out, str_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        Indent(out, depth + 1);
        array_[i].DumpTo(out, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += '\n';
      }
      Indent(out, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        Indent(out, depth + 1);
        AppendEscaped(out, object_[i].first);
        out += ": ";
        object_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += '\n';
      }
      Indent(out, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> Run() {
    SkipWs();
    Json value;
    if (!ParseValue(&value)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing garbage after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void Fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(Json* out) {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't') {
      if (!Literal("true")) { Fail("bad literal"); return false; }
      *out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) { Fail("bad literal"); return false; }
      *out = Json(false);
      return true;
    }
    if (c == 'n') {
      if (!Literal("null")) { Fail("bad literal"); return false; }
      *out = Json();
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(Json* out) {
    std::string s;
    if (!ParseRawString(&s)) return false;
    *out = Json(std::move(s));
    return true;
  }

  bool ParseRawString(std::string* out) {
    if (text_[pos_] != '"') {
      Fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) { Fail("bad \\u escape"); return false; }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else { Fail("bad \\u escape"); return false; }
            }
            pos_ += 4;
            // Our documents are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            Fail("bad escape");
            return false;
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseNumber(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      Fail("expected value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        Fail("bad integer");
        return false;
      }
      *out = Json(static_cast<std::int64_t>(v));
    } else {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || !std::isfinite(v)) {
        Fail("bad number");
        return false;
      }
      *out = Json(v);
    }
    return true;
  }

  bool ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      Json element;
      if (!ParseValue(&element)) return false;
      out->Append(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      Fail("expected ',' or ']'");
      return false;
    }
  }

  bool ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseRawString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        Fail("expected ':'");
        return false;
      }
      ++pos_;
      SkipWs();
      Json value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      Fail("expected ',' or '}'");
      return false;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Run();
}

void Json::SignatureTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += "bool"; return;
    case Kind::kNumber: out += "num"; return;
    case Kind::kString: out += "str"; return;
    case Kind::kArray: {
      std::vector<std::string> sigs;
      for (const Json& e : array_) {
        std::string s;
        e.SignatureTo(s);
        if (std::find(sigs.begin(), sigs.end(), s) == sigs.end()) {
          sigs.push_back(std::move(s));
        }
      }
      std::sort(sigs.begin(), sigs.end());
      out += '[';
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        if (i > 0) out += '|';
        out += sigs[i];
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      std::vector<std::pair<std::string, const Json*>> sorted;
      sorted.reserve(object_.size());
      for (const auto& [k, v] : object_) sorted.emplace_back(k, &v);
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      out += '{';
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i > 0) out += ',';
        out += sorted[i].first;
        out += ':';
        sorted[i].second->SignatureTo(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::SchemaSignature() const {
  std::string out;
  SignatureTo(out);
  return out;
}

}  // namespace cobra::support
