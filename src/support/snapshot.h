// Versioned binary snapshot protocol: the serialization substrate behind
// Machine::SaveCheckpoint / RestoreCheckpoint.
//
// A snapshot blob is
//
//   [magic u64][format_version u32]            header, outside the checksum
//   [payload_size u64][payload_fnv1a u64]
//   payload:  a sequence of named sections
//     [name_len u32][name bytes][body_len u64][body bytes] ...
//
// Writers append named sections (BeginSection/EndSection) and primitive
// values inside them; readers consume the same sections *in write order*
// (EnterSection checks the name, ExitSection checks the cursor landed on
// the recorded section end). StateReader::Open validates magic, version,
// size and checksum before a caller reads anything, so a component's
// RestoreState never sees a corrupt stream — restore either starts from a
// fully-validated blob or fails up front with a diagnostic, never
// half-mutates the machine.
//
// Everything is little-endian fixed-width; doubles travel bit-cast through
// u64 so restore is bit-exact. The format carries no host state: a blob
// written by one engine configuration restores under any other.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cobra::support {

// Bump when the section layout changes incompatibly. Readers reject any
// other version outright (no migration shims: snapshots are same-build
// artifacts, the version gate exists to fail loudly instead of strangely).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

class StateWriter {
 public:
  StateWriter() = default;

  // --- Sections ------------------------------------------------------------
  // Sections nest; each BeginSection must be closed by one EndSection.
  void BeginSection(std::string_view name);
  void EndSection();

  // --- Primitives ----------------------------------------------------------
  void U8(std::uint8_t v) { payload_.push_back(v); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s);
  void Bytes(const void* data, std::size_t n);

  // Seals the blob: header + payload size + FNV-1a checksum + payload.
  // Aborts if a section is still open.
  std::vector<std::uint8_t> Finish(
      std::uint32_t version = kSnapshotFormatVersion) const;

 private:
  std::vector<std::uint8_t> payload_;
  // Byte offsets (into payload_) of the body_len fields of open sections,
  // patched with the final body length at EndSection.
  std::vector<std::size_t> open_sections_;
};

class StateReader {
 public:
  StateReader() = default;

  // Validates the whole blob (magic, version, payload size, checksum) and
  // positions the cursor at the first section. On failure returns false and
  // sets error(); the reader stays unusable and the caller must not touch
  // any machine state.
  bool Open(const std::uint8_t* data, std::size_t size);
  bool Open(const std::vector<std::uint8_t>& blob) {
    return Open(blob.data(), blob.size());
  }

  // --- Sections ------------------------------------------------------------
  // Enters the next section, which must be named `name` (sections are read
  // strictly in write order). Returns false (and sets error()) on a name
  // mismatch or a malformed header.
  bool EnterSection(std::string_view name);
  // Leaves the current section; the cursor must have consumed exactly the
  // section body (catches reader/writer layout drift immediately).
  bool ExitSection();

  // --- Primitives ----------------------------------------------------------
  // All read calls return false once the reader is in a failed state, so
  // call sites can chain unchecked and test Ok() at a boundary.
  bool U8(std::uint8_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool I64(std::int64_t* v);
  bool F64(double* v);
  bool Bool(bool* v);
  bool Str(std::string* s);
  bool Bytes(void* out, std::size_t n);

  bool Ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  // True when every payload byte has been consumed and all sections closed.
  bool AtEnd() const { return Ok() && cursor_ == end_ && section_ends_.empty(); }

 private:
  bool Fail(std::string message);
  bool Need(std::size_t n);

  const std::uint8_t* data_ = nullptr;
  std::size_t cursor_ = 0;  // next unread payload byte (absolute offset)
  std::size_t end_ = 0;     // one past the last payload byte
  std::vector<std::size_t> section_ends_;
  std::string error_ = "snapshot not opened";
};

}  // namespace cobra::support
