#include "support/snapshot.h"

#include "support/check.h"

namespace cobra::support {
namespace {

// "COBRASNP" little-endian.
constexpr std::uint64_t kMagic = 0x504e534152424f43ULL;

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

// --- StateWriter -------------------------------------------------------------

void StateWriter::BeginSection(std::string_view name) {
  U32(static_cast<std::uint32_t>(name.size()));
  payload_.insert(payload_.end(), name.begin(), name.end());
  open_sections_.push_back(payload_.size());
  U64(0);  // body_len placeholder, patched at EndSection
}

void StateWriter::EndSection() {
  COBRA_CHECK_MSG(!open_sections_.empty(), "EndSection without BeginSection");
  const std::size_t len_at = open_sections_.back();
  open_sections_.pop_back();
  const std::uint64_t body_len =
      static_cast<std::uint64_t>(payload_.size() - (len_at + 8));
  for (int i = 0; i < 8; ++i) {
    payload_[len_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
}

void StateWriter::U32(std::uint32_t v) { PutU32(payload_, v); }
void StateWriter::U64(std::uint64_t v) { PutU64(payload_, v); }

void StateWriter::F64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void StateWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void StateWriter::Bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + n);
}

std::vector<std::uint8_t> StateWriter::Finish(std::uint32_t version) const {
  COBRA_CHECK_MSG(open_sections_.empty(), "Finish with open sections");
  std::vector<std::uint8_t> blob;
  blob.reserve(kHeaderBytes + payload_.size());
  PutU64(blob, kMagic);
  PutU32(blob, version);
  PutU64(blob, static_cast<std::uint64_t>(payload_.size()));
  PutU64(blob, Fnv1a(payload_.data(), payload_.size()));
  blob.insert(blob.end(), payload_.begin(), payload_.end());
  return blob;
}

// --- StateReader -------------------------------------------------------------

bool StateReader::Fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
  return false;
}

bool StateReader::Need(std::size_t n) {
  if (!Ok()) return false;
  const std::size_t limit = section_ends_.empty() ? end_ : section_ends_.back();
  if (cursor_ + n > limit) {
    return Fail("snapshot truncated: read past " +
                std::string(section_ends_.empty() ? "payload" : "section") +
                " end");
  }
  return true;
}

bool StateReader::Open(const std::uint8_t* data, std::size_t size) {
  data_ = data;
  cursor_ = 0;
  end_ = 0;
  section_ends_.clear();
  error_.clear();
  if (size < kHeaderBytes) return Fail("snapshot truncated: no header");
  if (GetU64(data) != kMagic) return Fail("not a COBRA snapshot (bad magic)");
  const std::uint32_t version = GetU32(data + 8);
  if (version != kSnapshotFormatVersion) {
    return Fail("snapshot format version " + std::to_string(version) +
                " unsupported (expected " +
                std::to_string(kSnapshotFormatVersion) + ")");
  }
  const std::uint64_t payload_size = GetU64(data + 12);
  if (payload_size != size - kHeaderBytes) {
    return Fail("snapshot truncated: payload size mismatch");
  }
  const std::uint64_t checksum = GetU64(data + 20);
  if (Fnv1a(data + kHeaderBytes, payload_size) != checksum) {
    return Fail("snapshot corrupt: payload checksum mismatch");
  }
  cursor_ = kHeaderBytes;
  end_ = kHeaderBytes + payload_size;
  return true;
}

bool StateReader::EnterSection(std::string_view name) {
  std::uint32_t name_len = 0;
  if (!U32(&name_len)) return false;
  if (!Need(name_len)) return false;
  const std::string_view found(reinterpret_cast<const char*>(data_ + cursor_),
                               name_len);
  if (found != name) {
    return Fail("snapshot section mismatch: expected '" + std::string(name) +
                "', found '" + std::string(found) + "'");
  }
  cursor_ += name_len;
  std::uint64_t body_len = 0;
  if (!U64(&body_len)) return false;
  const std::size_t limit = section_ends_.empty() ? end_ : section_ends_.back();
  if (cursor_ + body_len > limit) {
    return Fail("snapshot truncated: section '" + std::string(name) +
                "' body overruns enclosing bounds");
  }
  section_ends_.push_back(cursor_ + body_len);
  return true;
}

bool StateReader::ExitSection() {
  if (!Ok()) return false;
  if (section_ends_.empty()) return Fail("ExitSection without EnterSection");
  if (cursor_ != section_ends_.back()) {
    return Fail("snapshot section not fully consumed (layout drift)");
  }
  section_ends_.pop_back();
  return true;
}

bool StateReader::U8(std::uint8_t* v) {
  if (!Need(1)) return false;
  *v = data_[cursor_++];
  return true;
}

bool StateReader::U32(std::uint32_t* v) {
  if (!Need(4)) return false;
  *v = GetU32(data_ + cursor_);
  cursor_ += 4;
  return true;
}

bool StateReader::U64(std::uint64_t* v) {
  if (!Need(8)) return false;
  *v = GetU64(data_ + cursor_);
  cursor_ += 8;
  return true;
}

bool StateReader::I64(std::int64_t* v) {
  std::uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool StateReader::F64(double* v) {
  std::uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof *v);
  return true;
}

bool StateReader::Bool(bool* v) {
  std::uint8_t b = 0;
  if (!U8(&b)) return false;
  *v = b != 0;
  return true;
}

bool StateReader::Str(std::string* s) {
  std::uint32_t n = 0;
  if (!U32(&n)) return false;
  if (!Need(n)) return false;
  s->assign(reinterpret_cast<const char*>(data_ + cursor_), n);
  cursor_ += n;
  return true;
}

bool StateReader::Bytes(void* out, std::size_t n) {
  if (!Need(n)) return false;
  std::memcpy(out, data_ + cursor_, n);
  cursor_ += n;
  return true;
}

}  // namespace cobra::support
