// Lightweight runtime-check macros used across the COBRA codebase.
//
// Simulator invariants are always enforced (even in release builds): a
// silently-corrupt simulation is worse than an aborted one, and the cost of
// the checks is negligible next to cache-model lookups.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cobra::support {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "COBRA_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace cobra::support

// Always-on invariant check. `msg` is optional context for the abort message.
#define COBRA_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::cobra::support::CheckFailed(__FILE__, __LINE__, #expr, nullptr);   \
  } while (0)

#define COBRA_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::cobra::support::CheckFailed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

// Marks unreachable control flow (e.g. an exhaustive switch).
#define COBRA_UNREACHABLE(msg) \
  ::cobra::support::CheckFailed(__FILE__, __LINE__, "unreachable", msg)
