#include "verify/fuzz.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/scev.h"
#include "cobra/controller.h"
#include "cobra/optimizer.h"
#include "cobra/trace_cache.h"
#include "isa/assembler.h"
#include "isa/instruction.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "mem/main_memory.h"
#include "rt/team.h"
#include "support/check.h"
#include "support/rng.h"
#include "verify/coherence_checker.h"

namespace cobra::verify {

namespace {

// Per-thread register setup, expressible as base + tid * stride so the
// generator can describe every workload's launch uniformly.
struct GrInit {
  int reg = 0;
  std::uint64_t base = 0;
  std::uint64_t per_tid = 0;
};

struct FrInit {
  int reg = 0;
  double value = 0.0;
};

// Seeded bulk initialization of a data region (applied host-side before
// the run; the oracle snapshots memory afterwards).
struct RegionFill {
  enum Kind { kDoubles, kWords, kInts32 };
  mem::Addr begin = 0;
  std::uint64_t count = 0;
  Kind kind = kWords;
  std::uint64_t seed = 0;
};

struct GeneratedCase {
  isa::Addr entry = 0;
  std::vector<GrInit> grs;
  std::vector<FrInit> frs;
  std::vector<RegionFill> fills;
  // Hand-assembled loops (head, back-branch pc) that register no kgen
  // LoopInfo — the scev soundness harness analyzes these too.
  std::vector<std::pair<isa::Addr, isa::Addr>> loops;
};

// --- Raw memory-op mix ------------------------------------------------------
// A single counted loop whose body interleaves independent access streams:
//
//   * store streams: each thread stores to its own 8-byte word of a line,
//     advancing one 128-B line per iteration — adjacent threads' words
//     share lines (false sharing, no true sharing), with a value register
//     bumped every iteration so the oracle sees evolving data;
//   * load-own streams: loads walking a store stream's region at the
//     thread's own offset (read-after-write against the oracle);
//   * shared read-only streams: every thread walks the same 8-byte-stride
//     region (Shared copies everywhere), as plain, FP (L1-bypassing) or
//     ld.bias (background-upgrade) loads;
//   * lfetch streams: one prefetch per iteration roving over a written
//     region at a per-thread line offset, .excl with probability 1/2 —
//     best-effort RFOs that steal other threads' dirty lines.
GeneratedCase GenerateRawMix(kgen::Program& prog, support::Rng& rng,
                             int threads) {
  using namespace cobra::isa;
  (void)threads;
  GeneratedCase g;

  const int iters = 48 + static_cast<int>(rng.NextBounded(112));
  constexpr std::int64_t kLine = 128;

  int next_reg = 8;  // r29..r31 reserved: load sink + loop-count setup
  auto TakeReg = [&next_reg] {
    COBRA_CHECK_MSG(next_reg <= 28, "fuzz raw mix ran out of registers");
    return next_reg++;
  };
  auto AllocStreamRegion = [&](std::int64_t stride) {
    return prog.Alloc(static_cast<std::uint64_t>(iters + 16) *
                      static_cast<std::uint64_t>(stride));
  };

  std::vector<std::vector<Instruction>> groups;
  std::vector<mem::Addr> store_regions;

  const int n_store = 1 + static_cast<int>(rng.NextBounded(3));
  for (int s = 0; s < n_store; ++s) {
    const mem::Addr region = AllocStreamRegion(kLine);
    store_regions.push_back(region);
    const int base = TakeReg();
    const int val = TakeReg();
    const int size = 1 << rng.NextBounded(4);  // 1 / 2 / 4 / 8 bytes
    g.grs.push_back({base, region, 8});
    g.grs.push_back({val, rng.NextU64(), 0x1001});
    g.fills.push_back({region, static_cast<std::uint64_t>(iters + 16) * 16,
                       RegionFill::kWords, rng.NextU64()});
    groups.push_back(
        {AddImm(val, val, 1 + static_cast<std::int64_t>(rng.NextBounded(7))),
         StPostInc(size, base, val, kLine)});
  }

  const int n_load_own = static_cast<int>(rng.NextBounded(2));
  for (int s = 0; s < n_load_own; ++s) {
    const mem::Addr region = store_regions[rng.NextBounded(store_regions.size())];
    const int base = TakeReg();
    const int size = 1 << rng.NextBounded(4);
    g.grs.push_back({base, region, 8});
    groups.push_back({LdPostInc(size, 29, base, kLine)});
  }

  const int n_shared = 1 + static_cast<int>(rng.NextBounded(3));
  for (int s = 0; s < n_shared; ++s) {
    const mem::Addr region = AllocStreamRegion(8);
    const int base = TakeReg();
    g.grs.push_back({base, region, 0});
    g.fills.push_back({region, static_cast<std::uint64_t>(iters + 16),
                       RegionFill::kWords, rng.NextU64()});
    switch (rng.NextBounded(3)) {
      case 0:
        groups.push_back({LdPostInc(8, 29, base, 8)});
        break;
      case 1:
        groups.push_back({LdfPostInc(9, base, 8)});
        break;
      default:
        groups.push_back({LdPostInc(8, 29, base, 8, LoadHint::kBias)});
        break;
    }
  }

  const int n_prefetch = 1 + static_cast<int>(rng.NextBounded(3));
  for (int s = 0; s < n_prefetch; ++s) {
    const mem::Addr region =
        rng.NextBounded(10) < 7
            ? store_regions[rng.NextBounded(store_regions.size())]
            : AllocStreamRegion(kLine);
    const int base = TakeReg();
    g.grs.push_back({base, region, kLine});
    LfetchHint hint;
    hint.excl = rng.NextBounded(2) == 0;
    groups.push_back({LfetchPostInc(base, kLine, hint)});
  }

  // Shuffle the per-iteration interleaving once, per seed.
  for (std::size_t i = groups.size(); i > 1; --i) {
    std::swap(groups[i - 1], groups[rng.NextBounded(i)]);
  }

  Assembler a(&prog.image());
  const auto loop = a.NewLabel();
  a.Emit(MovImm(30, iters - 1));
  a.Emit(MovToAr(AppReg::kLC, 30));
  a.FlushBundle();
  a.Bind(loop);
  const isa::Addr head = prog.image().code_end();
  for (const auto& group : groups) {
    for (const Instruction& inst : group) a.Emit(inst);
  }
  const isa::Addr back = a.EmitBranch(BrCloop(0), loop);
  a.Emit(Break());
  g.entry = a.Finish();
  g.loops.push_back({head, back});
  return g;
}

// --- Random kgen kernels ----------------------------------------------------
// The racy emitters (histogram, rank, scan) are excluded: the parallel
// engine's contract requires regions free of simulated data races, and the
// serial/parallel fingerprint diff depends on it.

kgen::PrefetchPolicy RandomPrefetch(support::Rng& rng) {
  kgen::PrefetchPolicy pf;
  pf.enabled = rng.NextBounded(10) < 8;
  pf.distance_bytes = 128 * (1 + static_cast<int>(rng.NextBounded(12)));
  pf.prologue_prefetches = static_cast<int>(rng.NextBounded(7));
  pf.excl = rng.NextBounded(2) == 0;
  return pf;
}

GeneratedCase GenerateStreamLoop(kgen::Program& prog, support::Rng& rng,
                                 int threads) {
  GeneratedCase g;
  kgen::StreamLoopSpec spec;
  spec.op = static_cast<kgen::StreamOp>(
      rng.NextBounded(static_cast<std::uint64_t>(kgen::kNumStreamOps)));
  spec.prefetch = RandomPrefetch(rng);
  const kgen::LoopInfo info = EmitStreamLoop(
      prog, std::string("fuzz_") + kgen::StreamOpName(spec.op), spec);
  g.entry = info.entry;

  const std::uint64_t per = 64 + rng.NextBounded(192);
  const std::uint64_t n = per * static_cast<std::uint64_t>(threads);
  const int inputs = kgen::StreamOpInputs(spec.op);
  for (int i = 0; i < inputs; ++i) {
    const mem::Addr base = prog.Alloc(n * 8);
    g.grs.push_back({kgen::ArgReg(i), base, 8 * per});
    g.fills.push_back({base, n, RegionFill::kDoubles, rng.NextU64()});
  }
  const mem::Addr out = prog.Alloc(n * 8);
  g.grs.push_back({17, out, 8 * per});
  g.grs.push_back({18, per, 0});
  g.frs.push_back({6, rng.NextDouble(-1.5, 1.5)});
  g.frs.push_back({7, rng.NextDouble(-1.5, 1.5)});
  return g;
}

GeneratedCase GenerateReduction(kgen::Program& prog, support::Rng& rng,
                                int threads) {
  GeneratedCase g;
  const auto op = static_cast<kgen::ReduceOp>(rng.NextBounded(4));
  const kgen::LoopInfo info =
      EmitReduction(prog, "fuzz_reduce", op, RandomPrefetch(rng));
  g.entry = info.entry;

  const std::uint64_t per = 64 + rng.NextBounded(192);
  const std::uint64_t n = per * static_cast<std::uint64_t>(threads);
  const mem::Addr x = prog.Alloc(n * 8);
  const mem::Addr y = prog.Alloc(n * 8);
  // Adjacent 8-byte partial slots: every thread's result store false-shares
  // one coherence line.
  const mem::Addr partials =
      prog.Alloc(8 * static_cast<std::uint64_t>(threads));
  g.grs.push_back({14, x, 8 * per});
  g.grs.push_back({15, y, 8 * per});
  g.grs.push_back({16, per, 0});
  g.grs.push_back({17, partials, 8});
  g.fills.push_back({x, n, RegionFill::kDoubles, rng.NextU64()});
  g.fills.push_back({y, n, RegionFill::kDoubles, rng.NextU64()});
  return g;
}

GeneratedCase GenerateFill32(kgen::Program& prog, support::Rng& rng,
                             int threads) {
  GeneratedCase g;
  const kgen::LoopInfo info =
      EmitFill32(prog, "fuzz_fill", RandomPrefetch(rng));
  g.entry = info.entry;

  const std::uint64_t per = 128 + rng.NextBounded(384);
  const std::uint64_t n = per * static_cast<std::uint64_t>(threads);
  const mem::Addr buf = prog.Alloc(n * 4);
  g.grs.push_back({14, buf, 4 * per});
  g.grs.push_back({15, per, 0});
  g.grs.push_back({16, rng.NextBounded(1u << 30), 0});
  return g;
}

GeneratedCase GenerateIntAccumulate(kgen::Program& prog, support::Rng& rng,
                                    int threads) {
  GeneratedCase g;
  const kgen::LoopInfo info =
      EmitIntAccumulate(prog, "fuzz_acc", RandomPrefetch(rng));
  g.entry = info.entry;

  const std::uint64_t per = 128 + rng.NextBounded(384);
  const std::uint64_t n = per * static_cast<std::uint64_t>(threads);
  const mem::Addr src = prog.Alloc(n * 4);
  const mem::Addr dst = prog.Alloc(n * 4);
  g.grs.push_back({14, src, 4 * per});
  g.grs.push_back({15, dst, 4 * per});
  g.grs.push_back({16, per, 0});
  g.fills.push_back({src, n, RegionFill::kInts32, rng.NextU64()});
  g.fills.push_back({dst, n, RegionFill::kInts32, rng.NextU64()});
  return g;
}

GeneratedCase Generate(kgen::Program& prog, support::Rng& rng, int threads) {
  switch (rng.NextBounded(10)) {
    case 0:
    case 1:
    case 2:
    case 3:
    case 4:
      return GenerateRawMix(prog, rng, threads);
    case 5:
    case 6:
      return GenerateStreamLoop(prog, rng, threads);
    case 7:
      return GenerateReduction(prog, rng, threads);
    case 8:
      return GenerateFill32(prog, rng, threads);
    default:
      return GenerateIntAccumulate(prog, rng, threads);
  }
}

void ApplyFills(mem::MainMemory& memory,
                const std::vector<RegionFill>& fills) {
  for (const RegionFill& f : fills) {
    support::Rng rng(f.seed);
    switch (f.kind) {
      case RegionFill::kDoubles:
        for (std::uint64_t i = 0; i < f.count; ++i) {
          memory.WriteDouble(f.begin + 8 * i, rng.NextDouble(-2.0, 2.0));
        }
        break;
      case RegionFill::kWords:
        for (std::uint64_t i = 0; i < f.count; ++i) {
          memory.WriteAs<std::uint64_t>(f.begin + 8 * i, rng.NextU64());
        }
        break;
      case RegionFill::kInts32:
        for (std::uint64_t i = 0; i < f.count; ++i) {
          memory.WriteAs<std::uint32_t>(
              f.begin + 4 * i, static_cast<std::uint32_t>(rng.NextU64()));
        }
        break;
    }
  }
}

std::uint64_t HashMemory(const mem::MainMemory& memory, mem::Addr end) {
  const std::uint8_t* data = memory.raw();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (mem::Addr a = 0; a < end; ++a) {
    h ^= data[a];
    h *= 1099511628211ULL;
  }
  return h;
}

// Everything observable about the finished run — same spirit as
// tests/engine_test.cpp's AppendMachineState, plus a data-segment hash.
std::string Fingerprint(machine::Machine& m, mem::Addr data_end) {
  std::ostringstream out;
  out << "global_time=" << m.GlobalTime() << "\n";
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    const cpu::Core& core = m.core(cpu);
    const mem::CacheStack& stack = m.stack(cpu);
    const mem::CacheStack::Stats& ss = stack.stats();
    const mem::BusEventCounts& bus = m.fabric().CpuCounts(cpu);
    out << "cpu" << cpu << " now=" << core.now()
        << " retired=" << core.instructions_retired()
        << " dropped=" << core.lfetches_dropped() << " loads=" << ss.loads
        << " stores=" << ss.stores << " pf=" << ss.prefetches
        << " pf_bus=" << ss.prefetch_bus_requests
        << " pf_up=" << ss.prefetch_upgrades << " l2wb=" << ss.l2_writebacks
        << " fwb=" << ss.fabric_writebacks << " st_up=" << ss.store_upgrades
        << " sn_down=" << ss.snoop_downgrades
        << " sn_inv=" << ss.snoop_invalidations << " hitm=" << ss.hitm_supplies
        << " st_upd=" << ss.store_updates << " sn_upd=" << ss.snoop_updates
        << " buf_st=" << ss.buffered_stores
        << " l2m=" << stack.L2Misses() << " l3m=" << stack.L3Misses()
        << " bus_mem=" << bus.bus_memory << " rd_hit=" << bus.bus_rd_hit
        << " rd_hitm=" << bus.bus_rd_hitm
        << " rd_inv_hitm=" << bus.bus_rd_inval_all_hitm
        << " upg=" << bus.bus_upgrades << " upd=" << bus.bus_updates
        << " c2c=" << bus.c2c_transfers << " wb=" << bus.bus_writebacks
        << " remote=" << bus.remote_transactions << "\n";
  }
  const mem::BusEventCounts& total = m.fabric().TotalCounts();
  out << "bus_total=" << total.bus_memory << "/" << total.CoherentEvents()
      << "/" << total.remote_transactions << "\n";
  out << "memhash=" << HashMemory(m.memory(), data_end) << "\n";
  return out.str();
}

}  // namespace

FuzzCase SmpFuzzCase(std::uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  c.machine_name = "smp4";
  c.machine = machine::SmpServerConfig(4);
  c.machine.mem.memory_bytes = 1 << 22;
  c.machine.verify_coherence = true;
  c.threads = 4;
  return c;
}

FuzzCase NumaFuzzCase(std::uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  c.machine_name = "numa8";
  c.machine = machine::AltixConfig(8);
  c.machine.mem.memory_bytes = 1 << 22;
  c.machine.verify_coherence = true;
  c.threads = 8;
  return c;
}

FuzzCase WithProtocol(FuzzCase c, mem::Protocol protocol) {
  c.machine.mem.protocol = protocol;
  c.machine_name += std::string(".") + mem::ProtocolName(protocol);
  return c;
}

std::string MemoryImageOf(const std::string& fingerprint) {
  const std::size_t pos = fingerprint.find("memhash=");
  COBRA_CHECK_MSG(pos != std::string::npos,
                  "fingerprint carries no memory-image line");
  const std::size_t end = fingerprint.find('\n', pos);
  return fingerprint.substr(pos, end - pos);
}

std::string FormatEngine(const machine::EngineConfig& engine) {
  std::ostringstream out;
  out << (engine.kind == machine::EngineKind::kSerial ? "serial" : "parallel");
  if (engine.kind == machine::EngineKind::kParallel &&
      engine.host_threads > 0) {
    out << ":" << engine.host_threads;
  }
  out << "@" << engine.quantum;
  return out.str();
}

std::vector<std::pair<std::string, isa::Addr>> BuildFuzzProgram(
    const FuzzCase& c, kgen::Program& prog) {
  support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
  const GeneratedCase g = Generate(prog, rng, c.threads);
  std::vector<std::pair<std::string, isa::Addr>> kernels = prog.kernels();
  if (kernels.empty()) kernels.push_back({"fuzz_raw_mix", g.entry});
  return kernels;
}

std::string RunFuzzCase(const FuzzCase& c,
                        const machine::EngineConfig& engine) {
  kgen::Program prog;
  // Decouple the generator stream from the seed's raw value.
  support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
  const GeneratedCase g = Generate(prog, rng, c.threads);

  machine::Machine m(c.machine, &prog.image());
  ApplyFills(m.memory(), g.fills);

  std::ostringstream ctx;
  ctx << "fuzz seed=" << c.seed << " machine=" << c.machine_name
      << " threads=" << c.threads << " engine=" << FormatEngine(engine)
      << " -- rerun just this case with COBRA_FUZZ_SEED=" << c.seed;
  SetFailureContext(ctx.str());

  rt::Team team(&m, c.threads, engine);
  team.Run(g.entry, [&g](int tid, cpu::RegisterFile& regs) {
    for (const GrInit& init : g.grs) {
      regs.WriteGr(init.reg,
                   init.base + static_cast<std::uint64_t>(tid) * init.per_tid);
    }
    for (const FrInit& init : g.frs) regs.WriteFr(init.reg, init.value);
  });
  SetFailureContext("");

  return Fingerprint(m, prog.data_break());
}

PlannerCrossCheck RunFuzzCaseWithPlanner(const FuzzCase& c,
                                         const machine::EngineConfig& engine) {
  struct RunOut {
    std::string fingerprint;
    std::uint64_t deployments = 0;
    std::uint64_t candidates = 0;
    std::uint64_t verifications = 0;
  };
  const auto RunKind = [&](core::PlannerKind kind) -> RunOut {
    kgen::Program prog;
    support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
    const GeneratedCase g = Generate(prog, rng, c.threads);

    machine::Machine m(c.machine, &prog.image());
    ApplyFills(m.memory(), g.fills);

    std::ostringstream ctx;
    ctx << "fuzz planner=" << core::PlannerKindName(kind) << " seed=" << c.seed
        << " machine=" << c.machine_name << " threads=" << c.threads
        << " engine=" << FormatEngine(engine)
        << " -- rerun just this case with COBRA_FUZZ_SEED=" << c.seed;
    SetFailureContext(ctx.str());

    // Eager, fully explicit runtime config: deploy-on-sight (no measured
    // epochs) maximizes live-patch activity per seed, and both runs share
    // every knob except the strategy-selection engine under test. The
    // planner kind is assigned in code so an ambient COBRA_PLANNER cannot
    // skew the differential.
    core::CobraConfig config;
    config.planner = kind;
    config.batch_size = 8;
    config.batches_per_evaluation = 1;
    config.min_loop_hits = 4;
    config.require_coherent_ratio = false;
    config.require_coherent_load_in_loop = false;
    config.measured_epochs = false;
    config.static_priors = true;
    config.plan_cooldown_cycles = 0;     // every wake may revise the plan...
    config.plan_min_profit_delta = 0.0;  // ...on any strict improvement
    core::CobraRuntime cobra(&m, config);
    cobra.AttachAll(c.threads);

    rt::Team team(&m, c.threads, engine);
    // Two passes: the runtime deploys mid-flight during the first, and the
    // second executes start to finish through whatever patches went live.
    for (int rep = 0; rep < 2; ++rep) {
      team.Run(g.entry, [&g](int tid, cpu::RegisterFile& regs) {
        for (const GrInit& init : g.grs) {
          regs.WriteGr(init.reg, init.base +
                                     static_cast<std::uint64_t>(tid) *
                                         init.per_tid);
        }
        for (const FrInit& init : g.frs) regs.WriteFr(init.reg, init.value);
      });
    }
    cobra.DetachAll();
    SetFailureContext("");

    RunOut out;
    out.deployments = cobra.stats().deployments;
    out.candidates = cobra.planner().stats().candidates_seen;
    out.verifications = cobra.stats().patch_verifications;
    out.fingerprint = Fingerprint(m, prog.data_break());
    return out;
  };

  const RunOut heuristic = RunKind(core::PlannerKind::kHeuristic);
  const RunOut cost = RunKind(core::PlannerKind::kCost);

  PlannerCrossCheck result;
  result.heuristic_fingerprint = heuristic.fingerprint;
  result.cost_fingerprint = cost.fingerprint;
  result.heuristic_deployments = heuristic.deployments;
  result.cost_deployments = cost.deployments;
  result.cost_candidates = cost.candidates;
  result.verifier_passes = heuristic.verifications + cost.verifications;
  return result;
}

std::string RunFuzzCaseWithDeployments(const FuzzCase& c,
                                       const machine::EngineConfig& engine) {
  kgen::Program prog;
  support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
  const GeneratedCase g = Generate(prog, rng, c.threads);

  machine::Machine m(c.machine, &prog.image());
  ApplyFills(m.memory(), g.fills);

  std::ostringstream ctx;
  ctx << "fuzz live-patch seed=" << c.seed << " machine=" << c.machine_name
      << " threads=" << c.threads << " engine=" << FormatEngine(engine)
      << " -- rerun just this case with COBRA_FUZZ_SEED=" << c.seed;
  SetFailureContext(ctx.str());

  rt::Team team(&m, c.threads, engine);
  const auto RunOnce = [&] {
    team.Run(g.entry, [&g](int tid, cpu::RegisterFile& regs) {
      for (const GrInit& init : g.grs) {
        regs.WriteGr(init.reg, init.base +
                                   static_cast<std::uint64_t>(tid) *
                                       init.per_tid);
      }
      for (const FrInit& init : g.frs) regs.WriteFr(init.reg, init.value);
    });
  };

  RunOnce();  // baseline pass over the original binary
  core::TraceCache cache(&prog.image());
  for (const kgen::LoopInfo& loop : prog.loops()) {
    for (const core::OptKind opt :
         {core::OptKind::kNoprefetch, core::OptKind::kPrefetchExcl,
          core::OptKind::kNone}) {
      const int id = cache.Deploy({loop.head, loop.back_branch_pc}, opt);
      if (id < 0) continue;  // region gated out before any patching
      RunOnce();  // execute through the redirected entry
      cache.Revert(id);
      RunOnce();  // back over the restored original slots
      cache.Reapply(id);
      RunOnce();  // and through the re-applied patch
      cache.Revert(id);
    }
  }
  SetFailureContext("");

  return Fingerprint(m, prog.data_break());
}

ScevSoundnessResult CheckScevSoundness(const FuzzCase& c,
                                       const machine::EngineConfig& engine) {
  kgen::Program prog;
  support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
  const GeneratedCase g = Generate(prog, rng, c.threads);

  // Loop inventory: kgen kernels register LoopInfo; the raw mix records
  // its hand-assembled loop in the generated case.
  std::vector<std::pair<isa::Addr, isa::Addr>> regions = g.loops;
  for (const kgen::LoopInfo& loop : prog.loops()) {
    regions.push_back({loop.head, loop.back_branch_pc});
  }

  // Solve statically BEFORE the run: the analyzer sees only the binary.
  struct Claim {
    analysis::AddrClass cls = analysis::AddrClass::kUnknown;
    std::int64_t stride = 0;
  };
  struct Region {
    isa::Addr lo = 0;
    isa::Addr hi = 0;
    std::vector<isa::Addr> claim_pcs;
  };
  std::map<isa::Addr, Claim> claims;  // by access pc
  std::vector<Region> watched;
  ScevSoundnessResult result;
  for (const auto& [head, back] : regions) {
    const analysis::LoopScev scev =
        analysis::AnalyzeLoop(prog.image(), head, back);
    if (!scev.solved) continue;
    ++result.loops_solved;
    Region region{isa::BundleAddr(head),
                  isa::MakePc(isa::BundleAddr(back), 2), {}};
    for (const analysis::MemAccess& access : scev.accesses) {
      if (access.cls == analysis::AddrClass::kUnknown) continue;
      claims[access.pc] = Claim{access.cls, access.stride};
      region.claim_pcs.push_back(access.pc);
      ++result.claims;
    }
    if (!region.claim_pcs.empty()) watched.push_back(std::move(region));
  }
  if (claims.empty()) return result;

  // The address streams are architectural: the coherence oracle adds
  // nothing here, so run without it.
  machine::MachineConfig mcfg = c.machine;
  mcfg.verify_coherence = false;
  machine::Machine m(mcfg, &prog.image());
  ApplyFills(m.memory(), g.fills);

  std::ostringstream ctx;
  ctx << "fuzz scev-soundness seed=" << c.seed << " machine=" << c.machine_name
      << " threads=" << c.threads << " engine=" << FormatEngine(engine)
      << " -- rerun just this case with COBRA_FUZZ_SEED=" << c.seed;
  SetFailureContext(ctx.str());

  // Per-cpu observation state (the parallel engine runs cores on host
  // threads: nothing here may be shared across cpus until the merge).
  struct CpuTally {
    std::map<isa::Addr, isa::Addr> seen;  // last address per claimed pc,
                                          // valid while inside the loop
    std::uint64_t deltas_checked = 0;
    std::uint64_t contradictions = 0;
    std::string first_contradiction;
  };
  std::vector<CpuTally> tallies(static_cast<std::size_t>(m.num_cpus()));
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    CpuTally* tally = &tallies[static_cast<std::size_t>(cpu)];
    m.core(cpu).SetMemObserver([&claims, &watched, tally, cpu,
                                &c](isa::Addr pc, isa::Addr addr) {
      for (const Region& region : watched) {
        if (pc >= region.lo && pc <= region.hi) continue;
        for (const isa::Addr claim_pc : region.claim_pcs) {
          tally->seen.erase(claim_pc);  // cpu left this loop: stream restarts
        }
      }
      const auto claim = claims.find(pc);
      if (claim == claims.end()) return;
      if (const auto prev = tally->seen.find(pc); prev != tally->seen.end()) {
        ++tally->deltas_checked;
        const std::int64_t delta = static_cast<std::int64_t>(addr) -
                                   static_cast<std::int64_t>(prev->second);
        const std::int64_t want =
            claim->second.cls == analysis::AddrClass::kAffine
                ? claim->second.stride
                : 0;
        if (delta != want && tally->contradictions++ == 0) {
          std::ostringstream os;
          os << "scev claim contradicted at pc 0x" << std::hex << pc
             << std::dec << " on cpu " << cpu << ": static "
             << (want == 0 ? "invariant address" : "stride") << " " << want
             << " but observed delta " << delta << " (seed " << c.seed << ", "
             << c.machine_name << ")";
          tally->first_contradiction = os.str();
        }
      }
      tally->seen[pc] = addr;
    });
  }

  rt::Team team(&m, c.threads, engine);
  team.Run(g.entry, [&g](int tid, cpu::RegisterFile& regs) {
    for (const GrInit& init : g.grs) {
      regs.WriteGr(init.reg,
                   init.base + static_cast<std::uint64_t>(tid) * init.per_tid);
    }
    for (const FrInit& init : g.frs) regs.WriteFr(init.reg, init.value);
  });
  SetFailureContext("");

  for (const CpuTally& tally : tallies) {
    result.deltas_checked += tally.deltas_checked;
    result.contradictions += tally.contradictions;
    if (result.first_contradiction.empty()) {
      result.first_contradiction = tally.first_contradiction;
    }
  }
  return result;
}

int VerifyFuzzDeployments(const FuzzCase& c) {
  kgen::Program prog;
  support::Rng rng(c.seed ^ 0x5bf0b5a2d192a3c1ULL);
  (void)Generate(prog, rng, c.threads);

  std::ostringstream ctx;
  ctx << "fuzz patch-verify seed=" << c.seed << " machine=" << c.machine_name
      << " -- rerun just this case with COBRA_FUZZ_SEED=" << c.seed;
  SetFailureContext(ctx.str());

  // Raw-mix cases register no LoopInfo; the kgen-kernel cases contribute
  // their randomly parameterized loops (policy, distance, operation).
  core::TraceCache cache(&prog.image());
  for (const kgen::LoopInfo& loop : prog.loops()) {
    for (const core::OptKind opt :
         {core::OptKind::kNoprefetch, core::OptKind::kPrefetchExcl,
          core::OptKind::kNone}) {
      const int id =
          cache.Deploy({loop.head, loop.back_branch_pc}, opt);
      if (id < 0) continue;  // region gated out before any patching
      // Deploy, Revert, Reapply and the final Revert each run the
      // checking verifier (abort on violation).
      cache.Revert(id);
      cache.Reapply(id);
      cache.Revert(id);
    }
  }
  SetFailureContext("");
  return static_cast<int>(cache.verifications());
}

}  // namespace cobra::verify
