// Online coherence/consistency checker: a decorator around the machine's
// CoherenceFabric that validates every transaction against the active
// protocol's invariants (MESI, MOESI, Dragon or MESIF — taken from the
// attached stacks' CoherencePolicy), plus a golden memory oracle that
// shadows the functional memory in commit order.
//
// The checker sits between the cache stacks and the real fabric (snooping
// bus or NUMA directory): stacks issue requests to the checker, which
// captures the pre-transaction line states of every stack, forwards the
// request, and then asserts that the snoop outcome, the granted state and
// the post-transaction states of all other caches are consistent with what
// it observed. After the requesting memory operation finishes (the line is
// installed), per-line *settled* invariants are re-checked:
//
//   * single-writer / multiple-reader: at most one M/E copy of a line
//     system-wide, and an M/E copy excludes every other copy;
//   * protocol-state: every resident state is legal under the active
//     protocol (no O outside MOESI, no F outside MESIF, ...);
//   * single-owner-of-dirty (MOESI): at most one dirty (M/O/Sm) copy;
//   * exactly-one-forwarder (MESIF): at most one F copy system-wide;
//   * update-delivery / no-stale-copy (Dragon): at most one Sm copy, and
//     every copy surviving a BusUpd is clean-shared (Sc) — an M/E copy
//     coexisting with others means an update broadcast was missed;
//   * protocol-op: invalidation transactions (RFO, upgrade) never appear
//     under an update-based protocol, and BusUpd never appears under an
//     invalidation protocol;
//   * intra-stack lockstep: an L2 copy carries the same coherence state as
//     the L3 copy (inclusion keeps them paired), and L1 presence implies
//     L3 presence;
//   * directory exactness (NUMA only): the home directory's sharer vector
//     is exactly the set of stacks holding the line, and its owner field
//     is exactly the unique *responsible* holder (M/E, plus MOESI's O,
//     MESIF's F, Dragon's Sm), or -1.
//
// The golden oracle is a flat byte array updated by every store at commit
// order. Every load's returned value is diffed against it, and every dirty
// writeback (plus a full sweep at run end) re-checks that the functional
// memory and the oracle agree — any lost or misordered store in a parallel
// engine run shows up as a byte diff.
//
// All violations abort with a diagnostic naming the invariant, the line
// address, every CPU's state and — if SetFailureContext was called (the
// fuzz harness does) — the seed/machine/engine spec needed to replay.
//
// The checker is a pure observer of timing state: enabling it must not
// change a single simulated cycle or counter, only validate them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache_stack.h"
#include "mem/coherence.h"
#include "mem/directory.h"
#include "mem/main_memory.h"
#include "support/simtypes.h"

namespace cobra::verify {

// Process-global replay hint printed by every checker abort (e.g. "fuzz
// seed=17 machine=smp4 engine=parallel:4 — rerun with COBRA_FUZZ_SEED=17").
// Empty clears it.
void SetFailureContext(std::string context);
const std::string& FailureContext();

class CoherenceChecker final : public mem::CoherenceFabric {
 public:
  struct Options {
    // Run the full-system sweep every Nth commit barrier (quantum). The
    // per-transaction and per-op settled checks are always on; the sweep
    // re-validates *every* resident line, which is too expensive to do at
    // every barrier. A final sweep always runs when the engine exits.
    int sweep_every = 7;
  };

  // `inner` is the real fabric; `directory` is the same object when the
  // machine is a NUMA directory fabric (nullptr on the snooping bus).
  // The checker does not own any of them.
  CoherenceChecker(mem::MainMemory* memory, mem::CoherenceFabric* inner,
                   const mem::DirectoryFabric* directory, Options opts);
  CoherenceChecker(mem::MainMemory* memory, mem::CoherenceFabric* inner,
                   const mem::DirectoryFabric* directory)
      : CoherenceChecker(memory, inner, directory, Options{}) {}

  // --- CoherenceFabric (the stacks talk to the checker) ---------------------
  mem::FabricResult Request(CpuId cpu, mem::BusOp op, mem::Addr line_addr,
                            Cycle now) override;
  void AttachStacks(std::vector<mem::CacheStack*> stacks) override;
  void EvictNotify(CpuId cpu, mem::Addr line_addr) override;
  const mem::BusEventCounts& TotalCounts() const override {
    return inner_->TotalCounts();
  }
  const mem::BusEventCounts& CpuCounts(CpuId cpu) const override {
    return inner_->CpuCounts(cpu);
  }
  void ResetCounts() override { inner_->ResetCounts(); }

  // Checkpointing: the blob carries the real fabric's state; the oracle's
  // shadow re-snapshots from the (already restored) functional memory, and
  // the host-side verification counters intentionally start fresh.
  void SaveState(support::StateWriter& w) const override {
    inner_->SaveState(w);
  }
  bool RestoreState(support::StateReader& r) override {
    if (!inner_->RestoreState(r)) return false;
    SyncShadow();
    return true;
  }

  // --- Golden memory oracle (called by cpu::Core at commit order) -----------
  // `value` is the raw value the core observed/wrote (zero-extended for
  // sub-8-byte accesses, the bit pattern for FP accesses).
  void OnLoad(CpuId cpu, mem::Addr addr, int size, std::uint64_t value);
  void OnStore(CpuId cpu, mem::Addr addr, int size, std::uint64_t value);
  // Called at the end of every memory operation: re-checks the settled
  // invariants for each line the operation's fabric traffic touched.
  void OnOpSettled(CpuId cpu);

  // --- Machine integration ---------------------------------------------------
  void OnRunBegin();    // engine starting: snapshot memory into the oracle
  void OnRunEnd();      // engine idle again: full sweep + full memory diff
  void OnRoundTasks();  // commit barrier: throttled full sweep
  void OnResetTiming();

  // --- Direct validation (also used by the fault-injection tests) -----------
  void CheckAll();                            // every resident line + directory
  void CheckLineSettled(mem::Addr line_addr); // one line's settled invariants
  void SyncShadow();                          // re-snapshot functional memory
  // Diffs oracle vs functional memory over [addr, addr+bytes).
  void DiffShadow(mem::Addr addr, std::size_t bytes, const char* what);

  struct Stats {
    std::uint64_t transactions = 0;   // fabric requests checked
    std::uint64_t loads = 0;          // load values diffed against the oracle
    std::uint64_t stores = 0;         // stores applied to the oracle
    std::uint64_t lines_settled = 0;  // per-line settled re-checks
    std::uint64_t sweeps = 0;         // full-system sweeps
  };
  Stats stats() const;

 private:
  [[noreturn]] void Fail(const char* invariant, mem::Addr line_addr,
                         const std::string& detail) const;
  std::string DescribeLine(mem::Addr line_addr) const;
  void Journal(mem::Addr line_addr);

  mem::MainMemory* memory_;
  mem::CoherenceFabric* inner_;
  const mem::DirectoryFabric* dir_;  // nullptr on the snooping bus
  Options opts_;
  std::vector<mem::CacheStack*> stacks_;
  // Active protocol, taken from the attached stacks (MESI until attach).
  const mem::CoherencePolicy* policy_ =
      &mem::CoherencePolicy::For(mem::Protocol::kMesi);
  std::size_t line_bytes_ = 128;
  std::size_t l1_line_bytes_ = 64;

  std::vector<std::uint8_t> shadow_;

  // Lines touched by the in-flight memory operation's fabric traffic.
  // Fabric requests only happen while all other cores are quiescent (the
  // engines serialize commits), so the journal needs no locking; the size
  // is atomic only so worker threads can read "empty" race-free on the
  // core-private fast path.
  static constexpr int kJournalCap = 64;
  std::array<mem::Addr, kJournalCap> journal_{};
  std::atomic<int> journal_size_{0};

  // Per-CPU oracle counters, padded so parallel-engine workers running
  // core-private segments never share a cache line.
  struct alignas(64) PerCpuStats {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
  };
  std::vector<PerCpuStats> per_cpu_;

  std::uint64_t transactions_ = 0;
  std::uint64_t lines_settled_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t barriers_seen_ = 0;
};

}  // namespace cobra::verify
