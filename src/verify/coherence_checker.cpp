#include "verify/coherence_checker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace cobra::verify {

namespace {
std::string& ContextSlot() {
  static std::string context;
  return context;
}
}  // namespace

void SetFailureContext(std::string context) {
  ContextSlot() = std::move(context);
}

const std::string& FailureContext() { return ContextSlot(); }

CoherenceChecker::CoherenceChecker(mem::MainMemory* memory,
                                   mem::CoherenceFabric* inner,
                                   const mem::DirectoryFabric* directory,
                                   Options opts)
    : memory_(memory), inner_(inner), dir_(directory), opts_(opts) {
  COBRA_CHECK(memory != nullptr);
  COBRA_CHECK(inner != nullptr);
  COBRA_CHECK(opts_.sweep_every >= 1);
}

void CoherenceChecker::AttachStacks(std::vector<mem::CacheStack*> stacks) {
  COBRA_CHECK_MSG(stacks.size() <= 32, "sharer bitmask is 32 bits wide");
  stacks_ = stacks;
  per_cpu_.assign(stacks_.size(), PerCpuStats{});
  if (!stacks_.empty()) {
    line_bytes_ = stacks_[0]->config().l2.line_bytes;
    l1_line_bytes_ = stacks_[0]->config().l1.line_bytes;
    policy_ = &stacks_[0]->policy();
  }
  inner_->AttachStacks(std::move(stacks));
}

void CoherenceChecker::SyncShadow() {
  shadow_.resize(memory_->size());
  std::memcpy(shadow_.data(), memory_->raw(), shadow_.size());
}

void CoherenceChecker::Journal(mem::Addr line_addr) {
  const int n = journal_size_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (journal_[static_cast<std::size_t>(i)] == line_addr) return;
  }
  COBRA_CHECK_MSG(n < kJournalCap,
                  "checker journal overflow (memory op never settled?)");
  journal_[static_cast<std::size_t>(n)] = line_addr;
  journal_size_.store(n + 1, std::memory_order_relaxed);
}

std::string CoherenceChecker::DescribeLine(mem::Addr line_addr) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    const mem::Mesi l3 = stacks_[i]->LineState(line_addr);
    out << "cpu" << i << "=" << mem::MesiName(l3);
    if (const auto* l2 = stacks_[i]->l2().Probe(line_addr)) {
      out << "(l2=" << mem::MesiName(l2->state) << ")";
    }
    out << " ";
  }
  if (dir_ != nullptr) {
    if (const auto* e = dir_->Lookup(line_addr)) {
      out << "dir{owner=" << e->owner << " sharers=0x" << std::hex
          << e->sharers << std::dec << "}";
    } else {
      out << "dir{none}";
    }
  }
  return out.str();
}

void CoherenceChecker::Fail(const char* invariant, mem::Addr line_addr,
                            const std::string& detail) const {
  std::fprintf(stderr,
               "[cobra-verify] coherence invariant violated: %s\n"
               "  line 0x%" PRIx64 ": %s\n"
               "  states: %s\n",
               invariant, static_cast<std::uint64_t>(line_addr),
               detail.c_str(), DescribeLine(line_addr).c_str());
  if (!FailureContext().empty()) {
    std::fprintf(stderr, "  replay: %s\n", FailureContext().c_str());
  }
  std::abort();
}

mem::FabricResult CoherenceChecker::Request(CpuId cpu, mem::BusOp op,
                                            mem::Addr line_addr, Cycle now) {
  using mem::BusOp;
  using mem::Mesi;
  using mem::SnoopOutcome;

  const auto mine = stacks_[static_cast<std::size_t>(cpu)];
  const Mesi pre_mine = mine->LineState(line_addr);
  bool any_excl = false;   // M/E elsewhere
  bool any_dirty = false;  // M/O/Sm elsewhere: a snoop would supply HITM
  bool any_copy = false;
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    if (static_cast<CpuId>(i) == cpu) continue;
    const Mesi s = stacks_[i]->LineState(line_addr);
    any_excl |= mem::CohWritable(s);
    any_dirty |= mem::CohDirty(s);
    any_copy |= mem::CohValid(s);
  }

  // Transaction legality: an update-based protocol (Dragon) never issues
  // read-for-ownership or invalidation rounds, and an invalidation
  // protocol never broadcasts updates.
  const bool rfo_op = op == BusOp::kReadExcl || op == BusOp::kReadExclHint ||
                      op == BusOp::kUpgrade;
  if (policy_->update_based() ? rfo_op : op == BusOp::kUpdate) {
    Fail("protocol-op", line_addr,
         std::string("bus op \"") + mem::BusOpName(op) +
             "\" is illegal under protocol " + policy_->name());
  }

  // Requester pre-state: every miss-path transaction (including the
  // writeback of a victim, which Insert has already replaced) starts with
  // the requester holding no copy; an upgrade starts from a shared-class
  // state (S, or MOESI's O / MESIF's F); an update broadcast starts from a
  // Dragon shared copy (Sc/Sm).
  switch (op) {
    case BusOp::kRead:
    case BusOp::kReadExcl:
    case BusOp::kReadExclHint:
      if (pre_mine != Mesi::kI) {
        Fail("requester-state", line_addr,
             "miss-path request for a line the requester still holds");
      }
      break;
    case BusOp::kUpgrade:
      if (!mem::CohValid(pre_mine) || mem::CohWritable(pre_mine)) {
        Fail("requester-state", line_addr,
             "upgrade request from a line not held in a shared-class "
             "state");
      }
      if (any_excl) {
        Fail("single-writer", line_addr,
             "requester holds the line shared while it is "
             "Exclusive/Modified elsewhere");
      }
      break;
    case BusOp::kUpdate:
      if (pre_mine != Mesi::kSc && pre_mine != Mesi::kSm) {
        Fail("requester-state", line_addr,
             "update broadcast from a line the requester does not hold "
             "shared (Sc/Sm)");
      }
      if (any_excl) {
        Fail("update-delivery", line_addr,
             "update broadcast while the line is Exclusive/Modified "
             "elsewhere");
      }
      break;
    case BusOp::kWriteback:
      if (pre_mine != Mesi::kI) {
        Fail("requester-state", line_addr,
             "writeback of a line still resident in the requester");
      }
      // MESI/MESIF write back only M victims, which exclude every other
      // copy. MOESI's O and Dragon's Sm victims legitimately leave S/Sc
      // copies behind — but never another dirty or exclusive copy.
      if (policy_->dirty_share_on_read() ? (any_excl || any_dirty)
                                         : any_copy) {
        Fail("single-owner-of-dirty", line_addr,
             "writeback of a dirty victim while an incompatible copy "
             "survives elsewhere");
      }
      // A dirty victim leaving the caches must carry exactly the bytes the
      // commit-order store sequence produced.
      DiffShadow(line_addr, line_bytes_, "dirty-victim writeback");
      break;
  }

  const mem::FabricResult r = inner_->Request(cpu, op, line_addr, now);
  ++transactions_;

  // Snoop outcome and granted state must match the pre-transaction states
  // the checker just observed. The rules below hold for both fabrics; the
  // one place they legitimately differ (an honoured exclusive-prefetch
  // hint over clean remote copies reports kHit on the bus but kMiss from
  // the directory) is asserted only as far as both agree.
  const Mesi shared_grant = policy_->read_grant_shared();
  switch (op) {
    case BusOp::kRead:
      if (any_dirty) {
        if (r.snoop != SnoopOutcome::kHitM || r.grant != shared_grant) {
          Fail("snoop-response", line_addr,
               "read with a dirty copy elsewhere must report HITM and "
               "grant the protocol's shared state");
        }
      } else if (any_copy) {
        if (r.snoop != SnoopOutcome::kHit || r.grant != shared_grant) {
          Fail("snoop-response", line_addr,
               "read with clean copies elsewhere must report HIT and grant "
               "the protocol's shared state");
        }
      } else if (r.snoop != SnoopOutcome::kMiss || r.grant != Mesi::kE) {
        Fail("snoop-response", line_addr,
             "read of an uncached line must report MISS and grant "
             "Exclusive");
      }
      break;
    case BusOp::kReadExcl:
      if (r.grant != Mesi::kE) {
        Fail("fabric-grant", line_addr,
             "read-for-ownership must grant Exclusive");
      }
      if (r.snoop != (any_dirty ? SnoopOutcome::kHitM : SnoopOutcome::kMiss)) {
        Fail("snoop-response", line_addr,
             "read-for-ownership snoop outcome inconsistent with remote "
             "dirty state");
      }
      break;
    case BusOp::kReadExclHint:
      if (any_dirty) {
        // Hint not honoured: degrades to a read, owner downgrades.
        if (r.snoop != SnoopOutcome::kHitM || r.grant != shared_grant) {
          Fail("snoop-response", line_addr,
               "exclusive-prefetch hint against a dirty remote line must "
               "degrade to a shared read reporting HITM");
        }
      } else {
        if (r.grant != Mesi::kE) {
          Fail("fabric-grant", line_addr,
               "honoured exclusive-prefetch hint must grant Exclusive");
        }
        if (r.snoop == SnoopOutcome::kHitM) {
          Fail("snoop-response", line_addr,
               "exclusive-prefetch hint reported HITM with no dirty copy");
        }
        if (!any_copy && r.snoop != SnoopOutcome::kMiss) {
          Fail("snoop-response", line_addr,
               "exclusive-prefetch hint of an uncached line must report "
               "MISS");
        }
      }
      break;
    case BusOp::kUpgrade:
      if (r.grant != Mesi::kE) {
        Fail("fabric-grant", line_addr, "upgrade must grant Exclusive");
      }
      // MOESI may retire a dirty-shared (O) copy in the invalidation
      // round — that reports HITM. With no dirty copy out there, HITM
      // would mean the requester held shared next to a Modified line.
      if ((r.snoop == SnoopOutcome::kHitM) != any_dirty) {
        Fail("snoop-response", line_addr,
             "upgrade snoop outcome inconsistent with remote dirty state");
      }
      break;
    case BusOp::kUpdate:
      if (r.grant != (any_copy ? Mesi::kSm : Mesi::kM)) {
        Fail("update-delivery", line_addr,
             "update broadcast must grant Sm while other copies remain "
             "and M once the updater holds the last copy");
      }
      if (r.snoop != (any_copy ? SnoopOutcome::kHit : SnoopOutcome::kMiss)) {
        Fail("snoop-response", line_addr,
             "update broadcast snoop outcome inconsistent with remote "
             "copies");
      }
      break;
    case BusOp::kWriteback:
      break;
  }

  // Post-transaction states of the *other* stacks (the requester installs
  // its copy only after this returns; its line settles via OnOpSettled).
  if (op != BusOp::kWriteback) {
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      if (static_cast<CpuId>(i) == cpu) continue;
      const Mesi post = stacks_[i]->LineState(line_addr);
      if (mem::CohWritable(r.grant) && post != Mesi::kI) {
        // kE from an RFO/upgrade, or kM from a last-copy update: the
        // requester was promised sole ownership.
        Fail("fabric-grant", line_addr,
             "exclusive ownership granted but another cache still holds "
             "the line");
      }
      if (!mem::CohWritable(r.grant) && mem::CohWritable(post)) {
        Fail("fabric-grant", line_addr,
             "shared state granted but another cache still holds the line "
             "exclusively");
      }
      if (op == BusOp::kUpdate && mem::CohValid(post) &&
          post != Mesi::kSc) {
        Fail("update-delivery", line_addr,
             "a remote copy survived an update broadcast in a state other "
             "than clean-shared (Sc)");
      }
    }
  }

  Journal(line_addr);
  return r;
}

void CoherenceChecker::EvictNotify(CpuId cpu, mem::Addr line_addr) {
  if (stacks_[static_cast<std::size_t>(cpu)]->LineState(line_addr) !=
      mem::Mesi::kI) {
    Fail("requester-state", line_addr,
         "clean-eviction notice for a line still resident in the evictor");
  }
  inner_->EvictNotify(cpu, line_addr);
  if (dir_ != nullptr) {
    if (const auto* e = dir_->Lookup(line_addr)) {
      if ((e->sharers & (1u << cpu)) != 0 || e->owner == cpu) {
        Fail("directory-stale-entry", line_addr,
             "directory still names an evictor that notified its clean "
             "eviction");
      }
    }
  }
  Journal(line_addr);
}

void CoherenceChecker::OnLoad(CpuId cpu, mem::Addr addr, int size,
                              std::uint64_t value) {
  COBRA_CHECK(addr + static_cast<mem::Addr>(size) <= shadow_.size());
  std::uint64_t oracle = 0;
  std::memcpy(&oracle, shadow_.data() + addr, static_cast<std::size_t>(size));
  if (value != oracle) {
    std::ostringstream detail;
    detail << "cpu" << cpu << " load of " << size << " bytes at 0x" << std::hex
           << addr << " returned 0x" << value
           << " but the sequentially-consistent oracle holds 0x" << oracle;
    Fail("golden-memory", addr & ~(line_bytes_ - 1), detail.str());
  }
  ++per_cpu_[static_cast<std::size_t>(cpu)].loads;
}

void CoherenceChecker::OnStore(CpuId cpu, mem::Addr addr, int size,
                               std::uint64_t value) {
  COBRA_CHECK(addr + static_cast<mem::Addr>(size) <= shadow_.size());
  std::memcpy(shadow_.data() + addr, &value, static_cast<std::size_t>(size));
  ++per_cpu_[static_cast<std::size_t>(cpu)].stores;
}

void CoherenceChecker::OnOpSettled(CpuId cpu) {
  (void)cpu;
  const int n = journal_size_.load(std::memory_order_relaxed);
  if (n == 0) return;  // core-private op: no fabric traffic to settle
  for (int i = 0; i < n; ++i) {
    CheckLineSettled(journal_[static_cast<std::size_t>(i)]);
  }
  journal_size_.store(0, std::memory_order_relaxed);
}

void CoherenceChecker::CheckLineSettled(mem::Addr line_addr) {
  using mem::Mesi;
  ++lines_settled_;

  int owners = 0;        // M/E holders
  int dirty_owners = 0;  // M/O/Sm holders (copies newer than memory)
  int forwarders = 0;    // MESIF F holders
  int sm_copies = 0;     // Dragon Sm holders
  // The *responsible* copy: the one the fabric forwards requests to and
  // that (when dirty) owes memory the writeback — M/E plus O/F/Sm.
  int responsible = -1;
  int responsibles = 0;
  int valid_copies = 0;
  std::uint32_t holder_mask = 0;
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    const mem::CacheStack& stack = *stacks_[i];
    const Mesi l3 = stack.LineState(line_addr);
    if (!policy_->LegalState(l3)) {
      std::ostringstream detail;
      detail << "cpu" << i << " holds state " << mem::CohStateName(l3)
             << ", which does not exist under protocol " << policy_->name();
      Fail("protocol-state", line_addr, detail.str());
    }
    if (mem::CohWritable(l3)) ++owners;
    if (mem::CohDirty(l3)) ++dirty_owners;
    if (l3 == Mesi::kF) ++forwarders;
    if (l3 == Mesi::kSm) ++sm_copies;
    if (mem::CohWritable(l3) || l3 == Mesi::kO || l3 == Mesi::kF ||
        l3 == Mesi::kSm) {
      ++responsibles;
      responsible = static_cast<int>(i);
    }
    if (mem::CohValid(l3)) {
      ++valid_copies;
      holder_mask |= 1u << i;
    }

    // Intra-stack lockstep: an L2 copy mirrors the L3 state (inclusion
    // keeps the pair in sync), and L1 presence implies an L3 copy.
    if (const auto* l2 = stack.l2().Probe(line_addr)) {
      if (l2->state != l3) {
        std::ostringstream detail;
        detail << "cpu" << i << " holds L2=" << mem::MesiName(l2->state)
               << " but L3=" << mem::MesiName(l3);
        Fail("cache-lockstep", line_addr, detail.str());
      }
    }
    for (mem::Addr sub = line_addr; sub < line_addr + line_bytes_;
         sub += l1_line_bytes_) {
      if (stack.PresentInL1(sub) && l3 == Mesi::kI) {
        std::ostringstream detail;
        detail << "cpu" << i << " holds 0x" << std::hex << sub
               << " in L1 without an L3 copy of its coherence line";
        Fail("l1-inclusion", line_addr, detail.str());
      }
    }
  }

  if (owners > 1) {
    Fail("single-writer", line_addr,
         "more than one cache holds the line Exclusive/Modified");
  }
  if (owners == 1 && valid_copies > 1) {
    // Under Dragon this is specifically a missed update: a writer may hold
    // M/E only while it owns the sole copy, otherwise every store must
    // have been broadcast to the other holders.
    Fail(policy_->update_based() ? "no-stale-copy" : "single-writer",
         line_addr, "an Exclusive/Modified copy coexists with other copies");
  }
  if (sm_copies > 1) {
    Fail("update-delivery", line_addr,
         "more than one cache holds the line Sm (two writers both believe "
         "they own the dirty shared copy)");
  }
  if (dirty_owners > 1) {
    Fail("single-owner-of-dirty", line_addr,
         "more than one cache holds a dirty (M/O/Sm) copy of the line");
  }
  if (forwarders > 1) {
    Fail("exactly-one-forwarder", line_addr,
         "more than one cache holds the line in Forward state");
  }

  if (dir_ != nullptr) {
    const auto* e = dir_->Lookup(line_addr);
    const int expect_owner = responsibles == 1 ? responsible : -1;
    if (holder_mask == 0) {
      if (e != nullptr && (e->sharers != 0 || e->owner >= 0)) {
        Fail("directory-stale-entry", line_addr,
             "directory entry survives with no cache holding the line");
      }
    } else {
      if (e == nullptr) {
        Fail("directory-sharers", line_addr,
             "cached line has no home-directory entry");
      }
      if (e->sharers != holder_mask) {
        std::ostringstream detail;
        detail << "directory sharer vector 0x" << std::hex << e->sharers
               << " != caches actually holding the line 0x" << holder_mask;
        Fail("directory-sharers", line_addr, detail.str());
      }
      if (e->owner != expect_owner) {
        std::ostringstream detail;
        detail << "directory owner " << e->owner
               << " != actual responsible (M/E/O/F/Sm) holder "
               << expect_owner;
        Fail("directory-owner", line_addr, detail.str());
      }
    }
  }
}

void CoherenceChecker::DiffShadow(mem::Addr addr, std::size_t bytes,
                                  const char* what) {
  if (shadow_.empty()) return;  // no snapshot yet (no engine run started)
  const mem::Addr end =
      std::min<mem::Addr>(addr + bytes, static_cast<mem::Addr>(shadow_.size()));
  const std::uint8_t* real = memory_->raw();
  for (mem::Addr a = addr; a < end; ++a) {
    if (shadow_[a] != real[a]) {
      std::ostringstream detail;
      detail << what << ": functional memory byte at 0x" << std::hex << a
             << " is 0x" << static_cast<int>(real[a])
             << " but the sequentially-consistent oracle holds 0x"
             << static_cast<int>(shadow_[a]);
      Fail("golden-memory", addr & ~(line_bytes_ - 1), detail.str());
    }
  }
}

void CoherenceChecker::CheckAll() {
  ++sweeps_;

  // Settle every line resident in any L3 and every line the directory
  // still tracks; CheckLineSettled cross-references all stacks and the
  // directory for each, so stale directory entries surface too.
  std::vector<mem::Addr> lines;
  for (const mem::CacheStack* stack : stacks_) {
    stack->l3().ForEachValid(
        [&lines](const mem::CacheArray::Line& line) {
          lines.push_back(line.line_addr);
        });
    // Inner levels must never hold a line the L3 lost (inclusion).
    stack->l2().ForEachValid([&lines](const mem::CacheArray::Line& line) {
      lines.push_back(line.line_addr);
    });
  }
  if (dir_ != nullptr) {
    dir_->ForEachEntry(
        [&lines](mem::Addr line_addr, const mem::DirectoryFabric::Entry&) {
          lines.push_back(line_addr);
        });
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const mem::Addr line : lines) CheckLineSettled(line);
}

void CoherenceChecker::OnRunBegin() { SyncShadow(); }

void CoherenceChecker::OnRunEnd() {
  CheckAll();
  DiffShadow(0, shadow_.size(), "end-of-run memory sweep");
}

void CoherenceChecker::OnRoundTasks() {
  if (++barriers_seen_ % static_cast<std::uint64_t>(opts_.sweep_every) == 0) {
    CheckAll();
  }
}

void CoherenceChecker::OnResetTiming() {
  journal_size_.store(0, std::memory_order_relaxed);
}

CoherenceChecker::Stats CoherenceChecker::stats() const {
  Stats s;
  s.transactions = transactions_;
  s.lines_settled = lines_settled_;
  s.sweeps = sweeps_;
  for (const PerCpuStats& pc : per_cpu_) {
    s.loads += pc.loads;
    s.stores += pc.stores;
  }
  return s;
}

}  // namespace cobra::verify
