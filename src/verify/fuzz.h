// Deterministic coherence fuzzer: seeded random programs stressed under
// the coherence checker.
//
// Each seed expands into one generated workload — either a raw memory-op
// mix assembled instruction by instruction (per-thread store streams on
// false-sharing-prone offsets, shared read-only streams, ld.bias loads,
// lfetch/lfetch.excl streams roving over other threads' written lines) or
// a randomly-parameterized kgen kernel (stream loops, reductions with
// adjacent partial-sum slots, int32 fills/accumulates with chunk-boundary
// sharing). The case runs on a machine with the CoherenceChecker enabled
// and returns a fingerprint of everything observable (final timing state,
// per-CPU cache/coherence counters, a hash of the data segment), so the
// harness can assert serial ≡ parallel exactly like tests/engine_test.cpp.
//
// Replaying a failure: every checker abort prints the case's seed and
// machine/engine spec (via SetFailureContext); COBRA_FUZZ_SEED=<n> makes
// the test harness and the cobra_fuzz tool run just that seed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"

namespace cobra::verify {

struct FuzzCase {
  std::uint64_t seed = 0;
  std::string machine_name;  // printed in the replay hint ("smp4", "numa8")
  machine::MachineConfig machine;
  int threads = 4;
};

// Canned machine shapes for fuzzing: the Section 5.1 hosts with a small
// memory and the coherence checker enabled.
FuzzCase SmpFuzzCase(std::uint64_t seed);
FuzzCase NumaFuzzCase(std::uint64_t seed);

// Re-targets a canned case at a coherence protocol: same seed, same
// generated program, same machine shape, but the fabric speaks `protocol`
// (and the replay hint says so). The architectural outcome of a case —
// the final memory image — must not depend on the protocol; only timing
// and traffic counters may differ.
FuzzCase WithProtocol(FuzzCase c, mem::Protocol protocol);

// Extracts the "memhash=..." final-memory-image line from a RunFuzzCase
// fingerprint (for cross-protocol equality checks, where the full
// fingerprint legitimately differs).
std::string MemoryImageOf(const std::string& fingerprint);

// Renders an engine config the way ParseEngineSpec accepts it
// ("parallel:4@1024").
std::string FormatEngine(const machine::EngineConfig& engine);

// Regenerates a case's seeded binary into `prog` without running it, for
// static tooling (cobra_lint --fuzz): the returned (name, entry) pairs
// cover every entry point to lint. Kgen-kernel cases register their
// kernels with the program; a raw memory-op mix registers none, so its
// hand-assembled entry is reported as "fuzz_raw_mix".
std::vector<std::pair<std::string, isa::Addr>> BuildFuzzProgram(
    const FuzzCase& c, kgen::Program& prog);

// Generates the seeded program, runs it to completion under `engine` with
// the checker validating every transaction, and returns the fingerprint.
// Any invariant violation aborts the process with the replay hint.
std::string RunFuzzCase(const FuzzCase& c, const machine::EngineConfig& engine);

// Patch-safety sweep for the same seeded program (COBRA_VERIFY=1 in the
// fuzz harness): regenerates the case, deploys every emitted loop region
// under each optimization kind, and exercises the rollback/re-apply cycle.
// Each step runs the patch-safety verifier; a violation (a false positive,
// since the trace cache itself produced the patches) aborts with the
// replay hint. Returns the number of verifier passes.
int VerifyFuzzDeployments(const FuzzCase& c);

// Differential validation of the scalar-evolution pass (ISSUE 8): solves
// every loop of the seeded program statically, then re-runs the workload
// with a per-core memory observer and checks each affine / loop-invariant
// address claim against the observed per-(cpu, pc) address stream —
// consecutive in-loop accesses must advance by exactly the static stride
// (or not at all, for invariant claims). A memory op outside the loop
// region resets that cpu's streams for the region (the thread left the
// loop; the next visit restarts the chrec from a fresh base).
struct ScevSoundnessResult {
  std::uint64_t loops_solved = 0;   // solved loops across the case
  std::uint64_t claims = 0;         // affine/invariant accesses claimed
  std::uint64_t deltas_checked = 0; // consecutive-access comparisons made
  std::uint64_t contradictions = 0; // observed deltas off the claim
  std::string first_contradiction;  // human-readable detail (empty if none)
};
ScevSoundnessResult CheckScevSoundness(const FuzzCase& c,
                                       const machine::EngineConfig& engine);

// Differential validation of the strategy-selection engines (cobra_fuzz
// --planner): runs the seeded workload twice under an attached
// CobraRuntime with an eager deterministic config — once per planner kind
// (per-loop heuristic / cost-model planner) — and returns both
// fingerprints plus the patch activity of each run. The planner only
// chooses *which* semantics-preserving patches go live, so the final
// memory images (MemoryImageOf) must be bit-identical; the caller asserts
// that. Every deploy/revert in both runs passes through the patch-safety
// verifier, which aborts on any violation (a false positive, since the
// trace cache produced the patches itself).
struct PlannerCrossCheck {
  std::string heuristic_fingerprint;
  std::string cost_fingerprint;
  std::uint64_t heuristic_deployments = 0;
  std::uint64_t cost_deployments = 0;
  std::uint64_t cost_candidates = 0;  // (loop, kind) pairs the planner scored
  std::uint64_t verifier_passes = 0;  // patch-safety verifier, both runs
};
PlannerCrossCheck RunFuzzCaseWithPlanner(const FuzzCase& c,
                                         const machine::EngineConfig& engine);

// Live-patching variant of RunFuzzCase: runs the seeded workload once over
// the original binary, then interleaves trace-cache deploy / revert /
// re-apply cycles (every emitted loop × every optimization kind) with full
// re-executions of the workload, and returns the final fingerprint. Every
// re-execution fetches through slots the preceding patch rewrote, so this
// is the harness that proves the per-slot exec-plan cache is invalidated
// correctly by live patching: with the cache disabled
// (isa::BinaryImage::TestOnlySetPlanCacheEnabled(false)) the fingerprint
// must be bit-identical to the cached run.
std::string RunFuzzCaseWithDeployments(const FuzzCase& c,
                                       const machine::EngineConfig& engine);

}  // namespace cobra::verify
