// The two binary optimizations of Section 4, applied as bit-level patches
// over a bundle range (normally a trace-cache copy of a hot loop):
//
//   * noprefetch — selectively reduces prefetch aggressiveness: every
//     lfetch in the range is rewritten to a nop (or to the equivalent
//     address-increment when the lfetch carried a post-increment);
//   * prefetch.excl — sets the .excl hint bit on every lfetch in the
//     range, so prefetched lines are requested in Exclusive state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image.h"

namespace cobra::core {

enum class OptKind : std::uint8_t {
  kNone,            // deploy the trace unmodified (measurement baseline)
  kNoprefetch,
  kPrefetchExcl,
  kInsertPrefetch,  // ADORE-style insertion (see insertion.h); the slot
                    // rewriting itself is driven by the controller, which
                    // owns the DEAR stride profiles
};

const char* OptKindName(OptKind kind);

// Returns the pcs of all lfetch slots in [begin_bundle, end_bundle].
std::vector<isa::Addr> FindLfetches(const isa::BinaryImage& image,
                                    isa::Addr begin_bundle,
                                    isa::Addr end_bundle);

// Applies the optimization to every lfetch in the bundle range; returns the
// number of rewritten slots.
int ApplyOptimization(isa::BinaryImage& image, isa::Addr begin_bundle,
                      isa::Addr end_bundle, OptKind kind);

// Selective form: patches exactly the given lfetch slots.
int ApplyOptimizationAt(isa::BinaryImage& image,
                        const std::vector<isa::Addr>& lfetch_pcs,
                        OptKind kind);

}  // namespace cobra::core
