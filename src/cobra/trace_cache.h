// Trace cache and code deployment (Section 3's trace management).
//
// Optimized binary traces are materialized in a code-cache region appended
// to the program image — the same address space as the running binary, as
// in the paper — and the original code is patched to redirect into them:
// the loop's head bundle is replaced by a long branch (brl) to the trace
// copy. Because the copy preserves bundle distances, every in-region
// relative branch (in particular the loop back-edge) remains correct
// without fixups; a trailing brl returns to the original fall-through.
//
// Deployments are reversible: the saved head bundle can be restored
// (rollback), and re-applied later — the mechanism behind COBRA's
// *continuous re-adaptation*.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/verifier.h"
#include "cobra/optimizer.h"
#include "isa/image.h"

namespace cobra::core {

// A loop region in the original binary: bundles [head, back_branch].
struct LoopRegion {
  isa::Addr head = 0;
  isa::Addr back_branch_pc = 0;
};

class TraceCache {
 public:
  explicit TraceCache(isa::BinaryImage* image);

  struct Deployment {
    int id = -1;
    LoopRegion loop;
    isa::Addr trace_head = 0;
    OptKind opt = OptKind::kNone;
    int lfetches_rewritten = 0;
    bool active = false;
  };

  // Builds an optimized trace for `loop` and redirects the original code
  // into it. Returns the deployment id, or -1 if the region fails the CFG
  // region oracle (analysis::CheckLoopRegion), is not safely relocatable,
  // or is already deployed/inside the code cache. Every successful
  // deployment is re-verified by the patch-safety verifier; a
  // non-whitelisted binary delta aborts the process.
  int Deploy(const LoopRegion& loop, OptKind opt);

  // Restores the original head bundle (trace retained for Reapply).
  void Revert(int id);
  // Re-patches the head bundle of a reverted deployment.
  void Reapply(int id);

  // Diffs the deployment's trace (and head-bundle state) against the
  // original region. Pure query: reports, never aborts.
  analysis::PatchReport VerifyDeployment(int id) const;
  // VerifyDeployment + abort on violation; counts toward verifications().
  // Called internally after Deploy/Revert/Reapply, and by the controller
  // after it edits a trace in place (prefetch insertion).
  analysis::PatchReport CheckDeployment(int id);
  std::uint64_t verifications() const { return verifications_; }

  // Deployment covering `head`, or nullptr.
  const Deployment* FindByHead(isa::Addr head) const;
  const Deployment* Get(int id) const;

  const std::vector<Deployment>& deployments() const { return deployments_; }
  std::uint64_t traces_built() const { return traces_built_; }
  std::uint64_t redirects_active() const { return redirects_active_; }

  // Checkpointing: bookkeeping only. The trace bundles and head redirects
  // live in the BinaryImage, which restores its own bits — restoring this
  // state never re-patches anything.
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

 private:
  bool RegionIsRelocatable(const LoopRegion& loop) const;

  isa::BinaryImage* image_;
  std::vector<Deployment> deployments_;
  std::map<isa::Addr, std::array<isa::EncodedSlot, 3>> saved_bundles_;
  std::uint64_t traces_built_ = 0;
  std::uint64_t redirects_active_ = 0;
  std::uint64_t verifications_ = 0;
};

}  // namespace cobra::core
