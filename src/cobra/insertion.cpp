#include "cobra/insertion.h"

#include <algorithm>
#include <cstdlib>

#include "support/check.h"

namespace cobra::core {

namespace {

// Registers an instruction references, conservatively: every register
// field is reported whether it names a GR, FR or PR — a scavenged scratch
// register must avoid all of them.
void CollectRegisterFields(const isa::Instruction& inst, bool* used) {
  used[inst.r1] = true;
  used[inst.r2] = true;
  used[inst.r3] = true;
  used[inst.extra] = true;
}

}  // namespace

std::optional<int> FindFreeScratchGr(const isa::BinaryImage& image,
                                     isa::Addr begin_bundle,
                                     isa::Addr end_bundle) {
  bool used[128] = {};
  for (isa::Addr bundle = isa::BundleAddr(begin_bundle);
       bundle <= isa::BundleAddr(end_bundle); bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      CollectRegisterFields(image.Fetch(isa::MakePc(bundle, slot)), used);
    }
  }
  for (int reg = 8; reg <= 31; ++reg) {
    if (!used[reg]) return reg;
  }
  return std::nullopt;
}

std::vector<isa::Addr> FindNopSlots(const isa::BinaryImage& image,
                                    isa::Addr begin_bundle,
                                    isa::Addr end_bundle) {
  std::vector<isa::Addr> slots;
  for (isa::Addr bundle = isa::BundleAddr(begin_bundle);
       bundle <= isa::BundleAddr(end_bundle); bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(bundle, slot);
      if (image.Fetch(pc).op == isa::Opcode::kNop) slots.push_back(pc);
    }
  }
  return slots;
}

int InsertPrefetches(isa::BinaryImage& image, isa::Addr begin_bundle,
                     isa::Addr end_bundle,
                     const std::vector<InsertionCandidate>& candidates,
                     int target_distance_bytes) {
  std::vector<isa::Addr> nops =
      FindNopSlots(image, begin_bundle, end_bundle);
  int inserted = 0;

  for (const InsertionCandidate& candidate : candidates) {
    if (candidate.stride == 0) continue;
    if (nops.size() < 2) break;

    const isa::Instruction load = image.Fetch(candidate.load_pc);
    if (load.op != isa::Opcode::kLd && load.op != isa::Opcode::kLdf) continue;

    // One scavenged register per insertion (re-scan so earlier insertions'
    // scratch registers are seen as used).
    const std::optional<int> scratch =
        FindFreeScratchGr(image, begin_bundle, end_bundle);
    if (!scratch.has_value()) break;

    // Address-computation slot must precede the lfetch slot in program
    // order so the lfetch sees this iteration's address.
    const isa::Addr add_pc = nops[0];
    const isa::Addr lfetch_pc = nops[1];
    nops.erase(nops.begin(), nops.begin() + 2);

    // Prefetch `iterations_ahead` iterations forward, covering roughly the
    // requested distance (at least one stride ahead).
    const std::int64_t stride = candidate.stride;
    const std::int64_t ahead = std::max<std::int64_t>(
        1, target_distance_bytes / std::max<std::int64_t>(1, std::abs(stride)));
    const std::int64_t distance = stride * ahead;

    isa::Instruction add = isa::AddImm(*scratch, load.r2, distance);
    add.qp = load.qp;  // fire exactly when the load's pipeline stage does
    isa::Instruction lfetch = isa::Lfetch(*scratch);
    lfetch.qp = load.qp;
    lfetch.unit = isa::Unit::kM;
    image.Patch(add_pc, add);
    image.Patch(lfetch_pc, lfetch);
    ++inserted;
  }
  return inserted;
}

}  // namespace cobra::core
