#include "cobra/insertion.h"

#include <algorithm>
#include <cstdlib>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "support/check.h"

namespace cobra::core {

namespace {

// Registers an instruction references, conservatively: every register
// field is reported whether it names a GR, FR or PR — a scavenged scratch
// register must avoid all of them.
void CollectRegisterFields(const isa::Instruction& inst, bool* used) {
  used[inst.r1] = true;
  used[inst.r2] = true;
  used[inst.r3] = true;
  used[inst.extra] = true;
}

// All scavengeable registers, in ascending order: r in 8..31 with no
// live-in or live-out occurrence at any slot of [begin, end] under
// non-prefetch liveness.
std::vector<int> FreeScratchGrs(const isa::BinaryImage& image,
                                isa::Addr begin_bundle,
                                isa::Addr end_bundle) {
  const isa::Addr begin = isa::BundleAddr(begin_bundle);
  const isa::Addr end = isa::BundleAddr(end_bundle);
  const analysis::Cfg cfg = analysis::Cfg::Build(image, begin);
  analysis::LivenessOptions opts;
  opts.exclude_lfetch_base_uses = true;
  const analysis::Liveness live = analysis::Liveness::Compute(cfg, opts);

  bool live_somewhere[32] = {};
  for (isa::Addr bundle = begin; bundle <= end;
       bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(bundle, slot);
      const analysis::RegSet& in = live.LiveIn(pc);
      const analysis::RegSet& out = live.LiveOut(pc);
      for (int reg = 8; reg <= 31; ++reg) {
        if (in.HasGr(reg) || out.HasGr(reg)) live_somewhere[reg] = true;
      }
    }
  }
  std::vector<int> free;
  for (int reg = 8; reg <= 31; ++reg) {
    if (!live_somewhere[reg]) free.push_back(reg);
  }
  return free;
}

// Whether any slot strictly between `from_pc` and `to_pc` (linear program
// order) may write `reg` — a clobber that would corrupt the prefetch
// address the planted add just computed.
bool GrDefBetween(const isa::BinaryImage& image, isa::Addr from_pc,
                  isa::Addr to_pc, int reg) {
  isa::Addr pc = from_pc;
  for (;;) {
    const unsigned slot = isa::SlotOf(pc);
    pc = slot < 2 ? isa::MakePc(isa::BundleAddr(pc), slot + 1)
                  : isa::BundleAddr(pc) + isa::kBundleBytes;
    if (pc >= to_pc || !image.Contains(pc)) return false;
    if (analysis::EffectsOf(image.Fetch(pc)).def.HasGr(reg)) return true;
  }
}

}  // namespace

std::optional<int> FindFreeScratchGr(const isa::BinaryImage& image,
                                     isa::Addr begin_bundle,
                                     isa::Addr end_bundle) {
  const std::vector<int> free = FreeScratchGrs(image, begin_bundle, end_bundle);
  if (free.empty()) return std::nullopt;
  return free.front();
}

std::optional<int> FindFreeScratchGrConservative(const isa::BinaryImage& image,
                                                 isa::Addr begin_bundle,
                                                 isa::Addr end_bundle) {
  bool used[128] = {};
  for (isa::Addr bundle = isa::BundleAddr(begin_bundle);
       bundle <= isa::BundleAddr(end_bundle); bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      CollectRegisterFields(image.Fetch(isa::MakePc(bundle, slot)), used);
    }
  }
  for (int reg = 8; reg <= 31; ++reg) {
    if (!used[reg]) return reg;
  }
  return std::nullopt;
}

std::vector<isa::Addr> FindNopSlots(const isa::BinaryImage& image,
                                    isa::Addr begin_bundle,
                                    isa::Addr end_bundle) {
  std::vector<isa::Addr> slots;
  for (isa::Addr bundle = isa::BundleAddr(begin_bundle);
       bundle <= isa::BundleAddr(end_bundle); bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(bundle, slot);
      if (image.Fetch(pc).op == isa::Opcode::kNop) slots.push_back(pc);
    }
  }
  return slots;
}

int InsertPrefetches(isa::BinaryImage& image, isa::Addr begin_bundle,
                     isa::Addr end_bundle,
                     const std::vector<InsertionCandidate>& candidates,
                     int target_distance_bytes) {
  std::vector<isa::Addr> nops =
      FindNopSlots(image, begin_bundle, end_bundle);
  // One liveness pass serves every candidate: the pairs planted below keep
  // their scratch registers out of the non-prefetch-live set (the only new
  // reads are lfetch address reads), so the free list stays valid — each
  // insertion just consumes one entry.
  std::vector<int> free = FreeScratchGrs(image, begin_bundle, end_bundle);
  int inserted = 0;

  for (const InsertionCandidate& candidate : candidates) {
    if (candidate.stride == 0) continue;
    if (nops.size() < 2) break;
    if (free.empty()) break;

    const isa::Instruction load = image.Fetch(candidate.load_pc);
    if (load.op != isa::Opcode::kLd && load.op != isa::Opcode::kLdf) continue;

    // Address-computation slot must precede the lfetch slot in program
    // order so the lfetch sees this iteration's address.
    const isa::Addr add_pc = nops[0];
    const isa::Addr lfetch_pc = nops[1];

    // A dead register may still be written by the original code (a dead
    // def); such a write between our two slots would clobber the computed
    // address, so pick a scratch with no def in the window.
    const auto scratch_it =
        std::find_if(free.begin(), free.end(), [&](int reg) {
          return !GrDefBetween(image, add_pc, lfetch_pc, reg);
        });
    if (scratch_it == free.end()) break;
    const int scratch = *scratch_it;
    free.erase(scratch_it);
    nops.erase(nops.begin(), nops.begin() + 2);

    // Prefetch `iterations_ahead` iterations forward, covering roughly the
    // requested distance (at least one stride ahead).
    const std::int64_t stride = candidate.stride;
    const std::int64_t ahead = std::max<std::int64_t>(
        1, target_distance_bytes / std::max<std::int64_t>(1, std::abs(stride)));
    const std::int64_t distance = stride * ahead;

    isa::Instruction add = isa::AddImm(scratch, load.r2, distance);
    add.qp = load.qp;  // fire exactly when the load's pipeline stage does
    isa::Instruction lfetch = isa::Lfetch(scratch);
    lfetch.qp = load.qp;
    lfetch.unit = isa::Unit::kM;
    image.Patch(add_pc, add);
    image.Patch(lfetch_pc, lfetch);
    ++inserted;
  }
  return inserted;
}

PriorVerdict ArbitrateStaticPrior(const analysis::LoopScev& scev,
                                  isa::Addr load_pc,
                                  std::int64_t dynamic_stride) {
  if (!scev.solved) return PriorVerdict::kNoPrior;
  const analysis::MemAccess* access = scev.AccessAt(load_pc);
  if (access == nullptr) return PriorVerdict::kNoPrior;
  switch (access->cls) {
    case analysis::AddrClass::kUnknown:
      return PriorVerdict::kNoPrior;
    case analysis::AddrClass::kInvariant:
      // The address provably never moves: whatever DEAR sampled is
      // re-reference noise, and a prefetch would be pure overhead.
      return PriorVerdict::kInvariant;
    case analysis::AddrClass::kAffine: {
      const bool on_lattice =
          access->stride != 0 && dynamic_stride % access->stride == 0 &&
          dynamic_stride != 0 &&
          (dynamic_stride > 0) == (access->stride > 0);
      return on_lattice ? PriorVerdict::kConfirmed : PriorVerdict::kMismatch;
    }
  }
  return PriorVerdict::kNoPrior;
}

}  // namespace cobra::core
