#include "cobra/optimizer.h"

#include "support/check.h"

namespace cobra::core {

const char* OptKindName(OptKind kind) {
  switch (kind) {
    case OptKind::kNone: return "none";
    case OptKind::kNoprefetch: return "noprefetch";
    case OptKind::kPrefetchExcl: return "prefetch.excl";
    case OptKind::kInsertPrefetch: return "insert-prefetch";
  }
  return "?";
}

std::vector<isa::Addr> FindLfetches(const isa::BinaryImage& image,
                                    isa::Addr begin_bundle,
                                    isa::Addr end_bundle) {
  std::vector<isa::Addr> pcs;
  for (isa::Addr bundle = isa::BundleAddr(begin_bundle);
       bundle <= isa::BundleAddr(end_bundle); bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Addr pc = isa::MakePc(bundle, slot);
      if (image.Fetch(pc).op == isa::Opcode::kLfetch) pcs.push_back(pc);
    }
  }
  return pcs;
}

int ApplyOptimizationAt(isa::BinaryImage& image,
                        const std::vector<isa::Addr>& lfetch_pcs,
                        OptKind kind) {
  int rewritten = 0;
  for (const isa::Addr pc : lfetch_pcs) {
    switch (kind) {
      case OptKind::kNone:
      case OptKind::kInsertPrefetch:  // handled by the controller
        break;
      case OptKind::kNoprefetch:
        image.NopOutLfetch(pc);
        ++rewritten;
        break;
      case OptKind::kPrefetchExcl:
        if (!image.Fetch(pc).lf_hint.excl) {
          image.SetLfetchExcl(pc, true);
          ++rewritten;
        }
        break;
    }
  }
  return rewritten;
}

int ApplyOptimization(isa::BinaryImage& image, isa::Addr begin_bundle,
                      isa::Addr end_bundle, OptKind kind) {
  return ApplyOptimizationAt(image, FindLfetches(image, begin_bundle, end_bundle),
                             kind);
}

}  // namespace cobra::core
