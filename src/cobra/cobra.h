// Umbrella header for the COBRA runtime binary optimization framework.
//
// Typical usage (see examples/quickstart.cpp):
//
//   kgen::Program prog;                        // or any MIA-64 binary
//   ... emit kernels ...
//   machine::Machine machine(machine::SmpServerConfig(4), &prog.image());
//   core::CobraConfig config;
//   config.strategy = core::OptKind::kNoprefetch;
//   core::CobraRuntime cobra(&machine, config);
//   cobra.AttachAll(4);                        // monitoring threads
//   ... run parallel regions with rt::Team ...
//   cobra.stats();                             // what COBRA did
#pragma once

#include "cobra/controller.h"   // IWYU pragma: export
#include "cobra/monitor.h"      // IWYU pragma: export
#include "cobra/optimizer.h"    // IWYU pragma: export
#include "cobra/planner.h"      // IWYU pragma: export
#include "cobra/profile.h"      // IWYU pragma: export
#include "cobra/trace_cache.h"  // IWYU pragma: export
