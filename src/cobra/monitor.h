// Monitoring thread: one per working thread (Section 3.1).
//
// Receives sample batches from the perfmon driver (the "signal"), copies
// them into its User Sampling Buffer, and updates its thread profile. The
// optimization thread reads the profiles; it never touches the driver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cobra/profile.h"
#include "perfmon/sampling.h"

namespace cobra::core {

class MonitoringThread {
 public:
  MonitoringThread(int tid, CpuId cpu, Cycle coherent_latency_threshold,
                   std::uint64_t attribution_warmup_samples = 0,
                   std::size_t usb_capacity = 4096)
      : tid_(tid),
        cpu_(cpu),
        usb_capacity_(usb_capacity),
        profile_(coherent_latency_threshold, attribution_warmup_samples) {}

  int tid() const { return tid_; }
  CpuId cpu() const { return cpu_; }

  // Delivery path ("signal handler"): copy the kernel batch into the User
  // Sampling Buffer and fold it into the running profile.
  void Consume(std::span<const perfmon::Sample> batch) {
    for (const perfmon::Sample& sample : batch) {
      if (usb_.size() == usb_capacity_) usb_.erase(usb_.begin());
      usb_.push_back(sample);
      profile_.AddSample(sample);
    }
    ++batches_received_;
  }

  const ThreadProfile& profile() const { return profile_; }
  ThreadProfile& mutable_profile() { return profile_; }
  const std::vector<perfmon::Sample>& user_sampling_buffer() const {
    return usb_;
  }
  std::uint64_t batches_received() const { return batches_received_; }

 private:
  int tid_;
  CpuId cpu_;
  std::size_t usb_capacity_;
  std::vector<perfmon::Sample> usb_;
  ThreadProfile profile_;
  std::uint64_t batches_received_ = 0;
};

}  // namespace cobra::core
