// Monitoring thread: one per working thread (Section 3.1).
//
// Receives sample batches from the perfmon driver (the "signal"), copies
// them into its User Sampling Buffer, and updates its thread profile. The
// optimization thread reads the profiles; it never touches the driver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cobra/profile.h"
#include "perfmon/sampling.h"

namespace cobra::core {

class MonitoringThread {
 public:
  MonitoringThread(int tid, CpuId cpu, Cycle coherent_latency_threshold,
                   std::uint64_t attribution_warmup_samples = 0,
                   std::size_t usb_capacity = 4096)
      : tid_(tid),
        cpu_(cpu),
        usb_capacity_(usb_capacity),
        profile_(coherent_latency_threshold, attribution_warmup_samples) {}

  int tid() const { return tid_; }
  CpuId cpu() const { return cpu_; }

  // Delivery path ("signal handler"): copy the kernel batch into the User
  // Sampling Buffer and fold it into the running profile.
  void Consume(std::span<const perfmon::Sample> batch) {
    for (const perfmon::Sample& sample : batch) {
      if (usb_.size() == usb_capacity_) usb_.erase(usb_.begin());
      usb_.push_back(sample);
      profile_.AddSample(sample);
    }
    ++batches_received_;
  }

  const ThreadProfile& profile() const { return profile_; }
  ThreadProfile& mutable_profile() { return profile_; }
  const std::vector<perfmon::Sample>& user_sampling_buffer() const {
    return usb_;
  }
  std::uint64_t batches_received() const { return batches_received_; }

  // Checkpointing. tid/cpu are written for validation only: restore targets
  // a monitor the runtime already attached to the same thread.
  void SaveState(support::StateWriter& w) const {
    w.I64(tid_);
    w.I64(cpu_);
    w.U64(static_cast<std::uint64_t>(usb_.size()));
    for (const perfmon::Sample& sample : usb_) {
      perfmon::SaveSample(w, sample);
    }
    profile_.SaveState(w);
    w.U64(batches_received_);
  }
  bool RestoreState(support::StateReader& r) {
    std::int64_t tid = 0;
    std::int64_t cpu = 0;
    std::uint64_t buffered = 0;
    r.I64(&tid);
    r.I64(&cpu);
    r.U64(&buffered);
    if (!r.Ok() || tid != tid_ || cpu != cpu_ || buffered > usb_capacity_) {
      return false;
    }
    usb_.clear();
    usb_.resize(buffered);
    for (perfmon::Sample& sample : usb_) {
      if (!perfmon::RestoreSample(r, &sample)) return false;
    }
    if (!profile_.RestoreState(r)) return false;
    r.U64(&batches_received_);
    return r.Ok();
  }

 private:
  int tid_;
  CpuId cpu_;
  std::size_t usb_capacity_;
  std::vector<perfmon::Sample> usb_;
  ThreadProfile profile_;
  std::uint64_t batches_received_ = 0;
};

}  // namespace cobra::core
