#include "cobra/controller.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "analysis/cfg.h"
#include "mem/protocol.h"
#include "support/check.h"

namespace cobra::core {

namespace {

perfmon::SamplingConfig MakeSamplingConfig(const CobraConfig& cfg) {
  perfmon::SamplingConfig sampling = CobraSamplingConfig();
  sampling.period_insts = cfg.sampling_period_insts;
  sampling.batch_size = cfg.batch_size;
  sampling.dear_latency_threshold = cfg.dear_first_level_threshold;
  return sampling;
}

}  // namespace

CobraRuntime::CobraRuntime(machine::Machine* machine, CobraConfig config)
    : machine_(machine),
      config_(config),
      driver_(machine, MakeSamplingConfig(config)),
      trace_cache_(&machine->image()),
      planner_(Planner::Options{config.plan_budget,
                                config.plan_min_profit_delta,
                                config.plan_cooldown_cycles}) {
  COBRA_CHECK(machine != nullptr);
  monitors_.resize(static_cast<std::size_t>(machine->num_cpus()));
  fast_forward_generation_ = machine->fast_forward_generation();

  metrics_ = obs::Registry::Registration(&machine->registry());
  metrics_.Add("cobra.evaluations", [this] { return stats_.evaluations; });
  metrics_.Add("cobra.deployments", [this] { return stats_.deployments; });
  metrics_.Add("cobra.rollbacks", [this] { return stats_.rollbacks; });
  metrics_.Add("cobra.epochs_kept", [this] { return stats_.epochs_kept; });
  metrics_.Add("cobra.epochs_reverted",
               [this] { return stats_.epochs_reverted; });
  metrics_.Add("cobra.strategy_switches",
               [this] { return stats_.strategy_switches; });
  metrics_.Add("cobra.phase_changes", [this] { return stats_.phase_changes; });
  metrics_.Add("cobra.lfetches_rewritten",
               [this] { return stats_.lfetches_rewritten; });
  metrics_.Add("cobra.prefetches_inserted",
               [this] { return stats_.prefetches_inserted; });
  metrics_.Add("cobra.patch_verifications",
               [this] { return trace_cache_.verifications(); });
  metrics_.Add("cobra.traces_built",
               [this] { return trace_cache_.traces_built(); });
  metrics_.Add("cobra.redirects_active",
               [this] { return trace_cache_.redirects_active(); });
  metrics_.Add("cobra.first_deploy_cycles",
               [this] { return stats_.first_deploy_cycles; });
  metrics_.Add("analysis.scev.loops_analyzed",
               [this] { return stats_.scev_loops_analyzed; });
  metrics_.Add("analysis.scev.loops_solved",
               [this] { return stats_.scev_loops_solved; });
  metrics_.Add("analysis.scev.prior_hits",
               [this] { return stats_.prior_hits; });
  metrics_.Add("analysis.scev.prior_mismatches",
               [this] { return stats_.prior_mismatches; });
  metrics_.Add("analysis.scev.invariant_suppressed",
               [this] { return stats_.invariant_suppressed; });
  // Cost-model planner family (DESIGN.md §9): all zero under the default
  // heuristic — the planner is only consulted when config.planner == kCost.
  metrics_.Add("cobra.planner.candidates",
               [this] { return planner_.stats().candidates_seen; });
  metrics_.Add("cobra.planner.accepted",
               [this] { return planner_.stats().accepted; });
  metrics_.Add("cobra.planner.rejected_budget",
               [this] { return planner_.stats().rejected_budget; });
  metrics_.Add("cobra.planner.rejected_hysteresis",
               [this] { return planner_.stats().rejected_hysteresis; });
  metrics_.Add("cobra.planner.plan_revisions",
               [this] { return planner_.stats().plan_revisions; });
  metrics_.Add("cobra.planner.estimated_benefit_cycles", [this] {
    return static_cast<std::uint64_t>(planner_.stats().estimated_benefit);
  });
  metrics_.Add("cobra.planner.realized_benefit_cycles", [this] {
    return static_cast<std::uint64_t>(planner_.stats().realized_benefit);
  });
}

void CobraRuntime::TraceInstant(std::string name) {
  if (obs::TraceSink* trace = machine_->trace()) {
    trace->Instant(machine_->trace_pid(), machine_->trace_cobra_tid(),
                   "cobra", std::move(name), machine_->GlobalTime());
  }
}

CobraRuntime::~CobraRuntime() { DetachAll(); }

void CobraRuntime::AttachThread(CpuId cpu, int tid) {
  auto& slot = monitors_.at(static_cast<std::size_t>(cpu));
  COBRA_CHECK_MSG(slot == nullptr, "CPU already monitored");
  slot = std::make_unique<MonitoringThread>(
      tid, cpu, config_.coherent_latency_threshold,
      config_.attribution_warmup_samples);
  driver_.StartMonitoring(
      cpu, tid, [this](int on_cpu, std::span<const perfmon::Sample> batch) {
        OnBatch(on_cpu, batch);
      });
}

void CobraRuntime::AttachAll(int num_threads) {
  for (int tid = 0; tid < num_threads; ++tid) AttachThread(tid, tid);
}

void CobraRuntime::DetachAll() { driver_.StopAll(); }

void CobraRuntime::OnBatch(int cpu, std::span<const perfmon::Sample> batch) {
  MonitoringThread* monitor = monitors_.at(static_cast<std::size_t>(cpu)).get();
  COBRA_CHECK(monitor != nullptr);
  monitor->Consume(batch);

  if (config_.monitor_overhead_cycles != 0) {
    cpu::Core& core = machine_->core(cpu);
    core.set_now(core.now() + config_.monitor_overhead_cycles);
  }

  // The optimization thread wakes after a system-wide quota of batches.
  int attached = 0;
  for (const auto& m : monitors_) {
    if (m != nullptr) ++attached;
  }
  if (++batches_since_wake_ >=
      config_.batches_per_evaluation * static_cast<std::uint64_t>(attached)) {
    batches_since_wake_ = 0;
    OptimizationThreadWake();
  }
}

void CobraRuntime::OptimizationThreadWake() {
  ++stats_.evaluations;

  std::vector<const ThreadProfile*> profiles;
  for (const auto& monitor : monitors_) {
    if (monitor != nullptr) profiles.push_back(&monitor->profile());
  }
  SystemProfile profile = SystemProfile::Aggregate(profiles);
  stats_.last_coherent_ratio = profile.totals.CoherentRatio();

  // A window that spans a fast-forwarded gap (sampled simulation) mixes
  // functional-only issue cycles into its CPI: the HPM pauses during
  // fast-forward but timestamps keep advancing. Discard it — rebase the
  // window and let the epoch state machine wait for a clean one. In runs
  // that never fast-forward the generation never moves and this is inert.
  if (machine_->fast_forward_generation() != fast_forward_generation_) {
    fast_forward_generation_ = machine_->fast_forward_generation();
    window_start_ = profile.totals;
    last_profile_ = std::move(profile);
    return;
  }

  // CPI of the wake window that just ended (in sampling-period units:
  // relative comparisons only).
  const CounterTotals window = profile.totals - window_start_;
  const double window_cpi =
      window.instructions != 0
          ? static_cast<double>(window.cycles) /
                static_cast<double>(window.instructions)
          : 0.0;

  if (config_.adaptive) PhaseDetect(window);
  EpochStep(profile, window_cpi);

  window_start_ = profile.totals;
  last_profile_ = std::move(profile);
  stats_.patch_verifications = trace_cache_.verifications();
}

bool CobraRuntime::LoopQualifies(const SystemProfile& profile,
                                 const LoopCandidate& loop,
                                 std::vector<isa::Addr>* lfetches) const {
  const isa::Addr head = isa::BundleAddr(loop.head);
  const isa::Addr back = isa::BundleAddr(loop.back_branch_pc);
  const isa::BinaryImage& image = machine_->image();
  if (image.Contains(head) && image.InCodeCache(head)) {
    return false;  // a trace of ours
  }
  // CFG region oracle: the sampled (head, back-branch) pair must close a
  // natural loop whose body stays inside the region.
  if (!analysis::CheckLoopRegion(image, loop.head, loop.back_branch_pc).ok) {
    return false;
  }

  *lfetches = FindLfetches(image, head, back);
  if (lfetches->empty()) return false;

  if (config_.require_coherent_load_in_loop) {
    // Two-level DEAR filter: the loop must contain a load whose sampled
    // latencies identify coherent misses.
    const bool has_coherent_load = std::any_of(
        profile.coherent_loads.begin(), profile.coherent_loads.end(),
        [&](const DelinquentLoad& load) {
          return load.pc >= head && load.pc <= isa::MakePc(back, 2);
        });
    if (!has_coherent_load) return false;
  }
  return true;
}

const analysis::LoopScev& CobraRuntime::ScevFor(const LoopCandidate& loop) {
  const isa::Addr head = isa::BundleAddr(loop.head);
  auto it = scev_cache_.find(head);
  if (it == scev_cache_.end() ||
      it->second.back_branch_pc != loop.back_branch_pc) {
    ++stats_.scev_loops_analyzed;
    analysis::LoopScev scev = analysis::AnalyzeLoop(
        machine_->image(), loop.head, loop.back_branch_pc);
    if (scev.solved) ++stats_.scev_loops_solved;
    it = scev_cache_.insert_or_assign(head, std::move(scev)).first;
  }
  return it->second;
}

bool CobraRuntime::LoopQualifiesForInsertion(
    const SystemProfile& profile, const LoopCandidate& loop,
    std::vector<InsertionCandidate>* out) {
  const isa::Addr head = isa::BundleAddr(loop.head);
  const isa::Addr back = isa::BundleAddr(loop.back_branch_pc);
  const isa::BinaryImage& image = machine_->image();
  if (image.Contains(head) && image.InCodeCache(head)) return false;
  if (!analysis::CheckLoopRegion(image, loop.head, loop.back_branch_pc).ok) {
    return false;
  }

  // Only loops the compiler left unprefetched.
  if (!FindLfetches(image, head, back).empty()) return false;

  const analysis::LoopScev* scev =
      config_.static_priors ? &ScevFor(loop) : nullptr;

  out->clear();
  for (const DelinquentLoad& load : profile.delinquent_loads) {
    if (load.pc < head || load.pc > isa::MakePc(back, 2)) continue;
    if (load.samples < 3) continue;
    // Coherent-dominated loads are the *other* optimizations' business;
    // prefetching them would manufacture the Figure 3 pathology.
    if (load.coherent_samples * 2 > load.samples) continue;
    if (load.stride == 0) continue;
    if (std::llabs(load.stride) > 4096) continue;  // not a steady stream

    auto needed = static_cast<std::uint32_t>(config_.stride_confirmations);
    if (scev != nullptr) {
      switch (ArbitrateStaticPrior(*scev, load.pc, load.stride)) {
        case PriorVerdict::kNoPrior:
          break;
        case PriorVerdict::kInvariant:
          ++stats_.invariant_suppressed;
          continue;
        case PriorVerdict::kConfirmed:
          needed = 1;  // static agreement: no need to wait for N repeats
          ++stats_.prior_hits;
          break;
        case PriorVerdict::kMismatch:
          ++stats_.prior_mismatches;
          continue;  // contradicted: hold back until the profile agrees
      }
    }
    if (load.stride_confirmations < needed) continue;
    out->push_back(InsertionCandidate{load.pc, load.stride});
  }
  return !out->empty();
}

int CobraRuntime::DeployQualifying(const SystemProfile& profile) {
  if (config_.planner == PlannerKind::kCost) return DeployPlanned(profile);
  const bool inserting =
      config_.strategy == OptKind::kInsertPrefetch && !config_.adaptive;
  // The coherent-ratio trigger gates the coherence optimizations; the
  // insertion strategy targets plain memory misses instead.
  if (!inserting && config_.require_coherent_ratio &&
      profile.totals.CoherentRatio() < config_.coherent_ratio_threshold) {
    return 0;
  }

  std::uint64_t active = 0;
  for (const auto& deployment : trace_cache_.deployments()) {
    if (deployment.active) ++active;
  }

  int deployed = 0;
  for (const LoopCandidate& loop : profile.hot_loops) {
    if (loop.hits < config_.min_loop_hits) break;  // sorted by hits
    if (active >= config_.max_deployments) break;
    const isa::Addr head = isa::BundleAddr(loop.head);

    LoopHistory& history = history_[head];
    if (history.blacklisted) continue;
    if (const auto* existing = trace_cache_.FindByHead(head);
        existing != nullptr && existing->active) {
      continue;
    }

    std::vector<isa::Addr> lfetches;
    std::vector<InsertionCandidate> candidates;
    if (inserting) {
      if (!LoopQualifiesForInsertion(profile, loop, &candidates)) continue;
    } else {
      if (!LoopQualifies(profile, loop, &lfetches)) continue;
    }

    // Quiesce check: patching the head bundle is only safe if no thread is
    // currently mid-bundle there (it would re-execute the head's leading
    // slots in the trace — double post-increments). A thread elsewhere in
    // the loop is fine: its next back-edge lands on the patched head and
    // migrates into the trace cleanly. Retry on the next wake-up.
    bool quiesced = true;
    for (int c = 0; c < machine_->num_cpus(); ++c) {
      const cpu::Core& core = machine_->core(c);
      if (!core.halted() && isa::BundleAddr(core.pc()) == head &&
          isa::SlotOf(core.pc()) != 0) {
        quiesced = false;
      }
    }
    if (!quiesced) continue;

    // Pick the strategy: fixed, or (adaptive) the first untried one,
    // starting from the configured preference.
    OptKind kind = config_.strategy;
    if (config_.adaptive) {
      const OptKind preferred = config_.strategy;
      const OptKind fallback = preferred == OptKind::kNoprefetch
                                   ? OptKind::kPrefetchExcl
                                   : OptKind::kNoprefetch;
      auto tried = [&](OptKind k) {
        return k == OptKind::kNoprefetch ? history.tried_noprefetch
                                         : history.tried_excl;
      };
      if (!tried(preferred)) {
        kind = preferred;
      } else if (!tried(fallback)) {
        kind = fallback;
        ++stats_.strategy_switches;
      } else {
        history.blacklisted = true;
        continue;
      }
    }

    const int id = trace_cache_.Deploy(
        LoopRegion{head, loop.back_branch_pc}, kind);
    if (id < 0) continue;

    if (kind == OptKind::kInsertPrefetch) {
      // Plant the prefetches into the trace copy (pcs remap 1:1 because
      // bundle distances are preserved).
      const auto* deployment = trace_cache_.Get(id);
      std::vector<InsertionCandidate> remapped = candidates;
      for (InsertionCandidate& candidate : remapped) {
        candidate.load_pc =
            deployment->trace_head + (candidate.load_pc - head);
      }
      const isa::Addr trace_end =
          deployment->trace_head +
          (isa::BundleAddr(loop.back_branch_pc) - head);
      const int inserted =
          InsertPrefetches(machine_->image(), deployment->trace_head,
                           trace_end, remapped);
      if (inserted == 0) {
        trace_cache_.Revert(id);  // nothing plantable: useless redirect
        history.blacklisted = true;
        continue;
      }
      stats_.prefetches_inserted += static_cast<std::uint64_t>(inserted);
      // The insertion edited the live trace after Deploy's own check:
      // re-verify so a bad plant can never outlive this wake-up.
      trace_cache_.CheckDeployment(id);
    }

    ++stats_.deployments;
    if (stats_.first_deploy_cycles == 0) {
      stats_.first_deploy_cycles =
          static_cast<std::uint64_t>(machine_->GlobalTime());
    }
    TraceInstant(std::string("deploy.") + OptKindName(kind));
    ++active;
    ++deployed;
    stats_.lfetches_rewritten += static_cast<std::uint64_t>(
        trace_cache_.Get(id)->lfetches_rewritten);
    if (kind == OptKind::kNoprefetch) {
      history.tried_noprefetch = true;
    } else if (kind == OptKind::kPrefetchExcl) {
      history.tried_excl = true;
    }
    epoch_deployments_.push_back(id);
    epoch_heads_.push_back(head);
  }
  return deployed;
}

std::vector<PlanCandidate> CobraRuntime::GatherPlanCandidates(
    const SystemProfile& profile,
    std::map<isa::Addr, PlannedQualification>* qualified) {
  std::vector<PlanCandidate> out;
  const bool coherent_triggered =
      !config_.require_coherent_ratio ||
      profile.totals.CoherentRatio() >= config_.coherent_ratio_threshold;

  // Protocol-aware traffic shares from the fabric's event mix: how much of
  // the observed coherence traffic is invalidation rounds (what noprefetch
  // and excl attack), how much is Dragon-style updates (excl degenerates:
  // lfetch.excl does not raise an RFO on update-based fabrics), and how
  // much of all bus traffic crossed the NUMA interconnect (an excl RFO
  // that steals a remotely-shared line pays the round trip twice).
  const mem::BusEventCounts& traffic = machine_->fabric().TotalCounts();
  const std::uint64_t coherent_events = traffic.CoherentEvents();
  const double inval_share =
      coherent_events != 0
          ? static_cast<double>(traffic.bus_upgrades +
                                traffic.bus_rd_inval_all_hitm) /
                static_cast<double>(coherent_events)
          : 0.0;
  const double update_share =
      coherent_events != 0
          ? static_cast<double>(traffic.bus_updates) /
                static_cast<double>(coherent_events)
          : 0.0;
  const double remote_share =
      traffic.bus_memory != 0
          ? static_cast<double>(traffic.remote_transactions) /
                static_cast<double>(traffic.bus_memory)
          : 0.0;
  const bool excl_rfo =
      mem::CoherencePolicy::For(machine_->config().mem.protocol)
          .excl_prefetch_rfo();

  for (const LoopCandidate& loop : profile.hot_loops) {
    if (loop.hits < config_.min_loop_hits) break;  // sorted by hits
    const isa::Addr head = isa::BundleAddr(loop.head);
    const isa::Addr back = isa::BundleAddr(loop.back_branch_pc);
    if (history_[head].blacklisted) continue;

    auto in_region = [&](isa::Addr pc) {
      return pc >= head && pc <= isa::MakePc(back, 2);
    };
    // Patch overhead plus trace-cache occupancy: one budget unit per
    // deployment, plus the region's bundle footprint in the code cache.
    const double bundles =
        static_cast<double>((back - head) / isa::kBundleBytes + 1);
    const double cost_base = 1.0 + bundles / 8.0;

    PlannedQualification q;
    q.loop = loop;
    if (coherent_triggered && LoopQualifies(profile, loop, &q.lfetches)) {
      // DEAR latency mass of the region's delinquent loads, split into
      // the coherent share the patch targets (per-load attribution when
      // the two-level filter runs; the bus-level coherent ratio when the
      // ablation config turned the per-load filter off).
      double region_mass = 0.0;
      double coherent_mass = 0.0;
      for (const DelinquentLoad& load : profile.delinquent_loads) {
        if (!in_region(load.pc) || load.samples == 0) continue;
        const double mass = static_cast<double>(load.total_latency);
        region_mass += mass;
        coherent_mass += mass * static_cast<double>(load.coherent_samples) /
                         static_cast<double>(load.samples);
      }
      if (!config_.require_coherent_load_in_loop && coherent_mass == 0.0) {
        coherent_mass = region_mass * profile.totals.CoherentRatio();
      }
      // noprefetch: removing the premature lfetches removes the coherent
      // traffic they manufacture. On an update-based fabric the pathology
      // is milder (updates refresh remote copies instead of killing them).
      out.push_back(PlanCandidate{head, loop.back_branch_pc,
                                  OptKind::kNoprefetch,
                                  coherent_mass * (1.0 - 0.5 * update_share),
                                  cost_base});
      // prefetch.excl: collapses the read + upgrade pair into one RFO —
      // worth a share of the invalidation traffic — but steals remotely
      // shared lines, paying the interconnect round trip both ways on a
      // NUMA fabric. Non-positive estimates never enter a plan.
      const double excl_benefit =
          excl_rfo ? coherent_mass * (inval_share - 2.0 * remote_share)
                   : 0.0;
      out.push_back(PlanCandidate{head, loop.back_branch_pc,
                                  OptKind::kPrefetchExcl, excl_benefit,
                                  cost_base});
      qualified->emplace(head, std::move(q));
    } else if (LoopQualifiesForInsertion(profile, loop, &q.inserts)) {
      // DEAR latency mass of the plain (non-coherent) delinquent loads.
      double memory_mass = 0.0;
      for (const DelinquentLoad& load : profile.delinquent_loads) {
        if (in_region(load.pc) && load.coherent_samples * 2 <= load.samples) {
          memory_mass += static_cast<double>(load.total_latency);
        }
      }
      // Scalar-evolution facts as benefit inputs: estimates on a loop
      // whose streams the static pass proved affine (and whose sampled
      // strides sit on the chrec lattice) deserve more credit than ones
      // resting on sampled strides alone.
      double prior_scale = 0.75;
      if (config_.static_priors) {
        const analysis::LoopScev& scev = ScevFor(loop);
        if (scev.solved && scev.AffineAccessCount() > 0) {
          std::size_t confirmed = 0;
          for (const InsertionCandidate& cand : q.inserts) {
            if (ArbitrateStaticPrior(scev, cand.load_pc, cand.stride) ==
                PriorVerdict::kConfirmed) {
              ++confirmed;
            }
          }
          prior_scale = 0.5 + 0.5 * static_cast<double>(confirmed) /
                                  static_cast<double>(q.inserts.size());
        }
      }
      // Planted prefetches occupy bus slots of their own: half a budget
      // unit per planted stream on top of the patch overhead.
      const double cost =
          cost_base + 0.5 * static_cast<double>(q.inserts.size());
      out.push_back(PlanCandidate{head, loop.back_branch_pc,
                                  OptKind::kInsertPrefetch,
                                  memory_mass * prior_scale, cost});
      qualified->emplace(head, std::move(q));
    }
  }
  return out;
}

int CobraRuntime::DeployPlanned(const SystemProfile& profile) {
  std::map<isa::Addr, PlannedQualification> qualified;
  const std::vector<PlanCandidate> candidates =
      GatherPlanCandidates(profile, &qualified);
  const Plan& plan = planner_.Propose(
      candidates, static_cast<std::uint64_t>(machine_->GlobalTime()));

  // A plan revision may drop a live patch, or re-kind a loop: revert the
  // stale deployment first (the epoch bookkeeping sees an inactive entry,
  // exactly as after a measured revert).
  for (const auto& deployment : trace_cache_.deployments()) {
    if (!deployment.active) continue;
    const PlanCandidate* want = plan.Find(deployment.loop.head);
    if (want != nullptr && want->kind == deployment.opt) continue;
    trace_cache_.Revert(deployment.id);
    ++stats_.rollbacks;
    TraceInstant("revert");
  }

  std::uint64_t active = 0;
  for (const auto& deployment : trace_cache_.deployments()) {
    if (deployment.active) ++active;
  }

  // Deploy the accepted set in hotness order (the plan carries no
  // priority of its own; the hottest loops claim the deployment cap and
  // the quiesce retries first, like the heuristic).
  int deployed = 0;
  for (const LoopCandidate& loop : profile.hot_loops) {
    if (loop.hits < config_.min_loop_hits) break;
    if (active >= config_.max_deployments) break;
    const isa::Addr head = isa::BundleAddr(loop.head);
    const PlanCandidate* pick = plan.Find(head);
    if (pick == nullptr) continue;
    const auto it = qualified.find(head);
    if (it == qualified.end()) continue;
    if (const auto* existing = trace_cache_.FindByHead(head);
        existing != nullptr && existing->active) {
      continue;  // already live under the planned kind
    }
    LoopHistory& history = history_[head];
    if (history.blacklisted) continue;

    // Same quiesce rule as the heuristic path: never patch a head bundle
    // a thread is currently mid-bundle in.
    bool quiesced = true;
    for (int c = 0; c < machine_->num_cpus(); ++c) {
      const cpu::Core& core = machine_->core(c);
      if (!core.halted() && isa::BundleAddr(core.pc()) == head &&
          isa::SlotOf(core.pc()) != 0) {
        quiesced = false;
      }
    }
    if (!quiesced) continue;

    const OptKind kind = pick->kind;
    const int id = trace_cache_.Deploy(
        LoopRegion{head, loop.back_branch_pc}, kind);
    if (id < 0) continue;

    if (kind == OptKind::kInsertPrefetch) {
      const auto* deployment = trace_cache_.Get(id);
      std::vector<InsertionCandidate> remapped = it->second.inserts;
      for (InsertionCandidate& candidate : remapped) {
        candidate.load_pc =
            deployment->trace_head + (candidate.load_pc - head);
      }
      const isa::Addr trace_end =
          deployment->trace_head +
          (isa::BundleAddr(loop.back_branch_pc) - head);
      const int inserted =
          InsertPrefetches(machine_->image(), deployment->trace_head,
                           trace_end, remapped);
      if (inserted == 0) {
        trace_cache_.Revert(id);
        history.blacklisted = true;
        continue;
      }
      stats_.prefetches_inserted += static_cast<std::uint64_t>(inserted);
      trace_cache_.CheckDeployment(id);
    }

    ++stats_.deployments;
    if (stats_.first_deploy_cycles == 0) {
      stats_.first_deploy_cycles =
          static_cast<std::uint64_t>(machine_->GlobalTime());
    }
    TraceInstant(std::string("deploy.") + OptKindName(kind));
    ++active;
    ++deployed;
    stats_.lfetches_rewritten += static_cast<std::uint64_t>(
        trace_cache_.Get(id)->lfetches_rewritten);
    if (kind == OptKind::kNoprefetch) {
      history.tried_noprefetch = true;
    } else if (kind == OptKind::kPrefetchExcl) {
      history.tried_excl = true;
    }
    epoch_deployments_.push_back(id);
    epoch_heads_.push_back(head);
  }
  return deployed;
}

void CobraRuntime::RevertEpoch() {
  for (const int id : epoch_deployments_) {
    if (const auto* deployment = trace_cache_.Get(id);
        deployment != nullptr && deployment->active) {
      trace_cache_.Revert(id);
      ++stats_.rollbacks;
      TraceInstant("revert");
    }
  }
  for (const isa::Addr head : epoch_heads_) {
    LoopHistory& history = history_[head];
    if (!config_.adaptive ||
        (history.tried_noprefetch && history.tried_excl)) {
      history.blacklisted = true;
    }
  }
  epoch_deployments_.clear();
  epoch_heads_.clear();
}

void CobraRuntime::EpochStep(const SystemProfile& profile,
                             double window_cpi) {
  if (!config_.measured_epochs) {
    // Unmeasured mode (ablation): deploy eagerly, never revert.
    DeployQualifying(profile);
    return;
  }
  if (window_cpi <= 0.0) return;  // no samples yet

  switch (epoch_state_) {
    case EpochState::kMeasureOff: {
      cpi_accum_ += window_cpi;
      if (++cpi_windows_ < config_.epoch_windows) return;
      cpi_off_ = cpi_accum_ / cpi_windows_;
      cpi_accum_ = 0.0;
      cpi_windows_ = 0;
      settle_windows_ = 0;
      epoch_state_ = EpochState::kDeploying;
      [[fallthrough]];
    }
    case EpochState::kDeploying: {
      const int deployed = DeployQualifying(profile);
      ++settle_windows_;
      if (epoch_deployments_.empty()) {
        // Nothing qualified yet: keep probing from a fresh baseline so the
        // eventual comparison stays current.
        if (settle_windows_ >= config_.max_settle_windows) {
          epoch_state_ = EpochState::kMeasureOff;
          cpi_accum_ = 0.0;
          cpi_windows_ = 0;
        }
        return;
      }
      // Wait until the deployment set stabilizes (or the cap is reached),
      // then start the post-deployment measurement.
      if (deployed == 0 || settle_windows_ >= config_.max_settle_windows) {
        epoch_state_ = EpochState::kMeasureOn;
        cpi_accum_ = 0.0;
        cpi_windows_ = 0;
      }
      return;
    }
    case EpochState::kMeasureOn: {
      cpi_accum_ += window_cpi;
      if (config_.planner == PlannerKind::kCost) {
        epoch_on_insts_ += static_cast<double>(
            profile.totals.instructions - window_start_.instructions);
      }
      if (++cpi_windows_ < config_.epoch_windows) return;
      const double cpi_on = cpi_accum_ / cpi_windows_;
      const double on_insts = epoch_on_insts_;
      epoch_on_insts_ = 0.0;
      cpi_accum_ = 0.0;
      cpi_windows_ = 0;
      if (cpi_on > cpi_off_ * config_.epoch_slowdown_threshold) {
        RevertEpoch();
        ++stats_.epochs_reverted;
        TraceInstant("epoch.reverted");
        epoch_state_ = EpochState::kMeasureOff;  // measure fresh, try again
      } else {
        // Realized benefit of the kept epoch: the measured CPI drop times
        // the instructions it was measured over — the figure the
        // cobra.planner.* family reports against the model's estimates.
        if (config_.planner == PlannerKind::kCost && cpi_on < cpi_off_) {
          planner_.AddRealizedBenefit((cpi_off_ - cpi_on) * on_insts);
        }
        ++stats_.epochs_kept;
        TraceInstant("epoch.kept");
        epoch_deployments_.clear();
        epoch_heads_.clear();
        cpi_off_ = cpi_on;  // the kept level is the new baseline
        epoch_state_ = EpochState::kHold;
      }
      return;
    }
    case EpochState::kHold: {
      // Watch for newly qualifying loops (phase drift, late discovery);
      // open a new epoch against the current level when any appear.
      const int deployed = DeployQualifying(profile);
      if (deployed > 0) {
        settle_windows_ = 0;
        epoch_state_ = EpochState::kDeploying;
      }
      return;
    }
  }
}

void CobraRuntime::SaveState(support::StateWriter& w) const {
  w.BeginSection("cobra");

  driver_.SaveState(w);

  w.U32(static_cast<std::uint32_t>(monitors_.size()));
  for (const auto& monitor : monitors_) {
    w.Bool(monitor != nullptr);
    if (monitor != nullptr) monitor->SaveState(w);
  }

  trace_cache_.SaveState(w);
  planner_.SaveState(w);

  w.U64(stats_.evaluations);
  w.U64(stats_.deployments);
  w.U64(stats_.rollbacks);
  w.U64(stats_.epochs_kept);
  w.U64(stats_.epochs_reverted);
  w.U64(stats_.strategy_switches);
  w.U64(stats_.phase_changes);
  w.U64(stats_.lfetches_rewritten);
  w.U64(stats_.prefetches_inserted);
  w.U64(stats_.patch_verifications);
  w.F64(stats_.last_coherent_ratio);
  w.U64(stats_.scev_loops_analyzed);
  w.U64(stats_.scev_loops_solved);
  w.U64(stats_.prior_hits);
  w.U64(stats_.prior_mismatches);
  w.U64(stats_.invariant_suppressed);
  w.U64(stats_.first_deploy_cycles);

  last_profile_.SaveState(w);
  w.U64(batches_since_wake_);

  w.U8(static_cast<std::uint8_t>(epoch_state_));
  w.F64(cpi_accum_);
  w.I64(cpi_windows_);
  w.F64(cpi_off_);
  w.I64(settle_windows_);
  w.F64(epoch_on_insts_);
  w.U64(static_cast<std::uint64_t>(epoch_deployments_.size()));
  for (const int id : epoch_deployments_) w.I64(id);
  w.U64(static_cast<std::uint64_t>(epoch_heads_.size()));
  for (const isa::Addr head : epoch_heads_) w.U64(head);

  w.U64(static_cast<std::uint64_t>(history_.size()));
  for (const auto& [head, h] : history_) {
    w.U64(head);
    w.Bool(h.tried_noprefetch);
    w.Bool(h.tried_excl);
    w.Bool(h.blacklisted);
  }

  // Scev cache: keys only. The analysis is a deterministic function of the
  // image, which restores its bits separately — re-running it rebuilds
  // identical LoopScev values without bloating the blob.
  w.U64(static_cast<std::uint64_t>(scev_cache_.size()));
  for (const auto& [head, scev] : scev_cache_) {
    w.U64(head);
    w.U64(scev.back_branch_pc);
  }

  window_start_.SaveState(w);
  w.Bool(reference_l3_per_inst_.has_value());
  w.F64(reference_l3_per_inst_.value_or(0.0));
  w.Bool(phase_shift_pending_);

  w.EndSection();
}

bool CobraRuntime::RestoreState(support::StateReader& r) {
  if (!r.EnterSection("cobra")) return false;

  if (!driver_.RestoreState(r)) return false;

  std::uint32_t num_monitors = 0;
  r.U32(&num_monitors);
  if (!r.Ok() ||
      num_monitors != static_cast<std::uint32_t>(monitors_.size())) {
    return false;
  }
  for (auto& monitor : monitors_) {
    bool present = false;
    r.Bool(&present);
    // Attach-before-restore: a saved monitor must already exist here with
    // the same (tid, cpu) binding — SaveState wrote them for validation.
    if (!r.Ok() || present != (monitor != nullptr)) return false;
    if (present && !monitor->RestoreState(r)) return false;
  }

  if (!trace_cache_.RestoreState(r)) return false;
  if (!planner_.RestoreState(r)) return false;

  r.U64(&stats_.evaluations);
  r.U64(&stats_.deployments);
  r.U64(&stats_.rollbacks);
  r.U64(&stats_.epochs_kept);
  r.U64(&stats_.epochs_reverted);
  r.U64(&stats_.strategy_switches);
  r.U64(&stats_.phase_changes);
  r.U64(&stats_.lfetches_rewritten);
  r.U64(&stats_.prefetches_inserted);
  r.U64(&stats_.patch_verifications);
  r.F64(&stats_.last_coherent_ratio);
  r.U64(&stats_.scev_loops_analyzed);
  r.U64(&stats_.scev_loops_solved);
  r.U64(&stats_.prior_hits);
  r.U64(&stats_.prior_mismatches);
  r.U64(&stats_.invariant_suppressed);
  r.U64(&stats_.first_deploy_cycles);

  if (!last_profile_.RestoreState(r)) return false;
  r.U64(&batches_since_wake_);

  std::uint8_t epoch_state = 0;
  r.U8(&epoch_state);
  if (!r.Ok() || epoch_state > static_cast<std::uint8_t>(EpochState::kHold)) {
    return false;
  }
  epoch_state_ = static_cast<EpochState>(epoch_state);
  r.F64(&cpi_accum_);
  std::int64_t cpi_windows = 0;
  r.I64(&cpi_windows);
  r.F64(&cpi_off_);
  std::int64_t settle_windows = 0;
  r.I64(&settle_windows);
  r.F64(&epoch_on_insts_);
  cpi_windows_ = static_cast<int>(cpi_windows);
  settle_windows_ = static_cast<int>(settle_windows);

  std::uint64_t count = 0;
  r.U64(&count);
  if (!r.Ok()) return false;
  epoch_deployments_.resize(count);
  for (int& id : epoch_deployments_) {
    std::int64_t v = 0;
    r.I64(&v);
    id = static_cast<int>(v);
  }
  r.U64(&count);
  if (!r.Ok()) return false;
  epoch_heads_.resize(count);
  for (isa::Addr& head : epoch_heads_) r.U64(&head);

  r.U64(&count);
  if (!r.Ok()) return false;
  history_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    isa::Addr head = 0;
    LoopHistory h;
    r.U64(&head);
    r.Bool(&h.tried_noprefetch);
    r.Bool(&h.tried_excl);
    r.Bool(&h.blacklisted);
    if (!r.Ok()) return false;
    history_.emplace(head, h);
  }

  r.U64(&count);
  if (!r.Ok()) return false;
  scev_cache_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    isa::Addr head = 0;
    isa::Addr back = 0;
    r.U64(&head);
    r.U64(&back);
    if (!r.Ok()) return false;
    // Recompute from the restored image; no stats bumps (the restored
    // stats already count these analyses).
    scev_cache_.insert_or_assign(
        head, analysis::AnalyzeLoop(machine_->image(), head, back));
  }

  if (!window_start_.RestoreState(r)) return false;
  bool have_reference = false;
  double reference = 0.0;
  r.Bool(&have_reference);
  r.F64(&reference);
  r.Bool(&phase_shift_pending_);
  if (!r.Ok()) return false;
  reference_l3_per_inst_ =
      have_reference ? std::optional<double>(reference) : std::nullopt;

  return r.ExitSection();
}

void CobraRuntime::PhaseDetect(const CounterTotals& window) {
  if (window.instructions == 0) return;
  // Let the cold-start transient pass before pinning the phase reference,
  // or the warm-up itself reads as a "phase change".
  if (stats_.evaluations <= static_cast<std::uint64_t>(config_.epoch_windows)) {
    return;
  }
  const double l3_per_inst = static_cast<double>(window.l3_misses) /
                             static_cast<double>(window.instructions);
  if (!reference_l3_per_inst_.has_value()) {
    reference_l3_per_inst_ = l3_per_inst;
    return;
  }
  const double ref = *reference_l3_per_inst_;
  const double denom = std::max(ref, 1e-9);
  const bool shifted =
      std::fabs(l3_per_inst - ref) / denom > config_.phase_change_threshold;
  // Hysteresis: a single outlier window (e.g. one cold array sweep) must
  // not trigger re-adaptation; require two consecutive shifted windows.
  if (!shifted) {
    phase_shift_pending_ = false;
    return;
  }
  if (!phase_shift_pending_) {
    phase_shift_pending_ = true;
    return;
  }
  phase_shift_pending_ = false;

  // Continuous re-adaptation: revert everything, forget loop verdicts,
  // restart the epoch machinery against the new phase.
  ++stats_.phase_changes;
  TraceInstant("phase_change");
  for (const auto& deployment : trace_cache_.deployments()) {
    if (deployment.active) {
      trace_cache_.Revert(deployment.id);
      ++stats_.rollbacks;
      TraceInstant("revert");
    }
  }
  history_.clear();
  epoch_deployments_.clear();
  epoch_heads_.clear();
  cpi_accum_ = 0.0;
  cpi_windows_ = 0;
  epoch_on_insts_ = 0.0;
  epoch_state_ = EpochState::kMeasureOff;
  reference_l3_per_inst_ = l3_per_inst;
  // The standing plan was built for the phase that just ended: forget it
  // (and its cooldown) so the planner re-solves from scratch, like the
  // heuristic forgetting its loop verdicts above.
  planner_.Reset();
}

}  // namespace cobra::core
