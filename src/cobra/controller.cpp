#include "cobra/controller.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "analysis/cfg.h"
#include "support/check.h"

namespace cobra::core {

namespace {

perfmon::SamplingConfig MakeSamplingConfig(const CobraConfig& cfg) {
  perfmon::SamplingConfig sampling = CobraSamplingConfig();
  sampling.period_insts = cfg.sampling_period_insts;
  sampling.batch_size = cfg.batch_size;
  sampling.dear_latency_threshold = cfg.dear_first_level_threshold;
  return sampling;
}

}  // namespace

CobraRuntime::CobraRuntime(machine::Machine* machine, CobraConfig config)
    : machine_(machine),
      config_(config),
      driver_(machine, MakeSamplingConfig(config)),
      trace_cache_(&machine->image()) {
  COBRA_CHECK(machine != nullptr);
  monitors_.resize(static_cast<std::size_t>(machine->num_cpus()));

  metrics_ = obs::Registry::Registration(&machine->registry());
  metrics_.Add("cobra.evaluations", [this] { return stats_.evaluations; });
  metrics_.Add("cobra.deployments", [this] { return stats_.deployments; });
  metrics_.Add("cobra.rollbacks", [this] { return stats_.rollbacks; });
  metrics_.Add("cobra.epochs_kept", [this] { return stats_.epochs_kept; });
  metrics_.Add("cobra.epochs_reverted",
               [this] { return stats_.epochs_reverted; });
  metrics_.Add("cobra.strategy_switches",
               [this] { return stats_.strategy_switches; });
  metrics_.Add("cobra.phase_changes", [this] { return stats_.phase_changes; });
  metrics_.Add("cobra.lfetches_rewritten",
               [this] { return stats_.lfetches_rewritten; });
  metrics_.Add("cobra.prefetches_inserted",
               [this] { return stats_.prefetches_inserted; });
  metrics_.Add("cobra.patch_verifications",
               [this] { return trace_cache_.verifications(); });
  metrics_.Add("cobra.traces_built",
               [this] { return trace_cache_.traces_built(); });
  metrics_.Add("cobra.redirects_active",
               [this] { return trace_cache_.redirects_active(); });
  metrics_.Add("cobra.first_deploy_cycles",
               [this] { return stats_.first_deploy_cycles; });
  metrics_.Add("analysis.scev.loops_analyzed",
               [this] { return stats_.scev_loops_analyzed; });
  metrics_.Add("analysis.scev.loops_solved",
               [this] { return stats_.scev_loops_solved; });
  metrics_.Add("analysis.scev.prior_hits",
               [this] { return stats_.prior_hits; });
  metrics_.Add("analysis.scev.prior_mismatches",
               [this] { return stats_.prior_mismatches; });
  metrics_.Add("analysis.scev.invariant_suppressed",
               [this] { return stats_.invariant_suppressed; });
}

void CobraRuntime::TraceInstant(std::string name) {
  if (obs::TraceSink* trace = machine_->trace()) {
    trace->Instant(machine_->trace_pid(), machine_->trace_cobra_tid(),
                   "cobra", std::move(name), machine_->GlobalTime());
  }
}

CobraRuntime::~CobraRuntime() { DetachAll(); }

void CobraRuntime::AttachThread(CpuId cpu, int tid) {
  auto& slot = monitors_.at(static_cast<std::size_t>(cpu));
  COBRA_CHECK_MSG(slot == nullptr, "CPU already monitored");
  slot = std::make_unique<MonitoringThread>(
      tid, cpu, config_.coherent_latency_threshold,
      config_.attribution_warmup_samples);
  driver_.StartMonitoring(
      cpu, tid, [this](int on_cpu, std::span<const perfmon::Sample> batch) {
        OnBatch(on_cpu, batch);
      });
}

void CobraRuntime::AttachAll(int num_threads) {
  for (int tid = 0; tid < num_threads; ++tid) AttachThread(tid, tid);
}

void CobraRuntime::DetachAll() { driver_.StopAll(); }

void CobraRuntime::OnBatch(int cpu, std::span<const perfmon::Sample> batch) {
  MonitoringThread* monitor = monitors_.at(static_cast<std::size_t>(cpu)).get();
  COBRA_CHECK(monitor != nullptr);
  monitor->Consume(batch);

  if (config_.monitor_overhead_cycles != 0) {
    cpu::Core& core = machine_->core(cpu);
    core.set_now(core.now() + config_.monitor_overhead_cycles);
  }

  // The optimization thread wakes after a system-wide quota of batches.
  int attached = 0;
  for (const auto& m : monitors_) {
    if (m != nullptr) ++attached;
  }
  if (++batches_since_wake_ >=
      config_.batches_per_evaluation * static_cast<std::uint64_t>(attached)) {
    batches_since_wake_ = 0;
    OptimizationThreadWake();
  }
}

void CobraRuntime::OptimizationThreadWake() {
  ++stats_.evaluations;

  std::vector<const ThreadProfile*> profiles;
  for (const auto& monitor : monitors_) {
    if (monitor != nullptr) profiles.push_back(&monitor->profile());
  }
  SystemProfile profile = SystemProfile::Aggregate(profiles);
  stats_.last_coherent_ratio = profile.totals.CoherentRatio();

  // CPI of the wake window that just ended (in sampling-period units:
  // relative comparisons only).
  const CounterTotals window = profile.totals - window_start_;
  const double window_cpi =
      window.instructions != 0
          ? static_cast<double>(window.cycles) /
                static_cast<double>(window.instructions)
          : 0.0;

  if (config_.adaptive) PhaseDetect(window);
  EpochStep(profile, window_cpi);

  window_start_ = profile.totals;
  last_profile_ = std::move(profile);
  stats_.patch_verifications = trace_cache_.verifications();
}

bool CobraRuntime::LoopQualifies(const SystemProfile& profile,
                                 const LoopCandidate& loop,
                                 std::vector<isa::Addr>* lfetches) const {
  const isa::Addr head = isa::BundleAddr(loop.head);
  const isa::Addr back = isa::BundleAddr(loop.back_branch_pc);
  const isa::BinaryImage& image = machine_->image();
  if (image.Contains(head) && image.InCodeCache(head)) {
    return false;  // a trace of ours
  }
  // CFG region oracle: the sampled (head, back-branch) pair must close a
  // natural loop whose body stays inside the region.
  if (!analysis::CheckLoopRegion(image, loop.head, loop.back_branch_pc).ok) {
    return false;
  }

  *lfetches = FindLfetches(image, head, back);
  if (lfetches->empty()) return false;

  if (config_.require_coherent_load_in_loop) {
    // Two-level DEAR filter: the loop must contain a load whose sampled
    // latencies identify coherent misses.
    const bool has_coherent_load = std::any_of(
        profile.coherent_loads.begin(), profile.coherent_loads.end(),
        [&](const DelinquentLoad& load) {
          return load.pc >= head && load.pc <= isa::MakePc(back, 2);
        });
    if (!has_coherent_load) return false;
  }
  return true;
}

const analysis::LoopScev& CobraRuntime::ScevFor(const LoopCandidate& loop) {
  const isa::Addr head = isa::BundleAddr(loop.head);
  auto it = scev_cache_.find(head);
  if (it == scev_cache_.end() ||
      it->second.back_branch_pc != loop.back_branch_pc) {
    ++stats_.scev_loops_analyzed;
    analysis::LoopScev scev = analysis::AnalyzeLoop(
        machine_->image(), loop.head, loop.back_branch_pc);
    if (scev.solved) ++stats_.scev_loops_solved;
    it = scev_cache_.insert_or_assign(head, std::move(scev)).first;
  }
  return it->second;
}

bool CobraRuntime::LoopQualifiesForInsertion(
    const SystemProfile& profile, const LoopCandidate& loop,
    std::vector<InsertionCandidate>* out) {
  const isa::Addr head = isa::BundleAddr(loop.head);
  const isa::Addr back = isa::BundleAddr(loop.back_branch_pc);
  const isa::BinaryImage& image = machine_->image();
  if (image.Contains(head) && image.InCodeCache(head)) return false;
  if (!analysis::CheckLoopRegion(image, loop.head, loop.back_branch_pc).ok) {
    return false;
  }

  // Only loops the compiler left unprefetched.
  if (!FindLfetches(image, head, back).empty()) return false;

  const analysis::LoopScev* scev =
      config_.static_priors ? &ScevFor(loop) : nullptr;

  out->clear();
  for (const DelinquentLoad& load : profile.delinquent_loads) {
    if (load.pc < head || load.pc > isa::MakePc(back, 2)) continue;
    if (load.samples < 3) continue;
    // Coherent-dominated loads are the *other* optimizations' business;
    // prefetching them would manufacture the Figure 3 pathology.
    if (load.coherent_samples * 2 > load.samples) continue;
    if (load.stride == 0) continue;
    if (std::llabs(load.stride) > 4096) continue;  // not a steady stream

    auto needed = static_cast<std::uint32_t>(config_.stride_confirmations);
    if (scev != nullptr && scev->solved) {
      if (const analysis::MemAccess* access = scev->AccessAt(load.pc)) {
        if (access->cls == analysis::AddrClass::kInvariant) {
          // The address provably never moves: whatever DEAR sampled is
          // re-reference noise, and a prefetch would be pure overhead.
          ++stats_.invariant_suppressed;
          continue;
        }
        if (access->cls == analysis::AddrClass::kAffine) {
          // DEAR deltas are sampled, so the dynamic stride is some whole
          // number of iterations ahead on the stream: accept any nonzero
          // same-sign multiple of the static stride (the verifier enforces
          // the same lattice on the planted pair).
          const bool on_lattice =
              load.stride % access->stride == 0 &&
              (load.stride > 0) == (access->stride > 0);
          if (on_lattice) {
            needed = 1;  // static agreement: no need to wait for N repeats
            ++stats_.prior_hits;
          } else {
            ++stats_.prior_mismatches;
            continue;  // contradicted: hold back until the profile agrees
          }
        }
      }
    }
    if (load.stride_confirmations < needed) continue;
    out->push_back(InsertionCandidate{load.pc, load.stride});
  }
  return !out->empty();
}

int CobraRuntime::DeployQualifying(const SystemProfile& profile) {
  const bool inserting =
      config_.strategy == OptKind::kInsertPrefetch && !config_.adaptive;
  // The coherent-ratio trigger gates the coherence optimizations; the
  // insertion strategy targets plain memory misses instead.
  if (!inserting && config_.require_coherent_ratio &&
      profile.totals.CoherentRatio() < config_.coherent_ratio_threshold) {
    return 0;
  }

  std::uint64_t active = 0;
  for (const auto& deployment : trace_cache_.deployments()) {
    if (deployment.active) ++active;
  }

  int deployed = 0;
  for (const LoopCandidate& loop : profile.hot_loops) {
    if (loop.hits < config_.min_loop_hits) break;  // sorted by hits
    if (active >= config_.max_deployments) break;
    const isa::Addr head = isa::BundleAddr(loop.head);

    LoopHistory& history = history_[head];
    if (history.blacklisted) continue;
    if (const auto* existing = trace_cache_.FindByHead(head);
        existing != nullptr && existing->active) {
      continue;
    }

    std::vector<isa::Addr> lfetches;
    std::vector<InsertionCandidate> candidates;
    if (inserting) {
      if (!LoopQualifiesForInsertion(profile, loop, &candidates)) continue;
    } else {
      if (!LoopQualifies(profile, loop, &lfetches)) continue;
    }

    // Quiesce check: patching the head bundle is only safe if no thread is
    // currently mid-bundle there (it would re-execute the head's leading
    // slots in the trace — double post-increments). A thread elsewhere in
    // the loop is fine: its next back-edge lands on the patched head and
    // migrates into the trace cleanly. Retry on the next wake-up.
    bool quiesced = true;
    for (int c = 0; c < machine_->num_cpus(); ++c) {
      const cpu::Core& core = machine_->core(c);
      if (!core.halted() && isa::BundleAddr(core.pc()) == head &&
          isa::SlotOf(core.pc()) != 0) {
        quiesced = false;
      }
    }
    if (!quiesced) continue;

    // Pick the strategy: fixed, or (adaptive) the first untried one,
    // starting from the configured preference.
    OptKind kind = config_.strategy;
    if (config_.adaptive) {
      const OptKind preferred = config_.strategy;
      const OptKind fallback = preferred == OptKind::kNoprefetch
                                   ? OptKind::kPrefetchExcl
                                   : OptKind::kNoprefetch;
      auto tried = [&](OptKind k) {
        return k == OptKind::kNoprefetch ? history.tried_noprefetch
                                         : history.tried_excl;
      };
      if (!tried(preferred)) {
        kind = preferred;
      } else if (!tried(fallback)) {
        kind = fallback;
        ++stats_.strategy_switches;
      } else {
        history.blacklisted = true;
        continue;
      }
    }

    const int id = trace_cache_.Deploy(
        LoopRegion{head, loop.back_branch_pc}, kind);
    if (id < 0) continue;

    if (kind == OptKind::kInsertPrefetch) {
      // Plant the prefetches into the trace copy (pcs remap 1:1 because
      // bundle distances are preserved).
      const auto* deployment = trace_cache_.Get(id);
      std::vector<InsertionCandidate> remapped = candidates;
      for (InsertionCandidate& candidate : remapped) {
        candidate.load_pc =
            deployment->trace_head + (candidate.load_pc - head);
      }
      const isa::Addr trace_end =
          deployment->trace_head +
          (isa::BundleAddr(loop.back_branch_pc) - head);
      const int inserted =
          InsertPrefetches(machine_->image(), deployment->trace_head,
                           trace_end, remapped);
      if (inserted == 0) {
        trace_cache_.Revert(id);  // nothing plantable: useless redirect
        history.blacklisted = true;
        continue;
      }
      stats_.prefetches_inserted += static_cast<std::uint64_t>(inserted);
      // The insertion edited the live trace after Deploy's own check:
      // re-verify so a bad plant can never outlive this wake-up.
      trace_cache_.CheckDeployment(id);
    }

    ++stats_.deployments;
    if (stats_.first_deploy_cycles == 0) {
      stats_.first_deploy_cycles =
          static_cast<std::uint64_t>(machine_->GlobalTime());
    }
    TraceInstant(std::string("deploy.") + OptKindName(kind));
    ++active;
    ++deployed;
    stats_.lfetches_rewritten += static_cast<std::uint64_t>(
        trace_cache_.Get(id)->lfetches_rewritten);
    if (kind == OptKind::kNoprefetch) {
      history.tried_noprefetch = true;
    } else if (kind == OptKind::kPrefetchExcl) {
      history.tried_excl = true;
    }
    epoch_deployments_.push_back(id);
    epoch_heads_.push_back(head);
  }
  return deployed;
}

void CobraRuntime::RevertEpoch() {
  for (const int id : epoch_deployments_) {
    if (const auto* deployment = trace_cache_.Get(id);
        deployment != nullptr && deployment->active) {
      trace_cache_.Revert(id);
      ++stats_.rollbacks;
      TraceInstant("revert");
    }
  }
  for (const isa::Addr head : epoch_heads_) {
    LoopHistory& history = history_[head];
    if (!config_.adaptive ||
        (history.tried_noprefetch && history.tried_excl)) {
      history.blacklisted = true;
    }
  }
  epoch_deployments_.clear();
  epoch_heads_.clear();
}

void CobraRuntime::EpochStep(const SystemProfile& profile,
                             double window_cpi) {
  if (!config_.measured_epochs) {
    // Unmeasured mode (ablation): deploy eagerly, never revert.
    DeployQualifying(profile);
    return;
  }
  if (window_cpi <= 0.0) return;  // no samples yet

  switch (epoch_state_) {
    case EpochState::kMeasureOff: {
      cpi_accum_ += window_cpi;
      if (++cpi_windows_ < config_.epoch_windows) return;
      cpi_off_ = cpi_accum_ / cpi_windows_;
      cpi_accum_ = 0.0;
      cpi_windows_ = 0;
      settle_windows_ = 0;
      epoch_state_ = EpochState::kDeploying;
      [[fallthrough]];
    }
    case EpochState::kDeploying: {
      const int deployed = DeployQualifying(profile);
      ++settle_windows_;
      if (epoch_deployments_.empty()) {
        // Nothing qualified yet: keep probing from a fresh baseline so the
        // eventual comparison stays current.
        if (settle_windows_ >= config_.max_settle_windows) {
          epoch_state_ = EpochState::kMeasureOff;
          cpi_accum_ = 0.0;
          cpi_windows_ = 0;
        }
        return;
      }
      // Wait until the deployment set stabilizes (or the cap is reached),
      // then start the post-deployment measurement.
      if (deployed == 0 || settle_windows_ >= config_.max_settle_windows) {
        epoch_state_ = EpochState::kMeasureOn;
        cpi_accum_ = 0.0;
        cpi_windows_ = 0;
      }
      return;
    }
    case EpochState::kMeasureOn: {
      cpi_accum_ += window_cpi;
      if (++cpi_windows_ < config_.epoch_windows) return;
      const double cpi_on = cpi_accum_ / cpi_windows_;
      cpi_accum_ = 0.0;
      cpi_windows_ = 0;
      if (cpi_on > cpi_off_ * config_.epoch_slowdown_threshold) {
        RevertEpoch();
        ++stats_.epochs_reverted;
        TraceInstant("epoch.reverted");
        epoch_state_ = EpochState::kMeasureOff;  // measure fresh, try again
      } else {
        ++stats_.epochs_kept;
        TraceInstant("epoch.kept");
        epoch_deployments_.clear();
        epoch_heads_.clear();
        cpi_off_ = cpi_on;  // the kept level is the new baseline
        epoch_state_ = EpochState::kHold;
      }
      return;
    }
    case EpochState::kHold: {
      // Watch for newly qualifying loops (phase drift, late discovery);
      // open a new epoch against the current level when any appear.
      const int deployed = DeployQualifying(profile);
      if (deployed > 0) {
        settle_windows_ = 0;
        epoch_state_ = EpochState::kDeploying;
      }
      return;
    }
  }
}

void CobraRuntime::PhaseDetect(const CounterTotals& window) {
  if (window.instructions == 0) return;
  // Let the cold-start transient pass before pinning the phase reference,
  // or the warm-up itself reads as a "phase change".
  if (stats_.evaluations <= static_cast<std::uint64_t>(config_.epoch_windows)) {
    return;
  }
  const double l3_per_inst = static_cast<double>(window.l3_misses) /
                             static_cast<double>(window.instructions);
  if (!reference_l3_per_inst_.has_value()) {
    reference_l3_per_inst_ = l3_per_inst;
    return;
  }
  const double ref = *reference_l3_per_inst_;
  const double denom = std::max(ref, 1e-9);
  const bool shifted =
      std::fabs(l3_per_inst - ref) / denom > config_.phase_change_threshold;
  // Hysteresis: a single outlier window (e.g. one cold array sweep) must
  // not trigger re-adaptation; require two consecutive shifted windows.
  if (!shifted) {
    phase_shift_pending_ = false;
    return;
  }
  if (!phase_shift_pending_) {
    phase_shift_pending_ = true;
    return;
  }
  phase_shift_pending_ = false;

  // Continuous re-adaptation: revert everything, forget loop verdicts,
  // restart the epoch machinery against the new phase.
  ++stats_.phase_changes;
  TraceInstant("phase_change");
  for (const auto& deployment : trace_cache_.deployments()) {
    if (deployment.active) {
      trace_cache_.Revert(deployment.id);
      ++stats_.rollbacks;
      TraceInstant("revert");
    }
  }
  history_.clear();
  epoch_deployments_.clear();
  epoch_heads_.clear();
  cpi_accum_ = 0.0;
  cpi_windows_ = 0;
  epoch_state_ = EpochState::kMeasureOff;
  reference_l3_per_inst_ = l3_per_inst;
}

}  // namespace cobra::core
