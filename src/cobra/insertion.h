// ADORE-style runtime prefetch *insertion* — the single-threaded ancestor
// of COBRA (Lu et al. [17], "runtime data cache prefetching in a dynamic
// optimization system"), which the paper builds on and cites as the source
// of its delinquent-load methodology.
//
// Where COBRA's two headline optimizations remove or re-hint prefetches in
// aggressively compiled binaries, this optimizer serves the opposite case:
// a conservatively compiled loop (no lfetches) whose DEAR profile shows
// delinquent loads with a *steady stride*. It then
//   1. infers the stride from consecutive DEAR (pc, data address) records,
//   2. scavenges a dead static general register in the loop body,
//   3. plants `add rS = dist, r_base ; lfetch.nt1 [rS]` into free nop
//      slots of the trace copy, predicated like the load itself.
//
// Everything operates on the binary level: no recompilation, just slot
// patches inside the code-cache trace.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/scev.h"
#include "isa/image.h"

namespace cobra::core {

// A prefetch-insertion candidate: a delinquent load and its inferred
// access stride (bytes per loop iteration).
struct InsertionCandidate {
  isa::Addr load_pc = 0;      // pc within the region to be optimized
  std::int64_t stride = 0;    // inferred, nonzero
};

// Verdict of cross-checking a DEAR-inferred stride against the loop's
// static scalar-evolution facts (CobraConfig::static_priors).
enum class PriorVerdict : std::uint8_t {
  kNoPrior,    // unsolved loop / unclassified access: full confirmations
  kConfirmed,  // dynamic stride on the static lattice: one confirmation
  kMismatch,   // contradicted stride: hold back until the profile agrees
  kInvariant,  // provably loop-invariant address: never select
};

// The static-prior arbitration rule (DESIGN.md §8): DEAR deltas are
// sampled, so a trustworthy dynamic stride is some whole number of
// iterations ahead on the static stream — any nonzero same-sign multiple
// of the chrec stride counts as agreement. The caller decides what each
// verdict means for the confirmation requirement (the controller maps
// kConfirmed to a single confirmation, kMismatch/kInvariant to rejection).
PriorVerdict ArbitrateStaticPrior(const analysis::LoopScev& scev,
                                  isa::Addr load_pc,
                                  std::int64_t dynamic_stride);

// Finds a static general register r8..r31 that is provably dead across
// bundles [begin, end]: non-prefetch liveness (lfetch address reads keep
// nothing alive) over the CFG rooted at `begin_bundle` never has it live
// at any region slot. A register the region writes but never consumes is
// therefore fair game even though it appears in register fields — the
// precision the conservative scan below gives up. Returns std::nullopt
// if none.
std::optional<int> FindFreeScratchGr(const isa::BinaryImage& image,
                                     isa::Addr begin_bundle,
                                     isa::Addr end_bundle);

// The pre-dataflow scavenger: rejects r8..r31 if *any* register field of
// any instruction in the region carries its number, whether or not the
// value is ever consumed. Kept for comparison (and as the fallback story
// in DESIGN.md §7).
std::optional<int> FindFreeScratchGrConservative(const isa::BinaryImage& image,
                                                 isa::Addr begin_bundle,
                                                 isa::Addr end_bundle);

// Returns the pcs of rewritable nop slots in [begin, end] (plain nops with
// qp == 0 or any qp — the insertion copies the load's predicate over).
std::vector<isa::Addr> FindNopSlots(const isa::BinaryImage& image,
                                    isa::Addr begin_bundle,
                                    isa::Addr end_bundle);

// Plants prefetches for the candidates into the region (normally a trace
// copy). Each candidate consumes one scavenged register and two nop slots:
// the address computation must precede the lfetch in program order.
// `target_distance_bytes` is how far ahead to prefetch (rounded to a
// multiple of the stride, at least one stride). Returns the number of
// prefetches inserted (candidates are skipped when resources run out).
int InsertPrefetches(isa::BinaryImage& image, isa::Addr begin_bundle,
                     isa::Addr end_bundle,
                     const std::vector<InsertionCandidate>& candidates,
                     int target_distance_bytes = 1024);

}  // namespace cobra::core
