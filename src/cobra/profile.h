// Dynamic profiles: what COBRA learns from perfmon samples.
//
// Two data structures per monitored thread, exactly as Section 3/4 of the
// paper uses them:
//   * a delinquent-load table keyed by instruction address, fed by DEAR
//     records that pass the first-level latency filter (> L3 hit latency);
//     a second-level threshold separates *coherent* misses (latencies in
//     the 180-200+ range) from plain memory loads (120-150);
//   * a loop table built from BTB entries: a taken branch whose target is
//     at or below its source is a loop back-edge, giving the loop body
//     boundaries [target, source] without any static analysis.
// The optimization thread aggregates these across threads into a
// SystemProfile and adds system-wide counter-derived metrics (the
// coherent-access ratio of Section 4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "isa/types.h"
#include "perfmon/sampling.h"
#include "support/simtypes.h"
#include "support/snapshot.h"

namespace cobra::core {

// Aggregated DEAR statistics for one load instruction.
struct DelinquentLoad {
  isa::Addr pc = 0;
  std::uint64_t samples = 0;           // DEAR records attributed to this pc
  std::uint64_t coherent_samples = 0;  // latency above the coherent threshold
  std::uint64_t total_latency = 0;
  isa::Addr last_data_addr = 0;

  // Stride inference from consecutive DEAR data addresses (ADORE-style,
  // used by the prefetch-insertion optimizer): the current candidate
  // stride and how many consecutive records confirmed it.
  std::int64_t stride = 0;
  std::uint32_t stride_confirmations = 0;

  double AvgLatency() const {
    return samples ? static_cast<double>(total_latency) /
                         static_cast<double>(samples)
                   : 0.0;
  }

  void SaveState(support::StateWriter& w) const {
    w.U64(pc);
    w.U64(samples);
    w.U64(coherent_samples);
    w.U64(total_latency);
    w.U64(last_data_addr);
    w.I64(stride);
    w.U32(stride_confirmations);
  }
  bool RestoreState(support::StateReader& r) {
    r.U64(&pc);
    r.U64(&samples);
    r.U64(&coherent_samples);
    r.U64(&total_latency);
    r.U64(&last_data_addr);
    r.I64(&stride);
    return r.U32(&stride_confirmations);
  }
};

// A loop candidate discovered from BTB back-edges.
struct LoopCandidate {
  isa::Addr head = 0;            // branch target (loop entry bundle)
  isa::Addr back_branch_pc = 0;  // branch source (the loop-closing branch)
  std::uint64_t hits = 0;        // BTB occurrences (hotness proxy)

  // Sampled execution-cost attribution: when two *consecutive* samples of
  // a thread land inside this loop, the elapsed cycles between them are
  // the loop's own cost for one sampling period of instructions. The
  // resulting cycles-per-sample metric is comparable across time for the
  // same loop (and between a loop and its optimized trace copy), which is
  // what the controller's trial verdicts use.
  std::uint64_t attributed_cycles = 0;
  std::uint64_t attributed_samples = 0;

  double CyclesPerSample() const {
    return attributed_samples ? static_cast<double>(attributed_cycles) /
                                    static_cast<double>(attributed_samples)
                              : 0.0;
  }

  void SaveState(support::StateWriter& w) const {
    w.U64(head);
    w.U64(back_branch_pc);
    w.U64(hits);
    w.U64(attributed_cycles);
    w.U64(attributed_samples);
  }
  bool RestoreState(support::StateReader& r) {
    r.U64(&head);
    r.U64(&back_branch_pc);
    r.U64(&hits);
    r.U64(&attributed_cycles);
    return r.U64(&attributed_samples);
  }
};

// Counter snapshot accumulated from samples. The sampling configuration
// fixes the four counters as {L3 misses, bus memory transactions,
// BUS_RD_HITM, BUS_RD_HIT}; cycles and instructions are derived from the
// sample timestamp and index.
struct CounterTotals {
  std::uint64_t l3_misses = 0;
  std::uint64_t bus_memory = 0;
  std::uint64_t bus_rd_hitm = 0;
  std::uint64_t bus_rd_hit = 0;
  Cycle cycles = 0;
  std::uint64_t instructions = 0;

  CounterTotals& operator+=(const CounterTotals& o) {
    l3_misses += o.l3_misses;
    bus_memory += o.bus_memory;
    bus_rd_hitm += o.bus_rd_hitm;
    bus_rd_hit += o.bus_rd_hit;
    cycles += o.cycles;
    instructions += o.instructions;
    return *this;
  }
  CounterTotals operator-(const CounterTotals& o) const {
    CounterTotals d = *this;
    d.l3_misses -= o.l3_misses;
    d.bus_memory -= o.bus_memory;
    d.bus_rd_hitm -= o.bus_rd_hitm;
    d.bus_rd_hit -= o.bus_rd_hit;
    d.cycles -= o.cycles;
    d.instructions -= o.instructions;
    return d;
  }

  // Fraction of bus data transactions that drew a coherent snoop response —
  // the paper's trigger metric for coherent-miss optimization.
  double CoherentRatio() const {
    return bus_memory ? static_cast<double>(bus_rd_hitm + bus_rd_hit) /
                            static_cast<double>(bus_memory)
                      : 0.0;
  }

  void SaveState(support::StateWriter& w) const {
    w.U64(l3_misses);
    w.U64(bus_memory);
    w.U64(bus_rd_hitm);
    w.U64(bus_rd_hit);
    w.U64(cycles);
    w.U64(instructions);
  }
  bool RestoreState(support::StateReader& r) {
    r.U64(&l3_misses);
    r.U64(&bus_memory);
    r.U64(&bus_rd_hitm);
    r.U64(&bus_rd_hit);
    r.U64(&cycles);
    return r.U64(&instructions);
  }
};

// The indices the four HPM counters must be programmed with for the
// CounterTotals decoding above.
perfmon::SamplingConfig CobraSamplingConfig();

class ThreadProfile {
 public:
  // `coherent_latency_threshold` is the second-level DEAR filter;
  // `attribution_warmup_samples` suppresses cost attribution during the
  // cold-start phase so pre-optimization loop costs reflect steady state.
  explicit ThreadProfile(Cycle coherent_latency_threshold = 180,
                         std::uint64_t attribution_warmup_samples = 0)
      : coherent_threshold_(coherent_latency_threshold),
        attribution_warmup_(attribution_warmup_samples) {}

  void AddSample(const perfmon::Sample& sample);

  const std::map<isa::Addr, DelinquentLoad>& loads() const { return loads_; }
  const std::map<isa::Addr, LoopCandidate>& loops() const { return loops_; }
  const CounterTotals& totals() const { return totals_; }
  std::uint64_t samples_seen() const { return samples_seen_; }

  void Clear();

  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

 private:
  Cycle coherent_threshold_;
  std::uint64_t attribution_warmup_;
  std::map<isa::Addr, DelinquentLoad> loads_;
  std::map<isa::Addr, LoopCandidate> loops_;  // keyed by head
  CounterTotals totals_;
  std::uint64_t samples_seen_ = 0;
  isa::Addr last_dear_pc_ = 0;
  Cycle last_dear_latency_ = 0;
  isa::Addr last_dear_addr_ = 0;
  isa::Addr prev_sample_pc_ = 0;
  Cycle prev_sample_time_ = 0;
  bool have_prev_sample_ = false;
};

// The optimization thread's aggregated view.
struct SystemProfile {
  CounterTotals totals;
  std::vector<LoopCandidate> hot_loops;          // sorted by hits, descending
  std::vector<DelinquentLoad> delinquent_loads;  // every filtered load
  std::vector<DelinquentLoad> coherent_loads;    // loads with coherent misses

  // Merges the given thread profiles.
  static SystemProfile Aggregate(
      const std::vector<const ThreadProfile*>& threads);

  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);
};

}  // namespace cobra::core
