// CobraRuntime: the public entry point of the COBRA framework, and the
// optimization thread that drives it (Section 3.2).
//
// Attach it to a running Machine the way the real system is LD_PRELOADed
// into a process: it spins up one monitoring thread per working thread
// (fed by the perfmon sampling driver) and a single optimization thread
// that periodically:
//   1. aggregates the per-thread profiles into a system-wide view;
//   2. computes the coherent-access ratio (coherent snoop responses over
//      bus transactions) and, if it crosses the trigger threshold,
//   3. walks the hot loops discovered from BTB back-edges, keeps those
//      that contain prefetches and at least one delinquent load whose
//      DEAR latencies mark it as a *coherent* miss (the two-level filter
//      of Section 4),
//   4. builds an optimized trace per selected loop (noprefetch or
//      prefetch.excl) in the code cache and redirects the binary, and
//   5. judges every deployment epoch by *measurement*: global CPI averaged
//      over several sampling windows before vs after, reverting epochs
//      that made the program slower — and, in adaptive mode, retrying with
//      the alternative strategy and re-adapting from scratch when a phase
//      change is detected (Continuous Binary Re-Adaptation).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/scev.h"
#include "cobra/insertion.h"
#include "cobra/monitor.h"
#include "cobra/optimizer.h"
#include "cobra/planner.h"
#include "cobra/profile.h"
#include "cobra/trace_cache.h"
#include "machine/machine.h"
#include "perfmon/sampling.h"

namespace cobra::core {

struct CobraConfig {
  // Monitoring.
  std::uint64_t sampling_period_insts = 2000;
  std::size_t batch_size = 16;
  Cycle dear_first_level_threshold = 12;    // > L3 hit latency
  Cycle coherent_latency_threshold = 180;   // second-level DEAR filter
  // Cycles charged to a CPU for each delivered batch (signal handling +
  // buffer copy on that CPU). 0 = free monitoring.
  Cycle monitor_overhead_cycles = 0;

  // Optimization-thread policy.
  OptKind strategy = OptKind::kNoprefetch;
  std::uint64_t batches_per_evaluation = 2;  // wake period
  double coherent_ratio_threshold = 0.05;    // system-wide trigger
  std::uint64_t min_loop_hits = 8;           // hotness gate
  std::uint64_t max_deployments = 64;
  // Ablation switches for the two selection filters.
  bool require_coherent_ratio = true;
  bool require_coherent_load_in_loop = true;

  // Measured-epoch discipline (on by default: COBRA adapts by observation,
  // not faith). Each epoch measures the global CPI over `epoch_windows`
  // wake windows, deploys every qualifying loop, lets the system settle,
  // measures again, and keeps the epoch only if the program did not get
  // slower. Averaging several windows makes the comparison robust to the
  // program's rotating phase mix. Samples seen before
  // `attribution_warmup_samples` per thread are ignored (cold caches).
  bool measured_epochs = true;
  int epoch_windows = 6;
  double epoch_slowdown_threshold = 1.01;   // revert epoch if >1% slower
  int max_settle_windows = 6;               // deployment phase cap
  std::uint64_t attribution_warmup_samples = 24;

  // Adaptive strategy mode: a reverted epoch's loops may be retried with
  // the other optimization; plus phase-change re-adaptation.
  bool adaptive = false;
  double phase_change_threshold = 0.60;     // relative L3-per-inst shift

  // Static-analysis priors for the insertion strategy. When on, each
  // DEAR-inferred stride is cross-checked against the loop's scalar-
  // evolution solution (analysis::AnalyzeLoop, cached per head): a dynamic
  // stride on the static chrec lattice deploys after a single confirmation
  // instead of `stride_confirmations`; a contradicted stride is held back
  // until the profile agrees; a statically loop-invariant load is never
  // selected (its DEAR deltas are re-reference noise, not a stream).
  bool static_priors = false;
  int stride_confirmations = 3;  // confirmations required without a prior

  // Strategy selection engine (DESIGN.md §9). The per-loop heuristic is
  // the bit-identical default; PlannerKind::kCost routes every adaptation
  // epoch through the global profit/cost planner, which scores each
  // (loop, OptKind) candidate and solves for the best patch set under
  // `plan_budget`. COBRA_PLANNER=heuristic|cost overrides the default; an
  // explicit assignment in code wins over the environment.
  PlannerKind planner = PlannerFromEnv(PlannerKind::kHeuristic);
  double plan_budget = 64.0;             // SolvePlan budget, in cost units
  double plan_min_profit_delta = 256.0;  // cycles a plan revision must win
  std::uint64_t plan_cooldown_cycles = 100000;  // between plan revisions
};

class CobraRuntime {
 public:
  CobraRuntime(machine::Machine* machine, CobraConfig config);
  ~CobraRuntime();

  CobraRuntime(const CobraRuntime&) = delete;
  CobraRuntime& operator=(const CobraRuntime&) = delete;

  // Starts monitoring a working thread (paper: a monitoring thread is
  // created when a working thread is forked).
  void AttachThread(CpuId cpu, int tid);
  // Convenience: threads 0..n-1 bound to CPUs 0..n-1.
  void AttachAll(int num_threads);
  void DetachAll();

  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t deployments = 0;
    std::uint64_t rollbacks = 0;      // deployments reverted by a verdict
    std::uint64_t epochs_kept = 0;
    std::uint64_t epochs_reverted = 0;
    std::uint64_t strategy_switches = 0;
    std::uint64_t phase_changes = 0;
    std::uint64_t lfetches_rewritten = 0;
    std::uint64_t prefetches_inserted = 0;
    std::uint64_t patch_verifications = 0;  // passes of the safety verifier
    double last_coherent_ratio = 0.0;
    // Static-prior arbitration (static_priors on; all zero otherwise).
    std::uint64_t scev_loops_analyzed = 0;
    std::uint64_t scev_loops_solved = 0;
    std::uint64_t prior_hits = 0;           // dynamic stride on the lattice
    std::uint64_t prior_mismatches = 0;     // contradicted stride held back
    std::uint64_t invariant_suppressed = 0; // invariant loads never selected
    // Global time when the first trace went live (0 = none yet): the
    // latency-to-benefit figure the static_priors ablation compares.
    std::uint64_t first_deploy_cycles = 0;
  };

  const Stats& stats() const { return stats_; }
  const TraceCache& trace_cache() const { return trace_cache_; }
  // The cost-model planner (all-zero stats under the heuristic default).
  const Planner& planner() const { return planner_; }
  const SystemProfile& last_profile() const { return last_profile_; }
  const std::vector<std::unique_ptr<MonitoringThread>>& monitors() const {
    return monitors_;
  }
  const CobraConfig& config() const { return config_; }

  // Forces an optimization-thread wake-up now (tests; normally it runs on
  // the batch cadence).
  void ForceEvaluation() { OptimizationThreadWake(); }

  // Checkpointing: appends/consumes a "cobra" section (profiles, deployed-
  // patch bookkeeping, epoch state machine, planner hysteresis, perfmon
  // driver buffers). Compose with Machine::SaveCheckpoint/RestoreCheckpoint
  // on the same writer/reader; restore into a runtime that already called
  // AttachAll for the same threads (hooks and handlers are live closures
  // the snapshot does not carry). The scev cache restores by re-running
  // the deterministic static analysis on the restored image, without
  // touching the already-restored arbitration stats.
  void SaveState(support::StateWriter& w) const;
  bool RestoreState(support::StateReader& r);

 private:
  // Measured-epoch state machine.
  enum class EpochState {
    kMeasureOff,  // accumulating the pre-deployment CPI baseline
    kDeploying,   // deploying qualifying loops (until none new, or cap)
    kMeasureOn,   // accumulating the post-deployment CPI
    kHold,        // epoch kept; watching for new qualifying loops
  };

  void OnBatch(int cpu, std::span<const perfmon::Sample> batch);
  void OptimizationThreadWake();
  // Instant event on the machine's "cobra" trace lane (no-op untraced).
  void TraceInstant(std::string name);
  // Deploys every currently qualifying hot loop; returns how many. Under
  // PlannerKind::kCost, delegates to DeployPlanned.
  int DeployQualifying(const SystemProfile& profile);

  // Cost-planner path (DESIGN.md §9): qualification results cached by the
  // candidate pre-pass, reused verbatim by the deployment sweep so the
  // arbitration stats count once per wake, like the heuristic.
  struct PlannedQualification {
    LoopCandidate loop;
    std::vector<isa::Addr> lfetches;          // coherence kinds
    std::vector<InsertionCandidate> inserts;  // insertion kind
  };
  // Scores every qualifying (loop, OptKind) pair with estimated benefit
  // (DEAR latency mass × protocol-aware traffic shares) and cost (deploy
  // overhead + trace-cache slots + planted-prefetch bus occupancy).
  std::vector<PlanCandidate> GatherPlanCandidates(
      const SystemProfile& profile,
      std::map<isa::Addr, PlannedQualification>* qualified);
  // Solves/refreshes the plan, reverts live patches a revision dropped,
  // deploys the accepted set; returns how many went live this wake.
  int DeployPlanned(const SystemProfile& profile);
  void EpochStep(const SystemProfile& profile, double window_cpi);
  void PhaseDetect(const CounterTotals& window);
  void RevertEpoch();

  bool LoopQualifies(const SystemProfile& profile, const LoopCandidate& loop,
                     std::vector<isa::Addr>* lfetches) const;
  // Qualification for the ADORE-style insertion strategy: a hot loop with
  // *no* prefetches whose delinquent loads miss to memory (not coherence)
  // with a confidently inferred stride.
  bool LoopQualifiesForInsertion(const SystemProfile& profile,
                                 const LoopCandidate& loop,
                                 std::vector<InsertionCandidate>* out);
  // Scalar-evolution facts for a profiled loop, solved once per head and
  // cached (re-solved only if the sampled back edge moves).
  const analysis::LoopScev& ScevFor(const LoopCandidate& loop);

  machine::Machine* machine_;
  CobraConfig config_;
  perfmon::SamplingDriver driver_;
  TraceCache trace_cache_;
  obs::Registry::Registration metrics_;
  std::vector<std::unique_ptr<MonitoringThread>> monitors_;
  Stats stats_;
  SystemProfile last_profile_;
  std::uint64_t batches_since_wake_ = 0;

  Planner planner_;

  EpochState epoch_state_ = EpochState::kMeasureOff;
  double cpi_accum_ = 0.0;
  int cpi_windows_ = 0;
  double cpi_off_ = 0.0;            // baseline of the current epoch
  int settle_windows_ = 0;
  // Instructions retired across the kMeasureOn windows (cost planner
  // only): the realized-benefit figure credits (cpi_off - cpi_on) cycles
  // per measured instruction to the plan when an epoch is kept.
  double epoch_on_insts_ = 0.0;
  std::vector<int> epoch_deployments_;
  std::vector<isa::Addr> epoch_heads_;

  struct LoopHistory {
    bool tried_noprefetch = false;
    bool tried_excl = false;
    bool blacklisted = false;
  };
  std::map<isa::Addr, LoopHistory> history_;
  std::map<isa::Addr, analysis::LoopScev> scev_cache_;  // by head bundle
  CounterTotals window_start_{};
  // Machine::fast_forward_generation() at the last wake: a moved generation
  // means the window spanned a fast-forwarded gap and its CPI is garbage.
  // Host-side mode tracking, deliberately not checkpointed.
  std::uint64_t fast_forward_generation_ = 0;
  std::optional<double> reference_l3_per_inst_;
  bool phase_shift_pending_ = false;  // hysteresis for phase detection
};

}  // namespace cobra::core
