// Cost-model-driven optimization planner (DESIGN.md §9).
//
// The per-loop heuristic in CobraRuntime deploys every qualifying loop in
// hotness order, one verdict at a time. The planner answers the global
// question instead: which *set* of patches maximizes estimated benefit
// under a deployment budget? Each candidate — one loop region under one
// OptKind — carries an estimated benefit in cycles (the DEAR latency mass
// the patch targets, scaled by protocol-aware coherence-traffic shares)
// and a cost in budget units (patch deploy overhead, trace-cache slots,
// planted-prefetch bus occupancy). SolvePlan solves the knapsack
// relaxation with a greedy-by-density pass plus bounded exchange
// improvement — deterministic, no RNG, input-order independent — and the
// stateful Planner wraps the solver with hysteresis (a minimum profit
// delta and a cooldown window) so continuous re-adaptation cannot thrash
// across program phases.
//
// The controller consults the plan on every adaptation epoch when
// CobraConfig::planner == PlannerKind::kCost (COBRA_PLANNER=cost); the
// heuristic default is bit-identical to the pre-planner behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "cobra/optimizer.h"
#include "isa/image.h"
#include "support/snapshot.h"

namespace cobra::core {

// Which strategy-selection engine the controller runs.
enum class PlannerKind : std::uint8_t { kHeuristic, kCost };

const char* PlannerKindName(PlannerKind kind);
// Parses "heuristic" / "cost" (case-insensitive); false leaves *out alone.
bool ParsePlannerKind(const char* text, PlannerKind* out);
// COBRA_PLANNER environment override, mirroring mem::ProtocolFromEnv: the
// parsed value when set and valid, `fallback` otherwise.
PlannerKind PlannerFromEnv(PlannerKind fallback);

// One candidate patch: a loop region under one optimization kind, scored.
struct PlanCandidate {
  isa::Addr head = 0;            // loop-head bundle; the loop's identity
  isa::Addr back_branch_pc = 0;
  OptKind kind = OptKind::kNone;
  double benefit = 0.0;          // estimated cycles saved per epoch
  double cost = 0.0;             // budget units (DESIGN.md §9)
};

// A solved patch set. At most one accepted candidate per loop head (the
// optimization kinds are mutually exclusive on a region).
struct Plan {
  std::vector<PlanCandidate> accepted;  // canonical (head, kind) order
  double total_benefit = 0.0;
  double total_cost = 0.0;
  // Positive-benefit candidates the budget / one-per-head constraints left
  // out of this solve (hysteresis rejections are counted by the Planner).
  std::uint64_t rejected_budget = 0;

  const PlanCandidate* Find(isa::Addr head) const;
  bool Contains(isa::Addr head) const { return Find(head) != nullptr; }
  // Same selected (head, kind) set — the scores may differ.
  bool SameSelection(const Plan& other) const;
};

// Deterministic solve of the budgeted patch-selection problem (knapsack
// relaxation with one-per-head exclusivity): candidates with non-positive
// benefit are dropped, the rest are taken greedily by benefit density,
// then improved by bounded exchange passes (fill, 1-out/1-in, 1-out/2-in,
// 2-out/1-in) and a best-single-item check. The result is independent of
// the input order and contains no randomness; on the small candidate sets
// the controller produces it is exhaustively close to optimal (the
// planner test suite enumerates all subsets and asserts the bound).
Plan SolvePlan(std::vector<PlanCandidate> candidates, double budget);

// Cumulative planner accounting, exported as the cobra.planner.* metric
// family by the controller.
struct PlannerStats {
  std::uint64_t solves = 0;               // Propose calls
  std::uint64_t candidates_seen = 0;      // across all solves
  std::uint64_t accepted = 0;             // accepted across adopted plans
  std::uint64_t rejected_budget = 0;      // budget-rejected, adopted plans
  std::uint64_t rejected_hysteresis = 0;  // differing solves suppressed
  std::uint64_t plan_revisions = 0;       // adoptions after the first plan
  double estimated_benefit = 0.0;  // sum of adopted plans' total_benefit
  double realized_benefit = 0.0;   // measured epoch gains (controller-fed)
};

// The stateful planner: re-solves on demand and applies hysteresis before
// replacing the plan in force.
class Planner {
 public:
  struct Options {
    double budget = 64.0;            // SolvePlan budget, in cost units
    double min_profit_delta = 256.0; // cycles a revision must win by
    std::uint64_t cooldown_cycles = 100000;  // between plan revisions
  };

  explicit Planner(Options options) : options_(options) {}

  // Scores a fresh solve against the plan in force and returns the plan to
  // deploy. A differing solve replaces the current plan only if the
  // cooldown has elapsed *and* the new total benefit beats the current
  // selection — re-scored against the fresh candidate estimates — by at
  // least min_profit_delta; otherwise the proposal is rejected
  // (rejected_hysteresis) and the standing plan stays in force.
  const Plan& Propose(const std::vector<PlanCandidate>& candidates,
                      std::uint64_t now_cycles);

  // Phase change: forget the standing plan and the cooldown so
  // re-adaptation starts from scratch (stats are preserved).
  void Reset();

  // Measured outcome of a kept epoch, credited against the estimates.
  void AddRealizedBenefit(double cycles) {
    stats_.realized_benefit += cycles;
  }

  const Plan& plan() const { return plan_; }
  bool has_plan() const { return has_plan_; }
  const PlannerStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  // Checkpointing: the standing plan, its hysteresis clock, and the stats.
  // Options are configuration, not state.
  void SaveState(support::StateWriter& w) const {
    w.U64(static_cast<std::uint64_t>(plan_.accepted.size()));
    for (const PlanCandidate& c : plan_.accepted) {
      w.U64(c.head);
      w.U64(c.back_branch_pc);
      w.U8(static_cast<std::uint8_t>(c.kind));
      w.F64(c.benefit);
      w.F64(c.cost);
    }
    w.F64(plan_.total_benefit);
    w.F64(plan_.total_cost);
    w.U64(plan_.rejected_budget);
    w.Bool(has_plan_);
    w.U64(last_revision_cycles_);
    w.U64(stats_.solves);
    w.U64(stats_.candidates_seen);
    w.U64(stats_.accepted);
    w.U64(stats_.rejected_budget);
    w.U64(stats_.rejected_hysteresis);
    w.U64(stats_.plan_revisions);
    w.F64(stats_.estimated_benefit);
    w.F64(stats_.realized_benefit);
  }
  bool RestoreState(support::StateReader& r) {
    std::uint64_t count = 0;
    r.U64(&count);
    if (!r.Ok()) return false;
    plan_.accepted.resize(count);
    for (PlanCandidate& c : plan_.accepted) {
      std::uint8_t kind = 0;
      r.U64(&c.head);
      r.U64(&c.back_branch_pc);
      r.U8(&kind);
      r.F64(&c.benefit);
      r.F64(&c.cost);
      if (!r.Ok() ||
          kind > static_cast<std::uint8_t>(OptKind::kInsertPrefetch)) {
        return false;
      }
      c.kind = static_cast<OptKind>(kind);
    }
    r.F64(&plan_.total_benefit);
    r.F64(&plan_.total_cost);
    r.U64(&plan_.rejected_budget);
    r.Bool(&has_plan_);
    r.U64(&last_revision_cycles_);
    r.U64(&stats_.solves);
    r.U64(&stats_.candidates_seen);
    r.U64(&stats_.accepted);
    r.U64(&stats_.rejected_budget);
    r.U64(&stats_.rejected_hysteresis);
    r.U64(&stats_.plan_revisions);
    r.F64(&stats_.estimated_benefit);
    r.F64(&stats_.realized_benefit);
    return r.Ok();
  }

 private:
  void Adopt(Plan next, std::uint64_t now_cycles);

  Options options_;
  Plan plan_;
  bool has_plan_ = false;
  std::uint64_t last_revision_cycles_ = 0;
  PlannerStats stats_;
};

}  // namespace cobra::core
