#include "cobra/trace_cache.h"

#include "analysis/cfg.h"
#include "support/check.h"

namespace cobra::core {

TraceCache::TraceCache(isa::BinaryImage* image) : image_(image) {
  COBRA_CHECK(image != nullptr);
  if (image_->code_cache_start() == 0) image_->BeginCodeCache();
}

bool TraceCache::RegionIsRelocatable(const LoopRegion& loop) const {
  const isa::Addr begin = isa::BundleAddr(loop.head);
  const isa::Addr end = isa::BundleAddr(loop.back_branch_pc);
  if (begin > end) return false;
  if (!image_->Contains(begin) || !image_->Contains(end)) return false;
  if (image_->InCodeCache(begin)) return false;  // already a trace
  const auto num_bundles =
      static_cast<std::int64_t>((end - begin) / isa::kBundleBytes) + 1;
  for (isa::Addr bundle = begin; bundle <= end;
       bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Instruction& inst = image_->Fetch(isa::MakePc(bundle, slot));
      if (!isa::IsBranch(inst.op)) continue;
      if (inst.op == isa::Opcode::kBrl) return false;  // absolute target
      // Relative branch: target must stay inside [begin, end].
      const auto offset =
          static_cast<std::int64_t>((bundle - begin) / isa::kBundleBytes);
      const std::int64_t target = offset + inst.imm;
      if (target < 0 || target >= num_bundles) return false;
    }
  }
  return true;
}

int TraceCache::Deploy(const LoopRegion& loop, OptKind opt) {
  // Refuse only if an *active* deployment already covers this head; a
  // reverted loop may be redeployed (possibly with a different strategy).
  if (const Deployment* existing = FindByHead(isa::BundleAddr(loop.head));
      existing != nullptr && existing->active) {
    return -1;
  }
  if (image_->InCodeCache(loop.head)) return -1;  // already a trace
  // CFG region oracle: the back edge must close a natural loop fully
  // contained in [head, back_branch].
  if (!analysis::CheckLoopRegion(*image_, loop.head, loop.back_branch_pc)
           .ok) {
    return -1;
  }
  if (!RegionIsRelocatable(loop)) return -1;

  const isa::Addr begin = isa::BundleAddr(loop.head);
  const isa::Addr end = isa::BundleAddr(loop.back_branch_pc);

  // Copy the loop body into the code cache (raw slots: bundle distances are
  // preserved, so in-region relative branches need no fixup).
  const isa::Addr trace_head = image_->code_end();
  for (isa::Addr bundle = begin; bundle <= end;
       bundle += isa::kBundleBytes) {
    // Copy before appending: Fetch returns references into the image's own
    // storage, which AppendBundle may reallocate.
    const isa::Instruction slot0 = image_->Fetch(isa::MakePc(bundle, 0));
    const isa::Instruction slot1 = image_->Fetch(isa::MakePc(bundle, 1));
    const isa::Instruction slot2 = image_->Fetch(isa::MakePc(bundle, 2));
    image_->AppendBundle(slot0, slot1, slot2);
  }
  // Exit stub: fall through back to the original code after the loop.
  image_->AppendBundle(isa::Nop(isa::Unit::kM), isa::Nop(isa::Unit::kI),
                       isa::Brl(end + isa::kBundleBytes));
  ++traces_built_;

  // Apply the optimization to the trace copy only.
  const isa::Addr trace_end =
      trace_head + (end - begin);  // last copied bundle
  const int rewritten = ApplyOptimization(*image_, trace_head, trace_end, opt);

  // Save the original head bundle and redirect it into the trace.
  std::array<isa::EncodedSlot, 3> saved{};
  for (unsigned slot = 0; slot < 3; ++slot) {
    saved[slot] = image_->Raw(isa::MakePc(begin, slot));
  }
  saved_bundles_[begin] = saved;
  image_->Patch(isa::MakePc(begin, 0), isa::Nop(isa::Unit::kM));
  image_->Patch(isa::MakePc(begin, 1), isa::Nop(isa::Unit::kI));
  image_->Patch(isa::MakePc(begin, 2), isa::Brl(trace_head));
  ++redirects_active_;

  Deployment deployment;
  deployment.id = static_cast<int>(deployments_.size());
  deployment.loop = loop;
  deployment.loop.head = begin;
  deployment.trace_head = trace_head;
  deployment.opt = opt;
  deployment.lfetches_rewritten = rewritten;
  deployment.active = true;
  deployments_.push_back(deployment);
  CheckDeployment(deployment.id);
  return deployment.id;
}

analysis::PatchReport TraceCache::VerifyDeployment(int id) const {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  const Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  const auto it = saved_bundles_.find(deployment.loop.head);
  COBRA_CHECK(it != saved_bundles_.end());
  return analysis::VerifyTracePatch(
      *image_, deployment.loop.head, deployment.loop.back_branch_pc,
      it->second, deployment.trace_head, deployment.active);
}

analysis::PatchReport TraceCache::CheckDeployment(int id) {
  analysis::PatchReport report = VerifyDeployment(id);
  ++verifications_;
  COBRA_CHECK_MSG(report.ok, report.ToString().c_str());
  return report;
}

void TraceCache::Revert(int id) {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  if (!deployment.active) return;
  const auto it = saved_bundles_.find(deployment.loop.head);
  COBRA_CHECK(it != saved_bundles_.end());
  for (unsigned slot = 0; slot < 3; ++slot) {
    image_->PatchRaw(isa::MakePc(deployment.loop.head, slot),
                     it->second[slot]);
  }
  deployment.active = false;
  --redirects_active_;
  CheckDeployment(id);
}

void TraceCache::Reapply(int id) {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  if (deployment.active) return;
  image_->Patch(isa::MakePc(deployment.loop.head, 0),
                isa::Nop(isa::Unit::kM));
  image_->Patch(isa::MakePc(deployment.loop.head, 1),
                isa::Nop(isa::Unit::kI));
  image_->Patch(isa::MakePc(deployment.loop.head, 2),
                isa::Brl(deployment.trace_head));
  deployment.active = true;
  ++redirects_active_;
  CheckDeployment(id);
}

const TraceCache::Deployment* TraceCache::FindByHead(isa::Addr head) const {
  const Deployment* found = nullptr;
  for (const Deployment& deployment : deployments_) {
    if (deployment.loop.head != isa::BundleAddr(head)) continue;
    found = &deployment;          // latest wins...
    if (deployment.active) break; // ...unless an active one exists
  }
  return found;
}

const TraceCache::Deployment* TraceCache::Get(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= deployments_.size()) {
    return nullptr;
  }
  return &deployments_[static_cast<std::size_t>(id)];
}

}  // namespace cobra::core
