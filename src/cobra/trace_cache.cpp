#include "cobra/trace_cache.h"

#include "analysis/cfg.h"
#include "support/check.h"

namespace cobra::core {

TraceCache::TraceCache(isa::BinaryImage* image) : image_(image) {
  COBRA_CHECK(image != nullptr);
  if (image_->code_cache_start() == 0) image_->BeginCodeCache();
}

bool TraceCache::RegionIsRelocatable(const LoopRegion& loop) const {
  const isa::Addr begin = isa::BundleAddr(loop.head);
  const isa::Addr end = isa::BundleAddr(loop.back_branch_pc);
  if (begin > end) return false;
  if (!image_->Contains(begin) || !image_->Contains(end)) return false;
  if (image_->InCodeCache(begin)) return false;  // already a trace
  const auto num_bundles =
      static_cast<std::int64_t>((end - begin) / isa::kBundleBytes) + 1;
  for (isa::Addr bundle = begin; bundle <= end;
       bundle += isa::kBundleBytes) {
    for (unsigned slot = 0; slot < 3; ++slot) {
      const isa::Instruction& inst = image_->Fetch(isa::MakePc(bundle, slot));
      if (!isa::IsBranch(inst.op)) continue;
      if (inst.op == isa::Opcode::kBrl) return false;  // absolute target
      // Relative branch: target must stay inside [begin, end].
      const auto offset =
          static_cast<std::int64_t>((bundle - begin) / isa::kBundleBytes);
      const std::int64_t target = offset + inst.imm;
      if (target < 0 || target >= num_bundles) return false;
    }
  }
  return true;
}

int TraceCache::Deploy(const LoopRegion& loop, OptKind opt) {
  // Refuse only if an *active* deployment already covers this head; a
  // reverted loop may be redeployed (possibly with a different strategy).
  if (const Deployment* existing = FindByHead(isa::BundleAddr(loop.head));
      existing != nullptr && existing->active) {
    return -1;
  }
  if (image_->InCodeCache(loop.head)) return -1;  // already a trace
  // CFG region oracle: the back edge must close a natural loop fully
  // contained in [head, back_branch].
  if (!analysis::CheckLoopRegion(*image_, loop.head, loop.back_branch_pc)
           .ok) {
    return -1;
  }
  if (!RegionIsRelocatable(loop)) return -1;

  const isa::Addr begin = isa::BundleAddr(loop.head);
  const isa::Addr end = isa::BundleAddr(loop.back_branch_pc);

  // Copy the loop body into the code cache (raw slots: bundle distances are
  // preserved, so in-region relative branches need no fixup).
  const isa::Addr trace_head = image_->code_end();
  for (isa::Addr bundle = begin; bundle <= end;
       bundle += isa::kBundleBytes) {
    // Copy before appending: Fetch returns references into the image's own
    // storage, which AppendBundle may reallocate.
    const isa::Instruction slot0 = image_->Fetch(isa::MakePc(bundle, 0));
    const isa::Instruction slot1 = image_->Fetch(isa::MakePc(bundle, 1));
    const isa::Instruction slot2 = image_->Fetch(isa::MakePc(bundle, 2));
    image_->AppendBundle(slot0, slot1, slot2);
  }
  // Exit stub: fall through back to the original code after the loop.
  image_->AppendBundle(isa::Nop(isa::Unit::kM), isa::Nop(isa::Unit::kI),
                       isa::Brl(end + isa::kBundleBytes));
  ++traces_built_;

  // Apply the optimization to the trace copy only.
  const isa::Addr trace_end =
      trace_head + (end - begin);  // last copied bundle
  const int rewritten = ApplyOptimization(*image_, trace_head, trace_end, opt);

  // Save the original head bundle and redirect it into the trace.
  std::array<isa::EncodedSlot, 3> saved{};
  for (unsigned slot = 0; slot < 3; ++slot) {
    saved[slot] = image_->Raw(isa::MakePc(begin, slot));
  }
  saved_bundles_[begin] = saved;
  image_->Patch(isa::MakePc(begin, 0), isa::Nop(isa::Unit::kM));
  image_->Patch(isa::MakePc(begin, 1), isa::Nop(isa::Unit::kI));
  image_->Patch(isa::MakePc(begin, 2), isa::Brl(trace_head));
  ++redirects_active_;

  Deployment deployment;
  deployment.id = static_cast<int>(deployments_.size());
  deployment.loop = loop;
  deployment.loop.head = begin;
  deployment.trace_head = trace_head;
  deployment.opt = opt;
  deployment.lfetches_rewritten = rewritten;
  deployment.active = true;
  deployments_.push_back(deployment);
  CheckDeployment(deployment.id);
  return deployment.id;
}

analysis::PatchReport TraceCache::VerifyDeployment(int id) const {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  const Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  const auto it = saved_bundles_.find(deployment.loop.head);
  COBRA_CHECK(it != saved_bundles_.end());
  return analysis::VerifyTracePatch(
      *image_, deployment.loop.head, deployment.loop.back_branch_pc,
      it->second, deployment.trace_head, deployment.active);
}

analysis::PatchReport TraceCache::CheckDeployment(int id) {
  analysis::PatchReport report = VerifyDeployment(id);
  ++verifications_;
  COBRA_CHECK_MSG(report.ok, report.ToString().c_str());
  return report;
}

void TraceCache::Revert(int id) {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  if (!deployment.active) return;
  const auto it = saved_bundles_.find(deployment.loop.head);
  COBRA_CHECK(it != saved_bundles_.end());
  for (unsigned slot = 0; slot < 3; ++slot) {
    image_->PatchRaw(isa::MakePc(deployment.loop.head, slot),
                     it->second[slot]);
  }
  deployment.active = false;
  --redirects_active_;
  CheckDeployment(id);
}

void TraceCache::Reapply(int id) {
  COBRA_CHECK(id >= 0 && static_cast<std::size_t>(id) < deployments_.size());
  Deployment& deployment = deployments_[static_cast<std::size_t>(id)];
  if (deployment.active) return;
  image_->Patch(isa::MakePc(deployment.loop.head, 0),
                isa::Nop(isa::Unit::kM));
  image_->Patch(isa::MakePc(deployment.loop.head, 1),
                isa::Nop(isa::Unit::kI));
  image_->Patch(isa::MakePc(deployment.loop.head, 2),
                isa::Brl(deployment.trace_head));
  deployment.active = true;
  ++redirects_active_;
  CheckDeployment(id);
}

const TraceCache::Deployment* TraceCache::FindByHead(isa::Addr head) const {
  const Deployment* found = nullptr;
  for (const Deployment& deployment : deployments_) {
    if (deployment.loop.head != isa::BundleAddr(head)) continue;
    found = &deployment;          // latest wins...
    if (deployment.active) break; // ...unless an active one exists
  }
  return found;
}

const TraceCache::Deployment* TraceCache::Get(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= deployments_.size()) {
    return nullptr;
  }
  return &deployments_[static_cast<std::size_t>(id)];
}

void TraceCache::SaveState(support::StateWriter& w) const {
  w.U64(static_cast<std::uint64_t>(deployments_.size()));
  for (const Deployment& d : deployments_) {
    w.I64(d.id);
    w.U64(d.loop.head);
    w.U64(d.loop.back_branch_pc);
    w.U64(d.trace_head);
    w.U8(static_cast<std::uint8_t>(d.opt));
    w.I64(d.lfetches_rewritten);
    w.Bool(d.active);
  }
  w.U64(static_cast<std::uint64_t>(saved_bundles_.size()));
  for (const auto& [head, slots] : saved_bundles_) {
    w.U64(head);
    for (const isa::EncodedSlot& slot : slots) {
      w.U64(slot.head);
      w.I64(slot.imm);
    }
  }
  w.U64(traces_built_);
  w.U64(redirects_active_);
  w.U64(verifications_);
}

bool TraceCache::RestoreState(support::StateReader& r) {
  std::uint64_t count = 0;
  r.U64(&count);
  if (!r.Ok()) return false;
  std::vector<Deployment> deployments(count);
  for (Deployment& d : deployments) {
    std::int64_t id = 0;
    std::uint8_t opt = 0;
    std::int64_t rewritten = 0;
    r.I64(&id);
    r.U64(&d.loop.head);
    r.U64(&d.loop.back_branch_pc);
    r.U64(&d.trace_head);
    r.U8(&opt);
    r.I64(&rewritten);
    r.Bool(&d.active);
    if (!r.Ok() || opt > static_cast<std::uint8_t>(OptKind::kInsertPrefetch)) {
      return false;
    }
    d.id = static_cast<int>(id);
    d.opt = static_cast<OptKind>(opt);
    d.lfetches_rewritten = static_cast<int>(rewritten);
  }
  r.U64(&count);
  if (!r.Ok()) return false;
  std::map<isa::Addr, std::array<isa::EncodedSlot, 3>> saved;
  for (std::uint64_t i = 0; i < count; ++i) {
    isa::Addr head = 0;
    std::array<isa::EncodedSlot, 3> slots{};
    r.U64(&head);
    for (isa::EncodedSlot& slot : slots) {
      r.U64(&slot.head);
      r.I64(&slot.imm);
    }
    if (!r.Ok()) return false;
    saved.emplace(head, slots);
  }
  r.U64(&traces_built_);
  r.U64(&redirects_active_);
  r.U64(&verifications_);
  if (!r.Ok()) return false;
  deployments_ = std::move(deployments);
  saved_bundles_ = std::move(saved);
  return true;
}

}  // namespace cobra::core
