#include "cobra/profile.h"

#include <algorithm>
#include <cstdlib>

namespace cobra::core {

perfmon::SamplingConfig CobraSamplingConfig() {
  perfmon::SamplingConfig cfg;
  cfg.events = {cpu::HpmEvent::kL3Misses, cpu::HpmEvent::kBusMemory,
                cpu::HpmEvent::kBusRdHitm, cpu::HpmEvent::kBusRdHit};
  cfg.dear_latency_threshold = 12;  // first-level filter: skip L3 hits
  return cfg;
}

void ThreadProfile::AddSample(const perfmon::Sample& sample) {
  ++samples_seen_;

  // Counters are cumulative since monitoring started; keep the latest
  // totals (cycles/instructions derived from timestamp and sample index).
  totals_.l3_misses = sample.counters[0];
  totals_.bus_memory = sample.counters[1];
  totals_.bus_rd_hitm = sample.counters[2];
  totals_.bus_rd_hit = sample.counters[3];
  totals_.cycles = sample.timestamp;
  totals_.instructions = sample.index;  // in units of the sampling period

  // DEAR: each sample carries the most recent qualifying miss. Only account
  // it once (a new record is identified by a changed pc/address/latency).
  if (sample.dear.valid &&
      (sample.dear.inst_addr != last_dear_pc_ ||
       sample.dear.data_addr != last_dear_addr_ ||
       sample.dear.latency != last_dear_latency_)) {
    last_dear_pc_ = sample.dear.inst_addr;
    last_dear_addr_ = sample.dear.data_addr;
    last_dear_latency_ = sample.dear.latency;
    DelinquentLoad& load = loads_[sample.dear.inst_addr];
    load.pc = sample.dear.inst_addr;
    ++load.samples;
    load.total_latency += sample.dear.latency;
    if (sample.dear.latency > coherent_threshold_) ++load.coherent_samples;
    // Stride inference: consecutive miss addresses of the same load. The
    // deltas are sampled (one DEAR record survives per sampling period),
    // so a steady stream shows near-constant deltas that wobble by one
    // miss; confirm within a tolerance rather than exactly (ADORE used a
    // windowed mode for the same reason).
    if (load.last_data_addr != 0) {
      const std::int64_t delta =
          static_cast<std::int64_t>(sample.dear.data_addr) -
          static_cast<std::int64_t>(load.last_data_addr);
      // Direction-independent confirmation: the delta must run the same
      // way as the candidate stride and its *magnitude* must sit within
      // max(|stride|/8, 64) of the stride's — descending streams get the
      // exact mirror image of the ascending window.
      const std::int64_t tolerance =
          std::max<std::int64_t>(std::llabs(load.stride) / 8, 64);
      const std::int64_t magnitude_gap =
          std::llabs(std::llabs(delta) - std::llabs(load.stride));
      if (delta != 0 && load.stride != 0 &&
          (delta > 0) == (load.stride > 0) && magnitude_gap <= tolerance) {
        ++load.stride_confirmations;
      } else if (delta != 0) {
        load.stride = delta;
        load.stride_confirmations = 1;
      }
    }
    load.last_data_addr = sample.dear.data_addr;
  }

  // BTB: taken branches whose target does not lie above the source are loop
  // back-edges; they bound the loop body [target, source].
  for (const auto& entry : sample.btb) {
    if (entry.source == 0 && entry.target == 0) continue;
    if (entry.target > entry.source) continue;  // forward branch
    LoopCandidate& loop = loops_[entry.target];
    loop.head = entry.target;
    loop.back_branch_pc = entry.source;
    ++loop.hits;
  }

  // Cost attribution: if this sample and the previous one both fall in the
  // same discovered loop, charge the elapsed cycles to that loop.
  if (have_prev_sample_ && samples_seen_ > attribution_warmup_) {
    // Innermost enclosing loop wins (largest head containing both pcs —
    // loops_ is ordered by head, so the last match is the innermost).
    LoopCandidate* innermost = nullptr;
    for (auto& [head, loop] : loops_) {
      const isa::Addr end = isa::MakePc(isa::BundleAddr(loop.back_branch_pc), 2);
      if (sample.pc >= head && sample.pc <= end && prev_sample_pc_ >= head &&
          prev_sample_pc_ <= end) {
        innermost = &loop;
      }
    }
    if (innermost != nullptr) {
      innermost->attributed_cycles += sample.timestamp - prev_sample_time_;
      ++innermost->attributed_samples;
    }
  }
  prev_sample_pc_ = sample.pc;
  prev_sample_time_ = sample.timestamp;
  have_prev_sample_ = true;
}

void ThreadProfile::Clear() {
  loads_.clear();
  loops_.clear();
  totals_ = CounterTotals{};
  samples_seen_ = 0;
  last_dear_pc_ = 0;
  last_dear_latency_ = 0;
  last_dear_addr_ = 0;
  prev_sample_pc_ = 0;
  prev_sample_time_ = 0;
  have_prev_sample_ = false;
}

SystemProfile SystemProfile::Aggregate(
    const std::vector<const ThreadProfile*>& threads) {
  SystemProfile out;
  std::map<isa::Addr, LoopCandidate> loops;
  std::map<isa::Addr, DelinquentLoad> loads;
  for (const ThreadProfile* thread : threads) {
    out.totals += thread->totals();
    for (const auto& [head, loop] : thread->loops()) {
      LoopCandidate& merged = loops[head];
      merged.head = loop.head;
      merged.back_branch_pc =
          std::max(merged.back_branch_pc, loop.back_branch_pc);
      merged.hits += loop.hits;
      merged.attributed_cycles += loop.attributed_cycles;
      merged.attributed_samples += loop.attributed_samples;
    }
    for (const auto& [pc, load] : thread->loads()) {
      DelinquentLoad& merged = loads[pc];
      merged.pc = pc;
      merged.samples += load.samples;
      merged.coherent_samples += load.coherent_samples;
      merged.total_latency += load.total_latency;
      merged.last_data_addr = load.last_data_addr;
      if (load.stride_confirmations > merged.stride_confirmations) {
        merged.stride = load.stride;
        merged.stride_confirmations = load.stride_confirmations;
      }
    }
  }
  for (const auto& [head, loop] : loops) out.hot_loops.push_back(loop);
  std::sort(out.hot_loops.begin(), out.hot_loops.end(),
            [](const LoopCandidate& a, const LoopCandidate& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.head < b.head;  // deterministic tie-break
            });
  for (const auto& [pc, load] : loads) {
    out.delinquent_loads.push_back(load);
    if (load.coherent_samples > 0) out.coherent_loads.push_back(load);
  }
  return out;
}

void ThreadProfile::SaveState(support::StateWriter& w) const {
  w.U64(static_cast<std::uint64_t>(loads_.size()));
  for (const auto& [pc, load] : loads_) load.SaveState(w);
  w.U64(static_cast<std::uint64_t>(loops_.size()));
  for (const auto& [head, loop] : loops_) loop.SaveState(w);
  totals_.SaveState(w);
  w.U64(samples_seen_);
  w.U64(last_dear_pc_);
  w.U64(last_dear_latency_);
  w.U64(last_dear_addr_);
  w.U64(prev_sample_pc_);
  w.U64(prev_sample_time_);
  w.Bool(have_prev_sample_);
}

bool ThreadProfile::RestoreState(support::StateReader& r) {
  std::uint64_t num_loads = 0;
  r.U64(&num_loads);
  if (!r.Ok()) return false;
  loads_.clear();
  for (std::uint64_t i = 0; i < num_loads; ++i) {
    DelinquentLoad load;
    if (!load.RestoreState(r)) return false;
    loads_.emplace(load.pc, load);
  }
  std::uint64_t num_loops = 0;
  r.U64(&num_loops);
  if (!r.Ok()) return false;
  loops_.clear();
  for (std::uint64_t i = 0; i < num_loops; ++i) {
    LoopCandidate loop;
    if (!loop.RestoreState(r)) return false;
    loops_.emplace(loop.head, loop);
  }
  totals_.RestoreState(r);
  r.U64(&samples_seen_);
  r.U64(&last_dear_pc_);
  r.U64(&last_dear_latency_);
  r.U64(&last_dear_addr_);
  r.U64(&prev_sample_pc_);
  r.U64(&prev_sample_time_);
  r.Bool(&have_prev_sample_);
  return r.Ok();
}

void SystemProfile::SaveState(support::StateWriter& w) const {
  totals.SaveState(w);
  w.U64(static_cast<std::uint64_t>(hot_loops.size()));
  for (const LoopCandidate& loop : hot_loops) loop.SaveState(w);
  w.U64(static_cast<std::uint64_t>(delinquent_loads.size()));
  for (const DelinquentLoad& load : delinquent_loads) load.SaveState(w);
  w.U64(static_cast<std::uint64_t>(coherent_loads.size()));
  for (const DelinquentLoad& load : coherent_loads) load.SaveState(w);
}

bool SystemProfile::RestoreState(support::StateReader& r) {
  totals.RestoreState(r);
  std::uint64_t count = 0;
  r.U64(&count);
  if (!r.Ok()) return false;
  hot_loops.resize(count);
  for (LoopCandidate& loop : hot_loops) {
    if (!loop.RestoreState(r)) return false;
  }
  r.U64(&count);
  if (!r.Ok()) return false;
  delinquent_loads.resize(count);
  for (DelinquentLoad& load : delinquent_loads) {
    if (!load.RestoreState(r)) return false;
  }
  r.U64(&count);
  if (!r.Ok()) return false;
  coherent_loads.resize(count);
  for (DelinquentLoad& load : coherent_loads) {
    if (!load.RestoreState(r)) return false;
  }
  return r.Ok();
}

}  // namespace cobra::core
