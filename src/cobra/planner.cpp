#include "cobra/planner.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace cobra::core {

namespace {

// Guards the density division; candidate costs are clamped up to this.
constexpr double kMinCost = 1e-9;
// Strict-improvement threshold for exchange moves and budget slack: keeps
// the solve stable under floating-point noise (a tie is never "better",
// so the greedy selection is the canonical representative of its value).
constexpr double kEps = 1e-9;

int KindRank(OptKind kind) {
  switch (kind) {
    case OptKind::kNone: return 0;
    case OptKind::kNoprefetch: return 1;
    case OptKind::kPrefetchExcl: return 2;
    case OptKind::kInsertPrefetch: return 3;
  }
  return 4;
}

// Total order on candidates independent of benefit/cost: the canonical
// output order, and the final tie-break everywhere else.
bool CanonicalLess(const PlanCandidate& a, const PlanCandidate& b) {
  if (a.head != b.head) return a.head < b.head;
  if (KindRank(a.kind) != KindRank(b.kind)) {
    return KindRank(a.kind) < KindRank(b.kind);
  }
  if (a.back_branch_pc != b.back_branch_pc) {
    return a.back_branch_pc < b.back_branch_pc;
  }
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  return a.cost < b.cost;
}

double Density(const PlanCandidate& c) {
  return c.benefit / std::max(c.cost, kMinCost);
}

// Greedy consideration order: densest first; ties by higher benefit, then
// lower cost, then the canonical order.
bool GreedyBefore(const PlanCandidate& a, const PlanCandidate& b) {
  const double da = Density(a);
  const double db = Density(b);
  if (da != db) return da > db;
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  if (a.cost != b.cost) return a.cost < b.cost;
  return CanonicalLess(a, b);
}

}  // namespace

const char* PlannerKindName(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kHeuristic: return "heuristic";
    case PlannerKind::kCost: return "cost";
  }
  return "?";
}

bool ParsePlannerKind(const char* text, PlannerKind* out) {
  if (text == nullptr) return false;
  char lower[16] = {};
  const std::size_t n = std::strlen(text);
  if (n == 0 || n >= sizeof(lower)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
  }
  for (PlannerKind k : {PlannerKind::kHeuristic, PlannerKind::kCost}) {
    if (std::strcmp(lower, PlannerKindName(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

PlannerKind PlannerFromEnv(PlannerKind fallback) {
  PlannerKind k = fallback;
  ParsePlannerKind(std::getenv("COBRA_PLANNER"), &k);
  return k;
}

const PlanCandidate* Plan::Find(isa::Addr head) const {
  for (const PlanCandidate& c : accepted) {
    if (c.head == head) return &c;
  }
  return nullptr;
}

bool Plan::SameSelection(const Plan& other) const {
  if (accepted.size() != other.accepted.size()) return false;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i].head != other.accepted[i].head ||
        accepted[i].kind != other.accepted[i].kind) {
      return false;
    }
  }
  return true;
}

Plan SolvePlan(std::vector<PlanCandidate> candidates, double budget) {
  Plan plan;

  // Only positive-benefit candidates compete: a patch the model cannot
  // credit with a single saved cycle is never worth budget. The canonical
  // sort makes everything downstream input-order independent.
  std::vector<PlanCandidate> pool;
  pool.reserve(candidates.size());
  for (const PlanCandidate& c : candidates) {
    if (c.benefit > 0.0) pool.push_back(c);
  }
  std::sort(pool.begin(), pool.end(), CanonicalLess);

  const int n = static_cast<int>(pool.size());
  std::vector<char> take(static_cast<std::size_t>(n), 0);
  double used = 0.0;
  double total = 0.0;

  // `skip` lets the feasibility probes pretend up to two selected items
  // were removed (for the exchange moves).
  auto head_free = [&](isa::Addr head, int skip_a, int skip_b) {
    for (int i = 0; i < n; ++i) {
      if (!take[static_cast<std::size_t>(i)] || i == skip_a || i == skip_b) {
        continue;
      }
      if (pool[static_cast<std::size_t>(i)].head == head) return false;
    }
    return true;
  };
  auto select = [&](int i) {
    take[static_cast<std::size_t>(i)] = 1;
    used += pool[static_cast<std::size_t>(i)].cost;
    total += pool[static_cast<std::size_t>(i)].benefit;
  };
  auto deselect = [&](int i) {
    take[static_cast<std::size_t>(i)] = 0;
    used -= pool[static_cast<std::size_t>(i)].cost;
    total -= pool[static_cast<std::size_t>(i)].benefit;
  };

  // Greedy by benefit density over the knapsack relaxation.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return GreedyBefore(pool[static_cast<std::size_t>(a)],
                        pool[static_cast<std::size_t>(b)]);
  });
  for (const int i : order) {
    const PlanCandidate& c = pool[static_cast<std::size_t>(i)];
    if (!head_free(c.head, -1, -1)) continue;
    if (used + c.cost <= budget + kEps) select(i);
  }

  // Exchange improvement: repeatedly apply the best strictly-improving
  // move from a fixed neighborhood until none exists (bounded passes; each
  // pass raises the total, so termination is guaranteed anyway). Density
  // greedy alone mis-ranks small dense items over one large profitable
  // one and vice versa; the 1-out/2-in and 2-out/1-in moves repair
  // exactly those traps, which is what makes the solve exhaustively exact
  // on the small candidate sets the oracle tests enumerate.
  for (int pass = 0; pass < 64; ++pass) {
    double best_gain = kEps;
    int best_out_a = -1, best_out_b = -1, best_in_a = -1, best_in_b = -1;
    auto consider = [&](double gain, int out_a, int out_b, int in_a,
                        int in_b) {
      if (gain > best_gain) {
        best_gain = gain;
        best_out_a = out_a;
        best_out_b = out_b;
        best_in_a = in_a;
        best_in_b = in_b;
      }
    };
    auto cand = [&](int i) -> const PlanCandidate& {
      return pool[static_cast<std::size_t>(i)];
    };
    auto taken = [&](int i) {
      return take[static_cast<std::size_t>(i)] != 0;
    };

    for (int a = 0; a < n; ++a) {
      if (taken(a)) continue;
      // Fill: add `a` outright.
      if (head_free(cand(a).head, -1, -1) &&
          used + cand(a).cost <= budget + kEps) {
        consider(cand(a).benefit, -1, -1, a, -1);
      }
      for (int x = 0; x < n; ++x) {
        if (!taken(x)) continue;
        // 1-out/1-in: drop x, add a.
        if (head_free(cand(a).head, x, -1) &&
            used - cand(x).cost + cand(a).cost <= budget + kEps) {
          consider(cand(a).benefit - cand(x).benefit, x, -1, a, -1);
        }
        // 2-out/1-in: drop x and y, add a.
        for (int y = x + 1; y < n; ++y) {
          if (!taken(y)) continue;
          if (head_free(cand(a).head, x, y) &&
              used - cand(x).cost - cand(y).cost + cand(a).cost <=
                  budget + kEps) {
            consider(cand(a).benefit - cand(x).benefit - cand(y).benefit,
                     x, y, a, -1);
          }
        }
        // 1-out/2-in: drop x, add a and b.
        for (int b = a + 1; b < n; ++b) {
          if (taken(b)) continue;
          if (cand(a).head == cand(b).head) continue;
          if (head_free(cand(a).head, x, -1) &&
              head_free(cand(b).head, x, -1) &&
              used - cand(x).cost + cand(a).cost + cand(b).cost <=
                  budget + kEps) {
            consider(cand(a).benefit + cand(b).benefit - cand(x).benefit,
                     x, -1, a, b);
          }
        }
      }
    }
    if (best_in_a < 0) break;
    if (best_out_a >= 0) deselect(best_out_a);
    if (best_out_b >= 0) deselect(best_out_b);
    select(best_in_a);
    if (best_in_b >= 0) select(best_in_b);
  }

  // Classic greedy guard: the single most profitable feasible item beats
  // a selection of dense slivers when one candidate dominates the budget.
  int best_single = -1;
  for (int i = 0; i < n; ++i) {
    const PlanCandidate& c = pool[static_cast<std::size_t>(i)];
    if (c.cost > budget + kEps) continue;
    if (best_single < 0 ||
        c.benefit > pool[static_cast<std::size_t>(best_single)].benefit) {
      best_single = i;
    }
  }
  if (best_single >= 0 &&
      pool[static_cast<std::size_t>(best_single)].benefit > total + kEps) {
    std::fill(take.begin(), take.end(), 0);
    used = 0.0;
    total = 0.0;
    select(best_single);
  }

  for (int i = 0; i < n; ++i) {
    if (take[static_cast<std::size_t>(i)]) {
      plan.accepted.push_back(pool[static_cast<std::size_t>(i)]);
    } else {
      ++plan.rejected_budget;
    }
  }
  plan.total_benefit = total;
  plan.total_cost = used;
  return plan;
}

void Planner::Adopt(Plan next, std::uint64_t now_cycles) {
  plan_ = std::move(next);
  has_plan_ = true;
  last_revision_cycles_ = now_cycles;
  stats_.accepted += plan_.accepted.size();
  stats_.rejected_budget += plan_.rejected_budget;
  stats_.estimated_benefit += plan_.total_benefit;
}

const Plan& Planner::Propose(const std::vector<PlanCandidate>& candidates,
                             std::uint64_t now_cycles) {
  ++stats_.solves;
  stats_.candidates_seen += candidates.size();
  Plan next = SolvePlan(candidates, options_.budget);

  if (!has_plan_) {
    // An empty solve is "still no plan": adopting it would arm the
    // cooldown and delay the first real plan for no reason.
    if (next.accepted.empty()) {
      plan_ = std::move(next);
      return plan_;
    }
    Adopt(std::move(next), now_cycles);
    return plan_;
  }

  if (plan_.SameSelection(next)) {
    // Same patch set, fresh estimates: not a revision.
    plan_ = std::move(next);
    return plan_;
  }

  // Hysteresis gate 1: the cooldown window. Phase noise shifts the
  // estimates every wake; a standing plan holds its ground until the
  // window has passed.
  if (now_cycles - last_revision_cycles_ < options_.cooldown_cycles) {
    ++stats_.rejected_hysteresis;
    return plan_;
  }

  // Hysteresis gate 2: minimum profit delta. Re-score the standing
  // selection against the *fresh* estimates (a candidate that no longer
  // qualifies contributes nothing) so the comparison is apples-to-apples.
  double current_fresh = 0.0;
  for (const PlanCandidate& kept : plan_.accepted) {
    for (const PlanCandidate& c : candidates) {
      if (c.head == kept.head && c.kind == kept.kind) {
        current_fresh += std::max(c.benefit, 0.0);
        break;
      }
    }
  }
  if (next.total_benefit < current_fresh + options_.min_profit_delta) {
    ++stats_.rejected_hysteresis;
    return plan_;
  }

  ++stats_.plan_revisions;
  Adopt(std::move(next), now_cycles);
  return plan_;
}

void Planner::Reset() {
  plan_ = Plan{};
  has_plan_ = false;
  last_revision_cycles_ = 0;
}

}  // namespace cobra::core
