// MonitoringThread is header-only; this translation unit anchors the
// component in the build (and hosts future out-of-line additions).
#include "cobra/monitor.h"
