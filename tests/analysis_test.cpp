// Static analysis subsystem: CFG recovery against kgen ground truth,
// rotation-aware liveness / defined-registers dataflow, and the
// cobra_lint invariant catalogue (clean corpus + seeded defects).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "isa/assembler.h"
#include "isa/image.h"
#include "isa/instruction.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "npb/common.h"

namespace cobra::analysis {
namespace {

using isa::Addr;

std::vector<kgen::PrefetchPolicy> AllPolicies() {
  return {kgen::PrefetchPolicy{}, kgen::PrefetchPolicy::None(),
          kgen::PrefetchPolicy::Excl()};
}

void EmitRepresentativeKernels(kgen::Program& prog,
                               const kgen::PrefetchPolicy& pf) {
  kgen::EmitDaxpy(prog, "daxpy", pf);
  kgen::StreamLoopSpec spec;
  spec.op = kgen::StreamOp::kTriad;
  spec.prefetch = pf;
  kgen::EmitStreamLoop(prog, "triad", spec);
  kgen::EmitReduction(prog, "dot", kgen::ReduceOp::kDot, pf);
  kgen::EmitCsrMatvec(prog, "spmv", pf);
  kgen::EmitHistogram(prog, "histogram", pf);
  kgen::EmitWhileCopy(prog, "while_copy", pf);
  kgen::EmitEpKernel(prog, "ep", pf);
}

// --- CFG recovery vs kgen ground truth ---------------------------------------

TEST(CfgRecovery, FindsEveryEmittedLoop) {
  for (const kgen::PrefetchPolicy& pf : AllPolicies()) {
    kgen::Program prog;
    EmitRepresentativeKernels(prog, pf);
    for (const kgen::LoopInfo& info : prog.loops()) {
      const Cfg cfg = Cfg::Build(prog.image(), info.entry);
      bool found = false;
      for (const NaturalLoop& loop : cfg.loops()) {
        if (loop.head == info.head &&
            loop.back_branch_pc == info.back_branch_pc) {
          found = true;
          // The loop header must dominate its latch, never vice versa
          // (unless they coincide in a one-block loop).
          EXPECT_TRUE(cfg.Dominates(loop.head_block, loop.latch_block));
          if (loop.head_block != loop.latch_block) {
            EXPECT_FALSE(cfg.Dominates(loop.latch_block, loop.head_block));
          }
        }
      }
      EXPECT_TRUE(found) << info.name << ": emitted loop not recovered";
    }
  }
}

TEST(CfgRecovery, RegionOracleAcceptsEmittedRegions) {
  for (const kgen::PrefetchPolicy& pf : AllPolicies()) {
    kgen::Program prog;
    EmitRepresentativeKernels(prog, pf);
    for (const kgen::LoopInfo& info : prog.loops()) {
      const RegionCheck check =
          CheckLoopRegion(prog.image(), info.head, info.back_branch_pc);
      EXPECT_TRUE(check.ok) << info.name << ": " << check.reason;
    }
  }
}

TEST(CfgRecovery, RegionOracleRejectsBogusRegions) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  // Prologue start is not the loop head the back branch targets.
  EXPECT_FALSE(
      CheckLoopRegion(prog.image(), daxpy.entry, daxpy.back_branch_pc).ok);
  // Region outside the image.
  EXPECT_FALSE(CheckLoopRegion(prog.image(), 0x10, 0x20).ok);
  // "Back branch" that is not a branch at all.
  EXPECT_FALSE(CheckLoopRegion(prog.image(), daxpy.head, daxpy.head).ok);
}

// --- Liveness ----------------------------------------------------------------

TEST(Liveness, StraightLineKillAndUse) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::AddImm(9, 8, 1),
                                     isa::St(8, 10, 9), isa::Break());
  const Cfg cfg = Cfg::Build(image, b0);
  const Liveness live = Liveness::Compute(cfg);
  const Addr add_pc = isa::MakePc(b0, 0);
  const Addr st_pc = isa::MakePc(b0, 1);
  EXPECT_TRUE(live.LiveIn(add_pc).HasGr(8));
  EXPECT_TRUE(live.LiveIn(add_pc).HasGr(10));
  EXPECT_FALSE(live.LiveIn(add_pc).HasGr(9));  // killed by the add
  EXPECT_TRUE(live.LiveOut(add_pc).HasGr(9));
  EXPECT_FALSE(live.LiveOut(st_pc).HasGr(9));  // dead after the store
}

TEST(Liveness, PredicatedDefIsMayDef) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(
      isa::CmpImm(isa::CmpRel::kLt, 8, 0, 14, 5),
      isa::Pred(8, isa::MovImm(9, 0)), isa::St(8, 10, 9));
  image.AppendBundle(isa::Break(), isa::Nop(), isa::Nop());
  const Cfg cfg = Cfg::Build(image, b0);
  const Liveness live = Liveness::Compute(cfg);
  const Addr mov_pc = isa::MakePc(b0, 1);
  // The squashed path still reads the old r9: a predicated def must not
  // kill. The qp itself is consumed.
  EXPECT_TRUE(live.LiveIn(mov_pc).HasGr(9));
  EXPECT_TRUE(live.LiveIn(mov_pc).HasPr(8));
}

TEST(Liveness, RotatingEdgeRenamesAcrossBackEdge) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Emit(isa::MovReg(33, 14));
  a.Emit(isa::AddImm(8, 16, -1));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.Emit(isa::MovImm(9, 1));
  a.Emit(isa::MovToAr(isa::AppReg::kEC, 9));
  a.FlushBundle();
  a.Bind(loop);
  const Addr head = image.code_end();
  a.Emit(isa::AddImm(32, 33, 8));  // writes r32 = next iteration's r33
  a.Emit(isa::Nop());
  const Addr back = a.EmitBranch(isa::BrCtop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();

  const Cfg cfg = Cfg::Build(image, image.code_base());
  const Liveness live = Liveness::Compute(cfg);
  const Addr add_pc = isa::MakePc(head, 0);
  // r33 is read at the head; across the rotating back edge that value is
  // the r32 written below — so r32 is live at the branch, under its
  // pre-rotation name.
  EXPECT_TRUE(live.LiveIn(add_pc).HasGr(33));
  EXPECT_TRUE(live.LiveOut(back).HasGr(32));
  EXPECT_FALSE(live.LiveOut(back).HasGr(34));
}

TEST(Liveness, NonPrefetchModeDropsLfetchBases) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Emit(isa::AddImm(8, 16, -1));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.FlushBundle();
  a.Bind(loop);
  const Addr head = image.code_end();
  a.Emit(isa::LfetchPostInc(28, 8, isa::LfetchHint{}));
  a.Emit(isa::Nop());
  a.EmitBranch(isa::BrCloop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();

  const Cfg cfg = Cfg::Build(image, image.code_base());
  const Addr head_pc = isa::MakePc(head, 0);
  const Liveness plain = Liveness::Compute(cfg);
  EXPECT_TRUE(plain.LiveIn(head_pc).HasGr(28));
  LivenessOptions np;
  np.exclude_lfetch_base_uses = true;
  const Liveness non_prefetch = Liveness::Compute(cfg, np);
  // The only consumer of r28 is prefetch address arithmetic: dead.
  EXPECT_FALSE(non_prefetch.LiveIn(head_pc).HasGr(28));
}

TEST(DefinedRegs, EntryProvidesStaticFilesOnly) {
  const RegSet entry = DefinedRegs::EntryDefined();
  EXPECT_TRUE(entry.HasGr(8));
  EXPECT_TRUE(entry.HasFr(6));
  EXPECT_TRUE(entry.HasPr(15));
  EXPECT_FALSE(entry.HasGr(32));
  EXPECT_FALSE(entry.HasFr(32));
  EXPECT_FALSE(entry.HasPr(16));
  EXPECT_FALSE(entry.HasAr(isa::AppReg::kLC));
  EXPECT_FALSE(entry.HasAr(isa::AppReg::kEC));
}

TEST(DefinedRegs, RotationClosureCoversSwpChains) {
  // The daxpy pipeline reads f37/f43/r40 etc. — names only reachable from
  // the in-loop defs through repeated rotation. The may-analysis must
  // close over them (this is exactly what keeps lint quiet on SWP code).
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy::None());
  const Cfg cfg = Cfg::Build(prog.image(), daxpy.entry);
  const DefinedRegs defined =
      DefinedRegs::Compute(cfg, DefinedRegs::EntryDefined());
  const RegSet& at_back = defined.DefinedBefore(daxpy.back_branch_pc);
  EXPECT_TRUE(at_back.HasFr(37));
  EXPECT_TRUE(at_back.HasFr(43));
  EXPECT_TRUE(at_back.HasGr(40));
  EXPECT_TRUE(at_back.HasPr(23));
  EXPECT_TRUE(at_back.HasAr(isa::AppReg::kLC));
}

// --- Lint: clean corpus ------------------------------------------------------

TEST(Lint, KgenCorpusIsClean) {
  for (const kgen::PrefetchPolicy& pf : AllPolicies()) {
    kgen::Program prog;
    EmitRepresentativeKernels(prog, pf);
    const LintReport report = LintImage(prog.image(), prog.kernels());
    EXPECT_TRUE(report.clean) << report.ToString();
    EXPECT_GT(report.slots_checked, 0);
    EXPECT_EQ(report.kernels_checked, 7);
  }
}

TEST(Lint, NpbBenchmarkIsClean) {
  kgen::Program prog;
  npb::MakeBenchmark("cg")->Build(prog, kgen::PrefetchPolicy{});
  const LintReport report = LintImage(prog.image(), prog.kernels());
  EXPECT_TRUE(report.clean) << report.ToString();
}

// --- Lint: seeded defects ----------------------------------------------------

// Expects exactly one finding with the given invariant at `pc`.
void ExpectSingleFinding(const LintReport& report, const char* invariant,
                         Addr pc) {
  EXPECT_FALSE(report.clean);
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].invariant, invariant);
  EXPECT_EQ(report.findings[0].pc, pc);
}

TEST(LintDefects, CorruptEncoding) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Nop(), isa::Nop(), isa::Break());
  const Addr pc = isa::MakePc(b0, 1);
  image.TestOnlyCorruptSlot(pc, isa::EncodedSlot{3ULL << 62, 0});
  ExpectSingleFinding(LintImage(image, {}), lint_invariant::kIllegalEncoding,
                      pc);
}

TEST(LintDefects, BranchTargetOutsideImage) {
  isa::BinaryImage image;
  const Addr b0 =
      image.AppendBundle(isa::Nop(), isa::Nop(), isa::BrCond(0, 50));
  ExpectSingleFinding(LintImage(image, {}), lint_invariant::kBranchTarget,
                      isa::MakePc(b0, 2));
}

TEST(LintDefects, UndefinedRotatingRead) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::AddReg(8, 40, 41), isa::Nop(),
                                     isa::Break());
  const LintReport report = LintImage(image, {{"k", b0}});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].invariant, lint_invariant::kUndefinedRead);
  EXPECT_EQ(report.findings[0].pc, isa::MakePc(b0, 0));
  EXPECT_NE(report.findings[0].detail.find("r40"), std::string::npos);
}

TEST(LintDefects, LoopCounterWithoutSetup) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Bind(loop);
  a.Emit(isa::AddImm(8, 8, 1));
  a.Emit(isa::Nop());
  const Addr back = a.EmitBranch(isa::BrCloop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();
  ExpectSingleFinding(LintImage(image, {{"k", image.code_base()}}),
                      lint_invariant::kLcEcMisuse, back);
}

TEST(LintDefects, LfetchMutatesLiveBase) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Emit(isa::AddImm(8, 16, -1));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(isa::LdPostInc(8, 9, 26, 8));
  const Addr lfetch_pc = a.CurrentPc();
  // Post-increments r26 — the pointer the *load* walks: a real clobber.
  a.Emit(isa::LfetchPostInc(26, 8, isa::LfetchHint{}));
  a.Emit(isa::St(8, 27, 9));
  a.EmitBranch(isa::BrCloop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();
  // The mutating lfetch trips its own invariant — and because it shares
  // the load's cursor, both post-increment immediates (8) now lie about
  // the real per-iteration advance (16), so the scev stride-mismatch rule
  // fires on both accesses as well.
  const LintReport report = LintImage(image, {{"k", image.code_base()}});
  EXPECT_FALSE(report.clean);
  bool live_target = false;
  int stride_mismatches = 0;
  for (const LintFinding& f : report.findings) {
    if (f.invariant == lint_invariant::kLfetchLiveTarget) {
      live_target = true;
      EXPECT_EQ(f.pc, lfetch_pc);
    } else if (f.invariant == lint_invariant::kStrideMismatch) {
      ++stride_mismatches;
    }
  }
  EXPECT_TRUE(live_target) << report.ToString();
  EXPECT_EQ(stride_mismatches, 2) << report.ToString();
  EXPECT_EQ(report.findings.size(), 3u) << report.ToString();
}

TEST(LintDefects, WriteToHardwiredRegister) {
  isa::BinaryImage image;
  const Addr b0 =
      image.AppendBundle(isa::AddImm(0, 9, 1), isa::Nop(), isa::Break());
  ExpectSingleFinding(LintImage(image, {}), lint_invariant::kIllegalDest,
                      isa::MakePc(b0, 0));
}

TEST(LintDefects, ShladdCountOutOfRange) {
  isa::BinaryImage image;
  isa::Instruction shladd = isa::ShlAdd(8, 9, 3, 10);
  shladd.imm = 7;  // encodable, architecturally invalid
  const Addr b0 = image.AppendBundle(shladd, isa::Nop(), isa::Break());
  ExpectSingleFinding(LintImage(image, {}), lint_invariant::kShladdCount,
                      isa::MakePc(b0, 0));
}

TEST(LintDefects, PlainLfetchProvablyAliasesStoreStream) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Emit(isa::MovImm(8, 15));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(isa::StPostInc(8, 26, 9, 128));
  const Addr lfetch_pc = a.CurrentPc();
  // Prefetches through the store's own cursor: exactly one line ahead of
  // the store stream, same 128-byte lattice — the line arrives Shared and
  // the store pays the upgrade anyway.
  a.Emit(isa::Lfetch(26));
  a.EmitBranch(isa::BrCloop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();
  ExpectSingleFinding(LintImage(image, {{"k", image.code_base()}}),
                      lint_invariant::kPrefetchAliasesStore, lfetch_pc);
}

TEST(LintDefects, LoopInvariantLfetchIsRedundant) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto loop = a.NewLabel();
  a.Emit(isa::MovImm(8, 15));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.FlushBundle();
  a.Bind(loop);
  a.Emit(isa::LdPostInc(8, 9, 26, 8));
  const Addr lfetch_pc = a.CurrentPc();
  a.Emit(isa::Lfetch(27));  // r27 never advances: one line, every iteration
  a.EmitBranch(isa::BrCloop(0), loop);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();
  ExpectSingleFinding(LintImage(image, {{"k", image.code_base()}}),
                      lint_invariant::kRedundantPrefetch, lfetch_pc);
}

TEST(LintDefects, NonBranchOnBranchUnit) {
  isa::BinaryImage image;
  isa::Instruction add = isa::AddImm(8, 9, 1);
  add.unit = isa::Unit::kB;
  const Addr b0 = image.AppendBundle(add, isa::Nop(), isa::Break());
  ExpectSingleFinding(LintImage(image, {}), lint_invariant::kUnitMismatch,
                      isa::MakePc(b0, 0));
}

// --- Lint: machine-readable report -------------------------------------------

TEST(LintJson, ReportRoundTripsThroughParser) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Nop(), isa::Nop(), isa::Break());
  const Addr pc = isa::MakePc(b0, 1);
  image.TestOnlyCorruptSlot(pc, isa::EncodedSlot{3ULL << 62, 0});
  const LintReport report = LintImage(image, {});
  const support::Json doc = ReportJson(report, "unit");
  // CI consumes the *serialized* form: parse it back and check the stable
  // keys, not just the in-memory tree.
  const auto parsed = support::Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->At("image").AsString(), "unit");
  EXPECT_FALSE(parsed->At("clean").AsBool());
  EXPECT_EQ(parsed->At("slots_checked").AsInt(), report.slots_checked);
  EXPECT_EQ(parsed->At("kernels_checked").AsInt(), 0);
  ASSERT_EQ(parsed->At("findings").size(), 1u);
  const support::Json& f = parsed->At("findings").elements()[0];
  EXPECT_EQ(f.At("invariant").AsString(), lint_invariant::kIllegalEncoding);
  EXPECT_EQ(f.At("detail").AsString(), report.findings[0].detail);
  EXPECT_EQ(f.At("pc").AsString().substr(0, 2), "0x");
}

// --- Region oracle: irreducible shapes ----------------------------------------

// A (head, back-branch) window is only deployable when it is a reducible
// single-entry loop whose whole natural-loop body sits inside the window.
// Two irreducible shapes must be rejected: a cycle that threads through
// code below the back branch, and a back edge entering the window mid-body
// instead of at its head.
TEST(RegionOracle, RejectsIrreducibleRegions) {
  isa::BinaryImage image;
  isa::Assembler a(&image);
  const auto head = a.NewLabel();
  const auto latch = a.NewLabel();
  const auto outside = a.NewLabel();
  a.Emit(isa::MovImm(8, 7));
  a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
  a.FlushBundle();
  a.Bind(head);
  const Addr head_pc = image.code_end();
  a.Emit(isa::AddImm(9, 9, 1));
  a.EmitBranch(isa::BrCond(1, 0), outside);  // conditional side exit
  a.FlushBundle();
  a.Bind(latch);
  const Addr latch_pc = image.code_end();
  a.Emit(isa::AddImm(10, 10, 1));
  const Addr back_pc = a.EmitBranch(isa::BrCloop(0), head);
  a.FlushBundle();
  a.Bind(outside);
  a.Emit(isa::AddImm(11, 11, 1));
  // Re-enters the loop *below* its head: the natural-loop body now spans
  // code outside the [head, back] window.
  a.EmitBranch(isa::BrCond(0, 0), latch);
  a.FlushBundle();
  a.Emit(isa::Break());
  a.Finish();

  const RegionCheck escaped = CheckLoopRegion(image, head_pc, back_pc);
  EXPECT_FALSE(escaped.ok);
  EXPECT_NE(escaped.reason.find("escapes"), std::string::npos)
      << escaped.reason;
  // Widening the window so the back branch lands mid-region is no better:
  // the branch must close the region at its head.
  const RegionCheck mid = CheckLoopRegion(image, image.code_base(), back_pc);
  EXPECT_FALSE(mid.ok);
  EXPECT_NE(mid.reason.find("does not target the region head"),
            std::string::npos)
      << mid.reason;
  // Sanity: the inner window alone (latch bundle only) is a well-formed
  // one-bundle loop as far as the branch targeting goes, but its natural
  // loop is headed elsewhere — still rejected.
  const RegionCheck inner = CheckLoopRegion(image, latch_pc, back_pc);
  EXPECT_FALSE(inner.ok);
}

}  // namespace
}  // namespace cobra::analysis
