// Patch-safety verifier: positive verification of every whitelisted delta
// the trace cache can produce, and negative tests seeding each forbidden
// delta — asserting the exact invariant name and offending pc.
#include <gtest/gtest.h>

#include <string>

#include "analysis/verifier.h"
#include "cobra/insertion.h"
#include "cobra/optimizer.h"
#include "cobra/trace_cache.h"
#include "isa/assembler.h"
#include "isa/encoding.h"
#include "isa/image.h"
#include "isa/instruction.h"
#include "kgen/emitters.h"
#include "kgen/program.h"

namespace cobra {
namespace {

using analysis::PatchReport;
using core::LoopRegion;
using core::OptKind;
using core::TraceCache;
using isa::Addr;

bool HasViolation(const PatchReport& report, const char* invariant, Addr pc) {
  for (const analysis::Violation& v : report.violations) {
    if (v.invariant == invariant && v.pc == pc) return true;
  }
  return false;
}

// Expects the report to carry exactly one violation.
void ExpectOnly(const PatchReport& report, const char* invariant, Addr pc) {
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].invariant, invariant);
  EXPECT_EQ(report.violations[0].pc, pc);
}

// A minimal counted loop with a static-base load (r26), a value consumer
// (store through r27), and two free nop slots — everything the insertion
// whitelist needs, under full control of the test.
//   b0: add r8 = r16 - 1 ; mov LC = r8 ; nop
//   b1: ld8 r9 = [r26], 8 ; nop.m ; nop.i        <- loop head
//   b2: st8 [r27] = r9 ; nop ; br.cloop b1
//   b3: break
struct HandLoop {
  isa::BinaryImage image;
  LoopRegion region;
  Addr load_pc = 0;

  HandLoop() {
    isa::Assembler a(&image);
    const isa::Assembler::Label loop = a.NewLabel();
    a.Emit(isa::AddImm(8, 16, -1));
    a.Emit(isa::MovToAr(isa::AppReg::kLC, 8));
    a.FlushBundle();
    a.Bind(loop);
    region.head = image.code_end();
    load_pc = a.CurrentPc();
    a.Emit(isa::LdPostInc(8, 9, 26, 8));
    a.Emit(isa::Nop(isa::Unit::kM));
    a.Emit(isa::Nop(isa::Unit::kI));
    a.Emit(isa::St(8, 27, 9));
    region.back_branch_pc = a.EmitBranch(isa::BrCloop(0), loop);
    a.FlushBundle();
    a.Emit(isa::Break());
    a.Finish();
  }
};

// --- Positive: every whitelist category --------------------------------------

TEST(VerifierPositive, NoprefetchTurnsLfetchesIntoNops) {
  kgen::Program prog;
  const kgen::LoopInfo info =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  ASSERT_FALSE(info.lfetch_pcs.empty());
  TraceCache cache(&prog.image());
  const int id =
      cache.Deploy({info.head, info.back_branch_pc}, OptKind::kNoprefetch);
  ASSERT_GE(id, 0);
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_EQ(report.lfetch_nops + report.lfetch_incs,
            static_cast<int>(info.lfetch_pcs.size()));
  EXPECT_EQ(cache.verifications(), 1u);  // Deploy's built-in check
}

TEST(VerifierPositive, NoprefetchPreservesPostIncrementStreams) {
  kgen::Program prog;
  const kgen::LoopInfo info =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy::Excl());
  ASSERT_FALSE(info.lfetch_pcs.empty());
  TraceCache cache(&prog.image());
  const int id =
      cache.Deploy({info.head, info.back_branch_pc}, OptKind::kNoprefetch);
  ASSERT_GE(id, 0);
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_TRUE(report.ok) << report.ToString();
  // The excl-policy daxpy prefetches through post-increment cursors: the
  // rewrite must keep the address stream as adds, not plain nops.
  EXPECT_EQ(report.lfetch_incs, static_cast<int>(info.lfetch_pcs.size()));
  EXPECT_EQ(report.lfetch_nops, 0);
}

TEST(VerifierPositive, ExclRehintIsOneBitPerLfetch) {
  kgen::Program prog;
  const kgen::LoopInfo info =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  TraceCache cache(&prog.image());
  const int id =
      cache.Deploy({info.head, info.back_branch_pc}, OptKind::kPrefetchExcl);
  ASSERT_GE(id, 0);
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_EQ(report.excl_flips, static_cast<int>(info.lfetch_pcs.size()));
}

TEST(VerifierPositive, RevertAndReapplyStayVerified) {
  kgen::Program prog;
  const kgen::LoopInfo info =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  TraceCache cache(&prog.image());
  const int id =
      cache.Deploy({info.head, info.back_branch_pc}, OptKind::kNoprefetch);
  ASSERT_GE(id, 0);
  cache.Revert(id);
  EXPECT_TRUE(cache.VerifyDeployment(id).ok);
  cache.Reapply(id);
  EXPECT_TRUE(cache.VerifyDeployment(id).ok);
  // Deploy, Revert and Reapply each ran the checking verifier.
  EXPECT_EQ(cache.verifications(), 3u);
}

TEST(VerifierPositive, AcceptsLivenessCheckedInsertion) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const core::InsertionCandidate cand{isa::MakePc(trace_head, 0), 8};
  const int inserted = core::InsertPrefetches(
      hl.image, trace_head, trace_head + isa::kBundleBytes, {cand});
  ASSERT_EQ(inserted, 1);
  // CheckDeployment aborts on any violation — reaching the assertions
  // below means the planted pair passed the whitelist.
  const PatchReport report = cache.CheckDeployment(id);
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_EQ(report.planted_prefetches, 1);
}

// --- Negative: each forbidden delta, by invariant ----------------------------

TEST(VerifierNegative, SkewedBranchDistance) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr trace_back = isa::MakePc(trace_head + isa::kBundleBytes, 2);
  isa::Instruction br = hl.image.Fetch(trace_back);
  br.imm = 0;  // still inside the region, but no longer the head
  hl.image.Patch(trace_back, br);
  ExpectOnly(cache.VerifyDeployment(id), analysis::invariant::kBranchDistance,
             trace_back);
}

TEST(VerifierNegative, BranchEscapingTheRegion) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr trace_back = isa::MakePc(trace_head + isa::kBundleBytes, 2);
  isa::Instruction br = hl.image.Fetch(trace_back);
  br.imm = -5;  // before the relocated region
  hl.image.Patch(trace_back, br);
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(
      HasViolation(report, analysis::invariant::kBranchEscape, trace_back))
      << report.ToString();
}

TEST(VerifierNegative, PlantedPairClobbersLiveRegister) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr add_pc = isa::MakePc(trace_head, 1);
  // r27 is the store's base — live on every iteration. A correct insertion
  // would have scavenged a dead register instead. (The displacement stays a
  // stride multiple so only the liveness invariant is at issue.)
  hl.image.Patch(add_pc, isa::AddImm(27, 26, 64));
  hl.image.Patch(isa::MakePc(trace_head, 2), isa::Lfetch(27));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedLiveScratch, add_pc);
}

TEST(VerifierNegative, PlantedScratchOutsideStaticRange) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr add_pc = isa::MakePc(trace_head, 1);
  hl.image.Patch(add_pc, isa::AddImm(40, 26, 64));  // rotating scratch
  hl.image.Patch(isa::MakePc(trace_head, 2), isa::Lfetch(40));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedScratchRange, add_pc);
}

TEST(VerifierNegative, PlantedLfetchWithoutItsAdd) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr lfetch_pc = isa::MakePc(trace_head, 2);
  hl.image.Patch(lfetch_pc, isa::Lfetch(8));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedUnpaired, lfetch_pc);
}

TEST(VerifierNegative, PlantedBaseMatchesNoLoad) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr add_pc = isa::MakePc(trace_head, 1);
  // r27 is the *store* pointer: prefetching off it matches no load shape.
  hl.image.Patch(add_pc, isa::AddImm(8, 27, 64));
  hl.image.Patch(isa::MakePc(trace_head, 2), isa::Lfetch(8));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedBaseMismatch, add_pc);
}

TEST(VerifierNegative, PlantedDisplacementOffTheChrecLattice) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr add_pc = isa::MakePc(trace_head, 1);
  // The load strides by 8; a displacement of 60 is not on its chrec
  // lattice, so the pair must have been planted from a bogus stride.
  hl.image.Patch(add_pc, isa::AddImm(8, 26, 60));
  hl.image.Patch(isa::MakePc(trace_head, 2), isa::Lfetch(8));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedChrecMismatch, add_pc);
}

TEST(VerifierNegative, PlantedDisplacementAgainstTheStream) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kInsertPrefetch);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr add_pc = isa::MakePc(trace_head, 1);
  // -64 is a stride multiple but points *behind* an ascending stream:
  // the prefetch can never cover a future iteration.
  hl.image.Patch(add_pc, isa::AddImm(8, 26, -64));
  hl.image.Patch(isa::MakePc(trace_head, 2), isa::Lfetch(8));
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kPlantedChrecMismatch, add_pc);
}

TEST(VerifierNegative, HintFlipOnNonLfetch) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr trace_head = cache.Get(id)->trace_head;
  const Addr st_pc = isa::MakePc(trace_head + isa::kBundleBytes, 0);
  isa::EncodedSlot raw = hl.image.Raw(st_pc);
  raw.head ^= isa::enc::kExclBit;  // .excl on a store is meaningless
  hl.image.TestOnlyCorruptSlot(st_pc, raw);
  ExpectOnly(cache.VerifyDeployment(id), analysis::invariant::kStrayBitDelta,
             st_pc);
}

TEST(VerifierNegative, CorruptBundleEncoding) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr pc = isa::MakePc(cache.Get(id)->trace_head, 1);
  hl.image.TestOnlyCorruptSlot(pc, isa::EncodedSlot{3ULL << 62, 0});
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kIllegalEncoding, pc);
}

TEST(VerifierNegative, NonWhitelistedRewrite) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr st_pc =
      isa::MakePc(cache.Get(id)->trace_head + isa::kBundleBytes, 0);
  hl.image.Patch(st_pc, isa::St(8, 27, 26));  // stores the wrong register
  ExpectOnly(cache.VerifyDeployment(id),
             analysis::invariant::kNonWhitelistedDelta, st_pc);
}

TEST(VerifierNegative, TamperedExitStub) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr stub_brl =
      isa::MakePc(cache.Get(id)->trace_head + 2 * isa::kBundleBytes, 2);
  hl.image.Patch(stub_brl, isa::Brl(hl.image.code_base()));
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(
      HasViolation(report, analysis::invariant::kExitStub, stub_brl))
      << report.ToString();
}

TEST(VerifierNegative, TamperedHeadRedirect) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  const Addr head_brl = isa::MakePc(hl.region.head, 2);
  hl.image.Patch(head_brl, isa::Brl(hl.image.code_end() - isa::kBundleBytes));
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(
      HasViolation(report, analysis::invariant::kHeadRedirect, head_brl))
      << report.ToString();
}

TEST(VerifierNegative, TamperedRollbackRestore) {
  HandLoop hl;
  TraceCache cache(&hl.image);
  const int id = cache.Deploy(hl.region, OptKind::kNone);
  ASSERT_GE(id, 0);
  cache.Revert(id);
  const Addr head_slot0 = isa::MakePc(hl.region.head, 0);
  hl.image.Patch(head_slot0, isa::AddImm(9, 9, 1));
  const PatchReport report = cache.VerifyDeployment(id);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, analysis::invariant::kRollbackRestore,
                           head_slot0))
      << report.ToString();
}

}  // namespace
}  // namespace cobra
