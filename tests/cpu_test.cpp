// Core interpreter tests: register rotation, predication, the modulo-
// scheduled branches (br.ctop/br.cloop/br.wtop), memory semantics, HPM
// counters, BTB, and DEAR latency filtering.
#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.h"
#include "isa/assembler.h"
#include "machine/machine.h"

namespace cobra::cpu {
namespace {

using isa::Addr;
using namespace isa;

// --- RegisterFile -------------------------------------------------------------

TEST(RegisterFile, HardwiredRegisters) {
  RegisterFile regs;
  EXPECT_EQ(regs.ReadGr(0), 0u);
  EXPECT_EQ(regs.ReadFr(0), 0.0);
  EXPECT_EQ(regs.ReadFr(1), 1.0);
  EXPECT_TRUE(regs.ReadPr(0));
  EXPECT_DEATH(regs.WriteGr(0, 1), "r0");
  EXPECT_DEATH(regs.WriteFr(1, 2.0), "f0/f1");
  EXPECT_DEATH(regs.WritePr(0, false), "p0");
}

TEST(RegisterFile, StaticRegistersDoNotRotate) {
  RegisterFile regs;
  regs.WriteGr(14, 42);
  regs.WriteFr(6, 2.5);
  regs.WritePr(15, true);
  regs.RotateDown();
  EXPECT_EQ(regs.ReadGr(14), 42u);
  EXPECT_EQ(regs.ReadFr(6), 2.5);
  EXPECT_TRUE(regs.ReadPr(15));
}

TEST(RegisterFile, RotationRenamesByOne) {
  RegisterFile regs;
  regs.WriteGr(32, 1111);
  regs.WriteFr(32, 3.5);
  regs.WritePr(16, true);
  regs.RotateDown();
  EXPECT_EQ(regs.ReadGr(33), 1111u);
  EXPECT_EQ(regs.ReadFr(33), 3.5);
  EXPECT_TRUE(regs.ReadPr(17));
  regs.RotateDown();
  EXPECT_EQ(regs.ReadGr(34), 1111u);
}

TEST(RegisterFile, RotationWrapsModulo96) {
  RegisterFile regs;
  regs.WriteGr(32, 7);
  for (int i = 0; i < isa::kNumRotGr; ++i) regs.RotateDown();
  EXPECT_EQ(regs.ReadGr(32), 7u);  // full cycle
}

TEST(RegisterFile, Pr63RotatesIntoP16) {
  RegisterFile regs;
  regs.WritePr(63, true);
  regs.RotateDown();
  EXPECT_TRUE(regs.ReadPr(16));
}

TEST(RegisterFile, SetRotatingPredicates) {
  RegisterFile regs;
  regs.SetRotatingPredicates(0b101);
  EXPECT_TRUE(regs.ReadPr(16));
  EXPECT_FALSE(regs.ReadPr(17));
  EXPECT_TRUE(regs.ReadPr(18));
  EXPECT_FALSE(regs.ReadPr(19));
}

// --- Core fixture ---------------------------------------------------------------

class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() : image_(0x40000000) {}

  // Builds a machine around code assembled by `build`, returns entry.
  Addr Assemble(const std::function<void(Assembler&)>& build) {
    Assembler a(&image_);
    const Addr entry = image_.code_end();
    build(a);
    a.Finish();
    machine::MachineConfig cfg = machine::SmpServerConfig(1);
    cfg.mem.memory_bytes = 1 << 22;
    machine_ = std::make_unique<machine::Machine>(cfg, &image_);
    return entry;
  }

  // Runs CPU0 from entry until break; returns instructions retired.
  std::uint64_t Run(Addr entry) {
    Core& core = machine_->core(0);
    core.Start(entry);
    while (!core.halted()) core.Step();
    return core.instructions_retired();
  }

  Core& core() { return machine_->core(0); }

  isa::BinaryImage image_;
  std::unique_ptr<machine::Machine> machine_;
};

TEST_F(CoreFixture, AluAndImmediates) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(8, 40));
    a.Emit(AddImm(9, 8, 2));
    a.Emit(ShlAdd(10, 9, 2, 8));  // 42*4 + 40 = 208
    a.Emit(SubReg(11, 10, 9));    // 166
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(9), 42u);
  EXPECT_EQ(core().regs().ReadGr(10), 208u);
  EXPECT_EQ(core().regs().ReadGr(11), 166u);
}

TEST_F(CoreFixture, PredicationSquashesSideEffects) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 0x1000));
    a.Emit(CmpImm(CmpRel::kEq, 8, 9, 0, 1));       // p8=false, p9=true
    a.Emit(Pred(8, MovImm(10, 99)));               // squashed
    a.Emit(Pred(9, MovImm(11, 77)));               // executes
    a.Emit(Pred(8, LdPostInc(8, 12, 26, 8)));      // squashed: no post-inc
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(10), 0u);
  EXPECT_EQ(core().regs().ReadGr(11), 77u);
  EXPECT_EQ(core().regs().ReadGr(26), 0x1000u);  // base unchanged
}

TEST_F(CoreFixture, LoadStoreRoundTripAndPostInc) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 0x2000));
    a.Emit(MovImm(8, 0xdeadbeef));
    a.Emit(St(4, 26, 8));
    a.Emit(LdPostInc(4, 9, 26, 4));
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(9), 0xdeadbeefu);
  EXPECT_EQ(core().regs().ReadGr(26), 0x2004u);
  EXPECT_EQ(machine_->memory().Read(0x2000, 4), 0xdeadbeefu);
}

TEST_F(CoreFixture, NarrowStoreMasksValue) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 0x2000));
    a.Emit(MovImm(8, -1));      // all ones
    a.Emit(St(8, 26, 0));       // clear the word
    a.Emit(St(1, 26, 8));       // store one byte
    a.Emit(Ld(8, 9, 26));
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(9), 0xffu);
}

TEST_F(CoreFixture, FpArithmetic) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(8, 0x4008000000000000LL));  // 3.0
    a.Emit(Setf(10, 8));
    a.Emit(Fma(11, 10, 10, 1));   // 10
    a.Emit(Fsqrt(12, 11));
    a.Emit(Fneg(13, 12));
    a.Emit(Fcmp(FCmpRel::kLt, 8, 9, 13, 0));  // -sqrt(10) < 0
    a.Emit(Getf(9, 10));
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadFr(11), 10.0);
  EXPECT_TRUE(core().regs().ReadPr(8));
  EXPECT_EQ(core().regs().ReadGr(9), 0x4008000000000000u);
}

TEST_F(CoreFixture, BrCloopRunsExactTripCount) {
  const Addr entry = Assemble([](Assembler& a) {
    const auto loop = a.NewLabel();
    a.Emit(MovImm(9, 6));  // LC = n-1 for 7 iterations
    a.Emit(MovToAr(AppReg::kLC, 9));
    a.Emit(MovImm(8, 0));
    a.FlushBundle();
    a.Bind(loop);
    a.Emit(AddImm(8, 8, 1));
    a.EmitBranch(BrCloop(0), loop);
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(8), 7u);
}

// The canonical rotating-register pipeline: a 2-stage copy through the
// rotating FP file, checking br.ctop's LC/EC/p16 management end to end.
TEST_F(CoreFixture, BrCtopPipelinedCopy) {
  constexpr int kN = 10;
  const Addr entry = Assemble([](Assembler& a) {
    const auto loop = a.NewLabel();
    a.Emit(ClrRrb());
    a.Emit(MovImm(26, 0x2000));   // src
    a.Emit(MovImm(27, 0x4000));   // dst
    a.Emit(MovImm(8, kN - 1));
    a.Emit(MovToAr(AppReg::kLC, 8));
    a.Emit(MovImm(9, 3));         // EC = stages(2) + 1
    a.Emit(MovToAr(AppReg::kEC, 9));
    a.Emit(MovToPrRot(1));
    a.FlushBundle();
    a.Bind(loop);
    a.Emit(Pred(16, LdfPostInc(32, 26, 8)));
    a.Emit(Pred(18, StfPostInc(27, 34, 8)));
    a.EmitBranch(BrCtop(0), loop);
    a.Emit(Break());
  });
  for (int i = 0; i < kN; ++i) {
    // Machine is built inside Assemble; write after construction.
    machine_->memory().WriteDouble(0x2000 + 8 * static_cast<Addr>(i),
                                   1.5 * i);
  }
  Run(entry);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(machine_->memory().ReadDouble(0x4000 + 8 * static_cast<Addr>(i)),
              1.5 * i)
        << i;
  }
  // No overrun store.
  EXPECT_EQ(machine_->memory().ReadDouble(0x4000 + 8 * kN), 0.0);
}

TEST_F(CoreFixture, BrWtopWhileLoop) {
  const Addr entry = Assemble([](Assembler& a) {
    const auto loop = a.NewLabel();
    a.Emit(ClrRrb());
    a.Emit(MovImm(28, 0));
    a.Emit(MovImm(29, 5));  // n
    a.Emit(MovImm(8, 1));
    a.Emit(MovToAr(AppReg::kEC, 8));
    a.Emit(Cmp(CmpRel::kLt, 15, 14, 28, 29));
    a.FlushBundle();
    a.Bind(loop);
    a.Emit(AddImm(28, 28, 1));
    a.Emit(Cmp(CmpRel::kLt, 15, 14, 28, 29));
    a.EmitBranch(BrWtop(15, 0), loop);
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().regs().ReadGr(28), 5u);
}

TEST_F(CoreFixture, LfetchPastMemoryEndIsDropped) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 1LL << 40));  // far past memory
    a.Emit(Lfetch(26));
    a.Emit(Break());
  });
  Run(entry);
  EXPECT_EQ(core().lfetches_dropped(), 1u);
}

TEST_F(CoreFixture, BtbRecordsTakenBranches) {
  const Addr entry = Assemble([](Assembler& a) {
    const auto loop = a.NewLabel();
    a.Emit(MovImm(9, 5));
    a.Emit(MovToAr(AppReg::kLC, 9));
    a.FlushBundle();
    a.Bind(loop);
    a.Emit(Nop());
    a.EmitBranch(BrCloop(0), loop);
    a.Emit(Break());
  });
  Run(entry);
  const auto entries = core().btb().Snapshot();
  EXPECT_EQ(core().btb().count(), 4);
  // Backward loop branch: source > target, repeated.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(entries[static_cast<std::size_t>(i)].source,
              entries[static_cast<std::size_t>(i)].target);
  }
}

TEST_F(CoreFixture, DearRecordsOnlyLongLatencyLoads) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 0x2000));
    a.Emit(Ldf(10, 26));   // cold: memory latency
    a.Emit(Ldf(11, 26));   // L2 hit: 6 cycles, filtered out
    a.Emit(Break());
  });
  core().dear().SetLatencyThreshold(12);
  Run(entry);
  EXPECT_EQ(core().dear().qualified_count(), 1u);
  EXPECT_EQ(core().dear().last().data_addr, 0x2000u);
  EXPECT_GE(core().dear().last().latency,
            machine_->config().mem.memory_latency);
}

TEST_F(CoreFixture, HpmCountersTrackEvents) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(26, 0x2000));
    a.Emit(Ldf(10, 26));
    a.Emit(Ldf(11, 26));
    a.Emit(Break());
  });
  core().hpm().Select(0, HpmEvent::kInstRetired);
  core().hpm().Select(1, HpmEvent::kLoadsRetired);
  core().hpm().Select(2, HpmEvent::kBusMemory);
  core().hpm().Select(3, HpmEvent::kCpuCycles);
  Run(entry);
  EXPECT_EQ(core().hpm().Read(0), 4u);
  EXPECT_EQ(core().hpm().Read(1), 2u);
  EXPECT_EQ(core().hpm().Read(2), 1u);  // one bus fill
  EXPECT_GT(core().hpm().Read(3), machine_->config().mem.memory_latency);
}

TEST_F(CoreFixture, RetireHookFiresAtPeriod) {
  const Addr entry = Assemble([](Assembler& a) {
    for (int i = 0; i < 10; ++i) a.Emit(AddImm(8, 8, 1));
    a.Emit(Break());
  });
  int fired = 0;
  core().SetRetireHook(4, [&fired](Core&) { ++fired; });
  const auto retired = Run(entry);
  EXPECT_EQ(retired, 11u);  // 10 adds + break
  EXPECT_EQ(fired, 2);      // after 4 and 8 retired instructions
}

}  // namespace
}  // namespace cobra::cpu
