// Memory-system tests: main memory + first-touch pages, cache arrays, the
// MESI protocol over the snooping bus, the NUMA directory, prefetch
// semantics (including .excl), inclusion, writebacks, and bus contention.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "mem/cache_array.h"
#include "mem/cache_stack.h"
#include "mem/config.h"
#include "mem/directory.h"
#include "mem/main_memory.h"
#include "mem/snoop_bus.h"
#include "support/rng.h"

namespace cobra::mem {
namespace {

// --- MainMemory ------------------------------------------------------------

TEST(MainMemory, ReadWriteRoundTrip) {
  MainMemory memory(1 << 20);
  memory.Write(0x100, 8, 0x1122334455667788ULL);
  EXPECT_EQ(memory.Read(0x100, 8), 0x1122334455667788ULL);
  EXPECT_EQ(memory.Read(0x100, 4), 0x55667788ULL);
  EXPECT_EQ(memory.Read(0x104, 4), 0x11223344ULL);
  memory.WriteDouble(0x200, 3.25);
  EXPECT_EQ(memory.ReadDouble(0x200), 3.25);
}

TEST(MainMemory, OutOfRangeAborts) {
  MainMemory memory(4096);
  EXPECT_DEATH(memory.Read(4095, 8), "out of simulated memory");
}

TEST(MainMemory, FirstTouchAssignsHome) {
  MainMemory memory(1 << 20, 16 * 1024);
  EXPECT_EQ(memory.HomeNode(0x100), -1);
  EXPECT_EQ(memory.TouchPage(0x100, 2), 2);
  EXPECT_EQ(memory.TouchPage(0x100, 3), 2);  // already homed
  EXPECT_EQ(memory.HomeNode(0x3fff), 2);     // same 16K page
  EXPECT_EQ(memory.HomeNode(0x4000), -1);    // next page untouched
}

TEST(MainMemory, PlaceRangePins) {
  MainMemory memory(1 << 20, 16 * 1024);
  memory.PlaceRange(0x4000, 0xc000, 1);
  EXPECT_EQ(memory.HomeNode(0x4000), 1);
  EXPECT_EQ(memory.HomeNode(0xbfff), 1);
  EXPECT_EQ(memory.TouchPage(0x4000, 0), 1);
}

// --- CacheArray -----------------------------------------------------------

TEST(CacheArray, HitsAndLru) {
  CacheArray cache(1024, 128, 2);  // 4 sets x 2 ways
  bool victim_valid = false;
  CacheArray::Line victim;
  cache.Insert(0x0000, Mesi::kE, 0, &victim, &victim_valid);
  EXPECT_FALSE(victim_valid);
  cache.Insert(0x0800, Mesi::kE, 0, &victim, &victim_valid);  // same set 0
  EXPECT_FALSE(victim_valid);
  EXPECT_NE(cache.Touch(0x0000), nullptr);  // refresh LRU of first line
  cache.Insert(0x1000, Mesi::kE, 0, &victim, &victim_valid);  // set 0 again
  ASSERT_TRUE(victim_valid);
  EXPECT_EQ(victim.line_addr, 0x0800u);  // LRU victim
  EXPECT_NE(cache.Probe(0x0000), nullptr);
  EXPECT_EQ(cache.Probe(0x0800), nullptr);
}

TEST(CacheArray, DirtyEvictionCounted) {
  CacheArray cache(256, 128, 1);  // 2 sets, direct-mapped
  bool victim_valid = false;
  CacheArray::Line victim;
  cache.Insert(0x0000, Mesi::kM, 0, &victim, &victim_valid);
  cache.Insert(0x0100, Mesi::kE, 0, &victim, &victim_valid);  // evicts set 0
  ASSERT_TRUE(victim_valid);
  EXPECT_EQ(victim.state, Mesi::kM);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(CacheArray, UselessPrefetchEvictionCounted) {
  CacheArray cache(256, 128, 1);
  bool victim_valid = false;
  CacheArray::Line victim;
  auto* line = cache.Insert(0x0000, Mesi::kS, 0, &victim, &victim_valid);
  line->prefetched = true;
  line->referenced = false;
  cache.Insert(0x0100, Mesi::kE, 0, &victim, &victim_valid);
  EXPECT_EQ(cache.stats().useless_prefetch_evictions, 1u);
}

// --- Test fixture: N-CPU system over a snooping bus ------------------------

class SmpFixture : public ::testing::Test {
 protected:
  void Build(int cpus) {
    cfg_ = ItaniumSmpConfig();
    cfg_.memory_bytes = 1 << 22;
    bus_ = std::make_unique<SnoopBus>(cfg_);
    std::vector<CacheStack*> raw;
    for (int i = 0; i < cpus; ++i) {
      stacks_.push_back(std::make_unique<CacheStack>(i, cfg_));
      stacks_.back()->AttachFabric(bus_.get());
      raw.push_back(stacks_.back().get());
    }
    bus_->AttachStacks(raw);
  }

  CacheStack& stack(int i) { return *stacks_[static_cast<std::size_t>(i)]; }

  MemConfig cfg_;
  std::unique_ptr<SnoopBus> bus_;
  std::vector<std::unique_ptr<CacheStack>> stacks_;
};

TEST_F(SmpFixture, ColdLoadGetsExclusiveAndMemoryLatency) {
  Build(2);
  const auto result = stack(0).Load(0x1000, 8, false, false, 0);
  EXPECT_EQ(result.source, CacheStack::Source::kMemory);
  EXPECT_GE(result.latency, cfg_.memory_latency);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kE);
  EXPECT_EQ(bus_->TotalCounts().bus_memory, 1u);
}

TEST_F(SmpFixture, SecondLoadHitsL1ThenL2) {
  Build(1);
  stack(0).Load(0x1000, 8, false, false, 0);
  // Integer reload: L1 hit.
  auto r = stack(0).Load(0x1000, 8, false, false, 1000);
  EXPECT_EQ(r.source, CacheStack::Source::kL1);
  EXPECT_EQ(r.latency, cfg_.l1_hit_latency);
  // FP load bypasses L1: L2 hit.
  r = stack(0).Load(0x1000, 8, true, false, 2000);
  EXPECT_EQ(r.source, CacheStack::Source::kL2);
  EXPECT_EQ(r.latency, cfg_.l2_hit_latency);
}

TEST_F(SmpFixture, ReadSharingDowngradesToShared) {
  Build(2);
  stack(0).Load(0x1000, 8, false, false, 0);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kE);
  const auto r = stack(1).Load(0x1000, 8, false, false, 1000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(r.source, CacheStack::Source::kMemory);  // clean snoop hit
  EXPECT_EQ(bus_->TotalCounts().bus_rd_hit, 1u);
}

TEST_F(SmpFixture, ReadOfModifiedLineIsCoherentMiss) {
  Build(2);
  stack(0).Store(0x1000, 8, 0);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kM);
  const auto r = stack(1).Load(0x1000, 8, false, false, 1000);
  EXPECT_EQ(r.source, CacheStack::Source::kCoherent);
  EXPECT_GE(r.latency, cfg_.hitm_latency);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(bus_->TotalCounts().bus_rd_hitm, 1u);
}

TEST_F(SmpFixture, StoreToSharedLineIsCoherentWriteMiss) {
  Build(2);
  stack(0).Load(0x1000, 8, false, false, 0);
  stack(1).Load(0x1000, 8, false, false, 100);  // both Shared now
  const auto l3_misses_before = stack(0).L3Misses();
  const auto r = stack(0).Store(0x1000, 8, 1000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kM);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kI);  // invalidated
  // Itanium 2: the store to a Shared line is a full read-invalidate (an L2
  // write miss that also counts as an L3 miss), not an address-only BIL.
  EXPECT_EQ(bus_->TotalCounts().bus_upgrades, 0u);
  EXPECT_EQ(stack(0).stats().store_upgrades, 1u);
  EXPECT_EQ(stack(0).L3Misses(), l3_misses_before + 1);
  EXPECT_GE(r.latency, cfg_.memory_latency);
}

TEST_F(SmpFixture, StoreToExclusiveIsSilent) {
  Build(2);
  stack(0).Load(0x1000, 8, false, false, 0);
  const auto before = bus_->TotalCounts().bus_memory +
                      bus_->TotalCounts().bus_upgrades;
  const auto r = stack(0).Store(0x1000, 8, 1000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kM);
  EXPECT_EQ(r.latency, cfg_.store_hit_latency);
  EXPECT_EQ(bus_->TotalCounts().bus_memory + bus_->TotalCounts().bus_upgrades,
            before);
}

TEST_F(SmpFixture, ProbeMemoGenerationWrapClearsStaleEntries) {
  Build(2);
  CacheStack& s = stack(0);
  s.Load(0x1000, 8, false, false, 0);  // line Exclusive in CPU0

  // Stamp a memo entry at generation 1: force the counter so the next
  // guarded segment lands on exactly 1, then take the fabric-free probe
  // that records "line present & owned".
  s.TestOnlySetProbeMemoGeneration(0);
  s.set_fabric_guard(true);
  ASSERT_EQ(s.TestOnlyProbeMemoGeneration(), 1u);
  EXPECT_FALSE(s.LoadNeedsFabric(0x1000, false, false));
  s.set_fabric_guard(false);

  // Between segments a remote store invalidates the line behind the memo's
  // back (legal: the memo is only trusted inside a guarded segment).
  stack(1).Store(0x1000, 8, 1000);
  ASSERT_EQ(s.LineState(0x1000), Mesi::kI);

  // Force the 2^64 wrap: the next guard entry overflows the generation to
  // 0, which must clear the table and restart at 1. Without the clear, the
  // entry stamped at the *old* generation 1 would alias the new one and
  // report the invalidated line as still fabric-free.
  s.TestOnlySetProbeMemoGeneration(
      std::numeric_limits<std::uint64_t>::max());
  s.set_fabric_guard(true);
  EXPECT_EQ(s.TestOnlyProbeMemoGeneration(), 1u);
  EXPECT_TRUE(s.LoadNeedsFabric(0x1000, false, false));
  s.set_fabric_guard(false);
}

TEST_F(SmpFixture, RfoOfModifiedLineCountsInvalHitm) {
  Build(2);
  stack(0).Store(0x1000, 8, 0);
  stack(1).Store(0x1000, 8, 1000);  // cold in CPU1: RFO hits M in CPU0
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kI);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kM);
  EXPECT_EQ(bus_->TotalCounts().bus_rd_inval_all_hitm, 1u);
}

TEST_F(SmpFixture, PrefetchInstallsSharedOrExclusive) {
  Build(2);
  stack(0).Prefetch(0x1000, /*excl=*/false, 0);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kE);  // nobody else had it
  stack(1).Prefetch(0x1000, /*excl=*/false, 100);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
}

TEST_F(SmpFixture, ExclPrefetchInvalidatesOtherCopies) {
  Build(2);
  stack(0).Load(0x1000, 8, false, false, 0);
  stack(1).Prefetch(0x1000, /*excl=*/true, 100);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kI);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kE);
  // The later store on CPU1 is then silent.
  const auto upgrades_before = bus_->TotalCounts().bus_upgrades;
  stack(1).Store(0x1000, 8, 200);
  EXPECT_EQ(bus_->TotalCounts().bus_upgrades, upgrades_before);
}

TEST_F(SmpFixture, ExclPrefetchReacquiresOwnWrittenLine) {
  Build(2);
  // CPU0 wrote the line; CPU1's read downgraded it to Shared. An exclusive
  // prefetch hint may re-acquire it (it is part of CPU0's written set).
  stack(0).Store(0x1000, 8, 0);
  stack(1).Load(0x1000, 8, false, false, 100);  // HITM: S in both
  stack(0).Prefetch(0x1000, /*excl=*/true, 2000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kE);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kI);
  EXPECT_EQ(stack(0).stats().prefetch_upgrades, 1u);
}

TEST_F(SmpFixture, ExclPrefetchDoesNotStealReadSharedLines) {
  Build(2);
  // Both CPUs only ever read the line: the exclusive hint must not
  // invalidate the other reader's copy (read-shared data is not a
  // store-bound stream).
  stack(0).Load(0x1000, 8, false, false, 0);
  stack(1).Load(0x1000, 8, false, false, 100);  // S in both
  stack(0).Prefetch(0x1000, /*excl=*/true, 2000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(stack(1).LineState(0x1000), Mesi::kS);
  EXPECT_EQ(stack(0).stats().prefetch_upgrades, 0u);
}

TEST_F(SmpFixture, ExclPrefetchDirtyInstallAblation) {
  auto cfg = ItaniumSmpConfig();
  cfg.excl_prefetch_installs_dirty = true;
  cfg.memory_bytes = 1 << 22;
  cfg_ = cfg;
  bus_ = std::make_unique<SnoopBus>(cfg_);
  stacks_.push_back(std::make_unique<CacheStack>(0, cfg_));
  stacks_.back()->AttachFabric(bus_.get());
  bus_->AttachStacks({stacks_.back().get()});
  stack(0).Prefetch(0x1000, /*excl=*/true, 0);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kM);
}

TEST_F(SmpFixture, PrefetchedLineStallsOnlyForRemainder) {
  Build(1);
  stack(0).Prefetch(0x1000, false, 0);  // ready at ~memory_latency
  // Demand load shortly after: waits the remainder, not the full latency.
  const auto r = stack(0).Load(0x1000, 8, true, false, 50);
  EXPECT_LT(r.latency, cfg_.memory_latency);
  EXPECT_GT(r.latency, cfg_.l2_hit_latency);
  // Long after: plain L2 hit.
  const auto r2 = stack(0).Load(0x1008, 8, true, false, 10000);
  EXPECT_EQ(r2.latency, cfg_.l2_hit_latency);
}

TEST_F(SmpFixture, PrefetchIsDroppedWhenLinePresent) {
  Build(1);
  stack(0).Load(0x1000, 8, false, false, 0);
  const auto bus_before = bus_->TotalCounts().bus_memory;
  stack(0).Prefetch(0x1000, false, 100);
  EXPECT_EQ(bus_->TotalCounts().bus_memory, bus_before);
}

TEST_F(SmpFixture, BusContentionQueuesRequests) {
  Build(2);
  // Two simultaneous cold loads: the second queues behind the first.
  const auto r0 = stack(0).Load(0x1000, 8, false, false, 0);
  const auto r1 = stack(1).Load(0x2000, 8, false, false, 0);
  EXPECT_EQ(r0.latency, cfg_.memory_latency);
  EXPECT_EQ(r1.latency, cfg_.memory_latency + cfg_.bus_data_occupancy);
  EXPECT_EQ(bus_->queue_cycles(), cfg_.bus_data_occupancy);
}

TEST_F(SmpFixture, InclusionL3EvictionInvalidatesInnerLevels) {
  Build(1);
  // Fill one L3 set past its associativity and check early lines left L2/L1.
  const Addr stride =
      cfg_.l3.line_bytes * (cfg_.l3.size_bytes / cfg_.l3.line_bytes /
                            static_cast<Addr>(cfg_.l3.associativity));
  stack(0).Load(0x0, 8, false, false, 0);
  EXPECT_TRUE(stack(0).PresentInL1(0x0));
  for (int i = 1; i <= cfg_.l3.associativity; ++i) {
    stack(0).Load(static_cast<Addr>(i) * stride, 8, false, false, 0);
  }
  EXPECT_EQ(stack(0).LineState(0x0), Mesi::kI);
  EXPECT_FALSE(stack(0).PresentInL2(0x0));
  EXPECT_FALSE(stack(0).PresentInL1(0x0));
}

TEST_F(SmpFixture, DirtyL3EvictionWritesBack) {
  Build(1);
  const Addr stride =
      cfg_.l3.line_bytes * (cfg_.l3.size_bytes / cfg_.l3.line_bytes /
                            static_cast<Addr>(cfg_.l3.associativity));
  stack(0).Store(0x0, 8, 0);
  for (int i = 1; i <= cfg_.l3.associativity; ++i) {
    stack(0).Load(static_cast<Addr>(i) * stride, 8, false, false, 0);
  }
  EXPECT_EQ(stack(0).stats().fabric_writebacks, 1u);
  EXPECT_EQ(bus_->TotalCounts().bus_writebacks, 1u);
}

TEST_F(SmpFixture, PerCpuCountsAttributeToRequester) {
  Build(2);
  stack(0).Store(0x1000, 8, 0);
  stack(1).Load(0x1000, 8, false, false, 100);
  EXPECT_EQ(bus_->CpuCounts(1).bus_rd_hitm, 1u);
  EXPECT_EQ(bus_->CpuCounts(0).bus_rd_hitm, 0u);
}

// MESI invariant sweep: after a random workload, no line is M/E in one
// stack while valid in another.
TEST_F(SmpFixture, MesiInvariantHoldsUnderRandomTraffic) {
  Build(4);
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 20000; ++step) {
    const int cpu = static_cast<int>(next() % 4);
    const Addr addr = (next() % 64) * 64;  // 64 hot sublines
    const int op = static_cast<int>(next() % 4);
    if (op == 0) {
      stack(cpu).Store(addr, 8, static_cast<Cycle>(step) * 10);
    } else if (op == 1) {
      stack(cpu).Prefetch(addr, next() % 2 == 0,
                          static_cast<Cycle>(step) * 10);
    } else {
      stack(cpu).Load(addr, 8, op == 2, false, static_cast<Cycle>(step) * 10);
    }
  }
  for (Addr line = 0; line < 64 * 64; line += cfg_.l2.line_bytes) {
    int exclusive_holders = 0;
    int holders = 0;
    for (int cpu = 0; cpu < 4; ++cpu) {
      const Mesi state = stack(cpu).LineState(line);
      if (state != Mesi::kI) ++holders;
      if (state == Mesi::kM || state == Mesi::kE) ++exclusive_holders;
    }
    EXPECT_LE(exclusive_holders, 1) << "line " << line;
    if (exclusive_holders == 1) {
      EXPECT_EQ(holders, 1) << "line " << line;
    }
  }
}

// --- Directory (NUMA) fixture ------------------------------------------------

class NumaFixture : public ::testing::Test {
 protected:
  void Build(int cpus) {
    cfg_ = AltixNumaConfig();
    cfg_.memory_bytes = 1 << 22;
    memory_ = std::make_unique<MainMemory>(cfg_.memory_bytes, cfg_.page_bytes);
    dir_ = std::make_unique<DirectoryFabric>(cfg_, memory_.get(), cpus);
    std::vector<CacheStack*> raw;
    for (int i = 0; i < cpus; ++i) {
      stacks_.push_back(std::make_unique<CacheStack>(i, cfg_));
      stacks_.back()->AttachFabric(dir_.get());
      raw.push_back(stacks_.back().get());
    }
    dir_->AttachStacks(raw);
  }

  CacheStack& stack(int i) { return *stacks_[static_cast<std::size_t>(i)]; }

  MemConfig cfg_;
  std::unique_ptr<MainMemory> memory_;
  std::unique_ptr<DirectoryFabric> dir_;
  std::vector<std::unique_ptr<CacheStack>> stacks_;
};

TEST_F(NumaFixture, FirstTouchHomesPageAtRequester) {
  Build(4);
  stack(2).Load(0x1000, 8, false, false, 0);  // CPU2 = node 1
  EXPECT_EQ(memory_->HomeNode(0x1000), 1);
}

TEST_F(NumaFixture, LocalVsRemoteLatency) {
  Build(4);
  memory_->PlaceRange(0x0, 0x8000, /*node=*/0);
  const auto local = stack(0).Load(0x1000, 8, false, false, 0);
  const auto remote = stack(2).Load(0x2000, 8, false, false, 0);
  EXPECT_FALSE(local.source == CacheStack::Source::kRemote);
  EXPECT_EQ(remote.source, CacheStack::Source::kRemote);
  EXPECT_GT(remote.latency, local.latency + 2 * cfg_.link_hop_latency);
}

TEST_F(NumaFixture, DirectoryTracksOwnerAndSharers) {
  Build(4);
  stack(0).Load(0x1000, 8, false, false, 0);
  const auto* entry = dir_->Lookup(0x1000 & ~Addr{127});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner, 0);
  stack(2).Load(0x1000, 8, false, false, 100);
  entry = dir_->Lookup(0x1000 & ~Addr{127});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner, -1);
  EXPECT_EQ(entry->sharers, 0b101u);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kS);
}

TEST_F(NumaFixture, RemoteDirtyReadIsThreeHopCoherentMiss) {
  Build(8);
  memory_->PlaceRange(0x0, 0x8000, 0);
  stack(6).Store(0x1000, 8, 0);  // node 3 owns the line dirty
  const auto r = stack(2).Load(0x1000, 8, false, false, 10000);
  EXPECT_EQ(r.source, CacheStack::Source::kCoherent);
  // requester(node1) -> home(node0) -> owner(node3) -> requester: 3 legs.
  EXPECT_GE(r.latency, cfg_.hitm_latency + 3 * 2 * cfg_.link_hop_latency);
  EXPECT_EQ(stack(6).LineState(0x1000), Mesi::kS);
}

TEST_F(NumaFixture, UpgradeInvalidatesPreciselyTheSharers) {
  Build(8);
  stack(0).Load(0x1000, 8, false, false, 0);
  stack(3).Load(0x1000, 8, false, false, 100);
  stack(5).Load(0x1000, 8, false, false, 200);
  stack(3).Store(0x1000, 8, 1000);
  EXPECT_EQ(stack(0).LineState(0x1000), Mesi::kI);
  EXPECT_EQ(stack(5).LineState(0x1000), Mesi::kI);
  EXPECT_EQ(stack(3).LineState(0x1000), Mesi::kM);
  const auto* entry = dir_->Lookup(0x1000 & ~Addr{127});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner, 3);
}

TEST_F(NumaFixture, EvictNotifyKeepsDirectoryExact) {
  Build(2);
  const Addr stride =
      cfg_.l3.line_bytes * (cfg_.l3.size_bytes / cfg_.l3.line_bytes /
                            static_cast<Addr>(cfg_.l3.associativity));
  stack(0).Load(0x0, 8, false, false, 0);
  EXPECT_NE(dir_->Lookup(0x0), nullptr);
  for (int i = 1; i <= cfg_.l3.associativity; ++i) {
    stack(0).Load(static_cast<Addr>(i) * stride, 8, false, false, 0);
  }
  EXPECT_EQ(dir_->Lookup(0x0), nullptr);  // clean drop was reported
}

TEST_F(NumaFixture, MesiInvariantHoldsUnderRandomTraffic) {
  Build(8);
  std::uint64_t rng = 99;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 30000; ++step) {
    const int cpu = static_cast<int>(next() % 8);
    const Addr addr = (next() % 128) * 64;
    const int op = static_cast<int>(next() % 4);
    if (op == 0) {
      stack(cpu).Store(addr, 8, static_cast<Cycle>(step) * 10);
    } else if (op == 1) {
      stack(cpu).Prefetch(addr, next() % 2 == 0,
                          static_cast<Cycle>(step) * 10);
    } else {
      stack(cpu).Load(addr, 8, op == 2, false, static_cast<Cycle>(step) * 10);
    }
  }
  for (Addr line = 0; line < 128 * 64; line += cfg_.l2.line_bytes) {
    int exclusive_holders = 0;
    int holders = 0;
    for (int cpu = 0; cpu < 8; ++cpu) {
      const Mesi state = stack(cpu).LineState(line);
      if (state != Mesi::kI) ++holders;
      if (state == Mesi::kM || state == Mesi::kE) ++exclusive_holders;
    }
    EXPECT_LE(exclusive_holders, 1) << "line " << line;
    if (exclusive_holders == 1) {
      EXPECT_EQ(holders, 1) << "line " << line;
    }
    // Directory agreement: every holder is known to the directory.
    const auto* entry = dir_->Lookup(line);
    for (int cpu = 0; cpu < 8; ++cpu) {
      if (stack(cpu).LineState(line) != Mesi::kI) {
        ASSERT_NE(entry, nullptr) << "line " << line;
        const bool known = (entry->sharers >> cpu) & 1;
        EXPECT_TRUE(known || entry->owner == cpu)
            << "line " << line << " cpu " << cpu;
      }
    }
  }
}

// --- CacheArray property test ------------------------------------------------
// Random op sequences against an exact executable model of the array:
// per-set MRU->LRU lists plus the counter semantics of Touch/Insert/
// Invalidate. Everything is compared exactly — victim identity, counter
// values, final residency and full LRU order.

TEST(CacheArrayProperty, RandomOpsMatchExactReferenceModel) {
  constexpr int kAssoc = 4;
  constexpr std::size_t kSets = 4;
  constexpr Addr kLine = 128;
  constexpr int kDistinctLines = 64;
  CacheArray cache(kSets * kAssoc * kLine, kLine, kAssoc);

  struct ModelLine {
    Addr addr = 0;
    Mesi state = Mesi::kI;
    bool prefetched = false;
    bool referenced = false;
  };
  std::array<std::vector<ModelLine>, kSets> model;  // MRU at the front

  auto FindIn = [](std::vector<ModelLine>& set, Addr line_addr) {
    return std::find_if(
        set.begin(), set.end(),
        [line_addr](const ModelLine& l) { return l.addr == line_addr; });
  };

  support::Rng rng(0xc0b7a);
  CacheArray::Stats expect;
  std::uint64_t touches = 0;
  constexpr std::array<Mesi, 3> kStates = {Mesi::kE, Mesi::kS, Mesi::kM};

  for (int step = 0; step < 20000; ++step) {
    const Addr line_addr = kLine * rng.NextBounded(kDistinctLines);
    const Addr addr = line_addr + rng.NextBounded(kLine);  // any byte of it
    auto& set = model[(line_addr / kLine) % kSets];
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // Touch: LRU bump on hit, hit/miss counters
        ++touches;
        CacheArray::Line* line = cache.Touch(addr);
        auto it = FindIn(set, line_addr);
        if (it != set.end()) {
          ++expect.hits;
          ASSERT_NE(line, nullptr);
          ASSERT_EQ(line->line_addr, line_addr);
          ASSERT_EQ(line->state, it->state);
          const ModelLine ml = *it;
          set.erase(it);
          set.insert(set.begin(), ml);
        } else {
          ++expect.misses;
          ASSERT_EQ(line, nullptr);
        }
        break;
      }
      case 3:
      case 4:
      case 5: {  // Insert: exact hit > invalid way > LRU victim
        const Mesi state = kStates[rng.NextBounded(kStates.size())];
        bool victim_valid = false;
        CacheArray::Line victim;
        CacheArray::Line* line =
            cache.Insert(addr, state, 0, &victim, &victim_valid);
        ASSERT_NE(line, nullptr);
        auto it = FindIn(set, line_addr);
        if (it != set.end()) {
          // Re-insert over the existing copy keeps prefetch bookkeeping.
          ASSERT_FALSE(victim_valid);
          ModelLine ml = *it;
          ml.state = state;
          set.erase(it);
          set.insert(set.begin(), ml);
        } else if (static_cast<int>(set.size()) < kAssoc) {
          ASSERT_FALSE(victim_valid);
          set.insert(set.begin(), ModelLine{line_addr, state, false, false});
        } else {
          ASSERT_TRUE(victim_valid);
          const ModelLine lru = set.back();
          ASSERT_EQ(victim.line_addr, lru.addr);
          ASSERT_EQ(victim.state, lru.state);
          ASSERT_EQ(victim.prefetched, lru.prefetched);
          ASSERT_EQ(victim.referenced, lru.referenced);
          ++expect.evictions;
          if (lru.state == Mesi::kM) ++expect.dirty_evictions;
          if (lru.prefetched && !lru.referenced) {
            ++expect.useless_prefetch_evictions;
          }
          set.pop_back();
          set.insert(set.begin(), ModelLine{line_addr, state, false, false});
        }
        ASSERT_EQ(line->state, state);
        ASSERT_EQ(line->prefetched, set.front().prefetched);
        ASSERT_EQ(line->referenced, set.front().referenced);
        // Sometimes mark the fill the way CacheStack does: as a prefetch,
        // or as a demand access referencing a prefetched line.
        if (rng.NextBounded(4) == 0) {
          line->prefetched = true;
          set.front().prefetched = true;
        } else if (rng.NextBounded(4) == 0) {
          line->referenced = true;
          set.front().referenced = true;
        }
        break;
      }
      case 6: {  // Invalidate: drop if present, no counters
        cache.Invalidate(addr);
        auto it = FindIn(set, line_addr);
        if (it != set.end()) set.erase(it);
        break;
      }
      default: {  // Probe: no LRU or counter side effects
        const CacheArray& ccache = cache;
        const CacheArray::Line* line = ccache.Probe(addr);
        auto it = FindIn(set, line_addr);
        if (it != set.end()) {
          ASSERT_NE(line, nullptr);
          ASSERT_EQ(line->state, it->state);
        } else {
          ASSERT_EQ(line, nullptr);
        }
        break;
      }
    }
  }

  // Counters are exact (and therefore can never have gone "negative" /
  // wrapped: each is bounded by the model's event count).
  const CacheArray::Stats& got = cache.stats();
  EXPECT_EQ(got.hits, expect.hits);
  EXPECT_EQ(got.misses, expect.misses);
  EXPECT_EQ(got.evictions, expect.evictions);
  EXPECT_EQ(got.dirty_evictions, expect.dirty_evictions);
  EXPECT_EQ(got.useless_prefetch_evictions, expect.useless_prefetch_evictions);
  EXPECT_EQ(got.hits + got.misses, touches);
  EXPECT_LE(got.dirty_evictions, got.evictions);
  EXPECT_LE(got.useless_prefetch_evictions, got.evictions);

  // Final residency and full LRU order: valid lines per set, most recently
  // used first, must equal the model lists element for element.
  struct Seen {
    Addr addr;
    Mesi state;
    std::uint64_t lru;
  };
  std::array<std::vector<Seen>, kSets> seen;
  std::size_t resident = 0;
  cache.ForEachValid([&seen, &resident](const CacheArray::Line& line) {
    seen[(line.line_addr / kLine) % kSets].push_back(
        {line.line_addr, line.state, line.lru});
    ++resident;
  });
  std::size_t model_resident = 0;
  for (std::size_t s = 0; s < kSets; ++s) model_resident += model[s].size();
  ASSERT_EQ(resident, model_resident);
  for (std::size_t s = 0; s < kSets; ++s) {
    std::sort(seen[s].begin(), seen[s].end(),
              [](const Seen& a, const Seen& b) { return a.lru > b.lru; });
    ASSERT_EQ(seen[s].size(), model[s].size());
    for (std::size_t i = 0; i < seen[s].size(); ++i) {
      EXPECT_EQ(seen[s][i].addr, model[s][i].addr) << "set " << s << " mru#" << i;
      EXPECT_EQ(seen[s][i].state, model[s][i].state) << "set " << s << " mru#" << i;
    }
  }
}

}  // namespace
}  // namespace cobra::mem
