// NPB mini-suite tests: every benchmark builds, runs and verifies on SMP
// and NUMA machines at several thread counts; static statistics have the
// Table 1 structure; the result benchmarks exhibit the coherent-miss
// behaviour the paper's detector keys on, while EP/IS do not.
#include <gtest/gtest.h>

#include <memory>

#include "npb/common.h"

namespace cobra::npb {
namespace {

struct SuiteCase {
  const char* name;
  int threads;
  bool numa;
};

std::string CaseName(const ::testing::TestParamInfo<SuiteCase>& info) {
  return std::string(info.param.name) + "_t" +
         std::to_string(info.param.threads) + (info.param.numa ? "_numa" : "_smp");
}

class NpbSuiteTest : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(NpbSuiteTest, RunsAndVerifies) {
  const SuiteCase param = GetParam();
  auto benchmark = MakeBenchmark(param.name);
  kgen::Program prog;
  benchmark->Build(prog, kgen::PrefetchPolicy{});

  machine::MachineConfig cfg = param.numa
                                   ? machine::AltixConfig(param.threads)
                                   : machine::SmpServerConfig(param.threads);
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  benchmark->Init(machine, param.threads);

  rt::Team team(&machine, param.threads);
  const Cycle cycles = benchmark->Run(team);
  EXPECT_GT(cycles, 0u);
  EXPECT_TRUE(benchmark->Verify(machine)) << param.name;
}

std::vector<SuiteCase> AllCases() {
  static const char* kNames[] = {"bt", "sp", "lu", "ft",
                                 "mg", "cg", "ep", "is"};
  std::vector<SuiteCase> cases;
  for (const char* name : kNames) {
    cases.push_back(SuiteCase{name, 1, false});
    cases.push_back(SuiteCase{name, 4, false});
    cases.push_back(SuiteCase{name, 8, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, NpbSuiteTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(NpbStatic, Table1StructureHolds) {
  // lfetch and SWP-branch counts per benchmark: every result benchmark has
  // prefetches and br.ctop loops; FT has br.wtop loops; the noprefetch
  // compile has zero lfetches.
  for (const std::string& name : SuiteNames()) {
    auto benchmark = MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    const kgen::StaticStats stats = prog.CountStatic();
    if (name != "ep") {
      EXPECT_GT(stats.lfetch, 0u) << name;
    }
    if (name == "ft") {
      EXPECT_GE(stats.br_wtop, 4u);
    }
    if (name == "bt" || name == "sp" || name == "lu" || name == "mg") {
      EXPECT_GT(stats.br_ctop, 5u) << name;
      EXPECT_EQ(stats.br_wtop, 0u) << name;
    }

    auto noprefetch = MakeBenchmark(name);
    kgen::Program bare;
    noprefetch->Build(bare, kgen::PrefetchPolicy::None());
    EXPECT_EQ(bare.CountStatic().lfetch, 0u) << name;
  }
}

TEST(NpbStatic, MgHasTheLargestLoopInventory) {
  // Table 1: MG and CG carry the most prefetches; MG has the most loops.
  std::uint64_t mg_loops = 0, bt_loops = 0;
  {
    auto mg = MakeBenchmark("mg");
    kgen::Program prog;
    mg->Build(prog, kgen::PrefetchPolicy{});
    const auto stats = prog.CountStatic();
    mg_loops = stats.br_ctop + stats.br_cloop + stats.br_wtop;
  }
  {
    auto bt = MakeBenchmark("bt");
    kgen::Program prog;
    bt->Build(prog, kgen::PrefetchPolicy{});
    const auto stats = prog.CountStatic();
    bt_loops = stats.br_ctop + stats.br_cloop + stats.br_wtop;
  }
  EXPECT_GT(mg_loops, bt_loops);
}

TEST(NpbCoherence, ResultBenchmarksShowCoherentTraffic) {
  // The six Figure 5 benchmarks must produce coherent bus events at 4
  // threads (the paper: 60-70% of class-S accesses are coherent).
  for (const std::string& name : ResultBenchmarkNames()) {
    auto benchmark = MakeBenchmark(name);
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    machine::MachineConfig cfg = machine::SmpServerConfig(4);
    cfg.mem.memory_bytes = 1 << 25;
    machine::Machine machine(cfg, &prog.image());
    benchmark->Init(machine, 4);
    rt::Team team(&machine, 4);
    benchmark->Run(team);
    const auto& bus = machine.fabric().TotalCounts();
    EXPECT_GT(bus.CoherentEvents(), 100u) << name;
  }
}

TEST(NpbCoherence, EpHasNoCoherentTraffic) {
  auto benchmark = MakeBenchmark("ep");
  kgen::Program prog;
  benchmark->Build(prog, kgen::PrefetchPolicy{});
  machine::MachineConfig cfg = machine::SmpServerConfig(4);
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  benchmark->Init(machine, 4);
  rt::Team team(&machine, 4);
  benchmark->Run(team);
  const auto& bus = machine.fabric().TotalCounts();
  // EP touches almost no memory: coherent events are negligible.
  EXPECT_LT(bus.bus_rd_hitm, 10u);
}

TEST(NpbDeterminism, RepeatRunsAreBitIdentical) {
  auto RunOnce = [] {
    auto benchmark = MakeBenchmark("cg");
    kgen::Program prog;
    benchmark->Build(prog, kgen::PrefetchPolicy{});
    machine::MachineConfig cfg = machine::SmpServerConfig(4);
    cfg.mem.memory_bytes = 1 << 25;
    machine::Machine machine(cfg, &prog.image());
    benchmark->Init(machine, 4);
    rt::Team team(&machine, 4);
    return benchmark->Run(team);
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

}  // namespace
}  // namespace cobra::npb
