// Observability-layer unit tests: the metric registry (probes, snapshots,
// fingerprints, RAII registration groups), the Chrome trace-event sink
// (its output must parse as the JSON chrome://tracing loads), the JSON
// document model itself (round-tripping, exact integers, schema
// signatures), and a whole-machine check that the registry's aggregate
// metrics agree with the counters they summarize.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/machine.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "rt/team.h"
#include "support/json.h"

namespace cobra {
namespace {

using support::Json;

// --- Registry --------------------------------------------------------------

TEST(Registry, SnapshotIsNameSortedAndQueryable) {
  obs::Registry registry;
  std::uint64_t a = 7;
  registry.Register("mem.l3.miss", [&a] { return a; });
  registry.Register("bus.occupancy", [] { return std::uint64_t{3}; });
  registry.Register("mem.l2.miss", [] { return std::uint64_t{11}; });

  const obs::Snapshot snap = registry.Take();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "bus.occupancy");
  EXPECT_EQ(snap.metrics[1].name, "mem.l2.miss");
  EXPECT_EQ(snap.metrics[2].name, "mem.l3.miss");
  EXPECT_TRUE(snap.Has("mem.l3.miss"));
  EXPECT_FALSE(snap.Has("mem.l4.miss"));
  EXPECT_EQ(snap.Value("mem.l3.miss"), 7u);
  EXPECT_EQ(snap.SumPrefix("mem."), 18u);
  EXPECT_EQ(snap.SumPrefix(""), 21u);

  // Probes are live: the next snapshot sees the new value.
  a = 100;
  EXPECT_EQ(registry.Take().Value("mem.l3.miss"), 100u);
}

TEST(Registry, FingerprintTracksNamesAndValues) {
  obs::Registry registry;
  std::uint64_t v = 1;
  registry.Register("a", [&v] { return v; });
  const std::uint64_t fp1 = registry.Take().Fingerprint();
  EXPECT_EQ(registry.Take().Fingerprint(), fp1);  // stable
  v = 2;
  const std::uint64_t fp2 = registry.Take().Fingerprint();
  EXPECT_NE(fp1, fp2);

  // Same values under a different name hash differently.
  obs::Registry other;
  std::uint64_t w = 2;
  other.Register("b", [&w] { return w; });
  EXPECT_NE(other.Take().Fingerprint(), fp2);
}

TEST(Registry, HostMetricsExcludedFromFingerprintAndDump) {
  obs::Registry registry;
  registry.Register("sim.counter", [] { return std::uint64_t{42}; });
  const std::uint64_t fp_sim_only = registry.Take().Fingerprint();
  const std::string dump_sim_only = registry.Take().ToString();

  // A host-class probe is sampled like any metric but must not perturb the
  // determinism fingerprint or the diffable dump, whatever value it reads.
  std::uint64_t wall = 123456;
  registry.RegisterHost("host.wall_ns", [&wall] { return wall; });
  obs::Snapshot snap = registry.Take();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_TRUE(snap.Has("host.wall_ns"));
  EXPECT_EQ(snap.Value("host.wall_ns"), 123456u);
  EXPECT_EQ(snap.Fingerprint(), fp_sim_only);
  EXPECT_EQ(snap.ToString(), dump_sim_only);

  wall = 999;  // "another run": different host reading, same fingerprint
  EXPECT_EQ(registry.Take().Fingerprint(), fp_sim_only);
}

TEST(Registry, DuplicateNameAborts) {
  obs::Registry registry;
  registry.Register("x", [] { return std::uint64_t{0}; });
  EXPECT_DEATH(registry.Register("x", [] { return std::uint64_t{0}; }),
               "duplicate metric name");
}

TEST(Registry, UnregisterAndRegistrationGroup) {
  obs::Registry registry;
  const int id = registry.Register("gone", [] { return std::uint64_t{1}; });
  registry.Unregister(id);
  EXPECT_FALSE(registry.Take().Has("gone"));

  {
    obs::Registry::Registration group(&registry);
    group.Add("scoped.a", [] { return std::uint64_t{1}; });
    group.Add("scoped.b", [] { return std::uint64_t{2}; });
    EXPECT_EQ(registry.Take().SumPrefix("scoped."), 3u);
  }
  // The group released its probes; the name is free again.
  EXPECT_FALSE(registry.Take().Has("scoped.a"));
  registry.Register("scoped.a", [] { return std::uint64_t{9}; });
  EXPECT_EQ(registry.Take().Value("scoped.a"), 9u);
}

// --- Machine integration ---------------------------------------------------

// The aggregate metrics must equal the sums of what they aggregate, and the
// engine tallies must be live after a run.
TEST(Registry, MachineMetricsAgreeWithCounters) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kN = 4096;
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::Machine machine(machine::SmpServerConfig(4), &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
  rt::Team team(&machine, 4);
  team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 4, kN);
    regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, 0.5);
  });

  const obs::Snapshot snap = machine.registry().Take();
  std::uint64_t l3 = 0;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    l3 += machine.stack(cpu).L3Misses();
    EXPECT_EQ(snap.Value("cpu" + std::to_string(cpu) + ".retired"),
              machine.core(cpu).instructions_retired());
  }
  EXPECT_GT(l3, 0u);
  EXPECT_EQ(snap.Value("mem.l3.miss"), l3);
  EXPECT_EQ(snap.Value("mem.l3.miss"),
            snap.SumPrefix("mem.cpu0.l3.") + snap.SumPrefix("mem.cpu1.l3.") +
                snap.SumPrefix("mem.cpu2.l3.") + snap.SumPrefix("mem.cpu3.l3."));
  // Fabric metrics are registered under the active protocol's prefix.
  const std::string fab =
      std::string("fabric.") + mem::ProtocolName(machine.config().mem.protocol);
  EXPECT_EQ(snap.Value(fab + ".memory"),
            machine.fabric().TotalCounts().bus_memory);
  EXPECT_EQ(snap.Value("machine.global_time"), machine.GlobalTime());
  EXPECT_GT(snap.Value("engine.quanta"), 0u);
  EXPECT_GT(snap.Value("engine.commits"), 0u);

  // The engine accounted the run's host-perf: simulated-work counters are
  // exact (sum of core deltas), wall-clock is host-dependent so only its
  // presence is checked.
  EXPECT_EQ(snap.Value("host.runs"), 1u);
  EXPECT_GT(snap.Value("host.sim_cycles"), 0u);
  EXPECT_GT(snap.Value("host.retired"), 0u);
  EXPECT_TRUE(snap.Has("host.wall_ns"));
}

// --- Trace sink ------------------------------------------------------------

TEST(TraceSink, WritesChromeLoadableJson) {
  obs::TraceSink sink;
  const int pid = sink.BeginProcess("smpx4");
  sink.NameThread(pid, 0, "cpu0");
  sink.Complete(pid, 0, "coherence", "read", 100, 40);
  sink.Complete(pid, 0, "engine", "quantum", 0, 1024);
  sink.Instant(pid, 5, "cobra", "deploy.noprefetch", 2048);
  EXPECT_EQ(sink.event_count(), 5u);  // 2 metadata + 3 events

  std::ostringstream out;
  sink.WriteJson(out);
  std::string error;
  const auto doc = Json::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  // The shape chrome://tracing expects: an object with a traceEvents
  // array whose records carry ph/pid/tid/ts.
  const Json& events = doc->At("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.elements()[0].At("ph").AsString(), "M");
  EXPECT_EQ(events.elements()[0].At("name").AsString(), "process_name");
  EXPECT_EQ(events.elements()[0].At("args").At("name").AsString(), "smpx4");
  const Json& read = events.elements()[2];
  EXPECT_EQ(read.At("ph").AsString(), "X");
  EXPECT_EQ(read.At("cat").AsString(), "coherence");
  EXPECT_EQ(read.At("ts").AsInt(), 100);
  EXPECT_EQ(read.At("dur").AsInt(), 40);
  EXPECT_EQ(read.At("pid").AsInt(), pid);
  const Json& instant = events.elements()[4];
  EXPECT_EQ(instant.At("ph").AsString(), "i");
  EXPECT_EQ(instant.At("s").AsString(), "t");
  EXPECT_EQ(instant.At("name").AsString(), "deploy.noprefetch");
}

TEST(TraceSink, MachineEmitsTimelineWhenAttached) {
  obs::TraceSink sink;
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kN = 2048;
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);
  machine::Machine machine(machine::SmpServerConfig(2), &prog.image());
  machine.SetTraceSink(&sink);
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }
  rt::Team team(&machine, 2);
  team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
    const auto chunk = rt::StaticChunk(tid, 2, kN);
    regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
    regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
    regs.WriteFr(6, 0.5);
  });

  std::ostringstream out;
  sink.WriteJson(out);
  std::string error;
  const auto doc = Json::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  // Count events per category: the run must have produced engine quanta
  // and coherence transactions on the machine's pid.
  std::size_t quanta = 0;
  std::size_t coherence = 0;
  for (const Json& e : doc->At("traceEvents").elements()) {
    const Json* cat = e.Find("cat");
    if (cat == nullptr) continue;
    if (cat->AsString() == "engine") ++quanta;
    if (cat->AsString() == "coherence") ++coherence;
  }
  EXPECT_GT(quanta, 0u);
  EXPECT_GT(coherence, 0u);
}

// --- JSON model ------------------------------------------------------------

TEST(JsonModel, BuildDumpParseRoundTrip) {
  Json doc = Json::Object();
  doc.Set("int", std::int64_t{1234567890123456789});
  doc.Set("neg", -42);
  doc.Set("dbl", 0.1);
  doc.Set("str", "line\n\"quoted\"\ttab");
  doc.Set("yes", true);
  doc.Set("null", Json());
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  doc.Set("arr", std::move(arr));

  const std::string text = doc.Dump();
  std::string error;
  const auto parsed = Json::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Dump(), text);  // fixed point
  EXPECT_EQ(parsed->At("int").AsInt(), 1234567890123456789);
  EXPECT_EQ(parsed->At("neg").AsInt(), -42);
  EXPECT_DOUBLE_EQ(parsed->At("dbl").AsDouble(), 0.1);
  EXPECT_EQ(parsed->At("str").AsString(), "line\n\"quoted\"\ttab");
  EXPECT_TRUE(parsed->At("yes").AsBool());
  EXPECT_EQ(parsed->At("null").kind(), Json::Kind::kNull);
  EXPECT_EQ(parsed->At("arr").elements()[1].AsString(), "two");
}

TEST(JsonModel, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "{\"a\":1,}", "\"unterminated"}) {
    std::string error;
    EXPECT_FALSE(Json::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonModel, SchemaSignatureErasesValuesKeepsShape) {
  const auto a = Json::Parse(R"({"b": 1, "a": [ {"x": 1.5}, {"x": 2} ]})");
  const auto b = Json::Parse(R"({"a": [ {"x": 99} ], "b": -7})");
  const auto c = Json::Parse(R"({"a": [ {"x": "s"} ], "b": 0})");
  ASSERT_TRUE(a && b && c);
  // Same keys/types (key order and array length don't matter) -> equal.
  EXPECT_EQ(a->SchemaSignature(), b->SchemaSignature());
  // A type change inside array elements -> different.
  EXPECT_NE(a->SchemaSignature(), c->SchemaSignature());
}

}  // namespace
}  // namespace cobra
