// Trace-JIT tests: the superblock compiler, the translation-cache
// lifecycle (harvest / compile / chain / invalidate), and — the part that
// keeps the JIT honest — side-exit exactness: wherever a superblock stops
// (mispredicted branch, predicate-off path, quantum boundary, fabric-bound
// access), the interpreter must land on the exact slot with identical
// register, memory and timing state. Every exactness test runs the same
// program on two machines in quantum lockstep, one with the JIT enabled and
// one forced onto the pure interpreter, and diffs core state at every
// quantum edge.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "cpu/core.h"
#include "isa/assembler.h"
#include "isa/image.h"
#include "isa/instruction.h"
#include "machine/machine.h"
#include "tjit/superblock.h"
#include "tjit/tcache.h"

namespace cobra::tjit {
namespace {

using isa::Addr;
using isa::AddImm;
using isa::AndReg;
using isa::Assembler;
using isa::BinaryImage;
using isa::BrCloop;
using isa::BrCond;
using isa::Break;
using isa::CmpImm;
using isa::CmpRel;
using isa::Encode;
using isa::Instruction;
using isa::Ld;
using isa::Ldf;
using isa::Lfetch;
using isa::MovImm;
using isa::Nop;
using isa::Pred;
using isa::St;
using isa::Stf;

// --- Superblock compiler ----------------------------------------------------

class CompilerFixture : public ::testing::Test {
 protected:
  CompilerFixture() : image_(0x40000000) {}

  Addr Assemble(const std::function<void(Assembler&)>& build) {
    Assembler a(&image_);
    const Addr entry = image_.code_end();
    build(a);
    a.Finish();
    return entry;
  }

  BinaryImage image_;
};

TEST_F(CompilerFixture, CompilesStraightLineUntilBreak) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(8, 40));
    a.Emit(AddImm(9, 8, 2));
    a.Emit(Break());
  });
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, entry, 512, &sb));
  // The trace stops at the break (uncompilable) with both ALU steps in.
  ASSERT_EQ(sb.steps.size(), 2u);
  EXPECT_EQ(sb.entry, entry);
  EXPECT_EQ(sb.steps[0].kind, StepKind::kAlu);
  EXPECT_TRUE(sb.steps[0].slot0);
  EXPECT_EQ(sb.steps[0].next_idx, 1u);
  EXPECT_EQ(sb.steps[1].next_idx, kNoStep);  // exit edge, chained at runtime
}

TEST_F(CompilerFixture, FusesNopRuns) {
  const Addr entry = Assemble([](Assembler& a) {
    for (int i = 0; i < 6; ++i) a.Emit(Nop());
    a.Emit(Break());
  });
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, entry, 512, &sb));
  ASSERT_EQ(sb.steps.size(), 1u);
  EXPECT_EQ(sb.steps[0].kind, StepKind::kNopRun);
  EXPECT_EQ(sb.steps[0].count, 6u);
  EXPECT_EQ(sb.steps[0].slot0_count, 2u);  // two full nop bundles
}

TEST_F(CompilerFixture, CountedLoopGetsInternalBackEdge) {
  Addr loop = 0;
  Assemble([&loop](Assembler& a) {
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    loop = a.NextBundleAddr();
    a.Emit(AddImm(8, 8, 1));
    a.EmitBranch(BrCloop(0), head);
    a.Emit(Break());
  });
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, loop, 512, &sb));
  // AddImm, the slot-1 nop pad, and the branch whose taken edge loops back
  // to step 0 — the executor never leaves the block while the loop runs.
  ASSERT_EQ(sb.steps.size(), 3u);
  EXPECT_EQ(sb.steps[2].kind, StepKind::kBranch);
  EXPECT_EQ(sb.steps[2].taken_pc, loop);
  EXPECT_EQ(sb.steps[2].taken_idx, 0u);
  EXPECT_EQ(sb.steps[2].next_idx, kNoStep);  // loop exit: chained at runtime
}

TEST_F(CompilerFixture, RoutesMemoryOpsByKind) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(9, 0x1000));
    a.Emit(Ld(8, 10, 9));
    a.Emit(St(8, 9, 10));
    a.Emit(Ldf(8, 9));
    a.Emit(Stf(9, 8));
    a.Emit(Lfetch(9));
    a.Emit(Break());
  });
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, entry, 512, &sb));
  ASSERT_EQ(sb.steps.size(), 6u);
  EXPECT_EQ(sb.steps[1].kind, StepKind::kLd);
  EXPECT_EQ(sb.steps[2].kind, StepKind::kSt);
  EXPECT_EQ(sb.steps[3].kind, StepKind::kLdf);
  EXPECT_EQ(sb.steps[4].kind, StepKind::kStf);
  EXPECT_EQ(sb.steps[5].kind, StepKind::kLfetch);
}

TEST_F(CompilerFixture, RefusesStaleSlots) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(8, 1));
    a.Emit(Nop());
    a.Emit(Nop());
    a.Emit(AddImm(8, 8, 1));  // second bundle, slot 0
    a.Emit(Break());
  });
  image_.TestOnlyCorruptSlot(entry + isa::kBundleBytes, Encode(Nop()));
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, entry, 512, &sb));
  // The trace must stop before the stale slot: only the first bundle.
  ASSERT_EQ(sb.steps.size(), 2u);
  EXPECT_EQ(sb.steps[1].kind, StepKind::kNopRun);
  EXPECT_EQ(sb.steps[1].count, 2u);
}

TEST_F(CompilerFixture, StaleEntryCompilesToNothing) {
  const Addr entry = Assemble([](Assembler& a) {
    a.Emit(MovImm(8, 1));
    a.Emit(Break());
  });
  image_.TestOnlyCorruptSlot(entry, Encode(Nop()));
  Superblock sb;
  EXPECT_FALSE(CompileTrace(image_, entry, 512, &sb));
}

TEST_F(CompilerFixture, HonorsMaxSteps) {
  const Addr entry = Assemble([](Assembler& a) {
    for (int i = 0; i < 12; ++i) a.Emit(AddImm(8, 8, 1));
    a.Emit(Break());
  });
  Superblock sb;
  ASSERT_TRUE(CompileTrace(image_, entry, 4, &sb));
  EXPECT_EQ(sb.steps.size(), 4u);
}

// --- Translation cache lifecycle --------------------------------------------

class TcacheFixture : public CompilerFixture {
 protected:
  // A counted self-loop plus trailing break; returns the loop head.
  Addr AssembleLoop() {
    Addr loop = 0;
    Assemble([&loop](Assembler& a) {
      const Assembler::Label head = a.NewLabel();
      a.Bind(head);
      loop = a.NextBundleAddr();
      a.Emit(AddImm(8, 8, 1));
      a.EmitBranch(BrCloop(0), head);
      a.Emit(Break());
    });
    return loop;
  }

  TjitConfig SmallConfig() {
    TjitConfig cfg;
    cfg.hot_threshold = 3;
    cfg.max_trace_steps = 16;
    cfg.max_cache_steps = 16;
    return cfg;
  }
};

TEST_F(TcacheFixture, HarvestsAtThresholdAndCaches) {
  const Addr loop = AssembleLoop();
  TranslationCache tc(&image_, SmallConfig());
  EXPECT_TRUE(tc.BeginSegment());  // first segment adopts the generation
  EXPECT_EQ(tc.Lookup(loop), nullptr);
  EXPECT_EQ(tc.NoteLoopEdge(loop), nullptr);  // count 1
  EXPECT_EQ(tc.NoteLoopEdge(loop), nullptr);  // count 2
  Superblock* sb = tc.NoteLoopEdge(loop);     // count 3 = threshold
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->entry, loop);
  EXPECT_EQ(tc.stats().compiles, 1u);
  EXPECT_EQ(tc.Lookup(loop), sb);
  EXPECT_EQ(tc.NoteLoopEdge(loop), sb);  // cached, no recompile
  EXPECT_EQ(tc.stats().compiles, 1u);
  EXPECT_EQ(tc.Chain(loop), sb);
}

TEST_F(TcacheFixture, FlushesWhenThePlanGenerationMoves) {
  const Addr loop = AssembleLoop();
  TranslationCache tc(&image_, SmallConfig());
  tc.BeginSegment();
  for (int i = 0; i < 3; ++i) tc.NoteLoopEdge(loop);
  ASSERT_NE(tc.Lookup(loop), nullptr);

  // An unchanged generation keeps the cache.
  EXPECT_FALSE(tc.BeginSegment());
  EXPECT_NE(tc.Lookup(loop), nullptr);

  // Any patch bumps plan_generation; the next segment flushes wholesale.
  image_.Patch(loop, AddImm(8, 8, 2));
  EXPECT_TRUE(tc.BeginSegment());
  EXPECT_EQ(tc.stats().flushes, 1u);
  EXPECT_EQ(tc.Lookup(loop), nullptr);
  EXPECT_EQ(tc.Chain(loop), nullptr);
}

TEST_F(TcacheFixture, NegativeCachesUncompilableHeads) {
  const Addr loop = AssembleLoop();
  image_.TestOnlyCorruptSlot(loop, Encode(Nop()));
  TranslationCache tc(&image_, SmallConfig());
  tc.BeginSegment();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(tc.NoteLoopEdge(loop), nullptr);
  EXPECT_EQ(tc.stats().compiles, 0u);  // one failed attempt, never retried
  EXPECT_EQ(tc.Lookup(loop), nullptr);
}

TEST_F(TcacheFixture, EvictsWholesaleWhenOverCapacity) {
  // Two independent loops; a cache sized for one block forces a flush when
  // the second compiles.
  Addr loop_a = 0;
  Addr loop_b = 0;
  Assemble([&](Assembler& a) {
    const Assembler::Label head_a = a.NewLabel();
    a.Bind(head_a);
    loop_a = a.NextBundleAddr();
    a.Emit(AddImm(8, 8, 1));
    a.EmitBranch(BrCloop(0), head_a);
    const Assembler::Label head_b = a.NewLabel();
    a.Bind(head_b);
    loop_b = a.NextBundleAddr();
    a.Emit(AddImm(9, 9, 1));
    a.EmitBranch(BrCloop(0), head_b);
    a.Emit(Break());
  });
  TjitConfig cfg = SmallConfig();
  cfg.max_trace_steps = 4;
  cfg.max_cache_steps = 4;  // room for one block only
  TranslationCache tc(&image_, cfg);
  tc.BeginSegment();
  for (int i = 0; i < 3; ++i) tc.NoteLoopEdge(loop_a);
  ASSERT_NE(tc.Lookup(loop_a), nullptr);
  for (int i = 0; i < 3; ++i) tc.NoteLoopEdge(loop_b);
  EXPECT_GE(tc.stats().flushes, 1u);
  EXPECT_LE(tc.total_steps(), cfg.max_cache_steps);
}

// --- Side-exit exactness against the interpreter ----------------------------

class SideExitFixture : public ::testing::Test {
 protected:
  SideExitFixture() : image_(0x40000000) {}

  // Builds one image and two single-CPU machines over it: `jit_` with the
  // trace JIT (machines capture COBRA_TJIT at construction) and `interp_`
  // forced onto the pure interpreter.
  void Build(const std::function<void(Assembler&)>& build) {
    Assembler a(&image_);
    entry_ = image_.code_end();
    build(a);
    a.Finish();
    machine::MachineConfig cfg = machine::SmpServerConfig(1);
    cfg.mem.memory_bytes = 1 << 22;
    jit_ = std::make_unique<machine::Machine>(cfg, &image_);
    TestOnlySetTjitEnabled(false);
    interp_ = std::make_unique<machine::Machine>(cfg, &image_);
    TestOnlySetTjitEnabled(true);
    ASSERT_NE(jit_->core(0).tjit(), nullptr);
    ASSERT_EQ(interp_->core(0).tjit(), nullptr);
  }

  // Runs both cores to completion in quantum lockstep, diffing full core
  // state at every quantum edge — which is exactly where superblocks are
  // split by side exits, fabric commits and quantum stops.
  void RunLockstep(Cycle quantum) {
    cpu::Core& a = jit_->core(0);
    cpu::Core& b = interp_->core(0);
    a.Start(entry_);
    b.Start(entry_);
    Cycle q_end = 0;
    for (int guard = 0; !a.halted() || !b.halted(); ++guard) {
      ASSERT_LT(guard, 1000000) << "lockstep run did not terminate";
      q_end += quantum;
      a.RunQuantum(q_end);
      b.RunQuantum(q_end);
      ASSERT_EQ(a.pc(), b.pc()) << "pc diverged at quantum edge " << q_end;
      ASSERT_EQ(a.now(), b.now()) << "clock diverged at edge " << q_end;
      ASSERT_EQ(a.instructions_retired(), b.instructions_retired());
      ASSERT_EQ(a.halted(), b.halted());
      for (int r = 8; r <= 15; ++r) {
        ASSERT_EQ(a.regs().ReadGr(r), b.regs().ReadGr(r)) << "r" << r;
      }
      for (int f = 8; f <= 10; ++f) {
        ASSERT_EQ(a.regs().ReadFr(f), b.regs().ReadFr(f)) << "f" << f;
      }
    }
    // The JIT machine must actually have executed superblocks, or the
    // comparison proved nothing.
    EXPECT_GT(a.superblock_retired(), 0u);
    // And the simulated memory images must be byte-equal where written.
    for (Addr addr = 0x1000; addr < 0x1000 + 64 * 8; addr += 8) {
      ASSERT_EQ(jit_->memory().Read(addr, 8), interp_->memory().Read(addr, 8))
          << "memory diverged at 0x" << std::hex << addr;
    }
  }

  BinaryImage image_;
  Addr entry_ = 0;
  std::unique_ptr<machine::Machine> jit_;
  std::unique_ptr<machine::Machine> interp_;
};

// A data-dependent exit branch: the compiled trace assumes the loop keeps
// going, so the final not-taken back edge is a genuine mispredicted-branch
// side exit, mid-block, with live register state.
TEST_F(SideExitFixture, MispredictedBranchLandsExactly) {
  Build([](Assembler& a) {
    a.Emit(MovImm(8, 0));
    a.Emit(MovImm(9, 0x1000));
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    a.Emit(AddImm(8, 8, 1));
    a.Emit(St(8, 9, 8));
    a.Emit(Ld(8, 10, 9));
    a.Emit(CmpImm(CmpRel::kLt, 1, 2, 8, 300));
    a.EmitBranch(BrCond(1, 0), head);
    a.Emit(AddImm(11, 10, 7));  // lands here on the final not-taken exit
    a.Emit(Break());
  });
  RunLockstep(50);
  EXPECT_EQ(jit_->core(0).regs().ReadGr(8), 300u);
  EXPECT_EQ(jit_->core(0).regs().ReadGr(11), 307u);
}

// Predication: the store retires with no architectural effect on odd
// iterations. The superblock carries the op; the predicate is evaluated
// live each pass, in both directions.
TEST_F(SideExitFixture, PredicateOffPathMatches) {
  Build([](Assembler& a) {
    a.Emit(MovImm(8, 0));
    a.Emit(MovImm(9, 0x1000));
    a.Emit(MovImm(12, 1));
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    a.Emit(AddImm(8, 8, 1));
    a.Emit(AndReg(11, 8, 12));
    a.Emit(CmpImm(CmpRel::kEq, 1, 2, 11, 0));
    a.Emit(Pred(1, St(8, 9, 8)));   // even iterations only
    a.Emit(Pred(2, AddImm(13, 13, 1)));  // odd iterations only
    a.Emit(CmpImm(CmpRel::kLt, 3, 4, 8, 250));
    a.EmitBranch(BrCond(3, 0), head);
    a.Emit(Break());
  });
  RunLockstep(64);
  EXPECT_EQ(jit_->core(0).regs().ReadGr(13), 125u);  // odd count
  EXPECT_EQ(jit_->memory().Read(0x1000, 8), 250u);   // last even store
}

// FP loads/stores and lfetch drive the fused TryLoad/TryStore/TryPrefetch
// cache paths (fp routes around L1; lfetch must neither stall nor diverge
// prefetch bookkeeping).
TEST_F(SideExitFixture, FpAndPrefetchPathsMatch) {
  Build([](Assembler& a) {
    a.Emit(MovImm(8, 0));
    a.Emit(MovImm(9, 0x1000));
    a.Emit(MovImm(10, 0x2000));
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    a.Emit(Lfetch(10));
    a.Emit(Ldf(8, 9));
    a.Emit(isa::Fma(9, 8, 1, 1));  // f9 = f8 * 1 + 1
    a.Emit(Stf(9, 9));
    a.Emit(AddImm(9, 9, 8));
    a.Emit(AddImm(10, 10, 128));
    a.Emit(AddImm(8, 8, 1));
    a.Emit(CmpImm(CmpRel::kLt, 1, 2, 8, 200));
    a.EmitBranch(BrCond(1, 0), head);
    a.Emit(Break());
  });
  RunLockstep(100);
}

// A tiny, prime quantum forces superblocks to stop mid-trace (and mid
// nop-run) at arbitrary phases; every stop must leave the architecturally
// exact slot for the interpreter and resume precisely there.
TEST_F(SideExitFixture, QuantumBoundariesSplitTracesExactly) {
  Build([](Assembler& a) {
    a.Emit(MovImm(8, 0));
    a.Emit(MovImm(9, 0x1000));
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    a.Emit(AddImm(8, 8, 1));
    for (int i = 0; i < 7; ++i) a.Emit(Nop());
    a.Emit(St(8, 9, 8));
    a.Emit(CmpImm(CmpRel::kLt, 1, 2, 8, 150));
    a.EmitBranch(BrCond(1, 0), head);
    a.Emit(Break());
  });
  RunLockstep(7);
}

// Live patching: rewriting a loop-body instruction mid-run must flush the
// translation cache (plan_generation) and re-harvest; both machines see the
// new semantics at the same instruction boundary.
TEST_F(SideExitFixture, PatchInvalidatesCompiledTraces) {
  Addr body = 0;
  Build([&body](Assembler& a) {
    a.Emit(MovImm(8, 0));
    a.Emit(MovImm(10, 0));
    const Assembler::Label head = a.NewLabel();
    a.Bind(head);
    body = a.NextBundleAddr();
    a.Emit(AddImm(10, 10, 1));
    a.Emit(AddImm(8, 8, 1));
    a.Emit(CmpImm(CmpRel::kLt, 1, 2, 8, 2000));
    a.EmitBranch(BrCond(1, 0), head);
    a.Emit(Break());
  });

  cpu::Core& a = jit_->core(0);
  cpu::Core& b = interp_->core(0);
  a.Start(entry_);
  b.Start(entry_);
  // Phase 1: long enough to compile and run the original superblock.
  a.RunQuantum(2000);
  b.RunQuantum(2000);
  ASSERT_EQ(a.pc(), b.pc());
  ASSERT_FALSE(a.halted());
  const std::uint64_t sb_before = a.superblock_retired();
  EXPECT_GT(sb_before, 0u);
  EXPECT_GT(a.tjit()->stats().compiles, 0u);

  // Patch the accumulator step (r10 += 1 -> += 5). Both machines share the
  // image, so the rewrite is visible to both at the same boundary.
  image_.Patch(body, AddImm(10, 10, 5));

  Cycle q_end = 2000;
  while (!a.halted() || !b.halted()) {
    q_end += 100;
    a.RunQuantum(q_end);
    b.RunQuantum(q_end);
    ASSERT_EQ(a.pc(), b.pc());
    ASSERT_EQ(a.now(), b.now());
    ASSERT_EQ(a.regs().ReadGr(10), b.regs().ReadGr(10));
  }
  // The cache flushed on the generation bump and re-harvested the patched
  // loop into a fresh block.
  EXPECT_GE(a.tjit()->stats().flushes, 1u);
  EXPECT_GT(a.superblock_retired(), sb_before);
  // And the patched semantics actually took effect (not 2000: late
  // iterations add 5), identically on both machines.
  EXPECT_GT(a.regs().ReadGr(10), 2000u);
  EXPECT_EQ(a.regs().ReadGr(10), b.regs().ReadGr(10));
}

}  // namespace
}  // namespace cobra::tjit
