// Scalar-evolution and memory-dependence unit tests: chrec solving over
// hand-built single-block loops (post-increment, add-chains, rotation,
// predication) and the pairwise alias verdicts built on top.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/memdep.h"
#include "analysis/scev.h"
#include "isa/image.h"
#include "isa/instruction.h"
#include "kgen/emitters.h"
#include "kgen/program.h"

namespace cobra::analysis {
namespace {

using isa::Addr;

// Appends a one-bundle loop body followed by a break bundle and returns
// the analysis of the loop closed by the bundle's last slot.
LoopScev AnalyzeSingleBundleLoop(isa::BinaryImage& image,
                                 const isa::Instruction& s0,
                                 const isa::Instruction& s1,
                                 const isa::Instruction& s2) {
  const Addr head = image.AppendBundle(s0, s1, s2);
  image.AppendBundle(isa::Break(), isa::Nop(), isa::Nop());
  const std::vector<LoopScev> loops = AnalyzeLoops(image, {head});
  EXPECT_EQ(loops.size(), 1u);
  if (loops.empty()) return LoopScev{};
  EXPECT_EQ(loops[0].head, head);
  return loops[0];
}

// --- Chrec solving -----------------------------------------------------------

TEST(Scev, PostIncrementLoadIsAffine) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::LdPostInc(8, 9, 4, 128), isa::Nop(), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  ASSERT_EQ(scev.accesses.size(), 1u);
  const MemAccess& load = scev.accesses[0];
  EXPECT_EQ(load.cls, AddrClass::kAffine);
  EXPECT_EQ(load.base_entry_gr, 4);
  EXPECT_EQ(load.base_offset, 0);
  EXPECT_EQ(load.stride, 128);
  EXPECT_EQ(load.post_inc_imm, 128);
}

TEST(Scev, NegativeStrideIsAffine) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::LdPostInc(8, 9, 4, -64), isa::Nop(), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].stride, -64);
}

TEST(Scev, UntouchedBaseIsInvariant) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Ld(8, 9, 4), isa::Nop(), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kInvariant);
  EXPECT_EQ(scev.accesses[0].base_entry_gr, 4);
  EXPECT_EQ(scev.accesses[0].stride, 0);
}

TEST(Scev, PointerChasingIsUnknown) {
  isa::BinaryImage image;
  // r4 = mem[r4]: the next address is loaded data, not an affine chain.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Ld(8, 4, 4), isa::Nop(), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

TEST(Scev, AddChainFoldsIntoStride) {
  isa::BinaryImage image;
  // Two increments of the same base: the load sees entry+0 with the full
  // per-iteration step of 16; the store sees entry+8 with the same step.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::LdPostInc(8, 9, 4, 8), isa::StPostInc(8, 4, 7, 8),
      isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  ASSERT_EQ(scev.accesses.size(), 2u);
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].base_offset, 0);
  EXPECT_EQ(scev.accesses[0].stride, 16);
  EXPECT_EQ(scev.accesses[1].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[1].base_offset, 8);
  EXPECT_EQ(scev.accesses[1].stride, 16);
}

TEST(Scev, ExplicitAddImmAdvancesBase) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Ld(8, 9, 4), isa::AddImm(4, 4, 32), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].stride, 32);
}

TEST(Scev, ShladdComputedAddressFromInductionBase) {
  isa::BinaryImage image;
  // r9 = (8 << 3) + r4 = r4 + 64 each iteration; r4 advances by 8.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::ShlAdd(9, 8, 3, 4), isa::LdPostInc(8, 10, 4, 8),
      isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  // The shladd dest is bottom (r8 is symbolic entry, not constant), so
  // only the post-inc load classifies.
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].stride, 8);
}

TEST(Scev, RotatingChrecAcrossCtopBackEdge) {
  isa::BinaryImage image;
  // add r32 = r33 + 8 then load [r32]: after the rotating back edge the
  // value written to r32 is *named* r33, so entry(r33) recurs onto itself
  // with step 8 and the load's address entry(r33)+8 is affine.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::AddImm(32, 33, 8), isa::Ld(8, 9, 32), isa::BrCtop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  const MemAccess& load = scev.accesses[0];
  EXPECT_EQ(load.cls, AddrClass::kAffine);
  EXPECT_EQ(load.base_entry_gr, 33);
  EXPECT_EQ(load.base_offset, 8);
  EXPECT_EQ(load.stride, 8);
}

TEST(Scev, RotatingPostIncBaseDoesNotRecur) {
  isa::BinaryImage image;
  // ld r9 = [r32], 8 under br.ctop: the incremented value is renamed to
  // r33, while next iteration's r32 rotates in from r127 — the entry
  // symbol does not recur, so no claim.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::LdPostInc(8, 9, 32, 8), isa::Nop(), isa::BrCtop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

// --- Predication -------------------------------------------------------------

TEST(Scev, PredicatedPostIncUnderUnwrittenStaticPredicate) {
  isa::BinaryImage image;
  // (p5) ld r9 = [r4], 8 with nothing writing p5: p5 is constant over the
  // run, so the executed subsequence is affine.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Pred(5, isa::LdPostInc(8, 9, 4, 8)), isa::Nop(),
      isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].stride, 8);
}

TEST(Scev, InLoopPredicateWriterBlocksClaim) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::CmpImm(isa::CmpRel::kLt, 5, 0, 14, 100),
      isa::Pred(5, isa::LdPostInc(8, 9, 4, 8)), isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

TEST(Scev, PredicatedIncrementUnpredicatedAccessIsUnknown) {
  isa::BinaryImage image;
  // The base advances only on p5 iterations but the load executes on all
  // of them: consecutive executed deltas are not a constant stride.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Pred(5, isa::AddImm(4, 4, 8)), isa::Ld(8, 9, 4),
      isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

TEST(Scev, FirstStagePredicateUnderCtopIsAccepted) {
  isa::BinaryImage image;
  // (p16) ld r9 = [r4], 8 in a ctop loop: p16's executed-iteration set is
  // one contiguous window, so the claim survives.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Pred(16, isa::LdPostInc(8, 9, 4, 8)), isa::Nop(),
      isa::BrCtop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
  EXPECT_EQ(scev.accesses[0].stride, 8);
}

TEST(Scev, LaterStagePredicateIsRejected) {
  isa::BinaryImage image;
  // p17's pattern depends on the preheader's rotating-predicate init bits,
  // which a loop-local analysis cannot see.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Pred(17, isa::LdPostInc(8, 9, 4, 8)), isa::Nop(),
      isa::BrCtop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

TEST(Scev, StagePredicateWithoutRotatingBranchIsStatic) {
  isa::BinaryImage image;
  // Under br.cloop nothing rotates and nothing writes p16: it is just an
  // ordinary constant predicate.
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::Pred(16, isa::LdPostInc(8, 9, 4, 8)), isa::Nop(),
      isa::BrCloop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kAffine);
}

TEST(Scev, MovToPrRotInBodyBlocksStagePredicate) {
  isa::BinaryImage image;
  const LoopScev scev = AnalyzeSingleBundleLoop(
      image, isa::MovToPrRot(1), isa::Pred(16, isa::LdPostInc(8, 9, 4, 8)),
      isa::BrCtop(0));
  ASSERT_TRUE(scev.solved) << scev.reason;
  EXPECT_EQ(scev.accesses[0].cls, AddrClass::kUnknown);
}

// --- Loop shapes -------------------------------------------------------------

TEST(Scev, MultiBlockBodyIsUnsolved) {
  isa::BinaryImage image;
  const Addr head = image.AppendBundle(isa::Nop(), isa::Nop(),
                                       isa::BrCond(5, 1));
  image.AppendBundle(isa::LdPostInc(8, 9, 4, 8), isa::Nop(), isa::Nop());
  image.AppendBundle(isa::Nop(), isa::Nop(), isa::BrCloop(-2));
  image.AppendBundle(isa::Break(), isa::Nop(), isa::Nop());
  const std::vector<LoopScev> loops = AnalyzeLoops(image, {head});
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_FALSE(loops[0].solved);
  EXPECT_EQ(loops[0].reason, "multi-block loop body");
  EXPECT_TRUE(loops[0].accesses.empty());
}

TEST(Scev, DirectEntryRejectsNonLoopRegion) {
  isa::BinaryImage image;
  const Addr b0 = image.AppendBundle(isa::Nop(), isa::Nop(), isa::Nop());
  image.AppendBundle(isa::Break(), isa::Nop(), isa::Nop());
  const LoopScev scev = AnalyzeLoop(image, b0, isa::MakePc(b0, 2));
  EXPECT_FALSE(scev.solved);
  EXPECT_FALSE(scev.reason.empty());
}

TEST(Scev, SolvesEmittedKernelLoops) {
  // Every kgen kernel loop must analyze without crashing, and the daxpy
  // SWP kernel must not produce a contradicted claim shape (claims are
  // checked dynamically by the fuzz harness; here we only require
  // well-formed results).
  kgen::Program prog;
  kgen::EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  for (const kgen::LoopInfo& info : prog.loops()) {
    const LoopScev scev =
        AnalyzeLoop(prog.image(), info.head, info.back_branch_pc);
    if (!scev.solved) continue;
    for (const MemAccess& access : scev.accesses) {
      if (access.cls == AddrClass::kAffine) {
        EXPECT_NE(access.stride, 0);
      }
    }
  }
}

// --- Prefetch distance -------------------------------------------------------

TEST(Scev, PrefetchDistanceMirrorsInsertion) {
  MemAccess access;
  access.cls = AddrClass::kAffine;
  access.stride = 128;
  EXPECT_EQ(access.PrefetchDistance(1024), 1024);
  access.stride = 96;
  EXPECT_EQ(access.PrefetchDistance(1024), 960);  // 10 iterations ahead
  access.stride = 4096;
  EXPECT_EQ(access.PrefetchDistance(1024), 4096);  // at least one stride
  access.stride = -64;
  EXPECT_EQ(access.PrefetchDistance(1024), -1024);
  access.cls = AddrClass::kInvariant;
  access.stride = 0;
  EXPECT_EQ(access.PrefetchDistance(1024), 0);
}

// --- Memory dependence -------------------------------------------------------

MemAccess Affine(int base, std::int64_t off, std::int64_t stride, int size,
                 bool is_store) {
  MemAccess a;
  a.cls = stride == 0 ? AddrClass::kInvariant : AddrClass::kAffine;
  a.base_entry_gr = base;
  a.base_offset = off;
  a.stride = stride;
  a.size = size;
  a.is_store = is_store;
  return a;
}

TEST(Memdep, EqualStrideDisjointLanesNoAlias) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  const MemAccess b = Affine(4, 64, 128, 8, true);
  EXPECT_EQ(ClassifyAlias(a, 0, b), AliasVerdict::kNoAlias);
}

TEST(Memdep, EqualStrideSameLaneMustOverlap) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  const MemAccess b = Affine(4, 1024, 128, 8, true);
  // Same residue class: iteration pairs eight apart collide.
  EXPECT_EQ(ClassifyAlias(a, 0, b), AliasVerdict::kMustOverlap);
}

TEST(Memdep, PrefetchDisplacementShiftsTheLane) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  const MemAccess b = Affine(4, 64, 128, 8, true);
  EXPECT_EQ(ClassifyAlias(a, 64, b), AliasVerdict::kMustOverlap);
}

TEST(Memdep, DifferentEntryBasesAreMayAlias) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  const MemAccess b = Affine(5, 0, 128, 8, true);
  EXPECT_EQ(ClassifyAlias(a, 0, b), AliasVerdict::kMayAlias);
}

TEST(Memdep, UnknownIsMayAlias) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  MemAccess b;
  b.cls = AddrClass::kUnknown;
  EXPECT_EQ(ClassifyAlias(a, 0, b), AliasVerdict::kMayAlias);
}

TEST(Memdep, InvariantPairByInterval) {
  const MemAccess a = Affine(4, 0, 0, 8, false);
  const MemAccess near = Affine(4, 4, 0, 8, true);
  const MemAccess far = Affine(4, 8, 0, 8, true);
  EXPECT_EQ(ClassifyAlias(a, 0, near), AliasVerdict::kMustOverlap);
  EXPECT_EQ(ClassifyAlias(a, 0, far), AliasVerdict::kNoAlias);
}

TEST(Memdep, DifferingStridesOnlyProveNoAlias) {
  const MemAccess a = Affine(4, 0, 128, 8, false);
  const MemAccess hit = Affine(4, 0, 64, 8, true);
  const MemAccess miss = Affine(4, 32, 64, 8, true);
  // gcd lattice intersects: cannot prove, cannot fire.
  EXPECT_EQ(ClassifyAlias(a, 0, hit), AliasVerdict::kMayAlias);
  // Residue 32 misses both 8-byte footprints under gcd 64.
  EXPECT_EQ(ClassifyAlias(a, 0, miss), AliasVerdict::kNoAlias);
}

TEST(Memdep, ProvableStoreCollisionsScansLoopStores) {
  LoopScev loop;
  loop.solved = true;
  MemAccess load = Affine(4, 0, 128, 8, false);
  load.pc = 0x100;
  MemAccess store_hit = Affine(4, 1024, 128, 8, true);
  store_hit.pc = 0x101;
  MemAccess store_miss = Affine(4, 64, 128, 8, true);
  store_miss.pc = 0x102;
  loop.accesses = {load, store_hit, store_miss};
  const auto hits = ProvableStoreCollisions(loop, load, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->pc, 0x101u);
}

}  // namespace
}  // namespace cobra::analysis
