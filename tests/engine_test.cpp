// Execution-engine determinism tests: the serial and parallel engines must
// produce bit-identical simulations — same final cycle counts, same cache
// and coherence statistics, same HPM values, and the same per-CPU sampled
// streams (pc / timestamp / counters / BTB / DEAR), sample for sample —
// for every workload, machine geometry and host thread count.
//
// The fingerprint below serializes everything an experiment could observe;
// any divergence between engines shows up as a string diff.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cobra/cobra.h"
#include "kgen/emitters.h"
#include "kgen/program.h"
#include "machine/engine.h"
#include "machine/machine.h"
#include "npb/common.h"
#include "obs/registry.h"
#include "perfmon/sampling.h"
#include "rt/team.h"
#include "verify/fuzz.h"

namespace cobra {
namespace {

void AppendSample(std::ostringstream& out, CpuId cpu,
                  const perfmon::Sample& s) {
  out << "sample cpu=" << cpu << " idx=" << s.index << " pc=" << s.pc
      << " tid=" << s.tid << " t=" << s.timestamp;
  out << " ctr=";
  for (const std::uint64_t c : s.counters) out << c << ",";
  out << " btb=";
  for (const auto& e : s.btb) out << e.source << ">" << e.target << ",";
  out << " dear=" << s.dear.inst_addr << "/" << s.dear.data_addr << "/"
      << s.dear.latency << "/" << s.dear.valid << "\n";
}

// Everything observable about a finished run: global time, per-CPU core and
// cache-stack state, per-CPU and total fabric counts.
void AppendMachineState(std::ostringstream& out, machine::Machine& m) {
  out << "global_time=" << m.GlobalTime() << "\n";
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    const cpu::Core& core = m.core(cpu);
    const mem::CacheStack& stack = m.stack(cpu);
    const mem::CacheStack::Stats& ss = stack.stats();
    const mem::BusEventCounts& bus = m.fabric().CpuCounts(cpu);
    out << "cpu" << cpu << " now=" << core.now() << " pc=" << core.pc()
        << " retired=" << core.instructions_retired()
        << " dropped=" << core.lfetches_dropped() << " loads=" << ss.loads
        << " stores=" << ss.stores << " pf=" << ss.prefetches
        << " pf_bus=" << ss.prefetch_bus_requests
        << " pf_up=" << ss.prefetch_upgrades << " l2wb=" << ss.l2_writebacks
        << " fwb=" << ss.fabric_writebacks << " st_up=" << ss.store_upgrades
        << " sn_down=" << ss.snoop_downgrades
        << " sn_inv=" << ss.snoop_invalidations << " hitm=" << ss.hitm_supplies
        << " l2m=" << stack.L2Misses() << " l3m=" << stack.L3Misses()
        << " bus_mem=" << bus.bus_memory << " rd_hit=" << bus.bus_rd_hit
        << " rd_hitm=" << bus.bus_rd_hitm
        << " rd_inv_hitm=" << bus.bus_rd_inval_all_hitm
        << " upg=" << bus.bus_upgrades << " wb=" << bus.bus_writebacks
        << " remote=" << bus.remote_transactions << "\n";
  }
  const mem::BusEventCounts& total = m.fabric().TotalCounts();
  out << "bus_total=" << total.bus_memory << "/" << total.CoherentEvents()
      << "/" << total.remote_transactions << "\n";
  // The observability registry reads every live counter in the machine —
  // including the engine's own quantum/segment/commit tallies, which are
  // only comparable between engines running the same quantum (the fixture
  // guarantees that). A mismatch diffs metric-by-metric below.
  const obs::Snapshot snapshot = m.registry().Take();
  out << "registry_fp=" << snapshot.Fingerprint() << "\n"
      << snapshot.ToString();
}

struct DaxpyFingerprint {
  std::string samples;  // delivered sample stream, in delivery order
  std::string state;    // final machine state
};

// DAXPY with recorded sampling streams (no COBRA): serial vs parallel must
// agree on the machine state AND on every delivered sample.
DaxpyFingerprint RunDaxpyFingerprint(const machine::MachineConfig& machine_cfg,
                                     int threads,
                                     const machine::EngineConfig& engine) {
  kgen::Program prog;
  const kgen::LoopInfo daxpy =
      EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  constexpr std::int64_t kN = 16384;  // 256 KB working set
  const mem::Addr x = prog.Alloc(kN * 8);
  const mem::Addr y = prog.Alloc(kN * 8);

  machine::MachineConfig cfg = machine_cfg;
  cfg.mem.memory_bytes = 1 << 23;
  machine::Machine machine(cfg, &prog.image());
  for (std::int64_t i = 0; i < kN; ++i) {
    machine.memory().WriteDouble(x + 8 * static_cast<mem::Addr>(i), 1.0);
    machine.memory().WriteDouble(y + 8 * static_cast<mem::Addr>(i), 2.0);
  }

  std::ostringstream out;
  perfmon::SamplingConfig pcfg;
  pcfg.period_insts = 700;
  pcfg.batch_size = 4;
  perfmon::SamplingDriver driver(&machine, pcfg);
  for (int tid = 0; tid < threads; ++tid) {
    driver.StartMonitoring(
        tid, tid, [&out](CpuId cpu, std::span<const perfmon::Sample> batch) {
          for (const perfmon::Sample& s : batch) AppendSample(out, cpu, s);
        });
  }

  rt::Team team(&machine, threads, engine);
  for (int rep = 0; rep < 6; ++rep) {
    team.Run(daxpy.entry, [&](int tid, cpu::RegisterFile& regs) {
      const auto chunk = rt::StaticChunk(tid, threads, kN);
      regs.WriteGr(14, x + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(15, y + 8 * static_cast<mem::Addr>(chunk.begin));
      regs.WriteGr(16, static_cast<std::uint64_t>(chunk.size()));
      regs.WriteFr(6, 0.5);
    });
  }
  driver.StopAll();
  std::ostringstream state;
  AppendMachineState(state, machine);
  return {out.str(), state.str()};
}

// An NPB kernel under the full COBRA runtime (sampling -> detection ->
// runtime patching): the optimizer's decisions must also be identical.
std::string RunNpbFingerprint(const std::string& benchmark,
                              const machine::MachineConfig& machine_cfg,
                              int threads,
                              const machine::EngineConfig& engine) {
  auto bench = npb::MakeBenchmark(benchmark);
  kgen::Program prog;
  bench->Build(prog, kgen::PrefetchPolicy{});

  machine::MachineConfig cfg = machine_cfg;
  cfg.mem.memory_bytes = 1 << 25;
  machine::Machine machine(cfg, &prog.image());
  bench->Init(machine, threads);

  core::CobraConfig config;
  config.sampling_period_insts = 1000;
  config.strategy = core::OptKind::kNoprefetch;
  core::CobraRuntime cobra(&machine, config);
  cobra.AttachAll(threads);

  rt::Team team(&machine, threads, engine);
  const Cycle cycles = bench->Run(team);

  std::ostringstream out;
  out << "cycles=" << cycles << " verified=" << bench->Verify(machine) << "\n";
  const auto& stats = cobra.stats();
  out << "cobra eval=" << stats.evaluations << " deploy=" << stats.deployments
      << " rollbacks=" << stats.rollbacks << " kept=" << stats.epochs_kept
      << " reverted=" << stats.epochs_reverted
      << " rewritten=" << stats.lfetches_rewritten
      << " inserted=" << stats.prefetches_inserted
      << " ratio=" << stats.last_coherent_ratio << "\n";
  AppendMachineState(out, machine);
  return out.str();
}

// The quantum is part of the simulation's semantics (it sets the cadence of
// deferred sample delivery, like the sampling period does), so determinism
// is claimed — and tested — between engines running the SAME quantum. The
// serial reference below therefore copies the parallel config's quantum.
class EngineDeterminism
    : public ::testing::TestWithParam<const char*> {
 protected:
  machine::EngineConfig Engine() const {
    return machine::ParseEngineSpec(GetParam());
  }
  machine::EngineConfig SerialReference() const {
    machine::EngineConfig serial;
    serial.quantum = Engine().quantum;
    return serial;
  }
};

TEST_P(EngineDeterminism, DaxpySmpMatchesSerial) {
  const DaxpyFingerprint serial =
      RunDaxpyFingerprint(machine::SmpServerConfig(4), 4, SerialReference());
  const DaxpyFingerprint parallel =
      RunDaxpyFingerprint(machine::SmpServerConfig(4), 4, Engine());
  EXPECT_EQ(serial.state, parallel.state);
  EXPECT_EQ(serial.samples, parallel.samples);
}

TEST_P(EngineDeterminism, DaxpyNumaMatchesSerial) {
  const DaxpyFingerprint serial =
      RunDaxpyFingerprint(machine::AltixConfig(8), 8, SerialReference());
  const DaxpyFingerprint parallel =
      RunDaxpyFingerprint(machine::AltixConfig(8), 8, Engine());
  EXPECT_EQ(serial.state, parallel.state);
  EXPECT_EQ(serial.samples, parallel.samples);
}

TEST_P(EngineDeterminism, NpbCgSmpWithCobraMatchesSerial) {
  const std::string serial = RunNpbFingerprint(
      "cg", machine::SmpServerConfig(4), 4, SerialReference());
  EXPECT_EQ(serial,
            RunNpbFingerprint("cg", machine::SmpServerConfig(4), 4, Engine()));
}

TEST_P(EngineDeterminism, NpbCgNumaWithCobraMatchesSerial) {
  const std::string serial =
      RunNpbFingerprint("cg", machine::AltixConfig(8), 8, SerialReference());
  EXPECT_EQ(serial,
            RunNpbFingerprint("cg", machine::AltixConfig(8), 8, Engine()));
}

// One fixed-seed fuzz-generated random workload (see src/verify/fuzz.h)
// per machine shape, run with the coherence checker enabled: the
// fingerprint includes the data-segment hash, so a lost or misordered
// store under the parallel engine fails here even if the timing state
// happens to agree.
TEST_P(EngineDeterminism, FuzzWorkloadSmpMatchesSerial) {
  const verify::FuzzCase c = verify::SmpFuzzCase(7);
  EXPECT_EQ(verify::RunFuzzCase(c, SerialReference()),
            verify::RunFuzzCase(c, Engine()));
}

TEST_P(EngineDeterminism, FuzzWorkloadNumaMatchesSerial) {
  const verify::FuzzCase c = verify::NumaFuzzCase(7);
  EXPECT_EQ(verify::RunFuzzCase(c, SerialReference()),
            verify::RunFuzzCase(c, Engine()));
}

// parallel:1 degenerates to the serial phase loop inside the parallel
// engine; parallel:2 and :4 exercise real worker handoff; the @256 variant
// checks kind-invariance holds at a non-default quantum too.
INSTANTIATE_TEST_SUITE_P(Engines, EngineDeterminism,
                         ::testing::Values("parallel:1", "parallel:2",
                                           "parallel:4", "parallel:4@256"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '@') c = '_';
                           }
                           return name;
                         });

// Back-to-back parallel runs on fresh machines must agree with themselves:
// any host-scheduling leak (racy segment claiming, unsynchronized deferred
// batches) would show up as run-to-run jitter here.
TEST(EngineReproducibility, RepeatedParallelRunsAreIdentical) {
  const machine::EngineConfig engine = machine::ParseEngineSpec("parallel:4");
  const DaxpyFingerprint first =
      RunDaxpyFingerprint(machine::SmpServerConfig(4), 4, engine);
  const DaxpyFingerprint second =
      RunDaxpyFingerprint(machine::SmpServerConfig(4), 4, engine);
  EXPECT_EQ(first.state, second.state);
  EXPECT_EQ(first.samples, second.samples);
}

TEST(EngineSpec, ParsesKindThreadsAndQuantum) {
  machine::EngineConfig c = machine::ParseEngineSpec("serial");
  EXPECT_EQ(c.kind, machine::EngineKind::kSerial);

  c = machine::ParseEngineSpec("parallel");
  EXPECT_EQ(c.kind, machine::EngineKind::kParallel);
  EXPECT_EQ(c.host_threads, 0);  // auto

  c = machine::ParseEngineSpec("parallel:3@512");
  EXPECT_EQ(c.kind, machine::EngineKind::kParallel);
  EXPECT_EQ(c.host_threads, 3);
  EXPECT_EQ(c.quantum, 512u);

  c = machine::ParseEngineSpec("serial@2048");
  EXPECT_EQ(c.kind, machine::EngineKind::kSerial);
  EXPECT_EQ(c.quantum, 2048u);
}

TEST(EngineSpec, EngineNameReflectsKind) {
  kgen::Program prog;
  EmitDaxpy(prog, "daxpy", kgen::PrefetchPolicy{});
  machine::Machine machine(machine::SmpServerConfig(4), &prog.image());
  rt::Team serial_team(&machine, 4);
  EXPECT_STREQ(serial_team.engine_name(), "serial");
  rt::Team parallel_team(&machine, 4,
                         machine::ParseEngineSpec("parallel:2"));
  EXPECT_STREQ(parallel_team.engine_name(), "parallel");
}

}  // namespace
}  // namespace cobra
